package eba

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/runtime"
)

// Runner executes scenarios against one stack: one at a time (Run), as an
// order-preserving parallel batch (RunBatch), as a stream of outcomes
// over a slice (Stream), or pulled lazily from a Source (StreamFrom,
// RunSource) so unbounded sweeps run at bounded memory. See NewRunner and
// the Source constructors (SourceSO, SourceCrash, SourceRandomSO).
type Runner = core.Runner

// RunnerOption configures NewRunner: WithExecutor, WithParallelism,
// WithSpecCheck, WithBufferReuse.
type RunnerOption = core.RunnerOption

// RunOutcome is one completed (or failed) scenario of a Runner.Stream.
type RunOutcome = core.RunOutcome

// SpecError is the error Runner.Run and Runner.RunBatch return when
// WithSpecCheck finds violations in an otherwise successful run.
type SpecError = core.SpecError

// Executor abstracts the execution substrate a Runner drives runs on.
// Both built-in executors produce byte-identical results for the same
// configuration.
type Executor = engine.Executor

// The built-in executors.
var (
	// Sequential is the deterministic single-threaded round engine.
	Sequential Executor = engine.Sequential{}
	// Concurrent runs one goroutine per agent with a router enforcing the
	// synchronized-round semantics.
	Concurrent Executor = runtime.Concurrent{}
)

// NewRunner returns a Runner for the stack. With no options it runs
// scenarios one at a time on the sequential engine:
//
//	stack, _ := eba.NewStack("fip", eba.WithN(6), eba.WithT(2))
//	runner := eba.NewRunner(stack,
//		eba.WithParallelism(8),
//		eba.WithSpecCheck(eba.SpecOptions{RoundBound: stack.Horizon()}),
//		eba.WithBufferReuse())
//	results, err := runner.RunBatch(ctx, scenarios)
func NewRunner(stack Stack, opts ...RunnerOption) *Runner { return core.NewRunner(stack, opts...) }

// WithExecutor selects the execution substrate (default Sequential).
func WithExecutor(x Executor) RunnerOption { return core.WithExecutor(x) }

// WithParallelism sets the batch worker count (default 1; k <= 0 means
// one worker per available CPU). Results are independent of k: batches
// and streams preserve scenario order.
func WithParallelism(k int) RunnerOption { return core.WithParallelism(k) }

// WithSpecCheck verifies every completed run against the EBA
// specification of Section 5 (Unique Decision, Agreement, Validity,
// Termination) with the given options.
func WithSpecCheck(opts SpecOptions) RunnerOption { return core.WithSpecCheck(opts) }

// WithResultCache makes the runner answer scenarios it has already
// executed from the cache — same version fingerprint, same scenario —
// and execute only the misses, with bit-identical batches and streams
// at any hit/miss mix. Spec checking still judges cache hits: the
// payload carries everything CheckRun reads.
func WithResultCache(c ResultCache, fingerprint string) RunnerOption {
	return core.WithResultCache(c, fingerprint)
}

// WithBufferReuse gives every batch worker a private arena-backed
// scratch buffer reused across its runs, eliminating per-round
// allocation on the batch hot path — including the exchanges' own
// allocations (Efip's per-round graphs are built in the worker's
// arena). Results are detached from the arena before they are returned,
// so they stay valid and mutation-safe indefinitely; traces are
// bit-identical with or without reuse. See README "Memory model".
func WithBufferReuse() RunnerOption { return core.WithBufferReuse() }
