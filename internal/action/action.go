// Package action implements the paper's concrete action protocols:
//
//   - Min: P_min (Section 6) — decide 0 on an initial 0 or on hearing a
//     fresh 0-decision; otherwise decide 1 at time t+1. Optimal with
//     respect to the minimal exchange (Corollary 6.7).
//   - Basic: P_basic (Section 6) — as P_min, but additionally decide 1 as
//     soon as #1 > n − time or on hearing a fresh 1-decision. Optimal with
//     respect to the basic exchange (Corollary 6.7).
//   - Opt: P_opt (Section 7 / A.2.7) — the polynomial-time implementation
//     of the knowledge-based program P1 over the full-information
//     exchange, optimal with respect to full information (Corollary 7.8).
//   - Naive: the introduction's impossible protocol — decide 0 as soon as
//     you learn *in any way* that some agent held an initial 0. Safe under
//     crash failures, violates Agreement under omission failures; kept as
//     an executable counterexample.
//
// P_min and Naive work on any exchange state; P_basic requires the basic
// exchange; P_opt requires the full-information exchange.
package action

import (
	"fmt"

	"repro/internal/exchange"
	"repro/internal/graph"
	"repro/internal/model"
)

// Min is the action protocol P_min, parameterized by the failure bound t.
type Min struct {
	t int
}

// NewMin returns P_min for failure bound t.
func NewMin(t int) *Min {
	if t < 0 {
		panic("action: NewMin with negative t")
	}
	return &Min{t: t}
}

// Name returns "Pmin".
func (p *Min) Name() string { return "Pmin" }

// Act implements the program of Theorem 6.5.
func (p *Min) Act(_ model.AgentID, s model.State) model.Action {
	switch {
	case s.Decided().IsSet():
		return model.Noop
	case s.Init() == model.Zero || s.JustDecided() == model.Zero:
		return model.Decide0
	case s.Time() == p.t+1:
		return model.Decide1
	default:
		return model.Noop
	}
}

// Basic is the action protocol P_basic, parameterized by the number of
// agents n (its decide-1 test compares #1 against n − time).
type Basic struct {
	n int
}

// NewBasic returns P_basic for n agents.
func NewBasic(n int) *Basic {
	if n <= 0 {
		panic("action: NewBasic with n <= 0")
	}
	return &Basic{n: n}
}

// Name returns "Pbasic".
func (p *Basic) Name() string { return "Pbasic" }

// Act implements the program of Theorem 6.6. It requires a basic-exchange
// state (it reads the #1 counter).
func (p *Basic) Act(_ model.AgentID, s model.State) model.Action {
	st, ok := s.(exchange.BasicState)
	if !ok {
		panic(fmt.Sprintf("action: Pbasic needs a Basic exchange state, got %T", s))
	}
	switch {
	case st.Decided().IsSet():
		return model.Noop
	case st.Init() == model.Zero || st.JustDecided() == model.Zero:
		return model.Decide0
	case st.NumOnes() > p.n-st.Time() || st.JustDecided() == model.One:
		return model.Decide1
	default:
		return model.Noop
	}
}

// Opt is the action protocol P_opt: the polynomial-time implementation of
// the knowledge-based program P1 over the full-information exchange.
type Opt struct {
	t int
}

// NewOpt returns P_opt for failure bound t.
func NewOpt(t int) *Opt {
	if t < 0 {
		panic("action: NewOpt with negative t")
	}
	return &Opt{t: t}
}

// Name returns "Popt".
func (p *Opt) Name() string { return "Popt" }

// Act evaluates the program of Proposition 7.9 on the agent's
// communication graph. It requires a full-information exchange state.
func (p *Opt) Act(_ model.AgentID, s model.State) model.Action {
	st, ok := s.(*exchange.FIPState)
	if !ok {
		panic(fmt.Sprintf("action: Popt needs a FIP exchange state, got %T", s))
	}
	if st.Decided().IsSet() {
		return model.Noop
	}
	r := graph.AcquireRef(p.t, st.Graph())
	a := r.OwnerAction()
	r.Release()
	return a
}

// OptNoCK is the ablated full-information protocol: P_opt without the two
// common-knowledge guards, i.e. an implementation of the knowledge-based
// program P0 over the full-information exchange. It is correct
// (Proposition 6.1 applies to every EBA context) but not optimal: in
// Example 7.1 it waits until the hidden-chain argument clears instead of
// exploiting common knowledge of the faulty set. Experiment E15 measures
// the gap.
type OptNoCK struct {
	t int
}

// NewOptNoCK returns the ablated protocol for failure bound t.
func NewOptNoCK(t int) *OptNoCK {
	if t < 0 {
		panic("action: NewOptNoCK with negative t")
	}
	return &OptNoCK{t: t}
}

// Name returns "Popt-nock".
func (p *OptNoCK) Name() string { return "Popt-nock" }

// Act evaluates the ablated program on the agent's communication graph.
func (p *OptNoCK) Act(_ model.AgentID, s model.State) model.Action {
	st, ok := s.(*exchange.FIPState)
	if !ok {
		panic(fmt.Sprintf("action: Popt-nock needs a FIP exchange state, got %T", s))
	}
	if st.Decided().IsSet() {
		return model.Noop
	}
	r := graph.AcquireRefNoCK(p.t, st.Graph())
	a := r.OwnerAction()
	r.Release()
	return a
}

// Naive is the introduction's 0-biased protocol: decide 0 as soon as the
// agent learns that some agent had an initial preference of 0 — whether
// through a fresh 0-decision (a 0-chain) or through a stale (init,0)
// report — and decide 1 at time t+1 otherwise. Under crash failures stale
// reports cannot exist, so Naive is safe; under omission failures the
// adversary of the introduction's run r′ makes two nonfaulty agents
// disagree (see internal/experiments, E13).
type Naive struct {
	t int
}

// NewNaive returns the counterexample protocol for failure bound t.
func NewNaive(t int) *Naive {
	if t < 0 {
		panic("action: NewNaive with negative t")
	}
	return &Naive{t: t}
}

// Name returns "Pnaive".
func (p *Naive) Name() string { return "Pnaive" }

// Act decides 0 eagerly on any evidence of an initial 0. It requires a
// report-exchange state (it reads the heard0 latch).
func (p *Naive) Act(_ model.AgentID, s model.State) model.Action {
	st, ok := s.(exchange.ReportState)
	if !ok {
		panic(fmt.Sprintf("action: Pnaive needs a Report exchange state, got %T", s))
	}
	switch {
	case st.Decided().IsSet():
		return model.Noop
	case st.Init() == model.Zero || st.JustDecided() == model.Zero || st.Heard0():
		return model.Decide0
	case st.Time() == p.t+1:
		return model.Decide1
	default:
		return model.Noop
	}
}

// Interface compliance.
var (
	_ model.ActionProtocol = (*Min)(nil)
	_ model.ActionProtocol = (*Basic)(nil)
	_ model.ActionProtocol = (*Opt)(nil)
	_ model.ActionProtocol = (*OptNoCK)(nil)
	_ model.ActionProtocol = (*Naive)(nil)
)
