package action

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/exchange"
	"repro/internal/model"
)

func runStack(t *testing.T, ex model.Exchange, p model.ActionProtocol, pat *model.Pattern, inits []model.Value) *engine.Result {
	t.Helper()
	res, err := engine.Run(engine.Config{Exchange: ex, Action: p, Pattern: pat, Inits: inits})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPminFailureFreeAllOnes(t *testing.T) {
	// Proposition 8.2(b): P_min waits until round t+2.
	for _, tf := range []int{1, 2, 3} {
		n := tf + 3
		res := runStack(t, exchange.NewMin(n), NewMin(tf),
			adversary.FailureFree(n, tf+2), adversary.UniformInits(n, model.One))
		for i := 0; i < n; i++ {
			if res.Decided(model.AgentID(i)) != model.One || res.Round(model.AgentID(i)) != tf+2 {
				t.Errorf("t=%d agent %d: %v in round %d, want 1 in round %d",
					tf, i, res.Decided(model.AgentID(i)), res.Round(model.AgentID(i)), tf+2)
			}
		}
	}
}

func TestPminFailureFreeWithZero(t *testing.T) {
	// Proposition 8.2(a): someone holds a 0 → everyone decides 0 by round 2.
	n, tf := 5, 2
	inits := adversary.UniformInits(n, model.One)
	inits[3] = model.Zero
	res := runStack(t, exchange.NewMin(n), NewMin(tf),
		adversary.FailureFree(n, tf+2), inits)
	if res.Round(3) != 1 {
		t.Errorf("initial-0 agent decided in round %d, want 1", res.Round(3))
	}
	for i := 0; i < n; i++ {
		if res.Decided(model.AgentID(i)) != model.Zero || res.Round(model.AgentID(i)) > 2 {
			t.Errorf("agent %d: %v in round %d, want 0 by round 2",
				i, res.Decided(model.AgentID(i)), res.Round(model.AgentID(i)))
		}
	}
}

func TestPbasicFailureFreeAllOnes(t *testing.T) {
	// Proposition 8.2(b): P_basic decides in round 2.
	for _, n := range []int{3, 5, 8} {
		tf := 1
		res := runStack(t, exchange.NewBasic(n), NewBasic(n),
			adversary.FailureFree(n, tf+2), adversary.UniformInits(n, model.One))
		for i := 0; i < n; i++ {
			if res.Decided(model.AgentID(i)) != model.One || res.Round(model.AgentID(i)) != 2 {
				t.Errorf("n=%d agent %d: %v in round %d, want 1 in round 2",
					n, i, res.Decided(model.AgentID(i)), res.Round(model.AgentID(i)))
			}
		}
	}
}

func TestPbasicFailureFreeWithZero(t *testing.T) {
	n, tf := 5, 2
	inits := adversary.UniformInits(n, model.One)
	inits[0] = model.Zero
	res := runStack(t, exchange.NewBasic(n), NewBasic(n),
		adversary.FailureFree(n, tf+2), inits)
	for i := 0; i < n; i++ {
		if res.Decided(model.AgentID(i)) != model.Zero || res.Round(model.AgentID(i)) > 2 {
			t.Errorf("agent %d: %v in round %d, want 0 by round 2",
				i, res.Decided(model.AgentID(i)), res.Round(model.AgentID(i)))
		}
	}
}

func TestPminPbasicExample71WaitUntilTPlus2(t *testing.T) {
	// Example 7.1: with silent faulty agents and all-1 preferences, the
	// limited-information protocols cannot decide before round t+2.
	n, tf := 6, 3
	pat := adversary.Example71(n, tf, tf+2)
	inits := adversary.UniformInits(n, model.One)

	res := runStack(t, exchange.NewMin(n), NewMin(tf), pat, inits)
	for i := tf; i < n; i++ {
		if res.Round(model.AgentID(i)) != tf+2 {
			t.Errorf("Pmin agent %d decided in round %d, want %d", i, res.Round(model.AgentID(i)), tf+2)
		}
	}

	res = runStack(t, exchange.NewBasic(n), NewBasic(n), pat, inits)
	for i := tf; i < n; i++ {
		if res.Round(model.AgentID(i)) != tf+2 {
			t.Errorf("Pbasic agent %d decided in round %d, want %d", i, res.Round(model.AgentID(i)), tf+2)
		}
	}
}

func TestPminBitsExactlyNSquared(t *testing.T) {
	// Proposition 8.1: P_min sends exactly n² bits in every run.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{3, 5, 9} {
		tf := 2
		for trial := 0; trial < 10; trial++ {
			pat := adversary.RandomSO(rng, n, tf, tf+2, 0.4)
			inits := make([]model.Value, n)
			for i := range inits {
				inits[i] = model.Value(rng.Intn(2))
			}
			res := runStack(t, exchange.NewMin(n), NewMin(tf), pat, inits)
			if res.Stats.BitsSent != int64(n*n) {
				t.Errorf("n=%d trial %d: Pmin sent %d bits, want %d",
					n, trial, res.Stats.BitsSent, n*n)
			}
			if res.Stats.MessagesSent != n*n {
				t.Errorf("n=%d trial %d: Pmin sent %d messages, want %d",
					n, trial, res.Stats.MessagesSent, n*n)
			}
		}
	}
}

func TestPbasicBitsWithinBound(t *testing.T) {
	// Proposition 8.1: P_basic sends O(n²t) bits; concretely at most
	// 2·n²·(t+2) bits with the 2-bit encoding (undecided agents broadcast
	// for at most t+1 rounds, plus the deciding broadcast).
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{4, 6} {
		tf := 2
		for trial := 0; trial < 10; trial++ {
			pat := adversary.RandomSO(rng, n, tf, tf+2, 0.4)
			inits := make([]model.Value, n)
			for i := range inits {
				inits[i] = model.Value(rng.Intn(2))
			}
			res := runStack(t, exchange.NewBasic(n), NewBasic(n), pat, inits)
			bound := int64(2 * n * n * (tf + 2))
			if res.Stats.BitsSent > bound {
				t.Errorf("n=%d trial %d: Pbasic sent %d bits, bound %d",
					n, trial, res.Stats.BitsSent, bound)
			}
		}
	}
}

func TestAgreementValidityTerminationRandom(t *testing.T) {
	// The three stacks satisfy EBA on random omission adversaries.
	type stack struct {
		name string
		ex   func(n int) model.Exchange
		act  func(n, tf int) model.ActionProtocol
	}
	stacks := []stack{
		{"min", func(n int) model.Exchange { return exchange.NewMin(n) },
			func(n, tf int) model.ActionProtocol { return NewMin(tf) }},
		{"basic", func(n int) model.Exchange { return exchange.NewBasic(n) },
			func(n, tf int) model.ActionProtocol { return NewBasic(n) }},
	}
	rng := rand.New(rand.NewSource(11))
	n, tf := 5, 2
	for _, st := range stacks {
		for trial := 0; trial < 80; trial++ {
			pat := adversary.RandomSO(rng, n, tf, tf+2, 0.5)
			inits := make([]model.Value, n)
			for i := range inits {
				inits[i] = model.Value(rng.Intn(2))
			}
			res := runStack(t, st.ex(n), st.act(n, tf), pat, inits)
			var dec model.Value = model.None
			for i := 0; i < n; i++ {
				id := model.AgentID(i)
				v := res.Decided(id)
				if v == model.None {
					t.Fatalf("%s trial %d: agent %d undecided\npattern %v inits %v",
						st.name, trial, i, pat, inits)
				}
				if res.Round(id) > tf+2 {
					t.Fatalf("%s trial %d: agent %d decided in round %d > t+2",
						st.name, trial, i, res.Round(id))
				}
				found := false
				for _, iv := range inits {
					if iv == v {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s trial %d: validity violated", st.name, trial)
				}
				if pat.Nonfaulty(id) {
					if dec == model.None {
						dec = v
					} else if dec != v {
						t.Fatalf("%s trial %d: agreement violated\npattern %v inits %v",
							st.name, trial, pat, inits)
					}
				}
			}
		}
	}
}

func TestNaiveCounterexampleIntroRunRPrime(t *testing.T) {
	// The introduction's run r′ with n=3, t=1: agent 0 is faulty with
	// initial preference 0; its round-1 decide-0 broadcast is dropped, and
	// its only delivered message is the (init,0) report that reaches agent
	// 2 in round 2. Agent 1 times out and decides 1 in round 3; agent 2
	// hears about the 0 and decides 0 in round 3 — two nonfaulty agents
	// disagree, so the naive 0-biased protocol is not an EBA protocol
	// under omission failures.
	n, tf := 3, 1
	pat := model.NewPattern(n, tf+2)
	pat.Silence(0, 0, tf+2)                      // drop everything...
	pat.SetFaulty(0)                             // (already faulty, explicit for clarity)
	pat = restoreDelivery(pat, 1, 0, 2, tf+2, n) // ...except round 2 to agent 2

	inits := []model.Value{model.Zero, model.One, model.One}
	res := runStack(t, exchange.NewReport(n), NewNaive(tf), pat, inits)

	if res.Decided(1) != model.One || res.Round(1) != 3 {
		t.Fatalf("agent 1: %v in round %d, want 1 in round 3", res.Decided(1), res.Round(1))
	}
	if res.Decided(2) != model.Zero || res.Round(2) != 3 {
		t.Fatalf("agent 2: %v in round %d, want 0 in round 3", res.Decided(2), res.Round(2))
	}
	// Agreement among the nonfaulty agents 1 and 2 is violated.
	if res.Decided(1) == res.Decided(2) {
		t.Fatal("counterexample failed to produce disagreement")
	}
}

// restoreDelivery rebuilds a pattern like pat but with the (m, from, to)
// message delivered. model.Pattern has no "undrop"; rebuilding keeps the
// builder API honest.
func restoreDelivery(pat *model.Pattern, m int, from, to model.AgentID, horizon, n int) *model.Pattern {
	q := model.NewPattern(n, horizon)
	for i := 0; i < n; i++ {
		if pat.Faulty(model.AgentID(i)) {
			q.SetFaulty(model.AgentID(i))
		}
	}
	for mm := 0; mm < horizon; mm++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !pat.Delivered(mm, model.AgentID(i), model.AgentID(j)) &&
					!(mm == m && model.AgentID(i) == from && model.AgentID(j) == to) {
					q.Drop(mm, model.AgentID(i), model.AgentID(j))
				}
			}
		}
	}
	return q
}

func TestNaiveSafeUnderCrash(t *testing.T) {
	// Under crash failures, every way of hearing about a 0 is a chain, so
	// the naive protocol satisfies agreement. Exhaustive over all crash(1)
	// patterns and all initial vectors for n=3.
	n, tf := 3, 1
	crash, err := adversary.NewCrashPatterns(n, tf, tf+2)
	if err != nil {
		t.Fatal(err)
	}
	for pat, ok := crash.Next(); ok; pat, ok = crash.Next() {
		p := pat.Clone()
		ivs, err := adversary.NewInitVectors(n)
		if err != nil {
			t.Fatal(err)
		}
		for inits, ok2 := ivs.Next(); ok2; inits, ok2 = ivs.Next() {
			res := runStack(t, exchange.NewReport(n), NewNaive(tf), p,
				append([]model.Value(nil), inits...))
			var dec model.Value = model.None
			for i := 0; i < n; i++ {
				id := model.AgentID(i)
				if !p.Nonfaulty(id) {
					continue
				}
				v := res.Decided(id)
				if v == model.None {
					t.Fatalf("nonfaulty %d undecided under crash pattern %v inits %v", i, p, inits)
				}
				if dec == model.None {
					dec = v
				} else if dec != v {
					t.Fatalf("naive protocol disagreed under CRASH pattern %v inits %v", p, inits)
				}
			}
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"Min":   func() { NewMin(-1) },
		"Basic": func() { NewBasic(0) },
		"Opt":   func() { NewOpt(-2) },
		"Naive": func() { NewNaive(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New%s with invalid argument did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestActStateTypeMismatchPanics(t *testing.T) {
	minState := exchange.NewMin(2).Initial(0, model.One)
	for name, p := range map[string]model.ActionProtocol{
		"Pbasic": NewBasic(2),
		"Popt":   NewOpt(1),
		"Pnaive": NewNaive(1),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s.Act on a Min state did not panic", name)
				}
			}()
			p.Act(0, minState)
		}()
	}
}

func TestNames(t *testing.T) {
	if NewMin(1).Name() != "Pmin" || NewBasic(3).Name() != "Pbasic" ||
		NewOpt(1).Name() != "Popt" || NewNaive(1).Name() != "Pnaive" {
		t.Error("unexpected protocol names")
	}
}
