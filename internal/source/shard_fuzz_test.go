package source

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseShardSpec drives the "i/k" parser with arbitrary inputs and
// pins its contract: anything accepted is a valid stripe that
// round-trips through String, and anything rejected names the
// offending input verbatim.
func FuzzParseShardSpec(f *testing.F) {
	for _, seed := range []string{
		// Accepted forms, including the padding environment variables
		// pick up.
		"", "0/1", "1/3", "2/3", " 1/3 ", "\t0/8\n", "007/100",
		// Rejected forms: out-of-range, malformed, signed, inner
		// whitespace, overflow, non-ASCII digits.
		"3/3", "0/0", "1/0", "a/b", "1/3/5", "/3", "1/", "/",
		"+1/3", "-1/3", "1 / 3", "1/ 3", "99999999999999999999/3",
		"0x1/3", "1.5/3", "１/３",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseShardSpec(s)
		if err != nil {
			if !strings.Contains(err.Error(), fmt.Sprintf("%q", s)) {
				t.Fatalf("ParseShardSpec(%q) error does not name the input: %v", s, err)
			}
			return
		}
		if verr := sp.Validate(); verr != nil {
			t.Fatalf("ParseShardSpec(%q) accepted an invalid spec %+v: %v", s, sp, verr)
		}
		if sp.Count < 1 || sp.Index < 0 || sp.Index >= sp.Count {
			t.Fatalf("ParseShardSpec(%q) = %+v, outside its own bounds", s, sp)
		}
		again, err := ParseShardSpec(sp.String())
		if err != nil {
			t.Fatalf("ParseShardSpec(%q).String() = %q does not re-parse: %v", s, sp.String(), err)
		}
		if again != sp {
			t.Fatalf("round trip of %q: %+v -> %q -> %+v", s, sp, sp.String(), again)
		}
	})
}
