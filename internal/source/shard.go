// Deterministic striding: the source-level half of multi-process sharding.
// A sweep's enumeration order is canonical, so splitting it by ordinal
// modulo K is reproducible everywhere — K processes constructing the same
// source and each keeping stripe i cover the sweep exactly once with no
// coordination. ShardSpec is the "i/k" value that names a stripe and
// round-trips through flags, environment variables, and config files.

package source

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Stride returns stripe shardIndex of a deterministic shardCount-way
// modular split of the source: the scenarios at ordinals shardIndex,
// shardIndex+shardCount, shardIndex+2·shardCount, … of the source's own
// order. The shardCount stripes partition the sweep exactly — no
// scenario lost, none duplicated — and striding composes with the other
// combinators (Limit, Filter, CrossInits) on either side; note the
// composition order matters, e.g. Stride after Limit stripes the
// truncated sweep, Limit after Stride truncates the stripe. The stripe's
// Count is derived from the source's when known. shardCount 1 returns
// the source unchanged; shardIndex outside [0, shardCount) is an error.
func Stride(src Source, shardIndex, shardCount int) (Source, error) {
	return core.Stride(src, shardIndex, shardCount)
}

// StripeSize returns the number of ordinals in [0, total) congruent to
// shardIndex modulo shardCount — the length of that stripe of a
// total-scenario sweep.
func StripeSize(total int64, shardIndex, shardCount int) int64 {
	return core.StripeSize(total, shardIndex, shardCount)
}

// ShardEnvVar is the conventional environment variable sharded tools read
// a default ShardSpec from ("i/k"), so process launchers can assign
// stripes without touching argument lists.
const ShardEnvVar = "EBA_SHARD"

// ShardSpec names one stripe of a deterministically split sweep: stripe
// Index of a Count-way modular split. The zero value means the whole
// sweep (stripe 0 of 1). It round-trips through flags (flag.Value),
// text-based configs (encoding.TextMarshaler/TextUnmarshaler), and the
// "i/k" string form CLI tools print.
type ShardSpec struct {
	// Index is the stripe, in [0, Count).
	Index int
	// Count is the number of stripes the sweep is split into.
	Count int
}

// ParseShardSpec parses the "i/k" form (e.g. "0/3"). Outer whitespace is
// trimmed — specs arrive through environment variables and config files,
// which pick up stray padding like " 1/3 " — but whitespace (or a sign)
// inside either number is a typo and rejected. The empty string is the
// whole sweep (0/1). Every error names the offending input verbatim.
func ParseShardSpec(s string) (ShardSpec, error) {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return ShardSpec{Index: 0, Count: 1}, nil
	}
	is, ks, found := strings.Cut(trimmed, "/")
	if !found {
		return ShardSpec{}, fmt.Errorf("source: shard spec %q is not of the form i/k", s)
	}
	i, err := parseShardInt(is)
	if err != nil {
		return ShardSpec{}, fmt.Errorf("source: shard spec %q: bad index: %w", s, err)
	}
	k, err := parseShardInt(ks)
	if err != nil {
		return ShardSpec{}, fmt.Errorf("source: shard spec %q: bad count: %w", s, err)
	}
	// Validate the raw values: an explicit "0/0" is malformed even though
	// the zero ShardSpec value (no spec given at all) means the whole
	// sweep.
	if k < 1 {
		return ShardSpec{}, fmt.Errorf("source: shard spec %q: count %d; need at least 1", s, k)
	}
	if i >= k {
		return ShardSpec{}, fmt.Errorf("source: shard spec %q: index %d outside [0, %d)", s, i, k)
	}
	return ShardSpec{Index: i, Count: k}, nil
}

// parseShardInt parses one side of the "i/k" form strictly: unsigned
// decimal digits only, so "1 / 3" and "+1/3" fail loudly instead of
// parsing differently in different tools.
func parseShardInt(part string) (int, error) {
	if part == "" {
		return 0, fmt.Errorf("missing value")
	}
	for _, r := range part {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("%q is not an unsigned decimal", part)
		}
	}
	v, err := strconv.Atoi(part)
	if err != nil {
		return 0, fmt.Errorf("%q: %w", part, err)
	}
	return v, nil
}

// norm maps the zero value onto its meaning, the whole sweep.
func (sp ShardSpec) norm() ShardSpec {
	if sp.Count == 0 && sp.Index == 0 {
		return ShardSpec{Index: 0, Count: 1}
	}
	return sp
}

// Validate reports whether the spec names a stripe: Count ≥ 1 and Index
// in [0, Count). The zero value is valid (the whole sweep). Errors name
// the offending spec in its "i/k" form.
func (sp ShardSpec) Validate() error {
	sp = sp.norm()
	if sp.Count < 1 {
		return fmt.Errorf("source: shard spec %d/%d: count %d; need at least 1", sp.Index, sp.Count, sp.Count)
	}
	if sp.Index < 0 || sp.Index >= sp.Count {
		return fmt.Errorf("source: shard spec %d/%d: index %d outside [0, %d)", sp.Index, sp.Count, sp.Index, sp.Count)
	}
	return nil
}

// Whole reports whether the spec selects the entire sweep (a 1-way split).
func (sp ShardSpec) Whole() bool { return sp.norm().Count == 1 }

// Apply returns the spec's stripe of the source.
func (sp ShardSpec) Apply(src Source) (Source, error) {
	sp = sp.norm()
	return Stride(src, sp.Index, sp.Count)
}

// String renders the "i/k" form. It is half of the flag.Value contract.
func (sp ShardSpec) String() string {
	sp = sp.norm()
	return fmt.Sprintf("%d/%d", sp.Index, sp.Count)
}

// Set parses the "i/k" form into the receiver, completing flag.Value: a
// *ShardSpec can be passed straight to flag.Var.
func (sp *ShardSpec) Set(s string) error {
	parsed, err := ParseShardSpec(s)
	if err != nil {
		return err
	}
	*sp = parsed
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (sp ShardSpec) MarshalText() ([]byte, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return []byte(sp.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (sp *ShardSpec) UnmarshalText(text []byte) error { return sp.Set(string(text)) }
