package source

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// drain pulls the source dry, returning scenarios. (scenarioKey and
// soSweep are shared with shard_test.go.)
func drain(src Source) []core.Scenario {
	var out []core.Scenario
	for sc, ok := src.Next(); ok; sc, ok = src.Next() {
		out = append(out, sc)
	}
	return out
}

func TestQuotientWeightsCoverFullSweep(t *testing.T) {
	for _, cfg := range []struct{ n, t int }{{3, 1}, {4, 1}, {3, 2}} {
		horizon := cfg.t + 2
		full := drain(soSweep(t, cfg.n, cfg.t, horizon))
		reps := drain(Quotient(soSweep(t, cfg.n, cfg.t, horizon)))

		var weighted int64
		repKeys := make(map[string]bool, len(reps))
		for _, sc := range reps {
			if sc.Weight < 1 {
				t.Fatalf("n=%d t=%d: representative without weight: %+v", cfg.n, cfg.t, sc)
			}
			weighted += sc.Weight
			repKeys[scenarioKey(sc)] = true
		}
		if weighted != int64(len(full)) {
			t.Errorf("n=%d t=%d: quotient weights sum to %d, full sweep has %d scenarios",
				cfg.n, cfg.t, weighted, len(full))
		}
		if len(repKeys) != len(reps) {
			t.Errorf("n=%d t=%d: duplicate representatives", cfg.n, cfg.t)
		}

		// Every full-sweep scenario's canonical form must be among the
		// representatives (the quotient is a full set of orbit reps).
		// The weighted-total check above already pins the big sweep;
		// canonicalizing every one of its scenarios again is test budget.
		if len(full) > 100_000 {
			continue
		}
		for _, sc := range full {
			rep, repInits, _ := model.CanonicalizeScenario(sc.Pattern, sc.Inits)
			if !repKeys[scenarioKey(core.Scenario{Pattern: rep, Inits: repInits})] {
				t.Fatalf("n=%d t=%d: scenario %s canonicalizes outside the representative set",
					cfg.n, cfg.t, scenarioKey(sc))
			}
		}
	}
}

// TestQuotientReduction pins the ISSUE's acceptance bar: the quotiented
// n=4,t=1 fip-shaped sweep must execute at least 4× fewer scenarios than
// the full 32,784.
func TestQuotientReduction(t *testing.T) {
	full := drain(soSweep(t, 4, 1, 3))
	if len(full) != 32784 {
		t.Fatalf("full n=4,t=1 sweep has %d scenarios, want 32784", len(full))
	}
	reps := drain(Quotient(soSweep(t, 4, 1, 3)))
	if 4*len(reps) > len(full) {
		t.Errorf("quotient kept %d of %d scenarios; want at least a 4x reduction", len(reps), len(full))
	}
	t.Logf("n=4,t=1: %d representatives for %d scenarios (%.1fx reduction)",
		len(reps), len(full), float64(len(full))/float64(len(reps)))
}

// TestQuotientComposesWithStride checks the sharding contract: striding
// the quotient partitions the representative enumeration exactly, with
// weights intact.
func TestQuotientComposesWithStride(t *testing.T) {
	whole := drain(Quotient(soSweep(t, 3, 1, 3)))
	for _, k := range []int{1, 2, 3} {
		var merged []core.Scenario
		stripes := make([][]core.Scenario, k)
		for i := 0; i < k; i++ {
			stripe, err := Stride(Quotient(soSweep(t, 3, 1, 3)), i, k)
			if err != nil {
				t.Fatal(err)
			}
			stripes[i] = drain(stripe)
		}
		// Round-robin re-interleave in ordinal order.
		for pos := 0; ; pos++ {
			i, j := pos%k, pos/k
			if j >= len(stripes[i]) {
				break
			}
			merged = append(merged, stripes[i][j])
		}
		if len(merged) != len(whole) {
			t.Fatalf("K=%d: stripes merge to %d scenarios, quotient has %d", k, len(merged), len(whole))
		}
		for idx := range whole {
			if scenarioKey(merged[idx]) != scenarioKey(whole[idx]) || merged[idx].Weight != whole[idx].Weight {
				t.Fatalf("K=%d: merged ordinal %d differs from unsharded quotient", k, idx)
			}
		}
	}
}

func TestQuotientCountUnknown(t *testing.T) {
	if _, ok := Quotient(soSweep(t, 3, 1, 3)).Count(); ok {
		t.Fatal("quotient source reported a known count; representative counts are discovered")
	}
}
