// Package source provides lazy, pull-style scenario generation for the
// Runner's streaming entry points (Runner.StreamFrom, Runner.RunSource).
//
// The paper's optimality results are quantified over *all* failure
// patterns in SO(t) or crash(t); checking them exhaustively means sweeps
// whose scenario counts grow as 2^(n·t·horizon). An eager []Scenario
// materializes that whole space before the first run executes. A Source
// instead yields scenarios one at a time, so a sweep's memory footprint
// is the Runner's reordering window — O(parallelism), not O(count) — and
// the exhaustive-check axis scales with hardware rather than RAM.
//
// The package has three layers:
//
//   - pattern generators wrapping internal/adversary's pull-style
//     iterators (SO, Crash);
//   - scenario generators pairing patterns with initial preferences
//     (CrossInits for the exhaustive pattern × 2^n-inits product,
//     WithInits for a fixed vector, RandomScenarios for the randomized
//     experiment workload);
//   - combinators over scenario sources (FromSlice, Limit, Filter,
//     Collect).
//
// All constructors validate bounds and return errors; nothing in this
// package panics on oversized sweeps (the guarantee the deprecated
// adversary.Enumerate* wrappers lack). Sources are single-consumer and
// not safe for concurrent use, matching the Runner's contract.
package source

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/model"
)

// Source is a pull-style stream of scenarios; see core.Source for the
// contract. Everything this package returns satisfies it.
type Source = core.Source

// Patterns is a pull-style stream of failure patterns. Next returns the
// next pattern or false when exhausted; Count reports the total number of
// patterns the stream will produce, if known. The returned pattern may be
// reused by the iterator between calls — Clone it if it must be retained
// (the scenario generators in this package do).
type Patterns interface {
	Next() (*model.Pattern, bool)
	Count() (int64, bool)
}

// SO returns the exhaustive stream of SO(t) failure patterns over n
// agents and the given horizon, in the adversary package's canonical
// enumeration order. It fails when the sweep's bounds are rejected.
func SO(n, t, horizon int, opts adversary.Options) (Patterns, error) {
	return adversary.NewSOPatterns(n, t, horizon, opts)
}

// Crash returns the exhaustive stream of crash(t) failure patterns over n
// agents and the given horizon, in canonical enumeration order.
func Crash(n, t, horizon int) (Patterns, error) {
	return adversary.NewCrashPatterns(n, t, horizon)
}

// crossInits crosses every pattern with every initial-preference vector.
type crossInits struct {
	patterns Patterns
	inits    *adversary.InitVectors
	n        int
	current  *model.Pattern
	total    int64
	hasTotal bool
}

// CrossInits returns the product stream pattern × initial vector: every
// pattern from the stream crossed with all 2^n assignments of initial
// preferences to the n agents, inits varying fastest — the run space the
// paper's exhaustive claims quantify over, in the enumeration order the
// eager call sites use. Each pattern is cloned once and shared read-only
// by its 2^n scenarios; each scenario owns its inits.
func CrossInits(patterns Patterns, n int) (Source, error) {
	probe, err := adversary.NewInitVectors(n)
	if err != nil {
		return nil, err
	}
	vectors, _ := probe.Count()
	src := &crossInits{patterns: patterns, n: n}
	if c, ok := patterns.Count(); ok && (c == 0 || vectors <= math.MaxInt64/c) {
		src.total, src.hasTotal = c*vectors, true
	}
	return src, nil
}

func (s *crossInits) Next() (core.Scenario, bool) {
	for {
		if s.current == nil {
			p, ok := s.patterns.Next()
			if !ok {
				return core.Scenario{}, false
			}
			// One clone per pattern: the iterator will mutate p, and the
			// scenarios built from it outlive this call.
			s.current = p.Clone()
			s.inits, _ = adversary.NewInitVectors(s.n)
		}
		inits, ok := s.inits.Next()
		if !ok {
			s.current = nil
			continue
		}
		return core.Scenario{
			Pattern: s.current,
			Inits:   append([]model.Value(nil), inits...),
		}, true
	}
}

func (s *crossInits) Count() (int64, bool) { return s.total, s.hasTotal }

// withInits pairs every pattern with one fixed initial vector.
type withInits struct {
	patterns Patterns
	inits    []model.Value
}

// WithInits returns the stream pairing every pattern with the same
// initial-preference vector. The vector is shared read-only by all
// scenarios; patterns are cloned.
func WithInits(patterns Patterns, inits []model.Value) Source {
	return &withInits{patterns: patterns, inits: inits}
}

func (s *withInits) Next() (core.Scenario, bool) {
	p, ok := s.patterns.Next()
	if !ok {
		return core.Scenario{}, false
	}
	return core.Scenario{Pattern: p.Clone(), Inits: s.inits}, true
}

func (s *withInits) Count() (int64, bool) { return s.patterns.Count() }

// randomScenarios draws a random pattern and a random init vector per
// scenario.
type randomScenarios struct {
	rng      *rand.Rand
	n, t     int
	horizon  int
	dropProb float64
	remain   int64
	bounded  bool
	total    int64
}

// RandomScenarios returns a stream of count random scenarios: a random
// SO(t) pattern followed by n random initial preferences per scenario,
// drawn lazily from the rng in exactly the order the experiments' eager
// generation loops draw them — so a lazy sweep consumes the rng
// identically to the slice it replaces. count < 0 means unbounded.
func RandomScenarios(rng *rand.Rand, n, t, horizon int, dropProb float64, count int64) Source {
	return &randomScenarios{
		rng: rng, n: n, t: t, horizon: horizon, dropProb: dropProb,
		remain: count, bounded: count >= 0, total: count,
	}
}

func (s *randomScenarios) Next() (core.Scenario, bool) {
	if s.bounded {
		if s.remain <= 0 {
			return core.Scenario{}, false
		}
		s.remain--
	}
	pat := adversary.RandomSO(s.rng, s.n, s.t, s.horizon, s.dropProb)
	inits := make([]model.Value, s.n)
	for i := range inits {
		inits[i] = model.Value(s.rng.Intn(2))
	}
	return core.Scenario{Pattern: pat, Inits: inits}, true
}

func (s *randomScenarios) Count() (int64, bool) { return s.total, s.bounded }

// FromSlice adapts an eager scenario slice to the Source interface; the
// bridge from the batch world into the streaming one.
func FromSlice(scenarios []core.Scenario) Source {
	return core.FromScenarios(scenarios)
}

// Limit truncates the source after max scenarios; the standard way to
// bound an unbounded generator. max < 0 is treated as 0 (an empty
// source). The truncated count is min(count, max) when the inner count
// is known, and stays unknown otherwise (an unknown-size source may end
// before the limit).
func Limit(src Source, max int64) Source {
	if max < 0 {
		max = 0
	}
	return &limitSource{src: src, remain: max, max: max}
}

type limitSource struct {
	src    Source
	remain int64
	max    int64 // the immutable truncation bound Count reports against
}

func (s *limitSource) Next() (core.Scenario, bool) {
	if s.remain <= 0 {
		return core.Scenario{}, false
	}
	sc, ok := s.src.Next()
	if !ok {
		s.remain = 0
		return core.Scenario{}, false
	}
	s.remain--
	return sc, true
}

func (s *limitSource) Count() (int64, bool) {
	c, ok := s.src.Count()
	if !ok {
		return 0, false
	}
	if c > s.max {
		return s.max, true
	}
	return c, true
}

// Filter passes through only the scenarios keep accepts. The count
// becomes unknown: how many survive cannot be predicted without running
// the sweep.
func Filter(src Source, keep func(core.Scenario) bool) Source {
	return &filterSource{src: src, keep: keep}
}

type filterSource struct {
	src  Source
	keep func(core.Scenario) bool
}

func (s *filterSource) Next() (core.Scenario, bool) {
	for {
		sc, ok := s.src.Next()
		if !ok {
			return core.Scenario{}, false
		}
		if s.keep(sc) {
			return sc, true
		}
	}
}

func (s *filterSource) Count() (int64, bool) { return 0, false }

// Collect drains the source into a slice — the inverse of FromSlice, for
// call sites that need the same scenarios replayed against several stacks
// (the run-by-run correspondence the paper's dominance order is defined
// over). It refuses unbounded sources.
func Collect(src Source) ([]core.Scenario, error) {
	c, ok := src.Count()
	if !ok {
		return nil, fmt.Errorf("source: refusing to collect a source of unknown size; bound it with Limit first")
	}
	// Cap the preallocation: a representable count can still exceed what
	// make can allocate, and growing past the cap is append's job.
	if c > 1<<20 {
		c = 1 << 20
	}
	out := make([]core.Scenario, 0, c)
	for sc, ok := src.Next(); ok; sc, ok = src.Next() {
		out = append(out, sc)
	}
	return out, nil
}
