package source

import (
	"repro/internal/core"
	"repro/internal/model"
)

// Quotient filters the source down to the canonical representatives of
// the agent-permutation orbits (model.CanonicalizeScenario), annotating
// each survivor with its orbit size as the scenario Weight. A quotiented
// sweep executes up to n! fewer scenarios than the full one while
// standing for exactly the same set: the weights of the representatives
// sum to the full sweep's scenario count, which is how weighted
// aggregates (decision tallies, OutcomeRecord multiplicities, the model
// checker's expanded system) recover full-sweep numbers.
//
// Quotient composes with the other combinators, but order matters with
// the sharding ones: put it INSIDE Stride (quotient first), so the K
// stripes partition the quotient enumeration and every representative is
// executed exactly once across the fleet. The representative count is
// not predictable without running the enumeration, so Count is unknown —
// stripe sizes of a quotiented sweep are discovered, not declared.
//
// The source's scenarios must arrive on distinct orbits or distinct
// representatives are not guaranteed; exhaustive enumerations (CrossInits
// over SO/Crash patterns) satisfy this trivially since they never repeat
// a scenario.
func Quotient(src Source) Source {
	return &quotientSource{src: src}
}

type quotientSource struct {
	src Source
}

func (s *quotientSource) Next() (core.Scenario, bool) {
	for {
		sc, ok := s.src.Next()
		if !ok {
			return core.Scenario{}, false
		}
		orbit, canonical := model.IsCanonicalScenario(sc.Pattern, sc.Inits)
		if !canonical {
			continue
		}
		sc.Weight = sc.EffectiveWeight() * orbit
		return sc, true
	}
}

func (s *quotientSource) Count() (int64, bool) { return 0, false }

// Err surfaces the inner source's mid-stream failure, if it reports one,
// so Quotient is transparent to the Runner's error plumbing exactly like
// Stride.
func (s *quotientSource) Err() error {
	if es, ok := s.src.(core.ErrorSource); ok {
		return es.Err()
	}
	return nil
}
