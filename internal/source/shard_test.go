package source

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/model"
)

// scenarioKey fingerprints a scenario for partition accounting.
func scenarioKey(sc core.Scenario) string {
	key := sc.Pattern.Key() + "|"
	for _, v := range sc.Inits {
		key += fmt.Sprint(int(v))
	}
	return key
}

// soSweep returns the exhaustive SO(t) pattern × inits product the eba
// package exposes as SourceSO.
func soSweep(t *testing.T, n, tf, horizon int) Source {
	t.Helper()
	pats, err := SO(n, tf, horizon, adversary.Options{})
	if err != nil {
		t.Fatalf("SO: %v", err)
	}
	src, err := CrossInits(pats, n)
	if err != nil {
		t.Fatalf("CrossInits: %v", err)
	}
	return src
}

// TestStridePartitionsSourceSO is the property test of the PR 5
// checklist: for several K, the K stripes of the exhaustive SO sweep
// partition it exactly — no gap, no overlap, and interleaving the
// stripes by ordinal restores the canonical order, scenario for
// scenario.
func TestStridePartitionsSourceSO(t *testing.T) {
	const n, tf = 3, 1
	horizon := tf + 2
	whole := collectAll(t, soSweep(t, n, tf, horizon))
	if len(whole) == 0 {
		t.Fatal("empty exhaustive sweep")
	}

	for _, k := range []int{1, 2, 3, 5, 8} {
		stripes := make([][]core.Scenario, k)
		for i := 0; i < k; i++ {
			stripe, err := Stride(soSweep(t, n, tf, horizon), i, k)
			if err != nil {
				t.Fatalf("Stride %d/%d: %v", i, k, err)
			}
			if c, ok := stripe.Count(); !ok || c != StripeSize(int64(len(whole)), i, k) {
				t.Fatalf("stripe %d/%d counts %d (known %v), want %d", i, k, c, ok,
					StripeSize(int64(len(whole)), i, k))
			}
			stripes[i] = collectAll(t, stripe)
			if int64(len(stripes[i])) != StripeSize(int64(len(whole)), i, k) {
				t.Fatalf("stripe %d/%d yielded %d scenarios, want %d", i, k, len(stripes[i]),
					StripeSize(int64(len(whole)), i, k))
			}
		}
		// Interleave by ordinal and compare against the canonical order.
		for ord := range whole {
			stripe := stripes[ord%k]
			got := stripe[ord/k]
			if scenarioKey(got) != scenarioKey(whole[ord]) {
				t.Fatalf("k=%d ordinal %d: stripe yields %s, canonical order has %s",
					k, ord, scenarioKey(got), scenarioKey(whole[ord]))
			}
		}
	}
}

// TestStrideShardCountBeyondLength checks stripes past the source's
// length come back empty — with correct counts — and the populated
// stripes still partition it.
func TestStrideShardCountBeyondLength(t *testing.T) {
	scenarios := make([]core.Scenario, 3)
	for i := range scenarios {
		scenarios[i] = core.Scenario{
			Pattern: model.NewPattern(3, 2),
			Inits:   []model.Value{model.Value(i & 1), model.Value(i >> 1), model.Zero},
		}
	}
	const k = 7
	for i := 0; i < k; i++ {
		stripe, err := Stride(FromSlice(scenarios), i, k)
		if err != nil {
			t.Fatalf("Stride %d/%d: %v", i, k, err)
		}
		got := collectAll(t, stripe)
		want := 0
		if i < len(scenarios) {
			want = 1
		}
		if len(got) != want {
			t.Fatalf("stripe %d/%d of a 3-scenario source yielded %d scenarios, want %d", i, k, len(got), want)
		}
		if c, ok := stripe.Count(); !ok || int(c) != want {
			t.Fatalf("stripe %d/%d counts %d (known %v), want %d", i, k, c, ok, want)
		}
	}
}

// TestStrideEmptySource checks every stripe of an empty source is empty.
func TestStrideEmptySource(t *testing.T) {
	for i := 0; i < 3; i++ {
		stripe, err := Stride(FromSlice(nil), i, 3)
		if err != nil {
			t.Fatalf("Stride %d/3: %v", i, 3)
		}
		if got := collectAll(t, stripe); len(got) != 0 {
			t.Fatalf("stripe %d/3 of an empty source yielded %d scenarios", i, len(got))
		}
		if c, ok := stripe.Count(); !ok || c != 0 {
			t.Fatalf("stripe %d/3 of an empty source counts %d (known %v)", i, c, ok)
		}
	}
}

// TestStrideCancellationMidStripe cancels a streaming run fed by a
// stripe and checks the Runner winds down without draining the stripe,
// with the cancellation cause intact.
func TestStrideCancellationMidStripe(t *testing.T) {
	const n, tf = 3, 1
	stack := core.MustStack("min", core.WithN(n), core.WithT(tf))
	stripe, err := Stride(soSweep(t, n, tf, stack.Horizon()), 1, 3)
	if err != nil {
		t.Fatalf("Stride: %v", err)
	}
	total, _ := stripe.Count()

	cause := fmt.Errorf("stripe preempted")
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	runner := core.NewRunner(stack, core.WithParallelism(2))
	seen := 0
	for oc := range runner.StreamFrom(ctx, stripe) {
		seen++
		if seen == 5 {
			cancel(cause)
		}
		if oc.Err != nil && ctx.Err() == nil {
			t.Fatalf("outcome %d failed before cancellation: %v", oc.Index, oc.Err)
		}
	}
	if int64(seen) >= total {
		t.Fatalf("stream drained the whole %d-scenario stripe despite cancellation", total)
	}
	if context.Cause(ctx) != cause {
		t.Fatalf("context cause = %v, want %v", context.Cause(ctx), cause)
	}
}

// TestStrideComposesWithLimit pins the documented composition order:
// Stride after Limit stripes the truncated sweep; Limit after Stride
// truncates the stripe.
func TestStrideComposesWithLimit(t *testing.T) {
	const n, tf = 3, 1
	horizon := tf + 2
	whole := collectAll(t, soSweep(t, n, tf, horizon))

	limited, err := Stride(Limit(soSweep(t, n, tf, horizon), 10), 1, 3)
	if err != nil {
		t.Fatalf("Stride(Limit): %v", err)
	}
	got := collectAll(t, limited)
	if len(got) != 3 { // ordinals 1, 4, 7 of the first 10
		t.Fatalf("Stride(Limit(10), 1/3) yielded %d scenarios, want 3", len(got))
	}
	for j, ord := range []int{1, 4, 7} {
		if scenarioKey(got[j]) != scenarioKey(whole[ord]) {
			t.Fatalf("Stride(Limit) scenario %d is not canonical ordinal %d", j, ord)
		}
	}

	stripeFirst, err := Stride(soSweep(t, n, tf, horizon), 1, 3)
	if err != nil {
		t.Fatalf("Stride: %v", err)
	}
	got = collectAll(t, Limit(stripeFirst, 2))
	if len(got) != 2 { // ordinals 1, 4 of the whole sweep
		t.Fatalf("Limit(Stride, 2) yielded %d scenarios, want 2", len(got))
	}
	for j, ord := range []int{1, 4} {
		if scenarioKey(got[j]) != scenarioKey(whole[ord]) {
			t.Fatalf("Limit(Stride) scenario %d is not canonical ordinal %d", j, ord)
		}
	}
}

// TestShardSpecRoundTrips checks the i/k value survives flags, text
// marshaling, and JSON embedding, and rejects malformed specs.
func TestShardSpecRoundTrips(t *testing.T) {
	for _, s := range []string{"0/1", "2/3", "7/8"} {
		sp, err := ParseShardSpec(s)
		if err != nil {
			t.Fatalf("ParseShardSpec(%q): %v", s, err)
		}
		if sp.String() != s {
			t.Fatalf("ParseShardSpec(%q).String() = %q", s, sp.String())
		}
		text, err := sp.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%q): %v", s, err)
		}
		var back ShardSpec
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != sp {
			t.Fatalf("text round-trip of %q: %+v != %+v", s, back, sp)
		}
	}

	// The empty string and the zero value both mean the whole sweep.
	sp, err := ParseShardSpec("")
	if err != nil || !sp.Whole() {
		t.Fatalf(`ParseShardSpec("") = %+v, %v; want the whole sweep`, sp, err)
	}
	var zero ShardSpec
	if !zero.Whole() || zero.Validate() != nil || zero.String() != "0/1" {
		t.Fatalf("zero ShardSpec = %q (valid: %v)", zero.String(), zero.Validate())
	}

	// flag.Value integration.
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var flagSpec ShardSpec
	fs.Var(&flagSpec, "shard", "")
	if err := fs.Parse([]string{"-shard", "1/4"}); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	if flagSpec != (ShardSpec{Index: 1, Count: 4}) {
		t.Fatalf("flag parsed %+v", flagSpec)
	}

	// JSON embedding via TextMarshaler.
	data, err := json.Marshal(map[string]ShardSpec{"shard": {Index: 2, Count: 5}})
	if err != nil || string(data) != `{"shard":"2/5"}` {
		t.Fatalf("json.Marshal = %s, %v", data, err)
	}

	for _, bad := range []string{"x", "1", "a/b", "3/3", "-1/2", "0/0", "1/0"} {
		if _, err := ParseShardSpec(bad); err == nil {
			t.Fatalf("ParseShardSpec(%q) accepted a malformed spec", bad)
		}
	}

	// Apply stripes a source like Stride does.
	scenarios := make([]core.Scenario, 5)
	for i := range scenarios {
		scenarios[i] = core.Scenario{Pattern: model.NewPattern(2, 1), Inits: []model.Value{model.Zero, model.One}}
	}
	striped, err := ShardSpec{Index: 1, Count: 2}.Apply(FromSlice(scenarios))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := collectAll(t, striped); len(got) != 2 {
		t.Fatalf("Apply(1/2) over 5 scenarios yielded %d, want 2", len(got))
	}
}

// TestParseShardSpecWhitespaceAndErrors pins ParseShardSpec's whitespace
// contract — outer padding (the kind $EBA_SHARD picks up from process
// launchers) is trimmed, interior whitespace and signs are typos — and
// that every error names the offending input verbatim.
func TestParseShardSpecWhitespaceAndErrors(t *testing.T) {
	good := []struct {
		in   string
		want ShardSpec
	}{
		{"1/3", ShardSpec{Index: 1, Count: 3}},
		{" 1/3 ", ShardSpec{Index: 1, Count: 3}},
		{"\t0/8\n", ShardSpec{Index: 0, Count: 8}},
		{"  ", ShardSpec{Index: 0, Count: 1}}, // all-whitespace == unset
		{"", ShardSpec{Index: 0, Count: 1}},
	}
	for _, tc := range good {
		sp, err := ParseShardSpec(tc.in)
		if err != nil {
			t.Errorf("ParseShardSpec(%q): %v", tc.in, err)
			continue
		}
		if sp != tc.want {
			t.Errorf("ParseShardSpec(%q) = %+v, want %+v", tc.in, sp, tc.want)
		}
	}

	bad := []struct {
		in      string
		wantSub string // every error names the offending input
	}{
		{"1 / 3", `"1 / 3"`},
		{"1/ 3", `"1/ 3"`},
		{" 1 /3", `" 1 /3"`},
		{"+1/3", `"+1/3"`},
		{"1/+3", `"1/+3"`},
		{"-0/3", `"-0/3"`},
		{"1/", `"1/"`},
		{"/3", `"/3"`},
		{"/", `"/"`},
		{"one/three", `"one/three"`},
		{"1/3/5", `"1/3/5"`},
		{"5/3", `"5/3"`},
		{"3/3", `"3/3"`},
		{"0/0", `"0/0"`},
		{"99999999999999999999/3", `"99999999999999999999/3"`},
	}
	for _, tc := range bad {
		_, err := ParseShardSpec(tc.in)
		if err == nil {
			t.Errorf("ParseShardSpec(%q) accepted a malformed spec", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseShardSpec(%q) error %q does not name the input %s", tc.in, err, tc.wantSub)
		}
	}
}

// TestShardSpecValidateNamesSpec checks Validate errors identify the
// spec they reject, not just the bad field.
func TestShardSpecValidateNamesSpec(t *testing.T) {
	cases := []struct {
		sp      ShardSpec
		wantSub string
	}{
		{ShardSpec{Index: 5, Count: 3}, "5/3"},
		{ShardSpec{Index: -1, Count: 3}, "-1/3"},
		{ShardSpec{Index: 1, Count: 0}, "1/0"},
		{ShardSpec{Index: 0, Count: -2}, "0/-2"},
	}
	for _, tc := range cases {
		err := tc.sp.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", tc.sp)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Validate(%+v) error %q does not name the spec %q", tc.sp, err, tc.wantSub)
		}
	}
	for _, ok := range []ShardSpec{{}, {Index: 0, Count: 1}, {Index: 2, Count: 3}} {
		if err := ok.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", ok, err)
		}
	}
}
