package source

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/model"
)

// collectAll drains a source without the Collect bound check, for tests.
func collectAll(t *testing.T, src Source) []core.Scenario {
	t.Helper()
	var out []core.Scenario
	for sc, ok := src.Next(); ok; sc, ok = src.Next() {
		out = append(out, sc)
	}
	return out
}

// eagerSOScenarios is the eager-slice generation the sources replace:
// every SO pattern × every init vector, materialized up front.
func eagerSOScenarios(n, t, horizon int) []core.Scenario {
	var out []core.Scenario
	pats, err := adversary.NewSOPatterns(n, t, horizon, adversary.Options{})
	if err != nil {
		panic(err)
	}
	for pat, ok := pats.Next(); ok; pat, ok = pats.Next() {
		p := pat.Clone()
		iv, err := adversary.NewInitVectors(n)
		if err != nil {
			panic(err)
		}
		for inits, ok2 := iv.Next(); ok2; inits, ok2 = iv.Next() {
			out = append(out, core.Scenario{Pattern: p, Inits: append([]model.Value(nil), inits...)})
		}
	}
	return out
}

// TestCrossInitsMatchesEagerEnumeration checks the streaming product
// yields exactly the eager slice: same scenarios, same order, correct
// count.
func TestCrossInitsMatchesEagerEnumeration(t *testing.T) {
	n, tf, horizon := 3, 1, 2
	want := eagerSOScenarios(n, tf, horizon)

	pats, err := SO(n, tf, horizon, adversary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := CrossInits(pats, n)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := src.Count(); !ok || c != int64(len(want)) {
		t.Fatalf("Count = %d/%v, want %d/true", c, ok, len(want))
	}
	got := collectAll(t, src)
	if len(got) != len(want) {
		t.Fatalf("source yielded %d scenarios, eager slice has %d", len(got), len(want))
	}
	for k := range want {
		if got[k].Pattern.Key() != want[k].Pattern.Key() {
			t.Fatalf("scenario %d: patterns differ", k)
		}
		for i := range want[k].Inits {
			if got[k].Inits[i] != want[k].Inits[i] {
				t.Fatalf("scenario %d: inits differ at agent %d", k, i)
			}
		}
	}
}

// TestCrossInitsClonesPatterns checks scenarios stay valid after the
// underlying iterator has moved on — the retention bug lazy pattern reuse
// would otherwise cause.
func TestCrossInitsClonesPatterns(t *testing.T) {
	pats, err := SO(3, 1, 2, adversary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := CrossInits(pats, 3)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := collectAll(t, src)
	keys := make(map[string]bool)
	for _, sc := range scenarios {
		keys[sc.Pattern.Key()] = true
	}
	// 49 distinct patterns (see the adversary tests), each appearing for
	// 2^3 init vectors.
	if len(keys) != 49 || len(scenarios) != 49*8 {
		t.Fatalf("%d distinct patterns over %d scenarios, want 49 over %d", len(keys), len(scenarios), 49*8)
	}
}

// TestRandomScenariosMatchesEagerLoop checks the lazy random source draws
// from the rng exactly as the experiments' eager loops do.
func TestRandomScenariosMatchesEagerLoop(t *testing.T) {
	n, tf, horizon, drop, count := 5, 2, 4, 0.45, 20

	eagerRng := rand.New(rand.NewSource(99))
	var want []core.Scenario
	for k := 0; k < count; k++ {
		pat := adversary.RandomSO(eagerRng, n, tf, horizon, drop)
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value(eagerRng.Intn(2))
		}
		want = append(want, core.Scenario{Pattern: pat, Inits: inits})
	}

	lazyRng := rand.New(rand.NewSource(99))
	got := collectAll(t, RandomScenarios(lazyRng, n, tf, horizon, drop, int64(count)))
	if len(got) != count {
		t.Fatalf("source yielded %d scenarios, want %d", len(got), count)
	}
	for k := range want {
		if got[k].Pattern.Key() != want[k].Pattern.Key() {
			t.Fatalf("scenario %d: patterns differ", k)
		}
		for i := range want[k].Inits {
			if got[k].Inits[i] != want[k].Inits[i] {
				t.Fatalf("scenario %d: inits differ at agent %d", k, i)
			}
		}
	}
}

// TestLimitAndUnbounded checks Limit bounds an unbounded generator and
// fixes up counts.
func TestLimitAndUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	unbounded := RandomScenarios(rng, 4, 1, 3, 0.3, -1)
	if _, ok := unbounded.Count(); ok {
		t.Fatal("unbounded source claims a count")
	}
	limited := Limit(unbounded, 7)
	// The truncated count stays unknown: an unknown-size source may end
	// before the limit (e.g. under Filter), so Limit cannot promise 7.
	if c, ok := limited.Count(); ok {
		t.Fatalf("Limit over unknown-size source claims count %d", c)
	}
	if got := collectAll(t, limited); len(got) != 7 {
		t.Fatalf("limited source yielded %d scenarios, want 7", len(got))
	}
	// Limit of a shorter bounded source reports the smaller count.
	short := Limit(FromSlice(make([]core.Scenario, 3)), 10)
	if c, ok := short.Count(); !ok || c != 3 {
		t.Fatalf("Limit over short slice count = %d/%v, want 3/true", c, ok)
	}
	// A negative limit is an empty source, never a negative count.
	empty := Limit(FromSlice(make([]core.Scenario, 3)), -1)
	if c, ok := empty.Count(); !ok || c != 0 {
		t.Fatalf("Limit(-1) count = %d/%v, want 0/true", c, ok)
	}
	if scs, err := Collect(empty); err != nil || len(scs) != 0 {
		t.Fatalf("Collect(Limit(-1)) = %d scenarios, err %v", len(scs), err)
	}
	// Count is the immutable total, not the remaining budget: it must not
	// shrink as the source drains (RunSource re-checks it after draining).
	drained := Limit(FromSlice(make([]core.Scenario, 9)), 5)
	for _, ok := drained.Next(); ok; _, ok = drained.Next() {
	}
	if c, ok := drained.Count(); !ok || c != 5 {
		t.Fatalf("Count after draining = %d/%v, want 5/true", c, ok)
	}
}

// TestFilter keeps only failure-free scenarios and checks the count is
// reported unknown.
func TestFilter(t *testing.T) {
	pats, err := SO(3, 1, 2, adversary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := CrossInits(pats, 3)
	if err != nil {
		t.Fatal(err)
	}
	filtered := Filter(src, func(sc core.Scenario) bool { return sc.Pattern.NumFaulty() == 0 })
	if _, ok := filtered.Count(); ok {
		t.Fatal("filtered source claims a count")
	}
	got := collectAll(t, filtered)
	// Only the failure-free pattern survives: 2^3 init vectors.
	if len(got) != 8 {
		t.Fatalf("filter kept %d scenarios, want 8", len(got))
	}
}

// TestCollect checks round-tripping through Collect/FromSlice and the
// unbounded refusal.
func TestCollect(t *testing.T) {
	pats, err := Crash(3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := WithInits(pats, adversary.UniformInits(3, model.One))
	scenarios, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 22 {
		t.Fatalf("collected %d crash scenarios, want 22", len(scenarios))
	}
	replay := collectAll(t, FromSlice(scenarios))
	for k := range scenarios {
		if replay[k].Pattern != scenarios[k].Pattern {
			t.Fatalf("FromSlice reordered scenario %d", k)
		}
	}
	if _, err := Collect(RandomScenarios(rand.New(rand.NewSource(1)), 3, 1, 2, 0.5, -1)); err == nil {
		t.Fatal("Collect accepted an unbounded source")
	}
}

// TestSourceDrivesRunner is the integration check at the package level: a
// lazy exhaustive sweep through Runner.StreamFrom equals the eager
// RunBatch over the same scenarios.
func TestSourceDrivesRunner(t *testing.T) {
	n, tf := 3, 1
	st := core.MustStack("min", core.WithN(n), core.WithT(tf))
	runner := core.NewRunner(st, core.WithParallelism(4), core.WithBufferReuse())

	eager := eagerSOScenarios(n, tf, st.Horizon())
	want, err := runner.RunBatch(context.Background(), eager)
	if err != nil {
		t.Fatal(err)
	}

	pats, err := SO(n, tf, st.Horizon(), adversary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := CrossInits(pats, n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runner.RunSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("source run returned %d results, batch %d", len(got), len(want))
	}
	for k := range want {
		if want[k].Stats != got[k].Stats {
			t.Fatalf("result %d: stats differ", k)
		}
		for i := range want[k].Decision {
			if want[k].Decision[i] != got[k].Decision[i] || want[k].DecisionRound[i] != got[k].DecisionRound[i] {
				t.Fatalf("result %d: decision ledger differs for agent %d", k, i)
			}
		}
	}
}
