// Package episteme is an epistemic model checker for the EBA contexts of
// the paper. It builds interpreted systems by exhaustively enumerating
// failure patterns and initial preferences, evaluates knowledge (K_i),
// indexical common knowledge among the nonfaulty agents (C_N), and the
// ⊡-reachability underlying Halpern–Moses–Waarts continual common
// knowledge, and uses these to verify the paper's theorems on concrete
// protocols:
//
//   - CheckImplements: Theorems 6.5, 6.6 and A.21 — a concrete protocol
//     implements the knowledge-based program P0 (or P1) in its context.
//   - CheckSafety: Proposition 6.4 — the safety condition of Def. 6.2.
//   - CheckOptimalityFIP: Theorem 7.5 — the optimality characterization
//     for full-information protocols.
//   - Synthesize: the Section 8 "epistemic synthesis" direction — derive a
//     concrete action protocol from a knowledge-based program by fixpoint
//     construction and export it as a runnable ActionProtocol.
//
// Everything here is exhaustive and therefore exponential in n, t, and the
// horizon; it is meant for small parameter values (n ≤ 4, t ≤ 2), which is
// where the paper's knowledge-theoretic claims are machine-checkable.
package episteme

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/model"
)

// runParallel executes every configuration on all CPUs, writing results
// into the slot matching the configuration's index.
func runParallel(cfgs []engine.Config, out []*engine.Result) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
		errs []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				k := next
				next++
				mu.Unlock()
				if k >= len(cfgs) {
					return
				}
				res, err := engine.Run(cfgs[k])
				if err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				out[k] = res
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// Context describes the interpreted system to build: an EBA context
// (exchange, failure model) plus the action protocol generating the runs
// and enumeration bounds.
type Context struct {
	// Exchange is the information-exchange protocol E.
	Exchange model.Exchange
	// T is the failure bound of the sending-omissions model SO(T).
	T int
	// Horizon is the number of rounds each run executes; the paper's
	// protocols decide by round T+2, so T+2 is the natural choice.
	Horizon int
	// Options tunes pattern enumeration.
	Options adversary.Options
	// Crash restricts enumeration to the crash model instead of SO(T).
	Crash bool
}

// patternIter is the pull-style pattern stream both failure models
// provide (adversary.SOPatterns, adversary.CrashPatterns).
type patternIter interface {
	Next() (*model.Pattern, bool)
}

// patterns returns the context's failure-pattern iterator. Rejected
// enumeration bounds (too many drop slots, Options.MaxPatterns exceeded)
// surface as errors instead of the deprecated enumerators' panics.
func (ctx Context) patterns(n, horizon int) (patternIter, error) {
	if ctx.Crash {
		return adversary.NewCrashPatterns(n, ctx.T, horizon)
	}
	return adversary.NewSOPatterns(n, ctx.T, horizon, ctx.Options)
}

// Point is a point (run, time) of an interpreted system.
type Point struct {
	// Run indexes System.Runs.
	Run int
	// Time is the time component m.
	Time int
}

// System is an interpreted system: every run of one action protocol under
// every admissible failure pattern and initial assignment, with an index
// from local states to the points carrying them.
type System struct {
	// N is the number of agents, T the failure bound, Horizon the number
	// of rounds.
	N, T, Horizon int
	// Runs holds every enumerated run.
	Runs []*engine.Result
	// index[m*N+i][key] lists the runs whose agent i has local state key
	// `key` at time m.
	index []map[string][]int
	// cnLayers caches the per-time condensations of the C_N
	// accessibility graph. A System is not safe for concurrent use.
	cnLayers map[int]*cnLayer
}

// BuildSystem enumerates every run of the action protocol in the context
// and indexes the local states. Runs execute on all available CPUs; the
// resulting order is deterministic (enumeration order).
func BuildSystem(ctx Context, act model.ActionProtocol) (*System, error) {
	if ctx.Exchange == nil || act == nil {
		return nil, fmt.Errorf("episteme: Exchange and action protocol are required")
	}
	n := ctx.Exchange.N()
	horizon := ctx.Horizon
	if horizon <= 0 {
		horizon = ctx.T + 2
	}
	sys := &System{N: n, T: ctx.T, Horizon: horizon}

	// Enumerate the configurations first, then execute them in parallel
	// into pre-assigned slots so the run order stays deterministic.
	pats, err := ctx.patterns(n, horizon)
	if err != nil {
		return nil, err
	}
	var cfgs []engine.Config
	for pat, ok := pats.Next(); ok; pat, ok = pats.Next() {
		p := pat.Clone()
		inits, err := adversary.NewInitVectors(n)
		if err != nil {
			return nil, err
		}
		for iv, ok := inits.Next(); ok; iv, ok = inits.Next() {
			cfgs = append(cfgs, engine.Config{
				Exchange: ctx.Exchange,
				Action:   act,
				Pattern:  p,
				Inits:    append([]model.Value(nil), iv...),
				Horizon:  horizon,
			})
		}
	}

	sys.Runs = make([]*engine.Result, len(cfgs))
	if err := runParallel(cfgs, sys.Runs); err != nil {
		return nil, err
	}

	sys.index = make([]map[string][]int, (horizon+1)*n)
	for slot := range sys.index {
		sys.index[slot] = make(map[string][]int)
	}
	for ri, res := range sys.Runs {
		for m := 0; m <= horizon; m++ {
			for i := 0; i < n; i++ {
				key := res.States[m][i].Key()
				slot := m*n + i
				sys.index[slot][key] = append(sys.index[slot][key], ri)
			}
		}
	}
	return sys, nil
}

// Key returns agent i's local-state key at point p.
func (s *System) Key(i model.AgentID, p Point) string {
	return s.Runs[p.Run].States[p.Time][i].Key()
}

// State returns agent i's local state at point p.
func (s *System) State(i model.AgentID, p Point) model.State {
	return s.Runs[p.Run].States[p.Time][i]
}

// SameState returns the runs whose agent i has, at time m, the given local
// state key: the ~_i equivalence class. The returned slice is shared; do
// not mutate.
func (s *System) SameState(i model.AgentID, m int, key string) []int {
	return s.index[m*s.N+int(i)][key]
}

// Class returns the points agent i cannot distinguish from p.
func (s *System) Class(i model.AgentID, p Point) []Point {
	runs := s.SameState(i, p.Time, s.Key(i, p))
	out := make([]Point, len(runs))
	for k, r := range runs {
		out[k] = Point{Run: r, Time: p.Time}
	}
	return out
}

// Knows evaluates K_i φ at p: φ holds at every point i cannot distinguish
// from p.
func (s *System) Knows(i model.AgentID, p Point, phi func(Point) bool) bool {
	for _, r := range s.SameState(i, p.Time, s.Key(i, p)) {
		if !phi(Point{Run: r, Time: p.Time}) {
			return false
		}
	}
	return true
}

// --- point-level properties of runs -------------------------------------

// Nonfaulty reports i ∈ N at p (a run-level property).
func (s *System) Nonfaulty(i model.AgentID, p Point) bool {
	return s.Runs[p.Run].Pattern.Nonfaulty(i)
}

// Exists reports ∃v at p: some agent started with initial preference v.
func (s *System) Exists(v model.Value, p Point) bool {
	for _, iv := range s.Runs[p.Run].Inits {
		if iv == v {
			return true
		}
	}
	return false
}

// DecidedVal returns decided_i at p: the value agent i has decided by time
// p.Time, or None.
func (s *System) DecidedVal(i model.AgentID, p Point) model.Value {
	res := s.Runs[p.Run]
	if r := res.Round(i); r > 0 && r <= p.Time {
		return res.Decided(i)
	}
	return model.None
}

// JustDecided reports jdecided_i = v at p: agent i decided v exactly in
// round p.Time.
func (s *System) JustDecided(i model.AgentID, v model.Value, p Point) bool {
	res := s.Runs[p.Run]
	return res.Round(i) == p.Time && res.Decided(i) == v
}

// Deciding reports deciding_i = v at p: agent i is undecided at p and its
// action in round p.Time+1 is decide(v). At the final time of a run it is
// false (nothing is recorded beyond the horizon; the paper's protocols
// have all decided by then).
func (s *System) Deciding(i model.AgentID, v model.Value, p Point) bool {
	res := s.Runs[p.Run]
	return res.Round(i) == p.Time+1 && res.Decided(i) == v
}

// NoDecidedN reports no-decided_N(v) at p: no nonfaulty agent has decided
// v by time p.Time.
func (s *System) NoDecidedN(v model.Value, p Point) bool {
	for i := 0; i < s.N; i++ {
		id := model.AgentID(i)
		if s.Nonfaulty(id, p) && s.DecidedVal(id, p) == v {
			return false
		}
	}
	return true
}

// FaultyAll reports whether every agent in mask (a bitmask over agents) is
// faulty at p.
func (s *System) FaultyAll(mask uint64, p Point) bool {
	pat := s.Runs[p.Run].Pattern
	for i := 0; i < s.N; i++ {
		if mask&(1<<uint(i)) != 0 && pat.Nonfaulty(model.AgentID(i)) {
			return false
		}
	}
	return true
}

// Points calls fn for every point of the system with time ≤ maxTime
// (maxTime < 0 means the full horizon).
func (s *System) Points(maxTime int, fn func(Point)) {
	if maxTime < 0 || maxTime > s.Horizon {
		maxTime = s.Horizon
	}
	for r := range s.Runs {
		for m := 0; m <= maxTime; m++ {
			fn(Point{Run: r, Time: m})
		}
	}
}
