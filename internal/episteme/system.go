// Package episteme is an epistemic model checker for the EBA contexts of
// the paper. It builds interpreted systems by exhaustively enumerating
// failure patterns and initial preferences, evaluates knowledge (K_i),
// indexical common knowledge among the nonfaulty agents (C_N), and the
// ⊡-reachability underlying Halpern–Moses–Waarts continual common
// knowledge, and uses these to verify the paper's theorems on concrete
// protocols:
//
//   - CheckImplements: Theorems 6.5, 6.6 and A.21 — a concrete protocol
//     implements the knowledge-based program P0 (or P1) in its context.
//   - CheckSafety: Proposition 6.4 — the safety condition of Def. 6.2.
//   - CheckOptimalityFIP: Theorem 7.5 — the optimality characterization
//     for full-information protocols.
//   - Synthesize: the Section 8 "epistemic synthesis" direction — derive a
//     concrete action protocol from a knowledge-based program by fixpoint
//     construction and export it as a runnable ActionProtocol.
//
// The checker is built in three sharded layers:
//
//   - Enumeration: runs stream from internal/source's pattern × inits
//     product through core.Runner.RunSource — the same worker pool,
//     cancellation, and ordering machinery every other sweep in the
//     repository uses. Action decisions are memoized per local state
//     across runs, so the thousands of runs that revisit a state pay for
//     its analysis once.
//   - Representation: local states are interned into dense class ids per
//     (time, agent) slot at index-build time; every knowledge query after
//     that is integer indexing, never string hashing. Index slots are
//     built in parallel.
//   - Evaluation: a System is safe for concurrent use, per-time C_N
//     condensations build concurrently, and the checkers shard their
//     point loops over a worker pool (WithParallelism) while reporting
//     violations in the canonical enumeration order — results are
//     bit-identical at every parallelism level.
//
// Everything here is exhaustive and therefore exponential in n, t, and the
// horizon; it is meant for small parameter values (n ≤ 4, t ≤ 2), which is
// where the paper's knowledge-theoretic claims are machine-checkable.
package episteme

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/source"
)

// Option tunes system construction and checking.
type Option func(*options)

type options struct {
	par         int
	quotient    bool
	cache       core.ResultCache
	fingerprint string
}

// WithParallelism sets the worker count used to execute runs, build the
// index and the C_N condensations, and shard the checkers' point loops.
// k <= 0 (and the default) means one worker per available CPU. Results
// are independent of k: every parallel path reassembles its output in
// the canonical enumeration order.
func WithParallelism(k int) Option {
	return func(o *options) { o.par = k }
}

// WithQuotient makes BuildSystem and BuildShardIndex enumerate only the
// canonical representative of each agent-permutation orbit
// (source.Quotient) instead of the full pattern × inits sweep — up to n!
// fewer executions. BuildSystem transparently expands the representative
// system back to the full one (ExpandQuotient), so its verdicts are
// bit-identical to the unquotiented build; BuildShardIndex exports the
// representative stripe (ShardIndex.Quotient) and the expansion happens
// once after MergeSystems. Requires the context's exchange to implement
// model.KeyPermuter and an agent-symmetric stack (every registered stack
// is; the expansion cross-checks orbit sizes and fails loudly on
// asymmetry in the enumeration).
func WithQuotient() Option {
	return func(o *options) { o.quotient = true }
}

// WithCache consults a result cache before executing each run and
// stores what it executed, keyed by the stack's full semantic identity
// (exchange, action protocol, n, t, horizon, build fingerprint — see
// core.Stack.VersionDigest) and the scenario. A cached build assembles
// the system from decision ledgers plus interned state keys, exactly as
// MergeSystems assembles a sharded one, so every verdict is
// bit-identical to the uncached build's — but, like a merged System, it
// carries no state traces (System.State is unavailable; Key and every
// checker work off the interned index).
func WithCache(c core.ResultCache, fingerprint string) Option {
	return func(o *options) {
		o.cache = c
		o.fingerprint = fingerprint
	}
}

func newOptions(opts []Option) options {
	o := options{}
	for _, opt := range opts {
		opt(&o)
	}
	if o.par <= 0 {
		o.par = goruntime.GOMAXPROCS(0)
	}
	return o
}

// parallelDo runs fn(k) for every k in [0, count) over min(par, count)
// workers, stopping early when ctx is cancelled. fn must be safe to call
// concurrently and must write only to its own k-indexed slots; callers
// reassemble deterministic output from those slots. It returns the
// context's cancellation cause, or nil when every k ran.
func parallelDo(ctx context.Context, par, count int, fn func(k int)) error {
	if par > count {
		par = count
	}
	if par <= 1 {
		for k := 0; k < count; k++ {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			fn(k)
		}
		return context.Cause(ctx)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				k := int(next.Add(1)) - 1
				if k >= count {
					return
				}
				fn(k)
			}
		}()
	}
	wg.Wait()
	return context.Cause(ctx)
}

// Context describes the interpreted system to build: an EBA context
// (exchange, failure model) plus the action protocol generating the runs
// and enumeration bounds.
type Context struct {
	// Exchange is the information-exchange protocol E.
	Exchange model.Exchange
	// T is the failure bound of the sending-omissions model SO(T).
	T int
	// Horizon is the number of rounds each run executes; the paper's
	// protocols decide by round T+2, so T+2 is the natural choice.
	Horizon int
	// Options tunes pattern enumeration.
	Options adversary.Options
	// Crash restricts enumeration to the crash model instead of SO(T).
	Crash bool
}

// ContextFor returns the model-checking context of a stack's EBA context:
// exhaustive enumeration of the stack's failure model at its execution
// horizon.
func ContextFor(s core.Stack) Context {
	return Context{Exchange: s.Exchange, T: s.T, Horizon: s.Horizon()}
}

func (c Context) horizonOrDefault() int {
	if c.Horizon > 0 {
		return c.Horizon
	}
	return c.T + 2
}

// patternSource returns the context's failure-pattern stream. Rejected
// enumeration bounds (too many drop slots, Options.MaxPatterns exceeded)
// surface as errors instead of the deprecated enumerators' panics.
func (c Context) patternSource(n, horizon int) (source.Patterns, error) {
	if c.Crash {
		return source.Crash(n, c.T, horizon)
	}
	return source.SO(n, c.T, horizon, c.Options)
}

// scenarioSource returns the streaming pattern × inits product both
// BuildSystem and Synthesize enumerate the system's runs from — the one
// definition of the run skeletons, shared so the two constructions cannot
// drift.
func (c Context) scenarioSource(n, horizon int) (core.Source, error) {
	pats, err := c.patternSource(n, horizon)
	if err != nil {
		return nil, err
	}
	return source.CrossInits(pats, n)
}

// Point is a point (run, time) of an interpreted system.
type Point struct {
	// Run indexes System.Runs.
	Run int
	// Time is the time component m.
	Time int
}

// System is an interpreted system: every run of one action protocol under
// every admissible failure pattern and initial assignment, with an
// interned index from local states to the points carrying them. After
// construction a System is immutable apart from internal synchronized
// caches, so it is safe for concurrent use — the checkers shard their
// loops over a worker pool.
type System struct {
	// N is the number of agents, T the failure bound, Horizon the number
	// of rounds.
	N, T, Horizon int
	// Runs holds every enumerated run.
	Runs []*engine.Result

	// weights, when non-nil, marks a symmetry-quotiented system: Runs are
	// the canonical orbit representatives of the sweep and weights[r] is
	// run r's orbit size (source.Quotient). A quotiented system is an
	// intermediate — ExpandQuotient rebuilds the full system from it; the
	// checkers refuse to run on one, since every knowledge query would
	// silently ignore the collapsed runs.
	weights []int64

	// par is the checker worker count (resolved, >= 1).
	par int

	// Interned local-state index. A slot is a (time, agent) pair,
	// slot = m*N + i; within a slot, runs carrying the same local state
	// form a class identified by a dense int:
	//
	//	classOf[slot][run]    → the run's class id in the slot
	//	classRuns[slot][c]    → the runs of class c, ascending
	//	classKey[slot][c]     → the class's local-state key
	//	classGlobal[slot][c]  → system-wide dense id of that key, shared
	//	                        across slots (cross-time state identity)
	//	byKey[slot]           → key → class id (string lookups only)
	classOf     [][]int32
	classRuns   [][][]int
	classKey    [][]string
	classGlobal [][]int32
	byKey       []map[string]int32
	globalByKey map[string]int32

	// cn lazily caches the per-time condensations of the C_N
	// accessibility graph; cnMu guards the map, each slot builds once.
	cnMu sync.Mutex
	cn   map[int]*cnSlot
}

// Quotiented reports whether the system's runs are symmetry-orbit
// representatives (built with WithQuotient, or merged from quotiented
// shard indexes) rather than the full enumeration. A quotiented system
// must be passed through ExpandQuotient before checking.
func (s *System) Quotiented() bool { return s.weights != nil }

// Weight returns the number of full-sweep runs run r stands for: its
// orbit size in a quotiented system, 1 otherwise.
func (s *System) Weight(run int) int64 {
	if s.weights == nil {
		return 1
	}
	return s.weights[run]
}

// checkableSystem refuses to run a checker over a quotiented system:
// its runs are one-per-orbit, so every knowledge relation and verdict
// would silently quantify over a fraction of the sweep. Expand first.
func (s *System) checkableSystem() error {
	if s.Quotiented() {
		return fmt.Errorf("episteme: checking a symmetry-quotiented system; ExpandQuotient it first")
	}
	return nil
}

// parallelism returns the checker worker count (>= 1 even on Systems
// assembled literally in tests).
func (s *System) parallelism() int {
	if s.par < 1 {
		return 1
	}
	return s.par
}

// parallel shards fn over the system's worker pool.
func (s *System) parallel(ctx context.Context, count int, fn func(k int)) error {
	return parallelDo(ctx, s.parallelism(), count, fn)
}

// BuildSystem enumerates every run of the action protocol in the context
// and indexes the local states. Runs stream from the shared scenario
// source through a core.Runner worker pool (WithParallelism tunes it);
// the resulting order is deterministic (enumeration order) and
// bit-identical at every parallelism level. The first execution error or
// ctx cancellation aborts the build, cancelling outstanding work via the
// context cause.
func BuildSystem(ctx context.Context, c Context, act model.ActionProtocol, opts ...Option) (*System, error) {
	if c.Exchange == nil || act == nil {
		return nil, fmt.Errorf("episteme: Exchange and action protocol are required")
	}
	o := newOptions(opts)
	n := c.Exchange.N()
	horizon := c.horizonOrDefault()

	src, err := c.scenarioSource(n, horizon)
	if err != nil {
		return nil, err
	}
	if o.quotient {
		rep, err := buildSystemFromSource(ctx, c, act, source.Quotient(src), o)
		if err != nil {
			return nil, err
		}
		return ExpandQuotient(ctx, rep, c)
	}
	return buildSystemFromSource(ctx, c, act, src, o)
}

// buildSystemFromSource enumerates the system's runs from the given
// scenario source — the whole sweep for BuildSystem, one deterministic
// stripe of it for BuildShardIndex — and indexes the local states.
func buildSystemFromSource(ctx context.Context, c Context, act model.ActionProtocol, src core.Source, o options) (*System, error) {
	if o.cache != nil {
		return buildSystemCached(ctx, c, act, src, o)
	}
	n := c.Exchange.N()
	horizon := c.horizonOrDefault()
	stack := core.Stack{
		Name:     "episteme(" + act.Name() + ")",
		Exchange: c.Exchange,
		Action:   act,
		N:        n,
		T:        c.T,
	}.AtHorizon(horizon)
	runner := core.NewRunner(stack,
		core.WithExecutor(newMemoExec(n)),
		core.WithParallelism(o.par),
		core.WithBufferReuse())
	var runs []*engine.Result
	var weights []int64
	if o.quotient {
		// A quotiented source annotates each representative with its orbit
		// size as the scenario Weight; RunSource drops scenarios, so stream
		// the outcomes to capture run results and weights side by side
		// (same ordering and fail-fast semantics as RunSource).
		weights = []int64{} // non-nil even for an empty stripe: quotiented-ness is structural
		rctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		for oc := range runner.StreamFrom(rctx, src) {
			if oc.Err != nil {
				cancel(oc.Err)
				return nil, oc.Err
			}
			runs = append(runs, oc.Result)
			weights = append(weights, oc.Scenario.EffectiveWeight())
		}
		if rctx.Err() != nil {
			return nil, context.Cause(rctx)
		}
	} else {
		var err error
		runs, err = runner.RunSource(ctx, src)
		if err != nil {
			return nil, err
		}
	}

	sys := &System{N: n, T: c.T, Horizon: horizon, Runs: runs, weights: weights, par: o.par}
	if err := sys.buildIndex(ctx, 0, horizon+1); err != nil {
		return nil, err
	}
	return sys, nil
}

// buildIndex interns the local states of times [m0, m1): each (time,
// agent) slot is built by one worker (slots are independent), then the
// new classes are folded into the system-wide key interning sequentially.
// Synthesize grows the index one time slice per round; BuildSystem builds
// all slices at once.
func (s *System) buildIndex(ctx context.Context, m0, m1 int) error {
	n := s.N
	if s.classOf == nil {
		nSlots := (s.Horizon + 1) * n
		s.classOf = make([][]int32, nSlots)
		s.classRuns = make([][][]int, nSlots)
		s.classKey = make([][]string, nSlots)
		s.classGlobal = make([][]int32, nSlots)
		s.byKey = make([]map[string]int32, nSlots)
		s.globalByKey = make(map[string]int32)
	}
	err := parallelDo(ctx, s.parallelism(), m1-m0, func(k int) {
		m := m0 + k
		// The memoizing executor aliases identical state rows across
		// runs, so group runs by row identity first: the string-keyed
		// interning then runs once per distinct row instead of once per
		// run. Systems without aliasing (Synthesize's skeletons) just
		// see one group per run.
		rowOf := make([]int32, len(s.Runs))
		rowRep := make([]int, 0, 64)
		rowIdx := make(map[*model.State]int32, len(s.Runs))
		for r, res := range s.Runs {
			row := res.States[m]
			head := &row[0]
			g, ok := rowIdx[head]
			if !ok {
				g = int32(len(rowRep))
				rowIdx[head] = g
				rowRep = append(rowRep, r)
			}
			rowOf[r] = g
		}
		for i := 0; i < n; i++ {
			slot := m*n + i
			byKey := make(map[string]int32, len(rowRep))
			classOfRow := make([]int32, len(rowRep))
			var classKey []string
			for g, rep := range rowRep {
				key := s.Runs[rep].States[m][i].Key()
				c, ok := byKey[key]
				if !ok {
					c = int32(len(classKey))
					byKey[key] = c
					classKey = append(classKey, key)
				}
				classOfRow[g] = c
			}
			classOf := make([]int32, len(s.Runs))
			for r := range s.Runs {
				classOf[r] = classOfRow[rowOf[r]]
			}
			s.classOf[slot] = classOf
			s.classRuns[slot] = packClassRuns(classOf, len(classKey))
			s.classKey[slot] = classKey
			s.byKey[slot] = byKey
		}
	})
	if err != nil {
		return err
	}
	lo, hi := m0*n, m1*n
	for slot := lo; slot < hi; slot++ {
		keys := s.classKey[slot]
		global := make([]int32, len(keys))
		for c, key := range keys {
			id, ok := s.globalByKey[key]
			if !ok {
				id = int32(len(s.globalByKey))
				s.globalByKey[key] = id
			}
			global[c] = id
		}
		s.classGlobal[slot] = global
	}
	return nil
}

// packClassRuns carves a slot's per-class member lists out of one flat
// arena: a counting pass sizes each class, every list is a subslice of a
// single []int slab, and a fill pass appends runs in ascending order —
// the same member order the append-per-class construction produced, at
// one allocation per slot instead of one per class. Index slots at late
// times have tens of thousands of near-singleton classes; the slab is
// what keeps building (and merging, and expanding) them allocation-cheap.
func packClassRuns(classOf []int32, nClasses int) [][]int {
	counts := make([]int, nClasses)
	for _, c := range classOf {
		counts[c]++
	}
	slab := make([]int, len(classOf))
	out := make([][]int, nClasses)
	off := 0
	for c, cnt := range counts {
		out[c] = slab[off : off : off+cnt]
		off += cnt
	}
	for r, c := range classOf {
		out[c] = append(out[c], r)
	}
	return out
}

// slot returns the index slot of agent i at time m.
func (s *System) slot(i model.AgentID, m int) int { return m*s.N + int(i) }

// classAt returns the dense class id of agent i's local state at (run, m).
func (s *System) classAt(i model.AgentID, m, run int) int32 {
	return s.classOf[s.slot(i, m)][run]
}

// runsOfClass returns the runs of class c in agent i's time-m slot. The
// returned slice is shared; do not mutate.
func (s *System) runsOfClass(i model.AgentID, m int, c int32) []int {
	return s.classRuns[s.slot(i, m)][c]
}

// Key returns agent i's local-state key at point p.
func (s *System) Key(i model.AgentID, p Point) string {
	if s.classKey == nil {
		return s.Runs[p.Run].States[p.Time][i].Key()
	}
	slot := s.slot(i, p.Time)
	return s.classKey[slot][s.classOf[slot][p.Run]]
}

// State returns agent i's local state at point p. Systems assembled by
// MergeSystems carry no state traces (their runs crossed a process
// boundary as decision ledgers plus interned class keys) and panic here;
// use Key, which every merged System serves from the index.
func (s *System) State(i model.AgentID, p Point) model.State {
	return s.Runs[p.Run].States[p.Time][i]
}

// SameState returns the runs whose agent i has, at time m, the given local
// state key: the ~_i equivalence class. The returned slice is shared; do
// not mutate.
func (s *System) SameState(i model.AgentID, m int, key string) []int {
	slot := s.slot(i, m)
	c, ok := s.byKey[slot][key]
	if !ok {
		return nil
	}
	return s.classRuns[slot][c]
}

// Class returns the points agent i cannot distinguish from p.
func (s *System) Class(i model.AgentID, p Point) []Point {
	runs := s.runsOfClass(i, p.Time, s.classAt(i, p.Time, p.Run))
	out := make([]Point, len(runs))
	for k, r := range runs {
		out[k] = Point{Run: r, Time: p.Time}
	}
	return out
}

// Knows evaluates K_i φ at p: φ holds at every point i cannot distinguish
// from p.
func (s *System) Knows(i model.AgentID, p Point, phi func(Point) bool) bool {
	for _, r := range s.runsOfClass(i, p.Time, s.classAt(i, p.Time, p.Run)) {
		if !phi(Point{Run: r, Time: p.Time}) {
			return false
		}
	}
	return true
}

// --- point-level properties of runs -------------------------------------

// Nonfaulty reports i ∈ N at p (a run-level property).
func (s *System) Nonfaulty(i model.AgentID, p Point) bool {
	return s.Runs[p.Run].Pattern.Nonfaulty(i)
}

// Exists reports ∃v at p: some agent started with initial preference v.
func (s *System) Exists(v model.Value, p Point) bool {
	for _, iv := range s.Runs[p.Run].Inits {
		if iv == v {
			return true
		}
	}
	return false
}

// DecidedVal returns decided_i at p: the value agent i has decided by time
// p.Time, or None.
func (s *System) DecidedVal(i model.AgentID, p Point) model.Value {
	res := s.Runs[p.Run]
	if r := res.Round(i); r > 0 && r <= p.Time {
		return res.Decided(i)
	}
	return model.None
}

// JustDecided reports jdecided_i = v at p: agent i decided v exactly in
// round p.Time.
func (s *System) JustDecided(i model.AgentID, v model.Value, p Point) bool {
	res := s.Runs[p.Run]
	return res.Round(i) == p.Time && res.Decided(i) == v
}

// Deciding reports deciding_i = v at p: agent i is undecided at p and its
// action in round p.Time+1 is decide(v). At the final time of a run it is
// false (nothing is recorded beyond the horizon; the paper's protocols
// have all decided by then).
func (s *System) Deciding(i model.AgentID, v model.Value, p Point) bool {
	res := s.Runs[p.Run]
	return res.Round(i) == p.Time+1 && res.Decided(i) == v
}

// NoDecidedN reports no-decided_N(v) at p: no nonfaulty agent has decided
// v by time p.Time.
func (s *System) NoDecidedN(v model.Value, p Point) bool {
	for i := 0; i < s.N; i++ {
		id := model.AgentID(i)
		if s.Nonfaulty(id, p) && s.DecidedVal(id, p) == v {
			return false
		}
	}
	return true
}

// FaultyAll reports whether every agent in mask (a bitmask over agents) is
// faulty at p.
func (s *System) FaultyAll(mask uint64, p Point) bool {
	pat := s.Runs[p.Run].Pattern
	for i := 0; i < s.N; i++ {
		if mask&(1<<uint(i)) != 0 && pat.Nonfaulty(model.AgentID(i)) {
			return false
		}
	}
	return true
}

// Points calls fn for every point of the system with time ≤ maxTime
// (maxTime < 0 means the full horizon).
func (s *System) Points(maxTime int, fn func(Point)) {
	if maxTime < 0 || maxTime > s.Horizon {
		maxTime = s.Horizon
	}
	for r := range s.Runs {
		for m := 0; m <= maxTime; m++ {
			fn(Point{Run: r, Time: m})
		}
	}
}

// truncated renders the standard truncation notice the checkers append
// when a violation cap cuts the report short.
func truncated(n int, what string) string {
	return fmt.Sprintf("... and %d more %s (truncated)", n, what)
}
