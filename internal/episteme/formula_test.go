package episteme

import (
	"strings"
	"testing"

	"repro/internal/model"
)

// formulaSystem builds a small shared system for the formula tests.
func formulaSystem(t *testing.T) *System {
	t.Helper()
	return buildMin(t, 3, 1)
}

func TestS5KnowledgeAxioms(t *testing.T) {
	// The knowledge relation is an equivalence, so S5 must hold. Checked
	// exhaustively on γ_min(3,1) for a representative φ.
	sys := formulaSystem(t)
	phi := ExistsF(model.Zero)
	for i := 0; i < sys.N; i++ {
		id := model.AgentID(i)
		k := K(id, phi)
		// T (veridicality): K_i φ ⇒ φ.
		if ok, p := Valid(sys, Implies(k, phi)); !ok {
			t.Errorf("axiom T fails at %v", p)
		}
		// 4 (positive introspection): K_i φ ⇒ K_i K_i φ.
		if ok, p := Valid(sys, Implies(k, K(id, k))); !ok {
			t.Errorf("axiom 4 fails at %v", p)
		}
		// 5 (negative introspection): ¬K_i φ ⇒ K_i ¬K_i φ.
		if ok, p := Valid(sys, Implies(Not(k), K(id, Not(k)))); !ok {
			t.Errorf("axiom 5 fails at %v", p)
		}
		// K (distribution): K_i(φ ⇒ ψ) ⇒ (K_i φ ⇒ K_i ψ).
		psi := NoDecidedNF(model.Zero)
		if ok, p := Valid(sys, Implies(K(id, Implies(phi, psi)), Implies(k, K(id, psi)))); !ok {
			t.Errorf("axiom K fails at %v", p)
		}
	}
}

func TestCommonKnowledgeFixpoint(t *testing.T) {
	// C_N φ ⇒ E_N(φ ∧ C_N φ): the fixpoint property of common knowledge
	// ([5], used throughout the paper's proofs). Checked on the FIP
	// system where C_N actually becomes true.
	sys := buildFIP(t, 3, 1, 0)
	phi := ExistsF(model.One)
	cn := CN(phi)
	if ok, p := Valid(sys, Implies(cn, EN(And(phi, cn)))); !ok {
		t.Errorf("fixpoint property fails at %v", p)
	}
	// And C_N is veridical (N is nonempty: t < n).
	if ok, p := Valid(sys, Implies(cn, phi)); !ok {
		t.Errorf("C_N veridicality fails at %v", p)
	}
	// Non-vacuity: C_N(∃1) holds somewhere.
	if ok, _ := Valid(sys, Not(cn)); ok {
		t.Fatal("C_N(∃1) never holds; test is vacuous")
	}
}

func TestTemporalOperators(t *testing.T) {
	sys := formulaSystem(t)
	// Pick the failure-free run with inits (0,1,1): agent 0 decides 0 in
	// round 1, everyone by round 2.
	runIdx := -1
	for r, res := range sys.Runs {
		if res.Pattern.NumFaulty() == 0 &&
			res.Inits[0] == model.Zero && res.Inits[1] == model.One && res.Inits[2] == model.One {
			runIdx = r
			break
		}
	}
	if runIdx < 0 {
		t.Fatal("expected run not found")
	}
	p0 := Point{Run: runIdx, Time: 0}

	if !Next(DecidedIs(0, model.Zero)).Holds(sys, p0) {
		t.Error("○(decided_0=0) should hold at time 0")
	}
	if DecidedIs(0, model.Zero).Holds(sys, p0) {
		t.Error("decided_0=0 must not hold at time 0")
	}
	if !DecidingIs(0, model.Zero).Holds(sys, p0) {
		t.Error("deciding_0=0 should hold at time 0")
	}
	if Prev(TrueF()).Holds(sys, p0) {
		t.Error("⊖true must be false at time 0")
	}
	if !Eventually(DecidedIs(2, model.Zero)).Holds(sys, p0) {
		t.Error("◇(decided_2=0) should hold")
	}
	if !Henceforth(ExistsF(model.Zero)).Holds(sys, p0) {
		t.Error("□∃0 should hold (inits are static)")
	}
	if Henceforth(DecidedIs(2, model.Zero)).Holds(sys, p0) {
		t.Error("□(decided_2=0) must fail at time 0")
	}
	// jdecided = decided ∧ ⊖(decided=⊥): equivalence on this run.
	jd := JustDecidedIs(0, model.Zero)
	alt := And(DecidedIs(0, model.Zero), Prev(DecidedIs(0, model.None)))
	for m := 0; m <= sys.Horizon; m++ {
		p := Point{Run: runIdx, Time: m}
		if jd.Holds(sys, p) != alt.Holds(sys, p) {
			t.Errorf("jdecided mismatch at time %d", m)
		}
	}
}

func TestP0GuardsAsFormulas(t *testing.T) {
	// Express P0's decide-0 and decide-1 guards in the formula language
	// and cross-check against KBPAction at every point where the agent is
	// undecided.
	sys := formulaSystem(t)
	for i := 0; i < sys.N; i++ {
		id := model.AgentID(i)
		var jdAny, decAny []Formula
		for j := 0; j < sys.N; j++ {
			jdAny = append(jdAny, JustDecidedIs(model.AgentID(j), model.Zero))
			decAny = append(decAny, DecidingIs(model.AgentID(j), model.Zero))
		}
		guard0 := Or(InitIs(id, model.Zero), K(id, Or(jdAny...)))
		guard1 := K(id, Not(Or(decAny...)))

		sys.Points(sys.Horizon-1, func(p Point) {
			if sys.DecidedVal(id, p).IsSet() {
				return
			}
			want := sys.KBPAction(P0, id, p)
			var got model.Action
			switch {
			case guard0.Holds(sys, p):
				got = model.Decide0
			case guard1.Holds(sys, p):
				got = model.Decide1
			default:
				got = model.Noop
			}
			if got != want {
				t.Fatalf("formula guards give %v, KBPAction gives %v at %v agent %d", got, want, p, i)
			}
		})
	}
}

func TestTerminationAsFormula(t *testing.T) {
	// The paper's Termination property as a validity: i ∈ N ⇒ ◇ decided_i.
	sys := formulaSystem(t)
	for i := 0; i < sys.N; i++ {
		id := model.AgentID(i)
		decided := Or(DecidedIs(id, model.Zero), DecidedIs(id, model.One))
		if ok, p := Valid(sys, Implies(NonfaultyF(id), Eventually(decided))); !ok {
			t.Errorf("Termination fails for agent %d at %v", i, p)
		}
	}
}

func TestAgreementAsFormula(t *testing.T) {
	// Agreement: ¬(i∈N ∧ j∈N ∧ decided_i=v ∧ decided_j=1−v).
	sys := formulaSystem(t)
	for i := 0; i < sys.N; i++ {
		for j := 0; j < sys.N; j++ {
			f := Not(And(
				NonfaultyF(model.AgentID(i)),
				NonfaultyF(model.AgentID(j)),
				DecidedIs(model.AgentID(i), model.Zero),
				DecidedIs(model.AgentID(j), model.One),
			))
			if ok, p := Valid(sys, f); !ok {
				t.Errorf("Agreement fails for (%d,%d) at %v", i, j, p)
			}
		}
	}
}

func TestFormulaStrings(t *testing.T) {
	f := Implies(K(1, ExistsF(model.Zero)), CN(NoDecidedNF(model.One)))
	s := f.String()
	for _, want := range []string{"K_1", "∃0", "C_N", "no-decided_N(1)", "⇒"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering %q missing %q", s, want)
		}
	}
	if got := Next(Prev(TimeIs(1))).String(); got != "○⊖time=1" {
		t.Errorf("temporal rendering = %q", got)
	}
	if got := And(TrueF(), Or()).String(); !strings.Contains(got, "true") {
		t.Errorf("boolean rendering = %q", got)
	}
}
