// The cached system build: BuildSystem/BuildShardIndex with WithCache
// answer each scenario from a core.ResultCache when they can and execute
// only the misses.
//
// The cache payload of one run is core.CachedRun with the episteme
// extension: the decision ledger plus the canonical local-state key of
// every (time, agent) slot — exactly the reduction a ShardIndex ships
// across a process boundary. Assembly therefore mirrors MergeSystems:
// every run (hit or miss alike) is restored trace-free and the class
// tables are re-interned from the slot keys in first-appearance-by-
// global-run order, the order buildIndex assigns, so the cached build's
// verdicts are bit-identical to the uncached one's at any hit/miss mix.

package episteme

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
)

// cacheStack is the stack identity cached episteme builds derive their
// version digest from (and buildSystemCached executes misses on). Both
// the per-scenario entries here and the stripe-index entries in
// BuildShardIndex must key off the same digest, so both build it here.
func cacheStack(c Context, act model.ActionProtocol, n, horizon int) core.Stack {
	return core.Stack{
		Name:     "episteme(" + act.Name() + ")",
		Exchange: c.Exchange,
		Action:   act,
		N:        n,
		T:        c.T,
	}.AtHorizon(horizon)
}

// buildSystemCached is buildSystemFromSource's cache-consulting twin.
// Pass 1 materializes the source's scenarios (CrossInits hands each
// scenario its own inits; the pattern is shared read-only, which is all
// this pass needs) and probes the cache; pass 2 batch-executes the
// misses on the canonical runner and stores their payloads; assembly
// then treats every run uniformly as a cached payload.
func buildSystemCached(ctx context.Context, c Context, act model.ActionProtocol, src core.Source, o options) (*System, error) {
	n := c.Exchange.N()
	horizon := c.horizonOrDefault()
	stack := cacheStack(c, act, n, horizon)
	version := stack.VersionDigest(o.fingerprint)

	var scenarios []core.Scenario
	for {
		sc, ok := src.Next()
		if !ok {
			break
		}
		scenarios = append(scenarios, sc)
	}
	if es, ok := src.(core.ErrorSource); ok {
		if err := es.Err(); err != nil {
			return nil, err
		}
	}
	total := len(scenarios)

	cached := make([]*core.CachedRun, total)
	keys := make([]string, total)
	var missIdx []int
	var missScn []core.Scenario
	for g, sc := range scenarios {
		digest, err := core.ScenarioDigest(sc.Pattern, sc.Inits)
		if err != nil {
			return nil, err
		}
		keys[g] = core.CacheKey(version, core.CacheKindSys, digest)
		if payload, ok := o.cache.Get(keys[g]); ok {
			cr := new(core.CachedRun)
			text, terr := sc.Pattern.MarshalText()
			if terr == nil && json.Unmarshal(payload, cr) == nil &&
				cr.Matches(string(text), sc.Inits, n, horizon, true) {
				cached[g] = cr
				continue
			}
			// Corrupt or misfiled: recompute below and overwrite.
		}
		missIdx = append(missIdx, g)
		missScn = append(missScn, sc)
	}

	if len(missScn) > 0 {
		runner := core.NewRunner(stack,
			core.WithExecutor(newMemoExec(n)),
			core.WithParallelism(o.par),
			core.WithBufferReuse())
		results, err := runner.RunBatch(ctx, missScn)
		if err != nil {
			return nil, err
		}
		for j, res := range results {
			cr, err := core.NewCachedRun(res, true)
			if err != nil {
				return nil, fmt.Errorf("episteme: encoding run for the cache: %w", err)
			}
			cached[missIdx[j]] = cr
			// Storing is best-effort: a full disk or unreachable server
			// never fails the build.
			if payload, jerr := json.Marshal(cr); jerr == nil {
				o.cache.Put(keys[missIdx[j]], payload)
			}
		}
	}

	runs := make([]*engine.Result, total)
	var weights []int64
	if o.quotient {
		weights = []int64{} // non-nil even for an empty stripe: quotiented-ness is structural
	}
	for g, sc := range scenarios {
		runs[g] = cached[g].Restore(stack.Config(sc.Pattern, sc.Inits))
		if o.quotient {
			weights = append(weights, sc.EffectiveWeight())
		}
	}

	sys := &System{N: n, T: c.T, Horizon: horizon, Runs: runs, weights: weights, par: o.par}
	nSlots := (horizon + 1) * n
	sys.classOf = make([][]int32, nSlots)
	sys.classRuns = make([][][]int, nSlots)
	sys.classKey = make([][]string, nSlots)
	sys.classGlobal = make([][]int32, nSlots)
	sys.byKey = make([]map[string]int32, nSlots)
	sys.globalByKey = make(map[string]int32)

	// Re-intern each time slice's slots in parallel from the payloads'
	// slot keys, assigning class ids by first appearance in global run
	// order — the order buildIndex and MergeSystems assign them.
	err := parallelDo(ctx, o.par, horizon+1, func(mi int) {
		for i := 0; i < n; i++ {
			slot := mi*n + i
			byKey := make(map[string]int32)
			var classKey []string
			classOf := make([]int32, total)
			for g := 0; g < total; g++ {
				key := cached[g].StateKeys[slot]
				cl, ok := byKey[key]
				if !ok {
					cl = int32(len(classKey))
					byKey[key] = cl
					classKey = append(classKey, key)
				}
				classOf[g] = cl
			}
			sys.classOf[slot] = classOf
			sys.classRuns[slot] = packClassRuns(classOf, len(classKey))
			sys.classKey[slot] = classKey
			sys.byKey[slot] = byKey
		}
	})
	if err != nil {
		return nil, err
	}
	// Fold the system-wide key interning sequentially in slot order,
	// exactly as buildIndex does.
	for slot := 0; slot < nSlots; slot++ {
		keys := sys.classKey[slot]
		global := make([]int32, len(keys))
		for cl, key := range keys {
			id, ok := sys.globalByKey[key]
			if !ok {
				id = int32(len(sys.globalByKey))
				sys.globalByKey[key] = id
			}
			global[cl] = id
		}
		sys.classGlobal[slot] = global
	}
	return sys, nil
}
