package episteme

import (
	"context"
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
)

func TestBoxComponentsJoinRuns(t *testing.T) {
	// Two runs sharing a nonfaulty decided-1 agent's local state at equal
	// times must land in the same ⊡-component; runs with disjoint
	// initial-preference information must not.
	sys := buildFIP(t, 3, 1, 0)
	comp := sys.BoxComponents(sys.memberNAndDecided(model.One))

	// Find the all-1 failure-free run and the all-1 run where agent 0 is
	// marked faulty but drops nothing: every agent's view is identical at
	// every time, so the runs must share a component.
	var ffRun, markedRun = -1, -1
	for r, res := range sys.Runs {
		allOnes := true
		for _, v := range res.Inits {
			if v != model.One {
				allOnes = false
			}
		}
		if !allOnes {
			continue
		}
		drops := false
		for m := 0; m < sys.Horizon; m++ {
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					if !res.Pattern.Delivered(m, model.AgentID(i), model.AgentID(j)) {
						drops = true
					}
				}
			}
		}
		if drops {
			continue
		}
		switch res.Pattern.NumFaulty() {
		case 0:
			ffRun = r
		case 1:
			if res.Pattern.Faulty(0) && markedRun < 0 {
				markedRun = r
			}
		}
	}
	if ffRun < 0 || markedRun < 0 {
		t.Fatal("expected runs not found")
	}
	if comp[ffRun] != comp[markedRun] {
		t.Error("behaviorally identical all-1 runs are in different ⊡-components")
	}

	// An all-0 failure-free run has no N∧O members at all (everyone
	// decides 0), so it cannot join the all-1 run's component.
	var zeroRun = -1
	for r, res := range sys.Runs {
		if res.Pattern.NumFaulty() != 0 {
			continue
		}
		allZero := true
		for _, v := range res.Inits {
			if v != model.Zero {
				allZero = false
			}
		}
		if allZero {
			zeroRun = r
			break
		}
	}
	if zeroRun < 0 {
		t.Fatal("all-0 run not found")
	}
	if comp[zeroRun] == comp[ffRun] {
		t.Error("all-0 and all-1 failure-free runs share an N∧O ⊡-component")
	}
}

func TestMemberNAndDecided(t *testing.T) {
	sys := buildFIP(t, 3, 1, 0)
	member := sys.memberNAndDecided(model.One)
	// In the all-1 failure-free run, agents decide 1 in round 2 (time 1):
	// members from time 0 ("about to decide") onward... the set includes
	// agents with DecisionRound ≤ time+1, so at time 0 deciders-in-round-1
	// only. Popt decides in round 2 here, so membership starts at time 1.
	var ffRun = -1
	for r, res := range sys.Runs {
		if res.Pattern.NumFaulty() != 0 {
			continue
		}
		allOnes := true
		for _, v := range res.Inits {
			if v != model.One {
				allOnes = false
			}
		}
		if allOnes {
			ffRun = r
			break
		}
	}
	if ffRun < 0 {
		t.Fatal("run not found")
	}
	if member(0, Point{Run: ffRun, Time: 0}) {
		t.Error("agent 0 should not be an N∧O member at time 0 (decides in round 2)")
	}
	if !member(0, Point{Run: ffRun, Time: 1}) {
		t.Error("agent 0 should be an N∧O member at time 1 (about to decide 1)")
	}
	if !member(0, Point{Run: ffRun, Time: 2}) {
		t.Error("membership must persist after deciding")
	}
}

func TestCheckOptimalityDetectsSlowProtocol(t *testing.T) {
	// Covered more fully in E9; here: the violations mention the failing
	// direction so the reports are actionable.
	sys, err := BuildSystem(context.Background(), Context{Exchange: exchange.NewFIP(3), T: 1},
		slowFIPAction{})
	if err != nil {
		t.Fatal(err)
	}
	vs := checkOptimality(t, sys, -1, 1)
	if len(vs) == 0 {
		t.Fatal("a never-deciding protocol cannot satisfy the optimality characterization")
	}
}

// slowFIPAction never decides: trivially correct-by-silence and trivially
// non-optimal.
type slowFIPAction struct{}

func (slowFIPAction) Name() string                                { return "Pslow" }
func (slowFIPAction) Act(model.AgentID, model.State) model.Action { return model.Noop }
