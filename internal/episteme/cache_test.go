package episteme

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/action"
	"repro/internal/core"
)

// testStore is an in-memory core.ResultCache counting its traffic.
type testStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	hits int
	puts int
}

func newTestStore() *testStore { return &testStore{m: make(map[string][]byte)} }

func (s *testStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	v, ok := s.m[key]
	if ok {
		s.hits++
	}
	return v, ok
}

func (s *testStore) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.m[key] = append([]byte(nil), val...)
	return nil
}

func (s *testStore) counts() (gets, hits, puts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gets, s.hits, s.puts
}

// systemVerdicts folds a system's index fingerprint and every checker
// verdict into one comparable string.
func systemVerdicts(t *testing.T, sys *System) string {
	t.Helper()
	return indexFingerprint(sys) +
		fmt.Sprint(checkImplements(t, sys, P1, 50)) +
		fmt.Sprint(checkSafety(t, sys, 50)) +
		fmt.Sprint(checkOptimality(t, sys, -1, 50))
}

// TestCachedBuildBitIdentical: a cold cached build and a warm one both
// reproduce the uncached build's index and verdicts exactly, and the
// warm build executes nothing (zero Puts — every probe hits).
func TestCachedBuildBitIdentical(t *testing.T) {
	c := fipContext31()
	act := action.NewOpt(1)
	single, err := BuildSystem(context.Background(), c, act, WithParallelism(2))
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	want := systemVerdicts(t, single)

	store := newTestStore()
	cold, err := BuildSystem(context.Background(), c, act, WithParallelism(2), WithCache(store, "fp"))
	if err != nil {
		t.Fatalf("cold cached BuildSystem: %v", err)
	}
	if got := systemVerdicts(t, cold); got != want {
		t.Fatal("cold cached build differs from the uncached build")
	}
	_, hits, putsCold := store.counts()
	if hits != 0 || putsCold != len(single.Runs) {
		t.Fatalf("cold build: %d hits, %d puts; want 0 hits and %d puts", hits, putsCold, len(single.Runs))
	}

	warm, err := BuildSystem(context.Background(), c, act, WithParallelism(2), WithCache(store, "fp"))
	if err != nil {
		t.Fatalf("warm cached BuildSystem: %v", err)
	}
	if got := systemVerdicts(t, warm); got != want {
		t.Fatal("warm cached build differs from the uncached build")
	}
	if _, _, puts := store.counts(); puts != putsCold {
		t.Fatalf("warm build executed %d runs, want 0", puts-putsCold)
	}
}

// TestCachedBuildQuotient runs the same equivalence through the
// symmetry quotient: quotiented cached builds (cold and warm) expand to
// the full system's verdicts, and multiplicities survive the cache.
func TestCachedBuildQuotient(t *testing.T) {
	c := fipContext31()
	act := action.NewOpt(1)
	single, err := BuildSystem(context.Background(), c, act, WithParallelism(2))
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	want := systemVerdicts(t, single)

	store := newTestStore()
	for round, label := range []string{"cold", "warm"} {
		sys, err := BuildSystem(context.Background(), c, act,
			WithParallelism(2), WithQuotient(), WithCache(store, "fp"))
		if err != nil {
			t.Fatalf("%s quotiented cached BuildSystem: %v", label, err)
		}
		if got := systemVerdicts(t, sys); got != want {
			t.Fatalf("%s quotiented cached build differs from the uncached full build", label)
		}
		if round == 1 {
			_, hits, _ := store.counts()
			if hits == 0 {
				t.Fatal("warm quotiented build hit nothing")
			}
		}
	}
}

// TestCachedShardIndexBitIdentical: BuildShardIndex with a cache
// produces the same shard indexes — digest-identical — as without, at
// any hit/miss mix, and MergeSystems over them matches the uncached
// single-process build.
func TestCachedShardIndexBitIdentical(t *testing.T) {
	c := fipContext31()
	act := action.NewOpt(1)
	single, err := BuildSystem(context.Background(), c, act, WithParallelism(2))
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	want := systemVerdicts(t, single)

	const k = 2
	store := newTestStore()
	// Warm only stripe 0: the later full builds mix hits (stripe 0's
	// scenarios) with misses (stripe 1's).
	if _, err := BuildShardIndex(context.Background(), c, act, 0, k, WithParallelism(2), WithCache(store, "fp")); err != nil {
		t.Fatalf("warming BuildShardIndex 0/%d: %v", k, err)
	}

	shards := make([]*ShardIndex, k)
	for i := 0; i < k; i++ {
		plain, err := BuildShardIndex(context.Background(), c, act, i, k, WithParallelism(2))
		if err != nil {
			t.Fatalf("BuildShardIndex %d/%d: %v", i, k, err)
		}
		cachedIdx, err := BuildShardIndex(context.Background(), c, act, i, k, WithParallelism(2), WithCache(store, "fp"))
		if err != nil {
			t.Fatalf("cached BuildShardIndex %d/%d: %v", i, k, err)
		}
		if plain.Digest() != cachedIdx.Digest() {
			t.Fatalf("shard %d/%d: cached index digest %s, uncached %s", i, k, cachedIdx.Digest(), plain.Digest())
		}
		shards[i] = cachedIdx
	}
	merged, err := MergeSystems(context.Background(), shards, WithParallelism(2))
	if err != nil {
		t.Fatalf("MergeSystems: %v", err)
	}
	if got := systemVerdicts(t, merged); got != want {
		t.Fatal("merged cached shard indexes differ from the single-process build")
	}
}

// TestCachedShardIndexWarmSkipsEnumeration: a warm BuildShardIndex is
// answered by the stripe-index entry alone — one probe, one hit,
// nothing stored — without re-enumerating (or, quotiented, re-
// canonicalizing) the sweep, and the index is digest-identical to the
// cold one. This is the path the fip_n5_t1_quotient_warm bench entry
// gates.
func TestCachedShardIndexWarmSkipsEnumeration(t *testing.T) {
	c := fipContext31()
	act := action.NewOpt(1)
	store := newTestStore()
	opts := []Option{WithParallelism(2), WithQuotient(), WithCache(store, "fp")}
	cold, err := BuildShardIndex(context.Background(), c, act, 0, 1, opts...)
	if err != nil {
		t.Fatalf("cold BuildShardIndex: %v", err)
	}
	getsCold, _, putsCold := store.counts()
	warm, err := BuildShardIndex(context.Background(), c, act, 0, 1, opts...)
	if err != nil {
		t.Fatalf("warm BuildShardIndex: %v", err)
	}
	if warm.Digest() != cold.Digest() {
		t.Fatalf("warm index digest %s, cold %s", warm.Digest(), cold.Digest())
	}
	gets, hits, puts := store.counts()
	if gets-getsCold != 1 || hits != 1 || puts != putsCold {
		t.Fatalf("warm build probed %d times with %d hits and stored %d entries; want one hitting index probe and no stores",
			gets-getsCold, hits, puts-putsCold)
	}
}

// TestCachedShardIndexPoisoned corrupts every cached payload — the
// stripe-index entry included — and checks the warm build falls all the
// way back to execution, overwrites the poison, and still reproduces
// the cold index exactly.
func TestCachedShardIndexPoisoned(t *testing.T) {
	c := fipContext31()
	act := action.NewOpt(1)
	store := newTestStore()
	cold, err := BuildShardIndex(context.Background(), c, act, 0, 1, WithParallelism(2), WithCache(store, "fp"))
	if err != nil {
		t.Fatalf("cold BuildShardIndex: %v", err)
	}
	store.mu.Lock()
	for key := range store.m {
		store.m[key] = []byte(`{"kind":"not-this-one"}`)
	}
	putsBefore := store.puts
	store.mu.Unlock()

	warm, err := BuildShardIndex(context.Background(), c, act, 0, 1, WithParallelism(2), WithCache(store, "fp"))
	if err != nil {
		t.Fatalf("warm BuildShardIndex over poisoned store: %v", err)
	}
	if warm.Digest() != cold.Digest() {
		t.Fatal("index rebuilt over a poisoned cache differs from the cold one")
	}
	// Every poisoned entry — the runs and the stripe index — was
	// recomputed and overwritten.
	if _, _, puts := store.counts(); puts-putsBefore != len(cold.Runs)+1 {
		t.Fatalf("poisoned build re-stored %d entries, want %d", puts-putsBefore, len(cold.Runs)+1)
	}
}

// TestCachedBuildPoisonedEntries corrupts every cached payload and
// checks the warm build recomputes them all, still bit-identical.
func TestCachedBuildPoisonedEntries(t *testing.T) {
	c := fipContext31()
	act := action.NewOpt(1)
	store := newTestStore()
	cold, err := BuildSystem(context.Background(), c, act, WithParallelism(2), WithCache(store, "fp"))
	if err != nil {
		t.Fatalf("cold cached BuildSystem: %v", err)
	}
	want := systemVerdicts(t, cold)

	store.mu.Lock()
	for key := range store.m {
		store.m[key] = []byte(`{"pattern":"not-this-one"}`)
	}
	putsBefore := store.puts
	store.mu.Unlock()

	warm, err := BuildSystem(context.Background(), c, act, WithParallelism(2), WithCache(store, "fp"))
	if err != nil {
		t.Fatalf("warm cached BuildSystem over poisoned store: %v", err)
	}
	if got := systemVerdicts(t, warm); got != want {
		t.Fatal("build over a poisoned cache differs")
	}
	if _, _, puts := store.counts(); puts-putsBefore != len(cold.Runs) {
		t.Fatalf("poisoned build re-stored %d entries, want %d", puts-putsBefore, len(cold.Runs))
	}
}

// TestCachedBuildDifferentFingerprintMisses: a cache warmed under one
// build fingerprint serves nothing to another.
func TestCachedBuildDifferentFingerprintMisses(t *testing.T) {
	c := fipContext31()
	act := action.NewOpt(1)
	store := newTestStore()
	if _, err := BuildSystem(context.Background(), c, act, WithParallelism(2), WithCache(store, "fp")); err != nil {
		t.Fatal(err)
	}
	_, hitsBefore, _ := store.counts()
	if _, err := BuildSystem(context.Background(), c, act, WithParallelism(2), WithCache(store, "fp2")); err != nil {
		t.Fatal(err)
	}
	if _, hits, _ := store.counts(); hits != hitsBefore {
		t.Fatalf("changed fingerprint still hit %d entries", hits-hitsBefore)
	}
}

var _ core.ResultCache = (*testStore)(nil)
