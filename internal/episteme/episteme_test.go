package episteme

import (
	"context"
	"testing"

	"repro/internal/action"
	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/exchange"
	"repro/internal/model"
)

func TestBuildSystemShape(t *testing.T) {
	sys := buildMin(t, 3, 1)
	// 49 patterns (see adversary tests) × 8 initial vectors... with
	// horizon t+2 = 3: 1 + 3·2^(3·2) = 193 patterns, × 8 = 1544 runs.
	if len(sys.Runs) != 1544 {
		t.Fatalf("got %d runs, want 1544", len(sys.Runs))
	}
	if sys.Horizon != 3 || sys.N != 3 || sys.T != 1 {
		t.Fatalf("unexpected system dims: %+v", sys)
	}
}

func TestBuildSystemValidation(t *testing.T) {
	if _, err := BuildSystem(context.Background(), Context{}, nil); err == nil {
		t.Error("empty context accepted")
	}
}

func TestKnowledgeIsVeridical(t *testing.T) {
	// K_i φ ⇒ φ: sampled over points and a mix of formulas.
	sys := buildMin(t, 3, 1)
	phi := func(q Point) bool { return sys.Exists(model.Zero, q) }
	sys.Points(-1, func(p Point) {
		for i := 0; i < sys.N; i++ {
			if sys.Knows(model.AgentID(i), p, phi) && !phi(p) {
				t.Fatalf("K_%d(∃0) held at a ¬∃0 point %v", i, p)
			}
		}
	})
}

func TestKnowledgeIsIntrospective(t *testing.T) {
	// K_i φ is a function of i's local state: points in the same class
	// agree on it.
	sys := buildMin(t, 3, 1)
	phi := func(q Point) bool { return sys.NoDecidedN(model.Zero, q) }
	p := Point{Run: 17, Time: 2}
	for i := 0; i < sys.N; i++ {
		id := model.AgentID(i)
		v := sys.Knows(id, p, phi)
		for _, q := range sys.Class(id, p) {
			if sys.Knows(id, q, phi) != v {
				t.Fatalf("K_%d value differs within a ~_%d class", i, i)
			}
		}
	}
}

func TestCNImpliesEveryoneKnows(t *testing.T) {
	// C_N φ ⇒ K_j φ for every nonfaulty j (over reachable points, C_N's
	// fixpoint property), tested on the FIP system where C_N actually
	// becomes true.
	sys := buildFIP(t, 3, 1, 0)
	count := 0
	sys.Points(-1, func(p Point) {
		if p.Time == 0 {
			return
		}
		reach := sys.CNReachable(p)
		holds := len(reach) > 0
		for _, r := range reach {
			if !sys.Exists(model.One, Point{Run: r, Time: p.Time}) {
				holds = false
				break
			}
		}
		if !holds {
			return
		}
		count++
		phi := func(q Point) bool { return sys.Exists(model.One, q) }
		for j := 0; j < sys.N; j++ {
			id := model.AgentID(j)
			if sys.Nonfaulty(id, p) && !sys.Knows(id, p, phi) {
				t.Fatalf("C_N(∃1) at %v but K_%d(∃1) fails", p, j)
			}
		}
	})
	if count == 0 {
		t.Fatal("C_N(∃1) never held; test is vacuous")
	}
}

func TestDecidedValAndDeciding(t *testing.T) {
	// Wire-level sanity of the temporal props against a known run.
	n, tf := 3, 1
	res, err := engine.Run(engine.Config{
		Exchange: exchange.NewMin(n),
		Action:   action.NewMin(tf),
		Pattern:  adversary.FailureFree(n, tf+2),
		Inits:    []model.Value{model.Zero, model.One, model.One},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := &System{N: n, T: tf, Horizon: tf + 2, Runs: []*engine.Result{res}}
	// Agent 0 decides 0 in round 1: deciding at time 0, decided from 1 on.
	if !sys.Deciding(0, model.Zero, Point{0, 0}) {
		t.Error("agent 0 should be deciding 0 at time 0")
	}
	if sys.DecidedVal(0, Point{0, 0}) != model.None {
		t.Error("agent 0 should be undecided at time 0")
	}
	if sys.DecidedVal(0, Point{0, 1}) != model.Zero {
		t.Error("agent 0 should have decided 0 at time 1")
	}
	if !sys.JustDecided(0, model.Zero, Point{0, 1}) {
		t.Error("agent 0 just decided 0 at time 1")
	}
	if sys.JustDecided(0, model.Zero, Point{0, 2}) {
		t.Error("jdecided must hold only in the deciding round")
	}
	// Agents 1, 2 hear the 0 and decide 0 in round 2.
	if !sys.Deciding(1, model.Zero, Point{0, 1}) {
		t.Error("agent 1 should be deciding 0 at time 1")
	}
	if sys.NoDecidedN(model.Zero, Point{0, 2}) {
		t.Error("no-decided_N(0) must fail once agents decided 0")
	}
}

func TestProposition64SafetyMin(t *testing.T) {
	// Proposition 6.4: P0 is safe with respect to γ_min (n=3, t=1; n−t≥2).
	sys := buildMin(t, 3, 1)
	if vs := checkSafety(t, sys, 3); len(vs) != 0 {
		t.Errorf("safety violations in γ_min: %v", vs)
	}
}

func TestProposition64SafetyBasic(t *testing.T) {
	// Proposition 6.4: P0 is safe with respect to γ_basic (n=3, t=1).
	sys := buildBasic(t, 3, 1)
	if vs := checkSafety(t, sys, 3); len(vs) != 0 {
		t.Errorf("safety violations in γ_basic: %v", vs)
	}
}

func TestSafetyFailsForFIP(t *testing.T) {
	// Section 6 remarks that P0 is NOT safe with respect to a
	// full-information context: an agent can learn about a 0 without
	// receiving a 0-chain, so clause (1) must fail somewhere.
	sys := buildFIP(t, 3, 1, 0)
	if vs := checkSafety(t, sys, 1); len(vs) == 0 {
		t.Error("expected a safety violation in the full-information context")
	}
}

func TestTheorem75OptimalityPopt(t *testing.T) {
	// Theorem 7.5 ⊕ Corollary 7.8: P_opt satisfies the optimality
	// characterization with respect to γ_fip (n=3, t=1). Checked at every
	// point the trace determines.
	sys := buildFIP(t, 3, 1, 0)
	if vs := checkOptimality(t, sys, -1, 5); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("optimality violation: %s", v)
		}
	}
}

func TestPminIsNotOptimalInFIPContext(t *testing.T) {
	// Running P_min's decision rule over the full-information exchange is
	// correct but NOT optimal: the characterization must fail (Example
	// 7.1 in miniature).
	sys, err := BuildSystem(context.Background(), Context{Exchange: exchange.NewFIP(3), T: 1}, action.NewMin(1))
	if err != nil {
		t.Fatal(err)
	}
	if vs := checkOptimality(t, sys, -1, 1); len(vs) == 0 {
		t.Error("Pmin unexpectedly satisfies the FIP optimality characterization")
	}
}

func TestSynthesizeP0MatchesPmin(t *testing.T) {
	// Epistemic synthesis (§8 outlook): extracting a concrete protocol
	// from P0 in γ_min reproduces P_min exactly — Theorem 6.5 from the
	// synthesis side.
	c := Context{Exchange: exchange.NewMin(3), T: 1}
	synth, sys, err := Synthesize(context.Background(), c, P0)
	if err != nil {
		t.Fatal(err)
	}
	if synth.Size() == 0 {
		t.Fatal("empty synthesis table")
	}
	pmin := action.NewMin(1)
	for _, res := range sys.Runs {
		for m := 0; m < sys.Horizon; m++ {
			for i := 0; i < sys.N; i++ {
				id := model.AgentID(i)
				if got, want := synth.Act(id, res.States[m][i]), pmin.Act(id, res.States[m][i]); got != want {
					t.Fatalf("synth(P0) and Pmin differ at state %s: %v vs %v",
						res.States[m][i].Key(), got, want)
				}
			}
		}
	}
	// The synthesized system is self-consistent: its own actions implement
	// the program.
	if ms := checkImplements(t, sys, P0, 3); len(ms) != 0 {
		t.Errorf("synthesized system does not implement P0: %v", ms[0])
	}
}

func TestSynthesizeP0MatchesPbasic(t *testing.T) {
	c := Context{Exchange: exchange.NewBasic(3), T: 1}
	synth, sys, err := Synthesize(context.Background(), c, P0)
	if err != nil {
		t.Fatal(err)
	}
	pbasic := action.NewBasic(3)
	for _, res := range sys.Runs {
		for m := 0; m < sys.Horizon; m++ {
			for i := 0; i < sys.N; i++ {
				id := model.AgentID(i)
				if got, want := synth.Act(id, res.States[m][i]), pbasic.Act(id, res.States[m][i]); got != want {
					t.Fatalf("synth(P0) and Pbasic differ at state %s: %v vs %v",
						res.States[m][i].Key(), got, want)
				}
			}
		}
	}
}

func TestSynthesizeP1MatchesPopt(t *testing.T) {
	// Synthesis from P1 over the full-information exchange re-derives the
	// polynomial-time P_opt: Theorem A.21 from the synthesis side.
	c := Context{Exchange: exchange.NewFIP(3), T: 1}
	synth, sys, err := Synthesize(context.Background(), c, P1)
	if err != nil {
		t.Fatal(err)
	}
	popt := action.NewOpt(1)
	for _, res := range sys.Runs {
		for m := 0; m < sys.Horizon; m++ {
			for i := 0; i < sys.N; i++ {
				id := model.AgentID(i)
				if got, want := synth.Act(id, res.States[m][i]), popt.Act(id, res.States[m][i]); got != want {
					t.Fatalf("synth(P1) and Popt differ at run with inits %v time %d agent %d: %v vs %v",
						res.Inits, m, i, got, want)
				}
			}
		}
	}
	if ms := checkImplements(t, sys, P1, 3); len(ms) != 0 {
		t.Errorf("synthesized P1 system is not self-consistent: %v", ms[0])
	}
}

func TestSynthesizedRunsUnderEngine(t *testing.T) {
	// The synthesized protocol is a real ActionProtocol: run it under the
	// engine on a pattern from its context and check it decides like Pmin.
	synth, _, err := Synthesize(context.Background(), Context{Exchange: exchange.NewMin(3), T: 1}, P0)
	if err != nil {
		t.Fatal(err)
	}
	pat := adversary.Silent(3, 3, 0)
	res, err := engine.Run(engine.Config{
		Exchange: exchange.NewMin(3),
		Action:   synth,
		Pattern:  pat,
		Inits:    adversary.UniformInits(3, model.One),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if res.Decided(model.AgentID(i)) != model.One || res.Round(model.AgentID(i)) != 3 {
			t.Errorf("agent %d: %v in round %d, want 1 in round 3",
				i, res.Decided(model.AgentID(i)), res.Round(model.AgentID(i)))
		}
	}
}

func TestSynthesizedPanicsOutsideContext(t *testing.T) {
	synth, _, err := Synthesize(context.Background(), Context{Exchange: exchange.NewMin(2), T: 0, Horizon: 2}, P0)
	if err != nil {
		t.Fatal(err)
	}
	foreign := exchange.NewBasic(2).Initial(0, model.One)
	defer func() {
		if recover() == nil {
			t.Fatal("Act on a foreign state did not panic")
		}
	}()
	synth.Act(0, foreign)
}

func TestMismatchString(t *testing.T) {
	m := Mismatch{Agent: 1, Run: 2, Time: 3, Key: "k", Got: model.Noop, Want: model.Decide0}
	s := m.String()
	if s == "" {
		t.Error("empty mismatch rendering")
	}
}

func TestProgramString(t *testing.T) {
	if P0.String() != "P0" || P1.String() != "P1" {
		t.Error("unexpected program names")
	}
}
