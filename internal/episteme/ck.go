package episteme

import (
	"context"
	"math/bits"
	"sync"

	"repro/internal/model"
)

// cnLayer is the condensation of one time slice's C_N accessibility
// graph: q → q' iff some agent j nonfaulty at q cannot distinguish q from
// q'. To keep the edge count linear, the graph routes through class nodes:
// run r → class(j, class_j(r)) for each j ∈ N(r), and class(j, c) → every
// run in that class. The class nodes are the interned index's classes, so
// assembling the graph is pure integer arithmetic. Strongly connected
// components are condensed; queries then walk the DAG.
type cnLayer struct {
	// comp maps each run to its component id.
	comp []int
	// next is the deduplicated component DAG (successors).
	next [][]int
	// members lists the runs in each component (class-node components may
	// be empty).
	members [][]int
	// reach caches, per source component, the closure of reachable runs;
	// mu guards it. Closures are pure functions of the layer, so a racing
	// duplicate computation is benign (first store wins).
	mu    sync.RWMutex
	reach map[int][]int
}

// cnSlot builds one time slice's layer exactly once.
type cnSlot struct {
	once  sync.Once
	layer *cnLayer
}

// cnLayerAt returns (building and memoizing on first use) the
// condensation for time m. Safe for concurrent use; concurrent callers
// for different times build their layers in parallel.
func (s *System) cnLayerAt(m int) *cnLayer {
	s.cnMu.Lock()
	if s.cn == nil {
		s.cn = make(map[int]*cnSlot)
	}
	sl := s.cn[m]
	if sl == nil {
		sl = new(cnSlot)
		s.cn[m] = sl
	}
	s.cnMu.Unlock()
	sl.once.Do(func() { sl.layer = s.buildCNLayer(m) })
	return sl.layer
}

// prebuildCN builds the condensations of times 0..Horizon-1 — the slices
// CheckImplements' point loop (bounded by m < Horizon) can query — over
// the worker pool, so a subsequent sharded check never serializes on
// layer construction. The final time slice stays lazy: only direct
// CNReachable/formula queries at time Horizon need it.
func (s *System) prebuildCN(ctx context.Context) error {
	return s.parallel(ctx, s.Horizon, func(m int) { s.cnLayerAt(m) })
}

// buildCNLayer assembles and condenses the time-m accessibility graph.
// Nodes are the runs followed by every index class of the slice (classes
// no nonfaulty agent carries stay unreachable from runs and are
// harmless); edges come straight from the interned index.
func (s *System) buildCNLayer(m int) *cnLayer {
	n := s.N
	runs := len(s.Runs)

	// base[i] is the node id of agent i's class 0; classes of slot (m, i)
	// occupy [base[i], base[i+1]).
	base := make([]int, n+1)
	base[0] = runs
	for i := 0; i < n; i++ {
		base[i+1] = base[i] + len(s.classRuns[m*n+i])
	}
	adj := make([][]int, base[n])
	for i := 0; i < n; i++ {
		slot := m*n + i
		for c, members := range s.classRuns[slot] {
			adj[base[i]+c] = members
		}
	}
	for r := range s.Runs {
		pat := s.Runs[r].Pattern
		var outs []int
		for i := 0; i < n; i++ {
			if !pat.Nonfaulty(model.AgentID(i)) {
				continue
			}
			outs = append(outs, base[i]+int(s.classOf[m*n+i][r]))
		}
		adj[r] = outs
	}

	comp := tarjanSCC(adj)
	nComp := 0
	for _, c := range comp {
		if c+1 > nComp {
			nComp = c + 1
		}
	}
	layer := &cnLayer{
		comp:    comp[:runs],
		next:    make([][]int, nComp),
		members: make([][]int, nComp),
		reach:   make(map[int][]int),
	}
	seen := make(map[[2]int]bool)
	for v, outs := range adj {
		cv := comp[v]
		for _, w := range outs {
			cw := comp[w]
			if cv != cw && !seen[[2]int{cv, cw}] {
				seen[[2]int{cv, cw}] = true
				layer.next[cv] = append(layer.next[cv], cw)
			}
		}
	}
	for r := range s.Runs {
		c := comp[r]
		layer.members[c] = append(layer.members[c], r)
	}
	return layer
}

// tarjanSCC computes strongly connected components (iteratively, to be
// safe on deep graphs), returning a component id per node. Component ids
// are in reverse topological order of the condensation.
func tarjanSCC(adj [][]int) []int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	counter, nComp := 0, 0

	type frame struct{ v, child int }
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{v: start}}
		index[start], low[start] = counter, counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.child < len(adj[f.v]) {
				w := adj[f.v][f.child]
				f.child++
				if index[w] == -1 {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

// computeReach walks the condensation DAG from src, collecting the runs
// of every reachable component. Pure: it reads only immutable layer
// state.
func (l *cnLayer) computeReach(src int) []int {
	visited := make([]bool, len(l.next))
	var out []int
	var stack []int
	push := func(c int) {
		if !visited[c] {
			visited[c] = true
			stack = append(stack, c)
		}
	}
	// ≥1 step: start from the successors of src — but src's own component
	// is reachable whenever it lies on a cycle, which it always does here
	// (a nonfaulty agent's self-indistinguishability routes r back to r
	// through its class node, and N is nonempty since t < n). Components
	// containing runs always have such a cycle, so include src.
	push(src)
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, l.members[c]...)
		for _, d := range l.next[c] {
			push(d)
		}
	}
	return out
}

// CNReachable returns the runs whose time-p.Time points are reachable from
// p in one or more steps of the C_N accessibility relation. Reachability
// is served from the per-time condensation; closures are cached per
// source component. Safe for concurrent use.
func (s *System) CNReachable(p Point) []int {
	layer := s.cnLayerAt(p.Time)
	src := layer.comp[p.Run]
	layer.mu.RLock()
	out, ok := layer.reach[src]
	layer.mu.RUnlock()
	if ok {
		return out
	}
	out = layer.computeReach(src)
	layer.mu.Lock()
	if prev, ok := layer.reach[src]; ok {
		out = prev
	} else {
		layer.reach[src] = out
	}
	layer.mu.Unlock()
	return out
}

// faultyMask returns the faulty set of a run as a bitmask.
func (s *System) faultyMask(run int) uint64 {
	var mask uint64
	pat := s.Runs[run].Pattern
	for i := 0; i < s.N; i++ {
		if pat.Faulty(model.AgentID(i)) {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// CKTFaulty evaluates the paper's C_N(t-faulty ∧ no-decided_N(1−v) ∧ ∃v)
// at q. Unfolding the t-faulty abbreviation, the formula asks for a set A
// of exactly t agents such that C_N holds of "every agent in A is faulty,
// no nonfaulty agent has decided 1−v, and some agent started with v". Such
// an A exists iff the intersection of the faulty sets over every
// C_N-reachable point has at least t members.
func (s *System) CKTFaulty(q Point, v model.Value) bool {
	reach := s.CNReachable(q)
	if len(reach) == 0 {
		return false
	}
	inter := ^uint64(0)
	for _, run := range reach {
		pt := Point{Run: run, Time: q.Time}
		if !s.NoDecidedN(v.Flip(), pt) || !s.Exists(v, pt) {
			return false
		}
		inter &= s.faultyMask(run)
	}
	return bits.OnesCount64(inter) >= s.T
}

// KnowsCK evaluates K_i(C_N(t-faulty ∧ no-decided_N(1−v) ∧ ∃v)) at p:
// the common-knowledge guard of the knowledge-based program P1.
func (s *System) KnowsCK(i model.AgentID, p Point, v model.Value) bool {
	return s.Knows(i, p, func(q Point) bool { return s.CKTFaulty(q, v) })
}
