// Sharded system construction: the model checker's multi-process face.
//
// BuildSystem's enumeration is the expensive half of every check, and the
// ROADMAP's next scale step is to split one System's enumeration across
// machines. The split rides the same deterministic striding the Runner's
// sweeps use: shard i of K enumerates the scenarios at global ordinals
// ≡ i mod K, runs them through the memoizing executor, and interns its
// own (time, agent) class tables over its stripe. The resulting
// ShardIndex is serializable — runs are reduced to their decision ledger
// plus the interned class rows keyed by the canonical local-state key —
// so K processes can each emit one and a fan-in process can MergeSystems
// them back into a single *System.
//
// The merge invariant, pinned by TestMergeSystemsBitIdentical and the CI
// shard-equivalence smoke: class keys are canonical fingerprints of local
// states (model.State.Key), so re-interning K partial tables in global
// run order reproduces the exact class structure — ids, member lists,
// global interning — the single-process build produces, and every verdict
// (CheckImplements, CheckSafety, CheckOptimalityFIP) over the merged
// System is bit-identical to the unsharded one.

package episteme

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/source"
)

const (
	shardIndexKind    = "eba-episteme-shard"
	shardIndexVersion = 1
)

// ShardRun is one enumerated run reduced to what the knowledge checkers
// consult: the scenario (pattern text + inits), the decision ledger, the
// recorded actions, and the traffic stats. State traces stay in the
// process that ran them — the class rows below carry their canonical
// keys, which is all the knowledge relations need.
type ShardRun struct {
	// Pattern is the failure pattern in model.Pattern's text form.
	Pattern string `json:"pattern"`
	// Inits holds the initial preferences as 0/1.
	Inits []int `json:"inits"`
	// Decisions[i] is the value agent i decided (-1 for none); Rounds[i]
	// the round it first decided in (0 for never).
	Decisions []int `json:"decisions"`
	Rounds    []int `json:"rounds"`
	// Actions[m][i] is agent i's recorded action at time m.
	Actions [][]int `json:"actions"`
	// Stats aggregates the run's message traffic.
	Stats core.OutcomeStats `json:"stats"`
}

// ShardIndex is one shard's serializable contribution to a sharded
// System: its stripe's runs plus the per-(time, agent) interned class
// tables over that stripe. Local run k is global run Shard + k·Shards.
type ShardIndex struct {
	// Kind is "eba-episteme-shard"; Version the format version.
	Kind    string `json:"kind"`
	Version int    `json:"v"`
	// Shard and Shards identify the stripe of the canonical enumeration.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Stack optionally names the protocol stack the shard enumerated
	// (callers that resolve stacks by registry name fill it; MergeSystems
	// requires agreement when set).
	Stack string `json:"stack,omitempty"`
	// N, T, and Horizon describe the system being built.
	N       int `json:"n"`
	T       int `json:"t"`
	Horizon int `json:"horizon"`
	// Runs holds the stripe's runs in stripe order.
	Runs []ShardRun `json:"runs"`
	// Quotient marks a symmetry-quotiented stripe (built with
	// WithQuotient): Runs are canonical orbit representatives and Mults[k]
	// is run k's orbit size. MergeSystems requires the flag to agree
	// across shards and reassembles a quotiented System; ExpandQuotient
	// then rebuilds the full one.
	Quotient bool    `json:"quotient,omitempty"`
	Mults    []int64 `json:"mults,omitempty"`
	// ClassKeys[slot] lists the class keys of slot (time m, agent i),
	// slot = m·N+i, in the shard's first-appearance order — the canonical
	// local-state fingerprints the merge re-interns by.
	ClassKeys [][]string `json:"classKeys"`
	// ClassOf[slot][k] is local run k's shard-local class id in the slot.
	ClassOf [][]int32 `json:"classOf"`
}

// BuildShardIndex enumerates stripe shardIndex of a shardCount-way
// deterministic split of the context's exhaustive sweep, exactly as
// BuildSystem enumerates the whole of it (same scenario source, same
// memoizing executor, same parallel index build), and exports the
// stripe's interned index. K processes running distinct stripes of the
// same context partition BuildSystem's enumeration exactly; MergeSystems
// reassembles their indexes into the single-process System.
func BuildShardIndex(ctx context.Context, c Context, act model.ActionProtocol, shardIndex, shardCount int, opts ...Option) (*ShardIndex, error) {
	if c.Exchange == nil || act == nil {
		return nil, fmt.Errorf("episteme: Exchange and action protocol are required")
	}
	o := newOptions(opts)
	n := c.Exchange.N()
	horizon := c.horizonOrDefault()
	// Index-level cache: the whole stripe, keyed by the stack version and
	// the stripe parameters. Per-scenario "sys" entries make a warm build
	// skip execution, but probing them still enumerates — and for
	// quotiented sweeps canonicalizes — every scenario, which dominates
	// once execution is cached. A hit here returns the verified
	// WriteShardIndex serialization without enumerating at all; its
	// decode round-trips to identical bytes (the digest identity the
	// fabric's duplicate resolution already relies on), so warm indexes
	// stay bit-identical to cold ones.
	var idxKey string
	if o.cache != nil {
		version := cacheStack(c, act, n, horizon).VersionDigest(o.fingerprint)
		idxKey = shardIndexCacheKey(version, shardIndex, shardCount, o.quotient)
		if payload, ok := o.cache.Get(idxKey); ok {
			if idx, err := decodeCachedIndex(payload, shardIndex, shardCount, n, c.T, horizon, o.quotient); err == nil {
				return idx, nil
			}
			// Corrupt or misfiled: rebuild below and overwrite.
		}
	}
	src, err := c.scenarioSource(n, horizon)
	if err != nil {
		return nil, err
	}
	// Quotient inside the stride: the stripes then partition the
	// representative enumeration, so every orbit is executed exactly once
	// across the fleet and the stripe ordinals are quotient ordinals.
	if o.quotient {
		src = source.Quotient(src)
	}
	stripe, err := core.Stride(src, shardIndex, shardCount)
	if err != nil {
		return nil, err
	}
	sys, err := buildSystemFromSource(ctx, c, act, stripe, o)
	if err != nil {
		return nil, err
	}
	idx := exportShardIndex(sys, shardIndex, shardCount)
	if o.cache != nil {
		// Best-effort, like every cache store: a full disk or unreachable
		// server never fails the build.
		var buf bytes.Buffer
		if err := WriteShardIndex(&buf, idx); err == nil {
			o.cache.Put(idxKey, buf.Bytes())
		}
	}
	return idx, nil
}

// shardIndexCacheKey derives the cache key of a whole stripe index: the
// version digest pins the stack (exchange, action, n, t, horizon, build
// fingerprint), so the digest slot only needs the enumeration parameters
// that vary under one stack — the stripe and whether the sweep is
// quotiented.
func shardIndexCacheKey(version string, shardIndex, shardCount int, quotient bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "shard=%d/%d|quotient=%v", shardIndex, shardCount, quotient)
	sum := h.Sum(nil)
	return core.CacheKey(version, core.CacheKindIndex, hex.EncodeToString(sum[:16]))
}

// decodeCachedIndex decodes and vets a cached stripe index. Beyond the
// store's digest verification, the index must restate the build being
// answered — shard, split, shape, quotienting — and pass the same
// Validate the fabric applies at its trust boundary; anything else is
// an error the caller treats as a miss.
func decodeCachedIndex(payload []byte, shardIndex, shardCount, n, t, horizon int, quotient bool) (*ShardIndex, error) {
	idx, err := ReadShardIndex(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	if idx.Shard != shardIndex || idx.Shards != shardCount ||
		idx.N != n || idx.T != t || idx.Horizon != horizon || idx.Quotient != quotient {
		return nil, fmt.Errorf("episteme: cached index answers shard %d/%d (n=%d,t=%d,h=%d,quotient=%v), asked for %d/%d (n=%d,t=%d,h=%d,quotient=%v)",
			idx.Shard, idx.Shards, idx.N, idx.T, idx.Horizon, idx.Quotient,
			shardIndex, shardCount, n, t, horizon, quotient)
	}
	if err := idx.Validate(); err != nil {
		return nil, err
	}
	return idx, nil
}

// exportShardIndex reduces a stripe's System to its serializable partial
// index. The ledger flattening (inits/decisions/rounds as ints, stats as
// core.OutcomeStats) deliberately mirrors core's newOutcomeRecord — the
// outcome-stream and shard-index formats must agree on what a run's
// observable outcome is; extend both (and restoreRun, the inverse here)
// together.
func exportShardIndex(sys *System, shardIndex, shardCount int) *ShardIndex {
	idx := &ShardIndex{
		Kind:    shardIndexKind,
		Version: shardIndexVersion,
		Shard:   shardIndex,
		Shards:  shardCount,
		N:       sys.N,
		T:       sys.T,
		Horizon: sys.Horizon,
		Runs:    make([]ShardRun, len(sys.Runs)),
	}
	if sys.Quotiented() {
		idx.Quotient = true
		idx.Mults = append([]int64{}, sys.weights...)
	}
	for k, res := range sys.Runs {
		pat, _ := res.Pattern.MarshalText()
		sr := ShardRun{
			Pattern:   string(pat),
			Inits:     make([]int, res.N),
			Decisions: make([]int, res.N),
			Rounds:    make([]int, res.N),
			Actions:   make([][]int, len(res.Actions)),
			Stats: core.OutcomeStats{
				MessagesSent:      res.Stats.MessagesSent,
				MessagesDelivered: res.Stats.MessagesDelivered,
				BitsSent:          res.Stats.BitsSent,
				BitsDelivered:     res.Stats.BitsDelivered,
			},
		}
		for i := 0; i < res.N; i++ {
			sr.Inits[i] = int(res.Inits[i])
			sr.Decisions[i] = int(res.Decision[i])
			sr.Rounds[i] = res.DecisionRound[i]
		}
		for m, row := range res.Actions {
			acts := make([]int, len(row))
			for i, a := range row {
				acts[i] = int(a)
			}
			sr.Actions[m] = acts
		}
		idx.Runs[k] = sr
	}
	nSlots := (sys.Horizon + 1) * sys.N
	idx.ClassKeys = make([][]string, nSlots)
	idx.ClassOf = make([][]int32, nSlots)
	for slot := 0; slot < nSlots; slot++ {
		idx.ClassKeys[slot] = append([]string(nil), sys.classKey[slot]...)
		idx.ClassOf[slot] = append([]int32(nil), sys.classOf[slot]...)
	}
	return idx
}

// WriteShardIndex serializes the index as JSON.
func WriteShardIndex(w io.Writer, idx *ShardIndex) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(idx); err != nil {
		return fmt.Errorf("episteme: writing shard index %d/%d: %w", idx.Shard, idx.Shards, err)
	}
	return nil
}

// ReadShardIndex deserializes and validates a WriteShardIndex stream.
func ReadShardIndex(r io.Reader) (*ShardIndex, error) {
	var idx ShardIndex
	if err := json.NewDecoder(r).Decode(&idx); err != nil {
		return nil, fmt.Errorf("episteme: reading shard index: %w", err)
	}
	if idx.Kind != shardIndexKind {
		return nil, fmt.Errorf("episteme: not a shard index (kind %q, want %q)", idx.Kind, shardIndexKind)
	}
	if idx.Version != shardIndexVersion {
		return nil, fmt.Errorf("episteme: shard index version %d, this reader speaks %d", idx.Version, shardIndexVersion)
	}
	return &idx, nil
}

// Digest fingerprints the index's canonical JSON serialization. Two
// indexes digest equal exactly when WriteShardIndex would emit identical
// bytes for them — the identity the fabric coordinator resolves duplicate
// stripe uploads by (first sealed valid upload wins; a conflicting digest
// for the same stripe is a fatal inconsistency).
func (idx *ShardIndex) Digest() string {
	data, err := json.Marshal(idx)
	if err != nil {
		// Marshaling fixed structs of ints and strings cannot fail; an
		// impossible-input digest keeps the failure observable without
		// burdening every caller with an error path.
		return "unmarshalable:" + err.Error()
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}

// Validate checks the index's internal consistency: bounds, table shapes,
// and class ids referencing declared classes. ReadShardIndex callers that
// accept indexes across a trust boundary (the fabric coordinator) call it
// before merging; MergeSystems always does.
func (idx *ShardIndex) Validate() error {
	if idx.Shards < 1 || idx.Shard < 0 || idx.Shard >= idx.Shards {
		return fmt.Errorf("episteme: shard index declares shard %d of %d", idx.Shard, idx.Shards)
	}
	if idx.N < 1 || idx.Horizon < 0 {
		return fmt.Errorf("episteme: shard %d/%d declares n=%d, horizon=%d", idx.Shard, idx.Shards, idx.N, idx.Horizon)
	}
	nSlots := (idx.Horizon + 1) * idx.N
	if len(idx.ClassKeys) != nSlots || len(idx.ClassOf) != nSlots {
		return fmt.Errorf("episteme: shard %d/%d carries %d/%d slot tables, want %d",
			idx.Shard, idx.Shards, len(idx.ClassKeys), len(idx.ClassOf), nSlots)
	}
	for slot := 0; slot < nSlots; slot++ {
		if len(idx.ClassOf[slot]) != len(idx.Runs) {
			return fmt.Errorf("episteme: shard %d/%d slot %d classifies %d runs, stripe has %d",
				idx.Shard, idx.Shards, slot, len(idx.ClassOf[slot]), len(idx.Runs))
		}
		for k, c := range idx.ClassOf[slot] {
			if c < 0 || int(c) >= len(idx.ClassKeys[slot]) {
				return fmt.Errorf("episteme: shard %d/%d slot %d run %d references class %d of %d",
					idx.Shard, idx.Shards, slot, k, c, len(idx.ClassKeys[slot]))
			}
		}
	}
	if idx.Quotient {
		if len(idx.Mults) != len(idx.Runs) {
			return fmt.Errorf("episteme: quotiented shard %d/%d carries %d multiplicities for %d runs",
				idx.Shard, idx.Shards, len(idx.Mults), len(idx.Runs))
		}
		for k, m := range idx.Mults {
			if m < 1 {
				return fmt.Errorf("episteme: quotiented shard %d/%d run %d has orbit size %d", idx.Shard, idx.Shards, k, m)
			}
		}
	} else if len(idx.Mults) != 0 {
		return fmt.Errorf("episteme: shard %d/%d carries multiplicities but is not quotiented", idx.Shard, idx.Shards)
	}
	for k, sr := range idx.Runs {
		if len(sr.Inits) != idx.N || len(sr.Decisions) != idx.N || len(sr.Rounds) != idx.N {
			return fmt.Errorf("episteme: shard %d/%d run %d has malformed ledgers", idx.Shard, idx.Shards, k)
		}
		if len(sr.Actions) != idx.Horizon {
			return fmt.Errorf("episteme: shard %d/%d run %d records %d action rows, want %d",
				idx.Shard, idx.Shards, k, len(sr.Actions), idx.Horizon)
		}
		for m, row := range sr.Actions {
			if len(row) != idx.N {
				return fmt.Errorf("episteme: shard %d/%d run %d time %d has %d actions, want %d",
					idx.Shard, idx.Shards, k, m, len(row), idx.N)
			}
		}
	}
	return nil
}

// restoreRun rebuilds the engine.Result of one exported run. States stay
// nil: a merged System answers every knowledge query through the interned
// class tables, never through state traces.
func (sr *ShardRun) restoreRun(n, horizon int) (*engine.Result, error) {
	pat := new(model.Pattern)
	if err := pat.UnmarshalText([]byte(sr.Pattern)); err != nil {
		return nil, err
	}
	if pat.N() != n {
		return nil, fmt.Errorf("pattern is for %d agents, system for %d", pat.N(), n)
	}
	res := &engine.Result{
		N:             n,
		Horizon:       horizon,
		Pattern:       pat,
		Inits:         make([]model.Value, n),
		Actions:       make([][]model.Action, horizon),
		Decision:      make([]model.Value, n),
		DecisionRound: make([]int, n),
		Stats: engine.Stats{
			MessagesSent:      sr.Stats.MessagesSent,
			MessagesDelivered: sr.Stats.MessagesDelivered,
			BitsSent:          sr.Stats.BitsSent,
			BitsDelivered:     sr.Stats.BitsDelivered,
		},
	}
	for i := 0; i < n; i++ {
		res.Inits[i] = model.Value(sr.Inits[i])
		res.Decision[i] = model.Value(sr.Decisions[i])
		res.DecisionRound[i] = sr.Rounds[i]
	}
	for m, row := range sr.Actions {
		acts := make([]model.Action, n)
		for i, a := range row {
			acts[i] = model.Action(a)
		}
		res.Actions[m] = acts
	}
	return res, nil
}

// MergeSystems re-interns K partial indexes — one per stripe of a K-way
// deterministic split, in any order — into one System. Global run r comes
// from shard r mod K at stripe position r div K, restoring the canonical
// enumeration order; each (time, agent) slot's classes are re-interned by
// their canonical keys in first-appearance-by-global-run order, which is
// exactly the order the single-process buildIndex assigns, so the merged
// class tables — ids, member lists, and the system-wide global interning
// — and every verdict computed from them are bit-identical to the
// unsharded BuildSystem's. The merge verifies the stripes partition one
// sweep: K distinct shards of a K-way split, agreeing on (n, t, horizon),
// with stripe lengths consistent with one total (no gap, no overlap).
//
// Merged Systems carry no state traces (System.State is unavailable;
// Key and every checker work off the interned index), which is what lets
// a shard's contribution cross a process boundary as JSON.
func MergeSystems(ctx context.Context, shards []*ShardIndex, opts ...Option) (*System, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("episteme: merge of zero shard indexes")
	}
	o := newOptions(opts)
	k := shards[0].Shards
	if k != len(shards) {
		return nil, fmt.Errorf("episteme: merging %d shard indexes but they declare a %d-way split", len(shards), k)
	}
	byShard := make([]*ShardIndex, k)
	for _, idx := range shards {
		if err := idx.Validate(); err != nil {
			return nil, err
		}
		if idx.Shards != k {
			return nil, fmt.Errorf("episteme: shard %d declares a %d-way split, shard %d a %d-way one",
				idx.Shard, idx.Shards, shards[0].Shard, k)
		}
		if byShard[idx.Shard] != nil {
			return nil, fmt.Errorf("episteme: two indexes both claim shard %d/%d (overlap)", idx.Shard, k)
		}
		byShard[idx.Shard] = idx
	}
	ref := byShard[0]
	total := 0
	stackName := ""
	for i, idx := range byShard {
		if idx.N != ref.N || idx.T != ref.T || idx.Horizon != ref.Horizon {
			return nil, fmt.Errorf("episteme: shard %d built (n=%d,t=%d,h=%d), shard 0 built (n=%d,t=%d,h=%d)",
				i, idx.N, idx.T, idx.Horizon, ref.N, ref.T, ref.Horizon)
		}
		if idx.Quotient != ref.Quotient {
			return nil, fmt.Errorf("episteme: shard %d quotiented=%v, shard 0 quotiented=%v; the stripes enumerate different sweeps",
				i, idx.Quotient, ref.Quotient)
		}
		// Stack is optional metadata: agreement is required only between
		// shards that carry it.
		if idx.Stack != "" {
			if stackName != "" && idx.Stack != stackName {
				return nil, fmt.Errorf("episteme: shard %d enumerated stack %q, an earlier shard stack %q",
					i, idx.Stack, stackName)
			}
			stackName = idx.Stack
		}
		total += len(idx.Runs)
	}
	for i, idx := range byShard {
		if want := core.StripeSize(int64(total), i, k); int64(len(idx.Runs)) != want {
			return nil, fmt.Errorf("episteme: shard %d carries %d runs; a %d-run sweep strides %d to it (gap or overlap)",
				i, len(idx.Runs), total, want)
		}
	}

	n, horizon := ref.N, ref.Horizon
	runs := make([]*engine.Result, total)
	var weights []int64
	if ref.Quotient {
		weights = make([]int64, total)
	}
	for g := 0; g < total; g++ {
		idx := byShard[g%k]
		res, err := idx.Runs[g/k].restoreRun(n, horizon)
		if err != nil {
			return nil, fmt.Errorf("episteme: shard %d run %d (global %d): %w", g%k, g/k, g, err)
		}
		runs[g] = res
		if weights != nil {
			weights[g] = idx.Mults[g/k]
		}
	}

	sys := &System{N: n, T: ref.T, Horizon: horizon, Runs: runs, weights: weights, par: o.par}
	nSlots := (horizon + 1) * n
	sys.classOf = make([][]int32, nSlots)
	sys.classRuns = make([][][]int, nSlots)
	sys.classKey = make([][]string, nSlots)
	sys.classGlobal = make([][]int32, nSlots)
	sys.byKey = make([]map[string]int32, nSlots)
	sys.globalByKey = make(map[string]int32)

	// Re-intern each time slice's slots in parallel (slots are
	// independent), assigning class ids by first appearance in global run
	// order — the same order the single-process buildIndex assigns them.
	err := parallelDo(ctx, o.par, horizon+1, func(mi int) {
		for i := 0; i < n; i++ {
			slot := mi*n + i
			byKey := make(map[string]int32)
			var classKey []string
			classOf := make([]int32, total)
			for g := 0; g < total; g++ {
				idx := byShard[g%k]
				key := idx.ClassKeys[slot][idx.ClassOf[slot][g/k]]
				c, ok := byKey[key]
				if !ok {
					c = int32(len(classKey))
					byKey[key] = c
					classKey = append(classKey, key)
				}
				classOf[g] = c
			}
			sys.classOf[slot] = classOf
			sys.classRuns[slot] = packClassRuns(classOf, len(classKey))
			sys.classKey[slot] = classKey
			sys.byKey[slot] = byKey
		}
	})
	if err != nil {
		return nil, err
	}
	// Fold the system-wide key interning sequentially in slot order,
	// exactly as buildIndex does.
	for slot := 0; slot < nSlots; slot++ {
		keys := sys.classKey[slot]
		global := make([]int32, len(keys))
		for c, key := range keys {
			id, ok := sys.globalByKey[key]
			if !ok {
				id = int32(len(sys.globalByKey))
				sys.globalByKey[key] = id
			}
			global[c] = id
		}
		sys.classGlobal[slot] = global
	}
	return sys, nil
}
