package episteme

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/action"
	"repro/internal/exchange"
	"repro/internal/model"
)

// compareSystems fails the test unless the two systems are structurally
// identical: shapes, every run's ledgers, and the full interned index
// (class ids, member lists, keys, global interning). Field-by-field
// rather than fingerprint strings so the n=4 comparison (32,784 runs)
// stays cheap.
func compareSystems(t *testing.T, label string, got, want *System) {
	t.Helper()
	if got.N != want.N || got.T != want.T || got.Horizon != want.Horizon {
		t.Fatalf("%s: shape (%d,%d,%d), want (%d,%d,%d)", label, got.N, got.T, got.Horizon, want.N, want.T, want.Horizon)
	}
	if len(got.Runs) != len(want.Runs) {
		t.Fatalf("%s: %d runs, want %d", label, len(got.Runs), len(want.Runs))
	}
	for r := range got.Runs {
		g, w := got.Runs[r], want.Runs[r]
		if g.Pattern.Key() != w.Pattern.Key() {
			t.Fatalf("%s: run %d patterns differ", label, r)
		}
		if fmt.Sprint(g.Inits) != fmt.Sprint(w.Inits) ||
			fmt.Sprint(g.Decision) != fmt.Sprint(w.Decision) ||
			fmt.Sprint(g.DecisionRound) != fmt.Sprint(w.DecisionRound) ||
			fmt.Sprint(g.Actions) != fmt.Sprint(w.Actions) ||
			g.Stats != w.Stats {
			t.Fatalf("%s: run %d ledgers differ", label, r)
		}
	}
	if len(got.classKey) != len(want.classKey) {
		t.Fatalf("%s: %d index slots, want %d", label, len(got.classKey), len(want.classKey))
	}
	for slot := range want.classKey {
		if len(got.classKey[slot]) != len(want.classKey[slot]) {
			t.Fatalf("%s: slot %d has %d classes, want %d", label, slot, len(got.classKey[slot]), len(want.classKey[slot]))
		}
		for c := range want.classKey[slot] {
			if got.classKey[slot][c] != want.classKey[slot][c] {
				t.Fatalf("%s: slot %d class %d key differs:\n got %q\nwant %q",
					label, slot, c, got.classKey[slot][c], want.classKey[slot][c])
			}
			if got.classGlobal[slot][c] != want.classGlobal[slot][c] {
				t.Fatalf("%s: slot %d class %d global id %d, want %d",
					label, slot, c, got.classGlobal[slot][c], want.classGlobal[slot][c])
			}
		}
		for r := range want.classOf[slot] {
			if got.classOf[slot][r] != want.classOf[slot][r] {
				t.Fatalf("%s: slot %d run %d class %d, want %d",
					label, slot, r, got.classOf[slot][r], want.classOf[slot][r])
			}
		}
		for c := range want.classRuns[slot] {
			gr, wr := got.classRuns[slot][c], want.classRuns[slot][c]
			if len(gr) != len(wr) {
				t.Fatalf("%s: slot %d class %d has %d members, want %d", label, slot, c, len(gr), len(wr))
			}
			for k := range wr {
				if gr[k] != wr[k] {
					t.Fatalf("%s: slot %d class %d member %d is run %d, want %d", label, slot, c, k, gr[k], wr[k])
				}
			}
		}
	}
}

// buildMergedQuotient builds the K quotiented shard indexes, round-trips
// each through its JSON serialization, merges, and expands.
func buildMergedQuotient(t *testing.T, c Context, act model.ActionProtocol, k int) *System {
	t.Helper()
	shards := make([]*ShardIndex, k)
	for i := 0; i < k; i++ {
		idx, err := BuildShardIndex(context.Background(), c, act, i, k, WithParallelism(2), WithQuotient())
		if err != nil {
			t.Fatalf("BuildShardIndex %d/%d: %v", i, k, err)
		}
		if !idx.Quotient {
			t.Fatalf("BuildShardIndex %d/%d: WithQuotient produced an unquotiented index", i, k)
		}
		var buf bytes.Buffer
		if err := WriteShardIndex(&buf, idx); err != nil {
			t.Fatal(err)
		}
		rt, err := ReadShardIndex(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Digest() != idx.Digest() {
			t.Fatalf("shard %d/%d: serialization round-trip changed the digest", i, k)
		}
		shards[(i+1)%k] = rt
	}
	rep, err := MergeSystems(context.Background(), shards, WithParallelism(2))
	if err != nil {
		t.Fatalf("MergeSystems k=%d: %v", k, err)
	}
	if !rep.Quotiented() {
		t.Fatalf("k=%d: merge of quotiented shards is not quotiented", k)
	}
	sys, err := ExpandQuotient(context.Background(), rep, c)
	if err != nil {
		t.Fatalf("ExpandQuotient k=%d: %v", k, err)
	}
	return sys
}

// TestQuotientSystemBitIdentical is the tentpole acceptance bar for the
// model checker: at n=3 and n=4 (t=1, fip), the quotiented build —
// unsharded (BuildSystem WithQuotient) and sharded K ∈ {1,2,3}
// (BuildShardIndex + MergeSystems + ExpandQuotient) — yields a System
// whose runs, interned index, and every verdict are bit-identical to the
// full-sweep BuildSystem's.
func TestQuotientSystemBitIdentical(t *testing.T) {
	for _, n := range []int{3, 4} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			c := Context{Exchange: exchange.NewFIP(n), T: 1}
			act := action.NewOpt(1)
			full, err := BuildSystem(context.Background(), c, act, WithParallelism(2))
			if err != nil {
				t.Fatalf("BuildSystem: %v", err)
			}
			wantImpl := checkImplements(t, full, P1, 50)
			wantSafety := checkSafety(t, full, 50)
			// CheckOptimalityFIP costs ~30s per n=4 system (⊡-reachability
			// over 32,784 runs); compareSystems below pins the runs and the
			// full interned index bit-identical, and every checker is a pure
			// function of those, so running it at n=3 plus the two cheap
			// checkers at both sizes keeps the differential complete without
			// the 30s-per-variant bill.
			checkOpt := n <= 3
			var wantOpt []string
			if checkOpt {
				wantOpt = checkOptimality(t, full, -1, 50)
			}

			systems := map[string]*System{
				"quotient-unsharded": nil,
			}
			quot, err := BuildSystem(context.Background(), c, act, WithParallelism(2), WithQuotient())
			if err != nil {
				t.Fatalf("BuildSystem WithQuotient: %v", err)
			}
			systems["quotient-unsharded"] = quot
			for k := 1; k <= 3; k++ {
				systems[fmt.Sprintf("quotient-k%d", k)] = buildMergedQuotient(t, c, act, k)
			}

			for label, sys := range systems {
				compareSystems(t, label, sys, full)
				if gotImpl := checkImplements(t, sys, P1, 50); fmt.Sprint(gotImpl) != fmt.Sprint(wantImpl) {
					t.Fatalf("%s: CheckImplements differs:\n got %v\nwant %v", label, gotImpl, wantImpl)
				}
				if gotSafety := checkSafety(t, sys, 50); fmt.Sprint(gotSafety) != fmt.Sprint(wantSafety) {
					t.Fatalf("%s: CheckSafety differs:\n got %v\nwant %v", label, gotSafety, wantSafety)
				}
				if checkOpt {
					if gotOpt := checkOptimality(t, sys, -1, 50); fmt.Sprint(gotOpt) != fmt.Sprint(wantOpt) {
						t.Fatalf("%s: CheckOptimalityFIP differs:\n got %v\nwant %v", label, gotOpt, wantOpt)
					}
				}
			}
		})
	}
}

// TestQuotientRequiresKeyPermuter: the min exchange's local-state keys
// cannot cross an agent relabeling (no model.KeyPermuter), so a
// quotiented build must refuse rather than mis-intern.
func TestQuotientRequiresKeyPermuter(t *testing.T) {
	c := Context{Exchange: exchange.NewMin(3), T: 1}
	if _, err := BuildSystem(context.Background(), c, action.NewMin(1), WithQuotient()); err == nil {
		t.Fatal("quotiented build over the min exchange succeeded; want a KeyPermuter error")
	}
}

// TestCheckersRefuseQuotientedSystem: an unexpanded representative
// system must not be checkable — its verdicts would quantify over one
// run per orbit.
func TestCheckersRefuseQuotientedSystem(t *testing.T) {
	c := fipContext31()
	act := action.NewOpt(1)
	idx, err := BuildShardIndex(context.Background(), c, act, 0, 1, WithQuotient())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := MergeSystems(context.Background(), []*ShardIndex{idx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.CheckImplements(context.Background(), P1, 1); err == nil {
		t.Error("CheckImplements ran on a quotiented system")
	}
	if _, err := rep.CheckSafety(context.Background(), 1); err == nil {
		t.Error("CheckSafety ran on a quotiented system")
	}
	if _, err := rep.CheckOptimalityFIP(context.Background(), -1, 1); err == nil {
		t.Error("CheckOptimalityFIP ran on a quotiented system")
	}
}

// TestExpandQuotientRejects pins the expansion's guard rails: expanding
// a non-quotiented system and expanding under a mismatched context both
// fail loudly.
func TestExpandQuotientRejects(t *testing.T) {
	c := fipContext31()
	act := action.NewOpt(1)
	full, err := BuildSystem(context.Background(), c, act)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpandQuotient(context.Background(), full, c); err == nil {
		t.Error("ExpandQuotient accepted a non-quotiented system")
	}

	idx, err := BuildShardIndex(context.Background(), c, act, 0, 1, WithQuotient())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := MergeSystems(context.Background(), []*ShardIndex{idx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpandQuotient(context.Background(), rep, Context{Exchange: exchange.NewFIP(4), T: 1}); err == nil {
		t.Error("ExpandQuotient accepted a context with the wrong n")
	}
	if _, err := ExpandQuotient(context.Background(), rep, Context{Exchange: exchange.NewFIP(3), T: 2}); err == nil {
		t.Error("ExpandQuotient accepted a context with the wrong t")
	}
}
