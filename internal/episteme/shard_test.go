package episteme

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/exchange"
	"repro/internal/model"
)

// buildMerged builds the K shard indexes of the context and merges them.
func buildMerged(t *testing.T, c Context, act model.ActionProtocol, k int) *System {
	t.Helper()
	shards := make([]*ShardIndex, k)
	// Feed the shards in rotated order: MergeSystems must not depend on
	// the caller's ordering.
	for i := 0; i < k; i++ {
		idx, err := BuildShardIndex(context.Background(), c, act, i, k, WithParallelism(2))
		if err != nil {
			t.Fatalf("BuildShardIndex %d/%d: %v", i, k, err)
		}
		shards[(i+1)%k] = idx
	}
	sys, err := MergeSystems(context.Background(), shards, WithParallelism(2))
	if err != nil {
		t.Fatalf("MergeSystems k=%d: %v", k, err)
	}
	return sys
}

// indexFingerprint renders a System's full interned index: class tables,
// member lists, and global ids per slot.
func indexFingerprint(sys *System) string {
	var b strings.Builder
	for slot := range sys.classKey {
		fmt.Fprintf(&b, "slot %d keys=%q global=%v\n", slot, sys.classKey[slot], sys.classGlobal[slot])
		fmt.Fprintf(&b, "slot %d of=%v runs=%v\n", slot, sys.classOf[slot], sys.classRuns[slot])
	}
	return b.String()
}

// TestMergeSystemsBitIdentical is the model-checker half of the PR 5
// acceptance bar: for K ∈ {1, 2, 3}, merging K shard indexes of the fip
// n=3, t=1 enumeration yields a System whose interned index and every
// verdict — CheckImplements, CheckSafety, CheckOptimalityFIP — are
// bit-identical to the single-process BuildSystem's.
func TestMergeSystemsBitIdentical(t *testing.T) {
	c := fipContext31()
	act := action.NewOpt(1)
	single, err := BuildSystem(context.Background(), c, act, WithParallelism(2))
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	wantIndex := indexFingerprint(single)
	wantImpl := checkImplements(t, single, P1, 50)
	wantSafety := checkSafety(t, single, 50)
	wantOpt := checkOptimality(t, single, -1, 50)

	for k := 1; k <= 3; k++ {
		merged := buildMerged(t, c, act, k)
		if merged.N != single.N || merged.T != single.T || merged.Horizon != single.Horizon {
			t.Fatalf("k=%d merged shape (%d,%d,%d), single (%d,%d,%d)",
				k, merged.N, merged.T, merged.Horizon, single.N, single.T, single.Horizon)
		}
		if len(merged.Runs) != len(single.Runs) {
			t.Fatalf("k=%d merged %d runs, single %d", k, len(merged.Runs), len(single.Runs))
		}
		for r := range merged.Runs {
			ms, ss := merged.Runs[r], single.Runs[r]
			if ms.Pattern.Key() != ss.Pattern.Key() {
				t.Fatalf("k=%d run %d patterns differ", k, r)
			}
			if fmt.Sprint(ms.Inits) != fmt.Sprint(ss.Inits) ||
				fmt.Sprint(ms.Decision) != fmt.Sprint(ss.Decision) ||
				fmt.Sprint(ms.DecisionRound) != fmt.Sprint(ss.DecisionRound) ||
				fmt.Sprint(ms.Actions) != fmt.Sprint(ss.Actions) ||
				ms.Stats != ss.Stats {
				t.Fatalf("k=%d run %d ledgers differ", k, r)
			}
		}
		if got := indexFingerprint(merged); got != wantIndex {
			t.Fatalf("k=%d merged index differs from the single-process index", k)
		}

		gotImpl := checkImplements(t, merged, P1, 50)
		if fmt.Sprint(gotImpl) != fmt.Sprint(wantImpl) {
			t.Fatalf("k=%d CheckImplements differs:\n got %v\nwant %v", k, gotImpl, wantImpl)
		}
		gotSafety := checkSafety(t, merged, 50)
		if fmt.Sprint(gotSafety) != fmt.Sprint(wantSafety) {
			t.Fatalf("k=%d CheckSafety differs:\n got %v\nwant %v", k, gotSafety, wantSafety)
		}
		gotOpt := checkOptimality(t, merged, -1, 50)
		if fmt.Sprint(gotOpt) != fmt.Sprint(wantOpt) {
			t.Fatalf("k=%d CheckOptimalityFIP differs:\n got %v\nwant %v", k, gotOpt, wantOpt)
		}
	}
}

// TestMergeSystemsMinStack runs the same equivalence over the min stack
// (program P0), whose exchange interns differently from fip's graphs.
func TestMergeSystemsMinStack(t *testing.T) {
	c := Context{Exchange: exchange.NewMin(3), T: 1}
	act := action.NewMin(1)
	single, err := BuildSystem(context.Background(), c, act, WithParallelism(2))
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	want := checkImplements(t, single, P0, 10)
	merged := buildMerged(t, c, act, 3)
	if got := checkImplements(t, merged, P0, 10); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged min verdicts differ: got %v, want %v", got, want)
	}
	if got, wantFP := indexFingerprint(merged), indexFingerprint(single); got != wantFP {
		t.Fatal("merged min index differs from the single-process index")
	}
}

// TestShardIndexSerializationRoundTrip checks Write/ReadShardIndex is
// lossless, so indexes can cross process boundaries.
func TestShardIndexSerializationRoundTrip(t *testing.T) {
	idx, err := BuildShardIndex(context.Background(), fipContext31(), action.NewOpt(1), 1, 3)
	if err != nil {
		t.Fatalf("BuildShardIndex: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteShardIndex(&buf, idx); err != nil {
		t.Fatalf("WriteShardIndex: %v", err)
	}
	back, err := ReadShardIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadShardIndex: %v", err)
	}
	if fmt.Sprint(back) != fmt.Sprint(idx) {
		t.Fatal("shard index did not survive the serialization round trip")
	}
	if _, err := ReadShardIndex(strings.NewReader(`{"kind":"something-else","v":1}`)); err == nil {
		t.Fatal("ReadShardIndex accepted a foreign kind")
	}
}

// TestMergeSystemsRejectsBadPartitions drives MergeSystems with
// non-partitions: missing stripes, duplicates, mixed splits, and mixed
// contexts.
func TestMergeSystemsRejectsBadPartitions(t *testing.T) {
	ctx := context.Background()
	c := fipContext31()
	act := action.NewOpt(1)
	mk := func(i, k int) *ShardIndex {
		idx, err := BuildShardIndex(ctx, c, act, i, k)
		if err != nil {
			t.Fatalf("BuildShardIndex %d/%d: %v", i, k, err)
		}
		return idx
	}
	i0, i1, i2 := mk(0, 3), mk(1, 3), mk(2, 3)

	if _, err := MergeSystems(ctx, nil); err == nil {
		t.Fatal("merge of zero indexes succeeded")
	}
	if _, err := MergeSystems(ctx, []*ShardIndex{i0, i1}); err == nil {
		t.Fatal("merge accepted a missing stripe")
	}
	if _, err := MergeSystems(ctx, []*ShardIndex{i0, i1, i1}); err == nil {
		t.Fatal("merge accepted a duplicated stripe")
	}
	if _, err := MergeSystems(ctx, []*ShardIndex{i0, i1, mk(1, 2)}); err == nil {
		t.Fatal("merge accepted mixed split arities")
	}
	other, err := BuildShardIndex(ctx, Context{Exchange: exchange.NewFIP(4), T: 1}, action.NewOpt(1), 2, 3)
	if err != nil {
		t.Fatalf("BuildShardIndex n=4: %v", err)
	}
	if _, err := MergeSystems(ctx, []*ShardIndex{i0, i1, other}); err == nil {
		t.Fatal("merge accepted indexes of different systems")
	}
	// A doctored stripe length (gap) must be caught.
	short := *i2
	short.Runs = short.Runs[:len(short.Runs)-1]
	nSlots := (short.Horizon + 1) * short.N
	short.ClassOf = make([][]int32, nSlots)
	for slot := 0; slot < nSlots; slot++ {
		short.ClassOf[slot] = i2.ClassOf[slot][:len(short.Runs)]
	}
	if _, err := MergeSystems(ctx, []*ShardIndex{i0, i1, &short}); err == nil {
		t.Fatal("merge accepted a stripe with a missing run")
	}
}

// TestMergeSystemsStackMetadata checks the optional Stack field: empty
// names merge with named ones, but two conflicting names are rejected.
func TestMergeSystemsStackMetadata(t *testing.T) {
	ctx := context.Background()
	c := fipContext31()
	act := action.NewOpt(1)
	shards := make([]*ShardIndex, 3)
	for i := range shards {
		idx, err := BuildShardIndex(ctx, c, act, i, 3)
		if err != nil {
			t.Fatalf("BuildShardIndex %d/3: %v", i, err)
		}
		shards[i] = idx
	}
	// Internal builds leave Stack empty; a partially labelled set merges.
	shards[1].Stack = "fip"
	if _, err := MergeSystems(ctx, shards); err != nil {
		t.Fatalf("merge of mixed empty/named stacks failed: %v", err)
	}
	// Two conflicting names do not.
	shards[2].Stack = "min"
	if _, err := MergeSystems(ctx, shards); err == nil {
		t.Fatal("merge accepted conflicting stack names")
	}
}
