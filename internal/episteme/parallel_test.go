package episteme

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/engine"
	"repro/internal/exchange"
	"repro/internal/model"
)

// resultFingerprint renders everything observable about a run: pattern,
// inits, full state-key and action traces, the decision ledger, and the
// traffic stats. Two runs with equal fingerprints are interchangeable for
// every checker.
func resultFingerprint(res *engine.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pat=%s inits=%v dec=%v rounds=%v stats=%+v\n",
		res.Pattern.Key(), res.Inits, res.Decision, res.DecisionRound, res.Stats)
	for m := range res.States {
		for i := range res.States[m] {
			fmt.Fprintf(&b, "s[%d][%d]=%s\n", m, i, res.States[m][i].Key())
		}
	}
	for m := range res.Actions {
		fmt.Fprintf(&b, "a[%d]=%v\n", m, res.Actions[m])
	}
	return b.String()
}

func fipContext31() Context {
	return Context{Exchange: exchange.NewFIP(3), T: 1}
}

// TestBuildSystemMatchesPlainEngine pins the memoizing executor against
// the plain engine: every run of the system must be bit-identical to
// executing its scenario through engine.Run.
func TestBuildSystemMatchesPlainEngine(t *testing.T) {
	sys, err := BuildSystem(context.Background(), fipContext31(), action.NewOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	for ri, res := range sys.Runs {
		plain, err := engine.Run(engine.Config{
			Exchange: exchange.NewFIP(3),
			Action:   action.NewOpt(1),
			Pattern:  res.Pattern,
			Inits:    res.Inits,
			Horizon:  sys.Horizon,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := resultFingerprint(res), resultFingerprint(plain); got != want {
			t.Fatalf("run %d differs from the plain engine:\nmemo:\n%s\nplain:\n%s", ri, got, want)
		}
	}
}

// TestBuildSystemParallelismDeterminism checks BuildSystem is bit-identical
// at parallelism 1 and GOMAXPROCS, run for run.
func TestBuildSystemParallelismDeterminism(t *testing.T) {
	ctxs := map[string]struct {
		c   Context
		act model.ActionProtocol
	}{
		"fip":   {fipContext31(), action.NewOpt(1)},
		"min":   {Context{Exchange: exchange.NewMin(3), T: 1}, action.NewMin(1)},
		"crash": {Context{Exchange: exchange.NewBasic(3), T: 1, Crash: true}, action.NewBasic(3)},
	}
	for name, tc := range ctxs {
		seq, err := BuildSystem(context.Background(), tc.c, tc.act, WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := BuildSystem(context.Background(), tc.c, tc.act, WithParallelism(goruntime.GOMAXPROCS(0)))
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Runs) != len(par.Runs) {
			t.Fatalf("%s: %d vs %d runs", name, len(seq.Runs), len(par.Runs))
		}
		for r := range seq.Runs {
			if resultFingerprint(seq.Runs[r]) != resultFingerprint(par.Runs[r]) {
				t.Fatalf("%s: run %d differs between parallelism levels", name, r)
			}
		}
	}
}

// TestCheckersParallelismDeterminism checks all three checkers return
// identical reports at parallelism 1 and GOMAXPROCS — including on a
// system with real violations (Pmin over Efip).
func TestCheckersParallelismDeterminism(t *testing.T) {
	var baselineMs, baselineVs, baselineOs string
	for _, par := range []int{1, goruntime.GOMAXPROCS(0), 7} {
		opts := []Option{WithParallelism(par)}
		sys, err := BuildSystem(context.Background(), fipContext31(), action.NewMin(1), opts...)
		if err != nil {
			t.Fatal(err)
		}
		ms := checkImplements(t, sys, P1, 0)
		vs := checkSafety(t, sys, 0)
		os := checkOptimality(t, sys, -1, 0)
		if par == 1 {
			baselineMs, baselineVs, baselineOs = fmt.Sprint(ms), fmt.Sprint(vs), fmt.Sprint(os)
			if len(ms) == 0 || len(os) == 0 {
				t.Fatal("expected real violations from Pmin over Efip; the determinism test is vacuous")
			}
			continue
		}
		if fmt.Sprint(ms) != baselineMs {
			t.Errorf("par=%d: CheckImplements differs from sequential", par)
		}
		if fmt.Sprint(vs) != baselineVs {
			t.Errorf("par=%d: CheckSafety differs from sequential", par)
		}
		if fmt.Sprint(os) != baselineOs {
			t.Errorf("par=%d: CheckOptimalityFIP differs from sequential", par)
		}
	}
}

// TestSynthesizeParallelismDeterminism checks the fixpoint construction
// is bit-identical at parallelism 1 and GOMAXPROCS.
func TestSynthesizeParallelismDeterminism(t *testing.T) {
	c := Context{Exchange: exchange.NewMin(3), T: 1}
	seqSynth, seqSys, err := Synthesize(context.Background(), c, P0, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parSynth, parSys, err := Synthesize(context.Background(), c, P0, WithParallelism(goruntime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatal(err)
	}
	if seqSynth.Size() != parSynth.Size() {
		t.Fatalf("table sizes differ: %d vs %d", seqSynth.Size(), parSynth.Size())
	}
	for k, a := range seqSynth.table {
		if parSynth.table[k] != a {
			t.Fatalf("table entry %q differs: %v vs %v", k, a, parSynth.table[k])
		}
	}
	for r := range seqSys.Runs {
		if resultFingerprint(seqSys.Runs[r]) != resultFingerprint(parSys.Runs[r]) {
			t.Fatalf("synthesized run %d differs between parallelism levels", r)
		}
	}
}

// TestCNReachableMatchesNaiveBFS is the differential test for the
// interned condensation: on the fip n=3,t=1 system, CNReachable must
// agree with a naive O(runs²) BFS over the definitional accessibility
// relation (q → q' iff some agent j nonfaulty at q has the same local
// state at both points).
func TestCNReachableMatchesNaiveBFS(t *testing.T) {
	sys, err := BuildSystem(context.Background(), fipContext31(), action.NewOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m <= sys.Horizon; m++ {
		// Precompute keys and nonfaulty sets for the slice.
		keys := make([][]string, len(sys.Runs))
		for r := range sys.Runs {
			keys[r] = make([]string, sys.N)
			for i := 0; i < sys.N; i++ {
				keys[r][i] = sys.Key(model.AgentID(i), Point{Run: r, Time: m})
			}
		}
		edge := func(q, qp int) bool {
			for j := 0; j < sys.N; j++ {
				if sys.Runs[q].Pattern.Nonfaulty(model.AgentID(j)) && keys[q][j] == keys[qp][j] {
					return true
				}
			}
			return false
		}
		// BFS from a deterministic sample of sources (the relation is the
		// same for every source in a class, so a spread sample suffices).
		for src := 0; src < len(sys.Runs); src += 97 {
			reach := make([]bool, len(sys.Runs))
			var queue []int
			for qp := 0; qp < len(sys.Runs); qp++ {
				if edge(src, qp) && !reach[qp] {
					reach[qp] = true
					queue = append(queue, qp)
				}
			}
			for len(queue) > 0 {
				q := queue[0]
				queue = queue[1:]
				for qp := 0; qp < len(sys.Runs); qp++ {
					if !reach[qp] && edge(q, qp) {
						reach[qp] = true
						queue = append(queue, qp)
					}
				}
			}
			var want []int
			for qp, ok := range reach {
				if ok {
					want = append(want, qp)
				}
			}
			got := append([]int(nil), sys.CNReachable(Point{Run: src, Time: m})...)
			sort.Ints(got)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("time %d source %d: CNReachable %v, naive BFS %v", m, src, got, want)
			}
		}
	}
}

// TestBuildSystemCancellation checks ctx cancellation aborts the build
// with the cancellation cause.
func TestBuildSystemCancellation(t *testing.T) {
	cause := errors.New("operator gave up")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if _, err := BuildSystem(ctx, fipContext31(), action.NewOpt(1)); !errors.Is(err, cause) {
		t.Fatalf("BuildSystem error = %v, want the cancellation cause", err)
	}
	if _, _, err := Synthesize(ctx, Context{Exchange: exchange.NewMin(3), T: 1}, P0); !errors.Is(err, cause) {
		t.Fatalf("Synthesize error = %v, want the cancellation cause", err)
	}
}

// TestCheckerCancellation checks the checkers abort with the cancellation
// cause.
func TestCheckerCancellation(t *testing.T) {
	sys, err := BuildSystem(context.Background(), fipContext31(), action.NewOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("deadline")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if _, err := sys.CheckImplements(ctx, P1, 0); !errors.Is(err, cause) {
		t.Errorf("CheckImplements error = %v, want the cancellation cause", err)
	}
	if _, err := sys.CheckSafety(ctx, 0); !errors.Is(err, cause) {
		t.Errorf("CheckSafety error = %v, want the cancellation cause", err)
	}
	if _, err := sys.CheckOptimalityFIP(ctx, -1, 0); !errors.Is(err, cause) {
		t.Errorf("CheckOptimalityFIP error = %v, want the cancellation cause", err)
	}
}

// TestTruncationNotices checks every checker reports the size of a
// truncated tail instead of silently dropping it.
func TestTruncationNotices(t *testing.T) {
	// Pmin over Efip violates both the P1 implementation and the
	// optimality characterization; P0 over Efip violates safety.
	sys, err := BuildSystem(context.Background(), fipContext31(), action.NewMin(1))
	if err != nil {
		t.Fatal(err)
	}

	all := checkImplements(t, sys, P1, 0)
	capped := checkImplements(t, sys, P1, 1)
	if len(all) < 2 {
		t.Fatalf("expected ≥2 mismatches from Pmin/P1, got %d; truncation test is vacuous", len(all))
	}
	if len(capped) != 2 {
		t.Fatalf("CheckImplements(max=1) returned %d entries, want 1 + notice", len(capped))
	}
	notice := capped[1]
	if notice.More != len(all)-1 {
		t.Errorf("notice.More = %d, want %d", notice.More, len(all)-1)
	}
	if !strings.Contains(notice.String(), "truncated") {
		t.Errorf("notice renders as %q, want a truncation notice", notice.String())
	}
	if capped[0] != all[0] {
		t.Error("capped prefix differs from the uncapped report")
	}

	allOpt := checkOptimality(t, sys, -1, 0)
	cappedOpt := checkOptimality(t, sys, -1, 1)
	if len(allOpt) <= 2 {
		t.Fatalf("expected >2 optimality violations, got %d", len(allOpt))
	}
	if len(cappedOpt) != 2 || !strings.Contains(cappedOpt[1], "truncated") ||
		!strings.Contains(cappedOpt[1], fmt.Sprint(len(allOpt)-1)) {
		t.Errorf("CheckOptimalityFIP(max=1) = %v, want first violation + notice of %d more", cappedOpt, len(allOpt)-1)
	}

	fipP0, err := BuildSystem(context.Background(), fipContext31(), action.NewOptNoCK(1))
	if err != nil {
		t.Fatal(err)
	}
	allSafety := checkSafety(t, fipP0, 0)
	cappedSafety := checkSafety(t, fipP0, 1)
	if len(allSafety) <= 2 {
		t.Fatalf("expected >2 safety violations in γ_fip, got %d", len(allSafety))
	}
	if len(cappedSafety) != 2 || !strings.Contains(cappedSafety[1], "truncated") {
		t.Errorf("CheckSafety(max=1) = %v, want first violation + notice", cappedSafety)
	}
}

// TestMemoExecFallback checks the n > 8 fallback to the plain engine:
// the memo's packed keys cover at most 8 agents, so a 9-agent context
// must still build (and still implement P0).
func TestMemoExecFallback(t *testing.T) {
	c := Context{Exchange: exchange.NewMin(9), T: 0, Horizon: 1}
	sys, err := BuildSystem(context.Background(), c, action.NewMin(0))
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 << 9; len(sys.Runs) != want {
		t.Fatalf("got %d runs, want %d (one pattern × 2⁹ inits)", len(sys.Runs), want)
	}
}
