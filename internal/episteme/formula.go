package episteme

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Formula is an epistemic-temporal formula in the language of Section 2
// of the paper, interpreted at points of an interpreted System: primitive
// propositions about runs, boolean connectives, knowledge K_i, common
// knowledge among the nonfaulty agents C_N, and the temporal operators
// ○ (next), ⊖ (previous), □ (henceforth), and ◇ (eventually).
//
// Temporal operators are evaluated on the bounded trace: ○φ is false at
// the final time of a run and ⊖φ is false at time 0, matching the paper's
// convention for ⊖; □ and ◇ quantify over the remaining recorded times.
// All of the paper's protocols are quiescent by the default horizon t+2,
// so the bounded readings agree with the unbounded ones for the formulas
// used here.
type Formula interface {
	// Holds evaluates the formula at point p of sys.
	Holds(sys *System, p Point) bool
	// String renders the formula in a notation close to the paper's.
	String() string
}

// --- atoms ---------------------------------------------------------------

type atom struct {
	name string
	fn   func(sys *System, p Point) bool
}

func (a atom) Holds(sys *System, p Point) bool { return a.fn(sys, p) }
func (a atom) String() string                  { return a.name }

// Atom builds a primitive proposition from a point predicate.
func Atom(name string, fn func(sys *System, p Point) bool) Formula {
	return atom{name: name, fn: fn}
}

// TrueF is the constant true.
func TrueF() Formula { return Atom("true", func(*System, Point) bool { return true }) }

// InitIs is the paper's init_i = v.
func InitIs(i model.AgentID, v model.Value) Formula {
	return Atom(fmt.Sprintf("init_%d=%v", i, v), func(sys *System, p Point) bool {
		return sys.Runs[p.Run].Inits[i] == v
	})
}

// DecidedIs is the paper's decided_i = v (with v = None for ⊥).
func DecidedIs(i model.AgentID, v model.Value) Formula {
	return Atom(fmt.Sprintf("decided_%d=%v", i, v), func(sys *System, p Point) bool {
		return sys.DecidedVal(i, p) == v
	})
}

// JustDecidedIs is the paper's jdecided_i = v.
func JustDecidedIs(i model.AgentID, v model.Value) Formula {
	return Atom(fmt.Sprintf("jdecided_%d=%v", i, v), func(sys *System, p Point) bool {
		return sys.JustDecided(i, v, p)
	})
}

// DecidingIs is the paper's deciding_i = v.
func DecidingIs(i model.AgentID, v model.Value) Formula {
	return Atom(fmt.Sprintf("deciding_%d=%v", i, v), func(sys *System, p Point) bool {
		return sys.Deciding(i, v, p)
	})
}

// NonfaultyF is the paper's i ∈ N.
func NonfaultyF(i model.AgentID) Formula {
	return Atom(fmt.Sprintf("%d∈N", i), func(sys *System, p Point) bool {
		return sys.Nonfaulty(i, p)
	})
}

// ExistsF is the paper's ∃v: some agent's initial preference is v.
func ExistsF(v model.Value) Formula {
	return Atom(fmt.Sprintf("∃%v", v), func(sys *System, p Point) bool {
		return sys.Exists(v, p)
	})
}

// TimeIs is the paper's time = m.
func TimeIs(m int) Formula {
	return Atom(fmt.Sprintf("time=%d", m), func(_ *System, p Point) bool {
		return p.Time == m
	})
}

// NoDecidedNF is the paper's no-decided_N(v).
func NoDecidedNF(v model.Value) Formula {
	return Atom(fmt.Sprintf("no-decided_N(%v)", v), func(sys *System, p Point) bool {
		return sys.NoDecidedN(v, p)
	})
}

// --- boolean connectives --------------------------------------------------

type notF struct{ f Formula }

func (n notF) Holds(sys *System, p Point) bool { return !n.f.Holds(sys, p) }
func (n notF) String() string                  { return "¬" + n.f.String() }

// Not is negation.
func Not(f Formula) Formula { return notF{f} }

type andF struct{ fs []Formula }

func (a andF) Holds(sys *System, p Point) bool {
	for _, f := range a.fs {
		if !f.Holds(sys, p) {
			return false
		}
	}
	return true
}
func (a andF) String() string { return joinFormulas(a.fs, " ∧ ") }

// And is conjunction (true when empty).
func And(fs ...Formula) Formula { return andF{fs} }

type orF struct{ fs []Formula }

func (o orF) Holds(sys *System, p Point) bool {
	for _, f := range o.fs {
		if f.Holds(sys, p) {
			return true
		}
	}
	return false
}
func (o orF) String() string { return joinFormulas(o.fs, " ∨ ") }

// Or is disjunction (false when empty).
func Or(fs ...Formula) Formula { return orF{fs} }

// Implies is material implication.
func Implies(a, b Formula) Formula {
	return Atom("("+a.String()+" ⇒ "+b.String()+")", func(sys *System, p Point) bool {
		return !a.Holds(sys, p) || b.Holds(sys, p)
	})
}

// Iff is material equivalence.
func Iff(a, b Formula) Formula {
	return Atom("("+a.String()+" ⇔ "+b.String()+")", func(sys *System, p Point) bool {
		return a.Holds(sys, p) == b.Holds(sys, p)
	})
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// --- epistemic operators ---------------------------------------------------

type kF struct {
	i model.AgentID
	f Formula
	// memo caches the (local-state-determined) value of K_i f per system
	// and per local state key; without it nested K's are quadratic in the
	// indistinguishability-class sizes.
	memo map[*System]map[string]bool
}

func (k *kF) Holds(sys *System, p Point) bool {
	states, ok := k.memo[sys]
	if !ok {
		states = make(map[string]bool)
		k.memo[sys] = states
	}
	key := sys.Key(k.i, p)
	if v, ok := states[key]; ok {
		return v
	}
	v := sys.Knows(k.i, p, func(q Point) bool { return k.f.Holds(sys, q) })
	states[key] = v
	return v
}
func (k *kF) String() string { return fmt.Sprintf("K_%d %s", k.i, k.f) }

// K is the knowledge operator K_i. The returned formula caches its
// evaluations per local state; it is not safe for concurrent use.
func K(i model.AgentID, f Formula) Formula {
	return &kF{i: i, f: f, memo: make(map[*System]map[string]bool)}
}

type enF struct {
	f  Formula
	ks map[model.AgentID]Formula // per-agent K_i f, each with its own memo
}

func (e *enF) Holds(sys *System, p Point) bool {
	for i := 0; i < sys.N; i++ {
		id := model.AgentID(i)
		if !sys.Nonfaulty(id, p) {
			continue
		}
		ki, ok := e.ks[id]
		if !ok {
			ki = K(id, e.f)
			e.ks[id] = ki
		}
		if !ki.Holds(sys, p) {
			return false
		}
	}
	return true
}
func (e *enF) String() string { return "E_N " + e.f.String() }

// EN is "every nonfaulty agent knows" (the paper's E_S with S = N).
func EN(f Formula) Formula { return &enF{f: f, ks: make(map[model.AgentID]Formula)} }

type cnF struct{ f Formula }

func (c cnF) Holds(sys *System, p Point) bool {
	for _, r := range sys.CNReachable(p) {
		if !c.f.Holds(sys, Point{Run: r, Time: p.Time}) {
			return false
		}
	}
	return true
}
func (c cnF) String() string { return "C_N " + c.f.String() }

// CN is indexical common knowledge among the nonfaulty agents.
func CN(f Formula) Formula { return cnF{f} }

// --- temporal operators -----------------------------------------------------

type nextF struct{ f Formula }

func (x nextF) Holds(sys *System, p Point) bool {
	if p.Time >= sys.Horizon {
		return false
	}
	return x.f.Holds(sys, Point{Run: p.Run, Time: p.Time + 1})
}
func (x nextF) String() string { return "○" + x.f.String() }

// Next is the paper's ○: φ holds at the next time. False at the final
// recorded time.
func Next(f Formula) Formula { return nextF{f} }

type prevF struct{ f Formula }

func (x prevF) Holds(sys *System, p Point) bool {
	if p.Time == 0 {
		return false
	}
	return x.f.Holds(sys, Point{Run: p.Run, Time: p.Time - 1})
}
func (x prevF) String() string { return "⊖" + x.f.String() }

// Prev is the paper's ⊖: φ held at the previous time (false at time 0).
func Prev(f Formula) Formula { return prevF{f} }

type henceforthF struct{ f Formula }

func (x henceforthF) Holds(sys *System, p Point) bool {
	for m := p.Time; m <= sys.Horizon; m++ {
		if !x.f.Holds(sys, Point{Run: p.Run, Time: m}) {
			return false
		}
	}
	return true
}
func (x henceforthF) String() string { return "□" + x.f.String() }

// Henceforth is the paper's □, bounded to the recorded trace.
func Henceforth(f Formula) Formula { return henceforthF{f} }

type eventuallyF struct{ f Formula }

func (x eventuallyF) Holds(sys *System, p Point) bool {
	for m := p.Time; m <= sys.Horizon; m++ {
		if x.f.Holds(sys, Point{Run: p.Run, Time: m}) {
			return true
		}
	}
	return false
}
func (x eventuallyF) String() string { return "◇" + x.f.String() }

// Eventually is ◇ = ¬□¬, bounded to the recorded trace.
func Eventually(f Formula) Formula { return eventuallyF{f} }

// Valid reports whether the formula holds at every point of the system
// (the paper's I ⊨ φ), returning a falsifying point when it does not.
func Valid(sys *System, f Formula) (bool, Point) {
	for r := range sys.Runs {
		for m := 0; m <= sys.Horizon; m++ {
			p := Point{Run: r, Time: m}
			if !f.Holds(sys, p) {
				return false, p
			}
		}
	}
	return true, Point{}
}
