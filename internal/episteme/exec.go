package episteme

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/model"
)

// memoExec is the model checker's execution substrate: an engine.Executor
// that memoizes work across the runs of one exhaustive enumeration.
// Exhaustive sweeps execute the same round many times — patterns sharing
// a drop prefix drive identical state vectors through identical
// deliveries — so the (state vector, actions, round drops) triple
// determines the next state vector and the round's traffic stats.
// memoExec interns local states into dense ids, memoizes the action
// protocol per (agent, state id) — action protocols are functions of the
// local state, the premise CheckImplements' per-class dedup already rests
// on — memoizes round transitions per triple, and interns the time-0
// state vectors per initial assignment. Runs that revisit a transition
// alias the same immutable state objects, which also lets every
// downstream key computation hit the same cached fingerprints.
//
// The memo keys state vectors by interned ids and round deliveries by an
// n²-bit mask, so it requires n ≤ 8; larger systems (far beyond
// exhaustive checking anyway) fall back to the plain engine. Safe for
// concurrent use by the Runner's worker pool.
type memoExec struct {
	mu      sync.RWMutex
	stateID map[string]int32
	acts    [][]model.Action // [agent][stateID] → memoized action, or actUnknown
	actVecs map[[8]int32][]model.Action
	steps   map[stepKey]stepVal
	initial map[uint32][]model.State
}

// actUnknown marks an action-memo slot that has not been evaluated yet.
const actUnknown = model.Action(-128)

// stepKey identifies one round transition up to trace equality.
type stepKey struct {
	m      int
	states [8]int32
	acts   [8]int8
	drops  uint64
}

// stepVal is the shared outcome of a memoized transition. The state
// slice is immutable and aliased by every run that hits the entry.
type stepVal struct {
	next  []model.State
	stats engine.Stats
}

func newMemoExec(n int) *memoExec {
	return &memoExec{
		stateID: make(map[string]int32, 1024),
		acts:    make([][]model.Action, n),
		actVecs: make(map[[8]int32][]model.Action, 1024),
		steps:   make(map[stepKey]stepVal, 1024),
		initial: make(map[uint32][]model.State),
	}
}

// Name identifies the executor.
func (e *memoExec) Name() string { return "episteme-memo" }

// internState returns the dense id of a local-state key, growing the
// per-agent action memos alongside the id space.
func (e *memoExec) internState(key string) int32 {
	e.mu.RLock()
	id, ok := e.stateID[key]
	e.mu.RUnlock()
	if ok {
		return id
	}
	e.mu.Lock()
	id, ok = e.stateID[key]
	if !ok {
		id = int32(len(e.stateID))
		e.stateID[key] = id
		for i := range e.acts {
			e.acts[i] = append(e.acts[i], actUnknown)
		}
	}
	e.mu.Unlock()
	return id
}

// actFor returns the memoized action of agent i at the interned state,
// evaluating the protocol on the first visit.
func (e *memoExec) actFor(act model.ActionProtocol, i model.AgentID, id int32, st model.State) model.Action {
	e.mu.RLock()
	a := e.acts[i][id]
	e.mu.RUnlock()
	if a != actUnknown {
		return a
	}
	a = act.Act(i, st)
	e.mu.Lock()
	e.acts[i][id] = a
	e.mu.Unlock()
	return a
}

// actVecFor returns the shared action vector of an interned state vector:
// actions are functions of the local state, so every run revisiting the
// vector records the same immutable slice.
func (e *memoExec) actVecFor(act model.ActionProtocol, ids [8]int32, states []model.State) []model.Action {
	e.mu.RLock()
	acts, ok := e.actVecs[ids]
	e.mu.RUnlock()
	if ok {
		return acts
	}
	acts = make([]model.Action, len(states))
	for i := range states {
		acts[i] = e.actFor(act, model.AgentID(i), ids[i], states[i])
	}
	e.mu.Lock()
	if prev, again := e.actVecs[ids]; again {
		acts = prev
	} else {
		e.actVecs[ids] = acts
	}
	e.mu.Unlock()
	return acts
}

// initialStates returns the shared time-0 state vector for an initial
// assignment (at most 2ⁿ distinct vectors exist).
func (e *memoExec) initialStates(ex model.Exchange, inits []model.Value) []model.State {
	var key uint32
	for i, v := range inits {
		key |= uint32(v&3) << (2 * uint(i))
	}
	e.mu.RLock()
	states, ok := e.initial[key]
	e.mu.RUnlock()
	if ok {
		return states
	}
	states = make([]model.State, len(inits))
	for i := range inits {
		states[i] = ex.Initial(model.AgentID(i), inits[i])
	}
	e.mu.Lock()
	if prev, again := e.initial[key]; again {
		states = prev
	} else {
		e.initial[key] = states
	}
	e.mu.Unlock()
	return states
}

// dropMask packs round-m delivery of every ordered pair into a bitmask.
func dropMask(pat *model.Pattern, m, n int) uint64 {
	var mask uint64
	bit := uint(0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !pat.Delivered(m, model.AgentID(i), model.AgentID(j)) {
				mask |= 1 << bit
			}
			bit++
		}
	}
	return mask
}

// Execute runs one configuration like engine.RunBuffered, but serves
// actions, round transitions, and initial states from the shared memo
// when identical ones have already been computed. Results are
// bit-identical to the plain engine's (shared state objects are equal by
// construction); only the work is shared. Result.Inits aliases
// cfg.Inits, which the model checker's scenario source allocates per
// scenario.
func (e *memoExec) Execute(cfg engine.Config, buf *engine.Buffers) (*engine.Result, error) {
	ex, act, pat := cfg.Exchange, cfg.Action, cfg.Pattern
	if ex == nil || act == nil || pat == nil {
		return nil, errors.New("engine: Exchange, Action, and Pattern are all required")
	}
	n := ex.N()
	if n > 8 {
		// The memo's packed keys cover n ≤ 8; beyond that, run plain.
		return engine.RunBuffered(cfg, buf)
	}
	if pat.N() != n {
		return nil, fmt.Errorf("engine: pattern is for %d agents, exchange for %d", pat.N(), n)
	}
	if len(cfg.Inits) != n {
		return nil, fmt.Errorf("engine: %d initial values for %d agents", len(cfg.Inits), n)
	}
	for i, v := range cfg.Inits {
		if !v.IsSet() {
			return nil, fmt.Errorf("engine: agent %d has no initial preference", i)
		}
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = pat.Horizon()
	}
	if horizon < 0 {
		return nil, fmt.Errorf("engine: negative horizon %d", horizon)
	}
	if buf != nil {
		// Bind the worker's buffers (and, with arena-backed buffers, the
		// exchange scratch) to this run; fresh transitions are computed
		// through the buffered step and detached before interning.
		buf.BeginRun(ex)
	}

	res := &engine.Result{
		N:             n,
		Horizon:       horizon,
		Pattern:       pat,
		Inits:         cfg.Inits,
		States:        make([][]model.State, horizon+1),
		Actions:       make([][]model.Action, horizon),
		Decision:      make([]model.Value, n),
		DecisionRound: make([]int, n),
	}
	for i := range res.Decision {
		res.Decision[i] = model.None
	}
	cur := e.initialStates(ex, cfg.Inits)
	res.States[0] = cur

	for m := 0; m < horizon; m++ {
		key := stepKey{m: m, drops: dropMask(pat, m, n)}
		for i := 0; i < n; i++ {
			key.states[i] = e.internState(cur[i].Key())
		}
		acts := e.actVecFor(act, key.states, cur)
		for i := 0; i < n; i++ {
			key.acts[i] = int8(acts[i])
			if d := acts[i].Decision(); d.IsSet() && res.Decision[i] == model.None {
				res.Decision[i] = d
				res.DecisionRound[i] = m + 1
			}
		}
		res.Actions[m] = acts

		e.mu.RLock()
		val, ok := e.steps[key]
		e.mu.RUnlock()
		if !ok {
			next := make([]model.State, n)
			stats, err := engine.StepInto(ex, pat, m, cur, acts, next, buf)
			if err != nil {
				return nil, err
			}
			// The row is interned and aliased by every run that hits the
			// entry — including runs on other workers after this worker's
			// arena has been recycled. Freeze it first.
			model.DetachAll(next)
			val = stepVal{next: next, stats: stats}
			e.mu.Lock()
			if prev, again := e.steps[key]; again {
				val = prev
			} else {
				e.steps[key] = val
			}
			e.mu.Unlock()
		}
		res.Stats.MessagesSent += val.stats.MessagesSent
		res.Stats.MessagesDelivered += val.stats.MessagesDelivered
		res.Stats.BitsSent += val.stats.BitsSent
		res.Stats.BitsDelivered += val.stats.BitsDelivered
		cur = val.next
		res.States[m+1] = cur
	}
	return res, nil
}

// Interface compliance.
var _ engine.Executor = (*memoExec)(nil)
