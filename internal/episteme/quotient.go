// Symmetry-quotiented system construction: the expansion half.
//
// The enumeration half lives in source.Quotient — execute only the
// canonical representative of each agent-permutation orbit, annotated
// with its orbit size. This file turns a representative System back into
// the full one, exactly: the paper's exchanges and action protocols are
// agent-symmetric, so the run of any scenario g is the run of its
// canonical representative with the agents relabeled. ExpandQuotient
// re-enumerates the full sweep WITHOUT executing it, maps each scenario
// to (representative, relabeling), and synthesizes the full system's
// decision ledgers and interned class tables by permuting the
// representative's — class ids assigned by first appearance in global
// run order, the same order buildIndex and MergeSystems assign them, so
// every verdict over the expanded system is bit-identical to the
// unquotiented build's (pinned by TestQuotientSystemBitIdentical and the
// CI quotient smoke).
//
// Local-state identity crosses the relabeling through model.KeyPermuter:
// agent i's state key in run g is the key of agent π(i)'s state in the
// representative, rewritten under π⁻¹. Exchanges whose keys don't
// implement KeyPermuter cannot expand — ExpandQuotient refuses rather
// than producing silently wrong class structure.

package episteme

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
)

// ExpandQuotient rebuilds the full interpreted system from a quotiented
// one (BuildSystem with WithQuotient builds and expands in one call;
// sharded flows expand once, after MergeSystems reassembles the
// representative system). c must be the context the quotiented system
// was built in — the expansion re-enumerates c's scenario source and
// cross-checks every orbit against the representative weights, so a
// mismatched context fails loudly instead of mis-expanding. The expanded
// system carries no state traces (like a merged one): System.Key and the
// checkers ride the interned class tables.
func ExpandQuotient(ctx context.Context, rep *System, c Context) (*System, error) {
	if !rep.Quotiented() {
		return nil, fmt.Errorf("episteme: ExpandQuotient on a system that is not quotiented")
	}
	if c.Exchange == nil {
		return nil, fmt.Errorf("episteme: ExpandQuotient needs the context's exchange")
	}
	kp, ok := c.Exchange.(model.KeyPermuter)
	if !ok {
		return nil, fmt.Errorf("episteme: exchange %q does not implement model.KeyPermuter; its local-state keys cannot cross an agent relabeling", c.Exchange.Name())
	}
	n, horizon := rep.N, rep.Horizon
	if c.Exchange.N() != n || c.T != rep.T || c.horizonOrDefault() != horizon {
		return nil, fmt.Errorf("episteme: expansion context (n=%d,t=%d,h=%d) does not match quotiented system (n=%d,t=%d,h=%d)",
			c.Exchange.N(), c.T, c.horizonOrDefault(), n, rep.T, horizon)
	}

	// Representatives by scenario fingerprint: the full enumeration below
	// resolves each scenario's canonical form against this.
	repOf := make(map[string]int32, len(rep.Runs))
	for r, res := range rep.Runs {
		fp := scenarioFingerprint(res.Pattern, res.Inits)
		if _, dup := repOf[fp]; dup {
			return nil, fmt.Errorf("episteme: quotiented system carries representative %q twice", fp)
		}
		repOf[fp] = int32(r)
	}

	src, err := c.scenarioSource(n, horizon)
	if err != nil {
		return nil, err
	}

	// Pass 1 — re-enumerate the full sweep, mapping scenario ordinal g to
	// (gRep[g], perms[gPerm[g]]): its representative and the relabeling π
	// with π·g = representative. Runs are synthesized on the way: ledgers
	// are the representative's with agents relabeled (g's agent i is the
	// representative's agent π(i)), stats are permutation-invariant.
	var (
		gRep, gPerm []int32
		perms       [][]model.AgentID // interned relabelings π
		invs        [][]model.AgentID // their inverses π⁻¹
		isID        []bool
		permID      = make(map[string]int32)
		counts      = make([]int64, len(rep.Runs))
		runs        []*engine.Result
	)
	for sc, more := src.Next(); more; sc, more = src.Next() {
		canonPat, canonInits, orbit, perm := model.CanonicalizeScenarioPerm(sc.Pattern, sc.Inits)
		r, known := repOf[scenarioFingerprint(canonPat, canonInits)]
		if !known {
			return nil, fmt.Errorf("episteme: scenario %q canonicalizes outside the representative set (context mismatch?)",
				scenarioFingerprint(sc.Pattern, sc.Inits))
		}
		if w := rep.Weight(int(r)); orbit != w {
			return nil, fmt.Errorf("episteme: representative %d carries weight %d, its orbit has size %d", r, w, orbit)
		}
		counts[r]++
		pid, seen := permID[permFingerprint(perm)]
		if !seen {
			pid = int32(len(perms))
			permID[permFingerprint(perm)] = pid
			perms = append(perms, perm)
			invs = append(invs, invertPerm(perm))
			isID = append(isID, isIdentity(perm))
		}
		gRep = append(gRep, r)
		gPerm = append(gPerm, pid)
		runs = append(runs, expandRun(rep.Runs[r], sc, perm))
	}
	if es, isErr := src.(core.ErrorSource); isErr {
		if err := es.Err(); err != nil {
			return nil, err
		}
	}
	for r, cnt := range counts {
		if w := rep.Weight(r); cnt != w {
			return nil, fmt.Errorf("episteme: representative %d stands for %d scenarios, enumeration visited %d (context mismatch?)", r, w, cnt)
		}
	}

	// Pass 2 — intern the full system's class tables. For slot (m, i),
	// run g's key is the representative's key at (m, π(i)) rewritten under
	// π⁻¹; interning in ascending g reproduces the first-appearance order
	// the single-process buildIndex assigns. The (rep agent, relabeling,
	// rep class) triple determines the key, so each distinct triple pays
	// for the string rewrite once and every other run is integer lookups.
	total := len(runs)
	sys := &System{N: n, T: rep.T, Horizon: horizon, Runs: runs, par: rep.parallelism()}
	nSlots := (horizon + 1) * n
	sys.classOf = make([][]int32, nSlots)
	sys.classRuns = make([][][]int, nSlots)
	sys.classKey = make([][]string, nSlots)
	sys.classGlobal = make([][]int32, nSlots)
	sys.byKey = make([]map[string]int32, nSlots)
	sys.globalByKey = make(map[string]int32)

	type triple struct {
		src model.AgentID
		pid int32
		rc  int32
	}
	sliceErr := make([]error, horizon+1)
	err = parallelDo(ctx, sys.par, horizon+1, func(m int) {
		for i := 0; i < n && sliceErr[m] == nil; i++ {
			slot := m*n + i
			byKey := make(map[string]int32)
			var classKey []string
			classOf := make([]int32, total)
			cache := make(map[triple]int32)
			for g := 0; g < total; g++ {
				pid := gPerm[g]
				srcAgent := perms[pid][i]
				rc := rep.classOf[m*n+int(srcAgent)][gRep[g]]
				tk := triple{src: srcAgent, pid: pid, rc: rc}
				cls, hit := cache[tk]
				if !hit {
					key := rep.classKey[m*n+int(srcAgent)][rc]
					if !isID[pid] {
						key, sliceErr[m] = kp.PermuteKey(key, invs[pid])
						if sliceErr[m] != nil {
							return
						}
					}
					cls, hit = byKey[key]
					if !hit {
						cls = int32(len(classKey))
						byKey[key] = cls
						classKey = append(classKey, key)
					}
					cache[tk] = cls
				}
				classOf[g] = cls
			}
			sys.classOf[slot] = classOf
			sys.classRuns[slot] = packClassRuns(classOf, len(classKey))
			sys.classKey[slot] = classKey
			sys.byKey[slot] = byKey
		}
	})
	if err != nil {
		return nil, err
	}
	for _, e := range sliceErr {
		if e != nil {
			return nil, fmt.Errorf("episteme: expanding quotiented keys: %w", e)
		}
	}
	// Fold the system-wide key interning sequentially in slot order,
	// exactly as buildIndex and MergeSystems do.
	for slot := 0; slot < nSlots; slot++ {
		keys := sys.classKey[slot]
		global := make([]int32, len(keys))
		for c, key := range keys {
			id, known := sys.globalByKey[key]
			if !known {
				id = int32(len(sys.globalByKey))
				sys.globalByKey[key] = id
			}
			global[c] = id
		}
		sys.classGlobal[slot] = global
	}
	return sys, nil
}

// expandRun synthesizes the run of scenario sc from its representative's
// run: by agent symmetry run(sc) is run(rep) with the agents relabeled
// under π⁻¹ (sc's agent i is rep's agent π(i)). State traces are not
// reconstructed — the expanded system answers knowledge queries through
// its interned class tables, like a merged one.
func expandRun(repRes *engine.Result, sc core.Scenario, perm []model.AgentID) *engine.Result {
	n := repRes.N
	res := &engine.Result{
		N:             n,
		Horizon:       repRes.Horizon,
		Pattern:       sc.Pattern,
		Inits:         append([]model.Value(nil), sc.Inits...),
		Actions:       make([][]model.Action, len(repRes.Actions)),
		Decision:      make([]model.Value, n),
		DecisionRound: make([]int, n),
		Stats:         repRes.Stats, // message counts are permutation-invariant
	}
	for i := 0; i < n; i++ {
		res.Decision[i] = repRes.Decision[perm[i]]
		res.DecisionRound[i] = repRes.DecisionRound[perm[i]]
	}
	for m, row := range repRes.Actions {
		acts := make([]model.Action, n)
		for i := range acts {
			acts[i] = row[perm[i]]
		}
		res.Actions[m] = acts
	}
	return res
}

// scenarioFingerprint renders a scenario's identity — the pattern's
// canonical key plus the initial preferences — for representative lookup.
func scenarioFingerprint(p *model.Pattern, inits []model.Value) string {
	buf := make([]byte, 0, len(inits)+1)
	buf = append(buf, '/')
	for _, v := range inits {
		switch v {
		case model.Zero:
			buf = append(buf, '0')
		case model.One:
			buf = append(buf, '1')
		default:
			buf = append(buf, '?')
		}
	}
	return p.Key() + string(buf)
}

// permFingerprint renders a permutation for interning.
func permFingerprint(perm []model.AgentID) string {
	buf := make([]byte, len(perm))
	for i, a := range perm {
		buf[i] = byte(a)
	}
	return string(buf)
}

// invertPerm returns π⁻¹.
func invertPerm(perm []model.AgentID) []model.AgentID {
	inv := make([]model.AgentID, len(perm))
	for i, a := range perm {
		inv[a] = model.AgentID(i)
	}
	return inv
}

func isIdentity(perm []model.AgentID) bool {
	for i, a := range perm {
		if int(a) != i {
			return false
		}
	}
	return true
}
