package episteme

import (
	"context"
	"testing"
)

// The checker wrappers below keep the theorem tests focused on verdicts:
// they run a checker with a background context and fail the test on an
// infrastructure error (which none of these checks should produce).

func checkImplements(t *testing.T, sys *System, prog Program, max int) []Mismatch {
	t.Helper()
	ms, err := sys.CheckImplements(context.Background(), prog, max)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func checkSafety(t *testing.T, sys *System, max int) []string {
	t.Helper()
	vs, err := sys.CheckSafety(context.Background(), max)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

func checkOptimality(t *testing.T, sys *System, maxTime, max int) []string {
	t.Helper()
	vs, err := sys.CheckOptimalityFIP(context.Background(), maxTime, max)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}
