package episteme

import (
	"context"
	"testing"

	"repro/internal/action"
	"repro/internal/exchange"
	"repro/internal/graph"
	"repro/internal/model"
)

func buildMin(t *testing.T, n, tf int) *System {
	t.Helper()
	sys, err := BuildSystem(context.Background(), Context{Exchange: exchange.NewMin(n), T: tf}, action.NewMin(tf))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func buildBasic(t *testing.T, n, tf int) *System {
	t.Helper()
	sys, err := BuildSystem(context.Background(), Context{Exchange: exchange.NewBasic(n), T: tf}, action.NewBasic(n))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func buildFIP(t *testing.T, n, tf int, horizon int) *System {
	t.Helper()
	sys, err := BuildSystem(context.Background(), Context{Exchange: exchange.NewFIP(n), T: tf, Horizon: horizon},
		action.NewOpt(tf))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTheorem65PminImplementsP0(t *testing.T) {
	// Theorem 6.5: P_min implements P0 in γ_min (n=3, t=1), checked at
	// every reachable local state over every SO(1) pattern and every
	// initial assignment.
	sys := buildMin(t, 3, 1)
	if ms := checkImplements(t, sys, P0, 5); len(ms) != 0 {
		for _, m := range ms {
			t.Errorf("mismatch: %s", m)
		}
	}
}

func TestTheorem65PminImplementsP0N4(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys := buildMin(t, 4, 1)
	if ms := checkImplements(t, sys, P0, 5); len(ms) != 0 {
		for _, m := range ms {
			t.Errorf("mismatch: %s", m)
		}
	}
}

func TestTheorem66PbasicImplementsP0(t *testing.T) {
	// Theorem 6.6: P_basic implements P0 in γ_basic (n=3, t=1).
	sys := buildBasic(t, 3, 1)
	if ms := checkImplements(t, sys, P0, 5); len(ms) != 0 {
		for _, m := range ms {
			t.Errorf("mismatch: %s", m)
		}
	}
}

func TestTheoremA21PoptImplementsP1(t *testing.T) {
	// Theorem A.21: P_opt implements P1 in γ_fip (n=3, t=1).
	sys := buildFIP(t, 3, 1, 0)
	if ms := checkImplements(t, sys, P1, 5); len(ms) != 0 {
		for _, m := range ms {
			t.Errorf("mismatch: %s", m)
		}
	}
}

func TestOptNoCKImplementsP0OverFIP(t *testing.T) {
	// The ablated full-information protocol (P_opt without the
	// common-knowledge guards) is exactly an implementation of P0 in
	// γ_fip. At t=1 the hidden-chain bound (round k+2) coincides with the
	// common-knowledge bound (round 3), so P0 and P1 prescribe the same
	// actions at every reachable state of γ_fip(3,1) and the ablated
	// protocol implements both; the programs genuinely diverge only for
	// t ≥ 2 (experiment E15 exhibits the round-5 vs round-3 gap at
	// n=8, t=3, which is beyond exhaustive checking).
	sys, err := BuildSystem(context.Background(), Context{Exchange: exchange.NewFIP(3), T: 1}, action.NewOptNoCK(1))
	if err != nil {
		t.Fatal(err)
	}
	if ms := checkImplements(t, sys, P0, 5); len(ms) != 0 {
		for _, m := range ms {
			t.Errorf("mismatch vs P0: %s", m)
		}
	}
	if ms := checkImplements(t, sys, P1, 5); len(ms) != 0 {
		for _, m := range ms {
			t.Errorf("mismatch vs P1 (they coincide at t=1): %s", m)
		}
	}
}

func TestGraphCommonVMatchesSemanticCommonKnowledge(t *testing.T) {
	// Guard-level validation of the polynomial-time implementation: at
	// every reachable point of γ_fip(3,1), the graph-based common_v test
	// (Lemma A.20's characterization computed from the local
	// communication graph) must coincide with K_i(C_N(t-faulty ∧
	// no-decided_N(1−v) ∧ ∃v)) evaluated semantically over the full
	// interpreted system. This is stronger than CheckImplements, which
	// only compares final actions.
	sys := buildFIP(t, 3, 1, 0)
	checked, fired := 0, 0
	sys.Points(-1, func(p Point) {
		for i := 0; i < sys.N; i++ {
			id := model.AgentID(i)
			st := sys.State(id, p).(*exchange.FIPState)
			ref := graph.NewRef(sys.T, st.Graph())
			for _, v := range []model.Value{model.Zero, model.One} {
				got := ref.CommonV(v, id, p.Time)
				want := sys.KnowsCK(id, p, v)
				checked++
				if want {
					fired++
				}
				if got != want {
					t.Fatalf("common_%v at run %d time %d agent %d: graph says %v, semantics say %v",
						v, p.Run, p.Time, i, got, want)
				}
			}
		}
	})
	if fired == 0 {
		t.Fatal("common knowledge never held; the test is vacuous")
	}
	t.Logf("checked %d guard instances, %d with common knowledge attained", checked, fired)
}

func TestP0AndP1AgreeInLimitedContexts(t *testing.T) {
	// Section 7: in the minimal and basic contexts agents never learn who
	// is faulty, so the common-knowledge guards never fire and P1 ≡ P0.
	sys := buildMin(t, 3, 1)
	if ms := checkImplements(t, sys, P1, 5); len(ms) != 0 {
		t.Errorf("P1 differs from Pmin in γ_min: %v", ms[0])
	}
}
