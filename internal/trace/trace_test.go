package trace

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/model"
)

func sampleRun(t *testing.T) (*Record, core.Stack) {
	t.Helper()
	st := core.MustStack("min", core.WithN(3), core.WithT(1))
	pat := adversary.Silent(3, st.Horizon(), 0)
	inits := []model.Value{model.Zero, model.One, model.One}
	res, err := st.Run(pat, inits)
	if err != nil {
		t.Fatal(err)
	}
	return New(res, st.Exchange, st.Action.Name()), st
}

func TestRecordShape(t *testing.T) {
	rec, _ := sampleRun(t)
	if rec.N != 3 || rec.Horizon != 3 || rec.Exchange != "Emin" {
		t.Fatalf("unexpected record header: %+v", rec)
	}
	if len(rec.Faulty) != 1 || rec.Faulty[0] != 0 {
		t.Errorf("faulty = %v, want [0]", rec.Faulty)
	}
	if len(rec.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(rec.Rounds))
	}
	// Agent 0 decides 0 in round 1 and broadcasts; those messages are
	// dropped by the adversary.
	var foundDropped bool
	for _, m := range rec.Rounds[0].Messages {
		if m.From == 0 && m.Dropped {
			foundDropped = true
		}
		if m.From == m.To {
			t.Error("self-message in trace")
		}
	}
	if !foundDropped {
		t.Error("dropped broadcast not recorded")
	}
}

func TestRecordDecisions(t *testing.T) {
	rec, _ := sampleRun(t)
	if rec.Decisions[0] != 0 || rec.DecisionRounds[0] != 1 {
		t.Errorf("agent 0: decided %d round %d, want 0 round 1", rec.Decisions[0], rec.DecisionRounds[0])
	}
	// Agents 1,2 never hear the 0 (agent 0 silent): they decide 1 at t+2.
	for i := 1; i < 3; i++ {
		if rec.Decisions[i] != 1 || rec.DecisionRounds[i] != 3 {
			t.Errorf("agent %d: decided %d round %d, want 1 round 3",
				i, rec.Decisions[i], rec.DecisionRounds[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rec, _ := sampleRun(t)
	data, err := rec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if diff := Diff(rec, back); len(diff) != 0 {
		t.Errorf("round trip changed the record: %v", diff)
	}
	if back.Exchange != rec.Exchange || back.BitsSent != rec.BitsSent {
		t.Error("header fields lost in round trip")
	}
}

func TestFromJSONError(t *testing.T) {
	if _, err := FromJSON([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestRenderContainsKeyFacts(t *testing.T) {
	rec, _ := sampleRun(t)
	s := rec.Render()
	for _, want := range []string{"Emin", "round 1", "decide(0)", "agent 0: 0 in round 1", "traffic"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	// Dropped messages are marked.
	if !strings.Contains(s, "✗") {
		t.Error("render does not mark dropped messages")
	}
}

func TestRenderSummarizesLargePayloads(t *testing.T) {
	st := core.MustStack("fip", core.WithN(4), core.WithT(1))
	res, err := st.Run(adversary.FailureFree(4, st.Horizon()), adversary.UniformInits(4, model.One))
	if err != nil {
		t.Fatal(err)
	}
	s := New(res, st.Exchange, st.Action.Name()).Render()
	if !strings.Contains(s, "-bit payload>") {
		t.Errorf("large FIP payloads should be summarized:\n%s", s)
	}
}

func TestDiffFindsDivergence(t *testing.T) {
	// Corresponding runs of Pbasic and Pmin on the all-1 failure-free run
	// differ in decision rounds.
	n, tf := 3, 1
	pat := adversary.FailureFree(n, tf+2)
	inits := adversary.UniformInits(n, model.One)
	b := core.MustStack("basic", core.WithN(n), core.WithT(tf))
	m := core.MustStack("min", core.WithN(n), core.WithT(tf))
	rb, err := b.Run(pat, inits)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := m.Run(pat, inits)
	if err != nil {
		t.Fatal(err)
	}
	diff := Diff(New(rb, b.Exchange, b.Action.Name()), New(rm, m.Exchange, m.Action.Name()))
	if len(diff) == 0 {
		t.Fatal("expected divergence between Pbasic and Pmin on all-1 run")
	}
	found := false
	for _, d := range diff {
		if strings.Contains(d, "decision round") {
			found = true
		}
	}
	if !found {
		t.Errorf("diff does not mention decision rounds: %v", diff)
	}
}

func TestDiffAgentCountMismatch(t *testing.T) {
	a := &Record{N: 2}
	b := &Record{N: 3}
	if d := Diff(a, b); len(d) != 1 || !strings.Contains(d[0], "agent counts") {
		t.Errorf("unexpected diff %v", d)
	}
}
