// Package trace renders and serializes completed runs: a round-by-round
// human-readable view of who sent what to whom (reconstructed by replaying
// the exchange protocol's deterministic μ against the failure pattern), a
// JSON form for tooling, and a structural diff between corresponding runs
// of different protocols.
package trace

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/model"
)

// Message is one sent message in a round.
type Message struct {
	// From identifies the sender, To the recipient.
	From int `json:"from"`
	To   int `json:"to"`
	// Payload is the message's rendered form.
	Payload string `json:"payload"`
	// Bits is the wire size.
	Bits int `json:"bits"`
	// Dropped reports whether the adversary suppressed delivery.
	Dropped bool `json:"dropped,omitempty"`
}

// Round is one synchronized round of a run.
type Round struct {
	// Round is the 1-based round number.
	Round int `json:"round"`
	// Actions holds each agent's action, rendered.
	Actions []string `json:"actions"`
	// Messages lists the round's traffic (self-messages omitted).
	Messages []Message `json:"messages,omitempty"`
}

// Record is a serializable completed run.
type Record struct {
	// Exchange and Action name the protocol stack.
	Exchange string `json:"exchange"`
	Action   string `json:"action"`
	// N is the number of agents; Horizon the number of rounds.
	N       int `json:"n"`
	Horizon int `json:"horizon"`
	// Faulty lists the faulty agents.
	Faulty []int `json:"faulty"`
	// Inits holds the initial preferences as 0/1.
	Inits []int `json:"inits"`
	// Rounds is the round-by-round trace.
	Rounds []Round `json:"rounds"`
	// Decisions[i] is the value agent i decided (-1 if none);
	// DecisionRounds[i] the round it decided in (0 if none).
	Decisions      []int `json:"decisions"`
	DecisionRounds []int `json:"decisionRounds"`
	// BitsSent and MessagesSent summarize traffic.
	BitsSent     int64 `json:"bitsSent"`
	MessagesSent int   `json:"messagesSent"`
}

// New builds a Record from a completed run, replaying the exchange's μ to
// reconstruct the message traffic. The exchange must be the one the run
// was produced with (μ is deterministic, so the reconstruction is exact);
// actionName labels the record with the deciding protocol.
func New(res *engine.Result, ex model.Exchange, actionName string) *Record {
	rec := &Record{
		Exchange:       ex.Name(),
		Action:         actionName,
		N:              res.N,
		Horizon:        res.Horizon,
		Inits:          make([]int, res.N),
		Decisions:      make([]int, res.N),
		DecisionRounds: make([]int, res.N),
		BitsSent:       res.Stats.BitsSent,
		MessagesSent:   res.Stats.MessagesSent,
	}
	for _, i := range res.Pattern.FaultySet() {
		rec.Faulty = append(rec.Faulty, int(i))
	}
	for i := 0; i < res.N; i++ {
		rec.Inits[i] = int(res.Inits[i])
		rec.Decisions[i] = int(res.Decision[i])
		rec.DecisionRounds[i] = res.DecisionRound[i]
	}
	for m := 0; m < res.Horizon; m++ {
		round := Round{Round: m + 1, Actions: make([]string, res.N)}
		for i := 0; i < res.N; i++ {
			id := model.AgentID(i)
			round.Actions[i] = res.Actions[m][i].String()
			out := ex.Messages(id, res.States[m][i], res.Actions[m][i])
			for j, msg := range out {
				if msg == nil || j == i {
					continue
				}
				round.Messages = append(round.Messages, Message{
					From:    i,
					To:      j,
					Payload: msg.String(),
					Bits:    msg.Bits(),
					Dropped: !res.Pattern.Delivered(m, id, model.AgentID(j)),
				})
			}
		}
		rec.Rounds = append(rec.Rounds, round)
	}
	return rec
}

// JSON serializes the record.
func (r *Record) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FromJSON deserializes a record.
func FromJSON(data []byte) (*Record, error) {
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &rec, nil
}

// Render formats the record round by round for humans. Graph-carrying
// full-information payloads are summarized by size rather than printed.
func (r *Record) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s — n=%d, %d rounds, faulty %v\n", r.Exchange, r.Action, r.N, r.Horizon, r.Faulty)
	fmt.Fprintf(&b, "inits: %s\n", intsCompact(r.Inits))
	for _, round := range r.Rounds {
		fmt.Fprintf(&b, "round %d:\n", round.Round)
		for i, a := range round.Actions {
			if a != "noop" {
				fmt.Fprintf(&b, "  agent %d: %s\n", i, a)
			}
		}
		for _, msg := range round.Messages {
			status := "→"
			if msg.Dropped {
				status = "✗"
			}
			payload := msg.Payload
			if msg.Bits > 64 || len(payload) > 24 {
				payload = fmt.Sprintf("%s <%d-bit payload>", payload, msg.Bits)
			}
			fmt.Fprintf(&b, "  %d %s %d: %s\n", msg.From, status, msg.To, payload)
		}
	}
	b.WriteString("decisions:\n")
	for i := range r.Decisions {
		if r.DecisionRounds[i] == 0 {
			fmt.Fprintf(&b, "  agent %d: undecided\n", i)
		} else {
			fmt.Fprintf(&b, "  agent %d: %d in round %d\n", i, r.Decisions[i], r.DecisionRounds[i])
		}
	}
	fmt.Fprintf(&b, "traffic: %d messages, %d bits\n", r.MessagesSent, r.BitsSent)
	return b.String()
}

func intsCompact(xs []int) string {
	var b strings.Builder
	for _, x := range xs {
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// Diff structurally compares two records of corresponding runs (same
// inits, same adversary, possibly different protocols), reporting where
// actions or decisions diverge. Empty means identical decisions and
// action timing.
func Diff(a, b *Record) []string {
	var out []string
	if a.N != b.N {
		return []string{fmt.Sprintf("agent counts differ: %d vs %d", a.N, b.N)}
	}
	for i := 0; i < a.N; i++ {
		if a.Decisions[i] != b.Decisions[i] {
			out = append(out, fmt.Sprintf("agent %d decided %d vs %d", i, a.Decisions[i], b.Decisions[i]))
		}
		if a.DecisionRounds[i] != b.DecisionRounds[i] {
			out = append(out, fmt.Sprintf("agent %d decision round %d vs %d",
				i, a.DecisionRounds[i], b.DecisionRounds[i]))
		}
	}
	rounds := len(a.Rounds)
	if len(b.Rounds) < rounds {
		rounds = len(b.Rounds)
	}
	for m := 0; m < rounds; m++ {
		for i := 0; i < a.N; i++ {
			if a.Rounds[m].Actions[i] != b.Rounds[m].Actions[i] {
				out = append(out, fmt.Sprintf("round %d agent %d action %q vs %q",
					m+1, i, a.Rounds[m].Actions[i], b.Rounds[m].Actions[i]))
			}
		}
	}
	return out
}
