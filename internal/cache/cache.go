// Package cache is the persistent content-addressed result cache: keys
// name a (stack version digest, payload kind, scenario digest) triple and
// values are the digested payloads the sweep and checker layers already
// serialize (outcome ledgers, interned class rows). The cache makes
// re-verification incremental — a re-run after a protocol tweak executes
// only the scenarios whose inputs changed; everything else is read and
// verified, never recomputed.
//
// The on-disk layout of a cache directory is
//
//	seg-000001.seg    sealed append-only segments (see segment.go)
//	seg-000002.tmp    an unsealed segment a live writer is appending to
//	index.json        the entry index over the sealed segments
//	*.rejected        quarantined torn or corrupt files
//
// Writers append to a .tmp segment and seal it — fsync, rename — only on
// Close, so a crash leaves a temp file the next Open quarantines (the
// same discipline as the fabric coordinator's spool). Open trusts the
// index only when it exactly describes the sealed segments on disk;
// otherwise it rescans them, verifying every record digest and setting
// torn segments aside as .rejected. Reads are served from a read-only
// mmap of the sealed segments where the platform provides one and verify
// the record digest on every Get — a corrupted entry is dropped and
// reported as a miss (forcing recomputation), never served.
//
// Verification is against corruption, not against an adversary with
// write access to the directory: keys address inputs, so a consistently
// rewritten (value, digest) pair is indistinguishable from a genuine
// entry. Treat the cache directory with the trust you would give the
// build tree.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of a store's traffic counters.
type Stats struct {
	// Hits and Misses count Get probes; Puts counts stored entries.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
	// Rejects counts entries that failed digest verification on read and
	// were dropped instead of served.
	Rejects int64 `json:"rejects,omitempty"`
	// BytesServed and BytesWritten total the payload bytes of hits and
	// puts.
	BytesServed  int64 `json:"bytesServed"`
	BytesWritten int64 `json:"bytesWritten"`
}

// Add returns the fieldwise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:         s.Hits + o.Hits,
		Misses:       s.Misses + o.Misses,
		Puts:         s.Puts + o.Puts,
		Rejects:      s.Rejects + o.Rejects,
		BytesServed:  s.BytesServed + o.BytesServed,
		BytesWritten: s.BytesWritten + o.BytesWritten,
	}
}

// Store is the cache contract shared by the on-disk Cache, the HTTP
// Client, and the Tiered composition: digest-verified content-addressed
// Get/Put plus traffic counters. Implementations are safe for concurrent
// use.
type Store interface {
	// Get returns the payload stored under key, or false. A stored entry
	// that fails digest verification is reported as a miss, never served.
	Get(key string) ([]byte, bool)
	// Put stores the payload under key. Storing the identical payload
	// again is a no-op; a Put error leaves the cache usable (callers
	// treat caching as best-effort).
	Put(key string, val []byte) error
	// Stats snapshots the store's traffic counters.
	Stats() Stats
}

// counters is the atomic backing of Stats.
type counters struct {
	hits, misses, puts, rejects atomic.Int64
	bytesServed, bytesWritten   atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Puts:         c.puts.Load(),
		Rejects:      c.rejects.Load(),
		BytesServed:  c.bytesServed.Load(),
		BytesWritten: c.bytesWritten.Load(),
	}
}

// entryLoc locates a sealed entry: segment (index into Cache.segs),
// value offset, length, and the stored digest.
type entryLoc struct {
	seg  int
	off  int64
	vlen int
	sum  [sha256.Size]byte
}

// memEntry is an entry in the open (unsealed) segment, served from
// memory until Close seals it.
type memEntry struct {
	val []byte
	sum [sha256.Size]byte
}

// segFile is one sealed segment opened for reading.
type segFile struct {
	name string // file name within the cache directory
	seq  int
	size int64
	f    *os.File // nil when the segment is mmapped
	data []byte   // read-only mapping, nil on platforms without one
}

// Cache is the on-disk store. Open one per directory; Get and Put are
// safe for concurrent use; Close seals the write segment and rewrites
// the index. Multiple processes may share a directory sequentially (the
// CI warm-run pattern); concurrent writers from different processes are
// safe but may leave the index stale, costing the next Open a rescan.
type Cache struct {
	dir string

	mu      sync.RWMutex
	closed  bool
	entries map[string]entryLoc
	segs    []*segFile
	mem     map[string]memEntry
	w       *segWriter
	nextSeq int

	stats counters
}

var _ Store = (*Cache)(nil)

const indexName = "index.json"

// indexFile is the JSON index over the sealed segments: which segments
// (by name and exact size) the entries live in. An index that does not
// exactly describe the directory is discarded and rebuilt by rescan.
type indexFile struct {
	Version  int        `json:"v"`
	Segments []indexSeg `json:"segments"`
	Entries  []indexEnt `json:"entries"`
}

type indexSeg struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

type indexEnt struct {
	Key string `json:"key"`
	Seg int    `json:"seg"`
	Off int64  `json:"off"`
	Len int    `json:"len"`
	Sum string `json:"sum"`
}

// Open opens (creating if needed) the cache directory: quarantines
// leftover temp files, loads the index when it exactly matches the
// sealed segments on disk, and otherwise rescans them with full record
// verification, setting torn segments aside as .rejected.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: creating %s: %w", dir, err)
	}
	listing, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cache: reading %s: %w", dir, err)
	}
	c := &Cache{
		dir:     dir,
		entries: make(map[string]entryLoc),
		mem:     make(map[string]memEntry),
		nextSeq: 1,
	}
	var segNames []string
	for _, ent := range listing {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A writer died mid-segment. The segment was never sealed, so
			// nothing in it was ever promised; set it aside like the
			// coordinator's torn stripes.
			if err := os.Rename(filepath.Join(dir, name), filepath.Join(dir, name+".rejected")); err != nil {
				return nil, fmt.Errorf("cache: quarantining %s: %w", name, err)
			}
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg"):
			segNames = append(segNames, name)
			if seq := segSeq(name); seq >= c.nextSeq {
				c.nextSeq = seq + 1
			}
		}
	}
	sort.Strings(segNames)
	if !c.loadIndex(segNames) {
		if err := c.rescan(segNames); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// segSeq parses the sequence number out of "seg-%06d.seg" (0 when the
// name does not parse — such a segment still loads, it just never
// collides with generated names).
func segSeq(name string) int {
	var seq int
	if _, err := fmt.Sscanf(name, "seg-%d.seg", &seq); err != nil {
		return 0
	}
	return seq
}

// loadIndex loads index.json when it exactly describes the sealed
// segments on disk (same names in the same order, same sizes). Entries
// are trusted structurally only — every Get re-verifies its record
// digest — so a stale or corrupt index costs a rescan, never a wrong
// payload.
func (c *Cache) loadIndex(segNames []string) bool {
	data, err := os.ReadFile(filepath.Join(c.dir, indexName))
	if err != nil {
		return false
	}
	var idx indexFile
	if err := json.Unmarshal(data, &idx); err != nil || idx.Version != 1 {
		return false
	}
	if len(idx.Segments) != len(segNames) {
		return false
	}
	for i, s := range idx.Segments {
		if s.Name != segNames[i] {
			return false
		}
		fi, err := os.Stat(filepath.Join(c.dir, s.Name))
		if err != nil || fi.Size() != s.Size {
			return false
		}
	}
	segs := make([]*segFile, len(idx.Segments))
	for i, s := range idx.Segments {
		sf, err := openSeg(c.dir, s.Name, s.Size)
		if err != nil {
			closeSegs(segs[:i])
			return false
		}
		segs[i] = sf
	}
	entries := make(map[string]entryLoc, len(idx.Entries))
	for _, e := range idx.Entries {
		sum, err := hex.DecodeString(e.Sum)
		if err != nil || len(sum) != sha256.Size || e.Seg < 0 || e.Seg >= len(segs) ||
			e.Off < 0 || e.Len < 0 || e.Off+int64(e.Len) > segs[e.Seg].size {
			closeSegs(segs)
			return false
		}
		loc := entryLoc{seg: e.Seg, off: e.Off, vlen: e.Len}
		copy(loc.sum[:], sum)
		entries[e.Key] = loc
	}
	c.segs = segs
	c.entries = entries
	return true
}

// rescan rebuilds the entry map from the sealed segments themselves,
// verifying every record digest; a segment that fails anywhere is
// quarantined whole and its entries dropped (they will be recomputed).
// Later segments override earlier ones, preserving append order.
func (c *Cache) rescan(segNames []string) error {
	for _, name := range segNames {
		path := filepath.Join(c.dir, name)
		fi, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("cache: reading %s: %w", name, err)
		}
		sf, err := openSeg(c.dir, name, fi.Size())
		if err != nil {
			return fmt.Errorf("cache: opening %s: %w", name, err)
		}
		recs, serr := sf.scan()
		if serr != nil {
			sf.close()
			if err := os.Rename(path, path+".rejected"); err != nil {
				return fmt.Errorf("cache: quarantining %s: %w", name, err)
			}
			continue
		}
		segIdx := len(c.segs)
		c.segs = append(c.segs, sf)
		for _, r := range recs {
			c.entries[r.key] = entryLoc{seg: segIdx, off: r.off, vlen: r.vlen, sum: r.sum}
		}
	}
	// Persist the rebuilt index so the next Open skips the rescan; a
	// failed write only costs that next Open another scan.
	c.writeIndexLocked(nil)
	return nil
}

// openSeg opens one sealed segment for reading, preferring a read-only
// mmap; without one the file handle stays open for ReadAt.
func openSeg(dir, name string, size int64) (*segFile, error) {
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	sf := &segFile{name: name, seq: segSeq(name), size: size}
	if data, _ := mapFile(f, size); data != nil {
		sf.data = data
		f.Close()
	} else {
		sf.f = f
	}
	return sf, nil
}

// image returns the segment's full byte image (the mapping, or a read of
// the whole file).
func (s *segFile) image() ([]byte, error) {
	if s.data != nil {
		return s.data, nil
	}
	buf := make([]byte, s.size)
	if _, err := s.f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

func (s *segFile) scan() ([]segRecord, error) {
	img, err := s.image()
	if err != nil {
		return nil, err
	}
	return scanSegment(img)
}

func (s *segFile) close() {
	unmapFile(s.data)
	s.data = nil
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

func closeSegs(segs []*segFile) {
	for _, s := range segs {
		if s != nil {
			s.close()
		}
	}
}

// Get returns the payload stored under key. Sealed entries are verified
// against their stored digest on every read; a failing entry is dropped
// and reported as a miss — the caller recomputes, the poisoned bytes are
// never served.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	if e, ok := c.mem[key]; ok {
		val := append([]byte(nil), e.val...)
		c.mu.RUnlock()
		c.stats.hits.Add(1)
		c.stats.bytesServed.Add(int64(len(val)))
		return val, true
	}
	loc, ok := c.entries[key]
	var val []byte
	var err error
	if ok {
		val, err = c.readLocked(loc, key)
	}
	c.mu.RUnlock()
	if !ok {
		c.stats.misses.Add(1)
		return nil, false
	}
	if err != nil {
		// Verification failed: drop the entry (if it has not been
		// replaced meanwhile) and miss.
		c.stats.rejects.Add(1)
		c.mu.Lock()
		if cur, still := c.entries[key]; still && cur == loc {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		c.stats.misses.Add(1)
		return nil, false
	}
	c.stats.hits.Add(1)
	c.stats.bytesServed.Add(int64(len(val)))
	return val, true
}

// readLocked reads and digest-verifies one sealed entry (read lock held).
func (c *Cache) readLocked(loc entryLoc, key string) ([]byte, error) {
	seg := c.segs[loc.seg]
	val := make([]byte, loc.vlen)
	if seg.data != nil {
		if loc.off+int64(loc.vlen) > int64(len(seg.data)) {
			return nil, errors.New("cache: entry outside its segment")
		}
		copy(val, seg.data[loc.off:])
	} else if _, err := seg.f.ReadAt(val, loc.off); err != nil {
		return nil, err
	}
	if recordSum(key, val) != loc.sum {
		return nil, errors.New("cache: entry fails digest verification")
	}
	return val, nil
}

// Put stores the payload under key, appending to the open write segment
// (created on first Put, sealed on Close). Re-storing a payload the
// cache already holds with an identical digest is a no-op.
func (c *Cache) Put(key string, val []byte) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("cache: key of %d bytes (limit %d)", len(key), maxKeyLen)
	}
	if len(val) > maxValLen {
		return fmt.Errorf("cache: value of %d bytes (limit %d)", len(val), maxValLen)
	}
	sum := recordSum(key, val)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("cache: closed")
	}
	if e, ok := c.mem[key]; ok && e.sum == sum {
		return nil
	}
	if loc, ok := c.entries[key]; ok && loc.sum == sum {
		return nil
	}
	if c.w == nil {
		w, err := newSegWriter(c.dir, &c.nextSeq)
		if err != nil {
			return err
		}
		c.w = w
	}
	if err := c.w.append(key, val, sum); err != nil {
		return err
	}
	c.mem[key] = memEntry{val: append([]byte(nil), val...), sum: sum}
	c.stats.puts.Add(1)
	c.stats.bytesWritten.Add(int64(len(val)))
	return nil
}

// Stats snapshots the cache's traffic counters.
func (c *Cache) Stats() Stats { return c.stats.snapshot() }

// Len returns the number of distinct keys currently readable.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := len(c.entries)
	for key := range c.mem {
		if _, sealed := c.entries[key]; !sealed {
			n++
		}
	}
	return n
}

// Close seals the open write segment (flush, fsync, rename) and rewrites
// the index atomically. The cache is unusable afterwards.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var firstErr error
	if c.w != nil {
		sealed, err := c.w.seal()
		if err != nil {
			firstErr = err
		} else if sealed != nil {
			segIdx := len(c.segs)
			c.segs = append(c.segs, sealed)
			for _, r := range c.w.recs {
				c.entries[r.key] = entryLoc{seg: segIdx, off: r.off, vlen: r.vlen, sum: r.sum}
			}
		}
		c.w = nil
	}
	if err := c.writeIndexLocked(nil); err != nil && firstErr == nil {
		firstErr = err
	}
	closeSegs(c.segs)
	c.segs = nil
	c.entries = nil
	c.mem = nil
	return firstErr
}

// writeIndexLocked rewrites index.json atomically from the current
// sealed state (write lock held). keep, when non-nil, restricts the
// written entries (the GC path).
func (c *Cache) writeIndexLocked(keep map[string]bool) error {
	idx := indexFile{Version: 1}
	for _, s := range c.segs {
		idx.Segments = append(idx.Segments, indexSeg{Name: s.name, Size: s.size})
	}
	for key, loc := range c.entries {
		if keep != nil && !keep[key] {
			continue
		}
		idx.Entries = append(idx.Entries, indexEnt{
			Key: key, Seg: loc.seg, Off: loc.off, Len: loc.vlen, Sum: hex.EncodeToString(loc.sum[:]),
		})
	}
	// Deterministic order: by location in the log (segment, then offset).
	sort.Slice(idx.Entries, func(a, b int) bool {
		if idx.Entries[a].Seg != idx.Entries[b].Seg {
			return idx.Entries[a].Seg < idx.Entries[b].Seg
		}
		return idx.Entries[a].Off < idx.Entries[b].Off
	})
	data, err := json.Marshal(&idx)
	if err != nil {
		return fmt.Errorf("cache: encoding index: %w", err)
	}
	tmp := filepath.Join(c.dir, indexName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("cache: writing index: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, indexName)); err != nil {
		return fmt.Errorf("cache: publishing index: %w", err)
	}
	return nil
}

// segWriter appends records to an unsealed .tmp segment.
type segWriter struct {
	f    *os.File
	tmp  string // the .tmp path
	name string // the sealed file name
	dir  string
	size int64
	recs []segRecord
	buf  []byte
}

// newSegWriter claims the next free segment sequence number with an
// O_EXCL create, so concurrent writers sharing a directory take distinct
// segments.
func newSegWriter(dir string, nextSeq *int) (*segWriter, error) {
	for tries := 0; tries < 10000; tries++ {
		seq := *nextSeq
		*nextSeq = seq + 1
		name := fmt.Sprintf("seg-%06d.seg", seq)
		tmp := filepath.Join(dir, fmt.Sprintf("seg-%06d.tmp", seq))
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if errors.Is(err, os.ErrExist) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("cache: creating segment: %w", err)
		}
		w := &segWriter{f: f, tmp: tmp, name: name, dir: dir}
		if err := w.write([]byte(segMagic)); err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, err
		}
		return w, nil
	}
	return nil, errors.New("cache: no free segment sequence number")
}

func (w *segWriter) write(b []byte) error {
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("cache: appending to segment: %w", err)
	}
	w.size += int64(len(b))
	return nil
}

func (w *segWriter) append(key string, val []byte, sum [sha256.Size]byte) error {
	w.buf = appendRecord(w.buf[:0], key, val, sum)
	voff := w.size + recHeadLen + int64(len(key))
	if err := w.write(w.buf); err != nil {
		return err
	}
	w.recs = append(w.recs, segRecord{key: key, off: voff, vlen: len(val), sum: sum})
	return nil
}

// seal fsyncs and renames the segment into place and reopens it for
// reading; an empty segment is removed and seal returns (nil, nil).
func (w *segWriter) seal() (*segFile, error) {
	if len(w.recs) == 0 {
		w.f.Close()
		os.Remove(w.tmp)
		return nil, nil
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return nil, fmt.Errorf("cache: syncing segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return nil, fmt.Errorf("cache: closing segment: %w", err)
	}
	final := filepath.Join(w.dir, w.name)
	if err := os.Rename(w.tmp, final); err != nil {
		return nil, fmt.Errorf("cache: sealing segment: %w", err)
	}
	return openSeg(w.dir, w.name, w.size)
}

// GCResult reports a completed GC pass.
type GCResult struct {
	// SegmentsBefore/After and BytesBefore/After measure the sealed
	// segment files.
	SegmentsBefore, SegmentsAfter int
	BytesBefore, BytesAfter       int64
	// Kept and Dropped count live entries written into the compacted
	// segment and entries evicted (over budget or failing verification).
	Kept, Dropped int
}

// GC compacts the cache: live entries (the latest record per key) are
// rewritten into one fresh segment, dead records, superseded segments,
// and quarantined .rejected files are deleted, and the index is
// rewritten. When maxBytes > 0, the oldest live entries are evicted
// until the projected payload fits the budget; entries failing digest
// verification are dropped. Call it on an otherwise idle cache — it is a
// maintenance verb (ebashard -cache-gc), not a concurrent fast path.
func (c *Cache) GC(maxBytes int64) (GCResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return GCResult{}, errors.New("cache: closed")
	}
	if c.w != nil || len(c.mem) > 0 {
		return GCResult{}, errors.New("cache: GC with an open write segment; close and reopen first")
	}
	var res GCResult
	res.SegmentsBefore = len(c.segs)
	for _, s := range c.segs {
		res.BytesBefore += s.size
	}

	// Live entries, oldest first (log order), so the budget evicts from
	// the front.
	type liveEnt struct {
		key string
		loc entryLoc
	}
	live := make([]liveEnt, 0, len(c.entries))
	for key, loc := range c.entries {
		live = append(live, liveEnt{key, loc})
	}
	sort.Slice(live, func(a, b int) bool {
		if live[a].loc.seg != live[b].loc.seg {
			return live[a].loc.seg < live[b].loc.seg
		}
		return live[a].loc.off < live[b].loc.off
	})
	if maxBytes > 0 {
		projected := int64(len(segMagic))
		sizes := make([]int64, len(live))
		for i, e := range live {
			sizes[i] = recHeadLen + int64(len(e.key)) + int64(e.loc.vlen) + sumLen
			projected += sizes[i]
		}
		drop := 0
		for drop < len(live) && projected > maxBytes {
			projected -= sizes[drop]
			drop++
		}
		res.Dropped += drop
		live = live[drop:]
	}

	// Read the survivors (verifying each) before touching any file.
	vals := make([][]byte, 0, len(live))
	kept := live[:0]
	for _, e := range live {
		val, err := c.readLocked(e.loc, e.key)
		if err != nil {
			c.stats.rejects.Add(1)
			res.Dropped++
			continue
		}
		vals = append(vals, val)
		kept = append(kept, e)
	}

	// Write the compacted segment, seal it, then drop the old files.
	var newSeg *segFile
	var newRecs []segRecord
	if len(kept) > 0 {
		w, err := newSegWriter(c.dir, &c.nextSeq)
		if err != nil {
			return GCResult{}, err
		}
		for i, e := range kept {
			if err := w.append(e.key, vals[i], e.loc.sum); err != nil {
				w.f.Close()
				os.Remove(w.tmp)
				return GCResult{}, err
			}
		}
		newSeg, err = w.seal()
		if err != nil {
			return GCResult{}, err
		}
		newRecs = w.recs
	}
	old := c.segs
	c.segs = nil
	c.entries = make(map[string]entryLoc, len(kept))
	if newSeg != nil {
		c.segs = []*segFile{newSeg}
		for _, r := range newRecs {
			c.entries[r.key] = entryLoc{seg: 0, off: r.off, vlen: r.vlen, sum: r.sum}
		}
		res.SegmentsAfter = 1
		res.BytesAfter = newSeg.size
	}
	res.Kept = len(kept)
	for _, s := range old {
		s.close()
		os.Remove(filepath.Join(c.dir, s.name))
	}
	listing, err := os.ReadDir(c.dir)
	if err == nil {
		for _, ent := range listing {
			if strings.HasSuffix(ent.Name(), ".rejected") {
				os.Remove(filepath.Join(c.dir, ent.Name()))
			}
		}
	}
	if err := c.writeIndexLocked(nil); err != nil {
		return res, err
	}
	return res, nil
}
