//go:build !unix

package cache

import "os"

// mapFile on platforms without a read-only mmap: always decline, reads
// fall back to ReadAt on the open handle.
func mapFile(f *os.File, size int64) ([]byte, error) { return nil, nil }

func unmapFile(data []byte) {}
