// The shared cache over HTTP: a Server exposing any Store at
// GET/PUT /v1/entry/<version>/<kind>/<scenario>, a Client implementing
// Store against such a server, and a Tiered composition layering a local
// cache in front of a shared one. Payloads are digest-verified on both
// ends of both verbs — the digest header binds the payload to its full
// key, so neither a torn transfer nor a misrouted entry is ever trusted.

package cache

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// DigestHeader carries the lowercase hex SHA-256 over key bytes followed
// by payload bytes — the same digest the segment format stores per
// record.
const DigestHeader = "X-Eba-Digest"

const entryPrefix = "/v1/entry/"

// Key assembles the canonical cache key of a payload: the stack version
// digest, the payload kind ("run" for sweep outcomes, "sys" for interned
// checker rows), and the scenario digest, slash-joined. The components
// are validated by the HTTP layer, so a key built here routes cleanly.
func Key(versionDigest, kind, scenarioDigest string) string {
	return versionDigest + "/" + kind + "/" + scenarioDigest
}

// keyFromPath parses and validates an entry path into its key.
func keyFromPath(p string) (string, bool) {
	rest, ok := strings.CutPrefix(p, entryPrefix)
	if !ok {
		return "", false
	}
	parts := strings.Split(rest, "/")
	if len(parts) != 3 || !isHexToken(parts[0]) || !isKindToken(parts[1]) || !isHexToken(parts[2]) {
		return "", false
	}
	return parts[0] + "/" + parts[1] + "/" + parts[2], true
}

func isHexToken(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func isKindToken(s string) bool {
	if len(s) == 0 || len(s) > 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

// Server exposes a Store over HTTP. Mount it on a mux (optionally behind
// http.StripPrefix); it answers GET and PUT under /v1/entry/.
type Server struct {
	store Store
}

// NewServer returns a Server over the store.
func NewServer(store Store) *Server { return &Server{store: store} }

// Store returns the served store (the coordinator reports its stats).
func (s *Server) Store() Store { return s.store }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key, ok := keyFromPath(r.URL.Path)
	if !ok {
		http.Error(w, "no such cache path", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		val, ok := s.store.Get(key)
		if !ok {
			http.Error(w, "cache miss", http.StatusNotFound)
			return
		}
		sum := recordSum(key, val)
		w.Header().Set(DigestHeader, hex.EncodeToString(sum[:]))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(val)
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxValLen))
		if err != nil {
			http.Error(w, fmt.Sprintf("reading payload: %v", err), http.StatusBadRequest)
			return
		}
		// The digest is mandatory and verified before the store sees the
		// payload: a torn upload or a client disagreeing about the key
		// never lands in the cache.
		want := r.Header.Get(DigestHeader)
		if want == "" {
			http.Error(w, DigestHeader+" header required", http.StatusBadRequest)
			return
		}
		sum := recordSum(key, body)
		if !strings.EqualFold(want, hex.EncodeToString(sum[:])) {
			http.Error(w, "payload digest mismatch", http.StatusBadRequest)
			return
		}
		if err := s.store.Put(key, body); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET or PUT only", http.StatusMethodNotAllowed)
	}
}

// Client implements Store against a cache Server. Transport failures and
// verification failures degrade to misses on Get (the caller recomputes)
// and to errors on Put (the caller treats caching as best-effort).
type Client struct {
	base  string
	hc    *http.Client
	stats counters
}

var _ Store = (*Client)(nil)

// NewClient returns a Client for the server at baseURL (the prefix the
// Server is mounted under, e.g. "http://coord:8123/cache").
func NewClient(baseURL string) *Client {
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
}

func (c *Client) url(key string) string { return c.base + entryPrefix + key }

// Get fetches and digest-verifies one entry; any failure is a miss.
func (c *Client) Get(key string) ([]byte, bool) {
	resp, err := c.hc.Get(c.url(key))
	if err != nil {
		c.stats.misses.Add(1)
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		c.stats.misses.Add(1)
		return nil, false
	}
	val, err := io.ReadAll(io.LimitReader(resp.Body, maxValLen+1))
	if err != nil || len(val) > maxValLen {
		c.stats.rejects.Add(1)
		c.stats.misses.Add(1)
		return nil, false
	}
	sum := recordSum(key, val)
	if !strings.EqualFold(resp.Header.Get(DigestHeader), hex.EncodeToString(sum[:])) {
		c.stats.rejects.Add(1)
		c.stats.misses.Add(1)
		return nil, false
	}
	c.stats.hits.Add(1)
	c.stats.bytesServed.Add(int64(len(val)))
	return val, true
}

// Put uploads one entry with its digest.
func (c *Client) Put(key string, val []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.url(key), bytes.NewReader(val))
	if err != nil {
		return fmt.Errorf("cache: building upload: %w", err)
	}
	sum := recordSum(key, val)
	req.Header.Set(DigestHeader, hex.EncodeToString(sum[:]))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cache: uploading %s: %w", key, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cache: uploading %s: server says %s: %s", key, resp.Status, strings.TrimSpace(string(msg)))
	}
	c.stats.puts.Add(1)
	c.stats.bytesWritten.Add(int64(len(val)))
	return nil
}

// Stats snapshots the client's traffic counters.
func (c *Client) Stats() Stats { return c.stats.snapshot() }

// Tiered layers a local store in front of a shared one: Get probes the
// local tier first and back-fills it on a shared hit; Put writes through
// to both. Its Stats count the composition's own traffic (one Get is one
// hit or one miss, whichever tier served it).
type Tiered struct {
	local, remote Store
	stats         counters
}

var _ Store = (*Tiered)(nil)

// NewTiered composes a local and a shared store.
func NewTiered(local, remote Store) *Tiered {
	return &Tiered{local: local, remote: remote}
}

// Get probes local then shared, back-filling the local tier on a shared
// hit.
func (t *Tiered) Get(key string) ([]byte, bool) {
	if val, ok := t.local.Get(key); ok {
		t.stats.hits.Add(1)
		t.stats.bytesServed.Add(int64(len(val)))
		return val, true
	}
	if val, ok := t.remote.Get(key); ok {
		// Back-fill is best-effort: a full local disk must not turn a
		// shared hit into a failure.
		t.local.Put(key, val)
		t.stats.hits.Add(1)
		t.stats.bytesServed.Add(int64(len(val)))
		return val, true
	}
	t.stats.misses.Add(1)
	return nil, false
}

// Put writes through to both tiers; the first error is returned after
// both were attempted.
func (t *Tiered) Put(key string, val []byte) error {
	err1 := t.local.Put(key, val)
	err2 := t.remote.Put(key, val)
	t.stats.puts.Add(1)
	t.stats.bytesWritten.Add(int64(len(val)))
	if err1 != nil {
		return err1
	}
	return err2
}

// Stats snapshots the composition's traffic counters.
func (t *Tiered) Stats() Stats { return t.stats.snapshot() }
