package cache

import (
	"bytes"
	"testing"
)

// FuzzCacheSegment feeds arbitrary bytes to the segment reader: it must
// never panic, and any image it accepts must round-trip — re-encoding
// the scanned records reproduces an image that scans to identical
// records (keys, values, digests). The corpus seeds cover a sealed
// segment, a truncated tail, a flipped value byte, and oversized length
// declarations.
func FuzzCacheSegment(f *testing.F) {
	var good []byte
	good = append(good, segMagic...)
	good = appendRecord(good, "aa/run/bb", []byte("payload"), recordSum("aa/run/bb", []byte("payload")))
	good = appendRecord(good, "aa/sys/cc", []byte(""), recordSum("aa/sys/cc", []byte("")))
	f.Add(good)
	f.Add(good[:len(good)-3])             // truncated tail
	f.Add([]byte(segMagic))               // sealed but empty
	f.Add([]byte("not a segment at all")) // bad magic
	tampered := bytes.Clone(good)
	tampered[len(segMagic)+recHeadLen+12] ^= 0x01 // flip a payload byte
	f.Add(tampered)
	huge := append([]byte(segMagic), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	f.Add(huge) // impossible declared lengths

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := scanSegment(data)
		if err != nil {
			return
		}
		// Accepted: the records must re-encode to an image that scans to
		// the same structure.
		reenc := []byte(segMagic)
		for _, r := range recs {
			val := data[r.off : r.off+int64(r.vlen)]
			if recordSum(r.key, val) != r.sum {
				t.Fatalf("accepted record %q fails its own digest", r.key)
			}
			reenc = appendRecord(reenc, r.key, val, r.sum)
		}
		recs2, err := scanSegment(reenc)
		if err != nil {
			t.Fatalf("re-encoded segment rejected: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i].key != recs2[i].key || recs[i].vlen != recs2[i].vlen || recs[i].sum != recs2[i].sum {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, recs[i], recs2[i])
			}
		}
	})
}
