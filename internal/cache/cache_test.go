package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string) *Cache {
	t.Helper()
	c, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return c
}

func closeT(t *testing.T, c *Cache) {
	t.Helper()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return Key(hex.EncodeToString(sum[:8]), "run", hex.EncodeToString(sum[8:16]))
}

func TestCachePutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir)
	for i := 0; i < 50; i++ {
		if err := c.Put(testKey(i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Unsealed entries are readable immediately.
	if val, ok := c.Get(testKey(7)); !ok || string(val) != "payload-7" {
		t.Fatalf("Get before seal: %q, %v", val, ok)
	}
	closeT(t, c)

	c = openT(t, dir)
	defer closeT(t, c)
	if c.Len() != 50 {
		t.Fatalf("reopened cache holds %d entries, want 50", c.Len())
	}
	for i := 0; i < 50; i++ {
		val, ok := c.Get(testKey(i))
		if !ok || string(val) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("Get(%d) after reopen: %q, %v", i, val, ok)
		}
	}
	if _, ok := c.Get(testKey(99)); ok {
		t.Fatal("Get of an absent key hit")
	}
	st := c.Stats()
	if st.Hits != 50 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 50 hits / 1 miss", st)
	}
}

func TestCacheLatestPutWins(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)
	c := openT(t, dir)
	if err := c.Put(key, []byte("old")); err != nil {
		t.Fatal(err)
	}
	closeT(t, c)
	c = openT(t, dir)
	if err := c.Put(key, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if val, _ := c.Get(key); string(val) != "new" {
		t.Fatalf("Get before seal: %q, want new", val)
	}
	closeT(t, c)
	c = openT(t, dir)
	defer closeT(t, c)
	if val, ok := c.Get(key); !ok || string(val) != "new" {
		t.Fatalf("Get after reopen: %q %v, want the later segment's value", val, ok)
	}
}

func TestCacheIdenticalPutIsNoop(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)
	c := openT(t, dir)
	if err := c.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	closeT(t, c)
	c = openT(t, dir)
	if err := c.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Puts; got != 0 {
		t.Fatalf("re-storing an identical payload counted %d puts, want 0", got)
	}
	closeT(t, c)
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("identical re-put grew the log to %d segments, want 1", len(segs))
	}
}

// A corrupted value must be rejected and reported as a miss — never
// served — and the entry dropped so the caller's recomputation can
// replace it.
func TestCacheCorruptEntryRejected(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)
	c := openT(t, dir)
	if err := c.Put(key, []byte("precious-bytes")); err != nil {
		t.Fatal(err)
	}
	closeT(t, c)

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the value ("precious" -> "preciovs").
	idx := bytes.Index(data, []byte("precious-bytes"))
	if idx < 0 {
		t.Fatal("value not found in segment")
	}
	data[idx+6] ^= 0x04
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The index still matches (same size), so the poisoned record is only
	// caught by per-read verification.
	c = openT(t, dir)
	defer closeT(t, c)
	if val, ok := c.Get(key); ok {
		t.Fatalf("poisoned entry served: %q", val)
	}
	st := c.Stats()
	if st.Rejects != 1 {
		t.Fatalf("stats %+v, want 1 reject", st)
	}
	// The entry is gone; a fresh Put replaces it.
	if err := c.Put(key, []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	if val, ok := c.Get(key); !ok || string(val) != "recomputed" {
		t.Fatalf("recomputed entry: %q %v", val, ok)
	}
}

// A torn segment (no index, truncated tail) is quarantined whole on
// open, like the coordinator's .rejected stripes.
func TestCacheTornSegmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir)
	if err := c.Put(testKey(1), []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	closeT(t, c)
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, indexName)) // force the verifying rescan

	c = openT(t, dir)
	defer closeT(t, c)
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("entry of a torn segment served")
	}
	rejected, _ := filepath.Glob(filepath.Join(dir, "*.rejected"))
	if len(rejected) != 1 {
		t.Fatalf("%d quarantined files, want 1", len(rejected))
	}
}

// A writer that dies before sealing leaves a .tmp file; the next open
// quarantines it and serves none of its records.
func TestCacheUnsealedTmpQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir)
	if err := c.Put(testKey(1), []byte("never-sealed")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: no Close.
	tmps, _ := filepath.Glob(filepath.Join(dir, "seg-*.tmp"))
	if len(tmps) != 1 {
		t.Fatalf("%d tmp segments while writing, want 1", len(tmps))
	}

	c2 := openT(t, dir)
	defer closeT(t, c2)
	if _, ok := c2.Get(testKey(1)); ok {
		t.Fatal("record of an unsealed segment served")
	}
	rejected, _ := filepath.Glob(filepath.Join(dir, "*.rejected"))
	if len(rejected) != 1 {
		t.Fatalf("%d quarantined files, want 1", len(rejected))
	}
}

func TestCacheStaleIndexRescans(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir)
	if err := c.Put(testKey(1), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	closeT(t, c)
	// Corrupt the index; the segments themselves are intact.
	if err := os.WriteFile(filepath.Join(dir, indexName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c = openT(t, dir)
	defer closeT(t, c)
	if val, ok := c.Get(testKey(1)); !ok || string(val) != "v1" {
		t.Fatalf("rescan lost the entry: %q %v", val, ok)
	}
}

func TestCacheGC(t *testing.T) {
	dir := t.TempDir()
	// Three generations of segments, with key 1 superseded twice.
	for gen := 0; gen < 3; gen++ {
		c := openT(t, dir)
		if err := c.Put(testKey(1), []byte(fmt.Sprintf("gen-%d", gen))); err != nil {
			t.Fatal(err)
		}
		if err := c.Put(testKey(10+gen), []byte(strings.Repeat("x", 100))); err != nil {
			t.Fatal(err)
		}
		closeT(t, c)
	}
	c := openT(t, dir)
	res, err := c.GC(0)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if res.SegmentsBefore != 3 || res.SegmentsAfter != 1 {
		t.Fatalf("GC %+v, want 3 segments compacted to 1", res)
	}
	if res.Kept != 4 {
		t.Fatalf("GC kept %d entries, want 4 live keys", res.Kept)
	}
	if val, ok := c.Get(testKey(1)); !ok || string(val) != "gen-2" {
		t.Fatalf("after GC, key 1 = %q %v, want the latest generation", val, ok)
	}
	closeT(t, c)

	// A tight budget evicts the oldest entries but keeps the newest.
	c = openT(t, dir)
	res, err = c.GC(200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 || res.Kept == 0 {
		t.Fatalf("budgeted GC %+v, want some entries evicted and some kept", res)
	}
	if res.BytesAfter > 200 {
		t.Fatalf("budgeted GC left %d bytes, budget 200", res.BytesAfter)
	}
	closeT(t, c)
}

func TestCacheConcurrentPutGet(t *testing.T) {
	c := openT(t, t.TempDir())
	defer closeT(t, c)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := testKey(i % 37)
				want := fmt.Sprintf("payload-%d", i%37)
				if i%2 == 0 {
					if err := c.Put(key, []byte(want)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else if val, ok := c.Get(key); ok && string(val) != want {
					t.Errorf("Get(%s) = %q, want %q", key, val, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// --- the HTTP tiers -------------------------------------------------------

func TestServerClientRoundTrip(t *testing.T) {
	backing := openT(t, t.TempDir())
	defer closeT(t, backing)
	srv := httptest.NewServer(NewServer(backing))
	defer srv.Close()
	cl := NewClient(srv.URL)

	key := testKey(3)
	if _, ok := cl.Get(key); ok {
		t.Fatal("empty server hit")
	}
	if err := cl.Put(key, []byte("shared")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	val, ok := cl.Get(key)
	if !ok || string(val) != "shared" {
		t.Fatalf("Get: %q %v", val, ok)
	}
	st := cl.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("client stats %+v", st)
	}
	if bst := backing.Stats(); bst.Puts != 1 || bst.Hits != 1 {
		t.Fatalf("backing stats %+v", bst)
	}
}

func TestServerRejectsBadDigestAndPath(t *testing.T) {
	backing := openT(t, t.TempDir())
	defer closeT(t, backing)
	srv := httptest.NewServer(NewServer(backing))
	defer srv.Close()

	key := testKey(3)
	// PUT without a digest.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+entryPrefix+key, strings.NewReader("v"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("digest-less PUT: %s", resp.Status)
	}
	// PUT with a wrong digest.
	req, _ = http.NewRequest(http.MethodPut, srv.URL+entryPrefix+key, strings.NewReader("v"))
	req.Header.Set(DigestHeader, strings.Repeat("00", 32))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-digest PUT: %s", resp.Status)
	}
	if backing.Len() != 0 {
		t.Fatal("rejected PUT landed in the store")
	}
	// Malformed key paths never route.
	for _, p := range []string{"/v1/entry/xyz", "/v1/entry/UPPER/run/abcd", "/v1/entry/ab/run/cd/extra", "/other"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %s, want 404", p, resp.Status)
		}
	}
}

// A server returning tampered payloads must not be believed: the client
// verifies the digest against the full key and misses on mismatch.
func TestClientRejectsTamperedPayload(t *testing.T) {
	key := testKey(5)
	tampered := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sum := recordSum(key, []byte("genuine"))
		w.Header().Set(DigestHeader, hex.EncodeToString(sum[:]))
		w.Write([]byte("tampered"))
	})
	srv := httptest.NewServer(tampered)
	defer srv.Close()
	cl := NewClient(srv.URL)
	if val, ok := cl.Get(key); ok {
		t.Fatalf("tampered payload accepted: %q", val)
	}
	if st := cl.Stats(); st.Rejects != 1 {
		t.Fatalf("client stats %+v, want 1 reject", st)
	}
}

func TestTieredBackfillsLocal(t *testing.T) {
	local := openT(t, t.TempDir())
	defer closeT(t, local)
	shared := openT(t, t.TempDir())
	defer closeT(t, shared)
	srv := httptest.NewServer(NewServer(shared))
	defer srv.Close()
	tiered := NewTiered(local, NewClient(srv.URL))

	key := testKey(8)
	if err := shared.Put(key, []byte("from-the-fleet")); err != nil {
		t.Fatal(err)
	}
	val, ok := tiered.Get(key)
	if !ok || string(val) != "from-the-fleet" {
		t.Fatalf("tiered Get: %q %v", val, ok)
	}
	// The shared hit back-filled the local tier.
	if val, ok := local.Get(key); !ok || string(val) != "from-the-fleet" {
		t.Fatalf("local tier after backfill: %q %v", val, ok)
	}
	// Put writes through to both tiers.
	key2 := testKey(9)
	if err := tiered.Put(key2, []byte("both")); err != nil {
		t.Fatal(err)
	}
	if _, ok := shared.Get(key2); !ok {
		t.Fatal("write-through missed the shared tier")
	}
	if _, ok := local.Get(key2); !ok {
		t.Fatal("write-through missed the local tier")
	}
	if st := tiered.Stats(); st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("tiered stats %+v", st)
	}
}

func TestFingerprintNonEmpty(t *testing.T) {
	if Fingerprint() == "" {
		t.Fatal("Fingerprint returned an empty identity")
	}
}
