// The on-disk segment format: an append-only log of digested records.
//
// A segment starts with a magic line and carries length-prefixed records,
// each sealing its (key, value) pair with a SHA-256 digest over both — a
// record copied under another key, or a value flipped on disk, fails
// verification instead of being served. Segments are written to a .tmp
// file and renamed into place only when sealed, so a crashed writer
// leaves a quarantinable temp file, never a trusted torn segment.

package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
)

const (
	segMagic = "ebacache1\n"
	// recHeadLen prefixes every record: two little-endian uint32 lengths
	// (key, value).
	recHeadLen = 8
	sumLen     = sha256.Size

	// maxKeyLen and maxValLen bound what a record may declare; a header
	// outside these bounds marks a corrupt segment, not a huge record.
	maxKeyLen = 1 << 10
	maxValLen = 1 << 30
)

// segRecord is one decoded record: the key, the value's position within
// the segment image, and the stored digest.
type segRecord struct {
	key  string
	off  int64 // value offset within the segment
	vlen int
	sum  [sha256.Size]byte
}

// recordSum is the integrity digest stored with every record: SHA-256
// over key then value, binding the value to the key it was stored under.
func recordSum(key string, val []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write(val)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// appendRecord encodes one record onto buf.
func appendRecord(buf []byte, key string, val []byte, sum [sha256.Size]byte) []byte {
	var head [recHeadLen]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(head[4:8], uint32(len(val)))
	buf = append(buf, head[:]...)
	buf = append(buf, key...)
	buf = append(buf, val...)
	buf = append(buf, sum[:]...)
	return buf
}

// scanSegment parses a sealed segment image: the magic line, then
// records until the image ends exactly at a record boundary. Every
// record's digest is recomputed and verified. Any malformation — bad
// magic, an impossible length, a truncated tail, a digest mismatch — is
// an error; the caller quarantines the whole segment (verify-on-open).
func scanSegment(data []byte) ([]segRecord, error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("cache: segment lacks the %q magic", strings.TrimSpace(segMagic))
	}
	var recs []segRecord
	off := int64(len(segMagic))
	for off < int64(len(data)) {
		if int64(len(data))-off < recHeadLen {
			return nil, fmt.Errorf("cache: truncated record header at offset %d", off)
		}
		klen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		vlen := int64(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		if klen == 0 || klen > maxKeyLen || vlen > maxValLen {
			return nil, fmt.Errorf("cache: record at offset %d declares a %d-byte key and %d-byte value", off, klen, vlen)
		}
		off += recHeadLen
		if int64(len(data))-off < klen+vlen+sumLen {
			return nil, fmt.Errorf("cache: truncated record at offset %d", off)
		}
		key := string(data[off : off+klen])
		off += klen
		val := data[off : off+vlen]
		var sum [sha256.Size]byte
		copy(sum[:], data[off+vlen:off+vlen+int64(sumLen)])
		if recordSum(key, val) != sum {
			return nil, fmt.Errorf("cache: record %q at offset %d fails digest verification", key, off)
		}
		recs = append(recs, segRecord{key: key, off: off, vlen: int(vlen), sum: sum})
		off += vlen + int64(sumLen)
	}
	return recs, nil
}
