package cache

import "runtime/debug"

// Fingerprint identifies the executing code for cache-key derivation:
// the VCS revision stamped into the build (suffixed "+dirty" when the
// tree was modified), else the main module's version, else
// "unversioned". It is one input of core.Stack.VersionDigest, so two
// binaries built from different revisions never share cache entries.
//
// Builds without embedded build info (some `go test` binaries, stripped
// builds) all report "unversioned" and therefore share an identity;
// callers that need a harder boundary pass their own fingerprint.
func Fingerprint() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unversioned"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if dirty {
			return rev + "+dirty"
		}
		return rev
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "unversioned"
}
