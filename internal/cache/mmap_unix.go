//go:build unix

package cache

import (
	"os"
	"syscall"
)

// mapFile maps the file read-only. A nil mapping with a nil error means
// the platform or file declined; reads fall back to ReadAt on the open
// handle.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil
	}
	return data, nil
}

func unmapFile(data []byte) {
	if data != nil {
		syscall.Munmap(data)
	}
}
