package serve

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/episteme"
)

// buildCall is one in-flight System build, shared by every request that
// asked for the key while it ran. The leader closes done once sys/err
// are final; followers select on it against their own cancellation.
type buildCall struct {
	done chan struct{}
	sys  *episteme.System
	err  error
}

// lruEntry is one cached System.
type lruEntry struct {
	key string
	sys *episteme.System
}

// systemLRU is the hot-System cache: at most max built Systems keyed by
// (stack version digest, n, t, horizon), least-recently-queried evicted
// first, with singleflight build deduplication — N concurrent queries
// for a cold key trigger exactly one build, and the other N-1 wait for
// its result instead of building their own.
type systemLRU struct {
	mu       sync.Mutex
	max      int
	order    *list.List // front = most recently used; values *lruEntry
	entries  map[string]*list.Element
	building map[string]*buildCall
	met      *metrics
}

func newSystemLRU(max int, met *metrics) *systemLRU {
	return &systemLRU{
		max:      max,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		building: make(map[string]*buildCall),
		met:      met,
	}
}

// get returns the key's System, building it with build on a miss.
// Concurrent gets for one cold key share a single build call; a failed
// build caches nothing, so the next get retries. The build runs on the
// leader's context — if the leader disconnects mid-build, followers see
// its cancellation error and their retry becomes the new leader.
func (l *systemLRU) get(ctx context.Context, key string, build func(context.Context) (*episteme.System, error)) (*episteme.System, error) {
	l.mu.Lock()
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		l.mu.Unlock()
		l.met.lruHits.Add(1)
		return el.Value.(*lruEntry).sys, nil
	}
	if call, ok := l.building[key]; ok {
		l.mu.Unlock()
		l.met.lruCoalesced.Add(1)
		select {
		case <-call.done:
			return call.sys, call.err
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	call := &buildCall{done: make(chan struct{})}
	l.building[key] = call
	l.mu.Unlock()
	l.met.lruMisses.Add(1)

	call.sys, call.err = build(ctx)

	l.mu.Lock()
	delete(l.building, key)
	if call.err == nil {
		l.insertLocked(key, call.sys)
	}
	l.mu.Unlock()
	close(call.done)
	return call.sys, call.err
}

// insertLocked files a built System at the front and evicts past max.
func (l *systemLRU) insertLocked(key string, sys *episteme.System) {
	if el, ok := l.entries[key]; ok {
		// A concurrent leader for the same key can't exist (building map),
		// but be safe: keep the existing entry fresh.
		l.order.MoveToFront(el)
		return
	}
	l.entries[key] = l.order.PushFront(&lruEntry{key: key, sys: sys})
	for l.order.Len() > l.max {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.entries, oldest.Value.(*lruEntry).key)
		l.met.lruEvictions.Add(1)
	}
}

// len reports the number of cached Systems (tests).
func (l *systemLRU) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// has reports whether key is cached without touching recency (tests).
func (l *systemLRU) has(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.entries[key]
	return ok
}
