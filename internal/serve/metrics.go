package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	rescache "repro/internal/cache"
)

// Request kinds, the label every per-request metric carries.
const (
	kindSweep     = "sweep"
	kindCheck     = "check"
	kindKnowledge = "knowledge"
)

// kinds in render order (sorted, as Prometheus convention prefers).
var kinds = []string{kindCheck, kindKnowledge, kindSweep}

// metrics is the server's instrumentation: lock-free counters on the
// hot path, a locked histogram per latency series, rendered on demand
// in the Prometheus text exposition format by render.
type metrics struct {
	start time.Time

	requests map[string]*atomic.Int64 // served, by kind
	rejects  map[string]*atomic.Int64 // 429s, by kind
	inflight map[string]*atomic.Int64 // gauge, by kind
	latency  map[string]*histogram    // seconds, by kind
	drained  atomic.Int64             // 503s while draining

	sweepRecords   atomic.Int64 // outcome records streamed
	sweepCacheHits atomic.Int64 // sweep records restored from the result cache

	// System-LRU traffic: hits (cached System reused), misses (a build
	// ran), coalesced (waited on another request's in-flight build),
	// evictions.
	lruHits, lruMisses, lruCoalesced, lruEvictions atomic.Int64

	buildSeconds *histogram // System build latency
}

func newMetrics() *metrics {
	m := &metrics{
		start:        time.Now(),
		requests:     map[string]*atomic.Int64{},
		rejects:      map[string]*atomic.Int64{},
		inflight:     map[string]*atomic.Int64{},
		latency:      map[string]*histogram{},
		buildSeconds: newHistogram(),
	}
	for _, k := range kinds {
		m.requests[k] = new(atomic.Int64)
		m.rejects[k] = new(atomic.Int64)
		m.inflight[k] = new(atomic.Int64)
		m.latency[k] = newHistogram()
	}
	return m
}

func (m *metrics) started(kind string)  { m.requests[kind].Add(1); m.inflight[kind].Add(1) }
func (m *metrics) rejected(kind string) { m.rejects[kind].Add(1) }
func (m *metrics) finished(kind string, seconds float64) {
	m.inflight[kind].Add(-1)
	m.latency[kind].observe(seconds)
}
func (m *metrics) observeCacheHits(hits int64) { m.sweepCacheHits.Add(hits) }

// render writes the Prometheus text exposition. inflightTotal is the
// admission pool's occupancy; cache is the result cache's counters when
// the store reports them (nil otherwise).
func (m *metrics) render(w io.Writer, inflightTotal int, cache *rescache.Stats) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	byKind := func(name, help string, vals map[string]*atomic.Int64, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, k := range kinds {
			fmt.Fprintf(w, "%s{kind=%q} %d\n", name, k, vals[k].Load())
		}
	}

	uptime := time.Since(m.start).Seconds()
	gauge("eba_uptime_seconds", "Seconds since the server started.", uptime)

	byKind("eba_requests_total", "Work requests served, by kind.", m.requests, "counter")
	byKind("eba_requests_rejected_total", "Work requests refused with 429, by kind.", m.rejects, "counter")
	byKind("eba_inflight_requests", "Work requests currently being served, by kind.", m.inflight, "gauge")
	counter("eba_requests_drained_total", "Work requests refused with 503 while draining.", m.drained.Load())
	gauge("eba_inflight_total", "Admission pool occupancy across all kinds.", float64(inflightTotal))

	var total int64
	for _, k := range kinds {
		total += m.requests[k].Load()
	}
	rps := 0.0
	if uptime > 0 {
		rps = float64(total) / uptime
	}
	gauge("eba_requests_per_second", "Served requests over uptime.", rps)

	counter("eba_sweep_records_total", "Outcome records streamed by sweep requests.", m.sweepRecords.Load())
	counter("eba_sweep_result_cache_hits_total", "Sweep records restored from the result cache.", m.sweepCacheHits.Load())

	hits, misses := m.lruHits.Load(), m.lruMisses.Load()
	counter("eba_system_lru_hits_total", "Queries answered by a cached System.", hits)
	counter("eba_system_lru_misses_total", "Queries that triggered a System build.", misses)
	counter("eba_system_lru_coalesced_total", "Queries that joined another request's in-flight build.", m.lruCoalesced.Load())
	counter("eba_system_lru_evictions_total", "Systems evicted from the LRU.", m.lruEvictions.Load())
	gauge("eba_system_lru_hit_ratio", "Hits over probes of the System LRU.", ratio(hits, hits+misses+m.lruCoalesced.Load()))

	if cache != nil {
		counter("eba_result_cache_hits_total", "Result cache hits.", cache.Hits)
		counter("eba_result_cache_misses_total", "Result cache misses.", cache.Misses)
		counter("eba_result_cache_puts_total", "Result cache writes.", cache.Puts)
		counter("eba_result_cache_bytes_served_total", "Result cache payload bytes served.", cache.BytesServed)
		counter("eba_result_cache_bytes_written_total", "Result cache payload bytes written.", cache.BytesWritten)
		gauge("eba_result_cache_hit_ratio", "Hits over probes of the result cache.", ratio(cache.Hits, cache.Hits+cache.Misses))
	}

	m.buildSeconds.render(w, "eba_build_seconds", "System build latency in seconds.")
	for _, k := range kinds {
		m.latency[k].render(w, "eba_request_seconds_"+k, "Request latency in seconds for kind "+k+".")
	}
}

// ratio guards the num/den division against an empty denominator.
func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// histogramBuckets are the latency bucket upper bounds in seconds
// (+Inf implied). Spans sub-millisecond knowledge hits to multi-minute
// cold builds.
var histogramBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// sampleRing bounds the memory a histogram spends on exact quantiles.
const sampleRing = 1024

// histogram is a locked latency histogram: cumulative bucket counts for
// the Prometheus exposition plus a bounded ring of raw samples for
// exact-enough p50/p99 gauges (exact until the ring wraps; the sliding
// window of the last sampleRing observations after).
type histogram struct {
	mu      sync.Mutex
	buckets []int64 // one per bound, plus +Inf last
	sum     float64
	count   int64
	ring    [sampleRing]float64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]int64, len(histogramBuckets)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(histogramBuckets, v)
	h.buckets[i]++
	h.sum += v
	h.ring[h.count%sampleRing] = v
	h.count++
}

// quantile returns the q-quantile of the retained samples (0 when
// empty).
func (h *histogram) quantile(q float64) float64 {
	h.mu.Lock()
	n := min(h.count, sampleRing)
	samples := make([]float64, n)
	copy(samples, h.ring[:n])
	h.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Float64s(samples)
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	return samples[i]
}

// render writes the histogram in the Prometheus text format, plus _p50
// and _p99 gauges computed from the sample ring.
func (h *histogram) render(w io.Writer, name, help string) {
	h.mu.Lock()
	var cum int64
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, le := range histogramBuckets {
		cum += h.buckets[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", le), cum)
	}
	cum += h.buckets[len(histogramBuckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
	h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s_p50 Median of recent %s samples.\n# TYPE %s_p50 gauge\n%s_p50 %g\n", name, name, name, name, h.quantile(0.50))
	fmt.Fprintf(w, "# HELP %s_p99 99th percentile of recent %s samples.\n# TYPE %s_p99 gauge\n%s_p99 %g\n", name, name, name, name, h.quantile(0.99))
}
