package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/adversary"
	rescache "repro/internal/cache"
	"repro/internal/core"
	"repro/internal/episteme"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/source"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, req any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func readAll(t *testing.T, r io.Reader) []byte {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return b
}

// referenceShard reproduces what ebashard writes for one stripe: the
// runner configuration here mirrors cmd/ebashard's runStripe exactly.
func referenceShard(t *testing.T, stackName string, n, tf int, shard source.ShardSpec, quotient bool) []byte {
	t.Helper()
	stack, err := core.NewStack(stackName, core.WithN(n), core.WithT(tf))
	if err != nil {
		t.Fatalf("stack: %v", err)
	}
	pats, err := source.SO(stack.N, stack.T, stack.Horizon(), adversary.Options{})
	if err != nil {
		t.Fatalf("patterns: %v", err)
	}
	src, err := source.CrossInits(pats, stack.N)
	if err != nil {
		t.Fatalf("source: %v", err)
	}
	var csrc core.Source = src
	if quotient {
		csrc = source.Quotient(src)
	}
	var buf bytes.Buffer
	r := core.NewRunner(stack,
		core.WithParallelism(2),
		core.WithBufferReuse(),
		core.WithSpecCheck(specOptions(stack)))
	if _, err := r.RunShard(context.Background(), csrc, shard.Index, shard.Count, &buf); err != nil {
		t.Fatalf("reference RunShard: %v", err)
	}
	return buf.Bytes()
}

// TestSweepMatchesCLIBytes pins the served sweep stream byte-identical
// to the CLI path for whole sweeps, stripes, and quotiented sweeps.
func TestSweepMatchesCLIBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name     string
		req      SweepRequest
		shard    source.ShardSpec
		quotient bool
	}{
		{"whole", SweepRequest{Stack: "min", N: 3, T: 1}, source.ShardSpec{Index: 0, Count: 1}, false},
		{"stripe0", SweepRequest{Stack: "min", N: 3, T: 1, Shard: "0/3"}, source.ShardSpec{Index: 0, Count: 3}, false},
		{"stripe2", SweepRequest{Stack: "min", N: 3, T: 1, Shard: "2/3"}, source.ShardSpec{Index: 2, Count: 3}, false},
		{"quotient", SweepRequest{Stack: "min", N: 3, T: 1, Quotient: true}, source.ShardSpec{Index: 0, Count: 1}, true},
		{"fip", SweepRequest{Stack: "fip", N: 3, T: 1, Parallelism: 1}, source.ShardSpec{Index: 0, Count: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := referenceShard(t, tc.req.Stack, tc.req.N, tc.req.T, tc.shard, tc.quotient)
			resp := postJSON(t, ts.URL+"/v1/sweep", tc.req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp.Body))
			}
			got := readAll(t, resp.Body)
			if !bytes.Equal(got, want) {
				t.Fatalf("served stream differs from CLI bytes:\n got %d bytes\nwant %d bytes", len(got), len(want))
			}
			// The served stream must verify like any stripe.
			if _, err := core.VerifyOutcomeStream(bytes.NewReader(got)); err != nil {
				t.Fatalf("served stream fails verification: %v", err)
			}
		})
	}
}

func buildReferenceSystem(t *testing.T, stackName string, n, tf int) (core.Stack, *episteme.System) {
	t.Helper()
	stack, err := core.NewStack(stackName, core.WithN(n), core.WithT(tf))
	if err != nil {
		t.Fatalf("stack: %v", err)
	}
	sys, err := episteme.BuildSystem(context.Background(), episteme.ContextFor(stack), stack.Action)
	if err != nil {
		t.Fatalf("build system: %v", err)
	}
	return stack, sys
}

// TestCheckMatchesCLIBytes pins the served verdict block byte-identical
// to the fabric/CLI WriteVerdicts output, for a plain and a quotiented
// server.
func TestCheckMatchesCLIBytes(t *testing.T) {
	cases := []struct {
		name     string
		stack    string
		quotient bool
		req      CheckRequest
	}{
		{"min", "min", false, CheckRequest{Stack: "min", N: 3, T: 1, Safety: true}},
		// Quotient=true on a non-KeyPermuter stack falls back to a full
		// build; on fip it builds quotiented and expands — the served
		// bytes must be identical either way.
		{"min-quotient-fallback", "min", true, CheckRequest{Stack: "min", N: 3, T: 1, Safety: true}},
		{"fip-quotient", "fip", true, CheckRequest{Stack: "fip", N: 3, T: 1, SkipOptimality: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, Config{Quotient: tc.quotient})
			stack, sys := buildReferenceSystem(t, tc.stack, 3, 1)
			var want bytes.Buffer
			if err := fabric.WriteVerdicts(context.Background(), &want, sys, stack.Name,
				fabric.VerdictOptions{Safety: tc.req.Safety, Optimality: !tc.req.SkipOptimality}); err != nil {
				t.Fatalf("reference verdicts: %v", err)
			}
			resp := postJSON(t, ts.URL+"/v1/check", tc.req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp.Body))
			}
			if v := resp.Header.Get(VerdictHeader); v != "ok" {
				t.Fatalf("%s = %q, want ok", VerdictHeader, v)
			}
			got := readAll(t, resp.Body)
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatalf("served verdicts differ from CLI bytes:\n got: %s\nwant: %s", got, want.Bytes())
			}
		})
	}
}

// TestKnowledgeQueries exercises every query kind against semantics
// computed directly on the reference System.
func TestKnowledgeQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, sys := buildReferenceSystem(t, "min", 3, 1)

	query := func(req KnowledgeRequest) KnowledgeResponse {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/knowledge", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp.Body))
		}
		var kr KnowledgeResponse
		if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return kr
	}

	base := KnowledgeRequest{Stack: "min", N: 3, T: 1}
	// Echoed dimensions describe the full system.
	kr := query(withQuery(base, QueryExists, 0, 0, 0, 0))
	if kr.Runs != len(sys.Runs) || kr.Horizon != sys.Horizon {
		t.Fatalf("echoed dims %d/%d, want %d/%d", kr.Runs, kr.Horizon, len(sys.Runs), sys.Horizon)
	}

	// Cross-check every query kind on a spread of points against the
	// in-process System.
	checked := 0
	for run := 0; run < len(sys.Runs); run += 7 {
		for _, tm := range []int{0, sys.Horizon} {
			p := episteme.Point{Run: run, Time: tm}
			for v := 0; v <= 1; v++ {
				vv := model.Value(v)
				if got := query(withQuery(base, QueryExists, 0, run, tm, v)).Holds; got != sys.Exists(vv, p) {
					t.Fatalf("exists(%d) at %+v: served %v", v, p, got)
				}
				for agent := 0; agent < sys.N; agent++ {
					i := model.AgentID(agent)
					if got := query(withQuery(base, QueryKnowsExists, agent, run, tm, v)).Holds; got != sys.Knows(i, p, func(q episteme.Point) bool { return sys.Exists(vv, q) }) {
						t.Fatalf("knows_exists(%d,%d) at %+v: served %v", agent, v, p, got)
					}
					if got := query(withQuery(base, QueryKnowsCK, agent, run, tm, v)).Holds; got != sys.KnowsCK(i, p, vv) {
						t.Fatalf("knows_ck(%d,%d) at %+v: served %v", agent, v, p, got)
					}
					if got := query(withQuery(base, QueryNonfaulty, agent, run, tm, v)).Holds; got != sys.Nonfaulty(i, p) {
						t.Fatalf("nonfaulty(%d) at %+v: served %v", agent, p, got)
					}
					dr := query(withQuery(base, QueryDecided, agent, run, tm, v))
					d := sys.DecidedVal(i, p)
					wantDecided := -1
					if d.IsSet() {
						wantDecided = int(d)
					}
					if dr.Decided != wantDecided || dr.Holds != (d.IsSet() && int(d) == v) {
						t.Fatalf("decided(%d) at %+v: served %+v, system says %d", agent, p, dr, wantDecided)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no points checked")
	}

	// Validation errors.
	for _, bad := range []KnowledgeRequest{
		withQuery(base, "mystery", 0, 0, 0, 0),
		withQuery(base, QueryExists, 0, len(sys.Runs), 0, 0),
		withQuery(base, QueryExists, 0, 0, sys.Horizon+1, 0),
		withQuery(base, QueryNonfaulty, 3, 0, 0, 0),
		withQuery(base, QueryExists, 0, 0, 0, 7),
	} {
		resp := postJSON(t, ts.URL+"/v1/knowledge", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func withQuery(base KnowledgeRequest, q string, agent, run, tm, v int) KnowledgeRequest {
	base.Query, base.Agent, base.Run, base.Time, base.Value = q, agent, run, tm, v
	return base
}

// TestLRUEvictionAndSingleflight drives the systemLRU directly with
// counted fake builders.
func TestLRUEvictionAndSingleflight(t *testing.T) {
	met := newMetrics()
	lru := newSystemLRU(2, met)
	ctx := context.Background()

	var builds atomic.Int64
	builder := func(context.Context) (*episteme.System, error) {
		builds.Add(1)
		return &episteme.System{}, nil
	}

	// Singleflight: N concurrent gets for one cold key build once.
	const waiters = 16
	gate := make(chan struct{})
	slowBuilder := func(context.Context) (*episteme.System, error) {
		<-gate
		return builder(ctx)
	}
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := lru.get(ctx, "a", slowBuilder); err != nil {
				t.Errorf("get: %v", err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("%d concurrent gets ran %d builds, want 1", waiters, got)
	}
	if h, c := met.lruHits.Load(), met.lruCoalesced.Load(); h+c != waiters-1 {
		t.Fatalf("hits %d + coalesced %d, want %d followers", h, c, waiters-1)
	}

	// Eviction: capacity 2, third key evicts the least recently used.
	if _, err := lru.get(ctx, "b", builder); err != nil {
		t.Fatal(err)
	}
	if _, err := lru.get(ctx, "a", builder); err != nil { // refresh a
		t.Fatal(err)
	}
	if _, err := lru.get(ctx, "c", builder); err != nil { // evicts b
		t.Fatal(err)
	}
	if lru.len() != 2 {
		t.Fatalf("LRU holds %d, want 2", lru.len())
	}
	if lru.has("b") || !lru.has("a") || !lru.has("c") {
		t.Fatalf("LRU kept the wrong keys (b=%v a=%v c=%v)", lru.has("b"), lru.has("a"), lru.has("c"))
	}
	if met.lruEvictions.Load() != 1 {
		t.Fatalf("evictions %d, want 1", met.lruEvictions.Load())
	}
	wantBuilds := builds.Load()
	if _, err := lru.get(ctx, "b", builder); err != nil { // cold again
		t.Fatal(err)
	}
	if builds.Load() != wantBuilds+1 {
		t.Fatal("evicted key did not rebuild")
	}
}

// TestServerSingleflight asserts the end-to-end property: N concurrent
// knowledge queries against one cold stack trigger exactly one build.
func TestServerSingleflight(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const concurrent = 24
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(KnowledgeRequest{Stack: "min", N: 3, T: 1, Query: QueryExists, Value: 1})
			resp, err := http.Post(ts.URL+"/v1/knowledge", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.met.lruMisses.Load(); got != 1 {
		t.Fatalf("%d concurrent queries ran %d builds, want 1", concurrent, got)
	}
	if got := s.lru.len(); got != 1 {
		t.Fatalf("LRU holds %d systems, want 1", got)
	}
}

// TestAdmission429 fills the in-flight pool and expects the next
// request to bounce without touching a handler.
func TestAdmission429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 2})
	s.inflight <- struct{}{}
	s.inflight <- struct{}{}
	resp := postJSON(t, ts.URL+"/v1/knowledge", KnowledgeRequest{Stack: "min", N: 3, T: 1, Query: QueryExists})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := s.met.rejects[kindKnowledge].Load(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
	<-s.inflight
	<-s.inflight
	resp = postJSON(t, ts.URL+"/v1/knowledge", KnowledgeRequest{Stack: "min", N: 3, T: 1, Query: QueryExists, Value: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after freeing the pool: status %d, want 200", resp.StatusCode)
	}
}

// TestDrain pins the graceful-drain contract: in-flight requests
// finish, new work and health checks get 503.
func TestDrain(t *testing.T) {
	s := NewServer(Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	slow := s.admit(kindSweep, func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", slow)
	mux.Handle("/", s.Handler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/slow", "application/json", strings.NewReader("{}"))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-entered
	if s.Inflight() != 1 {
		t.Fatalf("inflight %d, want 1", s.Inflight())
	}

	s.Drain()
	s.Drain() // idempotent

	resp := postJSON(t, ts.URL+"/v1/knowledge", KnowledgeRequest{Stack: "min", N: 3, T: 1, Query: QueryExists})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new work during drain: status %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", hresp.StatusCode)
	}

	close(release)
	if got := <-done; got != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", got)
	}
	if s.Inflight() != 0 {
		t.Fatalf("inflight %d after drain completion, want 0", s.Inflight())
	}
}

// TestMetricsContent serves a mixed load and asserts the exposition
// carries the promised series with sane values.
func TestMetricsContent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// One build, then hits.
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/knowledge", KnowledgeRequest{Stack: "min", N: 3, T: 1, Query: QueryExists, Value: 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("knowledge status %d", resp.StatusCode)
		}
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Stack: "min", N: 3, T: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	readAll(t, resp.Body)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text := string(readAll(t, mresp.Body))

	for _, want := range []string{
		`eba_requests_total{kind="knowledge"} 3`,
		`eba_requests_total{kind="sweep"} 1`,
		`eba_requests_total{kind="check"} 0`,
		`eba_system_lru_misses_total 1`,
		"eba_build_seconds_p99 ",
		"eba_request_seconds_knowledge_bucket{le=\"+Inf\"} 3",
		"# TYPE eba_build_seconds histogram",
		"eba_requests_per_second ",
		"eba_uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	// Two of the three knowledge queries hit the LRU (ratio > 0).
	if strings.Contains(text, "eba_system_lru_hit_ratio 0\n") {
		t.Error("LRU hit ratio is zero after repeated identical queries")
	}
	if !strings.Contains(text, "eba_sweep_records_total") {
		t.Error("metrics exposition missing sweep record counter")
	}
}

// TestResultCacheBackedServer wires an on-disk result cache through the
// server and expects the exposition to report its traffic.
func TestResultCacheBackedServer(t *testing.T) {
	store, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: store, Fingerprint: "test"})
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Stack: "min", N: 3, T: 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status %d", resp.StatusCode)
		}
		readAll(t, resp.Body)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text := string(readAll(t, mresp.Body))
	if !strings.Contains(text, "eba_result_cache_hits_total") {
		t.Fatal("metrics exposition missing result cache series")
	}
	if strings.Contains(text, "eba_result_cache_hit_ratio 0\n") {
		t.Fatal("second identical sweep did not hit the result cache")
	}
}
