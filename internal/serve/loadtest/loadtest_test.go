package loadtest

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/serve"
)

// TestRunAgainstInProcessServer drives the full mixed load against an
// httptest server and expects a clean summary — including when the
// admission pool is small enough that 429 retries are exercised.
func TestRunAgainstInProcessServer(t *testing.T) {
	s := serve.NewServer(serve.Config{MaxInflight: 4, MaxParallelism: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sum, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Requests:    200,
		Concurrency: 16,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := sum.Err(); err != nil {
		t.Fatalf("summary: %v (details %v)", err, sum.Details)
	}
	if sum.Sweeps+sum.Checks+sum.Knowledge != sum.Requests {
		t.Fatalf("mix %d+%d+%d != %d", sum.Sweeps, sum.Checks, sum.Knowledge, sum.Requests)
	}
	if sum.Records == 0 {
		t.Fatal("no sweep records verified")
	}
	if sum.RequestsPerSecond <= 0 || sum.P99Millis < sum.P50Millis {
		t.Fatalf("implausible latency summary: %+v", sum)
	}
}

// TestRetriesAbsorb429s pins the admission contract from the client
// side: a server that bounces a request twice before serving it costs
// two retries, not an error.
func TestRetriesAbsorb429s(t *testing.T) {
	s := serve.NewServer(serve.Config{MaxParallelism: 1})
	inner := s.Handler()
	var mu sync.Mutex
	bounces := map[string]int{}
	outer := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		n := bounces[string(body)]
		bounces[string(body)]++
		mu.Unlock()
		if n < 2 && r.URL.Path != "/v1/knowledge" {
			http.Error(w, "synthetic capacity bounce", http.StatusTooManyRequests)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(outer)
	defer ts.Close()

	sum, err := Run(context.Background(), Config{BaseURL: ts.URL, Requests: 20, Concurrency: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := sum.Err(); err != nil {
		t.Fatalf("summary: %v (details %v)", err, sum.Details)
	}
	if sum.Retried429 == 0 {
		t.Fatal("no retries recorded despite synthetic bounces")
	}
}

// TestSummaryErrTaxonomy pins the Err mapping the CLI's exit codes rely
// on.
func TestSummaryErrTaxonomy(t *testing.T) {
	clean := &Summary{Requests: 10}
	if err := clean.Err(); err != nil {
		t.Fatalf("clean summary: %v", err)
	}
	dirty := &Summary{Requests: 10, Errors: 2, Details: []string{"sweep #0: boom"}}
	if err := dirty.Err(); err == nil {
		t.Fatal("dirty summary returned nil error")
	}
}
