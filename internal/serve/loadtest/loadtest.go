// Package loadtest drives an ebaserve instance with a deterministic mix
// of concurrent sweep, check, and knowledge requests and verifies every
// response it can: sweep streams must verify end to end
// (core.VerifyOutcomeStream), check blocks must be byte-identical
// across repetitions (the serving layer may never make verdicts
// request-dependent), and knowledge queries must answer within the
// system's dimensions. 429s are part of the admission contract, not
// failures — the harness backs off and retries, and reports how often
// it had to. The Summary joins the CI bench gate through
// experiments.GateBench's serve kind, so a throughput collapse fails CI
// the same way an allocation regression does.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/serve"
)

// Config tunes one load-test run against a serving base URL.
type Config struct {
	// BaseURL roots the target server's routes (no trailing slash).
	BaseURL string
	// Requests is the total number of work requests to issue;
	// Concurrency how many run at once (defaults 1000 and 32).
	Requests    int
	Concurrency int
	// Stack, N, T select the sweep the requests exercise (defaults
	// "min", 3, 1 — small enough that the mix is request-bound, not
	// compute-bound).
	Stack string
	N, T  int
	// SweepShards fans sweep requests over this many stripes, so a
	// single sweep response stays small (default 16).
	SweepShards int
	// MaxRetries bounds the per-request 429 retry budget (default 50).
	MaxRetries int
	// Client overrides the HTTP client (default: pooled transport sized
	// to Concurrency).
	Client *http.Client
}

// Summary is the run's outcome: the request mix, every failure, the
// latency distribution, and the throughput number the bench gate
// consumes.
type Summary struct {
	Requests  int `json:"requests"`
	Sweeps    int `json:"sweeps"`
	Checks    int `json:"checks"`
	Knowledge int `json:"knowledge"`
	// Errors counts failed requests (transport errors, unexpected
	// statuses, verification failures); Details carries the first few.
	Errors  int      `json:"errors"`
	Details []string `json:"details,omitempty"`
	// Retried429 counts admission bounces absorbed by backoff.
	Retried429 int64 `json:"retried_429"`
	// Records totals the outcome records of all verified sweep streams.
	Records int64 `json:"records"`
	// Seconds is the wall-clock run time; RequestsPerSecond the gated
	// throughput; P50Millis/P99Millis the request latency distribution.
	Seconds           float64 `json:"seconds"`
	RequestsPerSecond float64 `json:"requests_per_second"`
	P50Millis         float64 `json:"p50_millis"`
	P99Millis         float64 `json:"p99_millis"`
}

// Err folds the summary into the repository's error taxonomy: nil when
// every request succeeded, an ErrVerification-wrapped error otherwise
// (a response that fails verification is a data failure, not a
// transport hiccup — the run already absorbed those via retries).
func (s *Summary) Err() error {
	if s.Errors == 0 {
		return nil
	}
	detail := ""
	if len(s.Details) > 0 {
		detail = ": " + s.Details[0]
	}
	return fmt.Errorf("%w: %d of %d load-test requests failed%s", fabric.ErrVerification, s.Errors, s.Requests, detail)
}

// request is one planned unit of load.
type request struct {
	kind  string
	index int
}

// Run executes the configured load against cfg.BaseURL. The request
// plan is deterministic in cfg (index-striped mix), so two runs against
// equivalent servers issue identical request sequences; only the
// interleaving varies.
func Run(ctx context.Context, cfg Config) (*Summary, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 32
	}
	if cfg.Stack == "" {
		cfg.Stack, cfg.N, cfg.T = "min", 3, 1
	}
	if cfg.SweepShards <= 0 {
		cfg.SweepShards = 16
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	if cfg.Client == nil {
		tr := &http.Transport{MaxIdleConns: cfg.Concurrency, MaxIdleConnsPerHost: cfg.Concurrency}
		cfg.Client = &http.Client{Transport: tr}
		defer tr.CloseIdleConnections()
	}

	lt := &loadTester{cfg: cfg}
	// One probe query learns the system's dimensions (and warms the
	// server's System LRU so the timed phase measures serving, not one
	// giant cold build).
	if err := lt.probe(ctx); err != nil {
		return nil, err
	}

	work := make(chan request)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range work {
				lt.do(ctx, req)
			}
		}()
	}
	sum := &Summary{Requests: cfg.Requests}
	for i := 0; i < cfg.Requests; i++ {
		// Mix: of every 10 requests, 1 sweep stripe, 2 checks, 7
		// knowledge queries — reads dominate, as they would in service.
		var kind string
		switch i % 10 {
		case 0:
			kind = "sweep"
			sum.Sweeps++
		case 1, 5:
			kind = "check"
			sum.Checks++
		default:
			kind = "knowledge"
			sum.Knowledge++
		}
		select {
		case work <- request{kind: kind, index: i}:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return nil, context.Cause(ctx)
		}
	}
	close(work)
	wg.Wait()
	sum.Seconds = time.Since(start).Seconds()

	lt.mu.Lock()
	defer lt.mu.Unlock()
	sum.Errors = len(lt.errors)
	if len(lt.errors) > 5 {
		sum.Details = lt.errors[:5]
	} else {
		sum.Details = lt.errors
	}
	sum.Retried429 = lt.retried
	sum.Records = lt.records
	if sum.Seconds > 0 {
		sum.RequestsPerSecond = float64(cfg.Requests) / sum.Seconds
	}
	sort.Float64s(lt.latencies)
	sum.P50Millis = quantileMillis(lt.latencies, 0.50)
	sum.P99Millis = quantileMillis(lt.latencies, 0.99)
	return sum, nil
}

func quantileMillis(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i] * 1000
}

// loadTester is the shared state of one run's workers.
type loadTester struct {
	cfg Config

	runs    int // system dimensions, learned by probe
	horizon int

	mu        sync.Mutex
	errors    []string
	latencies []float64
	retried   int64
	records   int64

	checkRef []byte // first check response; all others must match
}

func (lt *loadTester) fail(req request, format string, args ...any) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.errors = append(lt.errors, fmt.Sprintf("%s #%d: %s", req.kind, req.index, fmt.Sprintf(format, args...)))
}

// probe issues the dimension-learning knowledge query.
func (lt *loadTester) probe(ctx context.Context) error {
	status, body, err := lt.post(ctx, "/v1/knowledge", serve.KnowledgeRequest{
		Stack: lt.cfg.Stack, N: lt.cfg.N, T: lt.cfg.T, Query: serve.QueryExists, Value: 1,
	}, lt.cfg.MaxRetries)
	if err != nil {
		return fmt.Errorf("%w: load-test probe: %v", fabric.ErrTransport, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("%w: load-test probe: status %d: %s", fabric.ErrVerification, status, body)
	}
	var kr serve.KnowledgeResponse
	if err := json.Unmarshal(body, &kr); err != nil {
		return fmt.Errorf("%w: load-test probe: %v", fabric.ErrVerification, err)
	}
	lt.runs, lt.horizon = kr.Runs, kr.Horizon
	if lt.runs == 0 {
		return fmt.Errorf("%w: load-test probe reported an empty system", fabric.ErrVerification)
	}
	return nil
}

// post sends one JSON request, absorbing up to maxRetries admission
// bounces (429) with linear backoff. Returns the final status and body.
func (lt *loadTester) post(ctx context.Context, path string, body any, maxRetries int) (int, []byte, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, lt.cfg.BaseURL+path, bytes.NewReader(payload))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := lt.cfg.Client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < maxRetries {
			lt.mu.Lock()
			lt.retried++
			lt.mu.Unlock()
			select {
			case <-time.After(time.Duration(attempt+1) * time.Millisecond):
			case <-ctx.Done():
				return 0, nil, context.Cause(ctx)
			}
			continue
		}
		return resp.StatusCode, data, nil
	}
}

// do executes one planned request and verifies its response.
func (lt *loadTester) do(ctx context.Context, req request) {
	t0 := time.Now()
	switch req.kind {
	case "sweep":
		lt.doSweep(ctx, req)
	case "check":
		lt.doCheck(ctx, req)
	default:
		lt.doKnowledge(ctx, req)
	}
	lt.mu.Lock()
	lt.latencies = append(lt.latencies, time.Since(t0).Seconds())
	lt.mu.Unlock()
}

func (lt *loadTester) doSweep(ctx context.Context, req request) {
	shard := fmt.Sprintf("%d/%d", req.index%lt.cfg.SweepShards, lt.cfg.SweepShards)
	status, body, err := lt.post(ctx, "/v1/sweep", serve.SweepRequest{
		Stack: lt.cfg.Stack, N: lt.cfg.N, T: lt.cfg.T, Shard: shard, Parallelism: 1,
	}, lt.cfg.MaxRetries)
	if err != nil {
		lt.fail(req, "%v", err)
		return
	}
	if status != http.StatusOK {
		lt.fail(req, "status %d: %s", status, body)
		return
	}
	sum, err := core.VerifyOutcomeStream(bytes.NewReader(body))
	if err != nil {
		lt.fail(req, "stream verification: %v", err)
		return
	}
	lt.mu.Lock()
	lt.records += sum.Records
	lt.mu.Unlock()
}

func (lt *loadTester) doCheck(ctx context.Context, req request) {
	status, body, err := lt.post(ctx, "/v1/check", serve.CheckRequest{
		Stack: lt.cfg.Stack, N: lt.cfg.N, T: lt.cfg.T, Parallelism: 1,
	}, lt.cfg.MaxRetries)
	if err != nil {
		lt.fail(req, "%v", err)
		return
	}
	if status != http.StatusOK {
		lt.fail(req, "status %d: %s", status, body)
		return
	}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.checkRef == nil {
		lt.checkRef = body
		return
	}
	if !bytes.Equal(body, lt.checkRef) {
		lt.errors = append(lt.errors, fmt.Sprintf("check #%d: verdict block differs from the run's first", req.index))
	}
}

func (lt *loadTester) doKnowledge(ctx context.Context, req request) {
	queries := []string{serve.QueryExists, serve.QueryKnowsExists, serve.QueryKnowsCK, serve.QueryNonfaulty, serve.QueryDecided}
	kr := serve.KnowledgeRequest{
		Stack: lt.cfg.Stack, N: lt.cfg.N, T: lt.cfg.T,
		Query: queries[req.index%len(queries)],
		Agent: req.index % lt.cfg.N,
		Run:   req.index % lt.runs,
		Time:  req.index % (lt.horizon + 1),
		Value: req.index % 2,
	}
	status, body, err := lt.post(ctx, "/v1/knowledge", kr, lt.cfg.MaxRetries)
	if err != nil {
		lt.fail(req, "%v", err)
		return
	}
	if status != http.StatusOK {
		lt.fail(req, "status %d: %s", status, body)
		return
	}
	var resp serve.KnowledgeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		lt.fail(req, "decode: %v", err)
		return
	}
	if resp.Runs != lt.runs || resp.Horizon != lt.horizon {
		lt.fail(req, "dimensions drifted: %d/%d, probe saw %d/%d", resp.Runs, resp.Horizon, lt.runs, lt.horizon)
	}
}
