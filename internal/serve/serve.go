// Package serve is the verification-as-a-service layer: a long-running
// HTTP daemon (cmd/ebaserve) that exposes the Runner and the epistemic
// model checker as a service instead of one-shot CLIs.
//
// Three POST endpoints cover the workloads:
//
//	POST /v1/sweep      SweepRequest  → the stripe's JSONL outcome
//	                    stream, byte-identical to what ebashard writes
//	                    for the same parameters (header, records,
//	                    sealed footer — core.RunShard verbatim)
//	POST /v1/check      CheckRequest  → the deterministic verdict block
//	                    (fabric.WriteVerdicts), byte-identical to
//	                    ebashard -check -merge for the same sweep
//	POST /v1/knowledge  KnowledgeRequest → KnowledgeResponse: one
//	                    epistemic query evaluated at a point of the hot
//	                    System
//
// Check and knowledge queries are answered from an LRU of built Systems
// keyed by (stack version digest, n, t, horizon) with singleflight
// deduplication — N concurrent queries against a cold entry trigger one
// build, everyone else waits for it. The LRU is backed by the result
// cache (Config.Cache) when one is configured, so even a cold LRU entry
// is a warm build: the build's scenarios are answered from the
// persistent store instead of re-executed.
//
// Admission control bounds what a burst can do: at most MaxInflight
// requests are in flight (beyond that the server answers 429 without
// reading the body), at most MaxBuilds Systems build concurrently
// (excess builders queue on the build semaphore), and every request's
// worker budget is clamped to MaxParallelism before it reaches
// WithParallelism. Drain flips the server into draining: new work gets
// 503 (and /healthz goes unhealthy, so load balancers stop routing),
// requests already in flight finish normally — the graceful half of
// SIGTERM handling.
//
// GET /metrics renders the server's counters in the Prometheus text
// format: requests and rejections by kind, in-flight gauges, System-LRU
// and result-cache hit counters and ratios, and build/check/sweep
// latency histograms with p50/p99 gauges.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"repro/internal/adversary"
	rescache "repro/internal/cache"
	"repro/internal/core"
	"repro/internal/episteme"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/source"
	"repro/internal/spec"
)

// VerdictHeader is the response header naming a check's outcome: "ok"
// when every verdict passed, "failed" when the block lists violations
// (the body is written either way, exactly as the CLIs write it).
const VerdictHeader = "X-Eba-Verdict"

// Config configures NewServer. The zero value serves with defaults: no
// result cache, 8 hot Systems, 2 concurrent builds, 256 in-flight
// requests, and a per-request worker budget of GOMAXPROCS.
type Config struct {
	// Cache, when set, backs every build and sweep with the persistent
	// result cache; Fingerprint is folded into its version digests
	// (cache.Fingerprint ties entries to the binary's VCS revision).
	Cache       core.ResultCache
	Fingerprint string
	// MaxSystems caps the System LRU (default 8). Evicted Systems are
	// rebuilt on demand — warm, if a result cache is configured.
	MaxSystems int
	// MaxBuilds bounds concurrent System builds (default 2): builds are
	// the expensive admission unit, so a burst of cold queries queues
	// here instead of building GOMAXPROCS systems at once.
	MaxBuilds int
	// MaxInflight bounds concurrently served requests; one more gets
	// 429 (default 256).
	MaxInflight int
	// MaxParallelism clamps every request's worker budget before it
	// reaches WithParallelism (default GOMAXPROCS). Requests asking for
	// 0 get the full budget.
	MaxParallelism int
	// Quotient builds Systems (and sweeps that ask for it) through the
	// agent-permutation symmetry quotient where the stack supports it.
	// Served bytes are identical either way; quotiented builds just
	// execute up to n! fewer runs. Sweep responses are quotiented only
	// when the request says so — the stream's records carry
	// multiplicities, so quotienting changes the bytes there.
	Quotient bool
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Server is the serving layer. Create one with NewServer, mount Handler
// on an http.Server, and call Drain on SIGTERM before Shutdown.
type Server struct {
	cfg      Config
	lru      *systemLRU
	met      *metrics
	inflight chan struct{}
	builds   chan struct{}
	draining chan struct{}
}

// NewServer validates the config and returns a ready server.
func NewServer(cfg Config) *Server {
	if cfg.MaxSystems <= 0 {
		cfg.MaxSystems = 8
	}
	if cfg.MaxBuilds <= 0 {
		cfg.MaxBuilds = 2
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.MaxParallelism <= 0 {
		cfg.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	met := newMetrics()
	return &Server{
		cfg:      cfg,
		lru:      newSystemLRU(cfg.MaxSystems, met),
		met:      met,
		inflight: make(chan struct{}, cfg.MaxInflight),
		builds:   make(chan struct{}, cfg.MaxBuilds),
		draining: make(chan struct{}),
	}
}

// Handler returns the server's HTTP handler (routes in the package
// comment).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sweep", s.admit(kindSweep, s.handleSweep))
	mux.HandleFunc("/v1/check", s.admit(kindCheck, s.handleCheck))
	mux.HandleFunc("/v1/knowledge", s.admit(kindKnowledge, s.handleKnowledge))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// Drain flips the server into draining: /healthz goes 503 (load
// balancers stop routing), new work requests get 503, and requests
// already in flight finish normally. Safe to call from any goroutine,
// any number of times.
func (s *Server) Drain() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Inflight reports the number of requests currently being served — what
// an orchestrator polls while waiting for a drain to empty out.
func (s *Server) Inflight() int { return len(s.inflight) }

// admit wraps a work handler with the admission layer: method check,
// drain check, and the bounded in-flight pool (full pool → 429, the
// caller backs off and retries). Metrics see every outcome.
func (s *Server) admit(kind string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if s.Draining() {
			s.met.drained.Add(1)
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		select {
		case s.inflight <- struct{}{}:
		default:
			s.met.rejected(kind)
			http.Error(w, "server at capacity", http.StatusTooManyRequests)
			return
		}
		defer func() { <-s.inflight }()
		t0 := time.Now()
		s.met.started(kind)
		h(w, r)
		s.met.finished(kind, time.Since(t0).Seconds())
	}
}

// parallelism clamps a request's worker budget to the server's cap
// (0 = the full cap).
func (s *Server) parallelism(requested int) int {
	if requested <= 0 || requested > s.cfg.MaxParallelism {
		return s.cfg.MaxParallelism
	}
	return requested
}

// --- sweep -----------------------------------------------------------------

// SweepRequest asks for one stripe of a stack's exhaustive SO(t) sweep.
// The response body is the stripe's self-describing JSONL outcome
// stream — byte-identical to `ebashard -stack ... -shard i/k` with the
// same parameters, so served stripes merge and cmp cleanly against
// CLI-produced ones.
type SweepRequest struct {
	// Stack names the protocol stack (see the registry); N, T its size.
	Stack string `json:"stack"`
	N     int    `json:"n"`
	T     int    `json:"t"`
	// Horizon optionally overrides the stack's execution horizon
	// (0 = the stack default, t+2).
	Horizon int `json:"horizon,omitempty"`
	// Shard selects the stripe as "i/k" (empty = the whole sweep, 0/1).
	Shard string `json:"shard,omitempty"`
	// Quotient sweeps one representative per agent-permutation orbit;
	// records carry their orbit size as a multiplicity.
	Quotient bool `json:"quotient,omitempty"`
	// SkipSpec turns off the per-run EBA spec check (on by default,
	// matching ebashard; a violation aborts the stripe mid-stream).
	SkipSpec bool `json:"skipSpec,omitempty"`
	// Parallelism is the stripe's worker budget, clamped to the
	// server's MaxParallelism (0 = the full budget). Never changes the
	// output bytes.
	Parallelism int `json:"parallelism,omitempty"`
}

// newStack resolves the request's stack against the registry.
func newStack(name string, n, t, horizon int) (core.Stack, error) {
	opts := []core.Option{core.WithN(n), core.WithT(t)}
	if horizon > 0 {
		opts = append(opts, core.WithHorizon(horizon))
	}
	return core.NewStack(name, opts...)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad sweep request: "+err.Error(), http.StatusBadRequest)
		return
	}
	shard, err := source.ParseShardSpec(req.Shard)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	stack, err := newStack(req.Stack, req.N, req.T, req.Horizon)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pats, err := source.SO(stack.N, stack.T, stack.Horizon(), adversary.Options{})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	src, err := source.CrossInits(pats, stack.N)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var csrc core.Source = src
	if req.Quotient {
		csrc = source.Quotient(src)
	}
	opts := []core.RunnerOption{
		core.WithParallelism(s.parallelism(req.Parallelism)),
		core.WithBufferReuse(),
	}
	if !req.SkipSpec {
		opts = append(opts, core.WithSpecCheck(specOptions(stack)))
	}
	if s.cfg.Cache != nil {
		opts = append(opts, core.WithResultCache(s.cfg.Cache, s.cfg.Fingerprint))
	}

	// From here on the stream is committed: the header goes out first,
	// and an error mid-sweep leaves the stream without its sealed footer
	// — exactly what every stream consumer in this repository rejects —
	// so a torn response can never be mistaken for a complete stripe.
	w.Header().Set("Content-Type", "application/x-ndjson")
	sum, err := core.NewRunner(stack, opts...).RunShard(r.Context(), csrc, shard.Index, shard.Count, w)
	if err != nil {
		s.cfg.Logf("serve: sweep %s n=%d t=%d shard %s: %v", req.Stack, req.N, req.T, shard.String(), err)
		return
	}
	s.met.sweepRecords.Add(int64(sum.Records))
	s.met.observeCacheHits(sum.CacheHits)
}

// specOptions is the spec-check configuration every sweep surface in
// this repository uses (ebashard's -spec default).
func specOptions(stack core.Stack) spec.Options {
	return spec.Options{RoundBound: stack.Horizon(), ValidityAllAgents: true}
}

// --- check -----------------------------------------------------------------

// CheckRequest asks for the deterministic verdict block of one stack's
// exhaustive model check, answered from the hot System LRU. The body is
// byte-identical to `ebashard -check -shard 0/1` piped through
// `-check -merge` with the same flags.
type CheckRequest struct {
	Stack string `json:"stack"`
	N     int    `json:"n"`
	T     int    `json:"t"`
	// Horizon optionally overrides the stack's horizon (0 = default).
	Horizon int `json:"horizon,omitempty"`
	// Safety also checks the Definition 6.2 safety condition.
	Safety bool `json:"safety,omitempty"`
	// SkipOptimality turns off the Theorem 7.5 characterization check
	// (on by default for fip, matching ebashard).
	SkipOptimality bool `json:"skipOptimality,omitempty"`
	// MaxViolations caps the violations listed per check (0 = 5).
	MaxViolations int `json:"maxViolations,omitempty"`
	// Parallelism is the build/check worker budget, clamped to the
	// server's MaxParallelism (0 = the full budget).
	Parallelism int `json:"parallelism,omitempty"`
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad check request: "+err.Error(), http.StatusBadRequest)
		return
	}
	stack, err := newStack(req.Stack, req.N, req.T, req.Horizon)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sys, err := s.system(r.Context(), stack, s.parallelism(req.Parallelism))
	if err != nil {
		s.systemError(w, err)
		return
	}
	// Verdicts buffer through bytes so a failed check can still set its
	// header; the block itself names the violations either way.
	var buf writeCounter
	verdictErr := fabric.WriteVerdicts(r.Context(), &buf, sys, stack.Name, fabric.VerdictOptions{
		Safety:        req.Safety,
		Optimality:    !req.SkipOptimality,
		MaxViolations: req.MaxViolations,
	})
	switch {
	case verdictErr == nil:
		w.Header().Set(VerdictHeader, "ok")
	case errors.Is(verdictErr, fabric.ErrVerification):
		w.Header().Set(VerdictHeader, "failed")
	default:
		http.Error(w, verdictErr.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf.buf)
}

// systemError maps a failed System resolution to a status code:
// cancellation is the client's, everything else the server's.
func (s *Server) systemError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		http.Error(w, err.Error(), http.StatusRequestTimeout)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// writeCounter is the minimal buffering io.Writer (bytes.Buffer without
// the unused surface).
type writeCounter struct{ buf []byte }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// --- knowledge -------------------------------------------------------------

// Knowledge query kinds.
const (
	// QueryExists asks whether value Value exists as some agent's
	// initial preference at the point (∃v).
	QueryExists = "exists"
	// QueryKnowsExists asks whether Agent knows ∃v at the point
	// (K_i ∃v — the P0/Pmin decision guard for v=0).
	QueryKnowsExists = "knows_exists"
	// QueryKnowsCK asks B_i C_T-faulty(decide v): the common-knowledge
	// guard of the paper's P1 program.
	QueryKnowsCK = "knows_ck"
	// QueryNonfaulty asks whether Agent is nonfaulty at the point.
	QueryNonfaulty = "nonfaulty"
	// QueryDecided asks whether Agent has decided Value by the point
	// (the response also carries what it decided, if anything).
	QueryDecided = "decided"
)

// KnowledgeRequest evaluates one epistemic query at a point (Run, Time)
// of the stack's interpreted system. The System is resolved through the
// same LRU the check endpoint uses, so a burst of point queries against
// one stack shares one hot System.
type KnowledgeRequest struct {
	Stack string `json:"stack"`
	N     int    `json:"n"`
	T     int    `json:"t"`
	// Horizon optionally overrides the stack's horizon (0 = default).
	Horizon int `json:"horizon,omitempty"`
	// Query is one of the Query* kinds.
	Query string `json:"query"`
	// Agent is the querying agent i (ignored by "exists").
	Agent int `json:"agent"`
	// Run and Time locate the point: Run indexes the canonical
	// enumeration (a sweep stream's ordinal), Time is 0..horizon.
	Run  int `json:"run"`
	Time int `json:"time"`
	// Value is the consensus value v the query talks about (0 or 1;
	// ignored by "nonfaulty").
	Value int `json:"value"`
	// Parallelism is the build worker budget if the System is cold,
	// clamped to the server's MaxParallelism (0 = the full budget).
	Parallelism int `json:"parallelism,omitempty"`
}

// KnowledgeResponse is the query's answer.
type KnowledgeResponse struct {
	// Holds reports whether the queried formula holds at the point.
	Holds bool `json:"holds"`
	// Decided carries the agent's decided value at the point for the
	// "decided" query: 0, 1, or -1 for undecided.
	Decided int `json:"decided"`
	// Runs is the system's run count — the valid Run range.
	Runs int `json:"runs"`
	// Horizon is the system's horizon — the valid Time range.
	Horizon int `json:"horizon"`
}

func (s *Server) handleKnowledge(w http.ResponseWriter, r *http.Request) {
	var req KnowledgeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad knowledge request: "+err.Error(), http.StatusBadRequest)
		return
	}
	stack, err := newStack(req.Stack, req.N, req.T, req.Horizon)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Value != 0 && req.Value != 1 {
		http.Error(w, fmt.Sprintf("value %d is not a consensus value (0 or 1)", req.Value), http.StatusBadRequest)
		return
	}
	sys, err := s.system(r.Context(), stack, s.parallelism(req.Parallelism))
	if err != nil {
		s.systemError(w, err)
		return
	}
	if req.Run < 0 || req.Run >= len(sys.Runs) {
		http.Error(w, fmt.Sprintf("run %d outside the system's %d runs", req.Run, len(sys.Runs)), http.StatusBadRequest)
		return
	}
	if req.Time < 0 || req.Time > sys.Horizon {
		http.Error(w, fmt.Sprintf("time %d outside 0..%d", req.Time, sys.Horizon), http.StatusBadRequest)
		return
	}
	if req.Agent < 0 || req.Agent >= sys.N {
		http.Error(w, fmt.Sprintf("agent %d outside 0..%d", req.Agent, sys.N-1), http.StatusBadRequest)
		return
	}

	p := episteme.Point{Run: req.Run, Time: req.Time}
	i := model.AgentID(req.Agent)
	v := model.Value(req.Value)
	resp := KnowledgeResponse{Runs: len(sys.Runs), Horizon: sys.Horizon}
	switch req.Query {
	case QueryExists:
		resp.Holds = sys.Exists(v, p)
	case QueryKnowsExists:
		resp.Holds = sys.Knows(i, p, func(q episteme.Point) bool { return sys.Exists(v, q) })
	case QueryKnowsCK:
		resp.Holds = sys.KnowsCK(i, p, v)
	case QueryNonfaulty:
		resp.Holds = sys.Nonfaulty(i, p)
	case QueryDecided:
		d := sys.DecidedVal(i, p)
		resp.Decided = -1
		if d.IsSet() {
			resp.Decided = int(d)
		}
		resp.Holds = d.IsSet() && d == v
	default:
		http.Error(w, fmt.Sprintf("unknown query %q", req.Query), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// --- system resolution -----------------------------------------------------

// system resolves the stack's full interpreted System through the LRU:
// a hit is free, a cold key builds once under the build semaphore (and
// singleflight — concurrent identical queries share the one build) with
// every scenario the result cache can answer skipped. Stored Systems
// are always fully expanded, never quotiented, so every query surface
// sees the complete sweep.
func (s *Server) system(ctx context.Context, stack core.Stack, par int) (*episteme.System, error) {
	key := fmt.Sprintf("%s/%d/%d/%d", stack.VersionDigest(s.cfg.Fingerprint), stack.N, stack.T, stack.Horizon())
	return s.lru.get(ctx, key, func(ctx context.Context) (*episteme.System, error) {
		// The build semaphore bounds concurrent builds across ALL keys;
		// respect cancellation while queued.
		select {
		case s.builds <- struct{}{}:
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
		defer func() { <-s.builds }()

		t0 := time.Now()
		ec := episteme.ContextFor(stack)
		opts := []episteme.Option{episteme.WithParallelism(par)}
		if _, ok := ec.Exchange.(model.KeyPermuter); s.cfg.Quotient && ok {
			// Quotient is best-effort: only exchanges whose keys can cross
			// an agent relabeling (model.KeyPermuter) support it; the rest
			// build the full system directly.
			opts = append(opts, episteme.WithQuotient())
		}
		if s.cfg.Cache != nil {
			opts = append(opts, episteme.WithCache(s.cfg.Cache, s.cfg.Fingerprint))
		}
		sys, err := episteme.BuildSystem(ctx, ec, stack.Action, opts...)
		if err != nil {
			return nil, err
		}
		if sys.Quotiented() {
			// Expand once at build time: the stored System answers every
			// later query without re-expansion, and its verdicts are
			// bit-identical to an unquotiented build's.
			sys, err = episteme.ExpandQuotient(ctx, sys, ec)
			if err != nil {
				return nil, err
			}
		}
		s.met.buildSeconds.observe(time.Since(t0).Seconds())
		s.cfg.Logf("serve: built system %s n=%d t=%d h=%d (%d runs, %.3fs)",
			stack.Name, stack.N, stack.T, stack.Horizon(), len(sys.Runs), time.Since(t0).Seconds())
		return sys, nil
	})
}

// --- health and metrics ----------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w, len(s.inflight), s.resultCacheStats())
}

// resultCacheStats snapshots the configured result cache's counters
// when the store can report them (internal/cache's Cache, Client, and
// Tiered all can).
func (s *Server) resultCacheStats() *rescache.Stats {
	if statser, ok := s.cfg.Cache.(interface{ Stats() rescache.Stats }); ok {
		st := statser.Stats()
		return &st
	}
	return nil
}
