package registry

import (
	"strings"
	"testing"
)

// TestBuiltinsResolve checks that every registered stack resolves to
// constructible, mutually compatible components.
func TestBuiltinsResolve(t *testing.T) {
	names := StackNames()
	want := []string{"basic", "fip", "fip+pmin", "fip-nock", "min", "naive"}
	if len(names) != len(want) {
		t.Fatalf("StackNames() = %v, want %v", names, want)
	}
	for i, name := range want {
		if names[i] != name {
			t.Fatalf("StackNames() = %v, want %v", names, want)
		}
	}
	for _, name := range names {
		info, err := Stack(name)
		if err != nil {
			t.Fatalf("Stack(%q): %v", name, err)
		}
		ex, act, err := Compose(info.Exchange, info.Action, 4, 1)
		if err != nil {
			t.Fatalf("Compose(%q, %q): %v", info.Exchange, info.Action, err)
		}
		if ex.N() != 4 {
			t.Errorf("stack %q: exchange built for %d agents, want 4", name, ex.N())
		}
		if act.Name() == "" || info.Description == "" {
			t.Errorf("stack %q: missing action name or description", name)
		}
	}
}

func TestExchangeAndActionNames(t *testing.T) {
	ex := ExchangeNames()
	wantEx := []string{"basic", "fip", "min", "report"}
	if strings.Join(ex, ",") != strings.Join(wantEx, ",") {
		t.Errorf("ExchangeNames() = %v, want %v", ex, wantEx)
	}
	act := ActionNames()
	wantAct := []string{"pbasic", "pmin", "pnaive", "popt", "popt-nock"}
	if strings.Join(act, ",") != strings.Join(wantAct, ",") {
		t.Errorf("ActionNames() = %v, want %v", act, wantAct)
	}
}

func TestComposeRejectsIncompatiblePairings(t *testing.T) {
	// Pbasic needs the #1 counter of Ebasic states; Popt needs Efip
	// graphs; Pnaive needs the Ereport heard0 latch.
	bad := [][2]string{
		{"min", "pbasic"},
		{"min", "popt"},
		{"basic", "popt-nock"},
		{"fip", "pnaive"},
		{"report", "pbasic"},
	}
	for _, pair := range bad {
		if _, _, err := Compose(pair[0], pair[1], 4, 1); err == nil {
			t.Errorf("Compose(%q, %q) accepted an incompatible pairing", pair[0], pair[1])
		}
	}
	// Pmin reads only guaranteed components: every exchange accepts it.
	for _, exName := range ExchangeNames() {
		if _, _, err := Compose(exName, "pmin", 4, 1); err != nil {
			t.Errorf("Compose(%q, \"pmin\"): %v", exName, err)
		}
	}
}

func TestUnknownNamesListAlternatives(t *testing.T) {
	if _, err := Stack("bogus"); err == nil || !strings.Contains(err.Error(), "fip+pmin") {
		t.Errorf("Stack(bogus) error should list known names, got %v", err)
	}
	if _, err := Exchange("bogus"); err == nil || !strings.Contains(err.Error(), "report") {
		t.Errorf("Exchange(bogus) error should list known names, got %v", err)
	}
	if _, err := Action("bogus"); err == nil || !strings.Contains(err.Error(), "popt-nock") {
		t.Errorf("Action(bogus) error should list known names, got %v", err)
	}
	if _, _, err := Compose("bogus", "pmin", 3, 1); err == nil {
		t.Error("Compose with unknown exchange accepted")
	}
	if _, _, err := Compose("min", "bogus", 3, 1); err == nil {
		t.Error("Compose with unknown action accepted")
	}
}

func TestStackForCanonicalName(t *testing.T) {
	info, ok := StackFor("fip", "pmin")
	if !ok || info.Name != "fip+pmin" {
		t.Errorf("StackFor(fip, pmin) = %+v, %v; want the fip+pmin stack", info, ok)
	}
	if _, ok := StackFor("basic", "pmin"); ok {
		t.Error("StackFor(basic, pmin) found a stack; the pairing is ad-hoc")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate exchange registration did not panic")
		}
	}()
	RegisterExchange(ExchangeInfo{Name: "min", New: exchanges["min"].New})
}

func TestInvalidRegistrationPanics(t *testing.T) {
	cases := []func(){
		func() { RegisterExchange(ExchangeInfo{Name: "nameless"}) },
		func() { RegisterAction(ActionInfo{Name: "nameless"}) },
		func() { RegisterStack(StackInfo{Name: "dangling", Exchange: "bogus", Action: "pmin"}) },
		func() { RegisterStack(StackInfo{Name: "illtyped", Exchange: "min", Action: "popt"}) },
	}
	for i, reg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid registration did not panic", i)
				}
			}()
			reg()
		}()
	}
}
