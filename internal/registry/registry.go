// Package registry is the catalogue of the reproduction's protocol
// components. The paper treats a protocol as a *pair* ⟨information
// exchange E, action protocol P⟩ and asks which pairings are optimal
// (Corollaries 6.7, 7.8); the registry makes that pairing a first-class,
// name-addressable operation. Every information-exchange protocol, every
// action protocol, and every named stack (pairing) the repository knows
// about is registered here under a stable name, so the library facade,
// the command-line tools, and the experiment harness all resolve names
// against a single source of truth and can never drift apart.
//
// Exchanges and actions carry a state *family*: action protocols read
// exchange-specific state components (P_basic needs Ebasic's #1 counter,
// P_opt needs Efip's communication graph), so Compose validates that a
// pairing is well-typed before any agent panics on a state downcast.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/action"
	"repro/internal/exchange"
	"repro/internal/model"
)

// Family identifies the local-state family an exchange produces. Action
// protocols declare which families they can act on.
type Family string

// The built-in state families.
const (
	FamilyMin    Family = "min"    // Emin states: ⟨time, init, decided, jd⟩
	FamilyBasic  Family = "basic"  // Ebasic states: + the #1 counter
	FamilyFIP    Family = "fip"    // Efip states: + the communication graph
	FamilyReport Family = "report" // Ereport states: + the heard0 latch
)

// ExchangeInfo describes a registered information-exchange protocol.
type ExchangeInfo struct {
	// Name is the registry name ("min", "basic", "fip", "report").
	Name string
	// Description is a one-line human summary for CLI help.
	Description string
	// Family is the state family the exchange produces.
	Family Family
	// New constructs the exchange for n agents.
	New func(n int) model.Exchange
}

// ActionInfo describes a registered action protocol.
type ActionInfo struct {
	// Name is the registry name ("pmin", "pbasic", "popt", ...).
	Name string
	// Description is a one-line human summary for CLI help.
	Description string
	// Families lists the state families the protocol can act on; empty
	// means any family (the protocol only reads the components every EBA
	// context guarantees).
	Families []Family
	// New constructs the protocol for n agents and failure bound t.
	New func(n, t int) model.ActionProtocol
}

// StackInfo describes a registered named pairing ⟨exchange, action⟩.
type StackInfo struct {
	// Name is the stack name ("min", "basic", "fip", "fip+pmin", ...).
	Name string
	// Description is a one-line human summary for CLI help.
	Description string
	// Exchange and Action are registry names of the components.
	Exchange, Action string
	// Program names the knowledge-based program the stack's action
	// protocol implements over its exchange ("P0" or "P1"), or "" when it
	// implements neither (naive, fip+pmin). Model-checking tools use this
	// to decide what to check a stack against.
	Program string
}

var (
	mu        sync.RWMutex
	exchanges = map[string]ExchangeInfo{}
	actions   = map[string]ActionInfo{}
	stacks    = map[string]StackInfo{}
)

// RegisterExchange adds an exchange to the registry. It panics on an
// empty name, a nil constructor, or a duplicate registration —
// registration happens at init time, so these are programming errors.
func RegisterExchange(info ExchangeInfo) {
	if info.Name == "" || info.New == nil {
		panic("registry: RegisterExchange needs a name and a constructor")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := exchanges[info.Name]; dup {
		panic(fmt.Sprintf("registry: exchange %q registered twice", info.Name))
	}
	exchanges[info.Name] = info
}

// RegisterAction adds an action protocol to the registry. Panics as
// RegisterExchange does.
func RegisterAction(info ActionInfo) {
	if info.Name == "" || info.New == nil {
		panic("registry: RegisterAction needs a name and a constructor")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := actions[info.Name]; dup {
		panic(fmt.Sprintf("registry: action %q registered twice", info.Name))
	}
	actions[info.Name] = info
}

// RegisterStack adds a named pairing to the registry. Both components
// must already be registered and compatible; panics otherwise.
func RegisterStack(info StackInfo) {
	if info.Name == "" {
		panic("registry: RegisterStack needs a name")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := stacks[info.Name]; dup {
		panic(fmt.Sprintf("registry: stack %q registered twice", info.Name))
	}
	ex, ok := exchanges[info.Exchange]
	if !ok {
		panic(fmt.Sprintf("registry: stack %q uses unregistered exchange %q", info.Name, info.Exchange))
	}
	act, ok := actions[info.Action]
	if !ok {
		panic(fmt.Sprintf("registry: stack %q uses unregistered action %q", info.Name, info.Action))
	}
	if !compatible(act, ex.Family) {
		panic(fmt.Sprintf("registry: stack %q pairs action %q with incompatible exchange %q",
			info.Name, info.Action, info.Exchange))
	}
	stacks[info.Name] = info
}

func compatible(act ActionInfo, fam Family) bool {
	if len(act.Families) == 0 {
		return true
	}
	for _, f := range act.Families {
		if f == fam {
			return true
		}
	}
	return false
}

// Exchange resolves an exchange by name.
func Exchange(name string) (ExchangeInfo, error) {
	mu.RLock()
	defer mu.RUnlock()
	info, ok := exchanges[name]
	if !ok {
		return ExchangeInfo{}, fmt.Errorf("registry: unknown exchange %q (have %s)",
			name, strings.Join(namesLocked(exchanges), ", "))
	}
	return info, nil
}

// Action resolves an action protocol by name.
func Action(name string) (ActionInfo, error) {
	mu.RLock()
	defer mu.RUnlock()
	info, ok := actions[name]
	if !ok {
		return ActionInfo{}, fmt.Errorf("registry: unknown action %q (have %s)",
			name, strings.Join(namesLocked(actions), ", "))
	}
	return info, nil
}

// Stack resolves a named pairing by name.
func Stack(name string) (StackInfo, error) {
	mu.RLock()
	defer mu.RUnlock()
	info, ok := stacks[name]
	if !ok {
		return StackInfo{}, fmt.Errorf("registry: unknown stack %q (have %s)",
			name, strings.Join(namesLocked(stacks), ", "))
	}
	return info, nil
}

// StackFor returns the registered stack that pairs exactly the given
// components, if any — used to give composed stacks their canonical name.
func StackFor(exchangeName, actionName string) (StackInfo, bool) {
	mu.RLock()
	defer mu.RUnlock()
	for _, info := range stacks {
		if info.Exchange == exchangeName && info.Action == actionName {
			return info, true
		}
	}
	return StackInfo{}, false
}

// Compose resolves and constructs a validated ⟨exchange, action⟩ pairing.
func Compose(exchangeName, actionName string, n, t int) (model.Exchange, model.ActionProtocol, error) {
	exInfo, err := Exchange(exchangeName)
	if err != nil {
		return nil, nil, err
	}
	actInfo, err := Action(actionName)
	if err != nil {
		return nil, nil, err
	}
	if !compatible(actInfo, exInfo.Family) {
		return nil, nil, fmt.Errorf("registry: action %q needs a %v-family exchange state, but exchange %q produces %q",
			actionName, actInfo.Families, exchangeName, exInfo.Family)
	}
	return exInfo.New(n), actInfo.New(n, t), nil
}

// ExchangeNames lists the registered exchange names, sorted.
func ExchangeNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked(exchanges)
}

// ActionNames lists the registered action-protocol names, sorted.
func ActionNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked(actions)
}

// StackNames lists the registered stack names, sorted.
func StackNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked(stacks)
}

// Stacks lists the registered stacks, sorted by name.
func Stacks() []StackInfo {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]StackInfo, 0, len(stacks))
	for _, name := range namesLocked(stacks) {
		out = append(out, stacks[name])
	}
	return out
}

func namesLocked[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The paper's components, registered at init time.
func init() {
	RegisterExchange(ExchangeInfo{
		Name:        "min",
		Description: "Emin: broadcast only decide announcements (n² bits per run)",
		Family:      FamilyMin,
		New:         func(n int) model.Exchange { return exchange.NewMin(n) },
	})
	RegisterExchange(ExchangeInfo{
		Name:        "basic",
		Description: "Ebasic: Emin plus first-round init reports and the #1 counter (O(n²t) bits)",
		Family:      FamilyBasic,
		New:         func(n int) model.Exchange { return exchange.NewBasic(n) },
	})
	RegisterExchange(ExchangeInfo{
		Name:        "fip",
		Description: "Efip: full-information exchange of communication graphs (O(n⁴t²) bits)",
		Family:      FamilyFIP,
		New:         func(n int) model.Exchange { return exchange.NewFIP(n) },
	})
	RegisterExchange(ExchangeInfo{
		Name:        "report",
		Description: "Ereport: the introduction's exchange that forwards stale init-0 reports",
		Family:      FamilyReport,
		New:         func(n int) model.Exchange { return exchange.NewReport(n) },
	})

	RegisterAction(ActionInfo{
		Name:        "pmin",
		Description: "Pmin (Thm 6.5): decide 0 on a fresh 0-chain, else 1 at time t+1",
		// Pmin reads only the guaranteed state components, so it runs over
		// any exchange (the fip+pmin baseline relies on this).
		New: func(_, t int) model.ActionProtocol { return action.NewMin(t) },
	})
	RegisterAction(ActionInfo{
		Name:        "pbasic",
		Description: "Pbasic (Thm 6.6): Pmin plus the #1 > n−time early-1 rule",
		Families:    []Family{FamilyBasic},
		New:         func(n, _ int) model.ActionProtocol { return action.NewBasic(n) },
	})
	RegisterAction(ActionInfo{
		Name:        "popt",
		Description: "Popt (Prop 7.9): the polynomial-time optimum over full information",
		Families:    []Family{FamilyFIP},
		New:         func(_, t int) model.ActionProtocol { return action.NewOpt(t) },
	})
	RegisterAction(ActionInfo{
		Name:        "popt-nock",
		Description: "Popt without the common-knowledge guards (P0 over full information)",
		Families:    []Family{FamilyFIP},
		New:         func(_, t int) model.ActionProtocol { return action.NewOptNoCK(t) },
	})
	RegisterAction(ActionInfo{
		Name:        "pnaive",
		Description: "Pnaive: the introduction's eager 0-biased counterexample",
		Families:    []Family{FamilyReport},
		New:         func(_, t int) model.ActionProtocol { return action.NewNaive(t) },
	})

	RegisterStack(StackInfo{
		Name:        "min",
		Description: "⟨Emin, Pmin⟩ — optimal wrt the minimal exchange (Cor 6.7)",
		Exchange:    "min",
		Action:      "pmin",
		Program:     "P0",
	})
	RegisterStack(StackInfo{
		Name:        "basic",
		Description: "⟨Ebasic, Pbasic⟩ — optimal wrt the basic exchange (Cor 6.7)",
		Exchange:    "basic",
		Action:      "pbasic",
		Program:     "P0",
	})
	RegisterStack(StackInfo{
		Name:        "fip",
		Description: "⟨Efip, Popt⟩ — optimal wrt full information (Cor 7.8)",
		Exchange:    "fip",
		Action:      "popt",
		Program:     "P1",
	})
	RegisterStack(StackInfo{
		Name:        "fip+pmin",
		Description: "⟨Efip, Pmin⟩ — full-information costs, minimal decisions (dominated baseline)",
		Exchange:    "fip",
		Action:      "pmin",
	})
	RegisterStack(StackInfo{
		Name:        "fip-nock",
		Description: "⟨Efip, Popt-nock⟩ — the common-knowledge ablation (E15)",
		Exchange:    "fip",
		Action:      "popt-nock",
		Program:     "P0",
	})
	RegisterStack(StackInfo{
		Name:        "naive",
		Description: "⟨Ereport, Pnaive⟩ — the introduction's counterexample (violates Agreement)",
		Exchange:    "report",
		Action:      "pnaive",
	})
}
