package exchange

import (
	"strconv"
	"strings"

	"repro/internal/model"
)

// MinMsg is an Emin message: the single bit an agent broadcasts in the
// round it decides.
type MinMsg struct {
	// V is the decided value.
	V model.Value
}

// Announces reports the decision the message carries (class M0 or M1).
func (m MinMsg) Announces() model.Value { return m.V }

// Bits is 1: the message is a single bit.
func (m MinMsg) Bits() int { return 1 }

// String renders the message.
func (m MinMsg) String() string { return "decide:" + m.V.String() }

// MinState is the Emin local state ⟨time, init, decided, jd⟩.
type MinState struct {
	time    int
	init    model.Value
	decided model.Value
	jd      model.Value
}

// Time returns the state's time component.
func (s MinState) Time() int { return s.time }

// Init returns the agent's initial preference.
func (s MinState) Init() model.Value { return s.init }

// Decided returns the recorded decision, or None.
func (s MinState) Decided() model.Value { return s.decided }

// JustDecided returns the paper's jd component.
func (s MinState) JustDecided() model.Value { return s.jd }

// Key returns the canonical fingerprint of the state.
func (s MinState) Key() string {
	return minKey("min", s.time, s.init, s.decided, s.jd)
}

// minKey builds a canonical key for the simple tuple states.
func minKey(tag string, time int, vs ...model.Value) string {
	var b strings.Builder
	b.WriteString(tag)
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(time))
	for _, v := range vs {
		b.WriteByte(':')
		b.WriteString(v.String())
	}
	return b.String()
}

// Min is the minimal information-exchange protocol Emin(n).
type Min struct {
	scratchless
	n       int
	initial [2]model.State
}

// NewMin returns Emin for n agents.
func NewMin(n int) *Min {
	if n <= 0 {
		panic("exchange: NewMin with n <= 0")
	}
	e := &Min{n: n}
	// The two possible time-0 states, interned so Initial never boxes on
	// the sweep hot path (states are immutable values).
	e.initial[0] = MinState{init: model.Zero, decided: model.None, jd: model.None}
	e.initial[1] = MinState{init: model.One, decided: model.None, jd: model.None}
	return e
}

// Name returns "Emin".
func (e *Min) Name() string { return "Emin" }

// N is the number of agents.
func (e *Min) N() int { return e.n }

// Initial returns ⟨0, init, ⊥, ⊥⟩.
func (e *Min) Initial(_ model.AgentID, init model.Value) model.State {
	if init.IsSet() {
		return e.initial[init]
	}
	return MinState{init: init, decided: model.None, jd: model.None}
}

// Messages broadcasts the decided bit in a deciding round and stays silent
// otherwise (μ of Emin).
func (e *Min) Messages(i model.AgentID, s model.State, a model.Action) []model.Message {
	return e.MessagesInto(i, s, a, make([]model.Message, e.n))
}

// MessagesInto is Messages broadcasting into the caller's slice.
func (e *Min) MessagesInto(_ model.AgentID, _ model.State, a model.Action, out []model.Message) []model.Message {
	var msg model.Message
	if d := a.Decision(); d.IsSet() {
		msg = MinMsg{V: d}
	}
	for j := range out {
		out[j] = msg
	}
	return out
}

// UpdateScratch is Update; Emin's δ allocates nothing, so there is no
// scratch to draw from.
func (e *Min) UpdateScratch(i model.AgentID, s model.State, a model.Action, received []model.Message, _ model.Scratch) model.State {
	return e.Update(i, s, a, received)
}

// Update advances time, records the decision taken this round, and sets jd
// from received decide announcements, preferring 0 (the program tests the
// 0 branch first).
func (e *Min) Update(_ model.AgentID, s model.State, a model.Action, received []model.Message) model.State {
	st := s.(MinState)
	st.time++
	if d := a.Decision(); d.IsSet() {
		st.decided = d
	}
	st.jd = announcedValue(received)
	return st
}

// announcedValue extracts the jd observation from a round's messages:
// Zero if any message announces 0, else One if any announces 1, else None.
func announcedValue(received []model.Message) model.Value {
	jd := model.None
	for _, m := range received {
		if m == nil {
			continue
		}
		switch m.Announces() {
		case model.Zero:
			return model.Zero
		case model.One:
			jd = model.One
		}
	}
	return jd
}
