package exchange

import (
	"strconv"

	"repro/internal/model"
)

// BasicMsgKind distinguishes the three Ebasic messages.
type BasicMsgKind uint8

// Ebasic message kinds.
const (
	// BasicDecide0 announces a 0 decision (class M0).
	BasicDecide0 BasicMsgKind = iota + 1
	// BasicDecide1 announces a 1 decision (class M1).
	BasicDecide1
	// BasicInit1 is the (init,1) message (class M2).
	BasicInit1
)

// BasicMsg is an Ebasic message.
type BasicMsg struct {
	// Kind selects among the three message forms.
	Kind BasicMsgKind
}

// Announces reports the decision the message carries, None for (init,1).
func (m BasicMsg) Announces() model.Value {
	switch m.Kind {
	case BasicDecide0:
		return model.Zero
	case BasicDecide1:
		return model.One
	default:
		return model.None
	}
}

// Bits is 2: three message kinds need two bits.
func (m BasicMsg) Bits() int { return 2 }

// String renders the message.
func (m BasicMsg) String() string {
	switch m.Kind {
	case BasicDecide0:
		return "decide:0"
	case BasicDecide1:
		return "decide:1"
	default:
		return "(init,1)"
	}
}

// BasicState is the Ebasic local state ⟨time, init, decided, jd, #1⟩.
type BasicState struct {
	time    int
	init    model.Value
	decided model.Value
	jd      model.Value
	numOnes int
}

// Time returns the state's time component.
func (s BasicState) Time() int { return s.time }

// Init returns the agent's initial preference.
func (s BasicState) Init() model.Value { return s.init }

// Decided returns the recorded decision, or None.
func (s BasicState) Decided() model.Value { return s.decided }

// JustDecided returns the paper's jd component.
func (s BasicState) JustDecided() model.Value { return s.jd }

// NumOnes is the paper's #1: how many (init,1) messages arrived in the
// last round (0 once the agent has decided).
func (s BasicState) NumOnes() int { return s.numOnes }

// Key returns the canonical fingerprint of the state.
func (s BasicState) Key() string {
	return minKey("basic", s.time, s.init, s.decided, s.jd) + ":" + strconv.Itoa(s.numOnes)
}

// Basic is the basic information-exchange protocol Ebasic(n).
type Basic struct {
	scratchless
	n       int
	initial [2]model.State
}

// NewBasic returns Ebasic for n agents.
func NewBasic(n int) *Basic {
	if n <= 0 {
		panic("exchange: NewBasic with n <= 0")
	}
	e := &Basic{n: n}
	// Interned time-0 states (see Min.Initial).
	e.initial[0] = BasicState{init: model.Zero, decided: model.None, jd: model.None}
	e.initial[1] = BasicState{init: model.One, decided: model.None, jd: model.None}
	return e
}

// Name returns "Ebasic".
func (e *Basic) Name() string { return "Ebasic" }

// N is the number of agents.
func (e *Basic) N() int { return e.n }

// Initial returns ⟨0, init, ⊥, ⊥, 0⟩.
func (e *Basic) Initial(_ model.AgentID, init model.Value) model.State {
	if init.IsSet() {
		return e.initial[init]
	}
	return BasicState{init: init, decided: model.None, jd: model.None}
}

// Messages broadcasts the decided bit in a deciding round; an undecided,
// unprompted agent with initial preference 1 broadcasts (init,1);
// otherwise the agent is silent (μ of Ebasic).
func (e *Basic) Messages(i model.AgentID, s model.State, a model.Action) []model.Message {
	return e.MessagesInto(i, s, a, make([]model.Message, e.n))
}

// MessagesInto is Messages broadcasting into the caller's slice.
func (e *Basic) MessagesInto(_ model.AgentID, s model.State, a model.Action, out []model.Message) []model.Message {
	var msg model.Message
	switch d := a.Decision(); {
	case d == model.Zero:
		msg = BasicMsg{Kind: BasicDecide0}
	case d == model.One:
		msg = BasicMsg{Kind: BasicDecide1}
	default:
		st := s.(BasicState)
		if st.init == model.One && st.decided == model.None && st.jd == model.None {
			msg = BasicMsg{Kind: BasicInit1}
		}
	}
	for j := range out {
		out[j] = msg
	}
	return out
}

// UpdateScratch is Update; Ebasic's δ allocates nothing, so there is no
// scratch to draw from.
func (e *Basic) UpdateScratch(i model.AgentID, s model.State, a model.Action, received []model.Message, _ model.Scratch) model.State {
	return e.Update(i, s, a, received)
}

// Update advances time, records decisions and jd as in Emin, and sets #1
// to the number of (init,1) messages received this round — unless the
// agent has decided (including this round) or received a decide
// announcement, in which case #1 is 0.
func (e *Basic) Update(_ model.AgentID, s model.State, a model.Action, received []model.Message) model.State {
	st := s.(BasicState)
	st.time++
	if d := a.Decision(); d.IsSet() {
		st.decided = d
	}
	st.jd = announcedValue(received)
	st.numOnes = 0
	if st.decided == model.None && st.jd == model.None {
		for _, m := range received {
			if bm, ok := m.(BasicMsg); ok && bm.Kind == BasicInit1 {
				st.numOnes++
			}
		}
	}
	return st
}
