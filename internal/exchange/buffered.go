package exchange

import "repro/internal/model"

// scratchless supplies the no-op scratch half of model.BufferedExchange
// for exchanges whose δ allocates nothing: Emin, Ebasic, and Ereport
// carry their whole state in a few machine words, so their buffered path
// is MessagesInto alone.
type scratchless struct{}

// AcquireScratch returns nil: there is no scratch to draw from.
func (scratchless) AcquireScratch() model.Scratch { return nil }

// ReleaseScratch is a no-op.
func (scratchless) ReleaseScratch(model.Scratch) {}
