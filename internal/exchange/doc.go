// Package exchange implements the paper's information-exchange protocols:
//
//   - Min: the minimal exchange Emin(n) of Section 6 — agents are silent
//     except in the round they decide, when they broadcast the decided bit.
//   - Basic: the basic exchange Ebasic(n) of Section 6 — additionally,
//     undecided agents with initial preference 1 broadcast (init,1) every
//     round, and states carry the counter #1 of such messages received in
//     the last round.
//   - Report: a small extension of Min in which agents with initial
//     preference 0 keep broadcasting (init,0). It is the substrate for the
//     introduction's counterexample showing that deciding 0 eagerly on
//     hearing about a 0 is unsafe under omission failures.
//   - FIP: the full-information exchange Efip(n) of Section 7 / A.2.7,
//     with communication graphs as both local states and messages.
//
// Every exchange satisfies the EBA-context conventions of Section 5: local
// states carry ⟨time, init, decided, jd⟩, time advances by one each round,
// and the message classes M0 (deciding 0), M1 (deciding 1), and M2 (other)
// are disjoint, exposed through Message.Announces.
package exchange
