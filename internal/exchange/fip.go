package exchange

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/model"
)

// FIPMsg is a full-information message: the sender's entire communication
// graph, tagged with the decision class required of every EBA context.
// The graph is shared by pointer and must be treated as immutable by
// recipients; FIP.Update never mutates a received graph.
type FIPMsg struct {
	// G is the sender's communication graph at sending time.
	G *graph.Graph
	// Announce is the decision the sender takes this round, or None.
	Announce model.Value
}

// Announces reports the decision class (M0/M1/M2) of the message.
func (m FIPMsg) Announces() model.Value { return m.Announce }

// Bits is the wire size of the carried graph (2 bits per label). This is
// the O(n²t)-bits-per-message cost that makes a full run of the
// full-information protocol cost O(n⁴t²) bits (Section 8).
func (m FIPMsg) Bits() int { return m.G.Bits() }

// String renders the message compactly.
func (m FIPMsg) String() string {
	if m.Announce.IsSet() {
		return "fip[decide:" + m.Announce.String() + "]"
	}
	return "fip"
}

// FIPState is the full-information local state: the agent's communication
// graph plus cached ⟨init, decided, jd⟩ components. Following Section 7's
// non-standard full-information context, decided and jd are *not* part of
// the knowledge fingerprint: they are redundant, being derivable from the
// graph and the (deterministic) protocol, and excluding them makes
// corresponding runs of different action protocols state-identical.
//
// States are handled by pointer: boxing a *FIPState into model.State
// copies one word instead of heap-allocating a 40-byte box per agent per
// round, and the buffered path bump-allocates the structs from the same
// scratch epoch as the graphs they reference. Callers must treat the
// pointed-to state as immutable.
type FIPState struct {
	time    int
	init    model.Value
	decided model.Value
	jd      model.Value
	g       *graph.Graph
}

// Time returns the state's time component.
func (s *FIPState) Time() int { return s.time }

// Init returns the agent's initial preference.
func (s *FIPState) Init() model.Value { return s.init }

// Decided returns the cached decision, or None.
func (s *FIPState) Decided() model.Value { return s.decided }

// JustDecided returns the cached jd observation.
func (s *FIPState) JustDecided() model.Value { return s.jd }

// Graph returns the agent's communication graph. Callers must not mutate
// it.
func (s *FIPState) Graph() *graph.Graph { return s.g }

// Key is the graph's fingerprint: full information, nothing else.
func (s *FIPState) Key() string { return s.g.Key() }

// DetachState freezes the state for unbounded retention: if its graph is
// arena-backed the arena is pinned (graph.Graph.Detach), so no scratch
// Reset will ever recycle the memory under a live trace or interned
// state row. Pinning the arena also pins the scratch's state slab — the
// struct s points to shares the epoch (see fipScratch.Reset). On
// plain-heap states it is a no-op.
func (s *FIPState) DetachState() { s.g.Detach() }

// FIP is the full-information exchange Efip(n) of Section A.2.7.
type FIP struct {
	n int
}

// NewFIP returns Efip for n agents.
func NewFIP(n int) *FIP {
	if n <= 0 {
		panic("exchange: NewFIP with n <= 0")
	}
	return &FIP{n: n}
}

// Name returns "Efip".
func (e *FIP) Name() string { return "Efip" }

// N is the number of agents.
func (e *FIP) N() int { return e.n }

// Initial returns the time-0 state: a graph recording only the agent's own
// initial preference.
func (e *FIP) Initial(i model.AgentID, init model.Value) model.State {
	g := graph.New(i, e.n)
	g.SetPref(i, init)
	return &FIPState{init: init, decided: model.None, jd: model.None, g: g}
}

// Messages broadcasts the agent's graph to everyone, every round, tagged
// with this round's decision class.
func (e *FIP) Messages(i model.AgentID, s model.State, a model.Action) []model.Message {
	return e.MessagesInto(i, s, a, make([]model.Message, e.n))
}

// MessagesInto is Messages broadcasting into the caller's slice: the
// graph is shared by pointer and the FIPMsg is boxed once, so the
// per-round send side of the full-information exchange allocates exactly
// one interface header.
func (e *FIP) MessagesInto(_ model.AgentID, s model.State, a model.Action, out []model.Message) []model.Message {
	st := s.(*FIPState)
	var msg model.Message = FIPMsg{G: st.g, Announce: a.Decision()}
	for j := range out {
		out[j] = msg
	}
	return out
}

// PermuteKey rewrites an interned fip state key under an agent
// relabeling (model.KeyPermuter): the full-information key is the graph
// key, so the rewrite is graph.PermuteKey.
func (e *FIP) PermuteKey(key string, perm []model.AgentID) (string, error) {
	return graph.PermuteKey(key, perm)
}

// fipStateSlab bump-allocates FIPState structs in per-run epochs, with
// the same rewind-or-abandon discipline as graph.Arena's slabs: Reset
// reuses the chunk in place unless a state escaped the epoch, in which
// case the chunk is left to the garbage collector (the escaping states
// keep it alive) and a fresh one is carved, sized to the high-water mark.
type fipStateSlab struct {
	cur  []FIPState
	used int
	hint int
}

// fipStateSlabMin is the floor chunk size; kept small because an escaped
// epoch pins its whole chunk (see the graph.Arena granularity note).
const fipStateSlabMin = 16

// alloc carves one state struct. Contents are stale after a rewind;
// callers fully overwrite the struct.
func (s *fipStateSlab) alloc() *FIPState {
	if len(s.cur) == cap(s.cur) {
		size := s.hint
		if d := 2 * s.used; d > size {
			size = d
		}
		if size < fipStateSlabMin {
			size = fipStateSlabMin
		}
		s.cur = make([]FIPState, 0, size)
	}
	s.cur = s.cur[:len(s.cur)+1]
	s.used++
	return &s.cur[len(s.cur)-1]
}

// reset closes the epoch, folding usage into the high-water hint exactly
// like slab.reset in the graph arena.
func (s *fipStateSlab) reset(abandon bool) {
	if s.used > s.hint {
		s.hint = s.used
	} else {
		s.hint -= (s.hint - s.used) / 4
	}
	s.used = 0
	if abandon {
		s.cur = nil
		return
	}
	s.cur = s.cur[:0]
}

// fipScratch is the per-worker scratch of the buffered full-information
// exchange: the arena the per-round graph clones are bump-allocated in,
// plus the slab the state structs themselves come from.
type fipScratch struct {
	arena  *graph.Arena
	states fipStateSlab
}

// Reset recycles the scratch. A state escapes the epoch exactly when its
// graph does (DetachState pins the graph arena, and every slab state
// references an arena graph), so the arena's escape flag — read before
// Reset clears it — also decides whether the state slab is abandoned.
func (s *fipScratch) Reset() {
	s.states.reset(s.arena.Escaped())
	s.arena.Reset()
}

// fipScratchPool recycles scratch across acquire/release cycles; the
// arenas and state slabs inside keep their memory only when no state
// escaped, so pooling never aliases retained memory.
var fipScratchPool = sync.Pool{
	New: func() any { return &fipScratch{arena: graph.NewArena()} },
}

// AcquireScratch returns an arena-backed scratch for one worker.
func (e *FIP) AcquireScratch() model.Scratch { return fipScratchPool.Get().(*fipScratch) }

// ReleaseScratch returns the scratch to the pool.
func (e *FIP) ReleaseScratch(sc model.Scratch) {
	if fs, ok := sc.(*fipScratch); ok && fs != nil {
		fipScratchPool.Put(fs)
	}
}

// Update advances time, extends the graph by one round, records which
// agents delivered this round (Sent/NotSent labels on the new in-edges),
// merges every received graph, and refreshes the cached decided/jd
// components. The agent's own in-edge is always Sent: self-delivery is
// memory and is not subject to the adversary (footnote 3 of the paper).
func (e *FIP) Update(i model.AgentID, s model.State, a model.Action, received []model.Message) model.State {
	return e.UpdateScratch(i, s, a, received, nil)
}

// UpdateScratch is Update with the per-round graph and the state struct
// built in the scratch (merge-in-place, as always): the zero-allocation
// δ of the buffered path. With a nil scratch it is exactly Update. The
// produced state references scratch memory and must be Detach-ed before
// it outlives the next Scratch.Reset; the engine does this for
// everything reachable from a returned Result.
func (e *FIP) UpdateScratch(i model.AgentID, s model.State, a model.Action, received []model.Message, sc model.Scratch) model.State {
	st := s.(*FIPState)
	fs, _ := sc.(*fipScratch)
	var ng *graph.Graph
	if fs != nil {
		ng = st.g.CloneExtendedIn(fs.arena)
	} else {
		ng = st.g.CloneExtended()
	}
	for j := 0; j < e.n; j++ {
		jj := model.AgentID(j)
		if jj == i {
			ng.SetEdge(st.time, i, i, graph.Sent)
			continue
		}
		if received[j] == nil {
			ng.SetEdge(st.time, jj, i, graph.NotSent)
			continue
		}
		ng.SetEdge(st.time, jj, i, graph.Sent)
		ng.Merge(received[j].(FIPMsg).G)
	}
	var ns *FIPState
	if fs != nil {
		ns = fs.states.alloc()
	} else {
		ns = new(FIPState)
	}
	*ns = FIPState{
		time:    st.time + 1,
		init:    st.init,
		decided: st.decided,
		jd:      announcedValue(received),
		g:       ng,
	}
	if d := a.Decision(); d.IsSet() {
		ns.decided = d
	}
	return ns
}
