package exchange

import (
	"testing"

	"repro/internal/model"
)

func TestMinStateAccessors(t *testing.T) {
	e := NewMin(3)
	s := e.Initial(0, model.One).(MinState)
	if s.Time() != 0 || s.Init() != model.One || s.Decided() != model.None || s.JustDecided() != model.None {
		t.Errorf("unexpected initial state %+v", s)
	}
}

func TestMinMessagesOnlyOnDecide(t *testing.T) {
	e := NewMin(3)
	s := e.Initial(0, model.One)
	for _, m := range e.Messages(0, s, model.Noop) {
		if m != nil {
			t.Error("noop round sent a message")
		}
	}
	out := e.Messages(0, s, model.Decide1)
	for j, m := range out {
		if m == nil {
			t.Fatalf("decide round sent no message to %d", j)
		}
		if m.Announces() != model.One || m.Bits() != 1 {
			t.Errorf("message %v: announces %v bits %d", m, m.Announces(), m.Bits())
		}
	}
}

func TestMinUpdateJDPrefersZero(t *testing.T) {
	e := NewMin(3)
	s := e.Initial(0, model.One)
	recv := []model.Message{MinMsg{V: model.One}, MinMsg{V: model.Zero}, nil}
	ns := e.Update(0, s, model.Noop, recv).(MinState)
	if ns.Time() != 1 {
		t.Errorf("time = %d, want 1", ns.Time())
	}
	if ns.JustDecided() != model.Zero {
		t.Errorf("jd = %v, want 0 (zero wins)", ns.JustDecided())
	}
}

func TestMinUpdateRecordsDecision(t *testing.T) {
	e := NewMin(2)
	s := e.Initial(0, model.Zero)
	ns := e.Update(0, s, model.Decide0, []model.Message{nil, nil}).(MinState)
	if ns.Decided() != model.Zero {
		t.Errorf("decided = %v, want 0", ns.Decided())
	}
}

func TestMinKeysDistinguishStates(t *testing.T) {
	e := NewMin(2)
	a := e.Initial(0, model.Zero)
	b := e.Initial(0, model.One)
	if a.Key() == b.Key() {
		t.Error("different inits, same key")
	}
	c := e.Update(0, a, model.Noop, []model.Message{nil, nil})
	if a.Key() == c.Key() {
		t.Error("different times, same key")
	}
}

func TestBasicInit1Broadcast(t *testing.T) {
	e := NewBasic(3)
	s := e.Initial(0, model.One)
	out := e.Messages(0, s, model.Noop)
	for _, m := range out {
		bm, ok := m.(BasicMsg)
		if !ok || bm.Kind != BasicInit1 {
			t.Fatalf("expected (init,1) broadcast, got %v", m)
		}
		if bm.Announces() != model.None {
			t.Error("(init,1) should announce nothing")
		}
		if bm.Bits() != 2 {
			t.Errorf("bits = %d, want 2", bm.Bits())
		}
	}
	// An init-0 agent stays silent on noop.
	s0 := e.Initial(0, model.Zero)
	for _, m := range e.Messages(0, s0, model.Noop) {
		if m != nil {
			t.Error("init-0 agent broadcast on noop")
		}
	}
}

func TestBasicNoInit1AfterDecisionOrJD(t *testing.T) {
	e := NewBasic(2)
	s := e.Initial(0, model.One)
	// After deciding, noop rounds are silent.
	s1 := e.Update(0, s, model.Decide1, []model.Message{nil, nil})
	for _, m := range e.Messages(0, s1, model.Noop) {
		if m != nil {
			t.Error("decided agent broadcast (init,1)")
		}
	}
	// After observing a decision (jd set), noop rounds are silent.
	s2 := e.Update(0, s, model.Noop, []model.Message{BasicMsg{Kind: BasicDecide1}, nil})
	if s2.(BasicState).JustDecided() != model.One {
		t.Fatal("jd not recorded")
	}
	for _, m := range e.Messages(0, s2, model.Noop) {
		if m != nil {
			t.Error("agent with jd set broadcast (init,1)")
		}
	}
}

func TestBasicNumOnesCounting(t *testing.T) {
	e := NewBasic(4)
	s := e.Initial(0, model.One)
	recv := []model.Message{
		BasicMsg{Kind: BasicInit1},
		BasicMsg{Kind: BasicInit1},
		nil,
		BasicMsg{Kind: BasicInit1},
	}
	ns := e.Update(0, s, model.Noop, recv).(BasicState)
	if ns.NumOnes() != 3 {
		t.Errorf("#1 = %d, want 3", ns.NumOnes())
	}
	// A decide announcement zeroes the counter.
	recv[0] = BasicMsg{Kind: BasicDecide0}
	ns = e.Update(0, s, model.Noop, recv).(BasicState)
	if ns.NumOnes() != 0 {
		t.Errorf("#1 = %d after decide announcement, want 0", ns.NumOnes())
	}
	// Deciding this round zeroes the counter.
	recv[0] = BasicMsg{Kind: BasicInit1}
	ns = e.Update(0, s, model.Decide1, recv).(BasicState)
	if ns.NumOnes() != 0 {
		t.Errorf("#1 = %d after own decision, want 0", ns.NumOnes())
	}
}

func TestBasicKeyIncludesNumOnes(t *testing.T) {
	e := NewBasic(3)
	s := e.Initial(0, model.One)
	a := e.Update(0, s, model.Noop, []model.Message{BasicMsg{Kind: BasicInit1}, nil, nil})
	b := e.Update(0, s, model.Noop, []model.Message{nil, nil, nil})
	if a.Key() == b.Key() {
		t.Error("different #1, same key")
	}
}

func TestReportInit0Broadcast(t *testing.T) {
	e := NewReport(3)
	s := e.Initial(0, model.Zero)
	for _, m := range e.Messages(0, s, model.Noop) {
		rm, ok := m.(ReportMsg)
		if !ok || rm.Kind != ReportInit0 {
			t.Fatalf("expected (init,0), got %v", m)
		}
	}
	// Crucially, the report continues after the agent decided: the late
	// report is what breaks the naive protocol.
	s1 := e.Update(0, s, model.Decide0, []model.Message{nil, nil, nil})
	for _, m := range e.Messages(0, s1, model.Noop) {
		rm, ok := m.(ReportMsg)
		if !ok || rm.Kind != ReportInit0 {
			t.Fatalf("expected post-decision (init,0), got %v", m)
		}
	}
}

func TestReportHeard0Latches(t *testing.T) {
	e := NewReport(2)
	s := e.Initial(0, model.One)
	s1 := e.Update(0, s, model.Noop, []model.Message{nil, ReportMsg{Kind: ReportInit0}})
	if !s1.(ReportState).Heard0() {
		t.Fatal("heard0 not set")
	}
	s2 := e.Update(0, s1, model.Noop, []model.Message{nil, nil})
	if !s2.(ReportState).Heard0() {
		t.Error("heard0 did not latch")
	}
	if s1.Key() == s.Key() {
		t.Error("heard0/time not reflected in key")
	}
}

func TestMessageStrings(t *testing.T) {
	cases := []struct {
		msg  model.Message
		want string
	}{
		{MinMsg{V: model.Zero}, "decide:0"},
		{BasicMsg{Kind: BasicInit1}, "(init,1)"},
		{BasicMsg{Kind: BasicDecide0}, "decide:0"},
		{BasicMsg{Kind: BasicDecide1}, "decide:1"},
		{ReportMsg{Kind: ReportInit0}, "(init,0)"},
		{ReportMsg{Kind: ReportDecide1}, "decide:1"},
	}
	for _, c := range cases {
		if got := c.msg.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.msg, got, c.want)
		}
	}
}

func TestFIPInitialState(t *testing.T) {
	e := NewFIP(3)
	s := e.Initial(1, model.One).(*FIPState)
	if s.Time() != 0 || s.Init() != model.One {
		t.Errorf("unexpected initial state %+v", s)
	}
	if s.Graph().Pref(1) != model.One {
		t.Error("own preference not recorded in graph")
	}
	if s.Graph().Pref(0) != model.None {
		t.Error("other preferences should be unknown")
	}
}

func TestFIPBroadcastsEveryRound(t *testing.T) {
	e := NewFIP(2)
	s := e.Initial(0, model.Zero)
	out := e.Messages(0, s, model.Noop)
	for _, m := range out {
		fm, ok := m.(FIPMsg)
		if !ok {
			t.Fatalf("expected FIPMsg, got %T", m)
		}
		if fm.Announces() != model.None {
			t.Error("noop round should announce nothing")
		}
	}
	out = e.Messages(0, s, model.Decide0)
	if out[1].Announces() != model.Zero {
		t.Error("decide round should announce 0")
	}
}

func TestFIPUpdateRecordsDeliveries(t *testing.T) {
	e := NewFIP(3)
	s0 := e.Initial(0, model.One).(*FIPState)
	s1 := e.Initial(1, model.Zero).(*FIPState)
	// Agent 0 receives from itself and agent 1; agent 2 silent.
	recv := []model.Message{
		FIPMsg{G: s0.Graph()},
		FIPMsg{G: s1.Graph()},
		nil,
	}
	ns := e.Update(0, s0, model.Noop, recv).(*FIPState)
	g := ns.Graph()
	if g.M() != 1 || ns.Time() != 1 {
		t.Fatalf("time/m not advanced: %d/%d", ns.Time(), g.M())
	}
	if g.Edge(0, 1, 0) != 2 { // graph.Sent
		t.Error("delivery from 1 not recorded")
	}
	if g.Edge(0, 2, 0) != 1 { // graph.NotSent
		t.Error("silence of 2 not recorded")
	}
	if g.Edge(0, 0, 0) != 2 {
		t.Error("self edge should always be Sent")
	}
	if g.Pref(1) != model.Zero {
		t.Error("merged preference from 1 lost")
	}
}

func TestFIPSelfOmissionInvisible(t *testing.T) {
	// Footnote 3: dropping one's own message changes nothing. The self
	// in-edge is labeled Sent whether or not the engine delivered it.
	e := NewFIP(2)
	s := e.Initial(0, model.One).(*FIPState)
	other := e.Initial(1, model.One).(*FIPState)
	withSelf := e.Update(0, s, model.Noop,
		[]model.Message{FIPMsg{G: s.Graph()}, FIPMsg{G: other.Graph()}})
	withoutSelf := e.Update(0, s, model.Noop,
		[]model.Message{nil, FIPMsg{G: other.Graph()}})
	if withSelf.Key() != withoutSelf.Key() {
		t.Error("self-omission changed the local state")
	}
}

func TestFIPKeyExcludesDecided(t *testing.T) {
	// Section 7's non-standard context: decided/jd are cached but not part
	// of the knowledge fingerprint.
	e := NewFIP(2)
	s := e.Initial(0, model.One)
	recv := []model.Message{FIPMsg{G: s.(*FIPState).Graph()}, nil}
	a := e.Update(0, s, model.Noop, recv)
	b := e.Update(0, s, model.Decide1, recv)
	if a.(*FIPState).Decided() == b.(*FIPState).Decided() {
		t.Fatal("cached decided should differ")
	}
	if a.Key() != b.Key() {
		t.Error("decided leaked into the FIP state key")
	}
}

// TestBufferedPathMatchesPlain drives every built-in exchange through a
// few rounds and checks the model.BufferedExchange contract: stale
// entries in the MessagesInto target are overwritten, the produced
// messages equal Messages', and UpdateScratch (nil and real scratch
// alike) produces states with the same fingerprint as Update.
func TestBufferedPathMatchesPlain(t *testing.T) {
	exchanges := []model.BufferedExchange{NewMin(3), NewBasic(3), NewReport(3), NewFIP(3)}
	inits := []model.Value{model.One, model.Zero, model.One}
	acts := []model.Action{model.Noop, model.Decide0, model.Decide1}
	for _, ex := range exchanges {
		sc := ex.AcquireScratch()
		if sc != nil {
			sc.Reset()
		}
		states := make([]model.State, 3)
		scStates := make([]model.State, 3)
		for i := range states {
			states[i] = ex.Initial(model.AgentID(i), inits[i])
			scStates[i] = states[i]
		}
		out := make([]model.Message, 3)
		for i := range out {
			out[i] = MinMsg{V: model.One} // stale garbage MessagesInto must clear
		}
		for round := 0; round < 3; round++ {
			// Snapshot the synchronized round: all sends happen from the
			// round's start states.
			outboxes := make([][]model.Message, 3)
			for i := range states {
				a := acts[(i+round)%len(acts)]
				outboxes[i] = ex.Messages(model.AgentID(i), states[i], a)
				got := ex.MessagesInto(model.AgentID(i), states[i], a, out)
				for j := range outboxes[i] {
					if (outboxes[i][j] == nil) != (got[j] == nil) {
						t.Fatalf("%s: MessagesInto entry %d nil-ness differs from Messages", ex.Name(), j)
					}
					if outboxes[i][j] != nil && outboxes[i][j].String() != got[j].String() {
						t.Fatalf("%s: MessagesInto entry %d = %v, Messages = %v", ex.Name(), j, got[j], outboxes[i][j])
					}
				}
			}
			next := make([]model.State, 3)
			scNext := make([]model.State, 3)
			for i := range states {
				a := acts[(i+round)%len(acts)]
				recv := make([]model.Message, 3)
				for j := range recv {
					recv[j] = outboxes[j][i]
				}
				plain := ex.Update(model.AgentID(i), states[i], a, recv)
				viaNil := ex.UpdateScratch(model.AgentID(i), states[i], a, recv, nil)
				viaScratch := ex.UpdateScratch(model.AgentID(i), scStates[i], a, recv, sc)
				if plain.Key() != viaNil.Key() || plain.Key() != viaScratch.Key() {
					t.Fatalf("%s round %d agent %d: Update/UpdateScratch fingerprints diverge", ex.Name(), round, i)
				}
				next[i], scNext[i] = plain, viaScratch
			}
			states, scStates = next, scNext
		}
		ex.ReleaseScratch(sc)
	}
}
