package exchange

import "repro/internal/model"

// Interface compliance.
var (
	_ model.Exchange = (*Min)(nil)
	_ model.Exchange = (*Basic)(nil)
	_ model.Exchange = (*Report)(nil)
	_ model.Exchange = (*FIP)(nil)

	_ model.State = MinState{}
	_ model.State = BasicState{}
	_ model.State = ReportState{}
	_ model.State = FIPState{}

	_ model.Message = MinMsg{}
	_ model.Message = BasicMsg{}
	_ model.Message = ReportMsg{}
	_ model.Message = FIPMsg{}
)
