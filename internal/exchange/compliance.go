package exchange

import "repro/internal/model"

// Interface compliance.
var (
	_ model.Exchange = (*Min)(nil)
	_ model.Exchange = (*Basic)(nil)
	_ model.Exchange = (*Report)(nil)
	_ model.Exchange = (*FIP)(nil)

	// Every built-in exchange opts into the zero-allocation path.
	_ model.BufferedExchange = (*Min)(nil)
	_ model.BufferedExchange = (*Basic)(nil)
	_ model.BufferedExchange = (*Report)(nil)
	_ model.BufferedExchange = (*FIP)(nil)

	_ model.State = MinState{}
	_ model.State = BasicState{}
	_ model.State = ReportState{}
	_ model.State = (*FIPState)(nil)

	// FIPState references arena memory on the buffered path and knows
	// how to freeze itself for retention.
	_ model.Detacher = (*FIPState)(nil)

	// The full-information exchange's keys embed agent identities, so it
	// opts into the symmetry rewrite the quotiented model checker needs.
	_ model.KeyPermuter = (*FIP)(nil)

	_ model.Message = MinMsg{}
	_ model.Message = BasicMsg{}
	_ model.Message = ReportMsg{}
	_ model.Message = FIPMsg{}
)
