package exchange

import "repro/internal/model"

// ReportMsgKind distinguishes the three Ereport messages.
type ReportMsgKind uint8

// Ereport message kinds.
const (
	// ReportDecide0 announces a 0 decision (class M0).
	ReportDecide0 ReportMsgKind = iota + 1
	// ReportDecide1 announces a 1 decision (class M1).
	ReportDecide1
	// ReportInit0 is the (init,0) report (class M2).
	ReportInit0
)

// ReportMsg is an Ereport message.
type ReportMsg struct {
	// Kind selects among the three message forms.
	Kind ReportMsgKind
}

// Announces reports the decision the message carries, None for (init,0).
func (m ReportMsg) Announces() model.Value {
	switch m.Kind {
	case ReportDecide0:
		return model.Zero
	case ReportDecide1:
		return model.One
	default:
		return model.None
	}
}

// Bits is 2: three message kinds need two bits.
func (m ReportMsg) Bits() int { return 2 }

// String renders the message.
func (m ReportMsg) String() string {
	switch m.Kind {
	case ReportDecide0:
		return "decide:0"
	case ReportDecide1:
		return "decide:1"
	default:
		return "(init,0)"
	}
}

// ReportState is the Ereport local state ⟨time, init, decided, jd, heard0⟩.
// heard0 records whether an (init,0) report has ever arrived; it is what
// makes the introduction's "decide 0 as soon as you hear about a 0"
// protocol expressible — and demonstrably unsafe under omission failures.
type ReportState struct {
	time    int
	init    model.Value
	decided model.Value
	jd      model.Value
	heard0  bool
}

// Time returns the state's time component.
func (s ReportState) Time() int { return s.time }

// Init returns the agent's initial preference.
func (s ReportState) Init() model.Value { return s.init }

// Decided returns the recorded decision, or None.
func (s ReportState) Decided() model.Value { return s.decided }

// JustDecided returns the paper's jd component.
func (s ReportState) JustDecided() model.Value { return s.jd }

// Heard0 reports whether an (init,0) report has ever arrived.
func (s ReportState) Heard0() bool { return s.heard0 }

// Key returns the canonical fingerprint of the state.
func (s ReportState) Key() string {
	k := minKey("report", s.time, s.init, s.decided, s.jd)
	if s.heard0 {
		return k + ":h0"
	}
	return k + ":-"
}

// Report is the Ereport information-exchange protocol: Emin plus a
// persistent (init,0) report broadcast by agents with initial preference 0.
type Report struct {
	scratchless
	n       int
	initial [2]model.State
}

// NewReport returns Ereport for n agents.
func NewReport(n int) *Report {
	if n <= 0 {
		panic("exchange: NewReport with n <= 0")
	}
	e := &Report{n: n}
	// Interned time-0 states (see Min.Initial).
	e.initial[0] = ReportState{init: model.Zero, decided: model.None, jd: model.None}
	e.initial[1] = ReportState{init: model.One, decided: model.None, jd: model.None}
	return e
}

// Name returns "Ereport".
func (e *Report) Name() string { return "Ereport" }

// N is the number of agents.
func (e *Report) N() int { return e.n }

// Initial returns ⟨0, init, ⊥, ⊥, false⟩.
func (e *Report) Initial(_ model.AgentID, init model.Value) model.State {
	if init.IsSet() {
		return e.initial[init]
	}
	return ReportState{init: init, decided: model.None, jd: model.None}
}

// Messages broadcasts the decided bit in a deciding round; otherwise an
// agent whose initial preference is 0 broadcasts (init,0) — even after it
// has decided, which is exactly the late-report behavior the introduction
// exploits.
func (e *Report) Messages(i model.AgentID, s model.State, a model.Action) []model.Message {
	return e.MessagesInto(i, s, a, make([]model.Message, e.n))
}

// MessagesInto is Messages broadcasting into the caller's slice.
func (e *Report) MessagesInto(_ model.AgentID, s model.State, a model.Action, out []model.Message) []model.Message {
	var msg model.Message
	switch d := a.Decision(); {
	case d == model.Zero:
		msg = ReportMsg{Kind: ReportDecide0}
	case d == model.One:
		msg = ReportMsg{Kind: ReportDecide1}
	default:
		if s.(ReportState).init == model.Zero {
			msg = ReportMsg{Kind: ReportInit0}
		}
	}
	for j := range out {
		out[j] = msg
	}
	return out
}

// UpdateScratch is Update; Ereport's δ allocates nothing, so there is no
// scratch to draw from.
func (e *Report) UpdateScratch(i model.AgentID, s model.State, a model.Action, received []model.Message, _ model.Scratch) model.State {
	return e.Update(i, s, a, received)
}

// Update advances time, records decisions and jd as in Emin, and latches
// heard0 when an (init,0) report arrives.
func (e *Report) Update(_ model.AgentID, s model.State, a model.Action, received []model.Message) model.State {
	st := s.(ReportState)
	st.time++
	if d := a.Decision(); d.IsSet() {
		st.decided = d
	}
	st.jd = announcedValue(received)
	for _, m := range received {
		if rm, ok := m.(ReportMsg); ok && rm.Kind == ReportInit0 {
			st.heard0 = true
		}
	}
	return st
}
