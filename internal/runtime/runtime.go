// Package runtime executes a protocol stack concurrently: one goroutine
// per agent, exchanging messages through a router goroutine that enforces
// the synchronized-round semantics of Section 3 and injects the failure
// pattern's omissions. It produces a Result identical to the sequential
// engine's for the same configuration — a property the tests check — and
// exists both as a demonstration that the paper's protocols run unchanged
// on a "real" concurrent substrate and as a cross-check on the engine.
package runtime

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/model"
)

// Concurrent is the goroutine-per-agent engine.Executor: Execute is Run.
// A non-nil Buffers opts the run into scratch reuse: each agent goroutine
// draws a pooled per-agent scratch set (double-buffered outboxes, plus —
// when the buffers are arena-backed — the exchange's own scratch, Efip's
// graph arena), and the router reuses one inbox per agent across rounds,
// so WithBufferReuse is as real on the concurrent substrate as on the
// sequential one. Traces are identical either way.
type Concurrent struct{}

// Name returns "concurrent".
func (Concurrent) Name() string { return "concurrent" }

// Execute runs the configuration on the concurrent runtime; a non-nil
// buf enables per-agent scratch reuse, and an arena-backed buf
// (engine.NewArenaBuffers) additionally engages the exchanges' own
// scratch, mirroring the sequential engine's plain/arena distinction.
// The engine.Buffers itself cannot be shared across the n agent
// goroutines, so it serves as the opt-in signal while the actual
// scratch comes from a package pool — every agent acquires and releases
// its own set.
func (Concurrent) Execute(cfg engine.Config, buf *engine.Buffers) (*engine.Result, error) {
	return run(cfg, buf != nil, buf != nil && buf.ArenaBacked())
}

var _ engine.Executor = Concurrent{}

// agentScratch is one agent goroutine's reusable memory: two outbox
// slices used on alternating rounds (the router may still be reading
// round m's outbox while the agent prepares round m+1's; it is
// guaranteed done with round m's before round m+2 — the delivery of the
// round-m+1 inbox happens after the round-m delivery loop completes) and
// the exchange scratch for the buffered δ.
type agentScratch struct {
	outbox [2][]model.Message
}

// agentScratchPool recycles agentScratch values across runs and agents.
var agentScratchPool = sync.Pool{New: func() any { return new(agentScratch) }}

// outboxFor returns the round-m outbox sized for n agents.
func (s *agentScratch) outboxFor(m, n int) []model.Message {
	ob := s.outbox[m%2]
	if cap(ob) < n {
		ob = make([]model.Message, n)
		s.outbox[m%2] = ob
	}
	return ob[:n]
}

// agentReport is what an agent hands the router each round: the action it
// performed and the messages it wants sent.
type agentReport struct {
	id     model.AgentID
	action model.Action
	outbox []model.Message
	state  model.State // the post-round state (sent after the update step)
}

// Run executes the configuration with one goroutine per agent. The result
// is identical to engine.Run's for the same configuration.
func Run(cfg engine.Config) (*engine.Result, error) { return run(cfg, false, false) }

// run is Run with optional scratch reuse; pooled additionally engages
// the exchanges' own scratch (the arenas), matching the sequential
// engine's NewBuffers/NewArenaBuffers split.
func run(cfg engine.Config, reuse, pooled bool) (res *engine.Result, err error) {
	ex, act, pat := cfg.Exchange, cfg.Action, cfg.Pattern
	if ex == nil || act == nil || pat == nil {
		return nil, fmt.Errorf("runtime: Exchange, Action, and Pattern are all required")
	}
	n := ex.N()
	if pat.N() != n {
		return nil, fmt.Errorf("runtime: pattern is for %d agents, exchange for %d", pat.N(), n)
	}
	if len(cfg.Inits) != n {
		return nil, fmt.Errorf("runtime: %d initial values for %d agents", len(cfg.Inits), n)
	}
	for i, v := range cfg.Inits {
		if !v.IsSet() {
			return nil, fmt.Errorf("runtime: agent %d has no initial preference", i)
		}
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = pat.Horizon()
	}
	if horizon < 0 {
		return nil, fmt.Errorf("runtime: negative horizon %d", horizon)
	}
	var bex model.BufferedExchange
	if reuse {
		bex, _ = ex.(model.BufferedExchange)
	}

	res = &engine.Result{
		N:             n,
		Horizon:       horizon,
		Pattern:       pat,
		Inits:         append([]model.Value(nil), cfg.Inits...),
		States:        make([][]model.State, horizon+1),
		Actions:       make([][]model.Action, horizon),
		Decision:      make([]model.Value, n),
		DecisionRound: make([]int, n),
	}
	for i := range res.Decision {
		res.Decision[i] = model.None
	}

	// Channels: agents report actions+outboxes on reportCh, receive their
	// inbox on deliver[i], and report their updated state on stateCh. The
	// done channel is closed if the router aborts, releasing every blocked
	// agent so wg.Wait cannot deadlock.
	reportCh := make(chan agentReport, n)
	stateCh := make(chan agentReport, n)
	deliver := make([]chan []model.Message, n)
	for i := range deliver {
		deliver[i] = make(chan []model.Message, 1)
	}
	errCh := make(chan error, n)
	done := make(chan struct{})

	var wg sync.WaitGroup
	initial := make([]model.State, n)
	for i := 0; i < n; i++ {
		initial[i] = ex.Initial(model.AgentID(i), cfg.Inits[i])
	}
	res.States[0] = append([]model.State(nil), initial...)

	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id model.AgentID, state model.State) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					select {
					case errCh <- fmt.Errorf("runtime: agent %d panicked: %v", id, r):
					default:
					}
				}
			}()
			var scratch *agentScratch
			var exScratch model.Scratch
			if bex != nil {
				scratch = agentScratchPool.Get().(*agentScratch)
				defer agentScratchPool.Put(scratch)
				if pooled {
					exScratch = bex.AcquireScratch()
					if exScratch != nil {
						exScratch.Reset()
						defer bex.ReleaseScratch(exScratch)
					}
				}
			}
			for m := 0; m < horizon; m++ {
				a := act.Act(id, state)
				var out []model.Message
				if bex != nil {
					out = bex.MessagesInto(id, state, a, scratch.outboxFor(m, n))
				} else {
					out = ex.Messages(id, state, a)
				}
				select {
				case reportCh <- agentReport{id: id, action: a, outbox: out}:
				case <-done:
					return
				}
				var inbox []model.Message
				select {
				case inbox = <-deliver[id]:
				case <-done:
					return
				}
				if bex != nil {
					state = bex.UpdateScratch(id, state, a, inbox, exScratch)
					if exScratch != nil {
						// The state escapes into the Result's trace
						// while this goroutine's scratch is recycled on
						// release: freeze it.
						if d, ok := state.(model.Detacher); ok {
							d.DetachState()
						}
					}
				} else {
					state = ex.Update(id, state, a, inbox)
				}
				select {
				case stateCh <- agentReport{id: id, state: state}:
				case <-done:
					return
				}
			}
		}(model.AgentID(i), initial[i])
	}

	// The router drives the rounds.
	routerErr := router(res, pat, horizon, n, reuse, reportCh, stateCh, deliver, errCh)
	close(done)

	wg.Wait()
	close(errCh)
	for e := range errCh {
		if e != nil && err == nil {
			err = e
		}
	}
	if routerErr != nil && err == nil {
		err = routerErr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// router collects each round's reports, applies the failure pattern,
// delivers inboxes, and records the trace. Iteration over agents is in a
// fixed order so that statistics match the sequential engine exactly.
// With reuse on it keeps one inbox per agent across rounds: agent j has
// finished reading its round-m inbox before it reports its round-m
// state, and the router only rebuilds the inbox after collecting all
// round-m+1 action reports, which happen after that — the channel
// operations carry the happens-before edges.
func router(res *engine.Result, pat *model.Pattern, horizon, n int, reuse bool,
	reportCh, stateCh chan agentReport, deliver []chan []model.Message, errCh chan error) error {

	outboxes := make([][]model.Message, n)
	var inboxes [][]model.Message
	if reuse {
		inboxes = make([][]model.Message, n)
		for j := range inboxes {
			inboxes[j] = make([]model.Message, n)
		}
	}
	for m := 0; m < horizon; m++ {
		acts := make([]model.Action, n)
		for k := 0; k < n; k++ {
			select {
			case rep := <-reportCh:
				outboxes[rep.id] = rep.outbox
				acts[rep.id] = rep.action
			case e := <-errCh:
				return e
			}
		}
		res.Actions[m] = acts
		for i := 0; i < n; i++ {
			if len(outboxes[i]) != n {
				return fmt.Errorf("runtime: agent %d produced %d messages for %d agents",
					i, len(outboxes[i]), n)
			}
			if d := acts[i].Decision(); d.IsSet() && res.Decision[i] == model.None {
				res.Decision[i] = d
				res.DecisionRound[i] = m + 1
			}
			for _, msg := range outboxes[i] {
				if msg != nil {
					res.Stats.MessagesSent++
					res.Stats.BitsSent += int64(msg.Bits())
				}
			}
		}

		states := make([]model.State, n)
		for j := 0; j < n; j++ {
			var inbox []model.Message
			if reuse {
				inbox = inboxes[j]
			} else {
				inbox = make([]model.Message, n)
			}
			for i := 0; i < n; i++ {
				msg := outboxes[i][j]
				if msg != nil && !pat.Delivered(m, model.AgentID(i), model.AgentID(j)) {
					msg = nil
				}
				inbox[i] = msg
				if msg != nil {
					res.Stats.MessagesDelivered++
					res.Stats.BitsDelivered += int64(msg.Bits())
				}
			}
			deliver[j] <- inbox
		}
		for k := 0; k < n; k++ {
			select {
			case rep := <-stateCh:
				states[rep.id] = rep.state
			case e := <-errCh:
				return e
			}
		}
		res.States[m+1] = states
	}
	return nil
}
