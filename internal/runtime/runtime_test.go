package runtime

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/exchange"
	"repro/internal/model"
)

// assertSameResult compares the concurrent result against the sequential
// engine's, field by field.
func assertSameResult(t *testing.T, seq, conc *engine.Result) {
	t.Helper()
	if seq.Stats != conc.Stats {
		t.Errorf("stats differ: sequential %+v, concurrent %+v", seq.Stats, conc.Stats)
	}
	for m := range seq.States {
		for i := range seq.States[m] {
			if seq.States[m][i].Key() != conc.States[m][i].Key() {
				t.Fatalf("state differs at time %d agent %d", m, i)
			}
		}
	}
	for m := range seq.Actions {
		for i := range seq.Actions[m] {
			if seq.Actions[m][i] != conc.Actions[m][i] {
				t.Fatalf("action differs at time %d agent %d: %v vs %v",
					m, i, seq.Actions[m][i], conc.Actions[m][i])
			}
		}
	}
	for i := range seq.Decision {
		if seq.Decision[i] != conc.Decision[i] || seq.DecisionRound[i] != conc.DecisionRound[i] {
			t.Fatalf("decision ledger differs for agent %d", i)
		}
	}
}

func TestConcurrentMatchesSequentialAllStacks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n, tf := 5, 2
	type stack struct {
		name string
		ex   model.Exchange
		act  model.ActionProtocol
	}
	stacks := []stack{
		{"min", exchange.NewMin(n), action.NewMin(tf)},
		{"basic", exchange.NewBasic(n), action.NewBasic(n)},
		{"fip", exchange.NewFIP(n), action.NewOpt(tf)},
		{"report", exchange.NewReport(n), action.NewNaive(tf)},
	}
	for _, st := range stacks {
		for trial := 0; trial < 25; trial++ {
			pat := adversary.RandomSO(rng, n, tf, tf+2, 0.4)
			inits := make([]model.Value, n)
			for i := range inits {
				inits[i] = model.Value(rng.Intn(2))
			}
			cfg := engine.Config{Exchange: st.ex, Action: st.act, Pattern: pat, Inits: inits}
			seq, err := engine.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			conc, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, seq, conc)
		}
	}
}

func TestConcurrentValidation(t *testing.T) {
	if _, err := Run(engine.Config{}); err == nil {
		t.Error("empty config accepted")
	}
	n := 3
	cfg := engine.Config{
		Exchange: exchange.NewMin(n),
		Action:   action.NewMin(1),
		Pattern:  adversary.FailureFree(n, 3),
		Inits:    adversary.UniformInits(2, model.One), // wrong length
	}
	if _, err := Run(cfg); err == nil {
		t.Error("short init vector accepted")
	}
	cfg.Inits = []model.Value{model.One, model.None, model.One}
	if _, err := Run(cfg); err == nil {
		t.Error("unset init accepted")
	}
	cfg.Inits = adversary.UniformInits(n, model.One)
	cfg.Pattern = adversary.FailureFree(4, 3)
	if _, err := Run(cfg); err == nil {
		t.Error("pattern size mismatch accepted")
	}
}

// panicAction panics at time 1 to exercise error propagation.
type panicAction struct{}

func (panicAction) Name() string { return "Ppanic" }
func (panicAction) Act(_ model.AgentID, s model.State) model.Action {
	if s.Time() == 1 {
		panic("deliberate test panic")
	}
	return model.Noop
}

func TestConcurrentAgentPanicBecomesError(t *testing.T) {
	n := 3
	cfg := engine.Config{
		Exchange: exchange.NewMin(n),
		Action:   panicAction{},
		Pattern:  adversary.FailureFree(n, 3),
		Inits:    adversary.UniformInits(n, model.One),
	}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("agent panic was not reported")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestConcurrentManyAgents(t *testing.T) {
	// A larger configuration to shake out races (run with -race).
	n, tf := 12, 4
	pat := adversary.Example71(n, tf, tf+2)
	cfg := engine.Config{
		Exchange: exchange.NewBasic(n),
		Action:   action.NewBasic(n),
		Pattern:  pat,
		Inits:    adversary.UniformInits(n, model.One),
	}
	seq, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, seq, conc)
	for i := tf; i < n; i++ {
		if conc.Round(model.AgentID(i)) != tf+2 {
			t.Errorf("agent %d decided in round %d, want %d", i, conc.Round(model.AgentID(i)), tf+2)
		}
	}
}
