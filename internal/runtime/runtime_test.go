package runtime

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/registry"
)

// assertSameResult compares the concurrent result against the sequential
// engine's, field by field.
func assertSameResult(t *testing.T, seq, conc *engine.Result) {
	t.Helper()
	if seq.Stats != conc.Stats {
		t.Errorf("stats differ: sequential %+v, concurrent %+v", seq.Stats, conc.Stats)
	}
	for m := range seq.States {
		for i := range seq.States[m] {
			if seq.States[m][i].Key() != conc.States[m][i].Key() {
				t.Fatalf("state differs at time %d agent %d", m, i)
			}
		}
	}
	for m := range seq.Actions {
		for i := range seq.Actions[m] {
			if seq.Actions[m][i] != conc.Actions[m][i] {
				t.Fatalf("action differs at time %d agent %d: %v vs %v",
					m, i, seq.Actions[m][i], conc.Actions[m][i])
			}
		}
	}
	for i := range seq.Decision {
		if seq.Decision[i] != conc.Decision[i] || seq.DecisionRound[i] != conc.DecisionRound[i] {
			t.Fatalf("decision ledger differs for agent %d", i)
		}
	}
}

func TestConcurrentMatchesSequentialAllStacks(t *testing.T) {
	// Stacks are enumerated through the registry, so every registered
	// pairing — including fip+pmin and fip-nock — is covered without this
	// test having to list names.
	rng := rand.New(rand.NewSource(99))
	n, tf := 5, 2
	for _, name := range registry.StackNames() {
		info, err := registry.Stack(name)
		if err != nil {
			t.Fatal(err)
		}
		ex, act, err := registry.Compose(info.Exchange, info.Action, n, tf)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			pat := adversary.RandomSO(rng, n, tf, tf+2, 0.4)
			inits := make([]model.Value, n)
			for i := range inits {
				inits[i] = model.Value(rng.Intn(2))
			}
			cfg := engine.Config{Exchange: ex, Action: act, Pattern: pat, Inits: inits}
			seq, err := engine.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			conc, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, seq, conc)
		}
	}
}

// TestExecutorInterfaceMatches drives both executors through the
// engine.Executor interface — the path the core Runner uses — with and
// without reusable buffers, and requires byte-identical traces.
func TestExecutorInterfaceMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n, tf := 5, 2
	executors := []engine.Executor{engine.Sequential{}, Concurrent{}}
	if executors[0].Name() != "sequential" || executors[1].Name() != "concurrent" {
		t.Fatalf("executor names: %q, %q", executors[0].Name(), executors[1].Name())
	}
	buffers := []*engine.Buffers{engine.NewBuffers(), engine.NewArenaBuffers()}
	for _, name := range registry.StackNames() {
		info, err := registry.Stack(name)
		if err != nil {
			t.Fatal(err)
		}
		ex, act, err := registry.Compose(info.Exchange, info.Action, n, tf)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			pat := adversary.RandomSO(rng, n, tf, tf+2, 0.4)
			inits := make([]model.Value, n)
			for i := range inits {
				inits[i] = model.Value(rng.Intn(2))
			}
			cfg := engine.Config{Exchange: ex, Action: act, Pattern: pat, Inits: inits}
			want, err := executors[0].Execute(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Plain-buffered and arena-backed runs on both substrates
			// must reproduce the unbuffered trace exactly. On the
			// concurrent executor a non-nil Buffers engages the pooled
			// per-agent scratch (outbox double-buffers, exchange arena).
			for _, x := range executors {
				for _, buf := range buffers {
					got, err := x.Execute(cfg, buf)
					if err != nil {
						t.Fatalf("%s on %s: %v", x.Name(), name, err)
					}
					assertSameResult(t, want, got)
				}
			}
		}
	}
}

// TestConcurrentReuseResultsOwnTheirMemory re-runs configurations over
// the reuse path and checks earlier results survive untouched: the
// per-agent pooled scratch (and the exchanges' arenas) must never alias
// memory reachable from a returned Result.
func TestConcurrentReuseResultsOwnTheirMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n, tf := 4, 1
	ex := exchange.NewFIP(n)
	act := action.NewOpt(tf)
	buf := engine.NewArenaBuffers()
	type snap struct {
		res  *engine.Result
		keys []string
	}
	var snaps []snap
	for trial := 0; trial < 12; trial++ {
		pat := adversary.RandomSO(rng, n, tf, tf+2, 0.5)
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value(rng.Intn(2))
		}
		cfg := engine.Config{Exchange: ex, Action: act, Pattern: pat, Inits: inits}
		res, err := Concurrent{}.Execute(cfg, buf)
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for m := range res.States {
			for i := range res.States[m] {
				keys = append(keys, res.States[m][i].Key())
			}
		}
		snaps = append(snaps, snap{res: res, keys: keys})
		// Every earlier result must still fingerprint identically.
		for s, sn := range snaps {
			k := 0
			for m := range sn.res.States {
				for i := range sn.res.States[m] {
					if sn.res.States[m][i].Key() != sn.keys[k] {
						t.Fatalf("trial %d scribbled over result %d (time %d agent %d)", trial, s, m, i)
					}
					k++
				}
			}
		}
	}
}

func TestConcurrentValidation(t *testing.T) {
	if _, err := Run(engine.Config{}); err == nil {
		t.Error("empty config accepted")
	}
	n := 3
	cfg := engine.Config{
		Exchange: exchange.NewMin(n),
		Action:   action.NewMin(1),
		Pattern:  adversary.FailureFree(n, 3),
		Inits:    adversary.UniformInits(2, model.One), // wrong length
	}
	if _, err := Run(cfg); err == nil {
		t.Error("short init vector accepted")
	}
	cfg.Inits = []model.Value{model.One, model.None, model.One}
	if _, err := Run(cfg); err == nil {
		t.Error("unset init accepted")
	}
	cfg.Inits = adversary.UniformInits(n, model.One)
	cfg.Pattern = adversary.FailureFree(4, 3)
	if _, err := Run(cfg); err == nil {
		t.Error("pattern size mismatch accepted")
	}
}

// panicAction panics at time 1 to exercise error propagation.
type panicAction struct{}

func (panicAction) Name() string { return "Ppanic" }
func (panicAction) Act(_ model.AgentID, s model.State) model.Action {
	if s.Time() == 1 {
		panic("deliberate test panic")
	}
	return model.Noop
}

func TestConcurrentAgentPanicBecomesError(t *testing.T) {
	n := 3
	cfg := engine.Config{
		Exchange: exchange.NewMin(n),
		Action:   panicAction{},
		Pattern:  adversary.FailureFree(n, 3),
		Inits:    adversary.UniformInits(n, model.One),
	}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("agent panic was not reported")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestConcurrentManyAgents(t *testing.T) {
	// A larger configuration to shake out races (run with -race).
	n, tf := 12, 4
	pat := adversary.Example71(n, tf, tf+2)
	cfg := engine.Config{
		Exchange: exchange.NewBasic(n),
		Action:   action.NewBasic(n),
		Pattern:  pat,
		Inits:    adversary.UniformInits(n, model.One),
	}
	seq, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, seq, conc)
	for i := tf; i < n; i++ {
		if conc.Round(model.AgentID(i)) != tf+2 {
			t.Errorf("agent %d decided in round %d, want %d", i, conc.Round(model.AgentID(i)), tf+2)
		}
	}
}
