package adversary

import (
	"testing"

	"repro/internal/model"
)

// forEachSO drives the SO iterator callback-style; enumeration stops
// early when fn returns false.
func forEachSO(t *testing.T, n, tf, horizon int, opts Options, fn func(*model.Pattern) bool) {
	t.Helper()
	it, err := NewSOPatterns(n, tf, horizon, opts)
	if err != nil {
		t.Fatal(err)
	}
	for p, ok := it.Next(); ok; p, ok = it.Next() {
		if !fn(p) {
			return
		}
	}
}

// forEachCrash drives the crash iterator callback-style.
func forEachCrash(t *testing.T, n, tf, horizon int, fn func(*model.Pattern) bool) {
	t.Helper()
	it, err := NewCrashPatterns(n, tf, horizon)
	if err != nil {
		t.Fatal(err)
	}
	for p, ok := it.Next(); ok; p, ok = it.Next() {
		if !fn(p) {
			return
		}
	}
}

// forEachInits drives the init-vector iterator callback-style.
func forEachInits(t *testing.T, n int, fn func([]model.Value) bool) {
	t.Helper()
	it, err := NewInitVectors(n)
	if err != nil {
		t.Fatal(err)
	}
	for inits, ok := it.Next(); ok; inits, ok = it.Next() {
		if !fn(inits) {
			return
		}
	}
}

// TestSOPatternsDeterministicOrder checks the iterator's order is a
// function of its bounds alone (two fresh sweeps agree key for key), its
// Count matches the sweep, and exhaustion is final.
func TestSOPatternsDeterministicOrder(t *testing.T) {
	var want []string
	forEachSO(t, 3, 1, 2, Options{}, func(p *model.Pattern) bool {
		want = append(want, p.Key())
		return true
	})
	it, err := NewSOPatterns(3, 1, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := it.Count(); !ok || c != int64(len(want)) {
		t.Fatalf("Count = %d/%v, want %d/true", c, ok, len(want))
	}
	var got []string
	for p, ok := it.Next(); ok; p, ok = it.Next() {
		got = append(got, p.Key())
	}
	if len(got) != len(want) {
		t.Fatalf("second sweep produced %d patterns, first %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("pattern %d differs between two fresh sweeps", k)
		}
	}
	// Exhausted iterators stay exhausted.
	if _, ok := it.Next(); ok {
		t.Fatal("exhausted iterator produced another pattern")
	}
}

// TestSOPatternsReusesPattern checks the allocation contract: within one
// faulty set the iterator hands back the same pattern object, mutated in
// place.
func TestSOPatternsReusesPattern(t *testing.T) {
	it, err := NewSOPatterns(3, 1, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, ok := it.Next() // failure-free pattern: its own faulty set
	if !ok {
		t.Fatal("empty enumeration")
	}
	second, ok := it.Next() // first pattern of the {0} faulty set
	if !ok {
		t.Fatal("enumeration ended after one pattern")
	}
	third, ok := it.Next()
	if !ok {
		t.Fatal("enumeration ended after two patterns")
	}
	if first == second {
		t.Error("patterns of different faulty sets share an object")
	}
	if second != third {
		t.Error("patterns within one faulty set are not reused")
	}
}

// TestSOPatternsRejectsOversizedSweep checks the constructor reports
// rejected bounds as errors.
func TestSOPatternsRejectsOversizedSweep(t *testing.T) {
	if _, err := NewSOPatterns(4, 2, 4, Options{MaxPatterns: 10}); err == nil {
		t.Error("MaxPatterns guard did not reject the sweep")
	}
	// 1 faulty agent × 9 recipients × 7 rounds = 63 slots >= 62.
	if _, err := NewSOPatterns(10, 1, 7, Options{}); err == nil {
		t.Error("62-slot guard did not reject the sweep")
	}
	if _, err := NewSOPatterns(0, 1, 2, Options{}); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestCrashPatternsDeterministicOrder checks the crash iterator's order
// is a function of its bounds alone and its Count matches the sweep.
func TestCrashPatternsDeterministicOrder(t *testing.T) {
	for _, c := range []struct{ n, t, horizon int }{{3, 1, 2}, {3, 2, 2}, {4, 1, 3}, {2, 1, 0}} {
		var want []string
		forEachCrash(t, c.n, c.t, c.horizon, func(p *model.Pattern) bool {
			want = append(want, p.Key())
			return true
		})
		it, err := NewCrashPatterns(c.n, c.t, c.horizon)
		if err != nil {
			t.Fatal(err)
		}
		if cnt, ok := it.Count(); !ok || cnt != int64(len(want)) {
			t.Fatalf("n=%d t=%d h=%d: Count = %d/%v, want %d/true", c.n, c.t, c.horizon, cnt, ok, len(want))
		}
		var got []string
		for p, ok := it.Next(); ok; p, ok = it.Next() {
			got = append(got, p.Key())
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d t=%d h=%d: second sweep produced %d patterns, first %d",
				c.n, c.t, c.horizon, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("n=%d t=%d h=%d: pattern %d differs", c.n, c.t, c.horizon, k)
			}
		}
	}
}

// TestInitVectorsBinaryOrder checks the init iterator produces all 2^n
// vectors in increasing binary order, agent 0 least significant.
func TestInitVectorsBinaryOrder(t *testing.T) {
	it, err := NewInitVectors(3)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := it.Count(); !ok || c != 8 {
		t.Fatalf("Count = %d/%v, want 8/true", c, ok)
	}
	k := 0
	for inits, ok := it.Next(); ok; inits, ok = it.Next() {
		for i := range inits {
			want := model.Value((k >> i) & 1)
			if inits[i] != want {
				t.Fatalf("vector %d agent %d = %v, want %v", k, i, inits[i], want)
			}
		}
		k++
	}
	if k != 8 {
		t.Fatalf("iterator produced %d vectors, want 8", k)
	}
	if _, err := NewInitVectors(0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewInitVectors(70); err == nil {
		t.Error("n=70 accepted")
	}
}

// TestCountCrashMatchesEnumeration pins CountCrash to the actual sweep.
func TestCountCrashMatchesEnumeration(t *testing.T) {
	want, err := CountCrash(3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	forEachCrash(t, 3, 1, 2, func(*model.Pattern) bool { got++; return true })
	if got != want {
		t.Errorf("enumerated %d crash patterns, CountCrash says %d", got, want)
	}
	if want != 22 {
		t.Errorf("CountCrash(3,1,2) = %d, want 22", want)
	}
}

// BenchmarkSOPatternSweep quantifies the allocation win of in-place
// pattern reuse on the exhaustive-sweep hot path: "reuse" is the
// iterator's delta-toggled pattern, "clone" re-creates the old
// clone-per-mask behavior on top of it.
func BenchmarkSOPatternSweep(b *testing.B) {
	n, tf, horizon := 4, 2, 3
	b.Run("reuse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it, err := NewSOPatterns(n, tf, horizon, Options{})
			if err != nil {
				b.Fatal(err)
			}
			for p, ok := it.Next(); ok; p, ok = it.Next() {
				_ = p
			}
		}
	})
	b.Run("clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it, err := NewSOPatterns(n, tf, horizon, Options{})
			if err != nil {
				b.Fatal(err)
			}
			for p, ok := it.Next(); ok; p, ok = it.Next() {
				_ = p.Clone()
			}
		}
	})
}
