package adversary

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/model"
)

// SpecSyntax documents the adversary spec-string forms Parse accepts, for
// CLI help text. Like stack names in internal/registry, the forms live in
// one place so command-line tools cannot drift from the library.
const SpecSyntax = "none, example71, random, or silent:<ids>"

// Parse builds a failure pattern from a CLI-style adversary spec string:
//
//	none          — the failure-free pattern
//	example71     — agents 0..t-1 faulty and silent (Example 7.1)
//	random        — seeded random SO(t) with the given drop probability
//	silent:0,2    — the listed agents faulty and silent
func Parse(spec string, n, t, horizon int, seed int64, drop float64) (*model.Pattern, error) {
	switch {
	case spec == "none":
		return FailureFree(n, horizon), nil
	case spec == "example71":
		return Example71(n, t, horizon), nil
	case spec == "random":
		return RandomSO(rand.New(rand.NewSource(seed)), n, t, horizon, drop), nil
	case strings.HasPrefix(spec, "silent:"):
		var agents []model.AgentID
		for _, part := range strings.Split(strings.TrimPrefix(spec, "silent:"), ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || id < 0 || id >= n {
				return nil, fmt.Errorf("adversary: bad agent id %q in %q", part, spec)
			}
			agents = append(agents, model.AgentID(id))
		}
		if len(agents) > t {
			return nil, fmt.Errorf("adversary: %d silent agents exceed t=%d", len(agents), t)
		}
		return Silent(n, horizon, agents...), nil
	default:
		return nil, fmt.Errorf("adversary: unknown spec %q (have %s)", spec, SpecSyntax)
	}
}
