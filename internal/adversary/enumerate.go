package adversary

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Options controls exhaustive enumeration.
type Options struct {
	// IncludeSelfDrops also enumerates omissions of an agent's messages to
	// itself. These are behaviorally invisible (footnote 3 of the paper);
	// the default excludes them to keep the state space small.
	IncludeSelfDrops bool

	// MaxPatterns aborts enumeration (with a panic) if more than this many
	// patterns would be produced; 0 means no limit. It guards against
	// accidentally launching an infeasible exhaustive check.
	MaxPatterns int64
}

// slot identifies one droppable message: sent by From to To at time M.
type slot struct {
	M        int
	From, To model.AgentID
}

// slotsFor lists the droppable message slots for a given faulty set.
func slotsFor(n, horizon int, faulty []model.AgentID, includeSelf bool) []slot {
	var out []slot
	for m := 0; m < horizon; m++ {
		for _, i := range faulty {
			for j := 0; j < n; j++ {
				if !includeSelf && model.AgentID(j) == i {
					continue
				}
				out = append(out, slot{M: m, From: i, To: model.AgentID(j)})
			}
		}
	}
	return out
}

// CountSO returns the number of patterns EnumerateSO will produce, or an
// error if the count overflows int64.
func CountSO(n, t, horizon int, opts Options) (int64, error) {
	total := int64(0)
	for _, faulty := range subsetsUpTo(n, t) {
		recips := n - 1
		if opts.IncludeSelfDrops {
			recips = n
		}
		bits := horizon * len(faulty) * recips
		if bits >= 62 {
			return 0, fmt.Errorf("adversary: 2^%d drop combinations overflow", bits)
		}
		c := int64(1) << bits
		if total > math.MaxInt64-c {
			return 0, fmt.Errorf("adversary: pattern count overflows int64")
		}
		total += c
	}
	return total, nil
}

// EnumerateSO calls fn for every failure pattern in SO(t) over n agents and
// the given horizon: every faulty set of size at most t (including faulty
// agents that drop nothing) combined with every subset of droppable
// messages. Enumeration stops early if fn returns false. The pattern passed
// to fn is reused across calls; clone it if it must be retained.
func EnumerateSO(n, t, horizon int, opts Options, fn func(*model.Pattern) bool) {
	if opts.MaxPatterns > 0 {
		c, err := CountSO(n, t, horizon, opts)
		if err != nil || c > opts.MaxPatterns {
			panic(fmt.Sprintf("adversary: enumeration too large (count=%d, err=%v, limit=%d)",
				c, err, opts.MaxPatterns))
		}
	}
	for _, faulty := range subsetsUpTo(n, t) {
		slots := slotsFor(n, horizon, faulty, opts.IncludeSelfDrops)
		if len(slots) >= 62 {
			panic(fmt.Sprintf("adversary: %d drop slots cannot be enumerated", len(slots)))
		}
		p := model.NewPattern(n, horizon)
		for _, i := range faulty {
			p.SetFaulty(i)
		}
		if !enumerateDrops(p, slots, fn) {
			return
		}
	}
}

// enumerateDrops iterates all 2^len(slots) drop subsets on top of the base
// pattern p (whose faulty set is already fixed). It reports whether
// enumeration ran to completion.
func enumerateDrops(p *model.Pattern, slots []slot, fn func(*model.Pattern) bool) bool {
	total := uint64(1) << len(slots)
	for mask := uint64(0); mask < total; mask++ {
		q := p.Clone()
		for b, s := range slots {
			if mask&(1<<uint(b)) != 0 {
				q.Drop(s.M, s.From, s.To)
			}
		}
		if !fn(q) {
			return false
		}
	}
	return true
}

// EnumerateCrash calls fn for every crash(t) pattern over n agents and the
// given horizon. For each faulty agent the enumeration chooses a crash time
// c in [0, horizon] (horizon meaning "never observably crashes") and, for
// c < horizon, a proper subset of the other agents reached in the crash
// round. Every distinct crash drop-pattern is produced exactly once.
func EnumerateCrash(n, t, horizon int, fn func(*model.Pattern) bool) {
	for _, faulty := range subsetsUpTo(n, t) {
		if !enumerateCrashBehaviors(n, horizon, faulty, fn) {
			return
		}
	}
}

// crashBehavior is one faulty agent's crash choice.
type crashBehavior struct {
	at      int    // crash time, or horizon for "never"
	reached uint64 // bitmask over other agents reached in the crash round
}

func enumerateCrashBehaviors(n, horizon int, faulty []model.AgentID, fn func(*model.Pattern) bool) bool {
	behaviors := make([]crashBehavior, len(faulty))
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(faulty) {
			p := model.NewPattern(n, horizon)
			for bi, i := range faulty {
				p.SetFaulty(i)
				b := behaviors[bi]
				if b.at == horizon {
					continue
				}
				var reached []model.AgentID
				bit := 0
				for j := 0; j < n; j++ {
					if model.AgentID(j) == i {
						continue
					}
					if b.reached&(1<<uint(bit)) != 0 {
						reached = append(reached, model.AgentID(j))
					}
					bit++
				}
				ApplyCrash(p, i, b.at, reached...)
			}
			return fn(p)
		}
		for at := 0; at <= horizon; at++ {
			if at == horizon {
				behaviors[k] = crashBehavior{at: at}
				if !rec(k + 1) {
					return false
				}
				continue
			}
			// Proper subsets only: reaching everyone at time `at` is the
			// same drop-pattern as crashing later, which another iteration
			// produces.
			full := uint64(1)<<(n-1) - 1
			for mask := uint64(0); mask < full; mask++ {
				behaviors[k] = crashBehavior{at: at, reached: mask}
				if !rec(k + 1) {
					return false
				}
			}
		}
		return true
	}
	return rec(0)
}

// subsetsUpTo returns all subsets of {0..n-1} of size at most t, as sorted
// slices, in a deterministic order (by size, then lexicographically).
func subsetsUpTo(n, t int) [][]model.AgentID {
	var out [][]model.AgentID
	for size := 0; size <= t && size <= n; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			set := make([]model.AgentID, size)
			for i, v := range idx {
				set[i] = model.AgentID(v)
			}
			out = append(out, set)
			// Advance the combination.
			i := size - 1
			for i >= 0 && idx[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for k := i + 1; k < size; k++ {
				idx[k] = idx[k-1] + 1
			}
		}
	}
	return out
}

// EnumerateInits calls fn for every assignment of initial preferences to n
// agents (2^n vectors), in increasing binary order with agent 0 as the
// least-significant bit. The slice passed to fn is reused; copy it if it
// must be retained. Enumeration stops early if fn returns false.
func EnumerateInits(n int, fn func([]model.Value) bool) {
	inits := make([]model.Value, n)
	total := uint64(1) << n
	for mask := uint64(0); mask < total; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				inits[i] = model.One
			} else {
				inits[i] = model.Zero
			}
		}
		if !fn(inits) {
			return
		}
	}
}

// UniformInits returns an n-vector with every agent holding value v.
func UniformInits(n int, v model.Value) []model.Value {
	inits := make([]model.Value, n)
	for i := range inits {
		inits[i] = v
	}
	return inits
}
