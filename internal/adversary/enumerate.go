package adversary

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Options controls exhaustive enumeration.
type Options struct {
	// IncludeSelfDrops also enumerates omissions of an agent's messages to
	// itself. These are behaviorally invisible (footnote 3 of the paper);
	// the default excludes them to keep the state space small.
	IncludeSelfDrops bool

	// MaxPatterns rejects enumeration if more than this many patterns
	// would be produced; 0 means no limit. It guards against accidentally
	// launching an infeasible exhaustive check. NewSOPatterns reports the
	// rejection as an error.
	MaxPatterns int64
}

// slot identifies one droppable message: sent by From to To at time M.
type slot struct {
	M        int
	From, To model.AgentID
}

// slotsFor lists the droppable message slots for a given faulty set.
func slotsFor(n, horizon int, faulty []model.AgentID, includeSelf bool) []slot {
	var out []slot
	for m := 0; m < horizon; m++ {
		for _, i := range faulty {
			for j := 0; j < n; j++ {
				if !includeSelf && model.AgentID(j) == i {
					continue
				}
				out = append(out, slot{M: m, From: i, To: model.AgentID(j)})
			}
		}
	}
	return out
}

// CountSO returns the number of patterns SO(t) enumeration will produce,
// or an error if the count overflows int64.
func CountSO(n, t, horizon int, opts Options) (int64, error) {
	total := int64(0)
	for _, faulty := range subsetsUpTo(n, t) {
		recips := n - 1
		if opts.IncludeSelfDrops {
			recips = n
		}
		bits := horizon * len(faulty) * recips
		if bits >= 62 {
			return 0, fmt.Errorf("adversary: 2^%d drop combinations overflow", bits)
		}
		c := int64(1) << bits
		if total > math.MaxInt64-c {
			return 0, fmt.Errorf("adversary: pattern count overflows int64")
		}
		total += c
	}
	return total, nil
}

// SOPatterns enumerates every failure pattern in SO(t) lazily, pull-style:
// every faulty set of size at most t (including faulty agents that drop
// nothing) combined with every subset of droppable messages, in a fixed
// deterministic order (faulty sets by size then lexicographically, drop
// masks in increasing binary order). Construct with NewSOPatterns.
//
// The iterator owns one pattern per faulty set and mutates it in place
// between Next calls (consecutive drop masks differ in O(1) amortized
// bits), so a full sweep allocates O(#faulty-sets) patterns instead of one
// clone per pattern. Callers that retain a pattern must Clone it.
type SOPatterns struct {
	n, horizon  int
	includeSelf bool
	subsets     [][]model.AgentID
	si          int // index of the subset currently being swept
	slots       []slot
	mask        uint64 // drop mask currently applied to p
	total       uint64 // 2^len(slots)
	p           *model.Pattern
	count       int64
	hasCount    bool
}

// NewSOPatterns validates the enumeration bounds and returns the iterator.
// It fails when a faulty set would expose 62 or more droppable slots, or
// when opts.MaxPatterns is positive and the sweep exceeds it.
func NewSOPatterns(n, t, horizon int, opts Options) (*SOPatterns, error) {
	if n <= 0 {
		return nil, fmt.Errorf("adversary: SO enumeration needs n > 0, got %d", n)
	}
	if t < 0 || horizon < 0 {
		return nil, fmt.Errorf("adversary: SO enumeration needs t >= 0 and horizon >= 0, got t=%d horizon=%d", t, horizon)
	}
	subsets := subsetsUpTo(n, t)
	recips := n - 1
	if opts.IncludeSelfDrops {
		recips = n
	}
	for _, faulty := range subsets {
		if bits := horizon * len(faulty) * recips; bits >= 62 {
			return nil, fmt.Errorf("adversary: %d drop slots cannot be enumerated (faulty set of %d agents)",
				bits, len(faulty))
		}
	}
	count, err := CountSO(n, t, horizon, opts)
	if opts.MaxPatterns > 0 {
		if err != nil {
			return nil, fmt.Errorf("adversary: enumeration too large (limit %d): %w", opts.MaxPatterns, err)
		}
		if count > opts.MaxPatterns {
			return nil, fmt.Errorf("adversary: enumeration too large (count=%d, limit=%d)", count, opts.MaxPatterns)
		}
	}
	return &SOPatterns{
		n:           n,
		horizon:     horizon,
		includeSelf: opts.IncludeSelfDrops,
		subsets:     subsets,
		count:       count,
		hasCount:    err == nil,
	}, nil
}

// Count returns the total number of patterns the full sweep produces, and
// whether that total is representable in int64.
func (it *SOPatterns) Count() (int64, bool) { return it.count, it.hasCount }

// Next returns the next pattern, or false when the enumeration is
// exhausted. The returned pattern is reused by subsequent calls; Clone it
// if it must be retained.
func (it *SOPatterns) Next() (*model.Pattern, bool) {
	for {
		if it.p == nil {
			// Open the next faulty set with the empty drop mask.
			if it.si >= len(it.subsets) {
				return nil, false
			}
			faulty := it.subsets[it.si]
			it.slots = slotsFor(it.n, it.horizon, faulty, it.includeSelf)
			it.mask = 0
			it.total = uint64(1) << len(it.slots)
			it.p = model.NewPattern(it.n, it.horizon)
			for _, i := range faulty {
				it.p.SetFaulty(i)
			}
			return it.p, true
		}
		next := it.mask + 1
		if next == it.total {
			it.si++
			it.p = nil
			continue
		}
		// Incrementing the mask toggles a run of low bits; applying just
		// the toggled drops keeps the sweep allocation-free.
		for b, s := range it.slots {
			bit := uint64(1) << uint(b)
			if (it.mask^next)&bit == 0 {
				continue
			}
			if next&bit != 0 {
				it.p.Drop(s.M, s.From, s.To)
			} else {
				it.p.Undrop(s.M, s.From, s.To)
			}
		}
		it.mask = next
		return it.p, true
	}
}

// crashNever marks a faulty agent that never observably crashes.
const crashNever = -1

// CountCrash returns the number of patterns crash(t) enumeration will
// produce, or an error if the count overflows int64.
func CountCrash(n, t, horizon int) (int64, error) {
	// Per faulty agent: a crash time in [0, horizon) with a proper subset
	// of the n-1 other agents reached, or "never observably crashes".
	perAgent := int64(horizon)*(int64(1)<<uint(n-1)-1) + 1
	total := int64(0)
	for _, faulty := range subsetsUpTo(n, t) {
		c := int64(1)
		for range faulty {
			if perAgent != 0 && c > math.MaxInt64/perAgent {
				return 0, fmt.Errorf("adversary: crash pattern count overflows int64")
			}
			c *= perAgent
		}
		if total > math.MaxInt64-c {
			return 0, fmt.Errorf("adversary: crash pattern count overflows int64")
		}
		total += c
	}
	return total, nil
}

// CrashPatterns enumerates every crash(t) pattern lazily, pull-style: for
// each faulty set, every combination of per-agent crash behaviors — a
// crash time c in [0, horizon) with a proper subset of the other agents
// reached in the crash round, or "never observably crashes" — in a fixed
// deterministic order (faulty sets by size then lexicographically, the
// per-agent behavior odometer spinning fastest for the last agent).
// Every distinct crash drop-pattern is produced exactly once. Construct
// with NewCrashPatterns.
//
// Unlike SOPatterns, each Next call builds a fresh pattern (crash sweeps
// are not a measured hot path); it may still be retained only until the
// iterator is garbage, so Clone when in doubt.
type CrashPatterns struct {
	n, horizon int
	subsets    [][]model.AgentID
	si         int
	// choices is the odometer over per-agent behaviors for the current
	// faulty set; digit k spins fastest for the last agent. Nil means the
	// odometer for subset si has not started yet.
	choices  []int64
	perAgent int64
	full     uint64 // 2^(n-1) - 1: proper-subset bound on reached masks
	count    int64
	hasCount bool
	done     bool
}

// NewCrashPatterns validates the enumeration bounds and returns the
// iterator. It fails when n is too large for the reached-subset masks to
// fit in 62 bits.
func NewCrashPatterns(n, t, horizon int) (*CrashPatterns, error) {
	if n <= 0 {
		return nil, fmt.Errorf("adversary: crash enumeration needs n > 0, got %d", n)
	}
	if t < 0 || horizon < 0 {
		return nil, fmt.Errorf("adversary: crash enumeration needs t >= 0 and horizon >= 0, got t=%d horizon=%d", t, horizon)
	}
	if n-1 >= 62 {
		return nil, fmt.Errorf("adversary: %d crash-round recipients cannot be enumerated", n-1)
	}
	full := uint64(1)<<uint(n-1) - 1
	count, err := CountCrash(n, t, horizon)
	return &CrashPatterns{
		n:        n,
		horizon:  horizon,
		subsets:  subsetsUpTo(n, t),
		perAgent: int64(horizon)*int64(full) + 1,
		full:     full,
		count:    count,
		hasCount: err == nil,
	}, nil
}

// Count returns the total number of patterns the full sweep produces, and
// whether that total is representable in int64.
func (it *CrashPatterns) Count() (int64, bool) { return it.count, it.hasCount }

// behavior decodes an odometer digit into (crash time, reached mask);
// crashNever means the agent never observably crashes.
func (it *CrashPatterns) behavior(c int64) (at int, reached uint64) {
	if c == it.perAgent-1 {
		return crashNever, 0
	}
	return int(c / int64(it.full)), uint64(c % int64(it.full))
}

// Next returns the next pattern, or false when the enumeration is
// exhausted.
func (it *CrashPatterns) Next() (*model.Pattern, bool) {
	for {
		if it.done {
			return nil, false
		}
		if it.choices == nil {
			if it.si >= len(it.subsets) {
				it.done = true
				return nil, false
			}
			it.choices = make([]int64, len(it.subsets[it.si]))
			return it.build(), true
		}
		// Advance the odometer, last agent fastest.
		k := len(it.choices) - 1
		for k >= 0 && it.choices[k] == it.perAgent-1 {
			it.choices[k] = 0
			k--
		}
		if k < 0 {
			it.si++
			it.choices = nil
			continue
		}
		it.choices[k]++
		return it.build(), true
	}
}

// build materializes the pattern for the current faulty set and odometer
// position.
func (it *CrashPatterns) build() *model.Pattern {
	faulty := it.subsets[it.si]
	p := model.NewPattern(it.n, it.horizon)
	for bi, i := range faulty {
		p.SetFaulty(i)
		at, mask := it.behavior(it.choices[bi])
		if at == crashNever {
			continue
		}
		var reached []model.AgentID
		bit := 0
		for j := 0; j < it.n; j++ {
			if model.AgentID(j) == i {
				continue
			}
			if mask&(1<<uint(bit)) != 0 {
				reached = append(reached, model.AgentID(j))
			}
			bit++
		}
		ApplyCrash(p, i, at, reached...)
	}
	return p
}

// subsetsUpTo returns all subsets of {0..n-1} of size at most t, as sorted
// slices, in a deterministic order (by size, then lexicographically).
func subsetsUpTo(n, t int) [][]model.AgentID {
	var out [][]model.AgentID
	for size := 0; size <= t && size <= n; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			set := make([]model.AgentID, size)
			for i, v := range idx {
				set[i] = model.AgentID(v)
			}
			out = append(out, set)
			// Advance the combination.
			i := size - 1
			for i >= 0 && idx[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for k := i + 1; k < size; k++ {
				idx[k] = idx[k-1] + 1
			}
		}
	}
	return out
}

// InitVectors enumerates every assignment of initial preferences to n
// agents (2^n vectors) lazily, in increasing binary order with agent 0 as
// the least-significant bit. Construct with NewInitVectors. The slice
// returned by Next is reused across calls; copy it if it must be retained.
type InitVectors struct {
	n     int
	mask  uint64
	total uint64
	inits []model.Value
}

// NewInitVectors validates n and returns the iterator.
func NewInitVectors(n int) (*InitVectors, error) {
	if n <= 0 {
		return nil, fmt.Errorf("adversary: init enumeration needs n > 0, got %d", n)
	}
	if n >= 62 {
		return nil, fmt.Errorf("adversary: 2^%d initial vectors cannot be enumerated", n)
	}
	return &InitVectors{n: n, total: uint64(1) << uint(n), inits: make([]model.Value, n)}, nil
}

// Count returns the total number of vectors (2^n).
func (it *InitVectors) Count() (int64, bool) { return int64(it.total), true }

// Next returns the next initial-preference vector, or false when the
// enumeration is exhausted. The slice is reused across calls.
func (it *InitVectors) Next() ([]model.Value, bool) {
	if it.mask == it.total {
		return nil, false
	}
	for i := 0; i < it.n; i++ {
		if it.mask&(1<<uint(i)) != 0 {
			it.inits[i] = model.One
		} else {
			it.inits[i] = model.Zero
		}
	}
	it.mask++
	return it.inits, true
}

// UniformInits returns an n-vector with every agent holding value v.
func UniformInits(n int, v model.Value) []model.Value {
	inits := make([]model.Value, n)
	for i := range inits {
		inits[i] = v
	}
	return inits
}
