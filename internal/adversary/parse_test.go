package adversary

import (
	"testing"

	"repro/internal/model"
)

func TestParseForms(t *testing.T) {
	if p, err := Parse("none", 4, 1, 3, 0, 0); err != nil || p.NumFaulty() != 0 {
		t.Errorf("none: %v, %d faulty", err, p.NumFaulty())
	}
	p, err := Parse("example71", 4, 2, 4, 0, 0)
	if err != nil || !p.Faulty(0) || !p.Faulty(1) || p.Faulty(2) {
		t.Errorf("example71: %v, faulty set %v", err, p.FaultySet())
	}
	if p, err = Parse("random", 5, 2, 4, 7, 0.5); err != nil || p.NumFaulty() > 2 {
		t.Errorf("random: %v", err)
	}
	p, err = Parse("silent:0, 2", 4, 2, 4, 0, 0)
	if err != nil || !p.Faulty(0) || !p.Faulty(model.AgentID(2)) || p.Faulty(1) {
		t.Errorf("silent list: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus",
		"silent:9",       // agent out of range
		"silent:x",       // not a number
		"silent:0,1,2,3", // exceeds t
	}
	for _, spec := range cases {
		if _, err := Parse(spec, 4, 2, 4, 0, 0); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}
