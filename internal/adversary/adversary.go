// Package adversary constructs failure patterns for the sending-omissions
// model SO(t) and the crash model of Section 3: hand-built patterns (silent
// agents, the runs used in the paper's examples), seeded random adversaries
// for statistical experiments, and exhaustive enumeration for the epistemic
// model checker.
//
// Self-omissions: the formal model permits a faulty agent to drop messages
// to itself, and footnote 3 of the paper observes that such behavior is
// undetectable. Enumeration therefore excludes self-drops by default
// (Options.IncludeSelfDrops re-enables them); the random generators never
// produce them.
package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// FailureFree returns the pattern with no faulty agents.
func FailureFree(n, horizon int) *model.Pattern {
	return model.NewPattern(n, horizon)
}

// Silent returns a pattern in which each of the given agents is faulty and
// sends no messages (to anyone but itself) for the entire horizon. This is
// the adversary of Example 7.1 and of the introduction's run r.
func Silent(n, horizon int, agents ...model.AgentID) *model.Pattern {
	p := model.NewPattern(n, horizon)
	for _, i := range agents {
		p.Silence(i, 0, horizon)
	}
	return p
}

// Example71 returns the failure pattern of Example 7.1: agents 0..t-1 are
// faulty and never send a message. (The paper uses n=20, t=10; any n > t
// works.) All agents should be given initial preference 1 to reproduce the
// example.
func Example71(n, t, horizon int) *model.Pattern {
	if t >= n {
		panic(fmt.Sprintf("adversary: Example71 needs t < n, got n=%d t=%d", n, t))
	}
	agents := make([]model.AgentID, t)
	for i := range agents {
		agents[i] = model.AgentID(i)
	}
	return Silent(n, horizon, agents...)
}

// CrashAt returns a pattern in which agent i crashes at time m: in round
// m+1 its message reaches only the agents in reached, and from round m+2 on
// it sends nothing. Other agents are untouched; compose by calling multiple
// builders on the returned pattern.
func CrashAt(n, horizon int, i model.AgentID, m int, reached ...model.AgentID) *model.Pattern {
	p := model.NewPattern(n, horizon)
	ApplyCrash(p, i, m, reached...)
	return p
}

// ApplyCrash applies a crash of agent i at time m to an existing pattern:
// at time m agent i reaches only the agents in reached (plus itself); at
// all later times within the horizon it reaches no one.
func ApplyCrash(p *model.Pattern, i model.AgentID, m int, reached ...model.AgentID) {
	ok := make(map[model.AgentID]bool, len(reached)+1)
	ok[i] = true
	for _, j := range reached {
		ok[j] = true
	}
	if m < p.Horizon() {
		for j := 0; j < p.N(); j++ {
			if !ok[model.AgentID(j)] {
				p.Drop(m, i, model.AgentID(j))
			}
		}
	}
	p.Silence(i, m+1, p.Horizon())
	p.SetFaulty(i)
}

// RandomSO returns a random SO(t) pattern: a uniformly chosen number of
// faulty agents in [0, t], a uniformly chosen faulty set of that size, and
// each message from a faulty agent (other than self-messages) independently
// dropped with probability dropProb.
func RandomSO(rng *rand.Rand, n, t, horizon int, dropProb float64) *model.Pattern {
	p := model.NewPattern(n, horizon)
	numFaulty := rng.Intn(t + 1)
	perm := rng.Perm(n)
	for _, fi := range perm[:numFaulty] {
		i := model.AgentID(fi)
		p.SetFaulty(i)
		for m := 0; m < horizon; m++ {
			for j := 0; j < n; j++ {
				if model.AgentID(j) == i {
					continue
				}
				if rng.Float64() < dropProb {
					p.Drop(m, i, model.AgentID(j))
				}
			}
		}
	}
	return p
}

// RandomCrash returns a random crash(t) pattern: a uniformly chosen number
// of faulty agents in [0, t]; each crashes at a uniform time in [0, horizon]
// (horizon meaning "never observably crashes") reaching a uniform subset of
// the other agents in its crash round.
func RandomCrash(rng *rand.Rand, n, t, horizon int) *model.Pattern {
	p := model.NewPattern(n, horizon)
	numFaulty := rng.Intn(t + 1)
	perm := rng.Perm(n)
	for _, fi := range perm[:numFaulty] {
		i := model.AgentID(fi)
		p.SetFaulty(i)
		crash := rng.Intn(horizon + 1)
		if crash == horizon {
			continue // faulty but never observably crashes
		}
		var reached []model.AgentID
		for j := 0; j < n; j++ {
			if model.AgentID(j) != i && rng.Intn(2) == 0 {
				reached = append(reached, model.AgentID(j))
			}
		}
		ApplyCrash(p, i, crash, reached...)
	}
	return p
}
