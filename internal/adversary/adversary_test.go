package adversary

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestFailureFree(t *testing.T) {
	p := FailureFree(4, 3)
	if p.NumFaulty() != 0 {
		t.Errorf("FailureFree has %d faulty agents", p.NumFaulty())
	}
	if err := model.SO(0).Admits(p); err != nil {
		t.Errorf("SO(0) rejects the failure-free pattern: %v", err)
	}
}

func TestSilent(t *testing.T) {
	p := Silent(4, 3, 1, 2)
	if p.NumFaulty() != 2 {
		t.Fatalf("NumFaulty = %d, want 2", p.NumFaulty())
	}
	for m := 0; m < 3; m++ {
		if p.Delivered(m, 1, 0) || p.Delivered(m, 2, 3) {
			t.Errorf("silent agent delivered a message at time %d", m)
		}
		if !p.Delivered(m, 0, 1) {
			t.Errorf("nonfaulty agent's message dropped at time %d", m)
		}
	}
}

func TestExample71(t *testing.T) {
	p := Example71(20, 10, 12)
	if p.NumFaulty() != 10 {
		t.Fatalf("NumFaulty = %d, want 10", p.NumFaulty())
	}
	if err := model.SO(10).Admits(p); err != nil {
		t.Errorf("SO(10) rejects Example 7.1 pattern: %v", err)
	}
	for i := 0; i < 10; i++ {
		if p.Nonfaulty(model.AgentID(i)) {
			t.Errorf("agent %d should be faulty", i)
		}
		if p.Delivered(0, model.AgentID(i), 15) {
			t.Errorf("faulty agent %d delivered a message", i)
		}
	}
	for i := 10; i < 20; i++ {
		if p.Faulty(model.AgentID(i)) {
			t.Errorf("agent %d should be nonfaulty", i)
		}
	}
}

func TestExample71Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Example71 with t >= n did not panic")
		}
	}()
	Example71(3, 3, 5)
}

func TestCrashAt(t *testing.T) {
	p := CrashAt(4, 4, 2, 1, 0) // agent 2 crashes at time 1, reaching only agent 0
	if err := model.Crash(1).Admits(p); err != nil {
		t.Fatalf("Crash(1) rejects CrashAt pattern: %v", err)
	}
	if !p.Delivered(0, 2, 3) {
		t.Error("pre-crash message dropped")
	}
	if !p.Delivered(1, 2, 0) {
		t.Error("crash-round message to reached agent dropped")
	}
	if p.Delivered(1, 2, 3) {
		t.Error("crash-round message to unreached agent delivered")
	}
	if p.Delivered(2, 2, 0) || p.Delivered(3, 2, 1) {
		t.Error("post-crash message delivered")
	}
}

func TestRandomSOWithinModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomSO(rng, 5, 2, 4, 0.5)
		return model.SO(2).Admits(p) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomCrashWithinModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomCrash(rng, 5, 2, 4)
		return model.Crash(2).Admits(p) == nil && model.SO(2).Admits(p) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomSODeterministicForSeed(t *testing.T) {
	p := RandomSO(rand.New(rand.NewSource(7)), 4, 2, 3, 0.3)
	q := RandomSO(rand.New(rand.NewSource(7)), 4, 2, 3, 0.3)
	if p.Key() != q.Key() {
		t.Error("same seed produced different patterns")
	}
}

func TestCountSOMatchesEnumeration(t *testing.T) {
	want, err := CountSO(3, 1, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	forEachSO(t, 3, 1, 2, Options{}, func(p *model.Pattern) bool {
		got++
		return true
	})
	if got != want {
		t.Errorf("enumerated %d patterns, CountSO says %d", got, want)
	}
	// 1 (no faulty) + 3 faulty sets × 2^(2 rounds × 2 recipients) = 1 + 3·16 = 49.
	if want != 49 {
		t.Errorf("CountSO(3,1,2) = %d, want 49", want)
	}
}

func TestSOPatternsAllDistinctAndAdmitted(t *testing.T) {
	seen := make(map[string]bool)
	forEachSO(t, 3, 1, 2, Options{}, func(p *model.Pattern) bool {
		k := p.Key()
		if seen[k] {
			t.Errorf("duplicate pattern %v", p)
		}
		seen[k] = true
		if err := model.SO(1).Admits(p); err != nil {
			t.Errorf("enumerated pattern outside SO(1): %v", err)
		}
		return true
	})
	if len(seen) != 49 {
		t.Errorf("enumerated %d distinct patterns, want 49", len(seen))
	}
}

func TestSOPatternsEarlyStop(t *testing.T) {
	count := 0
	forEachSO(t, 3, 1, 2, Options{}, func(p *model.Pattern) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("enumeration did not stop early: %d calls", count)
	}
}

func TestCountSOIncludeSelfDrops(t *testing.T) {
	base, err := CountSO(2, 1, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withSelf, err := CountSO(2, 1, 1, Options{IncludeSelfDrops: true})
	if err != nil {
		t.Fatal(err)
	}
	// n=2, t=1, horizon=1: base = 1 + 2·2^1 = 5; with self = 1 + 2·2^2 = 9.
	if base != 5 || withSelf != 9 {
		t.Errorf("CountSO = %d / %d, want 5 / 9", base, withSelf)
	}
}

func TestSOPatternsMaxPatternsGuard(t *testing.T) {
	if _, err := NewSOPatterns(4, 2, 4, Options{MaxPatterns: 10}); err == nil {
		t.Fatal("MaxPatterns guard did not fire")
	}
}

func TestCrashPatternsDistinctAndAdmitted(t *testing.T) {
	seen := make(map[string]bool)
	forEachCrash(t, 3, 1, 2, func(p *model.Pattern) bool {
		k := p.Key()
		if seen[k] {
			t.Errorf("duplicate crash pattern %v", p)
		}
		seen[k] = true
		if err := model.Crash(1).Admits(p); err != nil {
			t.Errorf("enumerated pattern outside crash(1): %v", err)
		}
		return true
	})
	// Faulty sets: {} plus 3 singletons. Per faulty agent: crash at 0 or 1
	// with a proper subset of the 2 others (3 choices each) plus "never":
	// 2·3 + 1 = 7. Total = 1 + 3·7 = 22.
	if len(seen) != 22 {
		t.Errorf("enumerated %d crash patterns, want 22", len(seen))
	}
}

func TestCrashEnumerationIsSubsetOfSO(t *testing.T) {
	soKeys := make(map[string]bool)
	forEachSO(t, 3, 1, 2, Options{}, func(p *model.Pattern) bool {
		soKeys[p.Key()] = true
		return true
	})
	forEachCrash(t, 3, 1, 2, func(p *model.Pattern) bool {
		if !soKeys[p.Key()] {
			t.Errorf("crash pattern not in SO enumeration: %v", p)
		}
		return true
	})
}

func TestInitVectorsCollect(t *testing.T) {
	var got [][]model.Value
	forEachInits(t, 3, func(inits []model.Value) bool {
		cp := make([]model.Value, len(inits))
		copy(cp, inits)
		got = append(got, cp)
		return true
	})
	if len(got) != 8 {
		t.Fatalf("enumerated %d init vectors, want 8", len(got))
	}
	if got[0][0] != model.Zero || got[0][1] != model.Zero || got[0][2] != model.Zero {
		t.Errorf("first vector %v, want all zeros", got[0])
	}
	if got[5][0] != model.One || got[5][1] != model.Zero || got[5][2] != model.One {
		t.Errorf("vector 5 = %v, want [1 0 1] (agent 0 = LSB)", got[5])
	}
	if got[7][0] != model.One || got[7][1] != model.One || got[7][2] != model.One {
		t.Errorf("last vector %v, want all ones", got[7])
	}
}

func TestUniformInits(t *testing.T) {
	inits := UniformInits(4, model.One)
	for i, v := range inits {
		if v != model.One {
			t.Errorf("inits[%d] = %v, want 1", i, v)
		}
	}
}

func TestSubsetsUpTo(t *testing.T) {
	got := subsetsUpTo(4, 2)
	// 1 empty + 4 singletons + 6 pairs = 11.
	if len(got) != 11 {
		t.Fatalf("len = %d, want 11", len(got))
	}
	if len(got[0]) != 0 {
		t.Error("first subset should be empty")
	}
	last := got[len(got)-1]
	if len(last) != 2 || last[0] != 2 || last[1] != 3 {
		t.Errorf("last subset = %v, want [2 3]", last)
	}
}
