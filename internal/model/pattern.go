package model

import (
	"errors"
	"fmt"
)

// Pattern is a failure pattern (the paper's adversary α = (N, F)): the set
// of nonfaulty agents together with, for each round, which messages are
// dropped. Patterns have a fixed horizon: Drop may only be called for send
// times m < Horizon(), and messages sent at or beyond the horizon are
// always delivered. (All protocols in this repository decide by round t+2,
// so a horizon of t+2 loses nothing.)
//
// The zero Pattern is not usable; construct with NewPattern.
type Pattern struct {
	n       int
	horizon int
	faulty  []bool
	// drops[m*n*n + int(i)*n + int(j)] reports whether the message sent by
	// i to j at time m (round m+1) is dropped.
	drops []bool
}

// NewPattern returns a failure-free pattern for n agents with the given
// horizon (number of rounds for which drops can be specified).
func NewPattern(n, horizon int) *Pattern {
	if n <= 0 {
		panic("model: NewPattern with n <= 0")
	}
	if horizon < 0 {
		panic("model: NewPattern with negative horizon")
	}
	return &Pattern{
		n:       n,
		horizon: horizon,
		faulty:  make([]bool, n),
		drops:   make([]bool, horizon*n*n),
	}
}

// N is the number of agents.
func (p *Pattern) N() int { return p.n }

// Horizon is the number of rounds for which drops can be specified.
func (p *Pattern) Horizon() int { return p.horizon }

// SetFaulty marks agent i as faulty (removes it from the nonfaulty set N).
// Marking an agent faulty does not by itself drop any message: the paper
// explicitly allows a faulty agent that "acts nonfaulty throughout the run"
// (footnote 3), and several proofs depend on such agents.
func (p *Pattern) SetFaulty(i AgentID) { p.faulty[i] = true }

// SetNonfaulty returns agent i to the nonfaulty set and restores delivery
// of every message it sends within the horizon.
func (p *Pattern) SetNonfaulty(i AgentID) {
	p.faulty[i] = false
	for m := 0; m < p.horizon; m++ {
		for j := 0; j < p.n; j++ {
			p.drops[p.idx(m, i, AgentID(j))] = false
		}
	}
}

// Nonfaulty reports whether agent i is in the nonfaulty set N.
func (p *Pattern) Nonfaulty(i AgentID) bool { return !p.faulty[i] }

// Faulty reports whether agent i is faulty.
func (p *Pattern) Faulty(i AgentID) bool { return p.faulty[i] }

// NumFaulty is the number of faulty agents.
func (p *Pattern) NumFaulty() int {
	k := 0
	for _, f := range p.faulty {
		if f {
			k++
		}
	}
	return k
}

// NonfaultySet returns the nonfaulty agents in increasing order.
func (p *Pattern) NonfaultySet() []AgentID {
	out := make([]AgentID, 0, p.n)
	for i := 0; i < p.n; i++ {
		if !p.faulty[i] {
			out = append(out, AgentID(i))
		}
	}
	return out
}

// FaultySet returns the faulty agents in increasing order.
func (p *Pattern) FaultySet() []AgentID {
	out := make([]AgentID, 0, p.n)
	for i := 0; i < p.n; i++ {
		if p.faulty[i] {
			out = append(out, AgentID(i))
		}
	}
	return out
}

func (p *Pattern) idx(m int, i, j AgentID) int {
	return m*p.n*p.n + int(i)*p.n + int(j)
}

// Drop marks the message sent by i to j at time m (round m+1) as dropped
// and marks i faulty: in the sending-omissions model only faulty agents
// lose messages. It panics if m is outside [0, Horizon).
func (p *Pattern) Drop(m int, i, j AgentID) {
	if m < 0 || m >= p.horizon {
		panic(fmt.Sprintf("model: Drop time %d outside horizon %d", m, p.horizon))
	}
	p.faulty[i] = true
	p.drops[p.idx(m, i, j)] = true
}

// Undrop restores delivery of the message sent by i to j at time m. The
// agent's faulty mark is left in place: enumerators sweep drop sets on a
// fixed faulty set, and the paper explicitly allows a faulty agent that
// drops nothing (footnote 3). It panics if m is outside [0, Horizon).
func (p *Pattern) Undrop(m int, i, j AgentID) {
	if m < 0 || m >= p.horizon {
		panic(fmt.Sprintf("model: Undrop time %d outside horizon %d", m, p.horizon))
	}
	p.drops[p.idx(m, i, j)] = false
}

// Silence drops every message agent i sends at times [from, to) (to every
// recipient other than i itself) and marks i faulty. A to beyond the
// horizon is clipped.
func (p *Pattern) Silence(i AgentID, from, to int) {
	if to > p.horizon {
		to = p.horizon
	}
	for m := from; m < to; m++ {
		for j := 0; j < p.n; j++ {
			if AgentID(j) == i {
				continue
			}
			p.Drop(m, i, AgentID(j))
		}
	}
}

// Delivered implements the paper's F(m, i, j): whether the message sent by
// i to j at time m (round m+1) is delivered. Messages sent at or beyond the
// horizon are always delivered.
func (p *Pattern) Delivered(m int, i, j AgentID) bool {
	if m < 0 || m >= p.horizon {
		return true
	}
	return !p.drops[p.idx(m, i, j)]
}

// Clone returns a deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	q := &Pattern{
		n:       p.n,
		horizon: p.horizon,
		faulty:  make([]bool, len(p.faulty)),
		drops:   make([]bool, len(p.drops)),
	}
	copy(q.faulty, p.faulty)
	copy(q.drops, p.drops)
	return q
}

// Key returns a canonical fingerprint of the pattern, suitable for use as a
// map key when deduplicating enumerated patterns.
func (p *Pattern) Key() string {
	buf := make([]byte, 0, 2+len(p.faulty)+len(p.drops))
	buf = appendInt(buf, p.n)
	buf = append(buf, ':')
	for _, f := range p.faulty {
		buf = append(buf, boolByte(f))
	}
	buf = append(buf, ':')
	for _, d := range p.drops {
		buf = append(buf, boolByte(d))
	}
	return string(buf)
}

func boolByte(b bool) byte {
	if b {
		return '1'
	}
	return '0'
}

// String renders the pattern compactly: the faulty set followed by the
// dropped messages.
func (p *Pattern) String() string {
	s := "faulty{"
	first := true
	for i := 0; i < p.n; i++ {
		if p.faulty[i] {
			if !first {
				s += ","
			}
			s += fmt.Sprint(i)
			first = false
		}
	}
	s += "}"
	for m := 0; m < p.horizon; m++ {
		for i := 0; i < p.n; i++ {
			for j := 0; j < p.n; j++ {
				if p.drops[p.idx(m, AgentID(i), AgentID(j))] {
					s += fmt.Sprintf(" drop(m=%d,%d→%d)", m, i, j)
				}
			}
		}
	}
	return s
}

// ErrPatternRejected is wrapped by FailureModel.Admits when a pattern lies
// outside the model.
var ErrPatternRejected = errors.New("pattern outside failure model")

// FailureKind distinguishes the failure models of Section 3.
type FailureKind int

// Supported failure models.
const (
	// SendingOmission is the SO(t) model: a faulty agent may omit an
	// arbitrary set of its outgoing messages in any round.
	SendingOmission FailureKind = iota + 1
	// CrashFailure is the crash model: once a faulty agent omits a message
	// to anyone, it omits all messages in all later rounds. (Within its
	// crash round it may reach an arbitrary subset of recipients.)
	CrashFailure
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case SendingOmission:
		return "SO"
	case CrashFailure:
		return "crash"
	default:
		return "unknown"
	}
}

// FailureModel is a set of failure patterns, parameterized by the maximum
// number t of faulty agents (the paper's SO(t) and crash models).
type FailureModel struct {
	// Kind selects sending omissions or crashes.
	Kind FailureKind
	// T is the maximum number of faulty agents.
	T int
}

// SO returns the sending-omissions model with at most t faulty agents.
func SO(t int) FailureModel { return FailureModel{Kind: SendingOmission, T: t} }

// Crash returns the crash model with at most t faulty agents.
func Crash(t int) FailureModel { return FailureModel{Kind: CrashFailure, T: t} }

// String renders the model, e.g. "SO(2)".
func (fm FailureModel) String() string {
	return fmt.Sprintf("%s(%d)", fm.Kind, fm.T)
}

// Admits reports whether the pattern belongs to the failure model,
// returning a descriptive error (wrapping ErrPatternRejected) if not.
func (fm FailureModel) Admits(p *Pattern) error {
	if got := p.NumFaulty(); got > fm.T {
		return fmt.Errorf("%w: %d faulty agents, model allows %d", ErrPatternRejected, got, fm.T)
	}
	for i := 0; i < p.n; i++ {
		if p.faulty[i] {
			continue
		}
		for m := 0; m < p.horizon; m++ {
			for j := 0; j < p.n; j++ {
				if !p.Delivered(m, AgentID(i), AgentID(j)) {
					return fmt.Errorf("%w: nonfaulty agent %d drops a message at time %d",
						ErrPatternRejected, i, m)
				}
			}
		}
	}
	if fm.Kind == CrashFailure {
		for i := 0; i < p.n; i++ {
			if err := checkCrash(p, AgentID(i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkCrash verifies the crash condition for agent i: if a message from i
// to another agent is dropped at time m, every message from i to another
// agent at every later time within the horizon is also dropped. Messages
// from an agent to itself are ignored: self-delivery models the agent's own
// memory and is behaviorally invisible (footnote 3 of the paper).
func checkCrash(p *Pattern, i AgentID) error {
	crashed := false
	for m := 0; m < p.horizon; m++ {
		anyDrop, allDrop := false, true
		for j := 0; j < p.n; j++ {
			if AgentID(j) == i {
				continue
			}
			if p.Delivered(m, i, AgentID(j)) {
				allDrop = false
			} else {
				anyDrop = true
			}
		}
		if crashed && !allDrop {
			return fmt.Errorf("%w: agent %d sends after crashing (time %d)",
				ErrPatternRejected, i, m)
		}
		if anyDrop {
			crashed = true
		}
	}
	return nil
}
