package model

import (
	"math/rand"
	"testing"
)

// randPerm returns a random permutation of 0..n-1 as AgentIDs.
func randPerm(rng *rand.Rand, n int) []AgentID {
	p := rng.Perm(n)
	out := make([]AgentID, n)
	for i, v := range p {
		out[i] = AgentID(v)
	}
	return out
}

// invPerm inverts a permutation.
func invPerm(perm []AgentID) []AgentID {
	inv := make([]AgentID, len(perm))
	for i, v := range perm {
		inv[v] = AgentID(i)
	}
	return inv
}

// randPattern builds a random SO pattern with up to maxF faulty agents.
func randPattern(rng *rand.Rand, n, horizon, maxF int) *Pattern {
	p := NewPattern(n, horizon)
	f := rng.Intn(maxF + 1)
	for _, i := range rng.Perm(n)[:f] {
		p.SetFaulty(AgentID(i))
		for m := 0; m < horizon; m++ {
			for j := 0; j < n; j++ {
				if rng.Intn(3) == 0 {
					p.Drop(m, AgentID(i), AgentID(j))
				}
			}
		}
	}
	return p
}

func randInits(rng *rand.Rand, n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = Value(rng.Intn(2))
	}
	return out
}

func TestPermuteConvention(t *testing.T) {
	// drop(m=1, 0→2) with perm (0→1, 1→2, 2→0) must become drop(m=1, 1→0).
	p := NewPattern(3, 2)
	p.Drop(1, 0, 2)
	q := p.Permute([]AgentID{1, 2, 0})
	if !q.Faulty(1) || q.Faulty(0) || q.Faulty(2) {
		t.Fatalf("faulty set not relabeled: %v", q)
	}
	if q.Delivered(1, 1, 0) {
		t.Fatalf("drop (1, 0→2) did not move to (1, 1→0): %v", q)
	}
	for m := 0; m < 2; m++ {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if (m == 1 && i == 1 && j == 0) == q.Delivered(m, AgentID(i), AgentID(j)) {
					t.Fatalf("unexpected delivery table at m=%d %d→%d: %v", m, i, j, q)
				}
			}
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		p := randPattern(rng, n, 1+rng.Intn(3), n-1)
		perm := randPerm(rng, n)
		back := p.Permute(perm).Permute(invPerm(perm))
		if back.Key() != p.Key() {
			t.Fatalf("permute round-trip changed pattern:\n %s\n %s", p.Key(), back.Key())
		}
		inits := randInits(rng, n)
		vb := PermuteValues(PermuteValues(inits, perm), invPerm(perm))
		for i := range inits {
			if vb[i] != inits[i] {
				t.Fatalf("value round-trip changed inits: %v vs %v", inits, vb)
			}
		}
	}
}

func TestPermuteRejectsNonPermutation(t *testing.T) {
	p := NewPattern(3, 1)
	for _, perm := range [][]AgentID{
		{0, 1},          // wrong length
		{0, 1, 1},       // repeated
		{0, 1, 3},       // out of range
		{0, -1, 2},      // negative
		{0, 1, 2, 3, 4}, // too long
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Permute(%v) did not panic", perm)
				}
			}()
			p.Permute(perm)
		}()
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		p := randPattern(rng, n, 1+rng.Intn(3), n-1)
		inits := randInits(rng, n)
		rep, repInits, orbit := CanonicalizeScenario(p, inits)
		rep2, repInits2, orbit2 := CanonicalizeScenario(rep, repInits)
		if rep2.Key() != rep.Key() || orbit2 != orbit {
			t.Fatalf("canonicalization not idempotent:\n %s (orbit %d)\n %s (orbit %d)",
				rep.Key(), orbit, rep2.Key(), orbit2)
		}
		for i := range repInits {
			if repInits2[i] != repInits[i] {
				t.Fatalf("canonical inits not stable: %v vs %v", repInits, repInits2)
			}
		}
		if gotOrbit, ok := IsCanonicalScenario(rep, repInits); !ok || gotOrbit != orbit {
			t.Fatalf("representative not reported canonical (ok=%v orbit %d vs %d)", ok, gotOrbit, orbit)
		}
	}
}

func TestCanonicalizePermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		p := randPattern(rng, n, 1+rng.Intn(3), n-1)
		inits := randInits(rng, n)
		rep, repInits, orbit, perm := CanonicalizeScenarioPerm(p, inits)

		// The returned permutation must actually carry (p, inits) onto
		// the representative.
		if got := p.Permute(perm); got.Key() != rep.Key() {
			t.Fatalf("returned perm does not reach representative:\n %s\n %s", got.Key(), rep.Key())
		}
		gotInits := PermuteValues(inits, perm)
		for i := range gotInits {
			if gotInits[i] != repInits[i] {
				t.Fatalf("returned perm does not reach canonical inits: %v vs %v", gotInits, repInits)
			}
		}

		// Every permuted variant canonicalizes to the same representative
		// with the same orbit size.
		sigma := randPerm(rng, n)
		rep2, repInits2, orbit2 := CanonicalizeScenario(p.Permute(sigma), PermuteValues(inits, sigma))
		if rep2.Key() != rep.Key() || orbit2 != orbit {
			t.Fatalf("orbit members disagree on representative:\n %s (orbit %d)\n %s (orbit %d)",
				rep.Key(), orbit, rep2.Key(), orbit2)
		}
		for i := range repInits {
			if repInits2[i] != repInits[i] {
				t.Fatalf("orbit members disagree on canonical inits: %v vs %v", repInits, repInits2)
			}
		}
	}
}

// TestOrbitSizeExhaustive pins orbit sizes against a brute-force count of
// distinct permuted images over all of S_n.
func TestOrbitSizeExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3) // n ≤ 4 keeps n! small
		p := randPattern(rng, n, 1+rng.Intn(2), n-1)
		inits := randInits(rng, n)
		_, _, orbit := CanonicalizeScenario(p, inits)

		seen := map[string]bool{}
		perm := make([]AgentID, n)
		var rec func(k int, used int)
		rec = func(k int, used int) {
			if k == n {
				q := p.Permute(perm)
				key := q.Key() + "|"
				for _, v := range PermuteValues(inits, perm) {
					key += v.String()
				}
				seen[key] = true
				return
			}
			for v := 0; v < n; v++ {
				if used&(1<<v) != 0 {
					continue
				}
				perm[k] = AgentID(v)
				rec(k+1, used|1<<v)
			}
		}
		rec(0, 0)
		if int64(len(seen)) != orbit {
			t.Fatalf("orbit size %d, brute force found %d images (n=%d)", orbit, len(seen), n)
		}
	}
}

func TestOrbitSizeHandPicked(t *testing.T) {
	// Fault-free, inits 011: orbit = C(3,2) = 3.
	p := NewPattern(3, 1)
	if _, _, orbit := CanonicalizeScenario(p, []Value{Zero, One, One}); orbit != 3 {
		t.Fatalf("fault-free 011 orbit = %d, want 3", orbit)
	}
	// Fault-free, uniform inits: orbit 1.
	if _, _, orbit := CanonicalizeScenario(p, []Value{One, One, One}); orbit != 1 {
		t.Fatalf("fault-free 111 orbit = %d, want 1", orbit)
	}
	// One silent agent, uniform inits: orbit = n (choice of the silent
	// agent).
	q := NewPattern(3, 1)
	q.Silence(0, 0, 1)
	if _, _, orbit := CanonicalizeScenario(q, []Value{One, One, One}); orbit != 3 {
		t.Fatalf("silent-agent orbit = %d, want 3", orbit)
	}
	// The canonical representative of that orbit silences the top agent.
	rep, _, _ := CanonicalizeScenario(q, []Value{One, One, One})
	if !rep.Faulty(2) || rep.Faulty(0) || rep.Faulty(1) {
		t.Fatalf("canonical faulty set is not the top block: %v", rep)
	}
}

func TestOrbitSizeDividesFactorial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		p := randPattern(rng, n, 1+rng.Intn(3), n-1)
		inits := randInits(rng, n)
		_, _, orbit := CanonicalizeScenario(p, inits)
		if orbit <= 0 || factorial(n)%orbit != 0 {
			t.Fatalf("orbit %d does not divide %d! (n=%d)", orbit, n, n)
		}
	}
}
