// Package model defines the formal objects of Alpturer, Halpern, and
// van der Meyden, "Optimal Eventual Byzantine Agreement Protocols with
// Omission Failures" (PODC 2023): agents, preference values, decision
// actions, the information-exchange / action-protocol split (Section 3),
// failure patterns and failure models (sending omissions SO(t) and its
// crash-failure special case), and the conventions every EBA context must
// satisfy (Section 5).
//
// Everything else in the repository is built on these types: the round
// engine (internal/engine) executes an Exchange together with an
// ActionProtocol under a Pattern; the epistemic model checker
// (internal/episteme) enumerates Patterns to build interpreted systems.
//
// # Timing conventions
//
// Time m = 0, 1, 2, ... indexes global states; round m+1 is the step taken
// between time m and time m+1. A message "sent at time m" is sent in round
// m+1, and Pattern.Delivered(m, i, j) reports whether the adversary lets it
// through. An agent whose action protocol returns a decide action at time m
// "decides in round m+1".
package model
