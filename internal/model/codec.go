package model

import (
	"fmt"
	"strconv"
	"strings"
)

// MarshalText encodes the pattern in a compact, human-editable form:
//
//	n=<agents>;h=<horizon>;f=<faulty ids>;d=<m:i:j drops>
//
// e.g. "n=3;h=3;f=0;d=0:0:1,0:0:2,1:0:2". It implements
// encoding.TextMarshaler, so patterns embed directly in flags, JSON, and
// config files.
func (p *Pattern) MarshalText() ([]byte, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d;h=%d;f=", p.n, p.horizon)
	first := true
	for i := 0; i < p.n; i++ {
		if p.faulty[i] {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(i))
			first = false
		}
	}
	b.WriteString(";d=")
	first = true
	for m := 0; m < p.horizon; m++ {
		for i := 0; i < p.n; i++ {
			for j := 0; j < p.n; j++ {
				if !p.Delivered(m, AgentID(i), AgentID(j)) {
					if !first {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, "%d:%d:%d", m, i, j)
					first = false
				}
			}
		}
	}
	return []byte(b.String()), nil
}

// UnmarshalText decodes the MarshalText form, replacing the receiver's
// contents. It implements encoding.TextUnmarshaler.
func (p *Pattern) UnmarshalText(text []byte) error {
	var n, h int
	var faulty []int
	type drop struct{ m, i, j int }
	var drops []drop

	for _, field := range strings.Split(string(text), ";") {
		k, v, found := strings.Cut(field, "=")
		if !found {
			return fmt.Errorf("model: bad pattern field %q", field)
		}
		switch k {
		case "n":
			x, err := strconv.Atoi(v)
			if err != nil || x <= 0 {
				return fmt.Errorf("model: bad agent count %q", v)
			}
			n = x
		case "h":
			x, err := strconv.Atoi(v)
			if err != nil || x < 0 {
				return fmt.Errorf("model: bad horizon %q", v)
			}
			h = x
		case "f":
			if v == "" {
				continue
			}
			for _, part := range strings.Split(v, ",") {
				x, err := strconv.Atoi(part)
				if err != nil {
					return fmt.Errorf("model: bad faulty id %q", part)
				}
				faulty = append(faulty, x)
			}
		case "d":
			if v == "" {
				continue
			}
			for _, part := range strings.Split(v, ",") {
				nums := strings.Split(part, ":")
				if len(nums) != 3 {
					return fmt.Errorf("model: bad drop %q", part)
				}
				var d drop
				var err error
				if d.m, err = strconv.Atoi(nums[0]); err != nil {
					return fmt.Errorf("model: bad drop %q", part)
				}
				if d.i, err = strconv.Atoi(nums[1]); err != nil {
					return fmt.Errorf("model: bad drop %q", part)
				}
				if d.j, err = strconv.Atoi(nums[2]); err != nil {
					return fmt.Errorf("model: bad drop %q", part)
				}
				drops = append(drops, d)
			}
		default:
			return fmt.Errorf("model: unknown pattern field %q", k)
		}
	}
	if n == 0 {
		return fmt.Errorf("model: pattern text missing n")
	}
	q := NewPattern(n, h)
	for _, f := range faulty {
		if f < 0 || f >= n {
			return fmt.Errorf("model: faulty id %d out of range", f)
		}
		q.SetFaulty(AgentID(f))
	}
	for _, d := range drops {
		if d.m < 0 || d.m >= h || d.i < 0 || d.i >= n || d.j < 0 || d.j >= n {
			return fmt.Errorf("model: drop (%d,%d,%d) out of range", d.m, d.i, d.j)
		}
		q.Drop(d.m, AgentID(d.i), AgentID(d.j))
	}
	*p = *q
	return nil
}
