package model

import (
	"encoding"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var (
	_ encoding.TextMarshaler   = (*Pattern)(nil)
	_ encoding.TextUnmarshaler = (*Pattern)(nil)
)

func TestPatternTextRoundTrip(t *testing.T) {
	p := NewPattern(3, 3)
	p.Drop(0, 0, 1)
	p.Drop(1, 0, 2)
	p.SetFaulty(2) // faulty without drops must survive the round trip
	text, err := p.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var q Pattern
	if err := q.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if q.Key() != p.Key() {
		t.Errorf("round trip changed pattern:\n  in:  %s\n  out: %s", p, &q)
	}
}

func TestPatternTextRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPattern(4, 3)
		for k := 0; k < rng.Intn(6); k++ {
			p.Drop(rng.Intn(3), AgentID(rng.Intn(4)), AgentID(rng.Intn(4)))
		}
		text, err := p.MarshalText()
		if err != nil {
			return false
		}
		var q Pattern
		if err := q.UnmarshalText(text); err != nil {
			return false
		}
		return q.Key() == p.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternTextFormat(t *testing.T) {
	p := NewPattern(3, 2)
	p.Drop(1, 0, 2)
	text, _ := p.MarshalText()
	got := string(text)
	if got != "n=3;h=2;f=0;d=1:0:2" {
		t.Errorf("MarshalText = %q", got)
	}
}

func TestPatternUnmarshalErrors(t *testing.T) {
	cases := []string{
		"",                      // missing everything
		"n=0;h=1;f=;d=",         // bad n
		"n=3;h=-1;f=;d=",        // bad horizon
		"n=3;h=2;f=9;d=",        // faulty out of range
		"n=3;h=2;f=;d=5:0:1",    // drop round out of range
		"n=3;h=2;f=;d=0:0",      // malformed drop
		"n=3;h=2;f=x;d=",        // bad faulty id
		"n=3;h=2;f=;d=a:b:c",    // non-numeric drop
		"n=3;h=2;f=;d=;zz=1",    // unknown field
		"garbage",               // no key=value
		"n=3;h=2;f=;d=0:0:9",    // recipient out of range
		strings.Repeat("n=", 1), // degenerate
	}
	for _, c := range cases {
		var p Pattern
		if err := p.UnmarshalText([]byte(c)); err == nil {
			t.Errorf("UnmarshalText(%q) accepted", c)
		}
	}
}

func TestPatternUnmarshalEmptySets(t *testing.T) {
	var p Pattern
	if err := p.UnmarshalText([]byte("n=2;h=1;f=;d=")); err != nil {
		t.Fatal(err)
	}
	if p.N() != 2 || p.Horizon() != 1 || p.NumFaulty() != 0 {
		t.Errorf("unexpected pattern %s", &p)
	}
}
