package model

import "bytes"

// This file implements the agent-permutation symmetry of the paper's
// failure models: the exchanges and action protocols treat agents
// uniformly, so relabeling agents maps runs to runs and preserves every
// verdict. Quotienting a sweep by this S_n action — executing one
// representative per orbit and weighting it by the orbit size — shrinks
// exhaustive sweeps by up to n!.
//
// The canonical representative of a scenario (pattern, inits) is the
// lexicographic minimum, over all agent permutations, of the pair
// (Pattern.Key(), inits). Because Pattern.Key() renders the faulty bitmap
// first and '0' < '1', the minimum places the faulty agents at the
// highest indices, so the search only needs the f!·(n−f)! permutations
// that map the faulty set onto the top index block.

// Permute returns the pattern relabeled by perm, where perm[i] is the new
// identity of old agent i: agent perm[i] of the result plays the role
// agent i played in p (it is faulty iff i was, and its message to perm[j]
// at time m is dropped iff i's message to j was). perm must be a
// permutation of 0..n-1; Permute panics otherwise.
func (p *Pattern) Permute(perm []AgentID) *Pattern {
	checkPerm(p.n, perm)
	q := NewPattern(p.n, p.horizon)
	for i := 0; i < p.n; i++ {
		q.faulty[perm[i]] = p.faulty[i]
	}
	for m := 0; m < p.horizon; m++ {
		for i := 0; i < p.n; i++ {
			for j := 0; j < p.n; j++ {
				if p.drops[p.idx(m, AgentID(i), AgentID(j))] {
					q.drops[q.idx(m, perm[i], perm[j])] = true
				}
			}
		}
	}
	return q
}

// checkPerm panics unless perm is a permutation of 0..n-1.
func checkPerm(n int, perm []AgentID) {
	if len(perm) != n {
		panic("model: permutation length does not match agent count")
	}
	var seen [64]bool
	big := n > len(seen)
	var seenBig map[AgentID]bool
	if big {
		seenBig = make(map[AgentID]bool, n)
	}
	for _, v := range perm {
		if int(v) < 0 || int(v) >= n {
			panic("model: permutation entry out of range")
		}
		if big {
			if seenBig[v] {
				panic("model: permutation entry repeated")
			}
			seenBig[v] = true
		} else {
			if seen[v] {
				panic("model: permutation entry repeated")
			}
			seen[v] = true
		}
	}
}

// PermuteValues returns the value vector relabeled by perm: the result's
// entry perm[i] is vals[i]. perm must be a permutation of 0..len(vals)-1;
// PermuteValues panics otherwise.
func PermuteValues(vals []Value, perm []AgentID) []Value {
	checkPerm(len(vals), perm)
	out := make([]Value, len(vals))
	for i, v := range vals {
		out[perm[i]] = v
	}
	return out
}

// CanonicalizeScenario returns the canonical representative of the
// scenario (p, inits) under agent permutation, together with the orbit
// size (the number of distinct scenarios obtained by permuting agents,
// including the scenario itself). The representative is the
// lexicographically minimal (Pattern.Key(), inits) pair over all n!
// permutations; two scenarios permute into each other iff they share a
// representative. len(inits) must equal p.N().
//
// The search cost is f!·(n−f)! candidate keys for f faulty agents — the
// only permutations that can reach the minimum are those mapping the
// faulty set onto the top index block.
func CanonicalizeScenario(p *Pattern, inits []Value) (*Pattern, []Value, int64) {
	rep, repInits, orbit, _ := CanonicalizeScenarioPerm(p, inits)
	return rep, repInits, orbit
}

// CanonicalizeScenarioPerm is CanonicalizeScenario, additionally
// returning a permutation that carries (p, inits) onto the
// representative: rep = p.Permute(perm), repInits = PermuteValues(inits,
// perm). When several permutations reach the representative (the
// scenario has a non-trivial stabilizer) the returned one is the first in
// the deterministic search order.
func CanonicalizeScenarioPerm(p *Pattern, inits []Value) (*Pattern, []Value, int64, []AgentID) {
	s := newCanonSearch(p, inits)
	s.run()
	rep := p.Permute(s.best)
	repInits := PermuteValues(inits, s.best)
	return rep, repInits, s.orbit(), s.best
}

// IsCanonicalScenario reports whether (p, inits) is its own orbit
// representative, returning the orbit size. Sweep quotienting uses this
// to keep exactly one scenario per orbit without materializing the
// representative.
func IsCanonicalScenario(p *Pattern, inits []Value) (int64, bool) {
	s := newCanonSearch(p, inits)
	s.run()
	return s.orbit(), s.isIdentityMin()
}

// canonSearch enumerates the split-respecting permutations of one
// scenario and tracks the minimal permuted key.
type canonSearch struct {
	p     *Pattern
	inits []Value
	n     int

	// slots[k] lists the old agents that may occupy new index k's block:
	// nonfaulty agents fill indices 0..n-f-1, faulty agents the rest.
	nonfaulty []AgentID
	faulty    []AgentID

	// inv[a] is the old agent at new index a for the candidate under
	// construction; perm is its inverse (old → new).
	inv  []AgentID
	perm []AgentID

	// cur and min hold candidate key bytes: the drop bitmap in new-index
	// order followed by the permuted inits. The faulty bitmap is omitted —
	// every candidate shares it.
	cur []byte
	min []byte

	best     []AgentID // first permutation achieving min
	minCount int64     // permutations achieving min = stabilizer order
}

func newCanonSearch(p *Pattern, inits []Value) *canonSearch {
	if len(inits) != p.n {
		panic("model: CanonicalizeScenario inits length does not match pattern")
	}
	s := &canonSearch{
		p:         p,
		inits:     inits,
		n:         p.n,
		nonfaulty: p.NonfaultySet(),
		faulty:    p.FaultySet(),
		inv:       make([]AgentID, p.n),
		perm:      make([]AgentID, p.n),
		cur:       make([]byte, len(p.drops)+p.n),
		min:       nil,
	}
	return s
}

// run enumerates every assignment of nonfaulty agents to the low block
// and faulty agents to the high block, evaluating each candidate key.
func (s *canonSearch) run() {
	s.permuteBlock(s.nonfaulty, 0, func() {
		s.permuteBlock(s.faulty, len(s.nonfaulty), func() {
			s.evaluate()
		})
	})
}

// permuteBlock assigns every ordering of agents to new indices base,
// base+1, ... via Heap-style recursion on a scratch copy.
func (s *canonSearch) permuteBlock(agents []AgentID, base int, done func()) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(agents) {
			done()
			return
		}
		for i := k; i < len(agents); i++ {
			agents[k], agents[i] = agents[i], agents[k]
			s.inv[base+k] = agents[k]
			rec(k + 1)
			agents[k], agents[i] = agents[i], agents[k]
		}
	}
	rec(0)
}

// evaluate renders the candidate key for the current inv assignment and
// folds it into the running minimum.
func (s *canonSearch) evaluate() {
	p, n := s.p, s.n
	buf := s.cur
	w := 0
	for m := 0; m < p.horizon; m++ {
		mBase := m * n * n
		for a := 0; a < n; a++ {
			row := mBase + int(s.inv[a])*n
			for b := 0; b < n; b++ {
				buf[w] = boolByte(p.drops[row+int(s.inv[b])])
				w++
			}
		}
	}
	for a := 0; a < n; a++ {
		buf[w] = valueByte(s.inits[s.inv[a]])
		w++
	}
	switch {
	case s.min == nil || bytes.Compare(buf, s.min) < 0:
		if s.min == nil {
			s.min = make([]byte, len(buf))
		}
		copy(s.min, buf)
		s.minCount = 1
		s.best = s.currentPerm()
	case bytes.Equal(buf, s.min):
		s.minCount++
	}
}

// currentPerm snapshots the old→new permutation for the current inv.
func (s *canonSearch) currentPerm() []AgentID {
	perm := make([]AgentID, s.n)
	for a := 0; a < s.n; a++ {
		perm[s.inv[a]] = AgentID(a)
	}
	return perm
}

// orbit returns n!/|stabilizer|; the candidates achieving the minimum
// are exactly one coset of the scenario's stabilizer.
func (s *canonSearch) orbit() int64 {
	return factorial(s.n) / s.minCount
}

// isIdentityMin reports whether the identity permutation attains the
// minimal key — i.e. the scenario is already canonical. The identity is
// split-respecting only when the faulty agents already occupy the top
// index block.
func (s *canonSearch) isIdentityMin() bool {
	f := len(s.faulty)
	for k, a := range s.faulty {
		if int(a) != s.n-f+k {
			return false
		}
	}
	p, n := s.p, s.n
	w := 0
	for m := 0; m < p.horizon; m++ {
		mBase := m * n * n
		for a := 0; a < n; a++ {
			row := mBase + a*n
			for b := 0; b < n; b++ {
				if s.min[w] != boolByte(p.drops[row+b]) {
					return false
				}
				w++
			}
		}
	}
	for a := 0; a < n; a++ {
		if s.min[w] != valueByte(s.inits[a]) {
			return false
		}
		w++
	}
	return true
}

func valueByte(v Value) byte {
	switch v {
	case Zero:
		return '0'
	case One:
		return '1'
	default:
		return '?'
	}
}

func factorial(n int) int64 {
	f := int64(1)
	for k := 2; k <= n; k++ {
		f *= int64(k)
	}
	return f
}
