package model

import (
	"testing"
	"testing/quick"
)

func TestValueIsSet(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Zero, true},
		{One, true},
		{None, false},
	}
	for _, c := range cases {
		if got := c.v.IsSet(); got != c.want {
			t.Errorf("IsSet(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestValueFlip(t *testing.T) {
	if Zero.Flip() != One {
		t.Errorf("Flip(0) = %v, want 1", Zero.Flip())
	}
	if One.Flip() != Zero {
		t.Errorf("Flip(1) = %v, want 0", One.Flip())
	}
}

func TestValueFlipNonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Flip(None) did not panic")
		}
	}()
	_ = None.Flip()
}

func TestValueString(t *testing.T) {
	if Zero.String() != "0" || One.String() != "1" || None.String() != "⊥" {
		t.Errorf("unexpected renderings: %q %q %q", Zero, One, None)
	}
}

func TestDecideRoundTrip(t *testing.T) {
	for _, v := range []Value{Zero, One} {
		a := Decide(v)
		if !a.IsDecide() {
			t.Errorf("Decide(%v).IsDecide() = false", v)
		}
		if a.Decision() != v {
			t.Errorf("Decide(%v).Decision() = %v", v, a.Decision())
		}
	}
}

func TestDecideNonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Decide(None) did not panic")
		}
	}()
	_ = Decide(None)
}

func TestNoopProperties(t *testing.T) {
	if Noop.IsDecide() {
		t.Error("Noop.IsDecide() = true")
	}
	if Noop.Decision() != None {
		t.Errorf("Noop.Decision() = %v, want None", Noop.Decision())
	}
	if Noop.String() != "noop" {
		t.Errorf("Noop.String() = %q", Noop)
	}
}

func TestActionString(t *testing.T) {
	if Decide0.String() != "decide(0)" || Decide1.String() != "decide(1)" {
		t.Errorf("unexpected action strings: %q %q", Decide0, Decide1)
	}
}

func TestDecisionFlipConsistency(t *testing.T) {
	// Property: for set values, Decide(v).Decision().Flip() == v.Flip().
	f := func(b bool) bool {
		v := Zero
		if b {
			v = One
		}
		return Decide(v).Decision().Flip() == v.Flip()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
