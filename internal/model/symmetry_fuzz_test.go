package model

import (
	"slices"
	"testing"
)

// fuzzScenario decodes an arbitrary byte string into a small scenario
// plus one extra agent permutation, treating the bytes as a bit stream
// (exhausted streams read as zero, so every input decodes). Sizes stay
// small — n ≤ 5, horizon ≤ 3 — because the canonicalization cost is a
// sum over split-respecting permutations.
type fuzzScenario struct {
	data []byte
	pos  int
	cur  byte
	bit  uint
}

func (s *fuzzScenario) nextByte() byte {
	if s.pos >= len(s.data) {
		return 0
	}
	v := s.data[s.pos]
	s.pos++
	return v
}

func (s *fuzzScenario) nextBit() bool {
	if s.bit == 0 {
		s.cur = s.nextByte()
		s.bit = 8
	}
	s.bit--
	return s.cur>>s.bit&1 == 1
}

// decode returns the scenario and a permutation drawn from the stream.
func (s *fuzzScenario) decode() (*Pattern, []Value, []AgentID) {
	n := 2 + int(s.nextByte())%4       // 2..5
	horizon := 1 + int(s.nextByte())%3 // 1..3
	p := NewPattern(n, horizon)
	for m := 0; m < horizon; m++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if s.nextBit() {
					p.Drop(m, AgentID(i), AgentID(j))
				}
			}
		}
	}
	inits := make([]Value, n)
	for i := range inits {
		if s.nextBit() {
			inits[i] = One
		} else {
			inits[i] = Zero
		}
	}
	// Lehmer-decode a permutation from the remaining bytes.
	avail := make([]AgentID, n)
	for i := range avail {
		avail[i] = AgentID(i)
	}
	perm := make([]AgentID, 0, n)
	for len(avail) > 0 {
		k := int(s.nextByte()) % len(avail)
		perm = append(perm, avail[k])
		avail = append(avail[:k], avail[k+1:]...)
	}
	return p, inits, perm
}

// FuzzCanonicalizeScenario pins the canonicalization contract on
// arbitrary scenarios: it never panics, it is idempotent, every member
// of an orbit canonicalizes to the same representative with the same
// orbit size, the orbit size divides n!, and IsCanonicalScenario agrees
// with the representative comparison. These are exactly the properties
// the quotiented sweeps (source.Quotient, episteme.ExpandQuotient) rely
// on for full-sweep equivalence.
func FuzzCanonicalizeScenario(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 1, 0xff, 0x0f, 3, 1, 2})
	f.Add([]byte{2, 2, 0xa5, 0x5a, 0xa5, 0x5a, 0xa5, 0x5a, 7, 11, 13})
	f.Add([]byte{3, 2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5})
	f.Add([]byte{3, 0, 0x01, 0x80, 0x00, 0x40, 2, 0, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, inits, sigma := (&fuzzScenario{data: data}).decode()
		n := p.N()

		rep, repInits, orbit, perm := CanonicalizeScenarioPerm(p, inits)

		// The returned permutation is split-respecting: the
		// representative has the same shape with its faulty agents in
		// the top index block.
		if rep.N() != n || rep.Horizon() != p.Horizon() || rep.NumFaulty() != p.NumFaulty() {
			t.Fatalf("representative changed shape: %v vs %v", rep, p)
		}
		f0 := n - rep.NumFaulty()
		for i := 0; i < n; i++ {
			if rep.Faulty(AgentID(i)) != (i >= f0) {
				t.Fatalf("representative's faulty set is not the top block: %v", rep)
			}
		}
		if len(perm) != n {
			t.Fatalf("returned permutation has length %d for n=%d", len(perm), n)
		}

		// The orbit size divides n! (orbit-stabilizer).
		if orbit < 1 || factorial(n)%orbit != 0 {
			t.Fatalf("orbit %d does not divide %d! = %d", orbit, n, factorial(n))
		}

		// Idempotent: the representative is its own representative.
		rep2, repInits2, orbit2 := CanonicalizeScenario(rep, repInits)
		if rep2.Key() != rep.Key() || !slices.Equal(repInits2, repInits) || orbit2 != orbit {
			t.Fatalf("canonicalization is not idempotent: (%s, %v, %d) -> (%s, %v, %d)",
				rep.Key(), repInits, orbit, rep2.Key(), repInits2, orbit2)
		}
		if o, ok := IsCanonicalScenario(rep, repInits); !ok || o != orbit {
			t.Fatalf("IsCanonicalScenario(rep) = (%d, %v), want (%d, true)", o, ok, orbit)
		}

		// IsCanonicalScenario agrees with the representative comparison
		// on the original scenario.
		isRep := rep.Key() == p.Key() && slices.Equal(repInits, inits)
		if o, ok := IsCanonicalScenario(p, inits); ok != isRep || o != orbit {
			t.Fatalf("IsCanonicalScenario = (%d, %v), want (%d, %v)", o, ok, orbit, isRep)
		}

		// Permutation-invariant: any relabeling of the scenario reaches
		// the same representative and orbit.
		q := p.Permute(sigma)
		qInits := PermuteValues(inits, sigma)
		rq, rqInits, orbitQ := CanonicalizeScenario(q, qInits)
		if rq.Key() != rep.Key() || !slices.Equal(rqInits, repInits) || orbitQ != orbit {
			t.Fatalf("orbit member canonicalizes differently: (%s, %v, %d) vs (%s, %v, %d)",
				rq.Key(), rqInits, orbitQ, rep.Key(), repInits, orbit)
		}
	})
}
