package model

import "strconv"

// AgentID identifies an agent. Agents are numbered 0..n-1. (The paper
// numbers agents 1..n; we follow Go slice indexing and translate only when
// rendering output.)
type AgentID int

// Value is a binary consensus value, or None for the paper's ⊥ ("no value
// yet"). The numeric values of Zero and One are meaningful: they are the
// protocol values 0 and 1.
type Value int8

// Consensus values.
const (
	// None is the paper's ⊥: undecided / no observation.
	None Value = -1
	// Zero is the consensus value 0.
	Zero Value = 0
	// One is the consensus value 1.
	One Value = 1
)

// IsSet reports whether v is a concrete consensus value (0 or 1) rather
// than None.
func (v Value) IsSet() bool { return v == Zero || v == One }

// Flip returns the opposite consensus value. It panics if v is None, since
// ⊥ has no opposite; callers must guard with IsSet.
func (v Value) Flip() Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	default:
		panic("model: Flip of None")
	}
}

// String renders the value as "0", "1", or "⊥".
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "⊥"
	}
}

// Action is an action-protocol output: decide 0, decide 1, or do nothing.
type Action int8

// Actions available to every agent (the paper's A_i).
const (
	// Noop is the paper's noop action.
	Noop Action = iota
	// Decide0 is decide_i(0).
	Decide0
	// Decide1 is decide_i(1).
	Decide1
)

// Decide returns the decide action for consensus value v.
// It panics if v is None.
func Decide(v Value) Action {
	switch v {
	case Zero:
		return Decide0
	case One:
		return Decide1
	default:
		panic("model: Decide(None)")
	}
}

// Decision returns the value the action decides, or None for Noop.
func (a Action) Decision() Value {
	switch a {
	case Decide0:
		return Zero
	case Decide1:
		return One
	default:
		return None
	}
}

// IsDecide reports whether the action is a decision.
func (a Action) IsDecide() bool { return a == Decide0 || a == Decide1 }

// String renders the action in the paper's notation.
func (a Action) String() string {
	switch a {
	case Decide0:
		return "decide(0)"
	case Decide1:
		return "decide(1)"
	default:
		return "noop"
	}
}

// appendInt appends the decimal form of x to dst. It is a tiny shared
// helper for building canonical state keys without fmt overhead.
func appendInt(dst []byte, x int) []byte {
	return strconv.AppendInt(dst, int64(x), 10)
}
