package model

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewPatternFailureFree(t *testing.T) {
	p := NewPattern(4, 3)
	if p.N() != 4 || p.Horizon() != 3 {
		t.Fatalf("N=%d Horizon=%d, want 4, 3", p.N(), p.Horizon())
	}
	if p.NumFaulty() != 0 {
		t.Errorf("fresh pattern has %d faulty agents", p.NumFaulty())
	}
	for m := 0; m < 3; m++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if !p.Delivered(m, AgentID(i), AgentID(j)) {
					t.Errorf("message (%d,%d→%d) dropped in failure-free pattern", m, i, j)
				}
			}
		}
	}
}

func TestDropMarksFaulty(t *testing.T) {
	p := NewPattern(3, 2)
	p.Drop(1, 0, 2)
	if p.Nonfaulty(0) {
		t.Error("agent 0 still nonfaulty after dropping a message")
	}
	if p.Delivered(1, 0, 2) {
		t.Error("dropped message reported delivered")
	}
	if !p.Delivered(0, 0, 2) {
		t.Error("undropped message reported dropped")
	}
}

func TestDeliveredBeyondHorizon(t *testing.T) {
	p := NewPattern(3, 2)
	p.SetFaulty(1)
	if !p.Delivered(5, 1, 0) {
		t.Error("message beyond horizon should be delivered")
	}
	if !p.Delivered(-1, 1, 0) {
		t.Error("negative time should be treated as delivered")
	}
}

func TestDropOutsideHorizonPanics(t *testing.T) {
	p := NewPattern(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Drop beyond horizon did not panic")
		}
	}()
	p.Drop(2, 0, 1)
}

func TestSilence(t *testing.T) {
	p := NewPattern(3, 4)
	p.Silence(1, 1, 3)
	for m := 0; m < 4; m++ {
		for j := 0; j < 3; j++ {
			got := p.Delivered(m, 1, AgentID(j))
			want := m < 1 || m >= 3 || j == 1 // self messages are not silenced
			if got != want {
				t.Errorf("Delivered(%d,1,%d) = %v, want %v", m, j, got, want)
			}
		}
	}
	if p.Nonfaulty(1) {
		t.Error("silenced agent not marked faulty")
	}
}

func TestSilenceClipsToHorizon(t *testing.T) {
	p := NewPattern(2, 2)
	p.Silence(0, 0, 100) // must not panic
	if p.Delivered(1, 0, 1) {
		t.Error("message within horizon not silenced")
	}
}

func TestSetNonfaultyRestoresDelivery(t *testing.T) {
	p := NewPattern(3, 2)
	p.Silence(2, 0, 2)
	p.SetNonfaulty(2)
	if p.Faulty(2) {
		t.Error("agent still faulty after SetNonfaulty")
	}
	if !p.Delivered(0, 2, 0) || !p.Delivered(1, 2, 1) {
		t.Error("drops not cleared by SetNonfaulty")
	}
}

func TestFaultyAndNonfaultySets(t *testing.T) {
	p := NewPattern(4, 1)
	p.SetFaulty(1)
	p.SetFaulty(3)
	gotF := p.FaultySet()
	if len(gotF) != 2 || gotF[0] != 1 || gotF[1] != 3 {
		t.Errorf("FaultySet() = %v, want [1 3]", gotF)
	}
	gotN := p.NonfaultySet()
	if len(gotN) != 2 || gotN[0] != 0 || gotN[1] != 2 {
		t.Errorf("NonfaultySet() = %v, want [0 2]", gotN)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewPattern(3, 2)
	p.Drop(0, 0, 1)
	q := p.Clone()
	q.Drop(1, 2, 0)
	if !p.Delivered(1, 2, 0) {
		t.Error("mutating clone affected original")
	}
	if q.Delivered(0, 0, 1) {
		t.Error("clone lost original drop")
	}
}

func TestKeyDistinguishesPatterns(t *testing.T) {
	p := NewPattern(3, 2)
	q := NewPattern(3, 2)
	if p.Key() != q.Key() {
		t.Error("identical patterns have different keys")
	}
	q.SetFaulty(0)
	if p.Key() == q.Key() {
		t.Error("faulty-set difference not reflected in key")
	}
	r := NewPattern(3, 2)
	r.Drop(0, 1, 2)
	rr := NewPattern(3, 2)
	rr.Drop(1, 1, 2)
	if r.Key() == rr.Key() {
		t.Error("different drop rounds produce equal keys")
	}
}

func TestKeyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPattern(4, 3)
		for k := 0; k < 5; k++ {
			m := rng.Intn(3)
			i := AgentID(rng.Intn(4))
			j := AgentID(rng.Intn(4))
			p.Drop(m, i, j)
		}
		return p.Clone().Key() == p.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternString(t *testing.T) {
	p := NewPattern(3, 2)
	p.Drop(1, 0, 2)
	s := p.String()
	if !strings.Contains(s, "faulty{0}") {
		t.Errorf("String() = %q, missing faulty set", s)
	}
	if !strings.Contains(s, "drop(m=1,0→2)") {
		t.Errorf("String() = %q, missing drop record", s)
	}
}

func TestSOAdmits(t *testing.T) {
	p := NewPattern(4, 3)
	p.Silence(0, 0, 3)
	if err := SO(1).Admits(p); err != nil {
		t.Errorf("SO(1) rejected a one-faulty pattern: %v", err)
	}
	p.Silence(1, 0, 3)
	err := SO(1).Admits(p)
	if err == nil {
		t.Fatal("SO(1) admitted a two-faulty pattern")
	}
	if !errors.Is(err, ErrPatternRejected) {
		t.Errorf("error %v does not wrap ErrPatternRejected", err)
	}
	if err := SO(2).Admits(p); err != nil {
		t.Errorf("SO(2) rejected a two-faulty pattern: %v", err)
	}
}

func TestCrashAdmitsSuffixClosedDrops(t *testing.T) {
	// Crash at time 1 reaching only agent 0 in its crash round: OK.
	p := NewPattern(3, 3)
	p.Drop(1, 2, 1) // time 1: reaches 0, not 1
	p.Silence(2, 2, 3)
	p.Drop(2, 2, 2) // silence skips self; crash drops self messages too
	if err := Crash(1).Admits(p); err != nil {
		t.Errorf("Crash(1) rejected a valid crash pattern: %v", err)
	}

	// Recovery (drop then deliver in a later round) is not a crash.
	q := NewPattern(3, 3)
	for j := 0; j < 3; j++ {
		q.Drop(0, 1, AgentID(j))
	}
	// time 1: agent 1 sends again — invalid under crash.
	if err := Crash(1).Admits(q); err == nil {
		t.Error("Crash(1) admitted an omit-then-send pattern")
	}
	if err := SO(1).Admits(q); err != nil {
		t.Errorf("SO(1) rejected an omission pattern: %v", err)
	}
}

func TestAdmitsRejectsNonfaultyDrops(t *testing.T) {
	// Construct an inconsistent pattern by clearing faultiness after a drop.
	p := NewPattern(3, 2)
	p.Drop(0, 1, 2)
	p.faulty[1] = false // bypass the API to simulate corruption
	if err := SO(1).Admits(p); err == nil {
		t.Error("Admits accepted a pattern where a nonfaulty agent drops")
	}
}

func TestFailureModelString(t *testing.T) {
	if SO(2).String() != "SO(2)" {
		t.Errorf("SO(2).String() = %q", SO(2).String())
	}
	if Crash(1).String() != "crash(1)" {
		t.Errorf("Crash(1).String() = %q", Crash(1).String())
	}
}

func TestCrashIsSpecialCaseOfSO(t *testing.T) {
	// Property: every pattern admitted by Crash(t) is admitted by SO(t).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPattern(4, 3)
		// Build a legal crash pattern: agent 0 crashes at a random time,
		// reaching a random subset in the crash round.
		crashAt := rng.Intn(3)
		for j := 0; j < 4; j++ {
			if rng.Intn(2) == 0 {
				p.Drop(crashAt, 0, AgentID(j))
			}
		}
		for m := crashAt + 1; m < 3; m++ {
			for j := 0; j < 4; j++ {
				p.Drop(m, 0, AgentID(j))
			}
		}
		if err := Crash(1).Admits(p); err != nil {
			return true // not a legal crash pattern (e.g. empty subset at crashAt): skip
		}
		return SO(1).Admits(p) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
