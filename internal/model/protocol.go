package model

// Message is a single protocol message. The concrete type depends on the
// information-exchange protocol: a bare decide value for Emin, a small enum
// for Ebasic, a communication graph for Efip. A nil Message is the paper's
// ⊥ ("no message sent").
//
// Every EBA context requires that a recipient can tell from the message
// whether the sender is deciding 0, deciding 1, or neither (the disjoint
// message classes M0, M1, M2 of Section 5); Announces exposes exactly that.
type Message interface {
	// Announces returns Zero if the message belongs to class M0 (the sender
	// is deciding 0 this round), One if it belongs to M1, and None for
	// class M2 (any other message).
	Announces() Value

	// Bits is the length of the message's wire encoding in bits, used for
	// the message-complexity experiments (Proposition 8.1).
	Bits() int

	// String renders the message for traces.
	String() string
}

// State is an agent's local state under some information-exchange protocol.
// Every EBA context requires the components exposed here (Section 5):
// a time counter, the initial preference, the decision taken (if any), and
// the "just decided" observation jd. Concrete exchanges add more (Ebasic's
// #1 counter, Efip's communication graph) and expose it on their own state
// types.
type State interface {
	// Time is the state's time component; all agents have Time() == m at
	// time m (the system is synchronous).
	Time() int

	// Init is the agent's initial preference.
	Init() Value

	// Decided is the decision recorded in the state, or None.
	Decided() Value

	// JustDecided is the paper's jd_i: v if the agent learned in the last
	// round that some agent just decided v, None otherwise.
	JustDecided() Value

	// Key returns a canonical fingerprint of the local state. Two local
	// states of the same agent are indistinguishable (in the sense of the
	// knowledge relation ~_i) iff their keys are equal. Keys are only
	// comparable between states produced by the same exchange protocol.
	Key() string
}

// Exchange is an information-exchange protocol E = ⟨E_1,...,E_n⟩
// (Section 3). It fixes the local state space, the initial states, and the
// functions μ (which messages to send, given the current action) and δ
// (how to update the local state after a round).
//
// Implementations must be deterministic and must treat State values as
// immutable: Update returns a fresh state and never mutates its argument.
type Exchange interface {
	// Name identifies the exchange protocol (e.g. "Emin").
	Name() string

	// N is the number of agents.
	N() int

	// Initial returns agent i's initial local state given its preference.
	Initial(i AgentID, init Value) State

	// Messages implements μ_i: the messages agent i sends this round given
	// its state s and the action a it performs this round. The result has
	// length N(); entry j is the message to agent j, nil meaning ⊥.
	Messages(i AgentID, s State, a Action) []Message

	// Update implements δ_i: the state after a round in which agent i
	// performed action a and received the given messages (entry j is the
	// message received from agent j, nil meaning ⊥). The new state's Time
	// is s.Time()+1.
	Update(i AgentID, s State, a Action, received []Message) State
}

// Scratch is recyclable per-worker memory an exchange draws from on the
// buffered execution path — for Efip, a graph arena. A Scratch value
// belongs to one goroutine at a time. Reset recycles it for the next run;
// memory reachable from a Detach-ed state is never recycled (see
// Detacher), which is what makes it sound for the engine to Reset between
// runs while earlier Results stay live.
type Scratch interface {
	Reset()
}

// BufferedExchange is the opt-in zero-allocation extension of Exchange:
// μ writes into a caller-owned slice instead of allocating one, and δ may
// draw its allocations from a per-worker Scratch. Exchanges that do not
// implement it keep working unchanged through the plain Exchange methods;
// the engine type-asserts and falls back.
//
// The buffered path is contracted to be observationally identical to the
// plain one: MessagesInto must produce exactly the messages Messages
// would, and UpdateScratch(..., sc) must produce a state with the same
// fingerprint as Update for every sc (including nil). The engine's
// trace-equivalence tests enforce this for every registered exchange.
type BufferedExchange interface {
	Exchange

	// MessagesInto is μ_i writing into out, which has length N(): entry j
	// is set to the message for agent j (nil meaning ⊥ — implementations
	// must overwrite every entry, stale values included). It returns out.
	MessagesInto(i AgentID, s State, a Action, out []Message) []Message

	// AcquireScratch returns a scratch for one worker, or nil when the
	// exchange needs none (the cheap exchanges allocate nothing in δ).
	// Callers pair it with ReleaseScratch when done.
	AcquireScratch() Scratch

	// ReleaseScratch returns a scratch obtained from AcquireScratch to
	// the exchange's pool. Passing nil is a no-op.
	ReleaseScratch(sc Scratch)

	// UpdateScratch is δ_i drawing allocations from sc. A nil sc must
	// behave exactly like Update. States produced with a non-nil sc may
	// reference scratch memory and must be Detach-ed (see Detacher)
	// before they outlive the next Scratch.Reset.
	UpdateScratch(i AgentID, s State, a Action, received []Message, sc Scratch) State
}

// Detacher is implemented by states that may reference recyclable scratch
// memory (Efip's arena-backed graphs). DetachState freezes the state for
// unbounded retention — afterwards no Scratch.Reset will ever hand its
// backing memory to another run. It works by mutating the state's shared
// backing in place (the State value itself is unchanged, so callers keep
// using it without re-boxing), must be idempotent and cheap, and must be
// a no-op on states produced without scratch.
type Detacher interface {
	DetachState()
}

// DetachAll detaches every state in the slice. States that do not
// implement Detacher are left untouched. It is the bulk form the engine
// applies to everything reachable from a returned Result, and the model
// checker to state rows it interns across runs.
func DetachAll(states []State) {
	for _, st := range states {
		if d, ok := st.(Detacher); ok {
			d.DetachState()
		}
	}
}

// KeyPermuter is the opt-in symmetry extension of Exchange: it rewrites
// an interned state key under an agent relabeling, without access to the
// state itself. PermuteKey(s.Key(), perm) must equal the key of the state
// the same agent's counterpart perm[i] reaches in the permuted run — the
// contract that lets the model checker expand a symmetry-quotiented
// system into the full one by string rewriting alone (the permuted runs
// were never executed, so no State values exist for them).
//
// Exchanges whose keys mention no agent identities (Emin, Ebasic, the
// report exchange) need not implement KeyPermuter: for them the permuted
// key is the key itself, and consumers treat absence as the identity
// rewrite.
type KeyPermuter interface {
	// PermuteKey rewrites key under perm, where perm[i] is the new
	// identity of old agent i (the Pattern.Permute convention). It
	// returns an error if key is not a well-formed key of this exchange.
	PermuteKey(key string, perm []AgentID) (string, error)
}

// ActionProtocol is a (deterministic, memoryless) action protocol
// P = (P_1,...,P_n): a map from local states to actions (Section 3).
// Concrete protocols downcast State to the state type of the exchange they
// are designed for and panic on mismatch; pairing is validated by
// internal/core when assembling a protocol stack.
type ActionProtocol interface {
	// Name identifies the action protocol (e.g. "Pmin").
	Name() string

	// Act returns agent i's action in state s (the paper's P_i(s)).
	Act(i AgentID, s State) Action
}
