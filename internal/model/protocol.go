package model

// Message is a single protocol message. The concrete type depends on the
// information-exchange protocol: a bare decide value for Emin, a small enum
// for Ebasic, a communication graph for Efip. A nil Message is the paper's
// ⊥ ("no message sent").
//
// Every EBA context requires that a recipient can tell from the message
// whether the sender is deciding 0, deciding 1, or neither (the disjoint
// message classes M0, M1, M2 of Section 5); Announces exposes exactly that.
type Message interface {
	// Announces returns Zero if the message belongs to class M0 (the sender
	// is deciding 0 this round), One if it belongs to M1, and None for
	// class M2 (any other message).
	Announces() Value

	// Bits is the length of the message's wire encoding in bits, used for
	// the message-complexity experiments (Proposition 8.1).
	Bits() int

	// String renders the message for traces.
	String() string
}

// State is an agent's local state under some information-exchange protocol.
// Every EBA context requires the components exposed here (Section 5):
// a time counter, the initial preference, the decision taken (if any), and
// the "just decided" observation jd. Concrete exchanges add more (Ebasic's
// #1 counter, Efip's communication graph) and expose it on their own state
// types.
type State interface {
	// Time is the state's time component; all agents have Time() == m at
	// time m (the system is synchronous).
	Time() int

	// Init is the agent's initial preference.
	Init() Value

	// Decided is the decision recorded in the state, or None.
	Decided() Value

	// JustDecided is the paper's jd_i: v if the agent learned in the last
	// round that some agent just decided v, None otherwise.
	JustDecided() Value

	// Key returns a canonical fingerprint of the local state. Two local
	// states of the same agent are indistinguishable (in the sense of the
	// knowledge relation ~_i) iff their keys are equal. Keys are only
	// comparable between states produced by the same exchange protocol.
	Key() string
}

// Exchange is an information-exchange protocol E = ⟨E_1,...,E_n⟩
// (Section 3). It fixes the local state space, the initial states, and the
// functions μ (which messages to send, given the current action) and δ
// (how to update the local state after a round).
//
// Implementations must be deterministic and must treat State values as
// immutable: Update returns a fresh state and never mutates its argument.
type Exchange interface {
	// Name identifies the exchange protocol (e.g. "Emin").
	Name() string

	// N is the number of agents.
	N() int

	// Initial returns agent i's initial local state given its preference.
	Initial(i AgentID, init Value) State

	// Messages implements μ_i: the messages agent i sends this round given
	// its state s and the action a it performs this round. The result has
	// length N(); entry j is the message to agent j, nil meaning ⊥.
	Messages(i AgentID, s State, a Action) []Message

	// Update implements δ_i: the state after a round in which agent i
	// performed action a and received the given messages (entry j is the
	// message received from agent j, nil meaning ⊥). The new state's Time
	// is s.Time()+1.
	Update(i AgentID, s State, a Action, received []Message) State
}

// ActionProtocol is a (deterministic, memoryless) action protocol
// P = (P_1,...,P_n): a map from local states to actions (Section 3).
// Concrete protocols downcast State to the state type of the exchange they
// are designed for and panic on mismatch; pairing is validated by
// internal/core when assembling a protocol stack.
type ActionProtocol interface {
	// Name identifies the action protocol (e.g. "Pmin").
	Name() string

	// Act returns agent i's action in state s (the paper's P_i(s)).
	Act(i AgentID, s State) Action
}
