// Package conformance checks that an information-exchange protocol
// satisfies the EBA-context conventions of Section 5 of the paper, which
// every result in the paper (and every component in this repository)
// relies on:
//
//  1. initial states are ⟨0, init, ⊥, ⊥, …⟩;
//  2. δ advances the time component by exactly one per round;
//  3. the message classes are disjoint and action-determined: a decide-0
//     round sends only M0 messages, a decide-1 round only M1 messages, and
//     every other round only M2 messages (Announces reports the class);
//  4. δ records decisions in the decided component and never un-decides;
//  5. jd reflects the decide announcements received in the last round;
//  6. δ is a function: equal states, actions, and inboxes give equal
//     successor states (checked by re-application).
//
// Downstream users adding their own exchange protocols can run
// CheckExchange against them before pairing them with the action
// protocols in this repository.
package conformance

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// CheckExchange drives the exchange through `trials` random rounds per
// trial configuration and reports every convention violation found (nil
// means conformant). The action inputs are arbitrary — conventions must
// hold for every action protocol, not just the intended one.
func CheckExchange(ex model.Exchange, seed int64, trials int) []string {
	var out []string
	report := func(format string, args ...interface{}) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	rng := rand.New(rand.NewSource(seed))
	n := ex.N()

	for trial := 0; trial < trials; trial++ {
		states := make([]model.State, n)
		for i := 0; i < n; i++ {
			init := model.Value(rng.Intn(2))
			states[i] = ex.Initial(model.AgentID(i), init)
			s := states[i]
			if s.Time() != 0 || s.Init() != init || s.Decided() != model.None || s.JustDecided() != model.None {
				report("trial %d: initial state of agent %d is not ⟨0, %v, ⊥, ⊥⟩: %s",
					trial, i, init, s.Key())
			}
		}

		rounds := 2 + rng.Intn(4)
		for m := 0; m < rounds; m++ {
			// Random actions, biased toward noop so runs stay plausible.
			acts := make([]model.Action, n)
			for i := range acts {
				if states[i].Decided() == model.None && rng.Intn(4) == 0 {
					acts[i] = model.Decide(model.Value(rng.Intn(2)))
				}
			}

			outbox := make([][]model.Message, n)
			for i := 0; i < n; i++ {
				outbox[i] = ex.Messages(model.AgentID(i), states[i], acts[i])
				if len(outbox[i]) != n {
					report("trial %d round %d: agent %d sent %d messages for %d agents",
						trial, m, i, len(outbox[i]), n)
					return out
				}
				// Convention 3: the class of every message matches the action.
				want := acts[i].Decision()
				for j, msg := range outbox[i] {
					if msg == nil {
						if want.IsSet() {
							report("trial %d round %d: agent %d decided %v but sent ⊥ to %d",
								trial, m, i, want, j)
						}
						continue
					}
					if msg.Announces() != want {
						report("trial %d round %d: agent %d action %v sent class-%v message",
							trial, m, i, acts[i], msg.Announces())
					}
					if msg.Bits() <= 0 {
						report("trial %d round %d: agent %d message with non-positive size", trial, m, i)
					}
				}
			}

			// Random omissions.
			inbox := make([][]model.Message, n)
			for j := 0; j < n; j++ {
				inbox[j] = make([]model.Message, n)
				for i := 0; i < n; i++ {
					if msg := outbox[i][j]; msg != nil && (i == j || rng.Intn(3) != 0) {
						inbox[j][i] = msg
					}
				}
			}

			for i := 0; i < n; i++ {
				prev := states[i]
				next := ex.Update(model.AgentID(i), prev, acts[i], inbox[i])
				// Convention 2: time advances by one.
				if next.Time() != prev.Time()+1 {
					report("trial %d round %d: agent %d time %d → %d", trial, m, i, prev.Time(), next.Time())
				}
				// Convention 4: decisions recorded, never lost.
				if d := acts[i].Decision(); d.IsSet() && next.Decided() != d {
					report("trial %d round %d: agent %d decided %v but state records %v",
						trial, m, i, d, next.Decided())
				}
				if prev.Decided().IsSet() && !acts[i].IsDecide() && next.Decided() != prev.Decided() {
					report("trial %d round %d: agent %d lost its decision", trial, m, i)
				}
				// Convention 5: jd reflects received announcements, 0 first.
				wantJD := model.None
				for _, msg := range inbox[i] {
					if msg == nil {
						continue
					}
					switch msg.Announces() {
					case model.Zero:
						wantJD = model.Zero
					case model.One:
						if wantJD == model.None {
							wantJD = model.One
						}
					}
				}
				if next.JustDecided() != wantJD {
					report("trial %d round %d: agent %d jd = %v, want %v",
						trial, m, i, next.JustDecided(), wantJD)
				}
				// Convention 6: δ is a function of its inputs.
				again := ex.Update(model.AgentID(i), prev, acts[i], inbox[i])
				if again.Key() != next.Key() {
					report("trial %d round %d: agent %d δ is not deterministic", trial, m, i)
				}
				// Init is immutable.
				if next.Init() != prev.Init() {
					report("trial %d round %d: agent %d initial preference changed", trial, m, i)
				}
				states[i] = next
			}
		}
	}
	return out
}
