// Package conformance checks that an information-exchange protocol
// satisfies the EBA-context conventions of Section 5 of the paper, which
// every result in the paper (and every component in this repository)
// relies on:
//
//  1. initial states are ⟨0, init, ⊥, ⊥, …⟩;
//  2. δ advances the time component by exactly one per round;
//  3. the message classes are disjoint and action-determined: a decide-0
//     round sends only M0 messages, a decide-1 round only M1 messages, and
//     every other round only M2 messages (Announces reports the class);
//  4. δ records decisions in the decided component and never un-decides;
//  5. jd reflects the decide announcements received in the last round;
//  6. δ is a function: equal states, actions, and inboxes give equal
//     successor states (checked by re-application).
//
// Two drivers exercise the conventions: CheckExchange samples random
// omission behavior (cheap, any n), and CheckExchangePatterns drives the
// exchange under every failure pattern pulled from an enumerated stream
// (exhaustive at small n — the adversary package's SO or crash iterators
// slot in directly). Downstream users adding their own exchange protocols
// can run both against them before pairing them with the action protocols
// in this repository.
package conformance

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Patterns is the pull-style failure-pattern stream CheckExchangePatterns
// consumes; adversary.SOPatterns and adversary.CrashPatterns satisfy it.
type Patterns interface {
	Next() (*model.Pattern, bool)
}

// reporter accumulates violation descriptions.
type reporter struct {
	out []string
}

func (r *reporter) report(format string, args ...interface{}) {
	r.out = append(r.out, fmt.Sprintf(format, args...))
}

// lazyLabel renders a trial/pattern label only when a violation is
// actually reported, keeping the conformant sweep allocation-free of
// per-pattern label formatting.
type lazyLabel func() string

func (l lazyLabel) String() string { return l() }

// initialStates builds and convention-checks the initial states (1).
func initialStates(ex model.Exchange, inits []model.Value, label lazyLabel, r *reporter) []model.State {
	n := ex.N()
	states := make([]model.State, n)
	for i := 0; i < n; i++ {
		states[i] = ex.Initial(model.AgentID(i), inits[i])
		s := states[i]
		if s.Time() != 0 || s.Init() != inits[i] || s.Decided() != model.None || s.JustDecided() != model.None {
			r.report("%s: initial state of agent %d is not ⟨0, %v, ⊥, ⊥⟩: %s", label, i, inits[i], s.Key())
		}
	}
	return states
}

// checkRound drives one round: every agent sends under its action, the
// deliver rule decides which messages arrive, and conventions 2–6 are
// verified on the resulting transition. It returns the successor states,
// or false when a structural violation (wrong outbox size) makes
// continuing meaningless.
func checkRound(ex model.Exchange, m int, states []model.State, acts []model.Action,
	deliver func(i, j model.AgentID) bool, label lazyLabel, r *reporter) ([]model.State, bool) {
	n := ex.N()
	outbox := make([][]model.Message, n)
	for i := 0; i < n; i++ {
		outbox[i] = ex.Messages(model.AgentID(i), states[i], acts[i])
		if len(outbox[i]) != n {
			r.report("%s round %d: agent %d sent %d messages for %d agents", label, m, i, len(outbox[i]), n)
			return nil, false
		}
		// Convention 3: the class of every message matches the action.
		want := acts[i].Decision()
		for j, msg := range outbox[i] {
			if msg == nil {
				if want.IsSet() {
					r.report("%s round %d: agent %d decided %v but sent ⊥ to %d", label, m, i, want, j)
				}
				continue
			}
			if msg.Announces() != want {
				r.report("%s round %d: agent %d action %v sent class-%v message", label, m, i, acts[i], msg.Announces())
			}
			if msg.Bits() <= 0 {
				r.report("%s round %d: agent %d message with non-positive size", label, m, i)
			}
		}
	}

	inbox := make([][]model.Message, n)
	for j := 0; j < n; j++ {
		inbox[j] = make([]model.Message, n)
		for i := 0; i < n; i++ {
			if msg := outbox[i][j]; msg != nil && deliver(model.AgentID(i), model.AgentID(j)) {
				inbox[j][i] = msg
			}
		}
	}

	next := make([]model.State, n)
	for i := 0; i < n; i++ {
		prev := states[i]
		next[i] = ex.Update(model.AgentID(i), prev, acts[i], inbox[i])
		// Convention 2: time advances by one.
		if next[i].Time() != prev.Time()+1 {
			r.report("%s round %d: agent %d time %d → %d", label, m, i, prev.Time(), next[i].Time())
		}
		// Convention 4: decisions recorded, never lost.
		if d := acts[i].Decision(); d.IsSet() && next[i].Decided() != d {
			r.report("%s round %d: agent %d decided %v but state records %v", label, m, i, d, next[i].Decided())
		}
		if prev.Decided().IsSet() && !acts[i].IsDecide() && next[i].Decided() != prev.Decided() {
			r.report("%s round %d: agent %d lost its decision", label, m, i)
		}
		// Convention 5: jd reflects received announcements, 0 first.
		wantJD := model.None
		for _, msg := range inbox[i] {
			if msg == nil {
				continue
			}
			switch msg.Announces() {
			case model.Zero:
				wantJD = model.Zero
			case model.One:
				if wantJD == model.None {
					wantJD = model.One
				}
			}
		}
		if next[i].JustDecided() != wantJD {
			r.report("%s round %d: agent %d jd = %v, want %v", label, m, i, next[i].JustDecided(), wantJD)
		}
		// Convention 6: δ is a function of its inputs.
		again := ex.Update(model.AgentID(i), prev, acts[i], inbox[i])
		if again.Key() != next[i].Key() {
			r.report("%s round %d: agent %d δ is not deterministic", label, m, i)
		}
		// Init is immutable.
		if next[i].Init() != prev.Init() {
			r.report("%s round %d: agent %d initial preference changed", label, m, i)
		}
	}
	return next, true
}

// randomActions draws plausible actions: agents that have not decided
// occasionally decide a random value.
func randomActions(rng *rand.Rand, states []model.State) []model.Action {
	acts := make([]model.Action, len(states))
	for i := range acts {
		if states[i].Decided() == model.None && rng.Intn(4) == 0 {
			acts[i] = model.Decide(model.Value(rng.Intn(2)))
		}
	}
	return acts
}

// CheckExchange drives the exchange through `trials` random rounds per
// trial configuration and reports every convention violation found (nil
// means conformant). The action inputs are arbitrary — conventions must
// hold for every action protocol, not just the intended one.
func CheckExchange(ex model.Exchange, seed int64, trials int) []string {
	r := &reporter{}
	rng := rand.New(rand.NewSource(seed))
	n := ex.N()

	for trial := 0; trial < trials; trial++ {
		label := lazyLabel(func() string { return fmt.Sprintf("trial %d", trial) })
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value(rng.Intn(2))
		}
		states := initialStates(ex, inits, label, r)
		rounds := 2 + rng.Intn(4)
		for m := 0; m < rounds; m++ {
			acts := randomActions(rng, states)
			// Random omissions: self-messages always arrive.
			next, ok := checkRound(ex, m, states, acts, func(i, j model.AgentID) bool {
				return i == j || rng.Intn(3) != 0
			}, label, r)
			if !ok {
				return r.out
			}
			states = next
		}
	}
	return r.out
}

// CheckExchangePatterns drives the exchange under every failure pattern
// the stream produces — omissions follow the pattern's Delivered relation
// instead of coin flips, so the check covers the exact adversaries of the
// failure model, exhaustively when fed an enumerated stream such as
// adversary.NewSOPatterns. Actions are still drawn at random from the
// seed (conventions must hold for every action protocol). It reports
// every convention violation found; nil means conformant.
func CheckExchangePatterns(ex model.Exchange, patterns Patterns, seed int64) []string {
	r := &reporter{}
	rng := rand.New(rand.NewSource(seed))
	n := ex.N()

	for k := 0; ; k++ {
		pat, ok := patterns.Next()
		if !ok {
			return r.out
		}
		if pat.N() != n {
			r.report("pattern %d: %d agents for an exchange of %d", k, pat.N(), n)
			return r.out
		}
		label := lazyLabel(func() string { return fmt.Sprintf("pattern %d (%v)", k, pat) })
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value(rng.Intn(2))
		}
		states := initialStates(ex, inits, label, r)
		for m := 0; m < pat.Horizon(); m++ {
			acts := randomActions(rng, states)
			next, ok := checkRound(ex, m, states, acts, func(i, j model.AgentID) bool {
				return pat.Delivered(m, i, j)
			}, label, r)
			if !ok {
				return r.out
			}
			states = next
		}
	}
}
