package conformance

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/exchange"
	"repro/internal/model"
)

func TestAllExchangesConform(t *testing.T) {
	for _, ex := range []model.Exchange{
		exchange.NewMin(4),
		exchange.NewBasic(4),
		exchange.NewReport(4),
		exchange.NewFIP(4),
	} {
		if vs := CheckExchange(ex, 42, 40); len(vs) != 0 {
			t.Errorf("%s violates the EBA-context conventions:\n  %s",
				ex.Name(), strings.Join(vs, "\n  "))
		}
	}
}

// brokenExchange wraps Min but mislabels decide-1 messages as class M2 —
// the kind of mistake the conformance harness exists to catch.
type brokenExchange struct {
	*exchange.Min
}

type mislabeled struct{ inner model.Message }

func (m mislabeled) Announces() model.Value { return model.None }
func (m mislabeled) Bits() int              { return m.inner.Bits() }
func (m mislabeled) String() string         { return m.inner.String() }

func (e brokenExchange) Messages(i model.AgentID, s model.State, a model.Action) []model.Message {
	out := e.Min.Messages(i, s, a)
	if a == model.Decide1 {
		for j, msg := range out {
			if msg != nil {
				out[j] = mislabeled{inner: msg}
			}
		}
	}
	return out
}

func TestConformanceCatchesMislabeledClass(t *testing.T) {
	vs := CheckExchange(brokenExchange{exchange.NewMin(3)}, 7, 40)
	if len(vs) == 0 {
		t.Fatal("mislabeled message class not detected")
	}
	found := false
	for _, v := range vs {
		if strings.Contains(v, "class") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations do not mention the class mismatch: %v", vs)
	}
}

// frozenTimeExchange never advances time.
type frozenTimeExchange struct {
	*exchange.Min
}

func (e frozenTimeExchange) Update(i model.AgentID, s model.State, a model.Action, recv []model.Message) model.State {
	return s
}

func TestConformanceCatchesFrozenTime(t *testing.T) {
	vs := CheckExchange(frozenTimeExchange{exchange.NewMin(3)}, 7, 5)
	if len(vs) == 0 {
		t.Fatal("frozen time not detected")
	}
}

// TestAllExchangesConformUnderEnumeratedPatterns drives every exchange
// through the exhaustive SO(1) pattern stream — the streaming counterpart
// of the random-omission check, covering the failure model's exact
// adversaries.
func TestAllExchangesConformUnderEnumeratedPatterns(t *testing.T) {
	for _, ex := range []model.Exchange{
		exchange.NewMin(3),
		exchange.NewBasic(3),
		exchange.NewReport(3),
		exchange.NewFIP(3),
	} {
		pats, err := adversary.NewSOPatterns(3, 1, 3, adversary.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if vs := CheckExchangePatterns(ex, pats, 42); len(vs) != 0 {
			t.Errorf("%s violates the conventions under enumerated patterns:\n  %s",
				ex.Name(), strings.Join(vs, "\n  "))
		}
	}
}

// TestPatternCheckCatchesMislabeledClass checks the pattern-driven driver
// detects the same convention breaches the random driver does.
func TestPatternCheckCatchesMislabeledClass(t *testing.T) {
	pats, err := adversary.NewSOPatterns(3, 1, 3, adversary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vs := CheckExchangePatterns(brokenExchange{exchange.NewMin(3)}, pats, 7)
	if len(vs) == 0 {
		t.Fatal("mislabeled message class not detected under enumerated patterns")
	}
}

// TestPatternCheckRejectsSizeMismatch checks patterns for the wrong n are
// reported rather than silently misapplied.
func TestPatternCheckRejectsSizeMismatch(t *testing.T) {
	pats, err := adversary.NewSOPatterns(4, 1, 3, adversary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vs := CheckExchangePatterns(exchange.NewMin(3), pats, 7)
	if len(vs) == 0 {
		t.Fatal("pattern/exchange size mismatch not reported")
	}
}
