package graph

import "repro/internal/model"

// Arena is a chunked slab allocator for communication graphs: the Graph
// structs, preference vectors, row-header slices, and flat label matrices
// of arena-backed graphs are bump-allocated from a handful of slabs
// instead of one heap object each. It exists for the full-information
// exchange's hot path, where every agent builds one extended graph per
// round: with an arena a whole run costs O(1) slab allocations instead
// of four heap objects per agent per round.
//
// Ownership model (see also engine.Buffers):
//
//   - An Arena belongs to one goroutine at a time; it is not safe for
//     concurrent use.
//   - Reset recycles the arena for the next run. If nothing allocated
//     since the previous Reset escaped, the current slabs are rewound and
//     reused in place. If any graph was Detach-ed, the live slabs are
//     abandoned to the garbage collector — they stay exactly as they are
//     for as long as the escaping graphs need them — and fresh slabs are
//     carved on demand, sized to the previous epochs' high-water mark so
//     a steady-state sweep pays one right-sized slab per kind per run.
//   - Graph.Detach marks a graph (and therefore the slabs backing it) as
//     escaping. Detach is O(1): rather than copying the graph out of the
//     arena, it pins the arena's current epoch so Reset never recycles
//     the memory. For Efip this is the right trade — every per-round
//     graph is retained by the run's trace, so a copying detach would
//     redo all the work the arena saved.
//
// Slabs that fill up mid-epoch are dropped from the arena immediately
// (they live on only through the graphs allocated in them), so only the
// current slabs are ever candidates for reuse and an escape can never be
// missed.
type Arena struct {
	graphs slab[Graph]
	prefs  slab[model.Value]
	rows   slab[[]Label]
	labels slab[Label]
	// escaped is set by Detach: at least one graph allocated since the
	// last Reset is retained beyond the arena's recycling horizon.
	escaped bool
}

// Minimum slab granularities, in entries. Deliberately small: an epoch
// whose graphs escape pins its whole slab (cap, not len), so outsized
// floors would be retained as slack by every detached state — the
// model checker's memo interns rows from epochs that often carve just a
// handful of graphs. The usage hint, not the floor, is what sizes the
// slabs of big workloads.
const (
	graphSlabMin = 8
	prefSlabMin  = 32
	rowSlabMin   = 32
	labelSlabMin = 256
)

// slab is one kind's bump allocator: a current chunk carved from the
// front, a per-epoch usage counter, and a high-water hint that sizes the
// chunks of future epochs.
type slab[T any] struct {
	cur  []T
	used int // entries handed out this epoch, across all chunks
	hint int // high-water mark of past epochs (slow decay)
	min  int // floor for chunk sizes
}

// alloc carves k entries. Contents are stale after a rewind; callers
// must fully initialize what they receive.
func (s *slab[T]) alloc(k int) []T {
	if cap(s.cur)-len(s.cur) < k {
		// The filled chunk is dropped (it lives on through the graphs in
		// it); the replacement is sized to the workload: at least the
		// historical high-water mark, at least double what this epoch
		// already used (so overflow chunks stay O(log) per epoch), and
		// at least k.
		size := s.hint
		if d := 2 * s.used; d > size {
			size = d
		}
		if size < s.min {
			size = s.min
		}
		if size < k {
			size = k
		}
		s.cur = make([]T, 0, size)
	}
	out := s.cur[len(s.cur) : len(s.cur)+k : len(s.cur)+k]
	s.cur = s.cur[:len(s.cur)+k]
	s.used += k
	return out
}

// reset closes the epoch: it folds the usage into the hint — following
// usage up immediately (so a big epoch never pays repeated overflow
// chunks twice) and decaying geometrically when epochs shrink (so a
// burst of big epochs cannot leave every later small epoch pinning an
// outsized abandoned slab) — and either rewinds the current chunk for
// reuse or abandons it to the escaping graphs.
func (s *slab[T]) reset(abandon bool) {
	if s.used > s.hint {
		s.hint = s.used
	} else {
		s.hint -= (s.hint - s.used) / 4
	}
	s.used = 0
	if abandon {
		s.cur = nil
		return
	}
	s.cur = s.cur[:0]
}

// NewArena returns an empty arena. Slabs are carved lazily on first use.
func NewArena() *Arena {
	return &Arena{
		graphs: slab[Graph]{min: graphSlabMin},
		prefs:  slab[model.Value]{min: prefSlabMin},
		rows:   slab[[]Label]{min: rowSlabMin},
		labels: slab[Label]{min: labelSlabMin},
	}
}

// Reset recycles the arena for the next run: rewinds the current slabs
// when nothing escaped, abandons them to the garbage collector when a
// graph was detached since the last Reset. Callers must guarantee that no
// graph allocated since the previous Reset is still referenced, except
// through Detach.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.graphs.reset(a.escaped)
	a.prefs.reset(a.escaped)
	a.rows.reset(a.escaped)
	a.labels.reset(a.escaped)
	a.escaped = false
}

// escape pins the current epoch: Reset will abandon the live slabs
// instead of rewinding them.
func (a *Arena) escape() {
	if a != nil {
		a.escaped = true
	}
}

// Escaped reports whether any graph allocated since the last Reset has
// been Detach-ed. Callers that co-locate their own per-run slabs with an
// arena (the full-information exchange slab-allocates its state structs
// alongside the graphs they reference) read this before Reset to decide
// whether their slabs must be abandoned in the same epoch.
func (a *Arena) Escaped() bool { return a != nil && a.escaped }

// newGraph carves one Graph struct. The slot's fields are fully assigned
// by the callers; only the cached key (which survives slab rewinds) is
// cleared here.
func (a *Arena) newGraph() *Graph {
	g := &a.graphs.alloc(1)[0]
	g.key.Store(nil)
	g.arena = a
	return g
}

// New returns the time-0 communication graph of the given agent,
// allocated in the arena. A nil arena falls back to the plain heap New.
func (a *Arena) New(owner model.AgentID, n int) *Graph {
	if a == nil {
		return New(owner, n)
	}
	g := a.newGraph()
	g.owner = owner
	g.n = n
	g.m = 0
	g.prefs = a.prefs.alloc(n)
	for i := range g.prefs {
		g.prefs[i] = model.None
	}
	g.edges = nil
	return g
}

// CloneExtendedIn is CloneExtended with every allocation drawn from the
// arena: the per-round hot path of the buffered full-information
// exchange. A nil arena falls back to the plain heap CloneExtended.
func (g *Graph) CloneExtendedIn(a *Arena) *Graph {
	if a == nil {
		return g.CloneExtended()
	}
	sz := g.n * g.n
	h := a.newGraph()
	h.owner = g.owner
	h.n = g.n
	h.m = g.m + 1
	h.prefs = a.prefs.alloc(g.n)
	copy(h.prefs, g.prefs)
	h.edges = a.rows.alloc(g.m + 1)
	flat := a.labels.alloc((g.m + 1) * sz)
	for k := range g.edges {
		row := flat[k*sz : (k+1)*sz : (k+1)*sz]
		copy(row, g.edges[k])
		h.edges[k] = row
	}
	last := flat[g.m*sz : (g.m+1)*sz : (g.m+1)*sz]
	for i := range last {
		last[i] = Unknown
	}
	h.edges[g.m] = last
	return h
}

// Detach freezes the graph against arena recycling: after Detach the
// graph may be retained indefinitely — in an engine Result, a trace, or
// the model checker's interned state rows — and no subsequent
// Arena.Reset will ever hand its backing memory to another graph. It is
// idempotent, O(1) (it pins the arena's current slab epoch rather than
// copying), safe on plain heap graphs (a no-op), and returns the graph
// for chaining.
func (g *Graph) Detach() *Graph {
	if g.arena != nil {
		g.arena.escape()
		g.arena = nil
	}
	return g
}
