// Package graph implements the compact communication-graph representation
// of the full-information exchange (Section A.2.7 of the paper, following
// Moses and Tuttle), together with the derived quantities used by the
// polynomial-time optimal protocol P_opt: the hears-from relation, the
// faulty-knowledge sets f and D, the inferred decision table d, the
// known-values sets V, and the decision conditions common_v, cond0, and
// cond1.
//
// A Graph is the local state of one agent under the full-information
// exchange: for every round it records, for every ordered pair of agents,
// whether the owner knows the message was delivered (Sent), knows it was
// not (NotSent), or does not know (Unknown); and for every agent whether
// the owner knows its initial preference.
package graph

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/model"
)

// Label is the paper's edge label: 1 (message known delivered), 0 (message
// known not delivered), or ? (unknown).
type Label uint8

// Edge labels.
const (
	// Unknown is the paper's "?" label.
	Unknown Label = iota
	// NotSent is the paper's "0" label: the owner knows the message was not
	// delivered.
	NotSent
	// Sent is the paper's "1" label: the owner knows the message was
	// delivered.
	Sent
)

// String renders the label as "?", "0", or "1".
func (l Label) String() string {
	switch l {
	case NotSent:
		return "0"
	case Sent:
		return "1"
	default:
		return "?"
	}
}

// Graph is a communication graph G_{i,m}: agent i's view of rounds 1..m.
// The zero value is not usable; construct with New.
type Graph struct {
	owner model.AgentID
	n     int
	m     int
	// prefs[j] is the initial-preference label of agent j: Zero, One, or
	// None for "?".
	prefs []model.Value
	// edges[k][int(i)*n+int(j)] labels the edge (i,k) → (j,k+1), i.e. the
	// message from i to j in round k+1, for k in [0, m).
	edges [][]Label
	// key caches the canonical fingerprint; every mutator invalidates it.
	// Atomic so concurrent readers of a quiescent graph (the model
	// checker's worker pool) may race benignly on the first computation.
	key atomic.Pointer[string]
	// arena, when non-nil, is the Arena the graph's backing memory was
	// carved from; Detach clears it (see arena.go). Plain heap graphs
	// (New, Clone, CloneFor, CloneExtended) carry nil.
	arena *Arena
}

// New returns the time-0 communication graph of the given agent: no edges,
// no preference labels.
func New(owner model.AgentID, n int) *Graph {
	return &Graph{
		owner: owner,
		n:     n,
		prefs: newPrefs(n),
		edges: nil,
	}
}

// newPrefs returns an all-"?" preference vector.
func newPrefs(n int) []model.Value {
	p := make([]model.Value, n)
	for i := range p {
		p[i] = model.None
	}
	return p
}

// Owner is the agent whose view this graph is.
func (g *Graph) Owner() model.AgentID { return g.owner }

// N is the number of agents.
func (g *Graph) N() int { return g.n }

// M is the time of the view: the graph describes rounds 1..M.
func (g *Graph) M() int { return g.m }

// Pref returns the preference label of agent j (None = "?").
func (g *Graph) Pref(j model.AgentID) model.Value { return g.prefs[j] }

// SetPref records agent j's initial preference. Recording a value that
// contradicts an already-known value panics: in a valid execution labels
// never conflict, so a conflict is a bug in the caller.
func (g *Graph) SetPref(j model.AgentID, v model.Value) {
	if !v.IsSet() {
		panic("graph: SetPref with unset value")
	}
	if g.prefs[j].IsSet() && g.prefs[j] != v {
		panic(fmt.Sprintf("graph: conflicting preference labels for agent %d", j))
	}
	if g.prefs[j] != v {
		g.prefs[j] = v
		g.invalidateKey()
	}
}

// invalidateKey drops the cached fingerprint; the Load guard keeps
// already-invalid graphs (the common case inside a merge loop) free of
// atomic stores.
func (g *Graph) invalidateKey() {
	if g.key.Load() != nil {
		g.key.Store(nil)
	}
}

// Edge returns the label of the edge (i,k) → (j,k+1): the message from i
// to j in round k+1. Edges outside the recorded rounds are Unknown.
func (g *Graph) Edge(k int, i, j model.AgentID) Label {
	if k < 0 || k >= g.m {
		return Unknown
	}
	return g.edges[k][int(i)*g.n+int(j)]
}

// SetEdge records the label of the edge (i,k) → (j,k+1). Overwriting a
// known label with a different known label panics (impossible in a valid
// execution); overwriting with Unknown is ignored.
func (g *Graph) SetEdge(k int, i, j model.AgentID, l Label) {
	if k < 0 || k >= g.m {
		panic(fmt.Sprintf("graph: SetEdge round %d outside [0,%d)", k, g.m))
	}
	slot := &g.edges[k][int(i)*g.n+int(j)]
	if l == Unknown {
		return
	}
	if *slot != Unknown && *slot != l {
		panic(fmt.Sprintf("graph: conflicting labels for edge (%d,%d)→(%d,%d)", i, k, j, k+1))
	}
	if *slot != l {
		*slot = l
		g.invalidateKey()
	}
}

// Extend appends one round of Unknown edges, advancing M by one.
func (g *Graph) Extend() {
	g.edges = append(g.edges, make([]Label, g.n*g.n))
	g.m++
	g.invalidateKey()
}

// CloneExtended is Clone followed by Extend in one backing allocation:
// the per-round hot path of the full-information exchange, which clones
// the owner's graph and opens the next round every Update. The copy is
// plain-heap regardless of where g lives; CloneExtendedIn (arena.go) is
// the arena-backed variant the buffered exchange uses.
func (g *Graph) CloneExtended() *Graph {
	sz := g.n * g.n
	flat := make([]Label, (g.m+1)*sz)
	h := &Graph{
		owner: g.owner,
		n:     g.n,
		m:     g.m + 1,
		prefs: append([]model.Value(nil), g.prefs...),
		edges: make([][]Label, g.m+1),
	}
	for k := range g.edges {
		row := flat[k*sz : (k+1)*sz : (k+1)*sz]
		copy(row, g.edges[k])
		h.edges[k] = row
	}
	h.edges[g.m] = flat[g.m*sz : (g.m+1)*sz : (g.m+1)*sz]
	return h
}

// Clone returns a deep copy (with the same owner). The copy is always
// plain-heap — never arena-backed — so it is safe to retain no matter
// where g was allocated.
func (g *Graph) Clone() *Graph {
	h := &Graph{
		owner: g.owner,
		n:     g.n,
		m:     g.m,
		prefs: append([]model.Value(nil), g.prefs...),
		edges: make([][]Label, g.m),
	}
	for k := range g.edges {
		h.edges[k] = append([]Label(nil), g.edges[k]...)
	}
	h.key.Store(g.key.Load())
	return h
}

// CloneFor returns a deep copy owned by a different agent (used when a
// graph is shipped in a message and merged by the recipient).
func (g *Graph) CloneFor(owner model.AgentID) *Graph {
	h := g.Clone()
	h.owner = owner
	h.key.Store(nil)
	return h
}

// Merge folds every known label of other into g. The graphs must describe
// the same agent set; other may cover fewer rounds. Conflicting known
// labels panic: they cannot arise in a valid execution.
func (g *Graph) Merge(other *Graph) {
	if other.n != g.n {
		panic("graph: Merge of graphs with different agent counts")
	}
	if other.m > g.m {
		panic("graph: Merge of a graph from the future")
	}
	changed := false
	for j := 0; j < g.n; j++ {
		v := other.prefs[j]
		if !v.IsSet() || g.prefs[j] == v {
			continue
		}
		if g.prefs[j].IsSet() {
			panic(fmt.Sprintf("graph: conflicting preference labels for agent %d", j))
		}
		g.prefs[j] = v
		changed = true
	}
	for k := 0; k < other.m; k++ {
		dst := g.edges[k]
		for idx, l := range other.edges[k] {
			if l == Unknown || dst[idx] == l {
				continue
			}
			if dst[idx] != Unknown {
				panic(fmt.Sprintf("graph: conflicting labels for edge (%d,%d)→(%d,%d)",
					idx/g.n, k, idx%g.n, k+1))
			}
			dst[idx] = l
			changed = true
		}
	}
	if changed {
		g.invalidateKey()
	}
}

// Bits is the wire size of the graph under the natural dense encoding: two
// bits per edge label and two bits per preference label. This realizes the
// O(n²t) bits-per-message figure of Section 8 (a graph at time m has n²·m
// edge labels).
func (g *Graph) Bits() int {
	return 2*g.n*g.n*g.m + 2*g.n
}

// Key returns a canonical fingerprint. Two full-information local states
// are indistinguishable iff their graphs have equal keys. The fingerprint
// is computed once and cached until the next mutation; the model
// checker's index, its memoized action evaluation, and the synthesis
// table all ask for the same graph's key.
func (g *Graph) Key() string {
	if k := g.key.Load(); k != nil {
		return *k
	}
	k := g.computeKey()
	g.key.Store(&k)
	return k
}

func (g *Graph) computeKey() string {
	var b strings.Builder
	b.Grow(16 + g.n + g.n*g.n*g.m)
	b.WriteString(strconv.Itoa(int(g.owner)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(g.m))
	b.WriteByte('|')
	for _, v := range g.prefs {
		switch v {
		case model.Zero:
			b.WriteByte('0')
		case model.One:
			b.WriteByte('1')
		default:
			b.WriteByte('?')
		}
	}
	for k := 0; k < g.m; k++ {
		b.WriteByte('|')
		for _, l := range g.edges[k] {
			b.WriteByte("?01"[l])
		}
	}
	return b.String()
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "G{owner=%d m=%d prefs=", g.owner, g.m)
	for _, v := range g.prefs {
		b.WriteString(v.String())
	}
	for k := 0; k < g.m; k++ {
		fmt.Fprintf(&b, " r%d:", k+1)
		for i := 0; i < g.n; i++ {
			for j := 0; j < g.n; j++ {
				l := g.Edge(k, model.AgentID(i), model.AgentID(j))
				if l != Unknown {
					fmt.Fprintf(&b, "%d→%d:%s ", i, j, l)
				}
			}
		}
	}
	b.WriteString("}")
	return b.String()
}

// ReachTo computes the hears-from reachability grid for target (j, mj):
// result[a][k] reports whether (a,k) →_G (j,mj), i.e. whether everything
// agent a knew at time k has flowed to agent j by time mj along edges the
// graph knows were delivered (Definition A.1, restricted to the owner's
// knowledge). Self-steps (a,k) → (a,k+1) are always available: an agent
// remembers its own state.
func (g *Graph) ReachTo(j model.AgentID, mj int) [][]bool {
	if mj < 0 || mj > g.m {
		panic(fmt.Sprintf("graph: ReachTo time %d outside [0,%d]", mj, g.m))
	}
	reach := make([][]bool, g.n)
	for a := range reach {
		reach[a] = make([]bool, mj+1)
	}
	reach[j][mj] = true
	for k := mj - 1; k >= 0; k-- {
		for a := 0; a < g.n; a++ {
			if reach[a][k+1] {
				reach[a][k] = true // self-step
				continue
			}
			for b := 0; b < g.n; b++ {
				if reach[b][k+1] && g.Edge(k, model.AgentID(a), model.AgentID(b)) == Sent {
					reach[a][k] = true
					break
				}
			}
		}
	}
	return reach
}
