package graph

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// randGraph builds a random m-round graph for n agents.
func randGraph(rng *rand.Rand, n, m int) *Graph {
	g := New(model.AgentID(rng.Intn(n)), n)
	for j := 0; j < n; j++ {
		if rng.Intn(2) == 0 {
			g.SetPref(model.AgentID(j), model.Value(rng.Intn(2)))
		}
	}
	for k := 0; k < m; k++ {
		g.Extend()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g.SetEdge(k, model.AgentID(i), model.AgentID(j), Label(rng.Intn(3)))
			}
		}
	}
	return g
}

// permuteGraph rebuilds g under the relabeling perm, going through the
// graph API rather than key rewriting — the oracle PermuteKey must match.
func permuteGraph(g *Graph, perm []model.AgentID) *Graph {
	n := g.N()
	h := New(perm[g.Owner()], n)
	for j := 0; j < n; j++ {
		if v := g.Pref(model.AgentID(j)); v.IsSet() {
			h.SetPref(perm[j], v)
		}
	}
	for k := 0; k < g.M(); k++ {
		h.Extend()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				h.SetEdge(k, perm[i], perm[j], g.Edge(k, model.AgentID(i), model.AgentID(j)))
			}
		}
	}
	return h
}

func TestPermuteKeyMatchesGraphPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(5)
		g := randGraph(rng, n, rng.Intn(4))
		permInts := rng.Perm(n)
		perm := make([]model.AgentID, n)
		for i, v := range permInts {
			perm[i] = model.AgentID(v)
		}
		got, err := PermuteKey(g.Key(), perm)
		if err != nil {
			t.Fatalf("PermuteKey(%q): %v", g.Key(), err)
		}
		want := permuteGraph(g, perm).Key()
		if got != want {
			t.Fatalf("PermuteKey mismatch for %q under %v:\n got  %q\n want %q", g.Key(), perm, got, want)
		}
	}
}

func TestPermuteKeyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 4
	id := []model.AgentID{0, 1, 2, 3}
	for trial := 0; trial < 50; trial++ {
		g := randGraph(rng, n, rng.Intn(4))
		got, err := PermuteKey(g.Key(), id)
		if err != nil {
			t.Fatal(err)
		}
		if got != g.Key() {
			t.Fatalf("identity rewrite changed key: %q vs %q", got, g.Key())
		}
	}
}

func TestPermuteKeyMalformed(t *testing.T) {
	perm := []model.AgentID{0, 1, 2}
	for _, key := range []string{
		"",
		"0",
		"0|",
		"x|1|???",
		"0|x|???",
		"3|0|???",               // owner out of range
		"0|1|??",                // short prefs
		"0|1|???" + "?????????", // missing round separator
		"0|1|???|????????",      // short round section
		"0|1|???|?????????|",    // trailing separator
	} {
		if _, err := PermuteKey(key, perm); err == nil {
			t.Errorf("PermuteKey(%q) succeeded, want error", key)
		}
	}
}
