package graph

import (
	"testing"

	"repro/internal/model"
)

// buildSample fills g with a deterministic mix of labels and prefs.
func buildSample(g *Graph, rounds int) {
	n := g.N()
	g.SetPref(g.Owner(), model.One)
	for k := 0; k < rounds; k++ {
		g.Extend()
		for i := 0; i < n; i++ {
			if (i+k)%3 != 0 {
				g.SetEdge(k, model.AgentID(i), g.Owner(), Sent)
			}
		}
	}
}

// TestArenaNewMatchesHeapNew checks the arena-backed constructor is
// observationally identical to the plain one.
func TestArenaNewMatchesHeapNew(t *testing.T) {
	a := NewArena()
	ag := a.New(2, 4)
	hg := New(2, 4)
	if ag.Key() != hg.Key() {
		t.Fatalf("arena New key %q, heap New key %q", ag.Key(), hg.Key())
	}
	buildSample(ag, 3)
	buildSample(hg, 3)
	if ag.Key() != hg.Key() {
		t.Fatalf("after mutation: arena key %q, heap key %q", ag.Key(), hg.Key())
	}
}

// TestCloneExtendedInMatchesCloneExtended checks the arena-backed
// per-round clone is observationally identical to the plain one, over a
// chain of rounds (the fip hot path's access pattern).
func TestCloneExtendedInMatchesCloneExtended(t *testing.T) {
	a := NewArena()
	base := New(1, 5)
	buildSample(base, 2)
	ag, hg := base, base
	for r := 0; r < 4; r++ {
		ag = ag.CloneExtendedIn(a)
		hg = hg.CloneExtended()
		ag.SetEdge(ag.M()-1, 0, 1, Sent)
		hg.SetEdge(hg.M()-1, 0, 1, Sent)
		if ag.Key() != hg.Key() {
			t.Fatalf("round %d: arena clone key %q, heap clone key %q", r, ag.Key(), hg.Key())
		}
	}
	// A nil arena falls back to the heap path.
	if g := base.CloneExtendedIn(nil); g.Key() != base.CloneExtended().Key() {
		t.Fatal("CloneExtendedIn(nil) diverged from CloneExtended")
	}
	if g := (*Arena)(nil).New(0, 3); g.Key() != New(0, 3).Key() {
		t.Fatal("(*Arena)(nil).New diverged from New")
	}
}

// TestArenaResetRecyclesWithoutDetach documents the danger Detach
// guards against: without Detach, Reset rewinds the slabs, and a later
// allocation from the recycled arena reuses the earlier graph's memory.
func TestArenaResetRecyclesWithoutDetach(t *testing.T) {
	a := NewArena()
	g1 := a.New(0, 3).CloneExtendedIn(a)
	g1.SetEdge(0, 1, 0, Sent)
	a.Reset()
	// The same allocation sequence from the rewound arena lands in the
	// same slots: h shares g1's backing memory (h even is g1's struct).
	h := a.New(1, 3).CloneExtendedIn(a)
	h.SetEdge(0, 2, 1, NotSent)
	if g1.Edge(0, 2, 1) != NotSent || g1.Edge(0, 1, 0) == Sent {
		t.Fatal("expected aliasing after Reset without Detach (the hazard Detach exists for)")
	}
}

// TestDetachPinsMemoryAcrossReset checks the Detach guarantee: a
// detached graph survives any number of Resets and subsequent
// allocations untouched, and later allocations never alias it.
func TestDetachPinsMemoryAcrossReset(t *testing.T) {
	a := NewArena()
	g1 := a.New(0, 3)
	g1.SetPref(0, model.One)
	for r := 0; r < 3; r++ {
		g1 = g1.CloneExtendedIn(a)
		g1.SetEdge(r, 1, 0, Sent)
	}
	key := g1.Key()
	if g1.Detach() != g1 {
		t.Fatal("Detach must return the receiver")
	}
	g1.Detach() // idempotent
	a.Reset()
	for r := 0; r < 5; r++ {
		g := a.New(1, 3)
		for k := 0; k < 4; k++ {
			g = g.CloneExtendedIn(a)
			// Scribble every slot the new round exposes.
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					g.SetEdge(k, model.AgentID(i), model.AgentID(j), NotSent)
				}
			}
		}
		a.Reset()
	}
	if g1.Key() != key {
		t.Fatalf("detached graph mutated: key %q, want %q", g1.Key(), key)
	}
	// Detaching a plain heap graph is a harmless no-op.
	h := New(0, 2)
	if h.Detach() != h {
		t.Fatal("heap-graph Detach must return the receiver")
	}
}

// TestArenaSlabOverflow drives an allocation past the slab granularity
// and checks graphs stay intact (full slabs are abandoned to the graphs
// that live in them).
func TestArenaSlabOverflow(t *testing.T) {
	a := NewArena()
	n := 16
	var graphs []*Graph
	var keys []string
	g := a.New(0, n)
	g.SetPref(0, model.Zero)
	// ~40 rounds of 16x16 labels per clone overflows the 64KiB label
	// slab several times over.
	for r := 0; r < 40; r++ {
		g = g.CloneExtendedIn(a)
		g.SetEdge(g.M()-1, model.AgentID(r%n), 0, Sent)
		graphs = append(graphs, g)
		keys = append(keys, g.Key())
	}
	for i, gg := range graphs {
		if gg.Key() != keys[i] {
			t.Fatalf("graph %d mutated by later slab allocations", i)
		}
	}
}
