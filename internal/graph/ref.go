package graph

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/model"
)

// Ref evaluates the quantities of Section A.2.7 on a communication graph:
// the inferred decision table d, the faulty-knowledge sets f and their
// pooled form D, the known-value sets V, and the decision conditions
// common_v, cond0, and cond1 of the polynomial-time protocol P_opt.
//
// The recursions of the paper are self-masking: every label they consult
// sits on an edge into an ancestor of the point being analyzed, and the
// owner's graph knows an in-edge label of a point (j,k) exactly when
// (j,k) has flowed to the owner. Ref therefore works directly on the
// owner's graph without materializing per-agent views.
//
// A Ref is valid for the single graph it was created for; create a new one
// after the graph changes. It is not safe for concurrent use.
//
// Ref is P_opt's per-round decision cost, so its memo storage is built
// for reuse: AcquireRef/AcquireRefNoCK draw an analyzer from a pool and
// Release returns it with the memo maps cleared (not freed) and the
// reachability grids' flat backing rewound — an Act evaluation then
// allocates nothing in steady state. NewRef/NewRefNoCK construct
// throwaway analyzers with the same behavior.
type Ref struct {
	t     int
	g     *Graph
	useCK bool

	// reachMemo stores flat reach grids: the grid for (j,k) has stride
	// k+1 and cell [a*(k+1)+kp] = (a,kp) →_G (j,k).
	reachMemo map[point][]bool
	decMemo   map[point]decEntry
	fMemo     map[point]agentSet

	// bools and ints are bump storage backing the reach grids and
	// Cond1's per-agent scratch (bump rather than fixed slices because
	// Cond1 re-enters itself through the Decision recursion). Both are
	// rewound on Acquire, so they are reused across Release/Acquire.
	bools []bool
	ints  []int
}

// point is an (agent, time) pair.
type point struct {
	a model.AgentID
	k int
}

type decEntry struct {
	action model.Action
	known  bool
}

// agentSet is a bitmask over agents; NewRef rejects n > 64.
type agentSet uint64

func (s agentSet) has(a model.AgentID) bool { return s&(1<<uint(a)) != 0 }
func (s agentSet) size() int                { return bits.OnesCount64(uint64(s)) }

// NewRef returns an analyzer for graph g under failure bound t,
// implementing the full P_opt program (P1's guards).
func NewRef(t int, g *Graph) *Ref {
	return newRef(t, g, true)
}

// NewRefNoCK returns an analyzer for the ablated protocol that drops the
// common-knowledge guards: it implements the knowledge-based program P0
// over full information. The result is a correct EBA protocol (P0 is
// correct in every EBA context) but not an optimal one — it waits out
// Example 7.1 instead of deciding in round 3. The ablation experiment E15
// quantifies the difference.
func NewRefNoCK(t int, g *Graph) *Ref {
	return newRef(t, g, false)
}

func newRef(t int, g *Graph, useCK bool) *Ref {
	refValidate(t, g)
	r := &Ref{}
	r.bind(t, g, useCK)
	return r
}

func refValidate(t int, g *Graph) {
	if g.N() > 64 {
		panic(fmt.Sprintf("graph: Ref supports at most 64 agents, got %d", g.N()))
	}
	if t < 0 || t >= g.N() {
		panic(fmt.Sprintf("graph: Ref needs 0 <= t < n, got t=%d n=%d", t, g.N()))
	}
}

// bind points the analyzer at a graph, recycling the memo storage.
func (r *Ref) bind(t int, g *Graph, useCK bool) {
	r.t, r.g, r.useCK = t, g, useCK
	if r.reachMemo == nil {
		r.reachMemo = make(map[point][]bool, 8)
		r.decMemo = make(map[point]decEntry, 16)
		r.fMemo = make(map[point]agentSet, 16)
		return
	}
	clear(r.reachMemo)
	clear(r.decMemo)
	clear(r.fMemo)
	r.bools = r.bools[:0]
	r.ints = r.ints[:0]
}

// refPool recycles analyzers across AcquireRef/Release cycles; the maps
// keep their buckets and the grid backing keeps its capacity, so a
// steady-state Act evaluation allocates nothing.
var refPool = sync.Pool{New: func() any { return new(Ref) }}

// AcquireRef is NewRef drawing the analyzer from a pool; pair it with
// Release. It is the allocation-free form the P_opt hot path uses.
func AcquireRef(t int, g *Graph) *Ref {
	refValidate(t, g)
	r := refPool.Get().(*Ref)
	r.bind(t, g, true)
	return r
}

// AcquireRefNoCK is NewRefNoCK drawing the analyzer from a pool; pair it
// with Release.
func AcquireRefNoCK(t int, g *Graph) *Ref {
	refValidate(t, g)
	r := refPool.Get().(*Ref)
	r.bind(t, g, false)
	return r
}

// Release returns a pooled analyzer. The Ref must not be used afterwards.
func (r *Ref) Release() {
	r.g = nil
	refPool.Put(r)
}

// allocBools carves a zeroed k-cell grid from the bump storage.
func (r *Ref) allocBools(k int) []bool {
	if cap(r.bools)-len(r.bools) < k {
		size := 1 << 10
		if k > size {
			size = k
		}
		r.bools = make([]bool, 0, size)
	}
	out := r.bools[len(r.bools) : len(r.bools)+k : len(r.bools)+k]
	r.bools = r.bools[:len(r.bools)+k]
	for i := range out {
		out[i] = false
	}
	return out
}

// allocInts carves k cells of integer scratch from the bump storage.
func (r *Ref) allocInts(k int) []int {
	if cap(r.ints)-len(r.ints) < k {
		size := 256
		if k > size {
			size = k
		}
		r.ints = make([]int, 0, size)
	}
	out := r.ints[len(r.ints) : len(r.ints)+k : len(r.ints)+k]
	r.ints = r.ints[:len(r.ints)+k]
	return out
}

// reachTo computes (and memoizes) the hears-from grid for (j,k) as a
// flat slice with stride k+1: cell [a*(k+1)+kp] reports (a,kp) →_G (j,k).
// It is Graph.ReachTo on the Ref's recycled storage.
func (r *Ref) reachTo(j model.AgentID, mj int) []bool {
	p := point{j, mj}
	if grid, ok := r.reachMemo[p]; ok {
		return grid
	}
	n := r.g.N()
	stride := mj + 1
	grid := r.allocBools(n * stride)
	grid[int(j)*stride+mj] = true
	for k := mj - 1; k >= 0; k-- {
		for a := 0; a < n; a++ {
			if grid[a*stride+k+1] {
				grid[a*stride+k] = true // self-step
				continue
			}
			for b := 0; b < n; b++ {
				if grid[b*stride+k+1] && r.g.Edge(k, model.AgentID(a), model.AgentID(b)) == Sent {
					grid[a*stride+k] = true
					break
				}
			}
		}
	}
	r.reachMemo[p] = grid
	return grid
}

// Known reports whether (j,k) has flowed to the graph's owner, i.e.
// whether the owner can reconstruct agent j's view at time k.
func (r *Ref) Known(j model.AgentID, k int) bool {
	if k < 0 || k > r.g.M() {
		return false
	}
	return r.reachTo(r.g.Owner(), r.g.M())[int(j)*(r.g.M()+1)+k]
}

// OwnerAction is the P_opt action of the graph's owner at the graph's
// time: the top of the decision recursion.
func (r *Ref) OwnerAction() model.Action {
	a, known := r.Decision(r.g.Owner(), r.g.M())
	if !known {
		panic("graph: owner's own view unexpectedly unknown")
	}
	return a
}

// Decision is the paper's d(j, k, G): the action agent j takes at time k
// (in round k+1) under P_opt, as inferable from the owner's graph. The
// second result is false — the paper's "?" — when (j,k) has not flowed to
// the owner; an already-decided agent yields (Noop, true), the paper's ⊥.
func (r *Ref) Decision(j model.AgentID, k int) (model.Action, bool) {
	if !r.Known(j, k) {
		return model.Noop, false
	}
	p := point{j, k}
	if e, ok := r.decMemo[p]; ok {
		return e.action, e.known
	}
	// Break self-recursion (cond1 scans other points at time k, never
	// (j,k) itself, but seed defensively).
	r.decMemo[p] = decEntry{model.Noop, true}
	action := r.program(j, k)
	r.decMemo[p] = decEntry{action, true}
	return action, true
}

// Decided returns the value agent j has decided at time k (decisions taken
// in rounds <= k, i.e. actions at times < k), or None. It requires (j,k)
// to be known to the owner.
func (r *Ref) Decided(j model.AgentID, k int) model.Value {
	for kp := 0; kp < k; kp++ {
		if a, known := r.Decision(j, kp); known && a.IsDecide() {
			return a.Decision()
		}
	}
	return model.None
}

// program evaluates the body of P_opt for agent j at time k (Section
// A.2.7). The caller guarantees (j,k) is known to the owner.
func (r *Ref) program(j model.AgentID, k int) model.Action {
	if r.Decided(j, k).IsSet() {
		return model.Noop
	}
	if r.useCK {
		if r.CommonV(model.Zero, j, k) {
			return model.Decide0
		}
		if r.CommonV(model.One, j, k) {
			return model.Decide1
		}
	}
	switch {
	case r.Cond0(j, k):
		return model.Decide0
	case r.Cond1(j, k):
		return model.Decide1
	default:
		return model.Noop
	}
}

// FaultyKnown is the paper's f(j, k, G): the set of agents that the owner
// knows agent j knows to be faulty at time k. The recursion follows the
// paper: agents that observably failed to deliver to j, plus everything
// reported by agents j heard from, plus what j already knew.
func (r *Ref) FaultyKnown(j model.AgentID, k int) []model.AgentID {
	s := r.fset(j, k)
	out := make([]model.AgentID, 0, s.size())
	for a := 0; a < r.g.N(); a++ {
		if s.has(model.AgentID(a)) {
			out = append(out, model.AgentID(a))
		}
	}
	return out
}

func (r *Ref) fset(j model.AgentID, k int) agentSet {
	if k <= 0 {
		return 0
	}
	p := point{j, k}
	if s, ok := r.fMemo[p]; ok {
		return s
	}
	s := r.fset(j, k-1)
	for c := 0; c < r.g.N(); c++ {
		switch r.g.Edge(k-1, model.AgentID(c), j) {
		case NotSent:
			s |= 1 << uint(c)
		case Sent:
			s |= r.fset(model.AgentID(c), k-1)
		}
	}
	r.fMemo[p] = s
	return s
}

// pooledFaulty is the paper's D(S, k, G) for S = complement of fOwn: the
// union of the f-sets at time k of every agent outside fOwn.
func (r *Ref) pooledFaulty(fOwn agentSet, k int) agentSet {
	var d agentSet
	for c := 0; c < r.g.N(); c++ {
		if !fOwn.has(model.AgentID(c)) {
			d |= r.fset(model.AgentID(c), k)
		}
	}
	return d
}

// KnowsValue reports whether the owner knows that agent j knows some agent
// held initial preference v at time k (the paper's v ∈ V(j, k, G)).
func (r *Ref) KnowsValue(j model.AgentID, k int, v model.Value) bool {
	reach := r.reachTo(j, k)
	stride := k + 1
	for a := 0; a < r.g.N(); a++ {
		if reach[a*stride] && r.g.Pref(model.AgentID(a)) == v {
			return true
		}
	}
	return false
}

// CommonV is the paper's common_v test for agent j at time k: it holds iff
// C_N(t-faulty ∧ no-decided_N(1−v) ∧ ∃v) holds at time k, evaluated from
// j's view. Following Lemma A.20, C_N(t-faulty) holds iff j knows exactly
// t faulty agents and the agents j still considers possibly nonfaulty had,
// between them, already identified all t at time k−1.
func (r *Ref) CommonV(v model.Value, j model.AgentID, k int) bool {
	if k < 1 {
		return false // common knowledge of faultiness needs at least one round
	}
	fOwn := r.fset(j, k)
	if fOwn.size() != r.t {
		return false
	}
	if r.pooledFaulty(fOwn, k-1).size() != r.t {
		return false
	}
	// no-decided_N(1−v): no possibly-nonfaulty agent decided 1−v by time k.
	// Every agent outside fOwn delivered to j in round k, so its actions at
	// times < k are all inferable.
	for c := 0; c < r.g.N(); c++ {
		if fOwn.has(model.AgentID(c)) {
			continue
		}
		for kp := 0; kp < k; kp++ {
			if a, known := r.Decision(model.AgentID(c), kp); known && a.Decision() == v.Flip() {
				return false
			}
		}
	}
	// ∃v must have been known to some agent outside the pooled faulty set
	// at time k−1 (Proposition A.2(c)).
	pooled := r.pooledFaulty(fOwn, k-1)
	for c := 0; c < r.g.N(); c++ {
		if pooled.has(model.AgentID(c)) {
			continue
		}
		if r.KnowsValue(model.AgentID(c), k-1, v) {
			return true
		}
	}
	return false
}

// Cond0 is the paper's cond0: agent j can decide 0 at time k because its
// own initial preference is 0 (k = 0) or because it just received a
// message from an agent that decided 0 in round k (j received a 0-chain).
func (r *Ref) Cond0(j model.AgentID, k int) bool {
	if k == 0 {
		return r.g.Pref(j) == model.Zero
	}
	for c := 0; c < r.g.N(); c++ {
		if r.g.Edge(k-1, model.AgentID(c), j) != Sent {
			continue
		}
		if a, known := r.Decision(model.AgentID(c), k-1); known && a == model.Decide0 {
			return true
		}
	}
	return false
}

// Cond1 is the paper's cond1: agent j knows at time k that no agent can be
// deciding 0. Following Proposition A.7, j CANNOT rule out a hidden
// 0-chain iff for every length m” in (len, k] there are at least
// m”−len agents whose last contact with j predates m” and who were, as
// far as j knows, still undecided at that last contact — enough silent
// agents to extend the longest 0-chain j knows about to length m”.
// Cond1 is the negation of that condition.
func (r *Ref) Cond1(j model.AgentID, k int) bool {
	if k == 0 {
		return false
	}
	reach := r.reachTo(j, k)
	stride := k + 1

	// len: the time of the latest 0-decision j knows about (the length of
	// the longest known 0-chain), or -1.
	length := -1
	for kp := k - 1; kp >= 0 && length < 0; kp-- {
		for c := 0; c < r.g.N(); c++ {
			if !reach[c*stride+kp] {
				continue
			}
			if a, known := r.Decision(model.AgentID(c), kp); known && a == model.Decide0 {
				length = kp
				break
			}
		}
	}

	// last[c]: the latest time kp with (c,kp) → (j,k), or -1; undec[c]:
	// whether c was still undecided at its last contact. Carved from the
	// bump storage: the Decision calls below may re-enter Cond1, so the
	// scratch cannot be a shared fixed slice.
	last := r.allocInts(r.g.N())
	undec := r.allocBools(r.g.N())
	for c := 0; c < r.g.N(); c++ {
		last[c] = -1
		for kp := k; kp >= 0; kp-- {
			if reach[c*stride+kp] {
				last[c] = kp
				break
			}
		}
		undec[c] = true
		for kp := 0; kp <= last[c]; kp++ {
			if a, known := r.Decision(model.AgentID(c), kp); known && a.IsDecide() {
				undec[c] = false
				break
			}
		}
	}

	// hidden(m''): agents that could extend a hidden chain at time m''.
	hidden := func(mpp int) int {
		count := 0
		for c := 0; c < r.g.N(); c++ {
			if last[c] < mpp && undec[c] {
				count++
			}
		}
		return count
	}
	for mpp := length + 1; mpp <= k; mpp++ {
		if hidden(mpp) < mpp-length {
			return true
		}
	}
	return false
}
