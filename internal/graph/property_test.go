package graph_test

// Property-based tests over communication graphs harvested from real runs:
// merge is commutative and idempotent on consistent views, reachability
// grids are prefix-closed, and keys are canonical.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/action"
	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/exchange"
	"repro/internal/graph"
	"repro/internal/model"
)

// harvest runs the FIP stack under a seeded random adversary and returns
// the run (views of different agents at equal times are consistent by
// construction).
func harvest(t *testing.T, seed int64) *engine.Result {
	t.Helper()
	n, tf := 4, 2
	rng := rand.New(rand.NewSource(seed))
	pat := adversary.RandomSO(rng, n, tf, tf+2, 0.5)
	inits := make([]model.Value, n)
	for i := range inits {
		inits[i] = model.Value(rng.Intn(2))
	}
	res, err := engine.Run(engine.Config{
		Exchange: exchange.NewFIP(n),
		Action:   action.NewOpt(tf),
		Pattern:  pat,
		Inits:    inits,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func viewAt(res *engine.Result, m, i int) *graph.Graph {
	return res.States[m][i].(*exchange.FIPState).Graph()
}

func TestMergeCommutativeOnConsistentViews(t *testing.T) {
	f := func(seed int64) bool {
		res := harvest(t, seed)
		m := 2
		a := viewAt(res, m, 0)
		b := viewAt(res, m, 1)
		ab := a.CloneFor(9)
		ab.Merge(b)
		ba := b.CloneFor(9)
		ba.Merge(a)
		return ab.Key() == ba.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		res := harvest(t, seed)
		g := viewAt(res, 3, 2)
		h := g.Clone()
		h.Merge(g)
		return h.Key() == g.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMergeAssociativeOnConsistentViews(t *testing.T) {
	f := func(seed int64) bool {
		res := harvest(t, seed)
		m := 2
		a, b, c := viewAt(res, m, 0), viewAt(res, m, 1), viewAt(res, m, 2)
		left := a.CloneFor(9)
		left.Merge(b)
		left.Merge(c)
		bc := b.CloneFor(9)
		bc.Merge(c)
		right := a.CloneFor(9)
		right.Merge(bc)
		return left.Key() == right.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReachGridPrefixClosed(t *testing.T) {
	// If (c,k) reaches the target, so does (c,k-1): an agent's earlier
	// state always flows into its later one.
	f := func(seed int64) bool {
		res := harvest(t, seed)
		g := viewAt(res, res.Horizon, 1)
		reach := g.ReachTo(1, g.M())
		for c := range reach {
			for k := 1; k < len(reach[c]); k++ {
				if reach[c][k] && !reach[c][k-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOwnRowFullyReachable(t *testing.T) {
	// The owner's own past always reaches its present.
	f := func(seed int64) bool {
		res := harvest(t, seed)
		for i := 0; i < res.N; i++ {
			g := viewAt(res, res.Horizon, i)
			reach := g.ReachTo(model.AgentID(i), g.M())
			for k := 0; k <= g.M(); k++ {
				if !reach[i][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestKeyCanonical(t *testing.T) {
	// Equal keys iff equal content: cloned graphs keep keys; any single
	// label flip changes the key.
	f := func(seed int64) bool {
		res := harvest(t, seed)
		g := viewAt(res, 2, 0)
		if g.Clone().Key() != g.Key() {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		h := g.Clone()
		// Flip one unknown edge to a known label (if any unknown exists).
		for tries := 0; tries < 50; tries++ {
			k := rng.Intn(h.M())
			i := model.AgentID(rng.Intn(h.N()))
			j := model.AgentID(rng.Intn(h.N()))
			if h.Edge(k, i, j) == graph.Unknown {
				h.SetEdge(k, i, j, graph.Sent)
				return h.Key() != g.Key()
			}
		}
		return true // no unknown edge found; nothing to flip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDecidedConsistentWithDecisionTable(t *testing.T) {
	// Ref.Decided must agree with scanning Ref.Decision over earlier
	// times, at every reachable point of a run.
	f := func(seed int64) bool {
		res := harvest(t, seed)
		tf := 2
		g := viewAt(res, res.Horizon, 3)
		r := graph.NewRef(tf, g)
		for j := 0; j < res.N; j++ {
			for k := 0; k <= g.M(); k++ {
				if !r.Known(model.AgentID(j), k) {
					continue
				}
				want := model.None
				for kp := 0; kp < k; kp++ {
					if a, known := r.Decision(model.AgentID(j), kp); known && a.IsDecide() {
						want = a.Decision()
						break
					}
				}
				if r.Decided(model.AgentID(j), k) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
