package graph

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New(1, 3)
	if g.Owner() != 1 || g.N() != 3 || g.M() != 0 {
		t.Fatalf("owner=%d n=%d m=%d", g.Owner(), g.N(), g.M())
	}
	for j := 0; j < 3; j++ {
		if g.Pref(model.AgentID(j)) != model.None {
			t.Errorf("pref[%d] = %v, want ?", j, g.Pref(model.AgentID(j)))
		}
	}
	if g.Edge(0, 0, 1) != Unknown {
		t.Error("edge in empty graph should be Unknown")
	}
}

func TestExtendAndSetEdge(t *testing.T) {
	g := New(0, 2)
	g.Extend()
	if g.M() != 1 {
		t.Fatalf("M = %d after Extend", g.M())
	}
	g.SetEdge(0, 0, 1, Sent)
	g.SetEdge(0, 1, 0, NotSent)
	if g.Edge(0, 0, 1) != Sent || g.Edge(0, 1, 0) != NotSent {
		t.Error("labels not recorded")
	}
	// Unknown writes are ignored, re-writing the same label is fine.
	g.SetEdge(0, 0, 1, Unknown)
	g.SetEdge(0, 0, 1, Sent)
	if g.Edge(0, 0, 1) != Sent {
		t.Error("label lost after redundant writes")
	}
}

func TestSetEdgeConflictPanics(t *testing.T) {
	g := New(0, 2)
	g.Extend()
	g.SetEdge(0, 0, 1, Sent)
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting SetEdge did not panic")
		}
	}()
	g.SetEdge(0, 0, 1, NotSent)
}

func TestSetPrefConflictPanics(t *testing.T) {
	g := New(0, 2)
	g.SetPref(1, model.Zero)
	g.SetPref(1, model.Zero) // same value is fine
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting SetPref did not panic")
		}
	}()
	g.SetPref(1, model.One)
}

func TestMerge(t *testing.T) {
	g := New(0, 3)
	g.Extend()
	g.SetPref(0, model.One)
	g.SetEdge(0, 1, 0, Sent)

	h := New(1, 3)
	h.Extend()
	h.SetPref(1, model.Zero)
	h.SetEdge(0, 2, 1, NotSent)

	g.Merge(h)
	if g.Pref(1) != model.Zero {
		t.Error("merged preference lost")
	}
	if g.Edge(0, 2, 1) != NotSent {
		t.Error("merged edge label lost")
	}
	if g.Edge(0, 1, 0) != Sent {
		t.Error("own edge label lost in merge")
	}
}

func TestMergeShorterGraph(t *testing.T) {
	g := New(0, 2)
	g.Extend()
	g.Extend()
	h := New(1, 2)
	h.Extend()
	h.SetEdge(0, 0, 1, Sent)
	g.Merge(h) // h covers fewer rounds: fine
	if g.Edge(0, 0, 1) != Sent {
		t.Error("merge from shorter graph lost label")
	}
}

func TestMergeFromFuturePanics(t *testing.T) {
	g := New(0, 2)
	h := New(1, 2)
	h.Extend()
	defer func() {
		if recover() == nil {
			t.Fatal("merge from future graph did not panic")
		}
	}()
	g.Merge(h)
}

func TestCloneIndependence(t *testing.T) {
	g := New(0, 2)
	g.Extend()
	g.SetPref(0, model.One)
	h := g.Clone()
	h.SetEdge(0, 0, 1, Sent)
	if g.Edge(0, 0, 1) != Unknown {
		t.Error("mutating clone affected original")
	}
	if h.Owner() != 0 {
		t.Error("clone changed owner")
	}
	h2 := g.CloneFor(1)
	if h2.Owner() != 1 {
		t.Error("CloneFor did not set owner")
	}
}

func TestKeyDistinguishes(t *testing.T) {
	g := New(0, 2)
	g.Extend()
	h := g.Clone()
	if g.Key() != h.Key() {
		t.Error("equal graphs have different keys")
	}
	h.SetEdge(0, 1, 0, Sent)
	if g.Key() == h.Key() {
		t.Error("different labels, same key")
	}
	i := g.Clone()
	i.SetPref(1, model.Zero)
	if g.Key() == i.Key() {
		t.Error("different prefs, same key")
	}
	j := g.CloneFor(1)
	if g.Key() == j.Key() {
		t.Error("different owner, same key")
	}
}

func TestBits(t *testing.T) {
	g := New(0, 4)
	if g.Bits() != 2*4 {
		t.Errorf("time-0 bits = %d, want 8", g.Bits())
	}
	g.Extend()
	g.Extend()
	// 2 * n² * m + 2n = 2*16*2 + 8 = 72.
	if g.Bits() != 72 {
		t.Errorf("bits = %d, want 72", g.Bits())
	}
}

func TestStringContainsLabels(t *testing.T) {
	g := New(0, 2)
	g.Extend()
	g.SetEdge(0, 1, 0, Sent)
	if s := g.String(); !strings.Contains(s, "1→0:1") {
		t.Errorf("String() = %q missing label", s)
	}
	if NotSent.String() != "0" || Sent.String() != "1" || Unknown.String() != "?" {
		t.Error("unexpected label strings")
	}
}

// buildRound1 constructs agent 1's view after one round of a 3-agent
// system where agent 0 (init 0) delivered to 1, and agent 2 stayed silent.
func buildRound1(t *testing.T) *Graph {
	t.Helper()
	g := New(1, 3)
	g.SetPref(1, model.One)
	g.Extend()
	g.SetEdge(0, 0, 1, Sent)
	g.SetEdge(0, 1, 1, Sent)
	g.SetEdge(0, 2, 1, NotSent)
	g.SetPref(0, model.Zero) // learned from 0's graph
	return g
}

func TestReachTo(t *testing.T) {
	g := buildRound1(t)
	reach := g.ReachTo(1, 1)
	want := map[[2]int]bool{
		{0, 0}: true,  // 0 delivered to 1
		{1, 0}: true,  // self step
		{2, 0}: false, // silent
		{1, 1}: true,  // target
		{0, 1}: false,
		{2, 1}: false,
	}
	for k, w := range want {
		if reach[k[0]][k[1]] != w {
			t.Errorf("reach[%d][%d] = %v, want %v", k[0], k[1], reach[k[0]][k[1]], w)
		}
	}
}

func TestReachToBoundsPanic(t *testing.T) {
	g := New(0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("ReachTo out of range did not panic")
		}
	}()
	g.ReachTo(0, 5)
}

func TestRefFaultyKnown(t *testing.T) {
	g := buildRound1(t)
	r := NewRef(1, g)
	got := r.FaultyKnown(1, 1)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("FaultyKnown(1,1) = %v, want [2]", got)
	}
	if len(r.FaultyKnown(1, 0)) != 0 {
		t.Error("FaultyKnown at time 0 should be empty")
	}
}

func TestRefDecisionSimpleChain(t *testing.T) {
	g := buildRound1(t)
	r := NewRef(1, g)
	// Agent 0 had init 0, so it decided 0 at time 0 (cond0).
	a, known := r.Decision(0, 0)
	if !known || a != model.Decide0 {
		t.Errorf("Decision(0,0) = %v,%v, want decide(0),true", a, known)
	}
	// Agent 2's view never reached agent 1.
	if _, known := r.Decision(2, 0); known {
		t.Error("Decision(2,0) should be unknown")
	}
	// The owner heard 0's decision in round 1 → cond0 → decide 0 now.
	if got := r.OwnerAction(); got != model.Decide0 {
		t.Errorf("OwnerAction = %v, want decide(0)", got)
	}
	// And it has not decided before time 1.
	if v := r.Decided(1, 1); v != model.None {
		t.Errorf("Decided(1,1) = %v, want ⊥", v)
	}
}

func TestRefKnowsValue(t *testing.T) {
	g := buildRound1(t)
	r := NewRef(1, g)
	if !r.KnowsValue(1, 1, model.Zero) {
		t.Error("owner should know a 0 exists")
	}
	if !r.KnowsValue(1, 1, model.One) {
		t.Error("owner should know a 1 exists (its own)")
	}
	if r.KnowsValue(2, 0, model.Zero) {
		t.Error("silent agent's time-0 view cannot be known to contain a 0")
	}
}

func TestRefCommonVNeedsTwoRounds(t *testing.T) {
	g := buildRound1(t)
	r := NewRef(1, g)
	if r.CommonV(model.Zero, 1, 0) || r.CommonV(model.One, 1, 0) {
		t.Error("common_v cannot hold at time 0")
	}
	// At time 1 the pooled time-0 knowledge is empty, so |D| != t.
	if r.CommonV(model.Zero, 1, 1) || r.CommonV(model.One, 1, 1) {
		t.Error("common_v cannot hold at time 1")
	}
}

func TestNewRefValidation(t *testing.T) {
	g := New(0, 3)
	for _, bad := range []int{-1, 3, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRef(t=%d, n=3) did not panic", bad)
				}
			}()
			NewRef(bad, g)
		}()
	}
}

func TestKeyCacheInvalidation(t *testing.T) {
	g := New(0, 3)
	k0 := g.Key()
	if g.Key() != k0 {
		t.Fatal("cached key differs from first computation")
	}
	g.SetPref(1, model.One)
	k1 := g.Key()
	if k1 == k0 {
		t.Fatal("SetPref did not invalidate the key cache")
	}
	g.Extend()
	k2 := g.Key()
	if k2 == k1 {
		t.Fatal("Extend did not invalidate the key cache")
	}
	g.SetEdge(0, 0, 1, Sent)
	k3 := g.Key()
	if k3 == k2 {
		t.Fatal("SetEdge did not invalidate the key cache")
	}
	// Clone shares content, so it may share the cached key; CloneFor
	// changes the owner, so its key must differ.
	if g.Clone().Key() != k3 {
		t.Error("Clone key differs from the original")
	}
	if g.CloneFor(2).Key() == k3 {
		t.Error("CloneFor key should differ (owner is part of the fingerprint)")
	}
	// Re-setting an already-known label must not change the key.
	g.SetEdge(0, 0, 1, Sent)
	if g.Key() != k3 {
		t.Error("idempotent SetEdge changed the key")
	}
}
