package graph_test

// Integration tests driving the full-information exchange and P_opt
// through the round engine, then validating the graph-based inference
// machinery against what actually happened: every decision Ref infers
// from any agent's graph must equal the action the engine recorded.

import (
	"math/rand"
	"testing"

	"repro/internal/action"
	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/exchange"
	"repro/internal/graph"
	"repro/internal/model"
)

func runFIP(t *testing.T, n, tf int, pat *model.Pattern, inits []model.Value) *engine.Result {
	t.Helper()
	res, err := engine.Run(engine.Config{
		Exchange: exchange.NewFIP(n),
		Action:   action.NewOpt(tf),
		Pattern:  pat,
		Inits:    inits,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkInference asserts that, at every point of the run, every decision
// any agent can infer from its graph matches the recorded action, and the
// cached decided component matches the graph-derived one.
func checkInference(t *testing.T, tf int, res *engine.Result) {
	t.Helper()
	for m := 0; m <= res.Horizon; m++ {
		for i := 0; i < res.N; i++ {
			st := res.States[m][i].(*exchange.FIPState)
			r := graph.NewRef(tf, st.Graph())
			for k := 0; k < m; k++ {
				for j := 0; j < res.N; j++ {
					a, known := r.Decision(model.AgentID(j), k)
					if !known {
						continue
					}
					if got := res.Actions[k][j]; got != a {
						t.Fatalf("time %d, agent %d infers action %v for (%d,%d); engine recorded %v",
							m, i, a, j, k, got)
					}
				}
			}
			if got, want := r.Decided(model.AgentID(i), m), st.Decided(); got != want {
				t.Fatalf("time %d agent %d: graph-derived decided %v, cached %v", m, i, got, want)
			}
		}
	}
}

func TestPoptFailureFreeAllOnes(t *testing.T) {
	// Proposition 8.2(b): failure-free all-1 runs decide in round 2.
	for _, n := range []int{3, 4, 6} {
		tf := 1
		res := runFIP(t, n, tf, adversary.FailureFree(n, tf+2), adversary.UniformInits(n, model.One))
		for i := 0; i < n; i++ {
			if res.Decided(model.AgentID(i)) != model.One {
				t.Errorf("n=%d agent %d decided %v, want 1", n, i, res.Decided(model.AgentID(i)))
			}
			if res.Round(model.AgentID(i)) != 2 {
				t.Errorf("n=%d agent %d decided in round %d, want 2", n, i, res.Round(model.AgentID(i)))
			}
		}
		checkInference(t, tf, res)
	}
}

func TestPoptFailureFreeWithZero(t *testing.T) {
	// Proposition 8.2(a): with an initial 0 and no failures, everyone
	// decides 0 by round 2.
	n, tf := 4, 1
	inits := []model.Value{model.One, model.Zero, model.One, model.One}
	res := runFIP(t, n, tf, adversary.FailureFree(n, tf+2), inits)
	for i := 0; i < n; i++ {
		if res.Decided(model.AgentID(i)) != model.Zero {
			t.Errorf("agent %d decided %v, want 0", i, res.Decided(model.AgentID(i)))
		}
		if res.Round(model.AgentID(i)) > 2 {
			t.Errorf("agent %d decided in round %d, want ≤ 2", i, res.Round(model.AgentID(i)))
		}
	}
	checkInference(t, tf, res)
}

func TestPoptExample71Small(t *testing.T) {
	// Example 7.1 scaled down: n=6, t=3, agents 0-2 silent-faulty, all
	// initial preferences 1. The nonfaulty agents get common knowledge of
	// the faulty set after two rounds and decide 1 in round 3, instead of
	// waiting until round t+2 = 5.
	n, tf := 6, 3
	res := runFIP(t, n, tf, adversary.Example71(n, tf, tf+2), adversary.UniformInits(n, model.One))
	for i := tf; i < n; i++ {
		if res.Decided(model.AgentID(i)) != model.One {
			t.Errorf("agent %d decided %v, want 1", i, res.Decided(model.AgentID(i)))
		}
		if res.Round(model.AgentID(i)) != 3 {
			t.Errorf("agent %d decided in round %d, want 3", i, res.Round(model.AgentID(i)))
		}
	}
	checkInference(t, tf, res)
}

func TestPoptExample71Paper(t *testing.T) {
	// The exact parameters of Example 7.1: n=20, t=10.
	if testing.Short() {
		t.Skip("short mode")
	}
	n, tf := 20, 10
	res := runFIP(t, n, tf, adversary.Example71(n, tf, tf+2), adversary.UniformInits(n, model.One))
	for i := tf; i < n; i++ {
		if res.Round(model.AgentID(i)) != 3 || res.Decided(model.AgentID(i)) != model.One {
			t.Errorf("agent %d: round %d value %v, want round 3 value 1",
				i, res.Round(model.AgentID(i)), res.Decided(model.AgentID(i)))
		}
	}
}

func TestPoptAgreementValidityRandom(t *testing.T) {
	// EBA safety under random omission adversaries, with the inference
	// cross-check on every run.
	rng := rand.New(rand.NewSource(42))
	n, tf := 4, 2
	for trial := 0; trial < 60; trial++ {
		pat := adversary.RandomSO(rng, n, tf, tf+2, 0.4)
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value(rng.Intn(2))
		}
		res := runFIP(t, n, tf, pat, inits)

		var dec model.Value = model.None
		for i := 0; i < n; i++ {
			id := model.AgentID(i)
			if !pat.Nonfaulty(id) {
				continue
			}
			v := res.Decided(id)
			if v == model.None {
				t.Fatalf("trial %d: nonfaulty agent %d undecided after t+2 rounds\npattern: %v inits: %v",
					trial, i, pat, inits)
			}
			if dec == model.None {
				dec = v
			} else if dec != v {
				t.Fatalf("trial %d: agreement violated\npattern: %v inits: %v", trial, pat, inits)
			}
		}
		// Validity (paper's strong form: even for faulty deciders).
		for i := 0; i < n; i++ {
			v := res.Decided(model.AgentID(i))
			if v == model.None {
				continue
			}
			found := false
			for _, iv := range inits {
				if iv == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("trial %d: agent %d decided %v with inits %v", trial, i, v, inits)
			}
		}
		checkInference(t, tf, res)
	}
}

func TestPoptDecidesByTPlus2(t *testing.T) {
	// Proposition 6.1's bound, for every agent including faulty ones.
	rng := rand.New(rand.NewSource(7))
	n, tf := 5, 2
	for trial := 0; trial < 40; trial++ {
		pat := adversary.RandomSO(rng, n, tf, tf+2, 0.5)
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value(rng.Intn(2))
		}
		res := runFIP(t, n, tf, pat, inits)
		for i := 0; i < n; i++ {
			if r := res.Round(model.AgentID(i)); r == 0 || r > tf+2 {
				t.Fatalf("trial %d: agent %d decision round %d (want 1..%d)\npattern: %v",
					trial, i, r, tf+2, pat)
			}
		}
	}
}
