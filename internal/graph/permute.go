package graph

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
)

// PermuteKey rewrites an interned graph key (the exact format produced by
// Graph.Key) under the agent relabeling perm, where perm[i] is the new
// identity of old agent i — the same convention as Pattern.Permute. The
// result is the key the permuted run's graph would intern for agent
// perm[owner]: the owner is relabeled, preference digit j moves to
// position perm[j], and the round-k edge digit (i, j) moves to
// (perm[i], perm[j]). The key is rewritten textually, so permuting works
// on merged shard indexes where the graphs themselves no longer exist.
//
// PermuteKey returns an error if the key is not a well-formed graph key
// for len(perm) agents.
func PermuteKey(key string, perm []model.AgentID) (string, error) {
	n := len(perm)
	ownerStr, rest, ok := strings.Cut(key, "|")
	if !ok {
		return "", fmt.Errorf("graph: malformed key %q: no owner section", key)
	}
	owner, err := strconv.Atoi(ownerStr)
	if err != nil || owner < 0 || owner >= n {
		return "", fmt.Errorf("graph: malformed key %q: bad owner %q for n=%d", key, ownerStr, n)
	}
	mStr, rest, ok := strings.Cut(rest, "|")
	if !ok {
		return "", fmt.Errorf("graph: malformed key %q: no round section", key)
	}
	m, err := strconv.Atoi(mStr)
	if err != nil || m < 0 {
		return "", fmt.Errorf("graph: malformed key %q: bad round count %q", key, mStr)
	}
	// rest = prefs (n digits) + m sections of "|" + n*n edge digits.
	want := n + m*(1+n*n)
	if len(rest) != want {
		return "", fmt.Errorf("graph: malformed key %q: body is %d bytes, want %d for n=%d m=%d",
			key, len(rest), want, n, m)
	}

	var b strings.Builder
	b.Grow(len(key))
	b.WriteString(strconv.Itoa(int(perm[owner])))
	b.WriteByte('|')
	b.WriteString(mStr)
	b.WriteByte('|')
	buf := make([]byte, n*n)
	for j := 0; j < n; j++ {
		buf[perm[j]] = rest[j]
	}
	b.Write(buf[:n])
	pos := n
	for k := 0; k < m; k++ {
		if rest[pos] != '|' {
			return "", fmt.Errorf("graph: malformed key %q: round %d section does not start with '|'", key, k)
		}
		pos++
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				buf[int(perm[i])*n+int(perm[j])] = rest[pos]
				pos++
			}
		}
		b.WriteByte('|')
		b.Write(buf)
	}
	return b.String(), nil
}
