package experiments

import (
	"context"
	"encoding/json"
	"os"
	goruntime "runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/action"
	"repro/internal/adversary"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/episteme"
	"repro/internal/exchange"
	"repro/internal/source"
)

// EpistemeBenchEntry is one measured model-checking workload: building
// the exhaustive γ_fip system and machine-checking Theorem A.21 on it.
type EpistemeBenchEntry struct {
	// Name identifies the workload, e.g. "fip_n3_t1".
	Name string `json:"name"`
	// N and T are the context parameters.
	N int `json:"n"`
	T int `json:"t"`
	// Quotient reports whether the system was built through the agent-
	// permutation symmetry quotient (episteme.WithQuotient): only one
	// representative per orbit is executed, then the full system is
	// expanded back by relabeling, so Runs still counts the whole sweep.
	Quotient bool `json:"quotient,omitempty"`
	// Runs is the size of the enumerated system.
	Runs int `json:"runs"`
	// RepRuns is the number of orbit representatives actually executed
	// when Quotient is set (0 otherwise); Runs/RepRuns is the symmetry
	// reduction factor.
	RepRuns int `json:"rep_runs,omitempty"`
	// BuildSeconds is the median BuildSystem wall-clock. For the warm-
	// cache workload it is the median warm rebuild, and ColdBuildSeconds
	// records the cache-filling cold build it is gated against.
	BuildSeconds float64 `json:"build_seconds"`
	// ColdBuildSeconds is the cold (cache-filling) build wall-clock of
	// the warm-cache workload; 0 for the uncached workloads. The gate
	// requires BuildSeconds ≤ WarmColdLimit × ColdBuildSeconds.
	ColdBuildSeconds float64 `json:"cold_build_seconds,omitempty"`
	// CheckImplementsSeconds is the median cold CheckImplements(P1)
	// wall-clock (including the C_N condensation builds).
	CheckImplementsSeconds float64 `json:"check_implements_seconds"`
	// Mismatches must be 0: the benchmark doubles as a theorem check.
	Mismatches int `json:"mismatches"`
}

// EpistemeBench is the perf trajectory record ebabench emits as
// BENCH_episteme.json: the model checker's wall-clock on the reference
// workloads, alongside the pre-refactor baseline measured on the same
// class of workload so the speedup is visible in one file.
type EpistemeBench struct {
	// GoMaxProcs is the worker budget the measurements ran with.
	GoMaxProcs int `json:"gomaxprocs"`
	// Parallelism is the requested checker parallelism (0 = one worker
	// per CPU).
	Parallelism int `json:"parallelism"`
	// Reps is the number of repetitions the medians are taken over.
	Reps int `json:"reps"`
	// Entries holds the measured workloads.
	Entries []EpistemeBenchEntry `json:"entries"`
	// Baseline holds reference wall-clocks of the pre-sharding checker
	// (PR 2's sequential enumeration and string-keyed index), keyed by
	// entry name, for trajectory comparison. Populated by the harness
	// that recorded them; empty when no baseline is known.
	Baseline map[string]EpistemeBenchBaseline `json:"baseline,omitempty"`
}

// EpistemeBenchBaseline is a reference measurement of the pre-sharding
// checker.
type EpistemeBenchBaseline struct {
	BuildSeconds           float64 `json:"build_seconds"`
	CheckImplementsSeconds float64 `json:"check_implements_seconds"`
	// Host describes where the baseline was recorded.
	Host string `json:"host,omitempty"`
}

// BenchEpisteme measures BuildSystem + CheckImplements on the fip
// contexts n=3,t=1 and n=4,t=1 (the reference workloads of the model
// checker's perf trajectory), taking the median of reps repetitions,
// plus two symmetry-quotiented workloads: n=4,t=1 built through
// episteme.WithQuotient (the direct full-vs-quotient comparison) and
// the exhaustive n=5,t=1 sweep, which only the quotient makes a
// practical bench entry (655,392 runs from ~27k executed
// representatives). Every repetition builds a fresh system, so the
// check includes the C_N condensation cost; quotiented builds include
// the expansion back to the full system, so their Runs — and their
// verdicts — match the unquotiented sweep's exactly.
func BenchEpisteme(parallelism, reps int) (*EpistemeBench, error) {
	if reps < 1 {
		reps = 1
	}
	bench := &EpistemeBench{
		GoMaxProcs:  goruntime.GOMAXPROCS(0),
		Parallelism: parallelism,
		Reps:        reps,
		Baseline:    epistemeBaseline,
	}
	ctx := context.Background()
	workloads := []struct {
		n, t     int
		quotient bool
	}{
		{3, 1, false},
		{4, 1, false},
		{4, 1, true},
		{5, 1, true},
	}
	for _, w := range workloads {
		entry := EpistemeBenchEntry{
			Name:     benchName(w.n, w.t, w.quotient),
			N:        w.n,
			T:        w.t,
			Quotient: w.quotient,
		}
		buildOpts := []episteme.Option{episteme.WithParallelism(parallelism)}
		if w.quotient {
			buildOpts = append(buildOpts, episteme.WithQuotient())
			repCount, err := quotientRepCount(w.n, w.t)
			if err != nil {
				return nil, err
			}
			entry.RepRuns = repCount
		}
		builds := make([]float64, 0, reps)
		checks := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			sys, err := episteme.BuildSystem(ctx,
				episteme.Context{Exchange: exchange.NewFIP(w.n), T: w.t},
				action.NewOpt(w.t), buildOpts...)
			if err != nil {
				return nil, err
			}
			builds = append(builds, time.Since(t0).Seconds())
			t0 = time.Now()
			ms, err := sys.CheckImplements(ctx, episteme.P1, 0)
			if err != nil {
				return nil, err
			}
			checks = append(checks, time.Since(t0).Seconds())
			entry.Runs = len(sys.Runs)
			entry.Mismatches = len(ms)
		}
		entry.BuildSeconds = median(builds)
		entry.CheckImplementsSeconds = median(checks)
		bench.Entries = append(bench.Entries, entry)
	}
	warm, err := benchWarmCache(ctx, parallelism, reps)
	if err != nil {
		return nil, err
	}
	bench.Entries = append(bench.Entries, *warm)
	return bench, nil
}

// benchWarmCache measures the result cache's effect on the checker: the
// quotiented n=5,t=1 shard index (7758 orbit representatives — the
// index build, not the ExpandQuotient step, is what the cache can skip)
// built cold into a fresh on-disk cache, then rebuilt warm from it. The
// warm rebuild is answered by the stripe-index cache entry, skipping
// the sweep's enumeration and canonicalization outright — per-run
// entries alone cannot beat WarmColdLimit here, because canonicalizing
// 655,392 scenarios down to their representatives dominates the cold
// build too. The entry's BuildSeconds is the median warm rebuild and
// ColdBuildSeconds the cold build; the gate holds warm at WarmColdLimit
// of cold.
func benchWarmCache(ctx context.Context, parallelism, reps int) (*EpistemeBenchEntry, error) {
	const n, t = 5, 1
	dir, err := os.MkdirTemp("", "eba-bench-cache-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := cache.Open(dir)
	if err != nil {
		return nil, err
	}
	defer store.Close()

	c := episteme.Context{Exchange: exchange.NewFIP(n), T: t}
	act := action.NewOpt(t)
	opts := []episteme.Option{
		episteme.WithParallelism(parallelism),
		episteme.WithQuotient(),
		episteme.WithCache(store, "bench"),
	}
	entry := &EpistemeBenchEntry{
		Name:     benchName(n, t, true) + "_warm",
		N:        n,
		T:        t,
		Quotient: true,
	}
	t0 := time.Now()
	idx, err := episteme.BuildShardIndex(ctx, c, act, 0, 1, opts...)
	if err != nil {
		return nil, err
	}
	entry.ColdBuildSeconds = time.Since(t0).Seconds()
	entry.Runs = len(idx.Runs)
	entry.RepRuns = len(idx.Runs)
	warms := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		t0 = time.Now()
		if _, err := episteme.BuildShardIndex(ctx, c, act, 0, 1, opts...); err != nil {
			return nil, err
		}
		warms = append(warms, time.Since(t0).Seconds())
	}
	entry.BuildSeconds = median(warms)
	return entry, nil
}

func benchName(n, t int, quotient bool) string {
	name := "fip_n" + strconv.Itoa(n) + "_t" + strconv.Itoa(t)
	if quotient {
		name += "_quotient"
	}
	return name
}

// quotientRepCount enumerates the quotiented sweep without executing it
// and reports how many orbit representatives survive — the number of
// runs a quotiented build actually executes.
func quotientRepCount(n, t int) (int, error) {
	pats, err := source.SO(n, t, t+2, adversary.Options{})
	if err != nil {
		return 0, err
	}
	src, err := source.CrossInits(pats, n)
	if err != nil {
		return 0, err
	}
	q := source.Quotient(src)
	count := 0
	for _, ok := q.Next(); ok; _, ok = q.Next() {
		count++
	}
	if es, ok := q.(core.ErrorSource); ok {
		if err := es.Err(); err != nil {
			return 0, err
		}
	}
	return count, nil
}

// epistemeBaseline is the pre-sharding checker (PR 2's private worker
// pool, fully materialized configuration slice, and string-keyed index)
// measured on the reference workloads immediately before the PR 3
// refactor — median of 3 on a single-core container, Go 1.25. Kept here
// so every BENCH_episteme.json carries the trajectory's starting point.
var epistemeBaseline = map[string]EpistemeBenchBaseline{
	"fip_n3_t1": {BuildSeconds: 0.0256, CheckImplementsSeconds: 0.0099, Host: "single-core container, pre-refactor seed"},
	"fip_n4_t1": {BuildSeconds: 1.3382, CheckImplementsSeconds: 0.4456, Host: "single-core container, pre-refactor seed"},
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

// MarshalIndent renders the record as the JSON ebabench writes to disk.
func (b *EpistemeBench) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}
