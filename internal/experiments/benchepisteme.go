package experiments

import (
	"context"
	"encoding/json"
	goruntime "runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/action"
	"repro/internal/episteme"
	"repro/internal/exchange"
)

// EpistemeBenchEntry is one measured model-checking workload: building
// the exhaustive γ_fip system and machine-checking Theorem A.21 on it.
type EpistemeBenchEntry struct {
	// Name identifies the workload, e.g. "fip_n3_t1".
	Name string `json:"name"`
	// N and T are the context parameters.
	N int `json:"n"`
	T int `json:"t"`
	// Runs is the size of the enumerated system.
	Runs int `json:"runs"`
	// BuildSeconds is the median BuildSystem wall-clock.
	BuildSeconds float64 `json:"build_seconds"`
	// CheckImplementsSeconds is the median cold CheckImplements(P1)
	// wall-clock (including the C_N condensation builds).
	CheckImplementsSeconds float64 `json:"check_implements_seconds"`
	// Mismatches must be 0: the benchmark doubles as a theorem check.
	Mismatches int `json:"mismatches"`
}

// EpistemeBench is the perf trajectory record ebabench emits as
// BENCH_episteme.json: the model checker's wall-clock on the reference
// workloads, alongside the pre-refactor baseline measured on the same
// class of workload so the speedup is visible in one file.
type EpistemeBench struct {
	// GoMaxProcs is the worker budget the measurements ran with.
	GoMaxProcs int `json:"gomaxprocs"`
	// Parallelism is the requested checker parallelism (0 = one worker
	// per CPU).
	Parallelism int `json:"parallelism"`
	// Reps is the number of repetitions the medians are taken over.
	Reps int `json:"reps"`
	// Entries holds the measured workloads.
	Entries []EpistemeBenchEntry `json:"entries"`
	// Baseline holds reference wall-clocks of the pre-sharding checker
	// (PR 2's sequential enumeration and string-keyed index), keyed by
	// entry name, for trajectory comparison. Populated by the harness
	// that recorded them; empty when no baseline is known.
	Baseline map[string]EpistemeBenchBaseline `json:"baseline,omitempty"`
}

// EpistemeBenchBaseline is a reference measurement of the pre-sharding
// checker.
type EpistemeBenchBaseline struct {
	BuildSeconds           float64 `json:"build_seconds"`
	CheckImplementsSeconds float64 `json:"check_implements_seconds"`
	// Host describes where the baseline was recorded.
	Host string `json:"host,omitempty"`
}

// BenchEpisteme measures BuildSystem + CheckImplements on the fip
// contexts n=3,t=1 and n=4,t=1 (the reference workloads of the model
// checker's perf trajectory), taking the median of reps repetitions.
// Every repetition builds a fresh system, so the check includes the C_N
// condensation cost.
func BenchEpisteme(parallelism, reps int) (*EpistemeBench, error) {
	if reps < 1 {
		reps = 1
	}
	bench := &EpistemeBench{
		GoMaxProcs:  goruntime.GOMAXPROCS(0),
		Parallelism: parallelism,
		Reps:        reps,
		Baseline:    epistemeBaseline,
	}
	ctx := context.Background()
	for _, size := range []struct{ n, t int }{{3, 1}, {4, 1}} {
		entry := EpistemeBenchEntry{
			Name: benchName(size.n, size.t),
			N:    size.n,
			T:    size.t,
		}
		builds := make([]float64, 0, reps)
		checks := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			sys, err := episteme.BuildSystem(ctx,
				episteme.Context{Exchange: exchange.NewFIP(size.n), T: size.t},
				action.NewOpt(size.t), episteme.WithParallelism(parallelism))
			if err != nil {
				return nil, err
			}
			builds = append(builds, time.Since(t0).Seconds())
			t0 = time.Now()
			ms, err := sys.CheckImplements(ctx, episteme.P1, 0)
			if err != nil {
				return nil, err
			}
			checks = append(checks, time.Since(t0).Seconds())
			entry.Runs = len(sys.Runs)
			entry.Mismatches = len(ms)
		}
		entry.BuildSeconds = median(builds)
		entry.CheckImplementsSeconds = median(checks)
		bench.Entries = append(bench.Entries, entry)
	}
	return bench, nil
}

func benchName(n, t int) string {
	return "fip_n" + strconv.Itoa(n) + "_t" + strconv.Itoa(t)
}

// epistemeBaseline is the pre-sharding checker (PR 2's private worker
// pool, fully materialized configuration slice, and string-keyed index)
// measured on the reference workloads immediately before the PR 3
// refactor — median of 3 on a single-core container, Go 1.25. Kept here
// so every BENCH_episteme.json carries the trajectory's starting point.
var epistemeBaseline = map[string]EpistemeBenchBaseline{
	"fip_n3_t1": {BuildSeconds: 0.0256, CheckImplementsSeconds: 0.0099, Host: "single-core container, pre-refactor seed"},
	"fip_n4_t1": {BuildSeconds: 1.3382, CheckImplementsSeconds: 0.4456, Host: "single-core container, pre-refactor seed"},
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

// MarshalIndent renders the record as the JSON ebabench writes to disk.
func (b *EpistemeBench) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}
