package experiments

import (
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/model"
)

// stackFor builds a registered stack for the experiment tables. Names
// and bounds are compile-time constants here, so a failure is a bug.
func stackFor(name string, n, t int) core.Stack {
	return core.MustStack(name, core.WithN(n), core.WithT(t))
}

// forEachInits enumerates every assignment of initial preferences to n
// agents in the adversary package's canonical binary order, stopping
// early when fn returns false. The slice passed to fn is reused; copy it
// if it must be retained. The experiment grids use compile-time n, so a
// rejected bound is a bug and panics.
func forEachInits(n int, fn func([]model.Value) bool) {
	it, err := adversary.NewInitVectors(n)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	for inits, ok := it.Next(); ok; inits, ok = it.Next() {
		if !fn(inits) {
			return
		}
	}
}
