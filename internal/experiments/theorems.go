package experiments

import (
	"context"
	"fmt"

	"repro/internal/action"
	"repro/internal/core"
	"repro/internal/episteme"
	"repro/internal/exchange"
	"repro/internal/model"
)

// checkOpts translates the experiments' Parallelism knob into model
// checker options (0 = one worker per CPU; the numbers never change, only
// the wall-clock).
func checkOpts(parallelism int) []episteme.Option {
	return []episteme.Option{episteme.WithParallelism(parallelism)}
}

// buildStackSystem builds the interpreted system of a stack's EBA context
// over the model checker's worker pool.
func buildStackSystem(st core.Stack, parallelism int) (*episteme.System, error) {
	return episteme.BuildSystem(context.Background(), episteme.ContextFor(st), st.Action, checkOpts(parallelism)...)
}

// implementsRow model-checks one implementation theorem and appends a row.
func implementsRow(t *Table, label string, st core.Stack, prog episteme.Program, parallelism int) {
	sys, err := buildStackSystem(st, parallelism)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", label, err))
	}
	ms, err := sys.CheckImplements(context.Background(), prog, 0)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", label, err))
	}
	if len(ms) != 0 {
		t.Pass = false
	}
	t.AddRow(label, len(sys.Runs), len(ms))
}

// E6ImplementsMin machine-checks Theorem 6.5: P_min implements the
// knowledge-based program P0 in γ_min, over every SO(t) failure pattern
// and every initial assignment.
func E6ImplementsMin(parallelism int) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Pmin implements P0 in γ_min (exhaustive model check)",
		Claim:   "Theorem 6.5",
		Columns: []string{"context", "runs", "mismatches"},
		Pass:    true,
	}
	implementsRow(t, "γ_min(n=3,t=1)", stackFor("min", 3, 1), episteme.P0, parallelism)
	implementsRow(t, "γ_min(n=4,t=1)", stackFor("min", 4, 1), episteme.P0, parallelism)
	return t
}

// E7ImplementsBasic machine-checks Theorem 6.6: P_basic implements P0 in
// γ_basic.
func E7ImplementsBasic(parallelism int) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Pbasic implements P0 in γ_basic (exhaustive model check)",
		Claim:   "Theorem 6.6",
		Columns: []string{"context", "runs", "mismatches"},
		Pass:    true,
	}
	implementsRow(t, "γ_basic(n=3,t=1)", stackFor("basic", 3, 1), episteme.P0, parallelism)
	implementsRow(t, "γ_basic(n=4,t=1)", stackFor("basic", 4, 1), episteme.P0, parallelism)
	return t
}

// E8ImplementsFIP machine-checks Theorem A.21 / Proposition 7.9: the
// polynomial-time P_opt implements the knowledge-based program P1 in the
// full-information context, with the common-knowledge guards evaluated
// semantically.
func E8ImplementsFIP(parallelism int) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Popt implements P1 in γ_fip (exhaustive model check)",
		Claim:   "Theorem A.21 / Prop 7.9",
		Columns: []string{"context", "runs", "mismatches"},
		Pass:    true,
	}
	implementsRow(t, "γ_fip(n=3,t=1)", stackFor("fip", 3, 1), episteme.P1, parallelism)
	return t
}

// E9Optimality machine-checks Theorem 7.5's characterization of optimal
// full-information protocols: P_opt satisfies both equivalences; P_min
// run over the full-information exchange (correct but slower) does not.
func E9Optimality(parallelism int) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Theorem 7.5 optimality characterization over γ_fip",
		Claim:   "Popt is optimal wrt full information (Cor 7.8); a dominated protocol must fail the characterization",
		Columns: []string{"protocol", "runs", "violations", "expected"},
		Pass:    true,
	}
	ctx := context.Background()
	sysOpt, err := buildStackSystem(stackFor("fip", 3, 1), parallelism)
	if err != nil {
		panic(err)
	}
	vsOpt, err := sysOpt.CheckOptimalityFIP(ctx, -1, 0)
	if err != nil {
		panic(err)
	}
	if len(vsOpt) != 0 {
		t.Pass = false
	}
	t.AddRow("Popt", len(sysOpt.Runs), len(vsOpt), 0)

	sysMin, err := episteme.BuildSystem(ctx,
		episteme.Context{Exchange: exchange.NewFIP(3), T: 1}, action.NewMin(1), checkOpts(parallelism)...)
	if err != nil {
		panic(err)
	}
	vsMin, err := sysMin.CheckOptimalityFIP(ctx, -1, 0)
	if err != nil {
		panic(err)
	}
	if len(vsMin) == 0 {
		t.Pass = false
	}
	t.AddRow("Pmin over Efip", len(sysMin.Runs), len(vsMin), ">0")
	t.Notes = append(t.Notes,
		"⊡-reachability is computed on the horizon-(t+2) system; all decisions fall within it")
	return t
}

// E10Safety machine-checks Proposition 6.4: the knowledge-based program
// P0 is safe (Definition 6.2) with respect to γ_min and γ_basic, and —
// per the Section 6 remark — NOT safe with respect to full information.
func E10Safety(parallelism int) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "safety condition of Definition 6.2",
		Claim:   "Prop 6.4: P0 safe wrt γ_min and γ_basic (n−t ≥ 2); not safe wrt γ_fip",
		Columns: []string{"context", "violations", "expected"},
		Pass:    true,
	}
	for _, c := range []struct {
		label  string
		st     core.Stack
		expect string
	}{
		{"γ_min(3,1)", stackFor("min", 3, 1), "0"},
		{"γ_basic(3,1)", stackFor("basic", 3, 1), "0"},
		{"γ_fip(3,1)", stackFor("fip", 3, 1), ">0"},
	} {
		sys, err := buildStackSystem(c.st, parallelism)
		if err != nil {
			panic(err)
		}
		vs, err := sys.CheckSafety(context.Background(), 0)
		if err != nil {
			panic(err)
		}
		ok := (c.expect == "0") == (len(vs) == 0)
		if !ok {
			t.Pass = false
		}
		t.AddRow(c.label, len(vs), c.expect)
	}
	return t
}

// E14Synthesis exercises the epistemic-synthesis direction of Section 8:
// extracting concrete protocols from P0 by fixpoint construction and
// comparing them with the hand-written implementations.
func E14Synthesis(parallelism int) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "epistemic synthesis of concrete protocols from P0",
		Claim:   "§8 outlook: concrete implementations are derivable from the knowledge-based program",
		Columns: []string{"context", "table states", "agrees with"},
		Pass:    true,
	}
	for _, c := range []struct {
		label string
		st    core.Stack
	}{
		{"γ_min(3,1)", stackFor("min", 3, 1)},
		{"γ_basic(3,1)", stackFor("basic", 3, 1)},
	} {
		synth, sys, err := episteme.Synthesize(context.Background(),
			episteme.ContextFor(c.st), episteme.P0, checkOpts(parallelism)...)
		if err != nil {
			panic(err)
		}
		agrees := true
		for _, res := range sys.Runs {
			for m := 0; m < sys.Horizon && agrees; m++ {
				for i := 0; i < sys.N; i++ {
					id := model.AgentID(i)
					if synth.Act(id, res.States[m][i]) != c.st.Action.Act(id, res.States[m][i]) {
						agrees = false
						break
					}
				}
			}
		}
		if !agrees {
			t.Pass = false
		}
		t.AddRow(c.label, synth.Size(), fmt.Sprintf("%s=%v", c.st.Action.Name(), agrees))
	}
	return t
}
