package experiments

import (
	"encoding/json"
	"fmt"
)

// The bench-regression gate: CI regenerates BENCH_engine.ci.json,
// BENCH_episteme.ci.json, and BENCH_serve.ci.json on every run and
// diffs them against the committed BENCH_*.json baselines. The gate is strict where the
// repository's perf work lives and tolerant where CI runners are noisy:
// allocations per op are deterministic, so any growth beyond slack is a
// real regression (the arena work of PR 4 is pinned here), while wall
// time on shared runners can swing 2× without meaning anything — only a
// greater-than-2× build-time blowup fails.

// AllocGrowthLimit is the allowed allocs_per_op growth over the
// committed baseline (25%).
const AllocGrowthLimit = 1.25

// SecondsGrowthLimit is the allowed wall-time growth over the committed
// baseline (2×) — deliberately loose, CI wall time is noisy.
const SecondsGrowthLimit = 2.0

// WarmColdLimit is the largest fraction of its own cold build a
// warm-cache entry's build_seconds may take (warm ≤ 0.25 × cold). The
// ratio is within one record — both sides ran on the same machine in
// the same process — so unlike raw wall time it is noise-robust and
// gated strictly.
const WarmColdLimit = 0.25

// GateBench diffs a freshly measured perf record against the committed
// record of the same kind (both as raw JSON) and returns one line per
// regression; empty means the gate passes. The record kind — engine
// (allocs_per_op entries), episteme (build_seconds entries), or serve
// (requests_per_second entries) — is detected from the baseline's entry
// fields. Engine entries fail on
// more than AllocGrowthLimit allocs_per_op growth, matched by (name,
// arenas); wall time is not gated. Episteme entries fail on more than
// SecondsGrowthLimit build_seconds growth or on any mismatches. An
// entry present in the baseline but missing from the current record is
// a violation: a silently dropped workload would otherwise pass
// forever.
func GateBench(baseline, current []byte) ([]string, error) {
	kind, err := detectBenchKind(baseline)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	currentKind, err := detectBenchKind(current)
	if err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	if kind != currentKind {
		return nil, fmt.Errorf("baseline is a %s record, current a %s record", kind, currentKind)
	}
	switch kind {
	case "engine":
		return gateEngine(baseline, current)
	case "serve":
		return gateServe(baseline, current)
	default:
		return gateEpisteme(baseline, current)
	}
}

// detectBenchKind probes a record's entries for the schema-identifying
// field.
func detectBenchKind(data []byte) (string, error) {
	var probe struct {
		Entries []map[string]json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("not a perf record: %w", err)
	}
	if len(probe.Entries) == 0 {
		return "", fmt.Errorf("perf record has no entries")
	}
	if _, ok := probe.Entries[0]["allocs_per_op"]; ok {
		return "engine", nil
	}
	if _, ok := probe.Entries[0]["build_seconds"]; ok {
		return "episteme", nil
	}
	if _, ok := probe.Entries[0]["requests_per_second"]; ok {
		return "serve", nil
	}
	return "", fmt.Errorf("perf record entries carry none of allocs_per_op, build_seconds, requests_per_second")
}

func gateEngine(baseline, current []byte) ([]string, error) {
	var base, curr EngineBench
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("baseline engine record: %w", err)
	}
	if err := json.Unmarshal(current, &curr); err != nil {
		return nil, fmt.Errorf("current engine record: %w", err)
	}
	type key struct {
		name   string
		arenas bool
	}
	got := make(map[key]EngineBenchEntry, len(curr.Entries))
	for _, e := range curr.Entries {
		got[key{e.Name, e.Arenas}] = e
	}
	var violations []string
	for _, b := range base.Entries {
		c, ok := got[key{b.Name, b.Arenas}]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("engine %s (arenas=%v): entry missing from the current record", b.Name, b.Arenas))
			continue
		}
		switch {
		case b.AllocsPerOp == 0 && c.AllocsPerOp > 0:
			// A zero-allocation baseline admits no slack: any allocation
			// is a regression (the arena work's end state must stay
			// gate-covered).
			violations = append(violations,
				fmt.Sprintf("engine %s (arenas=%v): allocs_per_op %d regressed from a zero-allocation baseline",
					b.Name, b.Arenas, c.AllocsPerOp))
		case float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*AllocGrowthLimit:
			violations = append(violations,
				fmt.Sprintf("engine %s (arenas=%v): allocs_per_op %d exceeds baseline %d by more than %.0f%%",
					b.Name, b.Arenas, c.AllocsPerOp, b.AllocsPerOp, (AllocGrowthLimit-1)*100))
		}
	}
	return violations, nil
}

func gateEpisteme(baseline, current []byte) ([]string, error) {
	var base, curr EpistemeBench
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("baseline episteme record: %w", err)
	}
	if err := json.Unmarshal(current, &curr); err != nil {
		return nil, fmt.Errorf("current episteme record: %w", err)
	}
	got := make(map[string]EpistemeBenchEntry, len(curr.Entries))
	for _, e := range curr.Entries {
		got[e.Name] = e
	}
	var violations []string
	for _, b := range base.Entries {
		c, ok := got[b.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("episteme %s: entry missing from the current record", b.Name))
			continue
		}
		if c.Mismatches != 0 {
			violations = append(violations,
				fmt.Sprintf("episteme %s: %d implementation mismatches (theorems must machine-check)", b.Name, c.Mismatches))
		}
		// Warm-cache entries are gated on their within-record warm/cold
		// ratio below, not on absolute warm wall time (a sub-second warm
		// build can double on a noisy runner without meaning anything);
		// their cold build takes the absolute check instead.
		buildRef, buildCur := b.BuildSeconds, c.BuildSeconds
		if b.ColdBuildSeconds > 0 {
			buildRef, buildCur = b.ColdBuildSeconds, c.ColdBuildSeconds
		}
		if buildRef > 0 && buildCur > buildRef*SecondsGrowthLimit {
			violations = append(violations,
				fmt.Sprintf("episteme %s: build_seconds %.4f exceeds baseline %.4f by more than %.0f×",
					b.Name, buildCur, buildRef, SecondsGrowthLimit))
		}
		if b.Runs > 0 && c.Runs != b.Runs {
			violations = append(violations,
				fmt.Sprintf("episteme %s: %d runs, baseline enumerated %d (the sweep changed shape)",
					b.Name, c.Runs, b.Runs))
		}
		if b.RepRuns > 0 && c.RepRuns != b.RepRuns {
			violations = append(violations,
				fmt.Sprintf("episteme %s: %d orbit representatives, baseline enumerated %d (the symmetry quotient changed shape)",
					b.Name, c.RepRuns, b.RepRuns))
		}
		if b.ColdBuildSeconds > 0 {
			switch {
			case c.ColdBuildSeconds <= 0:
				violations = append(violations,
					fmt.Sprintf("episteme %s: entry no longer measures a cold build (the warm-cache workload was dropped)", b.Name))
			case c.BuildSeconds > c.ColdBuildSeconds*WarmColdLimit:
				violations = append(violations,
					fmt.Sprintf("episteme %s: warm build_seconds %.4f exceeds %.0f%% of its cold build %.4f (the result cache stopped paying)",
						b.Name, c.BuildSeconds, WarmColdLimit*100, c.ColdBuildSeconds))
			}
		}
	}
	return violations, nil
}

// gateServe diffs serving-layer records: every workload must run
// error-free (responses are verified, so an error is a correctness
// failure, not noise), its verified sweep records must match the
// baseline exactly (the mix is deterministic — a drift means the served
// stream changed shape), and throughput may degrade at most
// SecondsGrowthLimit-fold (the same noise allowance wall time gets
// elsewhere). Latency percentiles are reported but not gated — shared
// runners swing them too hard to gate without flakes.
func gateServe(baseline, current []byte) ([]string, error) {
	var base, curr ServeBench
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("baseline serve record: %w", err)
	}
	if err := json.Unmarshal(current, &curr); err != nil {
		return nil, fmt.Errorf("current serve record: %w", err)
	}
	got := make(map[string]ServeBenchEntry, len(curr.Entries))
	for _, e := range curr.Entries {
		got[e.Name] = e
	}
	var violations []string
	for _, b := range base.Entries {
		c, ok := got[b.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("serve %s: entry missing from the current record", b.Name))
			continue
		}
		if c.Errors != 0 {
			violations = append(violations,
				fmt.Sprintf("serve %s: %d failed requests (served responses must verify)", b.Name, c.Errors))
		}
		if b.Records > 0 && c.Records != b.Records {
			violations = append(violations,
				fmt.Sprintf("serve %s: %d verified sweep records, baseline saw %d (the served stream changed shape)",
					b.Name, c.Records, b.Records))
		}
		if b.RequestsPerSecond > 0 && c.RequestsPerSecond < b.RequestsPerSecond/SecondsGrowthLimit {
			violations = append(violations,
				fmt.Sprintf("serve %s: %.0f requests/s is less than 1/%.0f of baseline %.0f",
					b.Name, c.RequestsPerSecond, SecondsGrowthLimit, b.RequestsPerSecond))
		}
	}
	return violations, nil
}
