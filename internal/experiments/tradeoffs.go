package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/source"
	"repro/internal/spec"
)

// E11BasicVsMin reproduces the Section 8 remark that, over failure-free
// runs, choosing the basic exchange over the minimal one helps on exactly
// one of the 2^n initial configurations — the all-1 vector.
func E11BasicVsMin() *Table {
	t := &Table{
		ID:      "E11",
		Title:   "failure-free improvement of Pbasic over Pmin across initial vectors",
		Claim:   "§8: Pbasic improves on Pmin for exactly 1 of the 2^n configurations (the all-1 vector)",
		Columns: []string{"n", "t", "vectors", "improved", "expected"},
		Pass:    true,
	}
	for _, c := range []struct{ n, tf int }{{3, 1}, {4, 1}, {5, 2}, {6, 2}} {
		improved := 0
		forEachInits(c.n, func(inits []model.Value) bool {
			iv := append([]model.Value(nil), inits...)
			pat := adversary.FailureFree(c.n, c.tf+2)
			rb := mustRun(stackFor("basic", c.n, c.tf), pat, iv)
			rm := mustRun(stackFor("min", c.n, c.tf), pat, iv)
			for i := 0; i < c.n; i++ {
				if rb.Round(model.AgentID(i)) < rm.Round(model.AgentID(i)) {
					improved++
					break
				}
			}
			return true
		})
		if improved != 1 {
			t.Pass = false
		}
		t.AddRow(c.n, c.tf, 1<<c.n, improved, 1)
	}
	return t
}

// E12BasicVsFip probes the paper's closing conjecture: even in runs WITH
// failures, P_basic "may not be much worse" than the full-information
// protocol. It measures the distribution of the per-run gap between the
// two protocols' final nonfaulty decision rounds under random omission
// adversaries.
func E12BasicVsFip(seed int64, trials, parallelism int) *Table {
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("decision-round gap Pbasic − Pfip under random failures (%d trials)", trials),
		Claim:   "§8 conjecture: Pbasic may not be much worse than Pfip even with failures",
		Columns: []string{"n", "t", "gap=0", "gap=1", "gap=2", "gap≥3", "fip later", "avg basic", "avg fip"},
		Pass:    true,
	}
	rng := rand.New(rand.NewSource(seed))
	for _, c := range []struct{ n, tf int }{{5, 2}, {7, 3}} {
		// The gap is defined over corresponding runs, so the two stacks
		// must sweep identical scenarios: collect the random source once
		// and replay it for both batches, index by index.
		scenarios := mustCollect(source.RandomScenarios(rng, c.n, c.tf, c.tf+2, 0.5, int64(trials)))
		basicRuns := mustRunBatch(core.MustStack("basic", core.WithN(c.n), core.WithT(c.tf)), scenarios, parallelism)
		fipRuns := mustRunBatch(core.MustStack("fip", core.WithN(c.n), core.WithT(c.tf)), scenarios, parallelism)
		gapHist := make([]int, 4)
		fipLater := 0
		sumBasic, sumFip := 0, 0
		for trial := 0; trial < trials; trial++ {
			rb := basicRuns[trial].MaxDecisionRound(true)
			rf := fipRuns[trial].MaxDecisionRound(true)
			sumBasic += rb
			sumFip += rf
			gap := rb - rf
			switch {
			case gap < 0:
				fipLater++
			case gap >= 3:
				gapHist[3]++
			default:
				gapHist[gap]++
			}
		}
		avgBasic := float64(sumBasic) / float64(trials)
		avgFip := float64(sumFip) / float64(trials)
		// The conjecture is qualitative; we record it as "holding" when
		// the mean gap stays under one round and the optimal protocol is
		// never slower.
		if fipLater > 0 || avgBasic-avgFip > 1.0 {
			t.Pass = false
		}
		t.AddRow(c.n, c.tf, gapHist[0], gapHist[1], gapHist[2], gapHist[3], fipLater,
			fmt.Sprintf("%.2f", avgBasic), fmt.Sprintf("%.2f", avgFip))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("drop probability 0.5, seed %d", seed))
	return t
}

// E13CrashVsOmission reproduces the introduction's impossibility argument:
// the naive 0-biased protocol (decide 0 on any evidence of an initial 0)
// violates Agreement under omission failures but satisfies the full EBA
// specification under crash failures — exhaustively over all patterns and
// initial vectors. The paper's protocols stay correct under both models.
func E13CrashVsOmission() *Table {
	t := &Table{
		ID:      "E13",
		Title:   "eager 0-bias under crash vs omission failures (exhaustive, n=3, t=1)",
		Claim:   "§1: no eager 0-biased protocol exists under omissions; the run r′ forces disagreement",
		Columns: []string{"stack", "model", "runs", "agreement violations", "expected"},
		Pass:    true,
	}
	n, tf := 3, 1

	count := func(st core.Stack, crash bool) (runs, violations int) {
		var pats source.Patterns
		var err error
		if crash {
			pats, err = source.Crash(n, tf, tf+2)
		} else {
			pats, err = source.SO(n, tf, tf+2, adversary.Options{})
		}
		if err != nil {
			panic(fmt.Sprintf("experiments: E13: %v", err))
		}
		src, err := source.CrossInits(pats, n)
		if err != nil {
			panic(fmt.Sprintf("experiments: E13: %v", err))
		}
		mustStream(st, src, 0, func(res *engine.Result) {
			runs++
			for _, v := range spec.CheckRun(res, spec.Options{}) {
				if v.Property == "Agreement" {
					violations++
				}
			}
		})
		return runs, violations
	}

	for _, c := range []struct {
		st     core.Stack
		crash  bool
		expect string
	}{
		{stackFor("naive", n, tf), false, ">0"},
		{stackFor("naive", n, tf), true, "0"},
		{stackFor("min", n, tf), false, "0"},
		{stackFor("min", n, tf), true, "0"},
		{stackFor("basic", n, tf), false, "0"},
		{stackFor("fip", n, tf), false, "0"},
	} {
		runs, violations := count(c.st, c.crash)
		kind := "SO"
		if c.crash {
			kind = "crash"
		}
		ok := (c.expect == "0") == (violations == 0)
		if !ok {
			t.Pass = false
		}
		t.AddRow(c.st.Name, kind, runs, violations, c.expect)
	}
	return t
}
