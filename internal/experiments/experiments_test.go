package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:      "EX",
		Title:   "demo",
		Claim:   "claim",
		Columns: []string{"a", "b"},
		Pass:    true,
		Notes:   []string{"a note"},
	}
	tb.AddRow(1, "two")
	s := tb.Render()
	for _, want := range []string{"EX", "demo", "PASS", "claim", "a note", "two"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	tb.Pass = false
	if !strings.Contains(tb.Render(), "FAIL") {
		t.Error("failed table should render FAIL")
	}
}

func TestE1MessageComplexity(t *testing.T) {
	tb := E1MessageComplexity()
	if !tb.Pass {
		t.Fatalf("E1 failed:\n%s", tb.Render())
	}
	if len(tb.Rows) != 10 {
		t.Errorf("E1 rows = %d, want 10", len(tb.Rows))
	}
}

func TestE2FailureFreeZero(t *testing.T) {
	if tb := E2FailureFreeZero(); !tb.Pass {
		t.Fatalf("E2 failed:\n%s", tb.Render())
	}
}

func TestE3FailureFreeOnes(t *testing.T) {
	if tb := E3FailureFreeOnes(); !tb.Pass {
		t.Fatalf("E3 failed:\n%s", tb.Render())
	}
}

func TestE4Example71(t *testing.T) {
	if tb := E4Example71(); !tb.Pass {
		t.Fatalf("E4 failed:\n%s", tb.Render())
	}
}

func TestE5TerminationBound(t *testing.T) {
	if tb := E5TerminationBound(7, 60, 2); !tb.Pass {
		t.Fatalf("E5 failed:\n%s", tb.Render())
	}
}

func TestE11BasicVsMin(t *testing.T) {
	if tb := E11BasicVsMin(); !tb.Pass {
		t.Fatalf("E11 failed:\n%s", tb.Render())
	}
}

func TestE12BasicVsFip(t *testing.T) {
	if tb := E12BasicVsFip(7, 40, 2); !tb.Pass {
		t.Fatalf("E12 failed:\n%s", tb.Render())
	}
}

func TestE13CrashVsOmission(t *testing.T) {
	if tb := E13CrashVsOmission(); !tb.Pass {
		t.Fatalf("E13 failed:\n%s", tb.Render())
	}
}

func TestModelCheckingExperiments(t *testing.T) {
	// E6–E10 and E14 build exhaustive systems; run the (3,1)-sized ones.
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, gen := range []func(parallelism int) *Table{E8ImplementsFIP, E9Optimality, E10Safety, E14Synthesis} {
		if tb := gen(0); !tb.Pass {
			t.Fatalf("%s failed:\n%s", tb.ID, tb.Render())
		}
	}
}

func TestAllSkipSlow(t *testing.T) {
	tables := All(Config{Seed: 7, Trials: 20, SkipSlow: true})
	if len(tables) != 10 {
		t.Fatalf("got %d tables, want 10", len(tables))
	}
	for _, tb := range tables {
		if !tb.Pass {
			t.Errorf("%s failed:\n%s", tb.ID, tb.Render())
		}
	}
}
