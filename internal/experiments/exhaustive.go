package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/source"
	"repro/internal/spec"
)

// E17ExhaustiveSpec verifies the full EBA specification — Unique
// Decision, Agreement, Validity (strong form), Termination by t+2 — for
// every protocol stack over EVERY failure pattern of the model and EVERY
// initial assignment, at exhaustively checkable sizes. This is the
// brute-force counterpart of Proposition 6.1 and complements the
// knowledge-level checks of E6–E10. The sweeps stream through the Runner
// from lazy sources, so the scenario space is never materialized.
func E17ExhaustiveSpec() *Table {
	t := &Table{
		ID:      "E17",
		Title:   "exhaustive EBA specification check (every pattern × every initial vector)",
		Claim:   "Prop 6.1: Pmin, Pbasic, Popt (and the E15 ablation) are EBA protocols; all decide by t+2",
		Columns: []string{"stack", "model", "n", "t", "runs", "violations"},
		Pass:    true,
	}
	type cfg struct {
		st    core.Stack
		crash bool
	}
	cases := []cfg{
		{stackFor("min", 3, 1), false},
		{stackFor("basic", 3, 1), false},
		{stackFor("fip", 3, 1), false},
		{stackFor("fip-nock", 3, 1), false},
		{stackFor("min", 4, 1), false},
		{stackFor("basic", 4, 1), false},
		{stackFor("min", 3, 1), true},
		{stackFor("fip", 3, 1), true},
	}
	for _, c := range cases {
		var pats source.Patterns
		var err error
		kind := "SO"
		if c.crash {
			kind = "crash"
			pats, err = source.Crash(c.st.N, c.st.T, c.st.Horizon())
		} else {
			pats, err = source.SO(c.st.N, c.st.T, c.st.Horizon(), adversary.Options{})
		}
		if err != nil {
			panic(fmt.Sprintf("experiments: E17: %v", err))
		}
		src, err := source.CrossInits(pats, c.st.N)
		if err != nil {
			panic(fmt.Sprintf("experiments: E17: %v", err))
		}
		runs, violations := 0, 0
		mustStream(c.st, src, 0, func(res *engine.Result) {
			runs++
			violations += len(spec.CheckRun(res, spec.Options{
				RoundBound:        c.st.Horizon(),
				ValidityAllAgents: true,
			}))
		})
		if violations != 0 {
			t.Pass = false
		}
		t.AddRow(c.st.Name, kind, c.st.N, c.st.T, runs, violations)
	}
	t.Notes = append(t.Notes,
		"Validity is checked in the strong form (even faulty deciders), per Proposition 6.1")
	return t
}
