// Package experiments regenerates every quantitative claim of the paper's
// evaluation and discussion sections, plus the theorem-level claims that
// the epistemic model checker can verify on small systems. Each experiment
// has an identifier (E1–E13), a generator returning a Table, and a
// matching benchmark at the repository root; DESIGN.md carries the full
// index and EXPERIMENTS.md the recorded outputs.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Table is a rendered experiment: a paper claim, the measured rows, and a
// pass/fail verdict on whether the measured shape matches the claim.
type Table struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Title is a one-line description.
	Title string
	// Claim quotes the paper's claim being reproduced.
	Claim string
	// Columns names the table columns.
	Columns []string
	// Rows holds the measured data.
	Rows [][]string
	// Pass reports whether the measured shape matches the claim.
	Pass bool
	// Notes carries caveats and observations.
	Notes []string
}

// AddRow appends a row, formatting every cell with fmt.Sprint.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Verdict renders "PASS" or "FAIL".
func (t *Table) Verdict() string {
	if t.Pass {
		return "PASS"
	}
	return "FAIL"
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s [%s]\n", t.ID, t.Title, t.Verdict())
	fmt.Fprintf(&b, "  paper: %s\n", t.Claim)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  "+strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, "  "+strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
