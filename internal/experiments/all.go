package experiments

// Config tunes the randomized experiments.
type Config struct {
	// Seed drives the random adversaries.
	Seed int64
	// Trials is the number of random runs per randomized experiment.
	Trials int
	// Parallelism is the worker count for the scenario sweeps and the
	// exhaustive model checks (0 = one worker per CPU). It never changes
	// the numbers: batches are deterministic and order-preserving, and
	// the model checker reassembles its reports in enumeration order.
	Parallelism int
	// SkipSlow skips the exhaustive model-checking experiments (E6–E10,
	// E14), which take tens of seconds.
	SkipSlow bool
}

// DefaultConfig is used by cmd/ebabench when no flags are given.
var DefaultConfig = Config{Seed: 20230510, Trials: 400}

// Generators returns every experiment as a named generator, in order, so
// that callers can time or select individual tables.
func Generators(cfg Config) []func() *Table {
	gens := []func() *Table{
		E1MessageComplexity,
		E2FailureFreeZero,
		E3FailureFreeOnes,
		E4Example71,
		func() *Table { return E5TerminationBound(cfg.Seed, cfg.Trials, cfg.Parallelism) },
	}
	if !cfg.SkipSlow {
		gens = append(gens,
			func() *Table { return E6ImplementsMin(cfg.Parallelism) },
			func() *Table { return E7ImplementsBasic(cfg.Parallelism) },
			func() *Table { return E8ImplementsFIP(cfg.Parallelism) },
			func() *Table { return E9Optimality(cfg.Parallelism) },
			func() *Table { return E10Safety(cfg.Parallelism) },
		)
	}
	gens = append(gens,
		E11BasicVsMin,
		func() *Table { return E12BasicVsFip(cfg.Seed, cfg.Trials, cfg.Parallelism) },
		E13CrashVsOmission,
	)
	if !cfg.SkipSlow {
		gens = append(gens, func() *Table { return E14Synthesis(cfg.Parallelism) })
	}
	gens = append(gens,
		E15CommonKnowledgeAblation,
		func() *Table { return E16DropProbabilitySweep(cfg.Seed, cfg.Trials/4+1, cfg.Parallelism) },
	)
	if !cfg.SkipSlow {
		gens = append(gens, E17ExhaustiveSpec)
	}
	return gens
}

// All regenerates every experiment table in order.
func All(cfg Config) []*Table {
	gens := Generators(cfg)
	tables := make([]*Table, len(gens))
	for i, gen := range gens {
		tables[i] = gen()
	}
	return tables
}
