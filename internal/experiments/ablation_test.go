package experiments

import "testing"

func TestE15Ablation(t *testing.T) {
	if tb := E15CommonKnowledgeAblation(); !tb.Pass {
		t.Fatalf("E15 failed:\n%s", tb.Render())
	}
}

func TestE16Sweep(t *testing.T) {
	if tb := E16DropProbabilitySweep(7, 30, 2); !tb.Pass {
		t.Fatalf("E16 failed:\n%s", tb.Render())
	}
}

func TestE17ExhaustiveSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if tb := E17ExhaustiveSpec(); !tb.Pass {
		t.Fatalf("E17 failed:\n%s", tb.Render())
	}
}
