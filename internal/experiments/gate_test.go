package experiments

import (
	"os"
	"strings"
	"testing"
)

const engineBase = `{
  "entries": [
    {"name": "fip_sweep", "stack": "fip", "arenas": true,
     "runs": 100, "ns_per_op": 1000, "bytes_per_op": 500, "allocs_per_op": 1000},
    {"name": "fip_sweep", "stack": "fip", "arenas": false,
     "runs": 100, "ns_per_op": 1200, "bytes_per_op": 900, "allocs_per_op": 4000}
  ]
}`

const epistemeBase = `{
  "entries": [
    {"name": "fip_n3_t1", "n": 3, "t": 1, "runs": 1544,
     "build_seconds": 0.02, "check_implements_seconds": 0.002, "mismatches": 0}
  ]
}`

const serveBase = `{
  "entries": [
    {"name": "mixed_min_n3_t1", "stack": "min", "n": 3, "t": 1,
     "requests": 1000, "concurrency": 32, "errors": 0, "retried_429": 0,
     "records": 9650, "requests_per_second": 3000,
     "p50_millis": 9, "p99_millis": 17}
  ]
}`

func gate(t *testing.T, base, curr string) []string {
	t.Helper()
	vs, err := GateBench([]byte(base), []byte(curr))
	if err != nil {
		t.Fatalf("GateBench: %v", err)
	}
	return vs
}

func TestGateEnginePassesWithinSlack(t *testing.T) {
	curr := strings.Replace(engineBase, `"allocs_per_op": 1000`, `"allocs_per_op": 1200`, 1)
	// +20% allocs and any wall-time swing are tolerated.
	curr = strings.Replace(curr, `"ns_per_op": 1000`, `"ns_per_op": 9000`, 1)
	if vs := gate(t, engineBase, curr); len(vs) != 0 {
		t.Fatalf("gate flagged a within-slack record: %v", vs)
	}
}

func TestGateEngineFailsOnAllocGrowth(t *testing.T) {
	curr := strings.Replace(engineBase, `"allocs_per_op": 1000`, `"allocs_per_op": 1300`, 1)
	vs := gate(t, engineBase, curr)
	if len(vs) != 1 || !strings.Contains(vs[0], "allocs_per_op") {
		t.Fatalf("gate on +30%% allocs = %v, want one allocs violation", vs)
	}
}

func TestGateEngineFailsOnMissingEntry(t *testing.T) {
	curr := `{"entries": [
    {"name": "fip_sweep", "stack": "fip", "arenas": true,
     "runs": 100, "ns_per_op": 1000, "bytes_per_op": 500, "allocs_per_op": 1000}]}`
	vs := gate(t, engineBase, curr)
	if len(vs) != 1 || !strings.Contains(vs[0], "missing") {
		t.Fatalf("gate on a dropped entry = %v, want one missing-entry violation", vs)
	}
}

func TestGateEpistemeToleratesWallNoise(t *testing.T) {
	curr := strings.Replace(epistemeBase, `"build_seconds": 0.02`, `"build_seconds": 0.039`, 1)
	if vs := gate(t, epistemeBase, curr); len(vs) != 0 {
		t.Fatalf("gate flagged a <2x build time: %v", vs)
	}
}

func TestGateEpistemeFailsOnBuildBlowup(t *testing.T) {
	curr := strings.Replace(epistemeBase, `"build_seconds": 0.02`, `"build_seconds": 0.05`, 1)
	vs := gate(t, epistemeBase, curr)
	if len(vs) != 1 || !strings.Contains(vs[0], "build_seconds") {
		t.Fatalf("gate on a >2x build time = %v, want one build_seconds violation", vs)
	}
}

func TestGateEpistemeFailsOnMismatchesAndShape(t *testing.T) {
	curr := strings.Replace(epistemeBase, `"mismatches": 0`, `"mismatches": 3`, 1)
	curr = strings.Replace(curr, `"runs": 1544`, `"runs": 1540`, 1)
	vs := gate(t, epistemeBase, curr)
	if len(vs) != 2 {
		t.Fatalf("gate on mismatches + shape change = %v, want two violations", vs)
	}
}

func TestGateRejectsMixedKinds(t *testing.T) {
	if _, err := GateBench([]byte(engineBase), []byte(epistemeBase)); err == nil {
		t.Fatal("gate accepted an engine baseline against an episteme record")
	}
	if _, err := GateBench([]byte(`{}`), []byte(engineBase)); err == nil {
		t.Fatal("gate accepted an empty baseline")
	}
}

// TestGateAcceptsCommittedBaselines runs the gate over the repository's
// own committed records against themselves: the committed baselines must
// always pass their own gate.
func TestGateServeToleratesNoiseButNotCollapse(t *testing.T) {
	// Halved throughput and any latency swing pass...
	curr := strings.Replace(serveBase, `"requests_per_second": 3000`, `"requests_per_second": 1501`, 1)
	curr = strings.Replace(curr, `"p99_millis": 17`, `"p99_millis": 500`, 1)
	if vs := gate(t, serveBase, curr); len(vs) != 0 {
		t.Fatalf("gate flagged a within-slack serve record: %v", vs)
	}
	// ...a worse-than-2x collapse fails.
	curr = strings.Replace(serveBase, `"requests_per_second": 3000`, `"requests_per_second": 1400`, 1)
	vs := gate(t, serveBase, curr)
	if len(vs) != 1 || !strings.Contains(vs[0], "requests/s") {
		t.Fatalf("gate on collapsed throughput = %v, want one throughput violation", vs)
	}
}

func TestGateServeFailsOnErrorsShapeAndMissingEntry(t *testing.T) {
	curr := strings.Replace(serveBase, `"errors": 0`, `"errors": 3`, 1)
	vs := gate(t, serveBase, curr)
	if len(vs) != 1 || !strings.Contains(vs[0], "failed requests") {
		t.Fatalf("gate on failed requests = %v, want one errors violation", vs)
	}
	curr = strings.Replace(serveBase, `"records": 9650,`, `"records": 9651,`, 1)
	vs = gate(t, serveBase, curr)
	if len(vs) != 1 || !strings.Contains(vs[0], "changed shape") {
		t.Fatalf("gate on drifted records = %v, want one shape violation", vs)
	}
	vs = gate(t, serveBase, `{"entries": [
    {"name": "other", "requests_per_second": 3000}]}`)
	if len(vs) != 1 || !strings.Contains(vs[0], "missing") {
		t.Fatalf("gate on a dropped entry = %v, want one missing-entry violation", vs)
	}
}

func TestGateAcceptsCommittedBaselines(t *testing.T) {
	for _, path := range []string{"../../BENCH_engine.json", "../../BENCH_episteme.json", "../../BENCH_serve.json"} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		vs, err := GateBench(data, data)
		if err != nil {
			t.Fatalf("%s vs itself: %v", path, err)
		}
		if len(vs) != 0 {
			t.Fatalf("%s fails its own gate: %v", path, vs)
		}
	}
}

func TestGateEngineZeroAllocBaselineStaysCovered(t *testing.T) {
	base := strings.Replace(engineBase, `"allocs_per_op": 1000`, `"allocs_per_op": 0`, 1)
	// Holding at zero passes...
	curr := base
	if vs := gate(t, base, curr); len(vs) != 0 {
		t.Fatalf("gate flagged a held zero-alloc baseline: %v", vs)
	}
	// ...but any allocation against a zero baseline is a regression.
	curr = strings.Replace(base, `"allocs_per_op": 0`, `"allocs_per_op": 7`, 1)
	vs := gate(t, base, curr)
	if len(vs) != 1 || !strings.Contains(vs[0], "zero-allocation") {
		t.Fatalf("gate on a regressed zero-alloc entry = %v, want one violation", vs)
	}
}

const epistemeWarmBase = `{
  "entries": [
    {"name": "fip_n5_t1_quotient_warm", "n": 5, "t": 1, "quotient": true,
     "runs": 7758, "rep_runs": 7758, "build_seconds": 0.5,
     "cold_build_seconds": 4.0, "check_implements_seconds": 0, "mismatches": 0}
  ]
}`

// TestGateEpistemeWarmCold pins the warm-cache ratio gate: the ratio is
// taken within the CURRENT record (same machine, same process), so a
// warm build past WarmColdLimit of its own cold build fails regardless
// of absolute wall time, and dropping the cold measurement fails too.
func TestGateEpistemeWarmCold(t *testing.T) {
	// Within the limit: warm 0.9s of cold 4.1s (~22%) passes even though
	// the warm time grew against the baseline's (wall noise is fine).
	curr := strings.Replace(epistemeWarmBase, `"build_seconds": 0.5`, `"build_seconds": 0.9`, 1)
	curr = strings.Replace(curr, `"cold_build_seconds": 4.0`, `"cold_build_seconds": 4.1`, 1)
	if vs := gate(t, epistemeWarmBase, curr); len(vs) != 0 {
		t.Fatalf("gate flagged a within-limit warm/cold ratio: %v", vs)
	}

	// Past the limit: warm 2.0s of cold 4.0s (50%).
	curr = strings.Replace(epistemeWarmBase, `"build_seconds": 0.5`, `"build_seconds": 2.0`, 1)
	vs := gate(t, epistemeWarmBase, curr)
	if len(vs) != 1 || !strings.Contains(vs[0], "cold build") {
		t.Fatalf("gate on a 50%% warm/cold ratio = %v, want one warm-cache violation", vs)
	}

	// Dropping the cold measurement silently un-gates the cache: flagged.
	curr = strings.Replace(epistemeWarmBase, `"cold_build_seconds": 4.0, `, ``, 1)
	vs = gate(t, epistemeWarmBase, curr)
	if len(vs) != 1 || !strings.Contains(vs[0], "no longer measures a cold build") {
		t.Fatalf("gate on a dropped cold measurement = %v, want one violation", vs)
	}
}
