package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	goruntime "runtime"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/loadtest"
)

// ServeBenchEntry is one measured serving workload: an in-process
// ebaserve instance driven by the loadtest harness's deterministic
// request mix (1 sweep stripe : 2 checks : 7 knowledge queries).
type ServeBenchEntry struct {
	// Name identifies the workload, e.g. "mixed_min_n3_t1".
	Name string `json:"name"`
	// Stack, N, T select the sweep the mix exercises.
	Stack string `json:"stack"`
	N     int    `json:"n"`
	T     int    `json:"t"`
	// Requests and Concurrency shape the load.
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	// Errors must be 0: every response is verified (sweep streams end to
	// end, verdict blocks for cross-request identity), so the benchmark
	// doubles as a correctness check.
	Errors int `json:"errors"`
	// Retried429 counts admission bounces the harness absorbed.
	Retried429 int64 `json:"retried_429"`
	// Records totals the outcome records of the verified sweep streams —
	// deterministic for a fixed mix, so a drift means the served sweep
	// changed shape.
	Records int64 `json:"records"`
	// RequestsPerSecond is the gated throughput (median over reps);
	// P50Millis/P99Millis describe the latency distribution.
	RequestsPerSecond float64 `json:"requests_per_second"`
	P50Millis         float64 `json:"p50_millis"`
	P99Millis         float64 `json:"p99_millis"`
}

// ServeBench is the perf record ebabench -bench-serve emits as
// BENCH_serve.json: the serving layer's throughput on reference mixed
// loads, gated in CI against the committed baseline.
type ServeBench struct {
	// GoMaxProcs is the worker budget the measurements ran with; Reps
	// the repetitions the medians are taken over.
	GoMaxProcs int `json:"gomaxprocs"`
	Reps       int `json:"reps"`
	// Entries holds the measured workloads.
	Entries []ServeBenchEntry `json:"entries"`
}

// MarshalIndent renders the record as committed-file JSON.
func (b *ServeBench) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// BenchServe measures the serving layer end to end: for each reference
// workload it starts a fresh in-process server on a loopback listener,
// drives it with the loadtest mix, and reports the median throughput
// over reps runs. The server is fresh per repetition after the first —
// the System LRU stays hot within a workload, as it would in service.
func BenchServe(reps int) (*ServeBench, error) {
	if reps < 1 {
		reps = 1
	}
	bench := &ServeBench{GoMaxProcs: goruntime.GOMAXPROCS(0), Reps: reps}
	workloads := []struct {
		stack       string
		n, t        int
		requests    int
		concurrency int
	}{
		{"min", 3, 1, 1000, 32},
		{"fip", 3, 1, 600, 32},
	}
	for _, w := range workloads {
		entry := ServeBenchEntry{
			Name:        fmt.Sprintf("mixed_%s_n%d_t%d", w.stack, w.n, w.t),
			Stack:       w.stack,
			N:           w.n,
			T:           w.t,
			Requests:    w.requests,
			Concurrency: w.concurrency,
		}
		rpss := make([]float64, 0, reps)
		p50s := make([]float64, 0, reps)
		p99s := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			sum, err := benchServeOnce(w.stack, w.n, w.t, w.requests, w.concurrency)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", entry.Name, err)
			}
			entry.Errors += sum.Errors
			entry.Retried429 += sum.Retried429
			entry.Records = sum.Records
			rpss = append(rpss, sum.RequestsPerSecond)
			p50s = append(p50s, sum.P50Millis)
			p99s = append(p99s, sum.P99Millis)
		}
		entry.RequestsPerSecond = median(rpss)
		entry.P50Millis = median(p50s)
		entry.P99Millis = median(p99s)
		bench.Entries = append(bench.Entries, entry)
	}
	return bench, nil
}

// benchServeOnce runs one serve-and-load repetition on a loopback
// listener.
func benchServeOnce(stack string, n, t, requests, concurrency int) (*loadtest.Summary, error) {
	srv := serve.NewServer(serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		<-serveErr
	}()
	return loadtest.Run(context.Background(), loadtest.Config{
		BaseURL:     "http://" + ln.Addr().String(),
		Requests:    requests,
		Concurrency: concurrency,
		Stack:       stack,
		N:           n,
		T:           t,
	})
}
