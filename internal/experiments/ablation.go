package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/source"
)

// E15CommonKnowledgeAblation measures what P1's common-knowledge guards
// buy over plain P0 on the full-information exchange. The workload is the
// Example 7.1 family: k of the t allowed faulty agents are silent, all
// initial preferences are 1, and k sweeps 0..t.
//
// The shape the theory predicts: the guards matter exactly when all t
// faults reveal themselves (k = t) — then common knowledge of the faulty
// set forms after two rounds and P_opt decides in round 3, while the
// ablated protocol must wait out the hidden-chain argument like P_basic
// does (round k+2).
func E15CommonKnowledgeAblation() *Table {
	t := &Table{
		ID:      "E15",
		Title:   "ablation: P_opt with vs without the common-knowledge guards",
		Claim:   "the CK guards of P1 fire exactly when all t faults are revealed (Example 7.1 boundary)",
		Columns: []string{"n", "t", "k silent", "Pmin", "Efip+Pmin", "Pbasic", "Pfip no-CK", "Pfip", "CK gain"},
		Pass:    true,
	}
	n, tf := 8, 3
	inits := adversary.UniformInits(n, model.One)
	for k := 0; k <= tf; k++ {
		agents := make([]model.AgentID, k)
		for i := range agents {
			agents[i] = model.AgentID(i)
		}
		pat := adversary.Silent(n, tf+2, agents...)

		rMin := mustRun(core.MustStack("min", core.WithN(n), core.WithT(tf)), pat, inits).MaxDecisionRound(true)
		rFipMin := mustRun(core.MustStack("fip+pmin", core.WithN(n), core.WithT(tf)), pat, inits).MaxDecisionRound(true)
		rBasic := mustRun(core.MustStack("basic", core.WithN(n), core.WithT(tf)), pat, inits).MaxDecisionRound(true)
		rNoCK := mustRun(core.MustStack("fip-nock", core.WithN(n), core.WithT(tf)), pat, inits).MaxDecisionRound(true)
		rFip := mustRun(core.MustStack("fip", core.WithN(n), core.WithT(tf)), pat, inits).MaxDecisionRound(true)

		// Expected shapes: Pmin waits for t+2 — and still does when handed
		// the full-information exchange (fip+pmin): the action protocol,
		// not the exchange, sets the decision time. Pbasic and the ablated
		// FIP protocol decide in round k+2 (the hidden-chain bound); full
		// P_opt additionally collapses the k = t case to round 3.
		wantNoCK := k + 2
		wantFip := k + 2
		if k == tf && tf >= 2 {
			wantFip = 3
		}
		if rMin != tf+2 || rFipMin != tf+2 || rBasic != k+2 || rNoCK != wantNoCK || rFip != wantFip {
			t.Pass = false
		}
		gain := rNoCK - rFip
		t.AddRow(n, tf, k, rMin, rFipMin, rBasic, rNoCK, rFip, gain)
	}
	t.Notes = append(t.Notes,
		"without the CK guards the full-information protocol degenerates to Pbasic's decision times on this family",
		"Efip+Pmin (registry stack fip+pmin) pays full-information bits but keeps Pmin's t+2 decisions")
	return t
}

// E16DropProbabilitySweep is the figure-like series: mean final decision
// round of the nonfaulty agents as a function of the adversary's drop
// probability, for the three stacks.
func E16DropProbabilitySweep(seed int64, trials, parallelism int) *Table {
	t := &Table{
		ID:      "E16",
		Title:   fmt.Sprintf("decision rounds vs drop probability (%d trials/point)", trials),
		Claim:   "decision times degrade gracefully with adversary strength; fip ≤ basic ≤ min throughout",
		Columns: []string{"drop p", "mean Pmin", "mean Pbasic", "mean Pfip"},
		Pass:    true,
	}
	n, tf := 6, 2
	rng := rand.New(rand.NewSource(seed))
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		// The three stacks compare means over the same scenarios, so the
		// random source is collected once per drop probability and
		// replayed; each stack's sweep itself streams at window memory.
		scenarios := mustCollect(source.RandomScenarios(rng, n, tf, tf+2, p, int64(trials)))
		var sumMin, sumBasic, sumFip int
		mustStream(core.MustStack("min", core.WithN(n), core.WithT(tf)), source.FromSlice(scenarios), parallelism,
			func(res *engine.Result) { sumMin += res.MaxDecisionRound(true) })
		mustStream(core.MustStack("basic", core.WithN(n), core.WithT(tf)), source.FromSlice(scenarios), parallelism,
			func(res *engine.Result) { sumBasic += res.MaxDecisionRound(true) })
		mustStream(core.MustStack("fip", core.WithN(n), core.WithT(tf)), source.FromSlice(scenarios), parallelism,
			func(res *engine.Result) { sumFip += res.MaxDecisionRound(true) })
		mMin := float64(sumMin) / float64(trials)
		mBasic := float64(sumBasic) / float64(trials)
		mFip := float64(sumFip) / float64(trials)
		if !(mFip <= mBasic+1e-9 && mBasic <= mMin+1e-9) {
			t.Pass = false
		}
		t.AddRow(fmt.Sprintf("%.1f", p),
			fmt.Sprintf("%.2f", mMin), fmt.Sprintf("%.2f", mBasic), fmt.Sprintf("%.2f", mFip))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("n=%d, t=%d, seed %d; means over nonfaulty final decision rounds", n, tf, seed))
	return t
}
