package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	goruntime "runtime"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
)

// EngineBenchEntry is one measured engine workload: a fixed scenario
// sweep driven through engine.RunBuffered on one goroutine, with either
// plain or arena-backed buffers. One "op" is the whole sweep.
type EngineBenchEntry struct {
	// Name identifies the workload, e.g. "fip_n4_t1_sweep".
	Name string `json:"name"`
	// Stack is the registered stack name the sweep runs.
	Stack string `json:"stack"`
	// Arenas reports whether the buffers were arena-backed
	// (engine.NewArenaBuffers) or plain (engine.NewBuffers).
	Arenas bool `json:"arenas"`
	// Runs is the number of scenarios per op.
	Runs int `json:"runs"`
	// NsPerOp, BytesPerOp, and AllocsPerOp are medians over the reps.
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// EngineBench is the perf-trajectory record ebabench emits as
// BENCH_engine.json: the engine hot path's cost on the reference
// workloads with arenas off and on, alongside the pre-arena baseline
// measured on the same workloads so the allocation win is visible (and
// checkable) in one file.
type EngineBench struct {
	// GoMaxProcs records the environment (the workloads themselves are
	// single-goroutine).
	GoMaxProcs int `json:"gomaxprocs"`
	// Reps is the number of repetitions the medians are taken over.
	Reps int `json:"reps"`
	// Entries holds the measured workloads, off then on per workload.
	Entries []EngineBenchEntry `json:"entries"`
	// Baseline holds reference measurements of the pre-arena engine
	// (plain Buffers, exchanges allocating per round), keyed by workload
	// name, recorded immediately before the arena refactor.
	Baseline map[string]EngineBenchBaseline `json:"baseline,omitempty"`
}

// EngineBenchBaseline is a reference measurement of the pre-arena engine.
type EngineBenchBaseline struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Host describes where the baseline was recorded.
	Host string `json:"host,omitempty"`
}

// engineBaseline is the pre-arena engine (plain Buffers; Messages
// allocating a fresh slice per agent per round; Efip heap-cloning one
// graph per agent per round) measured on the reference workloads
// immediately before this refactor — median of 5 on a single-core
// container, Go 1.22. Kept here so every BENCH_engine.json carries the
// trajectory's starting point.
var engineBaseline = map[string]EngineBenchBaseline{
	"fip_n4_t1_sweep":   {NsPerOp: 514028556, BytesPerOp: 356082848, AllocsPerOp: 7212128, Host: "single-core container, pre-arena seed"},
	"min_n8_t2_rand512": {NsPerOp: 2608541, BytesPerOp: 3016320, AllocsPerOp: 44556, Host: "single-core container, pre-arena seed"},
}

// engineBenchWorkload is one reference workload definition.
type engineBenchWorkload struct {
	name      string
	stack     string
	n, t      int
	scenarios func() ([]core.Scenario, error)
}

// fipSweepScenarios materializes the exhaustive SO(1) × inits horizon
// sweep at n=4, t=1 — the workload the arena acceptance bar is measured
// on (2049 patterns × 16 initial vectors = 32784 runs).
func fipSweepScenarios() ([]core.Scenario, error) {
	it, err := adversary.NewSOPatterns(4, 1, 3, adversary.Options{})
	if err != nil {
		return nil, err
	}
	var out []core.Scenario
	for p, ok := it.Next(); ok; p, ok = it.Next() {
		iv, err := adversary.NewInitVectors(4)
		if err != nil {
			return nil, err
		}
		for inits, ok2 := iv.Next(); ok2; inits, ok2 = iv.Next() {
			out = append(out, core.Scenario{
				Pattern: p.Clone(),
				Inits:   append([]model.Value(nil), inits...),
			})
		}
	}
	return out, nil
}

// minRandScenarios materializes 512 seeded random SO(2) scenarios at
// n=8 — the cheap-exchange contrast workload.
func minRandScenarios() ([]core.Scenario, error) {
	rng := rand.New(rand.NewSource(7))
	n, tf := 8, 2
	out := make([]core.Scenario, 512)
	for k := range out {
		pat := adversary.RandomSO(rng, n, tf, tf+2, 0.4)
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value(rng.Intn(2))
		}
		out[k] = core.Scenario{Pattern: pat, Inits: inits}
	}
	return out, nil
}

// BenchEngine measures the engine's reference workloads with arenas off
// and on, taking medians of reps repetitions. The workload runs on one
// goroutine through engine.RunBuffered, so the numbers isolate the
// engine + exchange hot path from Runner scheduling.
func BenchEngine(reps int) (*EngineBench, error) {
	if reps < 1 {
		reps = 1
	}
	bench := &EngineBench{
		GoMaxProcs: goruntime.GOMAXPROCS(0),
		Reps:       reps,
		Baseline:   engineBaseline,
	}
	workloads := []engineBenchWorkload{
		{name: "fip_n4_t1_sweep", stack: "fip", n: 4, t: 1, scenarios: fipSweepScenarios},
		{name: "min_n8_t2_rand512", stack: "min", n: 8, t: 2, scenarios: minRandScenarios},
	}
	for _, w := range workloads {
		st, err := core.NewStack(w.stack, core.WithN(w.n), core.WithT(w.t))
		if err != nil {
			return nil, err
		}
		scenarios, err := w.scenarios()
		if err != nil {
			return nil, err
		}
		for _, arenas := range []bool{false, true} {
			entry := EngineBenchEntry{
				Name:   w.name,
				Stack:  w.stack,
				Arenas: arenas,
				Runs:   len(scenarios),
			}
			ns := make([]float64, 0, reps)
			bs := make([]float64, 0, reps)
			as := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				var buf *engine.Buffers
				if arenas {
					buf = engine.NewArenaBuffers()
				} else {
					buf = engine.NewBuffers()
				}
				goruntime.GC()
				var m0, m1 goruntime.MemStats
				goruntime.ReadMemStats(&m0)
				t0 := time.Now()
				for _, sc := range scenarios {
					if _, err := engine.RunBuffered(st.Config(sc.Pattern, sc.Inits), buf); err != nil {
						return nil, err
					}
				}
				elapsed := time.Since(t0)
				goruntime.ReadMemStats(&m1)
				ns = append(ns, float64(elapsed.Nanoseconds()))
				bs = append(bs, float64(m1.TotalAlloc-m0.TotalAlloc))
				as = append(as, float64(m1.Mallocs-m0.Mallocs))
			}
			entry.NsPerOp = int64(median(ns))
			entry.BytesPerOp = int64(median(bs))
			entry.AllocsPerOp = int64(median(as))
			bench.Entries = append(bench.Entries, entry)
		}
	}
	return bench, nil
}

// engineAcceptance names the workloads the arena refactor makes a hard
// allocation claim about, with the required improvement factor over the
// recorded pre-arena baseline. The claim covers the fip sweep — the
// workload whose per-round graph clones the arena exists for; the min
// workload is measured for contrast but has no per-round exchange
// allocations for an arena to remove, so it carries no bar.
var engineAcceptance = map[string]float64{
	"fip_n4_t1_sweep": 2,
}

// CheckAcceptance verifies the recorded arena claim: every arenas-on
// entry named in engineAcceptance must show at least the required factor
// fewer allocations per op than the pre-arena baseline. It returns a
// descriptive error on the first miss.
func (b *EngineBench) CheckAcceptance() error {
	for _, e := range b.Entries {
		if !e.Arenas {
			continue
		}
		minFactor, claimed := engineAcceptance[e.Name]
		base, ok := b.Baseline[e.Name]
		if !claimed || !ok || e.AllocsPerOp == 0 {
			continue
		}
		if got := float64(base.AllocsPerOp) / float64(e.AllocsPerOp); got < minFactor {
			return fmt.Errorf("experiments: %s arenas-on allocs/op %d vs baseline %d is only %.2fx (< %.1fx)",
				e.Name, e.AllocsPerOp, base.AllocsPerOp, got, minFactor)
		}
	}
	return nil
}

// MarshalIndent renders the record as the JSON ebabench writes to disk.
func (b *EngineBench) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}
