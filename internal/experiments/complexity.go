package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/source"
	"repro/internal/spec"
)

// mustRun executes a stack on one scenario through the Runner, panicking
// on configuration errors (which are bugs in the experiment definitions,
// not data).
func mustRun(st core.Stack, pat *model.Pattern, inits []model.Value) *engine.Result {
	res, err := core.NewRunner(st).Run(context.Background(), core.Scenario{Pattern: pat, Inits: inits})
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", st.Name, err))
	}
	return res
}

// mustRunBatch executes a stack on a scenario list through the batch
// Runner — parallel across `parallelism` workers (0 = one per CPU), with
// per-worker buffer reuse, order-preserving so results correspond to
// scenarios index by index.
func mustRunBatch(st core.Stack, scenarios []core.Scenario, parallelism int) []*engine.Result {
	results, err := core.NewRunner(st,
		core.WithParallelism(parallelism),
		core.WithBufferReuse(),
	).RunBatch(context.Background(), scenarios)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", st.Name, err))
	}
	return results
}

// mustStream pulls scenarios lazily from the source through the streaming
// Runner and hands each result to fn in scenario order, so sweeps
// aggregate at O(window) memory instead of materializing a scenario slice
// and a result slice. Any execution error is a bug in the experiment
// definition.
func mustStream(st core.Stack, src core.Source, parallelism int, fn func(*engine.Result)) {
	runner := core.NewRunner(st,
		core.WithParallelism(parallelism),
		core.WithBufferReuse(),
	)
	for oc := range runner.StreamFrom(context.Background(), src) {
		if oc.Err != nil {
			panic(fmt.Sprintf("experiments: %s: scenario %d: %v", st.Name, oc.Index, oc.Err))
		}
		fn(oc.Result)
	}
}

// mustCollect drains a bounded source into a scenario slice, for sweeps
// that must replay identical scenarios against several stacks (the
// run-by-run correspondence the dominance order needs).
func mustCollect(src core.Source) []core.Scenario {
	scenarios, err := source.Collect(src)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return scenarios
}

// fipExactBits is the closed-form bit count of a t+2-round run of the
// full-information exchange with the dense graph encoding: at time m each
// of the n agents sends n messages of 2n²m + 2n bits.
func fipExactBits(n, t int) int64 {
	total := int64(0)
	for m := 0; m <= t+1; m++ {
		total += int64(n) * int64(n) * int64(2*n*n*m+2*n)
	}
	return total
}

// E1MessageComplexity reproduces Proposition 8.1: bits sent per run are
// exactly n² for P_min, O(n²t) for P_basic, and Θ(n⁴t²) for the
// full-information protocol. Both the failure-free all-1 run and the
// silent-faulty (Example 7.1 style) worst case are measured.
func E1MessageComplexity() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "message complexity per run (bits sent)",
		Claim:   "Prop 8.1: Pmin = n² bits; Pbasic = O(n²t) bits; full information = O(n⁴t²) bits",
		Columns: []string{"workload", "n", "t", "Pmin", "Pbasic", "Pfip", "n²", "2n²(t+2)", "n⁴(t+1)(t+2)+2n³(t+2)"},
		Pass:    true,
	}
	type cfg struct{ n, tf int }
	cases := []cfg{{4, 1}, {8, 2}, {12, 3}, {16, 4}, {16, 7}}
	for _, c := range cases {
		for _, workload := range []string{"failure-free", "silent-faulty"} {
			var pat *model.Pattern
			if workload == "failure-free" {
				pat = adversary.FailureFree(c.n, c.tf+2)
			} else {
				pat = adversary.Example71(c.n, c.tf, c.tf+2)
			}
			inits := adversary.UniformInits(c.n, model.One)
			minBits := mustRun(stackFor("min", c.n, c.tf), pat, inits).Stats.BitsSent
			basicBits := mustRun(stackFor("basic", c.n, c.tf), pat, inits).Stats.BitsSent
			fipBits := mustRun(stackFor("fip", c.n, c.tf), pat, inits).Stats.BitsSent

			exactMin := int64(c.n * c.n)
			boundBasic := int64(2 * c.n * c.n * (c.tf + 2))
			exactFip := fipExactBits(c.n, c.tf)
			if minBits != exactMin || basicBits > boundBasic || fipBits != exactFip {
				t.Pass = false
			}
			t.AddRow(workload, c.n, c.tf, minBits, basicBits, fipBits, exactMin, boundBasic, exactFip)
		}
	}
	t.Notes = append(t.Notes,
		"encodings: 1 bit per Emin message, 2 bits per Ebasic message, 2 bits per graph label",
		"Pmin is exact; Pbasic is checked against its 2n²(t+2) ceiling; Pfip matches its closed form exactly")
	return t
}

// E2FailureFreeZero reproduces Proposition 8.2(a): in failure-free runs
// with at least one initial 0, every agent decides 0 by round 2 under all
// three protocols.
func E2FailureFreeZero() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "failure-free runs with an initial 0",
		Claim:   "Prop 8.2(a): all agents decide by round 2 with Pmin, Pbasic, and Pfip",
		Columns: []string{"stack", "n", "t", "vectors", "max round", "all decide 0"},
		Pass:    true,
	}
	n, tf := 5, 2
	stacks := []core.Stack{stackFor("min", n, tf), stackFor("basic", n, tf), stackFor("fip", n, tf)}
	for _, st := range stacks {
		maxRound, vectors, allZero := 0, 0, true
		forEachInits(n, func(inits []model.Value) bool {
			hasZero := false
			for _, v := range inits {
				if v == model.Zero {
					hasZero = true
				}
			}
			if !hasZero {
				return true
			}
			vectors++
			res := mustRun(st, adversary.FailureFree(n, tf+2), append([]model.Value(nil), inits...))
			for i := 0; i < n; i++ {
				if r := res.Round(model.AgentID(i)); r > maxRound {
					maxRound = r
				}
				if res.Decided(model.AgentID(i)) != model.Zero {
					allZero = false
				}
			}
			return true
		})
		if maxRound > 2 || !allZero {
			t.Pass = false
		}
		t.AddRow(st.Name, n, tf, vectors, maxRound, allZero)
	}
	return t
}

// E3FailureFreeOnes reproduces Proposition 8.2(b): in failure-free all-1
// runs, P_min decides in round t+2 while P_basic and the full-information
// protocol decide in round 2.
func E3FailureFreeOnes() *Table {
	t := &Table{
		ID:      "E3",
		Title:   "failure-free all-1 runs",
		Claim:   "Prop 8.2(b): Pmin decides in round t+2; Pbasic and Pfip in round 2",
		Columns: []string{"n", "t", "Pmin round", "Pbasic round", "Pfip round", "want Pmin", "want others"},
		Pass:    true,
	}
	for _, c := range []struct{ n, tf int }{{4, 1}, {5, 2}, {6, 3}, {8, 4}} {
		inits := adversary.UniformInits(c.n, model.One)
		pat := adversary.FailureFree(c.n, c.tf+2)
		rMin := mustRun(stackFor("min", c.n, c.tf), pat, inits).MaxDecisionRound(false)
		rBasic := mustRun(stackFor("basic", c.n, c.tf), pat, inits).MaxDecisionRound(false)
		rFip := mustRun(stackFor("fip", c.n, c.tf), pat, inits).MaxDecisionRound(false)
		if rMin != c.tf+2 || rBasic != 2 || rFip != 2 {
			t.Pass = false
		}
		t.AddRow(c.n, c.tf, rMin, rBasic, rFip, c.tf+2, 2)
	}
	return t
}

// E4Example71 reproduces Example 7.1 at the paper's exact parameters:
// n=20, t=10, the ten faulty agents silent, every initial preference 1.
// The full-information protocol decides in round 3; the limited-exchange
// protocols wait until round 12.
func E4Example71() *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Example 7.1 (n=20, t=10, silent faulty agents, all-1)",
		Claim:   "Popt decides in round 3; Pmin and Pbasic in round 12",
		Columns: []string{"stack", "nonfaulty max round", "want"},
		Pass:    true,
	}
	n, tf := 20, 10
	pat := adversary.Example71(n, tf, tf+2)
	inits := adversary.UniformInits(n, model.One)
	for _, c := range []struct {
		st   core.Stack
		want int
	}{
		{stackFor("fip", n, tf), 3},
		{stackFor("min", n, tf), 12},
		{stackFor("basic", n, tf), 12},
	} {
		got := mustRun(c.st, pat, inits).MaxDecisionRound(true)
		if got != c.want {
			t.Pass = false
		}
		t.AddRow(c.st.Name, got, c.want)
	}
	t.Notes = append(t.Notes,
		"common knowledge of the faulty set forms after 2 rounds; Popt converts it into a round-3 decision")
	return t
}

// E5TerminationBound exercises Proposition 6.1's bound under random
// adversaries: every agent decides by round t+2 with no specification
// violations, and the decision-round distribution is reported (the
// figure-like series).
func E5TerminationBound(seed int64, trials, parallelism int) *Table {
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("termination bound under random SO(t) adversaries (%d trials)", trials),
		Claim:   "Prop 6.1: every implementation decides within t+2 rounds of message exchange",
		Columns: []string{"stack", "round 1", "round 2", "round 3", "round 4", "max", "violations"},
		Pass:    true,
	}
	n, tf := 6, 2
	rng := rand.New(rand.NewSource(seed))
	for _, name := range []string{"min", "basic", "fip"} {
		st := core.MustStack(name, core.WithN(n), core.WithT(tf))
		// Each stack sweeps its own lazily generated scenarios: the source
		// draws from the rng in the same order the eager loop did, so the
		// table is unchanged, but nothing is materialized.
		src := source.RandomScenarios(rng, n, tf, tf+2, 0.45, int64(trials))
		hist := make([]int, tf+3)
		violations := 0
		maxRound := 0
		mustStream(st, src, parallelism, func(res *engine.Result) {
			violations += len(spec.CheckRun(res, spec.Options{RoundBound: tf + 2, ValidityAllAgents: true}))
			for i := 0; i < n; i++ {
				r := res.Round(model.AgentID(i))
				if r > maxRound {
					maxRound = r
				}
				if r >= 1 && r <= tf+2 {
					hist[r]++
				}
			}
		})
		if violations > 0 || maxRound > tf+2 {
			t.Pass = false
		}
		t.AddRow(st.Name, hist[1], hist[2], hist[3], hist[4], maxRound, violations)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("n=%d, t=%d, drop probability 0.45, seed %d", n, tf, seed))
	return t
}
