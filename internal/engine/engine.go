// Package engine executes a protocol stack — an information-exchange
// protocol paired with an action protocol — under a failure pattern, one
// synchronized round at a time, exactly as Section 3 of the paper
// prescribes: at each time m every agent performs the action chosen by its
// action protocol, the exchange protocol selects messages (μ), the failure
// pattern filters deliveries (F), and every agent updates its local state
// (δ).
//
// The engine is deterministic and sequential; internal/runtime provides an
// equivalent concurrent execution with one goroutine per agent and is
// tested to produce byte-identical traces.
package engine

import (
	"errors"
	"fmt"

	"repro/internal/model"
)

// Config describes one execution.
type Config struct {
	// Exchange is the information-exchange protocol E.
	Exchange model.Exchange
	// Action is the action protocol P.
	Action model.ActionProtocol
	// Pattern is the failure pattern (the adversary).
	Pattern *model.Pattern
	// Inits holds each agent's initial preference; length must equal the
	// number of agents and every entry must be 0 or 1.
	Inits []model.Value
	// Horizon is the number of rounds to execute. Zero means "use the
	// pattern's horizon".
	Horizon int
}

// Stats aggregates message traffic for the complexity experiments
// (Proposition 8.1). Senders are charged for every non-⊥ message they
// emit whether or not the adversary delivers it.
type Stats struct {
	// MessagesSent counts non-⊥ messages handed to the network.
	MessagesSent int
	// MessagesDelivered counts messages that reached their recipient.
	MessagesDelivered int
	// BitsSent is the total wire size of sent messages.
	BitsSent int64
	// BitsDelivered is the total wire size of delivered messages.
	BitsDelivered int64
}

// Result is a completed run: the full state and action trace plus the
// decision ledger and traffic statistics.
type Result struct {
	// N is the number of agents.
	N int
	// Horizon is the number of rounds executed.
	Horizon int
	// Pattern is the adversary the run was executed against.
	Pattern *model.Pattern
	// Inits records the initial preferences.
	Inits []model.Value
	// States[m][i] is agent i's local state at time m, for m in 0..Horizon.
	States [][]model.State
	// Actions[m][i] is the action agent i performed at time m (i.e. in
	// round m+1), for m in 0..Horizon-1.
	Actions [][]model.Action
	// Decision[i] is the first value agent i decided, or None.
	Decision []model.Value
	// DecisionRound[i] is the round in which agent i first decided (the
	// deciding action happens at time DecisionRound[i]-1), or 0 if it
	// never decided.
	DecisionRound []int
	// Stats aggregates message traffic.
	Stats Stats
}

// Buffers holds the per-round scratch of an execution — the outbox and
// inbox matrices, the rolling state slices, and (for arena-backed
// buffers) the exchange's own scratch — so that a caller running many
// configurations (a batch worker, a benchmark loop) can reuse them
// across runs instead of reallocating per round. A Buffers value belongs
// to one goroutine at a time; the zero value is ready to use.
//
// Ownership rule (the memory model of the buffered path): everything
// reachable from a returned *Result is detached — states recorded in the
// trace are frozen against scratch recycling (model.Detacher) and the
// trace's own slices are fresh — while everything else (the matrices,
// the rolling state slices, the exchange scratch and its arena) is
// recycled on the next RunBuffered with the same Buffers. So the same
// buffers can be reused run after run while every earlier Result stays
// live and mutation-safe.
type Buffers struct {
	outbox [][]model.Message
	inbox  [][]model.Message
	cur    []model.State
	next   []model.State

	// pooled selects the arena-backed mode: beginRun acquires (and
	// recycles) exchange scratch, and exchanges that implement
	// model.BufferedExchange run their δ against it.
	pooled bool
	// bex is non-nil while the buffers are bound to a buffered exchange
	// (set by beginRun for the duration of a run).
	bex model.BufferedExchange
	// scratch is the exchange scratch acquired from scratchEx; nil for
	// scratchless exchanges and in non-pooled mode.
	scratch   model.Scratch
	scratchEx model.BufferedExchange
}

// NewBuffers returns an empty buffer set, sized lazily on first use. The
// engine's matrices are reused across runs; exchanges run their buffered
// μ (MessagesInto) but δ stays on the plain allocation path. Use
// NewArenaBuffers to also recycle the exchanges' own allocations.
func NewBuffers() *Buffers { return &Buffers{} }

// NewArenaBuffers returns buffers that additionally own per-exchange
// scratch: exchanges implementing model.BufferedExchange draw their
// per-round allocations (Efip's graph clones) from an arena that is
// recycled on the next RunBuffered. Traces are bit-identical to every
// other execution path; only the allocation behavior differs.
func NewArenaBuffers() *Buffers { return &Buffers{pooled: true} }

// ArenaBacked reports whether the buffers own exchange scratch
// (NewArenaBuffers): executors that cannot share the Buffers value
// itself (the goroutine-per-agent runtime) use it to decide whether
// their per-agent scratch should include the exchanges' arenas.
func (b *Buffers) ArenaBacked() bool { return b.pooled }

// ensure sizes the buffers for n agents.
func (b *Buffers) ensure(n int) {
	if cap(b.outbox) < n {
		b.outbox = make([][]model.Message, n)
	}
	b.outbox = b.outbox[:n]
	if cap(b.inbox) < n {
		b.inbox = make([][]model.Message, n)
	}
	b.inbox = b.inbox[:n]
	for j := range b.inbox {
		if cap(b.inbox[j]) < n {
			b.inbox[j] = make([]model.Message, n)
		}
		b.inbox[j] = b.inbox[j][:n]
	}
	// The outbox rows double as MessagesInto targets for buffered
	// exchanges; plain exchanges overwrite the row with their own slice.
	for i := range b.outbox {
		if cap(b.outbox[i]) < n {
			b.outbox[i] = make([]model.Message, n)
		}
		b.outbox[i] = b.outbox[i][:n]
	}
	if cap(b.cur) < n {
		b.cur = make([]model.State, n)
	}
	b.cur = b.cur[:n]
	if cap(b.next) < n {
		b.next = make([]model.State, n)
	}
	b.next = b.next[:n]
}

// BeginRun binds the buffers to one run of ex: sizes the matrices,
// resolves the buffered-exchange interface, and — in arena mode —
// acquires (or recycles, per the ownership rule) the exchange scratch.
func (b *Buffers) BeginRun(ex model.Exchange) {
	b.ensure(ex.N())
	bex, ok := ex.(model.BufferedExchange)
	if !ok {
		b.bex = nil
		return
	}
	b.bex = bex
	if !b.pooled {
		return
	}
	if b.scratchEx != bex {
		if b.scratchEx != nil {
			b.scratchEx.ReleaseScratch(b.scratch)
		}
		b.scratchEx = bex
		b.scratch = bex.AcquireScratch()
	}
	if b.scratch != nil {
		b.scratch.Reset()
	}
}

// Run executes the configuration and returns the completed run.
func Run(cfg Config) (*Result, error) { return RunBuffered(cfg, nil) }

// RunBuffered is Run with caller-provided scratch buffers; buf may be nil,
// in which case scratch is allocated per round as Run does. The returned
// Result never aliases buf, so the same buffers can be reused for the
// next run while earlier results stay live.
func RunBuffered(cfg Config, buf *Buffers) (*Result, error) {
	ex, act, pat := cfg.Exchange, cfg.Action, cfg.Pattern
	if ex == nil || act == nil || pat == nil {
		return nil, errors.New("engine: Exchange, Action, and Pattern are all required")
	}
	n := ex.N()
	if pat.N() != n {
		return nil, fmt.Errorf("engine: pattern is for %d agents, exchange for %d", pat.N(), n)
	}
	if len(cfg.Inits) != n {
		return nil, fmt.Errorf("engine: %d initial values for %d agents", len(cfg.Inits), n)
	}
	for i, v := range cfg.Inits {
		if !v.IsSet() {
			return nil, fmt.Errorf("engine: agent %d has no initial preference", i)
		}
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = pat.Horizon()
	}
	if horizon < 0 {
		return nil, fmt.Errorf("engine: negative horizon %d", horizon)
	}

	res := &Result{
		N:             n,
		Horizon:       horizon,
		Pattern:       pat,
		Inits:         append([]model.Value(nil), cfg.Inits...),
		States:        make([][]model.State, horizon+1),
		Actions:       make([][]model.Action, horizon),
		Decision:      make([]model.Value, n),
		DecisionRound: make([]int, n),
	}
	for i := range res.Decision {
		res.Decision[i] = model.None
	}

	var cur, next []model.State
	if buf != nil {
		buf.BeginRun(ex)
		cur, next = buf.cur, buf.next
	} else {
		cur = make([]model.State, n)
	}
	for i := 0; i < n; i++ {
		cur[i] = ex.Initial(model.AgentID(i), cfg.Inits[i])
	}
	res.States[0] = append([]model.State(nil), cur...)

	for m := 0; m < horizon; m++ {
		// Every agent chooses its action from its time-m state. The acts
		// slice is recorded in the trace, so it is allocated fresh.
		acts := make([]model.Action, n)
		for i := 0; i < n; i++ {
			acts[i] = act.Act(model.AgentID(i), cur[i])
			if d := acts[i].Decision(); d.IsSet() && res.Decision[i] == model.None {
				res.Decision[i] = d
				res.DecisionRound[i] = m + 1
			}
		}
		res.Actions[m] = acts

		if buf == nil {
			next = make([]model.State, n)
		}
		stats, err := stepInto(ex, pat, m, cur, acts, next, buf)
		if err != nil {
			return nil, err
		}
		res.Stats.MessagesSent += stats.MessagesSent
		res.Stats.MessagesDelivered += stats.MessagesDelivered
		res.Stats.BitsSent += stats.BitsSent
		res.Stats.BitsDelivered += stats.BitsDelivered
		cur, next = next, cur
		res.States[m+1] = append([]model.State(nil), cur...)
	}
	if buf != nil && buf.scratch != nil {
		// The ownership rule: everything reachable from the Result is
		// detached before the scratch can be recycled by the next run.
		for _, row := range res.States {
			model.DetachAll(row)
		}
	}
	return res, nil
}

// Step executes one synchronous round (round m+1): μ selects the messages
// each agent sends given its chosen action, the failure pattern filters
// deliveries, and δ produces the time-m+1 states. It is the common kernel
// of Run and of the knowledge-based-program builder in internal/episteme,
// which must choose actions by evaluating knowledge tests between rounds.
func Step(ex model.Exchange, pat *model.Pattern, m int, states []model.State, acts []model.Action) ([]model.State, Stats, error) {
	next := make([]model.State, ex.N())
	stats, err := stepInto(ex, pat, m, states, acts, next, nil)
	if err != nil {
		return nil, stats, err
	}
	return next, stats, nil
}

// StepInto is Step for executors that manage their own trace and
// buffers: it writes the time-m+1 states into next, drawing the message
// matrices and the exchange scratch from buf (bind buf to the exchange
// with BeginRun once per run; a nil buf allocates per round as Step
// does). States produced through arena-backed buffers reference
// recyclable scratch memory: a caller that retains them beyond the
// run — the model checker's memoizing executor interning transition
// rows — must freeze them first with model.DetachAll.
func StepInto(ex model.Exchange, pat *model.Pattern, m int, states []model.State, acts []model.Action,
	next []model.State, buf *Buffers) (Stats, error) {
	return stepInto(ex, pat, m, states, acts, next, buf)
}

// stepInto is Step writing the time-m+1 states into next, drawing the
// outbox and inbox matrices — and, for buffered exchanges, μ's target
// slices and δ's scratch — from buf when one is provided (buf must have
// been bound to ex with beginRun). The exchanges are contracted not to
// retain the inbox slice they receive (they copy what they need into the
// fresh state), which is what makes inbox reuse across rounds and runs
// sound.
func stepInto(ex model.Exchange, pat *model.Pattern, m int, states []model.State, acts []model.Action,
	next []model.State, buf *Buffers) (Stats, error) {

	n := ex.N()
	var stats Stats
	var outbox, inbox [][]model.Message
	var bex model.BufferedExchange
	var scratch model.Scratch
	if buf != nil {
		outbox, inbox = buf.outbox, buf.inbox
		bex, scratch = buf.bex, buf.scratch
	} else {
		outbox = make([][]model.Message, n)
		inbox = make([][]model.Message, n)
		for j := range inbox {
			inbox[j] = make([]model.Message, n)
		}
	}
	for i := 0; i < n; i++ {
		if bex != nil {
			outbox[i] = bex.MessagesInto(model.AgentID(i), states[i], acts[i], outbox[i])
		} else {
			outbox[i] = ex.Messages(model.AgentID(i), states[i], acts[i])
		}
		if len(outbox[i]) != n {
			return stats, fmt.Errorf("engine: %s.Messages returned %d entries for %d agents",
				ex.Name(), len(outbox[i]), n)
		}
		for _, msg := range outbox[i] {
			if msg != nil {
				stats.MessagesSent++
				stats.BitsSent += int64(msg.Bits())
			}
		}
	}

	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			msg := outbox[i][j]
			if msg != nil && !pat.Delivered(m, model.AgentID(i), model.AgentID(j)) {
				msg = nil
			}
			inbox[j][i] = msg
			if msg != nil {
				stats.MessagesDelivered++
				stats.BitsDelivered += int64(msg.Bits())
			}
		}
	}

	for i := 0; i < n; i++ {
		if bex != nil {
			next[i] = bex.UpdateScratch(model.AgentID(i), states[i], acts[i], inbox[i], scratch)
		} else {
			next[i] = ex.Update(model.AgentID(i), states[i], acts[i], inbox[i])
		}
		if got := next[i].Time(); got != m+1 {
			return stats, fmt.Errorf("engine: %s.Update produced time %d at time %d",
				ex.Name(), got, m+1)
		}
	}
	return stats, nil
}

// Executor abstracts how a configured execution is driven to completion:
// Sequential runs the deterministic single-threaded engine, and
// internal/runtime's Concurrent runs one goroutine per agent. Both
// produce byte-identical Results for the same configuration, so callers
// (the core Runner, the CLIs) choose an executor for its operational
// profile, never for its semantics.
type Executor interface {
	// Name identifies the executor ("sequential", "concurrent").
	Name() string
	// Execute runs one configuration to completion. Executors that do not
	// support scratch reuse ignore buf.
	Execute(cfg Config, buf *Buffers) (*Result, error)
}

// Sequential is the deterministic single-threaded executor: Execute is
// RunBuffered.
type Sequential struct{}

// Name returns "sequential".
func (Sequential) Name() string { return "sequential" }

// Execute runs the configuration on the sequential engine.
func (Sequential) Execute(cfg Config, buf *Buffers) (*Result, error) { return RunBuffered(cfg, buf) }

var _ Executor = Sequential{}

// MustRun is Run for call sites where a configuration error is a bug.
func MustRun(cfg Config) *Result {
	res, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// Decided reports agent i's first decision (None if it never decided).
func (r *Result) Decided(i model.AgentID) model.Value { return r.Decision[i] }

// Round reports the round in which agent i first decided, or 0.
func (r *Result) Round(i model.AgentID) int { return r.DecisionRound[i] }

// AllNonfaultyDecided reports whether every nonfaulty agent decided.
func (r *Result) AllNonfaultyDecided() bool {
	for i := 0; i < r.N; i++ {
		if r.Pattern.Nonfaulty(model.AgentID(i)) && r.Decision[i] == model.None {
			return false
		}
	}
	return true
}

// MaxDecisionRound returns the latest round in which any agent decided
// (0 if no agent decided). If nonfaultyOnly is set, faulty agents are
// ignored.
func (r *Result) MaxDecisionRound(nonfaultyOnly bool) int {
	maxRound := 0
	for i := 0; i < r.N; i++ {
		if nonfaultyOnly && !r.Pattern.Nonfaulty(model.AgentID(i)) {
			continue
		}
		if r.DecisionRound[i] > maxRound {
			maxRound = r.DecisionRound[i]
		}
	}
	return maxRound
}
