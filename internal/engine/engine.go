// Package engine executes a protocol stack — an information-exchange
// protocol paired with an action protocol — under a failure pattern, one
// synchronized round at a time, exactly as Section 3 of the paper
// prescribes: at each time m every agent performs the action chosen by its
// action protocol, the exchange protocol selects messages (μ), the failure
// pattern filters deliveries (F), and every agent updates its local state
// (δ).
//
// The engine is deterministic and sequential; internal/runtime provides an
// equivalent concurrent execution with one goroutine per agent and is
// tested to produce byte-identical traces.
package engine

import (
	"errors"
	"fmt"

	"repro/internal/model"
)

// Config describes one execution.
type Config struct {
	// Exchange is the information-exchange protocol E.
	Exchange model.Exchange
	// Action is the action protocol P.
	Action model.ActionProtocol
	// Pattern is the failure pattern (the adversary).
	Pattern *model.Pattern
	// Inits holds each agent's initial preference; length must equal the
	// number of agents and every entry must be 0 or 1.
	Inits []model.Value
	// Horizon is the number of rounds to execute. Zero means "use the
	// pattern's horizon".
	Horizon int
}

// Stats aggregates message traffic for the complexity experiments
// (Proposition 8.1). Senders are charged for every non-⊥ message they
// emit whether or not the adversary delivers it.
type Stats struct {
	// MessagesSent counts non-⊥ messages handed to the network.
	MessagesSent int
	// MessagesDelivered counts messages that reached their recipient.
	MessagesDelivered int
	// BitsSent is the total wire size of sent messages.
	BitsSent int64
	// BitsDelivered is the total wire size of delivered messages.
	BitsDelivered int64
}

// Result is a completed run: the full state and action trace plus the
// decision ledger and traffic statistics.
type Result struct {
	// N is the number of agents.
	N int
	// Horizon is the number of rounds executed.
	Horizon int
	// Pattern is the adversary the run was executed against.
	Pattern *model.Pattern
	// Inits records the initial preferences.
	Inits []model.Value
	// States[m][i] is agent i's local state at time m, for m in 0..Horizon.
	States [][]model.State
	// Actions[m][i] is the action agent i performed at time m (i.e. in
	// round m+1), for m in 0..Horizon-1.
	Actions [][]model.Action
	// Decision[i] is the first value agent i decided, or None.
	Decision []model.Value
	// DecisionRound[i] is the round in which agent i first decided (the
	// deciding action happens at time DecisionRound[i]-1), or 0 if it
	// never decided.
	DecisionRound []int
	// Stats aggregates message traffic.
	Stats Stats
}

// Run executes the configuration and returns the completed run.
func Run(cfg Config) (*Result, error) {
	ex, act, pat := cfg.Exchange, cfg.Action, cfg.Pattern
	if ex == nil || act == nil || pat == nil {
		return nil, errors.New("engine: Exchange, Action, and Pattern are all required")
	}
	n := ex.N()
	if pat.N() != n {
		return nil, fmt.Errorf("engine: pattern is for %d agents, exchange for %d", pat.N(), n)
	}
	if len(cfg.Inits) != n {
		return nil, fmt.Errorf("engine: %d initial values for %d agents", len(cfg.Inits), n)
	}
	for i, v := range cfg.Inits {
		if !v.IsSet() {
			return nil, fmt.Errorf("engine: agent %d has no initial preference", i)
		}
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = pat.Horizon()
	}
	if horizon < 0 {
		return nil, fmt.Errorf("engine: negative horizon %d", horizon)
	}

	res := &Result{
		N:             n,
		Horizon:       horizon,
		Pattern:       pat,
		Inits:         append([]model.Value(nil), cfg.Inits...),
		States:        make([][]model.State, horizon+1),
		Actions:       make([][]model.Action, horizon),
		Decision:      make([]model.Value, n),
		DecisionRound: make([]int, n),
	}
	for i := range res.Decision {
		res.Decision[i] = model.None
	}

	cur := make([]model.State, n)
	for i := 0; i < n; i++ {
		cur[i] = ex.Initial(model.AgentID(i), cfg.Inits[i])
	}
	res.States[0] = append([]model.State(nil), cur...)

	for m := 0; m < horizon; m++ {
		// Every agent chooses its action from its time-m state.
		acts := make([]model.Action, n)
		for i := 0; i < n; i++ {
			acts[i] = act.Act(model.AgentID(i), cur[i])
			if d := acts[i].Decision(); d.IsSet() && res.Decision[i] == model.None {
				res.Decision[i] = d
				res.DecisionRound[i] = m + 1
			}
		}
		res.Actions[m] = acts

		next, stats, err := Step(ex, pat, m, cur, acts)
		if err != nil {
			return nil, err
		}
		res.Stats.MessagesSent += stats.MessagesSent
		res.Stats.MessagesDelivered += stats.MessagesDelivered
		res.Stats.BitsSent += stats.BitsSent
		res.Stats.BitsDelivered += stats.BitsDelivered
		cur = next
		res.States[m+1] = append([]model.State(nil), cur...)
	}
	return res, nil
}

// Step executes one synchronous round (round m+1): μ selects the messages
// each agent sends given its chosen action, the failure pattern filters
// deliveries, and δ produces the time-m+1 states. It is the common kernel
// of Run and of the knowledge-based-program builder in internal/episteme,
// which must choose actions by evaluating knowledge tests between rounds.
func Step(ex model.Exchange, pat *model.Pattern, m int, states []model.State, acts []model.Action) ([]model.State, Stats, error) {
	n := ex.N()
	var stats Stats
	outbox := make([][]model.Message, n)
	for i := 0; i < n; i++ {
		outbox[i] = ex.Messages(model.AgentID(i), states[i], acts[i])
		if len(outbox[i]) != n {
			return nil, stats, fmt.Errorf("engine: %s.Messages returned %d entries for %d agents",
				ex.Name(), len(outbox[i]), n)
		}
		for _, msg := range outbox[i] {
			if msg != nil {
				stats.MessagesSent++
				stats.BitsSent += int64(msg.Bits())
			}
		}
	}

	inbox := make([][]model.Message, n)
	for j := 0; j < n; j++ {
		inbox[j] = make([]model.Message, n)
		for i := 0; i < n; i++ {
			msg := outbox[i][j]
			if msg != nil && !pat.Delivered(m, model.AgentID(i), model.AgentID(j)) {
				msg = nil
			}
			inbox[j][i] = msg
			if msg != nil {
				stats.MessagesDelivered++
				stats.BitsDelivered += int64(msg.Bits())
			}
		}
	}

	next := make([]model.State, n)
	for i := 0; i < n; i++ {
		next[i] = ex.Update(model.AgentID(i), states[i], acts[i], inbox[i])
		if got := next[i].Time(); got != m+1 {
			return nil, stats, fmt.Errorf("engine: %s.Update produced time %d at time %d",
				ex.Name(), got, m+1)
		}
	}
	return next, stats, nil
}

// MustRun is Run for call sites where a configuration error is a bug.
func MustRun(cfg Config) *Result {
	res, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// Decided reports agent i's first decision (None if it never decided).
func (r *Result) Decided(i model.AgentID) model.Value { return r.Decision[i] }

// Round reports the round in which agent i first decided, or 0.
func (r *Result) Round(i model.AgentID) int { return r.DecisionRound[i] }

// AllNonfaultyDecided reports whether every nonfaulty agent decided.
func (r *Result) AllNonfaultyDecided() bool {
	for i := 0; i < r.N; i++ {
		if r.Pattern.Nonfaulty(model.AgentID(i)) && r.Decision[i] == model.None {
			return false
		}
	}
	return true
}

// MaxDecisionRound returns the latest round in which any agent decided
// (0 if no agent decided). If nonfaultyOnly is set, faulty agents are
// ignored.
func (r *Result) MaxDecisionRound(nonfaultyOnly bool) int {
	maxRound := 0
	for i := 0; i < r.N; i++ {
		if nonfaultyOnly && !r.Pattern.Nonfaulty(model.AgentID(i)) {
			continue
		}
		if r.DecisionRound[i] > maxRound {
			maxRound = r.DecisionRound[i]
		}
	}
	return maxRound
}
