package engine

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/model"
)

// stubState is a minimal EBA-context local state for engine tests.
type stubState struct {
	time    int
	init    model.Value
	decided model.Value
	jd      model.Value
}

func (s stubState) Time() int                { return s.time }
func (s stubState) Init() model.Value        { return s.init }
func (s stubState) Decided() model.Value     { return s.decided }
func (s stubState) JustDecided() model.Value { return s.jd }
func (s stubState) Key() string {
	var b strings.Builder
	b.WriteString("stub:")
	for _, v := range []int{s.time, int(s.init), int(s.decided), int(s.jd)} {
		b.WriteByte(byte('a' + v + 1))
	}
	return b.String()
}

// stubMsg announces a decision; it is 1 bit on the wire.
type stubMsg struct{ v model.Value }

func (m stubMsg) Announces() model.Value { return m.v }
func (m stubMsg) Bits() int              { return 1 }
func (m stubMsg) String() string         { return m.v.String() }

// stubExchange broadcasts a 1-bit announcement when an agent decides and
// stays silent otherwise (a miniature Emin).
type stubExchange struct{ n int }

func (e stubExchange) Name() string { return "Estub" }
func (e stubExchange) N() int       { return e.n }
func (e stubExchange) Initial(_ model.AgentID, init model.Value) model.State {
	return stubState{init: init, decided: model.None, jd: model.None}
}
func (e stubExchange) Messages(_ model.AgentID, _ model.State, a model.Action) []model.Message {
	out := make([]model.Message, e.n)
	if d := a.Decision(); d.IsSet() {
		for j := range out {
			out[j] = stubMsg{v: d}
		}
	}
	return out
}
func (e stubExchange) Update(_ model.AgentID, s model.State, a model.Action, recv []model.Message) model.State {
	st := s.(stubState)
	st.time++
	if d := a.Decision(); d.IsSet() && st.decided == model.None {
		st.decided = d
	}
	st.jd = model.None
	for _, m := range recv {
		if m == nil {
			continue
		}
		if v := m.Announces(); v.IsSet() && (st.jd == model.None || v == model.Zero) {
			st.jd = v
		}
	}
	return st
}

// stubAction decides the agent's own initial value at time 1.
type stubAction struct{}

func (stubAction) Name() string { return "Pstub" }
func (stubAction) Act(_ model.AgentID, s model.State) model.Action {
	if s.Decided().IsSet() {
		return model.Noop
	}
	if s.Time() == 1 {
		return model.Decide(s.Init())
	}
	return model.Noop
}

func stubConfig(n, horizon int, inits []model.Value, p *model.Pattern) Config {
	return Config{
		Exchange: stubExchange{n: n},
		Action:   stubAction{},
		Pattern:  p,
		Inits:    inits,
		Horizon:  horizon,
	}
}

func TestRunValidation(t *testing.T) {
	p := adversary.FailureFree(3, 3)
	inits := adversary.UniformInits(3, model.One)

	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := stubConfig(3, 3, inits[:2], p)
	if _, err := Run(cfg); err == nil {
		t.Error("short init vector accepted")
	}
	cfg = stubConfig(3, 3, []model.Value{model.One, model.None, model.One}, p)
	if _, err := Run(cfg); err == nil {
		t.Error("unset init accepted")
	}
	cfg = stubConfig(3, 3, inits, adversary.FailureFree(4, 3))
	if _, err := Run(cfg); err == nil {
		t.Error("pattern/exchange size mismatch accepted")
	}
}

func TestRunTraceShape(t *testing.T) {
	p := adversary.FailureFree(3, 4)
	res := MustRun(stubConfig(3, 4, adversary.UniformInits(3, model.One), p))
	if len(res.States) != 5 {
		t.Fatalf("len(States) = %d, want 5", len(res.States))
	}
	if len(res.Actions) != 4 {
		t.Fatalf("len(Actions) = %d, want 4", len(res.Actions))
	}
	for m, row := range res.States {
		for i, s := range row {
			if s.Time() != m {
				t.Errorf("States[%d][%d].Time() = %d", m, i, s.Time())
			}
		}
	}
}

func TestRunLedger(t *testing.T) {
	p := adversary.FailureFree(3, 3)
	inits := []model.Value{model.Zero, model.One, model.One}
	res := MustRun(stubConfig(3, 3, inits, p))
	// stubAction decides at time 1, i.e. round 2.
	for i := 0; i < 3; i++ {
		if res.Round(model.AgentID(i)) != 2 {
			t.Errorf("agent %d decided in round %d, want 2", i, res.Round(model.AgentID(i)))
		}
		if res.Decided(model.AgentID(i)) != inits[i] {
			t.Errorf("agent %d decided %v, want %v", i, res.Decided(model.AgentID(i)), inits[i])
		}
	}
	if !res.AllNonfaultyDecided() {
		t.Error("AllNonfaultyDecided = false")
	}
	if res.MaxDecisionRound(false) != 2 || res.MaxDecisionRound(true) != 2 {
		t.Error("MaxDecisionRound != 2")
	}
}

func TestRunStatsCountsSentAndDelivered(t *testing.T) {
	// Agent 0 is silent-faulty: its announcements are sent but not delivered.
	p := adversary.Silent(3, 3, 0)
	res := MustRun(stubConfig(3, 3, adversary.UniformInits(3, model.One), p))
	// Each agent decides at time 1 and broadcasts 3 one-bit messages.
	if res.Stats.MessagesSent != 9 {
		t.Errorf("MessagesSent = %d, want 9", res.Stats.MessagesSent)
	}
	if res.Stats.BitsSent != 9 {
		t.Errorf("BitsSent = %d, want 9", res.Stats.BitsSent)
	}
	// Agent 0's messages to agents 1,2 are dropped; its self-message and
	// the other agents' messages arrive: 9 - 2 = 7.
	if res.Stats.MessagesDelivered != 7 {
		t.Errorf("MessagesDelivered = %d, want 7", res.Stats.MessagesDelivered)
	}
	if res.Stats.BitsDelivered != 7 {
		t.Errorf("BitsDelivered = %d, want 7", res.Stats.BitsDelivered)
	}
}

func TestRunDeterminism(t *testing.T) {
	p := adversary.Silent(4, 3, 2)
	inits := []model.Value{model.Zero, model.One, model.One, model.Zero}
	a := MustRun(stubConfig(4, 3, inits, p))
	b := MustRun(stubConfig(4, 3, inits, p))
	for m := range a.States {
		for i := range a.States[m] {
			if a.States[m][i].Key() != b.States[m][i].Key() {
				t.Fatalf("states differ at time %d agent %d", m, i)
			}
		}
	}
	if a.Stats != b.Stats {
		t.Errorf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestRunHorizonDefaultsToPattern(t *testing.T) {
	p := adversary.FailureFree(2, 5)
	cfg := stubConfig(2, 0, adversary.UniformInits(2, model.Zero), p)
	res := MustRun(cfg)
	if res.Horizon != 5 {
		t.Errorf("Horizon = %d, want 5 (pattern horizon)", res.Horizon)
	}
}

func TestMustRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun did not panic on invalid config")
		}
	}()
	MustRun(Config{})
}

func TestJustDecidedPropagation(t *testing.T) {
	// With a failure-free pattern, agents see each other's announcements:
	// after the deciding round (time 2), jd must be set.
	p := adversary.FailureFree(3, 3)
	inits := []model.Value{model.Zero, model.One, model.One}
	res := MustRun(stubConfig(3, 3, inits, p))
	s := res.States[2][1].(stubState)
	if s.jd != model.Zero {
		t.Errorf("agent 1 jd at time 2 = %v, want 0 (prefers zero announcements)", s.jd)
	}
}
