package engine

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/model"
)

// shortExchange misbehaves by returning too few messages from μ.
type shortExchange struct{ stubExchange }

func (e shortExchange) Messages(model.AgentID, model.State, model.Action) []model.Message {
	return make([]model.Message, 1)
}

// timeWarpExchange misbehaves by not advancing the time component.
type timeWarpExchange struct{ stubExchange }

func (e timeWarpExchange) Update(_ model.AgentID, s model.State, _ model.Action, _ []model.Message) model.State {
	return s // time not advanced
}

func TestStepRejectsShortMessageVector(t *testing.T) {
	n := 3
	ex := shortExchange{stubExchange{n: n}}
	states := make([]model.State, n)
	for i := range states {
		states[i] = ex.Initial(model.AgentID(i), model.One)
	}
	_, _, err := Step(ex, adversary.FailureFree(n, 2), 0, states, make([]model.Action, n))
	if err == nil || !strings.Contains(err.Error(), "entries") {
		t.Errorf("short message vector not rejected: %v", err)
	}
}

func TestStepRejectsTimeWarp(t *testing.T) {
	n := 2
	ex := timeWarpExchange{stubExchange{n: n}}
	states := make([]model.State, n)
	for i := range states {
		states[i] = ex.Initial(model.AgentID(i), model.One)
	}
	_, _, err := Step(ex, adversary.FailureFree(n, 2), 0, states, make([]model.Action, n))
	if err == nil || !strings.Contains(err.Error(), "time") {
		t.Errorf("time warp not rejected: %v", err)
	}
}

func TestRunSurfacesStepErrors(t *testing.T) {
	n := 2
	cfg := Config{
		Exchange: timeWarpExchange{stubExchange{n: n}},
		Action:   stubAction{},
		Pattern:  adversary.FailureFree(n, 2),
		Inits:    adversary.UniformInits(n, model.One),
	}
	if _, err := Run(cfg); err == nil {
		t.Error("Run did not surface the exchange misbehavior")
	}
}

func TestStepStats(t *testing.T) {
	// One decide broadcast from each of 2 agents under a half-dropping
	// pattern: stats must separate sent from delivered.
	n := 2
	ex := stubExchange{n: n}
	pat := adversary.Silent(n, 2, 0)
	states := []model.State{
		ex.Initial(0, model.One),
		ex.Initial(1, model.One),
	}
	acts := []model.Action{model.Decide1, model.Decide1}
	next, stats, err := Step(ex, pat, 0, states, acts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesSent != 4 || stats.BitsSent != 4 {
		t.Errorf("sent = %d msgs / %d bits, want 4 / 4", stats.MessagesSent, stats.BitsSent)
	}
	// Agent 0's message to agent 1 is dropped; self-delivery and agent 1's
	// two messages arrive: 3 delivered.
	if stats.MessagesDelivered != 3 {
		t.Errorf("delivered = %d, want 3", stats.MessagesDelivered)
	}
	if next[0].Time() != 1 || next[1].Time() != 1 {
		t.Error("states not advanced")
	}
}
