package engine

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/exchange"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/registry"
)

// runSignature flattens a result into one comparable fingerprint: every
// state key, every action, the decision ledger, and the traffic stats.
func runSignature(res *Result) string {
	var b strings.Builder
	for m := range res.States {
		for i := range res.States[m] {
			b.WriteString(res.States[m][i].Key())
			b.WriteByte(';')
		}
	}
	for m := range res.Actions {
		for i := range res.Actions[m] {
			b.WriteString(res.Actions[m][i].String())
			b.WriteByte(';')
		}
	}
	for i := range res.Decision {
		b.WriteString(res.Decision[i].String())
		b.WriteString("@")
		b.WriteString(strconv.Itoa(res.DecisionRound[i]))
		b.WriteByte(';')
	}
	b.WriteString(strconv.Itoa(res.Stats.MessagesSent))
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(res.Stats.MessagesDelivered))
	b.WriteByte('/')
	b.WriteString(strconv.FormatInt(res.Stats.BitsSent, 10))
	b.WriteByte('/')
	b.WriteString(strconv.FormatInt(res.Stats.BitsDelivered, 10))
	return b.String()
}

// arenaScenarios builds a deterministic mixed scenario list.
func arenaScenarios(n, tf, count int, seed int64) []Config {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Config, count)
	for k := range out {
		pat := adversary.RandomSO(rng, n, tf, tf+2, 0.45)
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value(rng.Intn(2))
		}
		out[k] = Config{Pattern: pat, Inits: inits}
	}
	return out
}

// scribbleState mutates every writable slot reachable from the state —
// unknown edge labels and unset preference labels of a fip graph — and
// returns how many slots it flipped. Non-graph states expose no shared
// memory and report 0.
func scribbleState(st model.State) int {
	fs, ok := st.(*exchange.FIPState)
	if !ok {
		return 0
	}
	g := fs.Graph()
	count := 0
	for j := 0; j < g.N(); j++ {
		if !g.Pref(model.AgentID(j)).IsSet() {
			g.SetPref(model.AgentID(j), model.One)
			count++
		}
	}
	for k := 0; k < g.M(); k++ {
		for i := 0; i < g.N(); i++ {
			for j := 0; j < g.N(); j++ {
				if g.Edge(k, model.AgentID(i), model.AgentID(j)) == graph.Unknown {
					g.SetEdge(k, model.AgentID(i), model.AgentID(j), graph.Sent)
					count++
				}
			}
		}
	}
	return count
}

// TestArenaTraceIdentityAllStacks checks the non-negotiable invariant of
// the arena refactor: for every registered stack, the fresh-allocation
// path, the plain buffered path, and the arena-backed buffered path
// produce bit-identical traces, run after run over shared buffers.
func TestArenaTraceIdentityAllStacks(t *testing.T) {
	n, tf := 5, 2
	for _, name := range registry.StackNames() {
		info, err := registry.Stack(name)
		if err != nil {
			t.Fatal(err)
		}
		ex, act, err := registry.Compose(info.Exchange, info.Action, n, tf)
		if err != nil {
			t.Fatal(err)
		}
		plain, arena := NewBuffers(), NewArenaBuffers()
		for k, cfg := range arenaScenarios(n, tf, 12, 41) {
			cfg.Exchange, cfg.Action = ex, act
			fresh, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := runSignature(fresh)
			bres, err := RunBuffered(cfg, plain)
			if err != nil {
				t.Fatal(err)
			}
			if got := runSignature(bres); got != want {
				t.Fatalf("%s scenario %d: plain buffered trace diverged", name, k)
			}
			ares, err := RunBuffered(cfg, arena)
			if err != nil {
				t.Fatal(err)
			}
			if got := runSignature(ares); got != want {
				t.Fatalf("%s scenario %d: arena-backed trace diverged", name, k)
			}
		}
	}
}

// TestArenaResultsOwnTheirMemory is the aliasing property test: after an
// arena-backed run, every returned Result owns its memory outright. It
// mutates everything reachable from the returned results, re-runs the
// same scenarios over the same buffers, and requires (a) the fresh
// results to be pristine and (b) the mutations to survive — either
// failing means recycled scratch was shared with a live Result.
func TestArenaResultsOwnTheirMemory(t *testing.T) {
	n, tf := 4, 1
	for _, name := range []string{"fip", "fip+pmin", "fip-nock", "min", "basic"} {
		info, err := registry.Stack(name)
		if err != nil {
			t.Fatal(err)
		}
		ex, act, err := registry.Compose(info.Exchange, info.Action, n, tf)
		if err != nil {
			t.Fatal(err)
		}
		scenarios := arenaScenarios(n, tf, 16, 97)
		buf := NewArenaBuffers()

		reference := make([]string, len(scenarios))
		results := make([]*Result, len(scenarios))
		for k, cfg := range scenarios {
			cfg.Exchange, cfg.Action = ex, act
			fresh, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reference[k] = runSignature(fresh)
			if results[k], err = RunBuffered(cfg, buf); err != nil {
				t.Fatal(err)
			}
			if got := runSignature(results[k]); got != reference[k] {
				t.Fatalf("%s scenario %d: arena run diverged before mutation", name, k)
			}
		}

		// Mutate everything reachable from every returned result.
		scribbled := 0
		for _, res := range results {
			for _, row := range res.States {
				for _, st := range row {
					scribbled += scribbleState(st)
				}
			}
		}
		if strings.HasPrefix(name, "fip") && scribbled == 0 {
			t.Fatalf("%s: property test scribbled nothing — not exercising shared memory", name)
		}
		mutated := make([]string, len(results))
		for k, res := range results {
			mutated[k] = runSignature(res)
		}

		// Re-run the same scenarios through the same (recycled) buffers.
		for k, cfg := range scenarios {
			cfg.Exchange, cfg.Action = ex, act
			res, err := RunBuffered(cfg, buf)
			if err != nil {
				t.Fatal(err)
			}
			if got := runSignature(res); got != reference[k] {
				t.Fatalf("%s scenario %d: re-run over scribbled buffers diverged — scratch aliased a returned Result", name, k)
			}
		}
		// And the mutations must have survived the re-runs untouched.
		for k, res := range results {
			if got := runSignature(res); got != mutated[k] {
				t.Fatalf("%s scenario %d: re-run scribbled over a returned Result's memory", name, k)
			}
		}
	}
}

// TestArenaClonesAreIndependent covers Clone, CloneFor, CloneExtended,
// and Detach on graphs that came out of an arena-backed run: clones must
// never share backing memory with their source.
func TestArenaClonesAreIndependent(t *testing.T) {
	n, tf := 4, 1
	info, err := registry.Stack("fip")
	if err != nil {
		t.Fatal(err)
	}
	ex, act, err := registry.Compose(info.Exchange, info.Action, n, tf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arenaScenarios(n, tf, 1, 7)[0]
	cfg.Exchange, cfg.Action = ex, act
	buf := NewArenaBuffers()
	res, err := RunBuffered(cfg, buf)
	if err != nil {
		t.Fatal(err)
	}
	g := res.States[tf+1][0].(*exchange.FIPState).Graph()
	key := g.Key()
	if g.Detach() != g {
		t.Fatal("Detach must return the receiver")
	}

	clones := []*graph.Graph{g.Clone(), g.CloneFor(1), g.CloneExtended()}
	cloneKeys := []string{clones[0].Key(), clones[1].Key(), clones[2].Key()}
	// Scribbling the source must not reach any clone.
	for k := 0; k < g.M(); k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g.Edge(k, model.AgentID(i), model.AgentID(j)) == graph.Unknown {
					g.SetEdge(k, model.AgentID(i), model.AgentID(j), graph.NotSent)
				}
			}
		}
	}
	if g.Key() == key {
		t.Fatal("scribbling changed nothing — test is vacuous")
	}
	for c, cl := range clones {
		if cl.Key() != cloneKeys[c] {
			t.Fatalf("clone %d shares memory with its scribbled source", c)
		}
	}
	// And scribbling a clone must not reach the (re-keyed) source.
	key = g.Key()
	for c, cl := range clones {
		for j := 0; j < n; j++ {
			if !cl.Pref(model.AgentID(j)).IsSet() {
				cl.SetPref(model.AgentID(j), model.Zero)
			}
		}
		if g.Key() != key {
			t.Fatalf("scribbling clone %d reached the source", c)
		}
	}
}
