// Deterministic shard-and-merge: the multi-process face of the Runner.
//
// A sweep's Source enumerates scenarios in one canonical order; Stride
// splits that order into K modular stripes (stripe i holds the scenarios
// at global ordinals ≡ i mod K), so K independent processes can each pull
// their own stripe of the very same enumeration without coordinating.
// RunShard executes one stripe and emits a self-describing outcome stream
// — a JSONL header, one digested record per scenario carrying its global
// ordinal, and a footer sealing the stripe with a chained digest — to any
// io.Writer (a file, a pipe). MergeOutcomes fans K such streams back into
// the canonical order, verifying that the stripes partition the sweep
// exactly (no gaps, no overlaps, consistent headers, intact digests).
//
// The merged stream of K shards is byte-identical to the stream a single
// process writes with shardCount 1 — the invariant the CI
// shard-equivalence smoke pins with cmp(1) — so sharding is a pure
// throughput move: it can never change what a sweep observes.

package core

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/engine"
)

// Stride returns the shard's stripe of the source: the scenarios at
// global ordinals shardIndex, shardIndex+shardCount, shardIndex+2·shardCount,
// … in the source's own order. Striding is deterministic and modular, so
// the shardCount stripes partition the sweep exactly — no scenario is
// lost or duplicated — and any combinator stack (Limit, Filter,
// CrossInits) can sit on either side of it. shardCount 1 returns the
// source unchanged.
func Stride(src Source, shardIndex, shardCount int) (Source, error) {
	if shardCount < 1 {
		return nil, fmt.Errorf("core: shard count %d; need at least 1", shardCount)
	}
	if shardIndex < 0 || shardIndex >= shardCount {
		return nil, fmt.Errorf("core: shard index %d outside [0, %d)", shardIndex, shardCount)
	}
	if shardCount == 1 {
		return src, nil
	}
	return &strideSource{src: src, index: shardIndex, count: shardCount, skip: shardIndex}, nil
}

// strideSource discards the scenarios between the stripe's ordinals.
type strideSource struct {
	src   Source
	index int
	count int
	// skip is how many scenarios to discard before the next yield: index
	// before the first yield, count-1 between yields.
	skip int
}

func (s *strideSource) Next() (Scenario, bool) {
	for s.skip > 0 {
		if _, ok := s.src.Next(); !ok {
			return Scenario{}, false
		}
		s.skip--
	}
	sc, ok := s.src.Next()
	if !ok {
		return Scenario{}, false
	}
	s.skip = s.count - 1
	return sc, true
}

func (s *strideSource) Count() (int64, bool) {
	c, ok := s.src.Count()
	if !ok {
		return 0, false
	}
	return StripeSize(c, s.index, s.count), true
}

// Err surfaces the inner source's mid-stream failure, if it reports one.
func (s *strideSource) Err() error {
	if es, ok := s.src.(ErrorSource); ok {
		return es.Err()
	}
	return nil
}

// StripeSize returns the number of ordinals in [0, total) congruent to
// shardIndex modulo shardCount — the length of that shard's stripe of a
// total-scenario sweep.
func StripeSize(total int64, shardIndex, shardCount int) int64 {
	if total <= int64(shardIndex) {
		return 0
	}
	return (total - int64(shardIndex) + int64(shardCount) - 1) / int64(shardCount)
}

// --- the outcome stream format -------------------------------------------

// Outcome streams are JSON lines: a ShardHeader, then one OutcomeRecord
// per scenario in stripe order, then a ShardFooter. Every value is
// written by encoding/json over fixed structs, so the byte encoding is
// deterministic — equal streams compare equal with cmp(1).
const (
	outcomeKind    = "eba-outcomes"
	footerKind     = "footer"
	outcomeVersion = 1
)

// ShardHeader opens an outcome stream and makes it self-describing: which
// stripe of which sweep over which stack follows.
type ShardHeader struct {
	// Kind is "eba-outcomes"; Version the format version.
	Kind    string `json:"kind"`
	Version int    `json:"v"`
	// Shard and Shards identify the stripe: the records that follow carry
	// the global ordinals ≡ Shard mod Shards.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Stack names the protocol stack; N, T, and Horizon its configuration.
	Stack   string `json:"stack"`
	N       int    `json:"n"`
	T       int    `json:"t"`
	Horizon int    `json:"horizon"`
	// Count is the stripe's scenario count, or -1 when the source cannot
	// report one up front.
	Count int64 `json:"count"`
}

// OutcomeStats mirrors engine.Stats with stable JSON keys.
type OutcomeStats struct {
	MessagesSent      int   `json:"sent"`
	MessagesDelivered int   `json:"delivered"`
	BitsSent          int64 `json:"bitsSent"`
	BitsDelivered     int64 `json:"bitsDelivered"`
}

// OutcomeRecord is one completed scenario of a sharded sweep: the global
// ordinal locating it in the canonical enumeration, the scenario itself
// (pattern text + inits), the run's observable outcome, and a digest over
// all of it. Full traces stay in the process that ran them; the record
// carries what sweeps aggregate and specs judge.
type OutcomeRecord struct {
	// Ordinal is the scenario's position in the unsharded enumeration.
	Ordinal int64 `json:"ord"`
	// Pattern is the failure pattern in model.Pattern's text form.
	Pattern string `json:"pattern"`
	// Inits holds the initial preferences as 0/1.
	Inits []int `json:"inits"`
	// Decisions[i] is the value agent i decided (-1 for none);
	// Rounds[i] the round it first decided in (0 for never).
	Decisions []int `json:"decisions"`
	Rounds    []int `json:"rounds"`
	// Stats aggregates the run's message traffic.
	Stats OutcomeStats `json:"stats"`
	// Mult is the number of sweep scenarios this record stands for: the
	// orbit size when the sweep was symmetry-quotiented
	// (source.Quotient), omitted (meaning 1) otherwise. Aggregators
	// weight decision tallies and totals by it so quotiented sweeps
	// report full-sweep counts.
	Mult int64 `json:"mult,omitempty"`
	// Digest fingerprints every field above.
	Digest string `json:"digest"`
}

// EffectiveMult is Mult with the zero-means-one default applied.
func (r *OutcomeRecord) EffectiveMult() int64 {
	if r.Mult <= 0 {
		return 1
	}
	return r.Mult
}

// ShardFooter seals a stream: how many records it carries and the chained
// digest over them in stream order.
type ShardFooter struct {
	Kind    string `json:"kind"`
	Records int64  `json:"records"`
	Digest  string `json:"digest"`
}

// newOutcomeRecord builds the record of one completed run standing for
// weight sweep scenarios (weight ≤ 1 records an ordinary run).
func newOutcomeRecord(ordinal int64, res *engine.Result, weight int64) (OutcomeRecord, error) {
	pat, err := res.Pattern.MarshalText()
	if err != nil {
		return OutcomeRecord{}, fmt.Errorf("core: encoding pattern of ordinal %d: %w", ordinal, err)
	}
	rec := OutcomeRecord{
		Ordinal:   ordinal,
		Pattern:   string(pat),
		Inits:     make([]int, res.N),
		Decisions: make([]int, res.N),
		Rounds:    make([]int, res.N),
		Stats: OutcomeStats{
			MessagesSent:      res.Stats.MessagesSent,
			MessagesDelivered: res.Stats.MessagesDelivered,
			BitsSent:          res.Stats.BitsSent,
			BitsDelivered:     res.Stats.BitsDelivered,
		},
	}
	for i := 0; i < res.N; i++ {
		rec.Inits[i] = int(res.Inits[i])
		rec.Decisions[i] = int(res.Decision[i])
		rec.Rounds[i] = res.DecisionRound[i]
	}
	if weight > 1 {
		rec.Mult = weight
	}
	rec.Digest = rec.ComputeDigest()
	return rec, nil
}

// ComputeDigest fingerprints the record's content (everything but the
// Digest field itself). It is the stripe-level integrity primitive the
// cross-machine fabric verifies uploads with: a record is intact exactly
// when its Digest field equals its ComputeDigest. A multiplicity is
// hashed only when present (> 1), so records of unquotiented sweeps hash
// exactly as they did before multiplicities existed.
func (r *OutcomeRecord) ComputeDigest() string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%s|%v|%v|%v|%d|%d|%d|%d",
		r.Ordinal, r.Pattern, r.Inits, r.Decisions, r.Rounds,
		r.Stats.MessagesSent, r.Stats.MessagesDelivered, r.Stats.BitsSent, r.Stats.BitsDelivered)
	if r.Mult > 1 {
		fmt.Fprintf(h, "|m%d", r.Mult)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// digestChain folds record digests in stream order; two streams carrying
// the same records in the same order chain to the same value.
type digestChain struct{ h [sha256.Size]byte }

func (c *digestChain) add(recordDigest string) {
	h := sha256.New()
	h.Write(c.h[:])
	h.Write([]byte(recordDigest))
	h.Sum(c.h[:0])
}

func (c *digestChain) hex() string { return hex.EncodeToString(c.h[:16]) }

// --- writing: RunShard ---------------------------------------------------

// ShardSummary reports a completed RunShard.
type ShardSummary struct {
	// Header is the stream's header as written.
	Header ShardHeader
	// Records is the number of scenarios the stripe ran.
	Records int64
	// Weighted is the number of sweep scenarios the stripe stands for:
	// the sum of record multiplicities. Equal to Records unless the
	// sweep was symmetry-quotiented.
	Weighted int64
	// Digest is the chained digest over the stripe's records.
	Digest string
	// Executed is the number of records actually executed; CacheHits the
	// number restored from the result cache (WithResultCache). Without a
	// cache Executed equals Records and CacheHits is 0. Stream verifiers
	// (VerifyOutcomeStream) leave both zero — the stream does not record
	// how its runs were obtained, because it could not matter: hits are
	// bit-identical to executions.
	Executed  int64
	CacheHits int64
}

// RunShard executes stripe shardIndex of shardCount of the source's sweep
// and writes the self-describing outcome stream — header, one digested
// record per scenario in stripe order, footer — to w. The source is the
// FULL sweep; RunShard strides it, so K processes handed the same source
// constructor and distinct indexes partition the sweep exactly. Runs fan
// out over the runner's worker pool (WithParallelism); the stream is
// emitted in stripe order regardless. The first execution error,
// specification violation, or cancellation aborts the shard with that
// error as the context cause — a partial stream carries no footer, so
// MergeOutcomes rejects it.
func (r *Runner) RunShard(ctx context.Context, src Source, shardIndex, shardCount int, w io.Writer) (*ShardSummary, error) {
	stripe, err := Stride(src, shardIndex, shardCount)
	if err != nil {
		return nil, err
	}
	hdr := ShardHeader{
		Kind:    outcomeKind,
		Version: outcomeVersion,
		Shard:   shardIndex,
		Shards:  shardCount,
		Stack:   r.stack.Name,
		N:       r.stack.N,
		T:       r.stack.T,
		Horizon: r.stack.Horizon(),
		Count:   -1,
	}
	if c, ok := stripe.Count(); ok {
		hdr.Count = c
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return nil, fmt.Errorf("core: shard %d/%d: writing header: %w", shardIndex, shardCount, err)
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	cachingExec, _ := r.exec.(*CachingExecutor)
	var countersBefore CacheCounters
	if cachingExec != nil {
		countersBefore = cachingExec.Counters()
	}
	var chain digestChain
	var records, weighted int64
	for oc := range r.StreamFrom(ctx, stripe) {
		if oc.Err != nil {
			cancel(oc.Err)
			return nil, fmt.Errorf("core: shard %d/%d: %w", shardIndex, shardCount, oc.Err)
		}
		ordinal := int64(shardIndex) + int64(oc.Index)*int64(shardCount)
		rec, err := newOutcomeRecord(ordinal, oc.Result, oc.Scenario.EffectiveWeight())
		if err != nil {
			cancel(err)
			return nil, err
		}
		chain.add(rec.Digest)
		if err := enc.Encode(rec); err != nil {
			cancel(err)
			return nil, fmt.Errorf("core: shard %d/%d: writing ordinal %d: %w", shardIndex, shardCount, ordinal, err)
		}
		records++
		weighted += rec.EffectiveMult()
	}
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	if hdr.Count >= 0 && records != hdr.Count {
		return nil, fmt.Errorf("core: shard %d/%d ran %d of %d scenarios", shardIndex, shardCount, records, hdr.Count)
	}
	foot := ShardFooter{Kind: footerKind, Records: records, Digest: chain.hex()}
	if err := enc.Encode(foot); err != nil {
		return nil, fmt.Errorf("core: shard %d/%d: writing footer: %w", shardIndex, shardCount, err)
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("core: shard %d/%d: flushing stream: %w", shardIndex, shardCount, err)
	}
	sum := &ShardSummary{Header: hdr, Records: records, Weighted: weighted, Digest: foot.Digest, Executed: records}
	if cachingExec != nil {
		delta := cachingExec.Counters()
		sum.CacheHits = delta.Hits - countersBefore.Hits
		sum.Executed = delta.Misses - countersBefore.Misses
	}
	return sum, nil
}

// --- reading: OutcomeReader ----------------------------------------------

// OutcomeReader decodes one shard's outcome stream, verifying record
// digests and the footer's count and chained digest as it goes. Next
// returns io.EOF after the footer; a stream that ends without one is
// reported as truncated (the mark RunShard leaves when it aborts).
type OutcomeReader struct {
	dec      *json.Decoder
	header   ShardHeader
	chain    digestChain
	records  int64
	weighted int64
	footer   *ShardFooter
}

// NewOutcomeReader reads and validates the stream's header.
func NewOutcomeReader(r io.Reader) (*OutcomeReader, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr ShardHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: reading outcome-stream header: %w", err)
	}
	if hdr.Kind != outcomeKind {
		return nil, fmt.Errorf("core: not an outcome stream (kind %q, want %q)", hdr.Kind, outcomeKind)
	}
	if hdr.Version != outcomeVersion {
		return nil, fmt.Errorf("core: outcome-stream version %d, this reader speaks %d", hdr.Version, outcomeVersion)
	}
	if hdr.Shards < 1 || hdr.Shard < 0 || hdr.Shard >= hdr.Shards {
		return nil, fmt.Errorf("core: outcome stream declares shard %d of %d", hdr.Shard, hdr.Shards)
	}
	return &OutcomeReader{dec: dec, header: hdr}, nil
}

// Header returns the stream's header.
func (or *OutcomeReader) Header() ShardHeader { return or.header }

// Footer returns the stream's footer once Next has returned io.EOF, and
// nil before that.
func (or *OutcomeReader) Footer() *ShardFooter { return or.footer }

// Next returns the stream's next record. It verifies the record's digest
// against its content and, at the footer, the stream's record count and
// chained digest; io.EOF reports a cleanly sealed stream.
func (or *OutcomeReader) Next() (*OutcomeRecord, error) {
	if or.footer != nil {
		return nil, io.EOF
	}
	var raw json.RawMessage
	if err := or.dec.Decode(&raw); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("core: shard %d/%d: stream truncated after %d records (no footer)",
				or.header.Shard, or.header.Shards, or.records)
		}
		return nil, fmt.Errorf("core: shard %d/%d: decoding record %d: %w",
			or.header.Shard, or.header.Shards, or.records, err)
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("core: shard %d/%d: decoding record %d: %w",
			or.header.Shard, or.header.Shards, or.records, err)
	}
	if probe.Kind == footerKind {
		var foot ShardFooter
		if err := json.Unmarshal(raw, &foot); err != nil {
			return nil, fmt.Errorf("core: shard %d/%d: decoding footer: %w", or.header.Shard, or.header.Shards, err)
		}
		if foot.Records != or.records {
			return nil, fmt.Errorf("core: shard %d/%d: footer claims %d records, stream carried %d",
				or.header.Shard, or.header.Shards, foot.Records, or.records)
		}
		if foot.Digest != or.chain.hex() {
			return nil, fmt.Errorf("core: shard %d/%d: footer digest %s does not match the record chain %s",
				or.header.Shard, or.header.Shards, foot.Digest, or.chain.hex())
		}
		or.footer = &foot
		return nil, io.EOF
	}
	var rec OutcomeRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("core: shard %d/%d: decoding record %d: %w",
			or.header.Shard, or.header.Shards, or.records, err)
	}
	if want := rec.ComputeDigest(); rec.Digest != want {
		return nil, fmt.Errorf("core: shard %d/%d: ordinal %d carries digest %s, content hashes to %s",
			or.header.Shard, or.header.Shards, rec.Ordinal, rec.Digest, want)
	}
	if rem := rec.Ordinal % int64(or.header.Shards); rem != int64(or.header.Shard) {
		return nil, fmt.Errorf("core: shard %d/%d: ordinal %d does not belong to this stripe",
			or.header.Shard, or.header.Shards, rec.Ordinal)
	}
	or.chain.add(rec.Digest)
	or.records++
	or.weighted += rec.EffectiveMult()
	return &rec, nil
}

// VerifyOutcomeStream drains one shard's outcome stream, verifying every
// record digest, the stripe membership of every ordinal, and the sealing
// footer, and returns the stream's summary (header, record count, chained
// digest). It is the acceptance check a fan-in process — cmd/ebashard's
// -merge, the fabric coordinator's upload endpoint — runs before trusting
// a stripe: a torn, truncated, or tampered stream is reported as an
// error, never as a summary.
func VerifyOutcomeStream(r io.Reader) (*ShardSummary, error) {
	or, err := NewOutcomeReader(r)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := or.Next(); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, err
		}
	}
	foot := or.Footer()
	return &ShardSummary{Header: or.Header(), Records: foot.Records, Weighted: or.weighted, Digest: foot.Digest}, nil
}

// WriteOutcomeStream re-seals records into a valid outcome stream:
// header, the records in the given order with their digests recomputed
// from content, and a footer chaining them. It is the re-spooling face of
// the format — what RunShard produces by executing, WriteOutcomeStream
// produces from records already in hand — and the byte encoding is
// identical, so a re-spooled stripe still compares with cmp(1).
func WriteOutcomeStream(w io.Writer, hdr ShardHeader, recs []OutcomeRecord) (*ShardSummary, error) {
	if hdr.Kind == "" {
		hdr.Kind = outcomeKind
	}
	if hdr.Version == 0 {
		hdr.Version = outcomeVersion
	}
	if hdr.Kind != outcomeKind || hdr.Version != outcomeVersion {
		return nil, fmt.Errorf("core: writing outcome stream of kind %q version %d; this writer speaks %q version %d",
			hdr.Kind, hdr.Version, outcomeKind, outcomeVersion)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return nil, fmt.Errorf("core: writing header: %w", err)
	}
	var chain digestChain
	for i := range recs {
		rec := recs[i]
		rec.Digest = rec.ComputeDigest()
		chain.add(rec.Digest)
		if err := enc.Encode(&rec); err != nil {
			return nil, fmt.Errorf("core: writing ordinal %d: %w", rec.Ordinal, err)
		}
	}
	foot := ShardFooter{Kind: footerKind, Records: int64(len(recs)), Digest: chain.hex()}
	if err := enc.Encode(foot); err != nil {
		return nil, fmt.Errorf("core: writing footer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("core: flushing stream: %w", err)
	}
	return &ShardSummary{Header: hdr, Records: foot.Records, Digest: foot.Digest}, nil
}

// --- merging: MergeOutcomes ----------------------------------------------

// MergeSummary reports a completed MergeOutcomes.
type MergeSummary struct {
	// Shards is the number of merged stripes.
	Shards int
	// Total is the merged scenario count.
	Total int64
	// Weighted is the number of sweep scenarios the merge stands for:
	// the sum of record multiplicities across all stripes. Equal to
	// Total unless the sweep was symmetry-quotiented.
	Weighted int64
	// Digest is the chained digest over the merged records in canonical
	// order — equal to the Digest a single-process (shardCount 1) RunShard
	// of the same sweep reports.
	Digest string
	// Headers holds the shard headers in shard order.
	Headers []ShardHeader
}

// MergeOutcomes fans K shard streams back into the canonical enumeration
// order, verifying that the stripes partition the sweep exactly: headers
// must agree on the stack and declare K distinct stripes of a K-way
// split; every record's digest must match its content; ordinals must
// cover 0..total-1 with no gap and no overlap; and each stream's footer
// must seal its stripe. Streams may be passed in any order.
//
// When w is non-nil the merged stream is written to it in the same
// format, as the single stripe of a 1-way split — byte-identical to what
// one process running the whole sweep writes, so sharded and unsharded
// runs can be compared with cmp(1).
func MergeOutcomes(w io.Writer, streams ...io.Reader) (*MergeSummary, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("core: merge of zero outcome streams")
	}
	byShard := make([]*OutcomeReader, len(streams))
	for _, s := range streams {
		or, err := NewOutcomeReader(s)
		if err != nil {
			return nil, err
		}
		h := or.Header()
		if h.Shards != len(streams) {
			return nil, fmt.Errorf("core: merging %d streams but shard %d declares a %d-way split",
				len(streams), h.Shard, h.Shards)
		}
		if byShard[h.Shard] != nil {
			return nil, fmt.Errorf("core: two streams both claim shard %d/%d (overlap)", h.Shard, h.Shards)
		}
		byShard[h.Shard] = or
	}
	ref := byShard[0].Header()
	total := int64(0)
	for i, or := range byShard {
		h := or.Header()
		if h.Stack != ref.Stack || h.N != ref.N || h.T != ref.T || h.Horizon != ref.Horizon {
			return nil, fmt.Errorf("core: shard %d ran %s(n=%d,t=%d,h=%d), shard 0 ran %s(n=%d,t=%d,h=%d)",
				i, h.Stack, h.N, h.T, h.Horizon, ref.Stack, ref.N, ref.T, ref.Horizon)
		}
		if total >= 0 && h.Count >= 0 {
			total += h.Count
		} else {
			total = -1
		}
	}

	var bw *bufio.Writer
	var enc *json.Encoder
	if w != nil {
		bw = bufio.NewWriter(w)
		enc = json.NewEncoder(bw)
		mh := ref
		mh.Shard, mh.Shards, mh.Count = 0, 1, total
		if err := enc.Encode(mh); err != nil {
			return nil, fmt.Errorf("core: writing merged header: %w", err)
		}
	}

	k := len(byShard)
	var chain digestChain
	var ord, weighted int64
	for {
		or := byShard[int(ord%int64(k))]
		rec, err := or.Next()
		if errors.Is(err, io.EOF) {
			// This stripe is exhausted at ordinal ord, fixing the sweep's
			// total; every other stripe must be exhausted too, or it holds
			// a record the canonical order has no slot for.
			for j := 0; j < k; j++ {
				if byShard[j] == or {
					continue
				}
				if extra, jerr := byShard[j].Next(); !errors.Is(jerr, io.EOF) {
					if jerr != nil {
						return nil, jerr
					}
					return nil, fmt.Errorf("core: shard %d carries ordinal %d beyond the sweep's end at %d (gap or overlap)",
						j, extra.Ordinal, ord)
				}
			}
			break
		}
		if err != nil {
			return nil, err
		}
		if rec.Ordinal != ord {
			return nil, fmt.Errorf("core: shard %d emitted ordinal %d where the canonical order needs %d (gap or overlap)",
				int(ord%int64(k)), rec.Ordinal, ord)
		}
		chain.add(rec.Digest)
		weighted += rec.EffectiveMult()
		if enc != nil {
			if err := enc.Encode(rec); err != nil {
				return nil, fmt.Errorf("core: writing merged ordinal %d: %w", ord, err)
			}
		}
		ord++
	}
	if total >= 0 && ord != total {
		return nil, fmt.Errorf("core: merged %d records, headers promised %d", ord, total)
	}

	sum := &MergeSummary{Shards: k, Total: ord, Weighted: weighted, Digest: chain.hex(), Headers: make([]ShardHeader, k)}
	for i, or := range byShard {
		sum.Headers[i] = or.Header()
	}
	if enc != nil {
		foot := ShardFooter{Kind: footerKind, Records: ord, Digest: sum.Digest}
		if err := enc.Encode(foot); err != nil {
			return nil, fmt.Errorf("core: writing merged footer: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return nil, fmt.Errorf("core: flushing merged stream: %w", err)
		}
	}
	return sum, nil
}
