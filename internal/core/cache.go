// The result cache's core face: content-addressed keys for runs and the
// CachingExecutor that consults a ResultCache before executing.
//
// Keys are "<version>/<kind>/<scenario>": the version digest pins the
// stack's semantic identity (exchange and action protocol by registered
// name, n, t, horizon) together with a build fingerprint, the kind
// separates sweep outcomes ("run") from the episteme checker's interned
// rows ("sys") and whole stripe indexes ("idx"), and the scenario
// digest pins the (pattern, inits) input.
// Any change to protocol code, configuration, or input lands on a
// different key and misses — the differential tests pin this. Payloads
// are digest-verified by the store (internal/cache); on top of that the
// executor validates the decoded payload against the scenario it is
// answering, so a corrupt or misfiled entry degrades to a recomputation,
// never to a wrong result. Spec checking happens OUTSIDE the cache: the
// payload carries the per-round actions, so spec.CheckRun judges cache
// hits exactly as it judges fresh runs, and spec options stay out of the
// key.

package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/model"
)

// ResultCache is the store the runner consults: Get misses on any
// failure (the caller recomputes), Put is best-effort persistence.
// internal/cache's Cache, Client, and Tiered all implement it.
type ResultCache interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte) error
}

// cacheSchema is folded into every version digest; bump it when the
// payload encoding changes incompatibly.
const cacheSchema = "eba-cache-v1"

// Cache payload kinds.
const (
	// CacheKindRun marks a sweep outcome (CachedRun without state keys).
	CacheKindRun = "run"
	// CacheKindSys marks an episteme row (CachedRun with the interned
	// state key of every (time, agent) slot).
	CacheKindSys = "sys"
	// CacheKindIndex marks a whole serialized episteme shard index: the
	// digest slot fingerprints the stripe parameters instead of a
	// scenario, and the payload is the WriteShardIndex serialization. A
	// hit skips the stripe's enumeration entirely — per-scenario "sys"
	// entries cannot, because probing them still walks (and for
	// quotiented sweeps, canonicalizes) every scenario.
	CacheKindIndex = "idx"
)

// VersionDigest fingerprints the stack's semantic identity for
// cache-key derivation: the payload schema, the exchange and action
// protocol by their registered names, n, t, the execution horizon, and
// the build fingerprint (internal/cache.Fingerprint or a caller-chosen
// tag). Two stacks share a digest exactly when a scenario must produce
// byte-identical outcomes under both.
func (s Stack) VersionDigest(fingerprint string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|ex=%s|act=%s|n=%d|t=%d|h=%d|bin=%s",
		cacheSchema, s.Exchange.Name(), s.Action.Name(), s.N, s.T, s.Horizon(), fingerprint)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// ScenarioDigest fingerprints one (pattern, inits) input. Quotient
// weights are deliberately excluded: the run's outcome does not depend
// on how many sweep scenarios the representative stands for, so
// quotiented and plain sweeps share entries.
func ScenarioDigest(pat *model.Pattern, inits []model.Value) (string, error) {
	text, err := pat.MarshalText()
	if err != nil {
		return "", fmt.Errorf("core: encoding pattern for cache key: %w", err)
	}
	h := sha256.New()
	h.Write(text)
	h.Write([]byte{'|'})
	for _, v := range inits {
		fmt.Fprintf(h, "%d,", int(v))
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16]), nil
}

// CacheKey assembles the full cache key. The format matches
// internal/cache.Key, so keys built here route through the shared cache
// server unchanged.
func CacheKey(versionDigest, kind, scenarioDigest string) string {
	return versionDigest + "/" + kind + "/" + scenarioDigest
}

// CachedRun is the cache payload of one completed run: the scenario
// restated (so a misfiled entry is detected on read), the observable
// outcome, and the per-round actions spec checking needs. For episteme
// entries StateKeys[m*n+i] additionally carries agent i's canonical
// state key at time m — the interning input — while sweep entries omit
// it. Full traces are never cached.
type CachedRun struct {
	Pattern   string       `json:"pattern"`
	Inits     []int        `json:"inits"`
	Decisions []int        `json:"decisions"`
	Rounds    []int        `json:"rounds"`
	Actions   [][]int      `json:"actions"`
	Stats     OutcomeStats `json:"stats"`
	StateKeys []string     `json:"stateKeys,omitempty"`
}

// NewCachedRun encodes a completed run. withStates selects the episteme
// form: the canonical key of every state in the trace, slot-major
// (slot = m*n + i). State keys are fresh strings (model.State.Key
// allocates), so the payload never aliases arena memory.
func NewCachedRun(res *engine.Result, withStates bool) (*CachedRun, error) {
	text, err := res.Pattern.MarshalText()
	if err != nil {
		return nil, fmt.Errorf("core: encoding pattern for cache payload: %w", err)
	}
	cr := &CachedRun{
		Pattern:   string(text),
		Inits:     make([]int, res.N),
		Decisions: make([]int, res.N),
		Rounds:    make([]int, res.N),
		Actions:   make([][]int, len(res.Actions)),
		Stats: OutcomeStats{
			MessagesSent:      res.Stats.MessagesSent,
			MessagesDelivered: res.Stats.MessagesDelivered,
			BitsSent:          res.Stats.BitsSent,
			BitsDelivered:     res.Stats.BitsDelivered,
		},
	}
	for i := 0; i < res.N; i++ {
		cr.Inits[i] = int(res.Inits[i])
		cr.Decisions[i] = int(res.Decision[i])
		cr.Rounds[i] = res.DecisionRound[i]
	}
	for m, acts := range res.Actions {
		row := make([]int, len(acts))
		for i, a := range acts {
			row[i] = int(a)
		}
		cr.Actions[m] = row
	}
	if withStates {
		cr.StateKeys = make([]string, (res.Horizon+1)*res.N)
		if len(res.States) != res.Horizon+1 {
			return nil, fmt.Errorf("core: caching a trace-free result as an episteme entry")
		}
		for m := 0; m <= res.Horizon; m++ {
			for i := 0; i < res.N; i++ {
				cr.StateKeys[m*res.N+i] = res.States[m][i].Key()
			}
		}
	}
	return cr, nil
}

// Matches reports whether the payload answers the given scenario with a
// well-formed outcome: the restated scenario must equal the asked one
// and every ledger must have the scenario's shape with in-range values
// (withStates additionally demands a full slot-major state-key table).
// Anything else is treated as a miss.
func (cr *CachedRun) Matches(patternText string, inits []model.Value, n, horizon int, withStates bool) bool {
	if cr.Pattern != patternText || len(cr.Inits) != n {
		return false
	}
	for i, v := range inits {
		if cr.Inits[i] != int(v) {
			return false
		}
	}
	if len(cr.Decisions) != n || len(cr.Rounds) != n || len(cr.Actions) != horizon {
		return false
	}
	for i := 0; i < n; i++ {
		if d := cr.Decisions[i]; d < int(model.None) || d > int(model.One) {
			return false
		}
		if r := cr.Rounds[i]; r < 0 || r > horizon {
			return false
		}
	}
	for _, row := range cr.Actions {
		if len(row) != n {
			return false
		}
		for _, a := range row {
			if a < int(model.Noop) || a > int(model.Decide1) {
				return false
			}
		}
	}
	if withStates && len(cr.StateKeys) != (horizon+1)*n {
		return false
	}
	return true
}

// Restore synthesizes the engine.Result a fresh execution of cfg would
// have produced, minus the state trace (States is nil — sweeps, spec
// checks, and the episteme index never read it on this path).
func (cr *CachedRun) Restore(cfg engine.Config) *engine.Result {
	n := cfg.Pattern.N()
	res := &engine.Result{
		N:             n,
		Horizon:       cfg.Horizon,
		Pattern:       cfg.Pattern,
		Inits:         append([]model.Value(nil), cfg.Inits...),
		Actions:       make([][]model.Action, len(cr.Actions)),
		Decision:      make([]model.Value, n),
		DecisionRound: make([]int, n),
		Stats: engine.Stats{
			MessagesSent:      cr.Stats.MessagesSent,
			MessagesDelivered: cr.Stats.MessagesDelivered,
			BitsSent:          cr.Stats.BitsSent,
			BitsDelivered:     cr.Stats.BitsDelivered,
		},
	}
	for i := 0; i < n; i++ {
		res.Decision[i] = model.Value(cr.Decisions[i])
		res.DecisionRound[i] = cr.Rounds[i]
	}
	for m, row := range cr.Actions {
		acts := make([]model.Action, n)
		for i, a := range row {
			acts[i] = model.Action(a)
		}
		res.Actions[m] = acts
	}
	return res
}

// CacheCounters snapshots a CachingExecutor's traffic.
type CacheCounters struct {
	// Hits is the number of runs answered from the cache.
	Hits int64
	// Misses is the number of runs that executed (and were stored).
	Misses int64
}

// CachingExecutor wraps an engine.Executor with a ResultCache lookup
// per scenario. A hit restores the run without executing; a miss
// executes on the wrapped substrate and stores the outcome best-effort
// (a full disk or unreachable server never fails the run). Restored
// runs are bit-identical to executed ones in everything a sweep or spec
// check observes, so caching — like sharding — can never change what a
// sweep reports.
type CachingExecutor struct {
	inner   engine.Executor
	cache   ResultCache
	version string
	hits    atomic.Int64
	misses  atomic.Int64
}

// NewCachingExecutor wraps the executor; version is the stack's
// VersionDigest.
func NewCachingExecutor(inner engine.Executor, cache ResultCache, version string) *CachingExecutor {
	return &CachingExecutor{inner: inner, cache: cache, version: version}
}

// Name identifies the substrate, wrapping the inner executor's name.
func (x *CachingExecutor) Name() string { return "cached(" + x.inner.Name() + ")" }

// Counters snapshots the executor's hit/miss traffic.
func (x *CachingExecutor) Counters() CacheCounters {
	return CacheCounters{Hits: x.hits.Load(), Misses: x.misses.Load()}
}

// Execute consults the cache, falling back to the wrapped executor.
func (x *CachingExecutor) Execute(cfg engine.Config, buf *engine.Buffers) (*engine.Result, error) {
	scDigest, err := ScenarioDigest(cfg.Pattern, cfg.Inits)
	if err != nil {
		// An unencodable pattern also fails execution; let the substrate
		// report it.
		return x.inner.Execute(cfg, buf)
	}
	key := CacheKey(x.version, CacheKindRun, scDigest)
	if payload, ok := x.cache.Get(key); ok {
		var cr CachedRun
		text, terr := cfg.Pattern.MarshalText()
		if terr == nil && json.Unmarshal(payload, &cr) == nil &&
			cr.Matches(string(text), cfg.Inits, cfg.Pattern.N(), cfg.Horizon, false) {
			x.hits.Add(1)
			return cr.Restore(cfg), nil
		}
		// Decodes but does not answer this scenario (or does not decode):
		// fall through, recompute, and overwrite the bad entry.
	}
	res, err := x.inner.Execute(cfg, buf)
	if err != nil {
		return nil, err
	}
	x.misses.Add(1)
	if cr, cerr := NewCachedRun(res, false); cerr == nil {
		if payload, jerr := json.Marshal(cr); jerr == nil {
			x.cache.Put(key, payload)
		}
	}
	return res, nil
}
