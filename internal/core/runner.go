// The Runner: one execution front-end for every substrate. A Runner binds
// a Stack to an engine.Executor (sequential engine or goroutine-per-agent
// runtime) and executes scenarios one at a time (Run), as an
// order-preserving parallel batch (RunBatch), or as a stream of outcomes
// (Stream over slices, StreamFrom/RunSource over lazy Sources — see
// stream.go). Batches fan out over a worker pool of WithParallelism(k)
// workers; each worker owns its own arena-backed engine.Buffers when
// WithBufferReuse is on, so the batch hot path allocates O(1) per round
// — including the exchanges' own allocations. Because
// every run is deterministic, parallel batches are bit-for-bit identical
// to sequential ones — a property the tests enforce.

package core

import (
	"context"
	"fmt"
	goruntime "runtime"

	"repro/internal/engine"
	"repro/internal/spec"
)

// Runner executes scenarios against one stack.
type Runner struct {
	stack       Stack
	exec        engine.Executor
	parallelism int
	specOpts    *spec.Options
	bufferReuse bool
	cache       ResultCache
	fingerprint string
}

// RunnerOption configures NewRunner.
type RunnerOption func(*Runner)

// WithExecutor selects the execution substrate (default
// engine.Sequential{}; runtime.Concurrent{} runs one goroutine per
// agent). Both substrates produce identical results.
func WithExecutor(x engine.Executor) RunnerOption {
	return func(r *Runner) { r.exec = x }
}

// WithParallelism sets the batch worker count (default 1, i.e. batches
// run sequentially). k <= 0 means one worker per available CPU. Results
// are independent of k: RunBatch and Stream preserve scenario order.
func WithParallelism(k int) RunnerOption {
	return func(r *Runner) {
		if k <= 0 {
			k = goruntime.GOMAXPROCS(0)
		}
		r.parallelism = k
	}
}

// WithSpecCheck verifies every completed run against the EBA
// specification of Section 5 with the given options. Violations are
// reported on the outcome; Run and RunBatch turn them into a *SpecError.
func WithSpecCheck(opts spec.Options) RunnerOption {
	return func(r *Runner) { r.specOpts = &opts }
}

// WithBufferReuse gives every batch worker a private arena-backed
// engine.Buffers reused across its runs: the engine's per-round matrices
// are recycled, and exchanges that implement model.BufferedExchange
// additionally draw their own per-round allocations (Efip's graph
// clones) from the worker's arena. Everything reachable from a returned
// Result is detached from the arena, so results outlive the workers
// safely; traces are bit-identical with or without reuse. This applies
// to Run, RunBatch, Stream, StreamFrom, and RunSource alike.
func WithBufferReuse() RunnerOption {
	return func(r *Runner) { r.bufferReuse = true }
}

// WithResultCache consults the cache before every execution: a hit
// restores the run without executing, a miss executes and stores the
// outcome. The fingerprint identifies the executing code (usually
// internal/cache.Fingerprint()) and is folded into the cache key
// together with the stack's full semantic identity, so a different
// build, protocol, or configuration can never be served a stale entry.
// Spec checking is unaffected: hits are judged exactly like fresh runs.
func WithResultCache(c ResultCache, fingerprint string) RunnerOption {
	return func(r *Runner) {
		r.cache = c
		r.fingerprint = fingerprint
	}
}

// NewRunner returns a Runner for the stack. With no options it runs
// scenarios one at a time on the sequential engine.
func NewRunner(stack Stack, opts ...RunnerOption) *Runner {
	r := &Runner{stack: stack, exec: engine.Sequential{}, parallelism: 1}
	for _, opt := range opts {
		opt(r)
	}
	// The cache wraps whatever substrate the options chose, so it
	// composes with WithExecutor in either option order.
	if r.cache != nil {
		r.exec = NewCachingExecutor(r.exec, r.cache, r.stack.VersionDigest(r.fingerprint))
	}
	return r
}

// Stack returns the stack the runner executes.
func (r *Runner) Stack() Stack { return r.stack }

// Executor returns the runner's execution substrate.
func (r *Runner) Executor() engine.Executor { return r.exec }

// RunOutcome is one completed (or failed) scenario of a Stream.
type RunOutcome struct {
	// Index is the scenario's position in the input slice.
	Index int
	// Scenario is the input that was run.
	Scenario Scenario
	// Result is the completed run; nil when Err is set.
	Result *engine.Result
	// Violations holds the EBA specification breaches found when
	// WithSpecCheck is on (also wrapped into Err as a *SpecError).
	Violations []spec.Violation
	// Err reports an execution error, a specification violation, or the
	// batch context's cancellation cause.
	Err error
}

// SpecError is the error Run and RunBatch return when WithSpecCheck finds
// violations in an otherwise successful run.
type SpecError struct {
	// Index is the offending scenario's position in the batch.
	Index int
	// Violations holds the specification breaches.
	Violations []spec.Violation
}

// Error describes the first violation.
func (e *SpecError) Error() string {
	return fmt.Sprintf("runner: scenario %d violates the EBA specification (%d violation(s), first: %v)",
		e.Index, len(e.Violations), e.Violations[0])
}

// Run executes one scenario.
func (r *Runner) Run(ctx context.Context, sc Scenario) (*engine.Result, error) {
	var buf *engine.Buffers
	if r.bufferReuse {
		buf = engine.NewArenaBuffers()
	}
	out := r.runOne(ctx, 0, sc, buf)
	if out.Err != nil {
		return nil, out.Err
	}
	return out.Result, nil
}

// RunBatch executes the scenarios over the runner's worker pool and
// returns their results in scenario order — result k corresponds to
// scenario k, so result sets of different stacks over the same scenario
// list correspond run-by-run (the correspondence the paper's dominance
// order is defined over). The first execution error, specification
// violation, or context cancellation aborts the batch: outstanding work
// is cancelled with that first error as the context cause, so workers
// stop promptly instead of draining the remaining scenarios.
func (r *Runner) RunBatch(ctx context.Context, scenarios []Scenario) ([]*engine.Result, error) {
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	out := make([]*engine.Result, len(scenarios))
	done := 0
	for oc := range r.Stream(ctx, scenarios) {
		if oc.Err != nil {
			cancel(oc.Err)
			return nil, oc.Err
		}
		out[oc.Index] = oc.Result
		done++
	}
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	if done != len(scenarios) {
		return nil, fmt.Errorf("runner: batch ended after %d of %d scenarios", done, len(scenarios))
	}
	return out, nil
}

// runOne executes one scenario, translating context cancellation,
// execution errors, and specification violations into the outcome.
func (r *Runner) runOne(ctx context.Context, idx int, sc Scenario, buf *engine.Buffers) RunOutcome {
	oc := RunOutcome{Index: idx, Scenario: sc}
	if ctx.Err() != nil {
		oc.Err = context.Cause(ctx)
		return oc
	}
	res, err := r.exec.Execute(r.stack.Config(sc.Pattern, sc.Inits), buf)
	if err != nil {
		oc.Err = fmt.Errorf("runner: scenario %d: %w", idx, err)
		return oc
	}
	oc.Result = res
	if r.specOpts != nil {
		if vs := spec.CheckRun(res, *r.specOpts); len(vs) > 0 {
			oc.Violations = vs
			oc.Err = &SpecError{Index: idx, Violations: vs}
		}
	}
	return oc
}
