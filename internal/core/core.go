// Package core assembles the paper's protocol stacks — an
// information-exchange protocol paired with the action protocol that is
// optimal with respect to it — and provides the high-level entry points
// the examples, benchmarks, and command-line tools are built on.
//
// Stacks are constructed by name through internal/registry, which is the
// single catalogue of exchanges, action protocols, and their valid
// pairings:
//
//	min      = ⟨Emin,  Pmin⟩      — n² bits per run, decides by t+2
//	basic    = ⟨Ebasic, Pbasic⟩    — O(n²t) bits, round 2 when failure-free
//	fip      = ⟨Efip,  Popt⟩      — O(n⁴t²) bits, optimal (Corollary 7.8)
//	fip+pmin = ⟨Efip,  Pmin⟩      — correct-but-dominated baseline
//	fip-nock = ⟨Efip,  Popt-nock⟩ — the common-knowledge ablation
//	naive    = ⟨Ereport, Pnaive⟩   — NOT an EBA protocol under omissions
//
// NewStack resolves a named pairing; Compose builds any registry-valid
// ⟨exchange, action⟩ pair, named after the registered stack it matches or
// "exchange+action" otherwise. Execution happens through a Runner (see
// runner.go), which batches scenarios over a sequential or concurrent
// executor.
package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/runtime"
)

// Stack is a complete protocol: an information-exchange protocol together
// with a matching action protocol and the failure bound they are
// configured for.
type Stack struct {
	// Name identifies the stack ("min", "basic", "fip", "fip+pmin",
	// "fip-nock", "naive", or "exchange+action" for ad-hoc pairings).
	Name string
	// Exchange is the information-exchange protocol E.
	Exchange model.Exchange
	// Action is the action protocol P.
	Action model.ActionProtocol
	// N is the number of agents, T the failure bound.
	N, T int

	// horizon, when positive, overrides the default t+2 execution horizon
	// (set with WithHorizon).
	horizon int
}

// Option configures NewStack and Compose.
type Option func(*stackConfig)

type stackConfig struct {
	n, t    int
	horizon int
}

// WithN sets the number of agents (default 5).
func WithN(n int) Option { return func(c *stackConfig) { c.n = n } }

// WithT sets the failure bound t (default 2).
func WithT(t int) Option { return func(c *stackConfig) { c.t = t } }

// WithHorizon overrides the stack's execution horizon (default t+2, the
// bound of Proposition 6.1 by which every EBA stack has decided).
func WithHorizon(h int) Option { return func(c *stackConfig) { c.horizon = h } }

// NewStack constructs a registered stack by name. The default
// configuration is n=5 agents with failure bound t=2; override with
// WithN, WithT, and WithHorizon.
func NewStack(name string, opts ...Option) (Stack, error) {
	info, err := registry.Stack(name)
	if err != nil {
		return Stack{}, err
	}
	s, err := Compose(info.Exchange, info.Action, opts...)
	if err != nil {
		return Stack{}, err
	}
	s.Name = info.Name
	return s, nil
}

// Compose constructs the stack pairing the named exchange with the named
// action protocol, validating the pairing against the registry. If the
// pair is a registered stack the result carries its canonical name;
// otherwise it is named "exchange+action".
func Compose(exchangeName, actionName string, opts ...Option) (Stack, error) {
	cfg := stackConfig{n: 5, t: 2}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.n <= 0 {
		return Stack{}, fmt.Errorf("core: %d agents; WithN requires n > 0", cfg.n)
	}
	if cfg.t < 0 {
		return Stack{}, fmt.Errorf("core: negative failure bound %d", cfg.t)
	}
	if cfg.horizon < 0 {
		return Stack{}, fmt.Errorf("core: negative horizon %d", cfg.horizon)
	}
	ex, act, err := registry.Compose(exchangeName, actionName, cfg.n, cfg.t)
	if err != nil {
		return Stack{}, err
	}
	name := exchangeName + "+" + actionName
	if info, ok := registry.StackFor(exchangeName, actionName); ok {
		name = info.Name
	}
	return Stack{Name: name, Exchange: ex, Action: act, N: cfg.n, T: cfg.t, horizon: cfg.horizon}, nil
}

// MustStack is NewStack for call sites where the name and configuration
// are compile-time constants and an error is a bug.
func MustStack(name string, opts ...Option) Stack {
	s, err := NewStack(name, opts...)
	if err != nil {
		panic("core: " + err.Error())
	}
	return s
}

// StackNames lists the registered stack names, sorted.
func StackNames() []string { return registry.StackNames() }

// Horizon is the number of rounds the stack executes for: the WithHorizon
// override if one was given, else t+2 — the bound after which every EBA
// stack has decided (Proposition 6.1).
func (s Stack) Horizon() int {
	if s.horizon > 0 {
		return s.horizon
	}
	return s.T + 2
}

// Config is the engine configuration for running the stack on a scenario.
func (s Stack) Config(pat *model.Pattern, inits []model.Value) engine.Config {
	return engine.Config{
		Exchange: s.Exchange,
		Action:   s.Action,
		Pattern:  pat,
		Inits:    inits,
		Horizon:  s.Horizon(),
	}
}

// Run executes the stack sequentially under the failure pattern with the
// given initial preferences.
func (s Stack) Run(pat *model.Pattern, inits []model.Value) (*engine.Result, error) {
	return engine.Run(s.Config(pat, inits))
}

// RunConcurrent executes the stack with one goroutine per agent; the
// result is identical to Run's.
func (s Stack) RunConcurrent(pat *model.Pattern, inits []model.Value) (*engine.Result, error) {
	return runtime.Run(s.Config(pat, inits))
}

// AtHorizon returns a copy of the stack whose execution horizon is h
// (h <= 0 restores the default t+2). It lets callers that assemble a
// Stack literally — rather than through NewStack — run at a non-default
// horizon; the episteme model checker drives its enumerations through
// this.
func (s Stack) AtHorizon(h int) Stack {
	if h < 0 {
		h = 0
	}
	s.horizon = h
	return s
}

// Scenario is one (pattern, inits) input shared by corresponding runs.
type Scenario struct {
	// Pattern is the failure pattern.
	Pattern *model.Pattern
	// Inits holds the initial preferences.
	Inits []model.Value
	// Weight is the number of sweep scenarios this one stands for: 1 for
	// an ordinary enumeration, the orbit size for the representative of a
	// symmetry-quotiented sweep (source.Quotient). Zero means 1, so plain
	// sources need not set it.
	Weight int64
}

// EffectiveWeight is Weight with the zero-means-one default applied.
func (s Scenario) EffectiveWeight() int64 {
	if s.Weight <= 0 {
		return 1
	}
	return s.Weight
}
