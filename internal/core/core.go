// Package core assembles the paper's protocol stacks — an
// information-exchange protocol paired with the action protocol that is
// optimal with respect to it — and provides the high-level entry points
// the examples, benchmarks, and command-line tools are built on.
//
// The three stacks of the paper:
//
//	Min(n, t)   = ⟨Emin(n),  P_min⟩   — n² bits per run, decides by t+2
//	Basic(n, t) = ⟨Ebasic(n), P_basic⟩ — O(n²t) bits, round 2 when failure-free
//	FIP(n, t)   = ⟨Efip(n),  P_opt⟩   — O(n⁴t²) bits, optimal (Corollary 7.8)
//
// plus Naive(n, t), the introduction's counterexample protocol over the
// report exchange, which is NOT an EBA protocol under omission failures.
package core

import (
	"fmt"

	"repro/internal/action"
	"repro/internal/engine"
	"repro/internal/episteme"
	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/runtime"
)

// Stack is a complete protocol: an information-exchange protocol together
// with a matching action protocol and the failure bound they are
// configured for.
type Stack struct {
	// Name identifies the stack ("min", "basic", "fip", "naive").
	Name string
	// Exchange is the information-exchange protocol E.
	Exchange model.Exchange
	// Action is the action protocol P.
	Action model.ActionProtocol
	// N is the number of agents, T the failure bound.
	N, T int
}

// Min returns the minimal stack ⟨Emin(n), P_min⟩ of Section 6.
func Min(n, t int) Stack {
	return Stack{Name: "min", Exchange: exchange.NewMin(n), Action: action.NewMin(t), N: n, T: t}
}

// Basic returns the basic stack ⟨Ebasic(n), P_basic⟩ of Section 6.
func Basic(n, t int) Stack {
	return Stack{Name: "basic", Exchange: exchange.NewBasic(n), Action: action.NewBasic(n), N: n, T: t}
}

// FIP returns the full-information stack ⟨Efip(n), P_opt⟩ of Section 7.
func FIP(n, t int) Stack {
	return Stack{Name: "fip", Exchange: exchange.NewFIP(n), Action: action.NewOpt(t), N: n, T: t}
}

// FIPWithMin returns ⟨Efip(n), P_min⟩: the full-information exchange
// driven by the minimal decision rule. It pays full-information message
// costs without the optimal decision times — used by the complexity
// benchmarks to measure exchange cost independently of P_opt's compute,
// and by the optimality experiments as a correct-but-dominated baseline.
func FIPWithMin(n, t int) Stack {
	return Stack{Name: "fip+pmin", Exchange: exchange.NewFIP(n), Action: action.NewMin(t), N: n, T: t}
}

// FIPNoCK returns the ablated full-information stack ⟨Efip(n),
// P_opt-without-common-knowledge⟩: an implementation of P0 over full
// information. Correct but not optimal; experiment E15 quantifies what
// the common-knowledge guards buy.
func FIPNoCK(n, t int) Stack {
	return Stack{Name: "fip-nock", Exchange: exchange.NewFIP(n), Action: action.NewOptNoCK(t), N: n, T: t}
}

// Naive returns the introduction's counterexample stack ⟨Ereport(n),
// P_naive⟩, which violates Agreement under omission failures.
func Naive(n, t int) Stack {
	return Stack{Name: "naive", Exchange: exchange.NewReport(n), Action: action.NewNaive(t), N: n, T: t}
}

// Horizon is the number of rounds after which every EBA stack has decided:
// t+2 (Proposition 6.1).
func (s Stack) Horizon() int { return s.T + 2 }

// Run executes the stack sequentially under the failure pattern with the
// given initial preferences.
func (s Stack) Run(pat *model.Pattern, inits []model.Value) (*engine.Result, error) {
	return engine.Run(engine.Config{
		Exchange: s.Exchange,
		Action:   s.Action,
		Pattern:  pat,
		Inits:    inits,
		Horizon:  s.Horizon(),
	})
}

// RunConcurrent executes the stack with one goroutine per agent; the
// result is identical to Run's.
func (s Stack) RunConcurrent(pat *model.Pattern, inits []model.Value) (*engine.Result, error) {
	return runtime.Run(engine.Config{
		Exchange: s.Exchange,
		Action:   s.Action,
		Pattern:  pat,
		Inits:    inits,
		Horizon:  s.Horizon(),
	})
}

// EpistemeContext returns the model-checking context for the stack's EBA
// context (exhaustive SO(T) enumeration at horizon T+2).
func (s Stack) EpistemeContext() episteme.Context {
	return episteme.Context{Exchange: s.Exchange, T: s.T, Horizon: s.Horizon()}
}

// BuildSystem builds the stack's interpreted system by exhaustive
// enumeration (small n and t only).
func (s Stack) BuildSystem() (*episteme.System, error) {
	return episteme.BuildSystem(s.EpistemeContext(), s.Action)
}

// Scenario is one (pattern, inits) input shared by corresponding runs.
type Scenario struct {
	// Pattern is the failure pattern.
	Pattern *model.Pattern
	// Inits holds the initial preferences.
	Inits []model.Value
}

// RunScenarios executes the stack on each scenario, preserving order, so
// that the result sets of two stacks correspond run-by-run.
func (s Stack) RunScenarios(scenarios []Scenario) ([]*engine.Result, error) {
	out := make([]*engine.Result, len(scenarios))
	for k, sc := range scenarios {
		res, err := s.Run(sc.Pattern, sc.Inits)
		if err != nil {
			return nil, fmt.Errorf("core: scenario %d: %w", k, err)
		}
		out[k] = res
	}
	return out, nil
}
