package core

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
)

// countingSource wraps a slice behind the Source interface and records how
// many scenarios have been pulled, so tests can assert the dispatcher
// never runs unboundedly ahead of emission.
type countingSource struct {
	mu        sync.Mutex
	scenarios []Scenario
	pulled    int
}

func (s *countingSource) Next() (Scenario, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pulled >= len(s.scenarios) {
		return Scenario{}, false
	}
	sc := s.scenarios[s.pulled]
	s.pulled++
	return sc, true
}

func (s *countingSource) Count() (int64, bool) { return int64(len(s.scenarios)), true }

func (s *countingSource) pulledSoFar() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pulled
}

// gateExecutor blocks the run of one scenario — identified by its Pattern
// pointer — until released, forcing out-of-order completion; every other
// scenario runs immediately.
type gateExecutor struct {
	inner   engine.Executor
	target  *model.Pattern
	release chan struct{}
}

func (g *gateExecutor) Name() string { return "gate" }

func (g *gateExecutor) Execute(cfg engine.Config, buf *engine.Buffers) (*engine.Result, error) {
	if cfg.Pattern == g.target {
		<-g.release
	}
	return g.inner.Execute(cfg, buf)
}

// streamScenarios builds count failure-free scenarios whose initial
// vectors encode their index in binary. Every scenario owns a distinct
// Pattern object, so tests can gate on one by pointer identity.
func streamScenarios(n, horizon, count int) []Scenario {
	out := make([]Scenario, count)
	for k := range out {
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value((k >> i) & 1)
		}
		out[k] = Scenario{Pattern: model.NewPattern(n, horizon), Inits: inits}
	}
	return out
}

// TestStreamFromMatchesStream checks the source-driven ordered stream is
// outcome-for-outcome identical to the eager slice stream.
func TestStreamFromMatchesStream(t *testing.T) {
	st := MustStack("basic", WithN(4), WithT(1))
	scenarios := randomScenarios(9, 4, 1, 24)
	runner := NewRunner(st, WithParallelism(4), WithBufferReuse())

	var fromSlice []RunOutcome
	for oc := range runner.Stream(context.Background(), scenarios) {
		fromSlice = append(fromSlice, oc)
	}
	var fromSource []RunOutcome
	for oc := range runner.StreamFrom(context.Background(), &countingSource{scenarios: scenarios}) {
		fromSource = append(fromSource, oc)
	}
	if len(fromSlice) != len(scenarios) || len(fromSource) != len(scenarios) {
		t.Fatalf("emitted %d (slice) / %d (source) outcomes, want %d", len(fromSlice), len(fromSource), len(scenarios))
	}
	for k := range fromSlice {
		if fromSlice[k].Index != k || fromSource[k].Index != k {
			t.Fatalf("outcome %d out of order", k)
		}
		if fromSlice[k].Err != nil || fromSource[k].Err != nil {
			t.Fatalf("outcome %d failed: %v / %v", k, fromSlice[k].Err, fromSource[k].Err)
		}
		assertSameRun(t, fmt.Sprintf("outcome %d", k), fromSlice[k].Result, fromSource[k].Result)
	}
}

// TestRunSourceMatchesRunBatch checks the batch entry points agree.
func TestRunSourceMatchesRunBatch(t *testing.T) {
	st := MustStack("min", WithN(4), WithT(1))
	scenarios := randomScenarios(17, 4, 1, 16)
	runner := NewRunner(st, WithParallelism(3), WithBufferReuse())
	batch, err := runner.RunBatch(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	sourced, err := runner.RunSource(context.Background(), &countingSource{scenarios: scenarios})
	if err != nil {
		t.Fatal(err)
	}
	if len(sourced) != len(batch) {
		t.Fatalf("RunSource returned %d results, RunBatch %d", len(sourced), len(batch))
	}
	for k := range batch {
		assertSameRun(t, fmt.Sprintf("result %d", k), batch[k], sourced[k])
	}
}

// TestStreamFromBoundedWindow holds the head scenario hostage and checks
// the dispatcher stops pulling from the source once the reordering window
// is full — the memory bound that lets unbounded sweeps stream.
func TestStreamFromBoundedWindow(t *testing.T) {
	const n, window, count = 4, 4, 64
	st := MustStack("min", WithN(n), WithT(1))
	scenarios := streamScenarios(n, st.Horizon(), count)
	gate := &gateExecutor{inner: engine.Sequential{}, target: scenarios[0].Pattern, release: make(chan struct{})}
	src := &countingSource{scenarios: scenarios}
	runner := NewRunner(st, WithExecutor(gate), WithParallelism(2))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := runner.StreamFrom(ctx, src, WithWindow(window))

	// With scenario 0 blocked nothing can be emitted, so the dispatcher
	// must stall after pulling at most `window` scenarios. Give the
	// workers ample time to overrun if the bound is broken.
	deadline := time.After(2 * time.Second)
	for src.pulledSoFar() < window {
		select {
		case <-deadline:
			t.Fatalf("dispatcher stalled early: pulled %d of window %d", src.pulledSoFar(), window)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if got := src.pulledSoFar(); got > window {
		t.Fatalf("dispatcher pulled %d scenarios with the head blocked, window is %d", got, window)
	}

	close(gate.release)
	seen := 0
	for oc := range out {
		if oc.Err != nil {
			t.Fatalf("outcome %d: %v", oc.Index, oc.Err)
		}
		if oc.Index != seen {
			t.Fatalf("ordered stream emitted index %d, want %d", oc.Index, seen)
		}
		seen++
	}
	if seen != count {
		t.Fatalf("stream emitted %d outcomes, want %d", seen, count)
	}
}

// TestStreamFromCompletionOrder blocks the head scenario and checks the
// completion-order stream still delivers every other outcome first, each
// exactly once — no head-of-line blocking, no reordering buffer.
func TestStreamFromCompletionOrder(t *testing.T) {
	const n, count = 4, 16
	st := MustStack("min", WithN(n), WithT(1))
	scenarios := streamScenarios(n, st.Horizon(), count)
	gate := &gateExecutor{inner: engine.Sequential{}, target: scenarios[0].Pattern, release: make(chan struct{})}
	src := &countingSource{scenarios: scenarios}
	runner := NewRunner(st, WithExecutor(gate), WithParallelism(2))

	out := runner.StreamFrom(context.Background(), src, WithCompletionOrder())
	seen := make(map[int]int)
	emitted := 0
	for oc := range out {
		if oc.Err != nil {
			t.Fatalf("outcome %d: %v", oc.Index, oc.Err)
		}
		seen[oc.Index]++
		emitted++
		// Index 0 is gated: it must not appear until everything else has
		// been emitted and the gate opens.
		if emitted == count-1 {
			if seen[0] != 0 {
				t.Fatal("gated scenario emitted before the gate opened")
			}
			close(gate.release)
		}
	}
	if emitted != count {
		t.Fatalf("stream emitted %d outcomes, want %d", emitted, count)
	}
	for k := 0; k < count; k++ {
		if seen[k] != 1 {
			t.Fatalf("outcome %d emitted %d times, want exactly once", k, seen[k])
		}
	}
}

// TestStreamFromEmptySource checks empty sources and slices close the
// channel immediately with no outcomes.
func TestStreamFromEmptySource(t *testing.T) {
	st := MustStack("min", WithN(3), WithT(1))
	runner := NewRunner(st, WithParallelism(4))
	for name, ch := range map[string]<-chan RunOutcome{
		"empty source": runner.StreamFrom(context.Background(), &countingSource{}),
		"empty slice":  runner.Stream(context.Background(), nil),
	} {
		select {
		case oc, ok := <-ch:
			if ok {
				t.Fatalf("%s emitted outcome %d", name, oc.Index)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s did not close", name)
		}
	}
}

// TestStreamFromCancelLeaksNoGoroutines cancels streams mid-flight and
// checks the worker pools wind down completely.
func TestStreamFromCancelLeaksNoGoroutines(t *testing.T) {
	st := MustStack("fip", WithN(5), WithT(2))
	scenarios := randomScenarios(31, 5, 2, 400)
	before := goruntime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		src := &countingSource{scenarios: scenarios}
		seen := 0
		for range NewRunner(st, WithParallelism(4)).StreamFrom(ctx, src) {
			seen++
			if seen == 3 {
				cancel()
			}
		}
		cancel()
		if seen >= len(scenarios) {
			t.Fatal("stream ran to completion despite cancellation")
		}
	}
	// The pools shut down asynchronously after the output channel closes;
	// poll briefly before declaring a leak.
	deadline := time.After(5 * time.Second)
	for {
		goruntime.GC()
		if goruntime.NumGoroutine() <= before+2 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked: %d before, %d after", before, goruntime.NumGoroutine())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestCancellationCausePropagates checks outcomes and batch errors carry
// the batch context's cancellation cause, as RunOutcome.Err documents.
func TestCancellationCausePropagates(t *testing.T) {
	st := MustStack("min", WithN(4), WithT(1))
	cause := errors.New("sweep preempted by operator")

	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if _, err := NewRunner(st).Run(ctx, Scenario{
		Pattern: model.NewPattern(4, st.Horizon()),
		Inits:   make([]model.Value, 4),
	}); !errors.Is(err, cause) {
		t.Fatalf("Run on cause-cancelled context = %v, want %v", err, cause)
	}

	ctx, cancel = context.WithCancelCause(context.Background())
	cancel(cause)
	if _, err := NewRunner(st, WithParallelism(2)).
		RunBatch(ctx, streamScenarios(4, st.Horizon(), 8)); !errors.Is(err, cause) {
		t.Fatalf("RunBatch on cause-cancelled context = %v, want %v", err, cause)
	}

	// Plain cancellation still surfaces as context.Canceled.
	plain, cancelPlain := context.WithCancel(context.Background())
	cancelPlain()
	if _, err := NewRunner(st).RunBatch(plain, streamScenarios(4, st.Horizon(), 4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBatch on cancelled context = %v, want context.Canceled", err)
	}
}

// failingExecutor errors on the scenario whose inits encode failAt and
// counts every Execute call, so tests can assert how much work ran.
type failingExecutor struct {
	inner  engine.Executor
	failAt int
	err    error
	calls  atomic.Int64
}

func (f *failingExecutor) Name() string { return "failing" }

func (f *failingExecutor) Execute(cfg engine.Config, buf *engine.Buffers) (*engine.Result, error) {
	f.calls.Add(1)
	idx := 0
	for i, v := range cfg.Inits {
		idx |= int(v) << i
	}
	if idx == f.failAt {
		return nil, f.err
	}
	return f.inner.Execute(cfg, buf)
}

// TestRunSourceFailsFast pins the fail-fast contract that replaced the
// episteme model checker's private worker pool (whose workers kept
// draining the whole configuration list after the first engine error):
// the first execution error cancels outstanding work via the context
// cause, so the source stops being pulled and the pool stops executing
// long before the sweep is exhausted.
func TestRunSourceFailsFast(t *testing.T) {
	const total, failAt, workers = 512, 5, 4
	st := MustStack("min", WithN(10), WithT(0))
	boom := errors.New("boom")
	exec := &failingExecutor{inner: engine.Sequential{}, failAt: failAt, err: boom}
	src := &countingSource{scenarios: streamScenarios(10, 2, total)}
	runner := NewRunner(st, WithExecutor(exec), WithParallelism(workers))

	_, err := runner.RunSource(context.Background(), src)
	if !errors.Is(err, boom) {
		t.Fatalf("RunSource error = %v, want the executor's error", err)
	}
	// The ordered stream may have dispatched up to a reordering window of
	// scenarios beyond the failure before the error was emitted; anything
	// close to the full sweep means cancellation did not propagate.
	window := 2 * workers
	bound := failAt + 2*window + workers + 1
	if got := exec.calls.Load(); int(got) > bound {
		t.Errorf("executor ran %d scenarios after a failure at %d (bound %d): fail-slow", got, failAt, bound)
	}
	if pulled := src.pulledSoFar(); pulled > bound {
		t.Errorf("source was pulled %d times after a failure at %d (bound %d)", pulled, failAt, bound)
	}
}

// TestRunBatchCancelsWithCause checks RunBatch cancels outstanding work
// with the first error as the context cause.
func TestRunBatchCancelsWithCause(t *testing.T) {
	const total, failAt = 256, 3
	st := MustStack("min", WithN(10), WithT(0))
	boom := errors.New("boom")
	exec := &failingExecutor{inner: engine.Sequential{}, failAt: failAt, err: boom}
	runner := NewRunner(st, WithExecutor(exec), WithParallelism(4))

	_, err := runner.RunBatch(context.Background(), streamScenarios(10, 2, total))
	if !errors.Is(err, boom) {
		t.Fatalf("RunBatch error = %v, want the executor's error", err)
	}
	if got := exec.calls.Load(); got > total/2 {
		t.Errorf("executor ran %d of %d scenarios after an early failure: fail-slow", got, total)
	}
}

// brokenSource is an ErrorSource that fails mid-stream after yielding
// good scenarios — the shape of a shard reader whose pipe breaks.
type brokenSource struct {
	scenarios []Scenario
	breakAt   int
	next      int
	err       error
}

func (s *brokenSource) Next() (Scenario, bool) {
	if s.next >= s.breakAt {
		return Scenario{}, false
	}
	sc := s.scenarios[s.next]
	s.next++
	return sc, true
}

func (s *brokenSource) Count() (int64, bool) { return 0, false }

func (s *brokenSource) Err() error {
	if s.next >= s.breakAt {
		return s.err
	}
	return nil
}

// TestStreamFromCompletionOrderSourceFailureCause is the PR 5 regression
// test: a source that fails mid-stream (a failed shard reader) must
// surface its error as the stream's cancellation cause — on the final
// outcome and on any outcome cancelled in flight — never as a bare
// context.Canceled, matching the PR 2/3 fail-fast semantics.
func TestStreamFromCompletionOrderSourceFailureCause(t *testing.T) {
	const n = 4
	st := MustStack("min", WithN(n), WithT(1))
	readErr := errors.New("shard reader: stream truncated after 7 records (no footer)")
	src := &brokenSource{scenarios: streamScenarios(n, st.Horizon(), 16), breakAt: 7, err: readErr}
	runner := NewRunner(st, WithParallelism(2))

	sawCause := false
	for oc := range runner.StreamFrom(context.Background(), src, WithCompletionOrder()) {
		if oc.Err == nil {
			continue
		}
		if errors.Is(oc.Err, context.Canceled) && !errors.Is(oc.Err, readErr) {
			t.Fatalf("outcome %d carries bare context.Canceled instead of the source's error", oc.Index)
		}
		if errors.Is(oc.Err, readErr) {
			sawCause = true
			if oc.Index == -1 && oc.Result != nil {
				t.Fatal("stream-failure outcome carries a result")
			}
		}
	}
	if !sawCause {
		t.Fatal("completion-order stream swallowed the failed source's error")
	}
}

// TestStreamFromOrderedSourceFailureCause checks the ordered path
// surfaces a failed source the same way, and that RunSource — which
// rides it — returns the source's error rather than succeeding on the
// truncated prefix.
func TestStreamFromOrderedSourceFailureCause(t *testing.T) {
	const n = 4
	st := MustStack("min", WithN(n), WithT(1))
	readErr := errors.New("shard reader: ordinal 12 does not belong to this stripe")
	mk := func() *brokenSource {
		return &brokenSource{scenarios: streamScenarios(n, st.Horizon(), 16), breakAt: 5, err: readErr}
	}

	sawCause := false
	for oc := range NewRunner(st, WithParallelism(2)).StreamFrom(context.Background(), mk()) {
		if oc.Err != nil && errors.Is(oc.Err, readErr) {
			sawCause = true
		}
	}
	if !sawCause {
		t.Fatal("ordered stream swallowed the failed source's error")
	}

	if _, err := NewRunner(st, WithParallelism(2)).RunSource(context.Background(), mk()); !errors.Is(err, readErr) {
		t.Fatalf("RunSource over a failing source = %v, want the source's error", err)
	}
}

// TestStreamFromExternalCancelNoSyntheticOutcome checks the new
// stream-failure outcome is reserved for source failures: externally
// cancelled streams end as before, with the caller's cause on ordinary
// outcomes only.
func TestStreamFromExternalCancelNoSyntheticOutcome(t *testing.T) {
	st := MustStack("min", WithN(4), WithT(1))
	cause := errors.New("operator preempted the sweep")
	ctx, cancel := context.WithCancelCause(context.Background())
	src := &countingSource{scenarios: streamScenarios(4, st.Horizon(), 64)}
	seen := 0
	for oc := range NewRunner(st, WithParallelism(2)).StreamFrom(ctx, src, WithCompletionOrder()) {
		seen++
		if seen == 3 {
			cancel(cause)
		}
		if oc.Index == -1 {
			t.Fatal("external cancellation produced a synthetic stream-failure outcome")
		}
		if oc.Err != nil && !errors.Is(oc.Err, cause) {
			t.Fatalf("outcome %d error = %v, want the caller's cause", oc.Index, oc.Err)
		}
	}
	if seen >= 64 {
		t.Fatal("stream ran to completion despite cancellation")
	}
	cancel(nil)
}
