package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/model"
	"repro/internal/spec"
)

func TestStackConstructors(t *testing.T) {
	cases := []struct {
		stack Stack
		name  string
	}{
		{Min(4, 1), "min"},
		{Basic(4, 1), "basic"},
		{FIP(4, 1), "fip"},
		{FIPWithMin(4, 1), "fip+pmin"},
		{Naive(4, 1), "naive"},
	}
	for _, c := range cases {
		if c.stack.Name != c.name {
			t.Errorf("stack name %q, want %q", c.stack.Name, c.name)
		}
		if c.stack.N != 4 || c.stack.T != 1 || c.stack.Horizon() != 3 {
			t.Errorf("%s: unexpected dims n=%d t=%d h=%d", c.name, c.stack.N, c.stack.T, c.stack.Horizon())
		}
	}
}

func TestStackRunAndConcurrentAgree(t *testing.T) {
	for _, mk := range []func(int, int) Stack{Min, Basic, FIP} {
		st := mk(4, 1)
		pat := adversary.Silent(4, st.Horizon(), 2)
		inits := []model.Value{model.One, model.Zero, model.One, model.One}
		seq, err := st.Run(pat, inits)
		if err != nil {
			t.Fatal(err)
		}
		conc, err := st.RunConcurrent(pat, inits)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			id := model.AgentID(i)
			if seq.Decided(id) != conc.Decided(id) || seq.Round(id) != conc.Round(id) {
				t.Errorf("%s: sequential and concurrent runs disagree for agent %d", st.Name, i)
			}
		}
		if vs := spec.CheckRun(seq, spec.Options{RoundBound: st.Horizon()}); len(vs) != 0 {
			t.Errorf("%s: EBA violations: %v", st.Name, vs)
		}
	}
}

func TestRunScenariosPreservesOrder(t *testing.T) {
	st := Min(3, 1)
	scenarios := []Scenario{
		{Pattern: adversary.FailureFree(3, st.Horizon()), Inits: adversary.UniformInits(3, model.One)},
		{Pattern: adversary.Silent(3, st.Horizon(), 0), Inits: adversary.UniformInits(3, model.Zero)},
	}
	runs, err := st.RunScenarios(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs", len(runs))
	}
	if runs[0].Decided(0) != model.One || runs[1].Decided(1) != model.Zero {
		t.Error("scenario order not preserved")
	}
}

func TestRunScenariosPropagatesError(t *testing.T) {
	st := Min(3, 1)
	scenarios := []Scenario{
		{Pattern: adversary.FailureFree(4, 3), Inits: adversary.UniformInits(3, model.One)},
	}
	if _, err := st.RunScenarios(scenarios); err == nil {
		t.Error("size mismatch not reported")
	}
}

func TestAtHorizon(t *testing.T) {
	st := Min(3, 1)
	if got := st.Horizon(); got != 3 {
		t.Fatalf("default horizon %d, want t+2 = 3", got)
	}
	if got := st.AtHorizon(5).Horizon(); got != 5 {
		t.Errorf("AtHorizon(5).Horizon() = %d, want 5", got)
	}
	if got := st.AtHorizon(5).AtHorizon(0).Horizon(); got != 3 {
		t.Errorf("AtHorizon(0) did not restore the default: got %d, want 3", got)
	}
	if got := st.AtHorizon(-1).Horizon(); got != 3 {
		t.Errorf("AtHorizon(-1) should clamp to the default: got %d, want 3", got)
	}
}
