package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/model"
	"repro/internal/spec"
)

func TestStackConstructors(t *testing.T) {
	cases := []struct {
		stack Stack
		name  string
	}{
		{MustStack("min", WithN(4), WithT(1)), "min"},
		{MustStack("basic", WithN(4), WithT(1)), "basic"},
		{MustStack("fip", WithN(4), WithT(1)), "fip"},
		{MustStack("fip+pmin", WithN(4), WithT(1)), "fip+pmin"},
		{MustStack("naive", WithN(4), WithT(1)), "naive"},
	}
	for _, c := range cases {
		if c.stack.Name != c.name {
			t.Errorf("stack name %q, want %q", c.stack.Name, c.name)
		}
		if c.stack.N != 4 || c.stack.T != 1 || c.stack.Horizon() != 3 {
			t.Errorf("%s: unexpected dims n=%d t=%d h=%d", c.name, c.stack.N, c.stack.T, c.stack.Horizon())
		}
	}
}

func TestStackRunAndConcurrentAgree(t *testing.T) {
	for _, name := range []string{"min", "basic", "fip"} {
		st := MustStack(name, WithN(4), WithT(1))
		pat := adversary.Silent(4, st.Horizon(), 2)
		inits := []model.Value{model.One, model.Zero, model.One, model.One}
		seq, err := st.Run(pat, inits)
		if err != nil {
			t.Fatal(err)
		}
		conc, err := st.RunConcurrent(pat, inits)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			id := model.AgentID(i)
			if seq.Decided(id) != conc.Decided(id) || seq.Round(id) != conc.Round(id) {
				t.Errorf("%s: sequential and concurrent runs disagree for agent %d", st.Name, i)
			}
		}
		if vs := spec.CheckRun(seq, spec.Options{RoundBound: st.Horizon()}); len(vs) != 0 {
			t.Errorf("%s: EBA violations: %v", st.Name, vs)
		}
	}
}

func TestAtHorizon(t *testing.T) {
	st := MustStack("min", WithN(3), WithT(1))
	if got := st.Horizon(); got != 3 {
		t.Fatalf("default horizon %d, want t+2 = 3", got)
	}
	if got := st.AtHorizon(5).Horizon(); got != 5 {
		t.Errorf("AtHorizon(5).Horizon() = %d, want 5", got)
	}
	if got := st.AtHorizon(5).AtHorizon(0).Horizon(); got != 3 {
		t.Errorf("AtHorizon(0) did not restore the default: got %d, want 3", got)
	}
	if got := st.AtHorizon(-1).Horizon(); got != 3 {
		t.Errorf("AtHorizon(-1) should clamp to the default: got %d, want 3", got)
	}
}
