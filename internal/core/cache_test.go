package core

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/spec"
)

// mapStore is an in-memory ResultCache for tests.
type mapStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

func (s *mapStore) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), val...)
	return nil
}

func (s *mapStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// uniqueScenarios draws random scenarios and drops repeats, so a cold
// run never hits an entry stored moments earlier by a duplicate.
func uniqueScenarios(t *testing.T, seed int64, n, tf, count int) []Scenario {
	t.Helper()
	seen := make(map[string]bool)
	var out []Scenario
	for draw := 0; len(out) < count && draw < 64; draw++ {
		for _, sc := range randomScenarios(seed+int64(draw)*1000, n, tf, count) {
			digest, err := ScenarioDigest(sc.Pattern, sc.Inits)
			if err != nil {
				t.Fatal(err)
			}
			if !seen[digest] {
				seen[digest] = true
				out = append(out, sc)
				if len(out) == count {
					break
				}
			}
		}
	}
	if len(out) != count {
		t.Fatalf("collected %d unique scenarios, want %d", len(out), count)
	}
	return out
}

// TestCacheWarmShardByteIdentical is the tentpole invariant: a warm
// sweep writes a byte-identical stream while executing nothing, with
// quotient multiplicities preserved.
func TestCacheWarmShardByteIdentical(t *testing.T) {
	st := MustStack("basic", WithN(4), WithT(1))
	scenarios := uniqueScenarios(t, 11, 4, 1, 24)
	// Give some scenarios quotient weights: the cache must preserve Mult
	// even though the cached payload is weight-independent.
	for k := range scenarios {
		if k%3 == 0 {
			scenarios[k].Weight = int64(2 + k)
		}
	}
	store := newMapStore()

	cold := NewRunner(st, WithParallelism(4), WithBufferReuse(), WithResultCache(store, "test-build"))
	sumCold, streamCold := runShardStream(t, cold, scenarios, 0, 1)
	if sumCold.Executed != sumCold.Records || sumCold.CacheHits != 0 {
		t.Fatalf("cold summary executed=%d hits=%d records=%d", sumCold.Executed, sumCold.CacheHits, sumCold.Records)
	}
	if store.len() != len(scenarios) {
		t.Fatalf("cold run stored %d entries, want %d", store.len(), len(scenarios))
	}

	warm := NewRunner(st, WithParallelism(4), WithBufferReuse(), WithResultCache(store, "test-build"))
	sumWarm, streamWarm := runShardStream(t, warm, scenarios, 0, 1)
	if sumWarm.Executed != 0 || sumWarm.CacheHits != sumWarm.Records {
		t.Fatalf("warm summary executed=%d hits=%d records=%d", sumWarm.Executed, sumWarm.CacheHits, sumWarm.Records)
	}
	if !bytes.Equal(streamCold, streamWarm) {
		t.Fatal("warm stream differs from cold stream")
	}

	// A cache-free runner agrees too — caching never changes the stream.
	plain := NewRunner(st, WithParallelism(4), WithBufferReuse())
	sumPlain, streamPlain := runShardStream(t, plain, scenarios, 0, 1)
	if sumPlain.Executed != sumPlain.Records || sumPlain.CacheHits != 0 {
		t.Fatalf("plain summary executed=%d hits=%d records=%d", sumPlain.Executed, sumPlain.CacheHits, sumPlain.Records)
	}
	if !bytes.Equal(streamCold, streamPlain) {
		t.Fatal("cached stream differs from the uncached stream")
	}
}

// TestCacheVersionDigestDifferential pins the key-sensitivity contract:
// every semantic change — exchange, action protocol, n, t, horizon, or
// the build fingerprint — lands on a different version digest.
func TestCacheVersionDigestDifferential(t *testing.T) {
	base := MustStack("basic", WithN(4), WithT(1))
	ref := base.VersionDigest("fp")
	variants := map[string]string{
		"exchange+action": MustStack("min", WithN(4), WithT(1)).VersionDigest("fp"),
		"action only":     MustStack("fip", WithN(4), WithT(1)).VersionDigest("fp"),
		"vs fip+pmin":     MustStack("fip+pmin", WithN(4), WithT(1)).VersionDigest("fp"),
		"n":               MustStack("basic", WithN(5), WithT(1)).VersionDigest("fp"),
		"t (and horizon)": MustStack("basic", WithN(4), WithT(2)).VersionDigest("fp"),
		"horizon":         MustStack("basic", WithN(4), WithT(1), WithHorizon(5)).VersionDigest("fp"),
		"fingerprint":     base.VersionDigest("fp2"),
	}
	seen := map[string]string{ref: "base"}
	for what, digest := range variants {
		if prev, dup := seen[digest]; dup {
			t.Errorf("changing %s collides with %s (digest %s)", what, prev, digest)
		}
		seen[digest] = what
	}
	// The digest is stable: same identity, same digest.
	if again := MustStack("basic", WithN(4), WithT(1)).VersionDigest("fp"); again != ref {
		t.Fatalf("digest not stable: %s then %s", ref, again)
	}
	// And "fip+pmin" differs from "fip" only in the action protocol, so
	// it must also differ from plain fip above.
	if variants["action only"] == variants["vs fip+pmin"] {
		t.Error("fip and fip+pmin share a version digest")
	}
}

// TestCacheChangedIdentityMisses runs the executor-level differential:
// a cache warmed under one identity yields zero hits under another.
func TestCacheChangedIdentityMisses(t *testing.T) {
	scenarios := uniqueScenarios(t, 7, 4, 1, 12)
	store := newMapStore()
	warmUp := NewRunner(MustStack("basic", WithN(4), WithT(1)),
		WithResultCache(store, "fp"))
	runShardStream(t, warmUp, scenarios, 0, 1)

	for _, tc := range []struct {
		what   string
		runner *Runner
	}{
		{"different fingerprint", NewRunner(MustStack("basic", WithN(4), WithT(1)), WithResultCache(store, "fp2"))},
		{"different horizon", NewRunner(MustStack("basic", WithN(4), WithT(1), WithHorizon(4)), WithResultCache(store, "fp"))},
		{"different stack", NewRunner(MustStack("min", WithN(4), WithT(1)), WithResultCache(store, "fp"))},
	} {
		sum, _ := runShardStream(t, tc.runner, scenarios, 0, 1)
		if sum.CacheHits != 0 || sum.Executed != sum.Records {
			t.Errorf("%s: executed=%d hits=%d, want a full recomputation", tc.what, sum.Executed, sum.CacheHits)
		}
	}
}

// TestCachePoisonedEntriesRecomputed corrupts every stored payload two
// ways — undecodable bytes and a decodable entry answering the wrong
// scenario — and checks the warm run silently recomputes, overwrites,
// and still streams byte-identically.
func TestCachePoisonedEntriesRecomputed(t *testing.T) {
	st := MustStack("basic", WithN(4), WithT(1))
	// Distinct scenarios (all 16 init vectors over one pattern), so every
	// record owns its cache entry and a poisoned entry can never be
	// repaired by an earlier duplicate within the same warm run.
	scenarios := shardScenarios(t, 4, st.Horizon(), 16)
	store := newMapStore()
	cold := NewRunner(st, WithResultCache(store, "fp"))
	_, streamCold := runShardStream(t, cold, scenarios, 0, 1)

	store.mu.Lock()
	i := 0
	for key, payload := range store.m { //eba:nondeterministic-ok which corruption style lands on which entry is irrelevant; the test demands full recomputation either way
		if i%2 == 0 {
			store.m[key] = []byte("{corrupt")
		} else {
			var cr CachedRun
			if err := json.Unmarshal(payload, &cr); err != nil {
				store.mu.Unlock()
				t.Fatalf("stored payload does not decode: %v", err)
			}
			cr.Inits[0] = 1 - cr.Inits[0] // now restates a different scenario
			mangled, _ := json.Marshal(&cr)
			store.m[key] = mangled
		}
		i++
	}
	store.mu.Unlock()

	warm := NewRunner(st, WithResultCache(store, "fp"))
	sum, streamWarm := runShardStream(t, warm, scenarios, 0, 1)
	if sum.CacheHits != 0 || sum.Executed != sum.Records {
		t.Fatalf("poisoned cache served hits: executed=%d hits=%d", sum.Executed, sum.CacheHits)
	}
	if !bytes.Equal(streamCold, streamWarm) {
		t.Fatal("stream after recomputation differs")
	}
	// The poison was overwritten: a third run hits everything.
	again := NewRunner(st, WithResultCache(store, "fp"))
	sum, _ = runShardStream(t, again, scenarios, 0, 1)
	if sum.Executed != 0 {
		t.Fatalf("recomputation did not repair the cache: executed=%d", sum.Executed)
	}
}

// TestCacheSpecCheckJudgesHits checks spec verification runs identically
// on cache hits: the payload carries the per-round actions CheckRun
// reads, so a warm runner with WithSpecCheck still judges every run.
func TestCacheSpecCheckJudgesHits(t *testing.T) {
	st := MustStack("basic", WithN(4), WithT(1))
	scenarios := uniqueScenarios(t, 3, 4, 1, 8)
	store := newMapStore()
	cold := NewRunner(st, WithResultCache(store, "fp"), WithSpecCheck(spec.Options{}))
	_, streamCold := runShardStream(t, cold, scenarios, 0, 1)

	warm := NewRunner(st, WithResultCache(store, "fp"), WithSpecCheck(spec.Options{}))
	sum, streamWarm := runShardStream(t, warm, scenarios, 0, 1)
	if sum.Executed != 0 {
		t.Fatalf("warm spec-checked run executed %d scenarios", sum.Executed)
	}
	if !bytes.Equal(streamCold, streamWarm) {
		t.Fatal("spec-checked warm stream differs")
	}
}

// TestCachedRunRoundTrip pins payload encode/restore fidelity against a
// real execution, including the actions ledger.
func TestCachedRunRoundTrip(t *testing.T) {
	st := MustStack("fip", WithN(4), WithT(1))
	sc := randomScenarios(2, 4, 1, 1)[0]
	res, err := NewRunner(st).Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := NewCachedRun(res, false)
	if err != nil {
		t.Fatal(err)
	}
	restored := cr.Restore(st.Config(sc.Pattern, sc.Inits))
	recA, err := newOutcomeRecord(0, res, 1)
	if err != nil {
		t.Fatal(err)
	}
	recB, err := newOutcomeRecord(0, restored, 1)
	if err != nil {
		t.Fatal(err)
	}
	if recA.Digest != recB.Digest {
		t.Fatalf("restored record digest %s != original %s", recB.Digest, recA.Digest)
	}
	if len(restored.Actions) != len(res.Actions) {
		t.Fatalf("restored %d action rounds, want %d", len(restored.Actions), len(res.Actions))
	}
	for m := range res.Actions {
		for i := range res.Actions[m] {
			if restored.Actions[m][i] != res.Actions[m][i] {
				t.Fatalf("action[%d][%d] restored as %v, want %v", m, i, restored.Actions[m][i], res.Actions[m][i])
			}
		}
	}
	if restored.States != nil {
		t.Fatal("restored run carries a state trace")
	}
}
