// Source-driven execution: StreamFrom pulls scenarios lazily from a
// Source and fans them out over the Runner's worker pool, so exhaustive
// and randomized sweeps run at O(window) memory instead of materializing
// a scenario slice. Stream and RunBatch are thin layers over the same
// machinery.

package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/engine"
)

// Source is a pull-style stream of scenarios, the lazy counterpart of a
// []Scenario. Next returns the next scenario, or false when the source is
// exhausted. Count returns the total number of scenarios the source will
// produce and whether that total is known (unbounded or unrepresentable
// sources report false). Sources need not be safe for concurrent use: the
// Runner pulls from a single goroutine.
//
// internal/source provides generators (exhaustive SO/crash sweeps, seeded
// random scenarios) and combinators (CrossInits, Limit, Filter,
// FromSlice) producing Sources.
type Source interface {
	Next() (Scenario, bool)
	Count() (int64, bool)
}

// ErrorSource is an optional Source extension for sources that can fail
// mid-stream — a shard reader whose pipe breaks, a decoder hitting
// corrupt input. Such a source ends the stream by returning false from
// Next and reports why through Err (nil means ordinary exhaustion).
// StreamFrom checks Err when the source ends: a non-nil error cancels the
// stream's work with that error as the context cause (the fail-fast
// semantics RunBatch and RunSource already have) and the stream's final
// outcome carries it — Index -1, Err set — so consumers learn the cause
// even in completion-order mode.
type ErrorSource interface {
	Source
	Err() error
}

// FromScenarios adapts an eager scenario slice to the Source interface —
// the bridge from the batch world into the streaming one (Stream is
// StreamFrom over it).
func FromScenarios(scenarios []Scenario) Source {
	return &sliceSource{scenarios: scenarios}
}

// sliceSource adapts an eager scenario slice to the Source interface.
type sliceSource struct {
	scenarios []Scenario
	next      int
}

func (s *sliceSource) Next() (Scenario, bool) {
	if s.next >= len(s.scenarios) {
		return Scenario{}, false
	}
	sc := s.scenarios[s.next]
	s.next++
	return sc, true
}

func (s *sliceSource) Count() (int64, bool) { return int64(len(s.scenarios)), true }

// StreamOption configures StreamFrom.
type StreamOption func(*streamConfig)

type streamConfig struct {
	window          int
	completionOrder bool
}

// WithWindow bounds the reordering window of an ordered stream: at most k
// scenarios are in flight — dispatched to a worker but not yet emitted —
// at any moment, so the re-sequencing buffer holds at most k outcomes no
// matter how long the head scenario runs. k <= 0 selects the default
// window of twice the worker count. A window smaller than the worker
// count leaves workers idle. Completion-order streams ignore the window
// (they buffer nothing).
func WithWindow(k int) StreamOption {
	return func(c *streamConfig) { c.window = k }
}

// WithCompletionOrder makes StreamFrom emit outcomes as workers finish
// them instead of re-sequencing into scenario order. Every outcome is
// emitted exactly once and carries its scenario Index for correlation;
// nothing is buffered, so a slow scenario delays only itself. Use it for
// latency-sensitive consumers that aggregate rather than correspond
// run-by-run.
func WithCompletionOrder() StreamOption {
	return func(c *streamConfig) { c.completionOrder = true }
}

// Stream executes the scenarios over the worker pool and emits outcomes
// on the returned channel in scenario order. The channel closes when
// every outcome has been emitted or the context is cancelled; the
// consumer must drain the channel or cancel the context to release the
// workers. Unlike RunBatch, a per-scenario error does not stop the
// stream: the outcome carries it and later scenarios still run.
func (r *Runner) Stream(ctx context.Context, scenarios []Scenario) <-chan RunOutcome {
	return r.StreamFrom(ctx, &sliceSource{scenarios: scenarios})
}

// StreamFrom pulls scenarios lazily from the source, executes them over
// the worker pool, and emits outcomes on the returned channel — by
// default in scenario order through a bounded reordering window (see
// WithWindow), or in completion order with WithCompletionOrder. Ordered
// streams are bit-identical to the eager Stream/RunBatch paths over the
// same scenarios; memory stays bounded by the window regardless of the
// source's size, so exhaustive sweeps can run without materializing.
// The channel closes when the source is exhausted and every outcome has
// been emitted, or when the context is cancelled; the consumer must drain
// the channel or cancel the context to release the workers. A
// per-scenario error does not stop the stream.
func (r *Runner) StreamFrom(ctx context.Context, src Source, opts ...StreamOption) <-chan RunOutcome {
	cfg := streamConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	out := make(chan RunOutcome)
	go func() {
		defer close(out)
		// sctx carries stream-internal failure: when the source itself
		// fails mid-stream (ErrorSource), outstanding work is cancelled
		// with the source's error as the cause, and outcomes produced
		// after the failure carry it — context.Cause, never a bare
		// context.Canceled, matching the Runner's fail-fast semantics.
		sctx, fail := context.WithCancelCause(ctx)
		defer fail(nil)
		workers := r.parallelism
		if c, ok := src.Count(); ok && int64(workers) > c {
			workers = int(c)
		}
		if workers < 1 {
			workers = 1
		}
		window := cfg.window
		if window <= 0 {
			window = 2 * workers
		}

		type job struct {
			idx int
			sc  Scenario
		}
		jobs := make(chan job)
		results := make(chan RunOutcome, workers)
		// tokens bounds the in-flight scenarios of an ordered stream: the
		// dispatcher acquires before pulling from the source, the
		// re-sequencer releases after emitting.
		var tokens chan struct{}
		if !cfg.completionOrder {
			tokens = make(chan struct{}, window)
		}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var buf *engine.Buffers
				if r.bufferReuse {
					buf = engine.NewArenaBuffers()
				}
				for jb := range jobs {
					select {
					case results <- r.runOne(sctx, jb.idx, jb.sc, buf):
					case <-sctx.Done():
						return
					}
				}
			}()
		}
		go func() {
			defer close(jobs)
			for idx := 0; ; idx++ {
				if tokens != nil {
					select {
					case tokens <- struct{}{}:
					case <-sctx.Done():
						return
					}
				}
				sc, ok := src.Next()
				if !ok {
					// A source that failed mid-stream (rather than running
					// dry) cancels outstanding work with its error as the
					// cause, so in-flight outcomes carry it.
					if es, isErrSource := src.(ErrorSource); isErrSource {
						if err := es.Err(); err != nil {
							fail(err)
						}
					}
					return
				}
				select {
				case jobs <- job{idx: idx, sc: sc}:
				case <-sctx.Done():
					return
				}
			}
		}()
		go func() {
			wg.Wait()
			close(results)
		}()

		// emitCause surfaces a stream-internal failure (a failed source) as
		// the stream's final outcome: Index -1, Err the cancellation cause.
		// External cancellation is the caller's own context; they hold its
		// cause already, so nothing is appended for it.
		emitCause := func() {
			if cause := context.Cause(sctx); cause != nil && ctx.Err() == nil {
				select {
				case out <- RunOutcome{Index: -1, Err: cause}:
				case <-ctx.Done():
				}
			}
		}

		if cfg.completionOrder {
			for oc := range results {
				select {
				case out <- oc:
				case <-ctx.Done():
					return
				}
			}
			emitCause()
			return
		}

		// Re-sequence: workers finish out of order, the stream emits in
		// scenario order. The token bound keeps pending at window size.
		pending := make(map[int]RunOutcome, window)
		next := 0
		for oc := range results {
			pending[oc.Index] = oc
			for {
				o, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				select {
				case out <- o:
				case <-ctx.Done():
					return
				}
				<-tokens
				next++
			}
		}
		emitCause()
	}()
	return out
}

// RunSource executes every scenario the source produces over the worker
// pool and returns the results in scenario order, like RunBatch without
// the scenario slice: result k corresponds to the source's k-th scenario.
// The first execution error, specification violation, or context
// cancellation aborts the run: outstanding work is cancelled with that
// first error as the context cause, so in-flight scenarios stop promptly
// and nothing further is pulled from the source.
func (r *Runner) RunSource(ctx context.Context, src Source) ([]*engine.Result, error) {
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	var out []*engine.Result
	if c, ok := src.Count(); ok && c >= 0 {
		// Cap the preallocation: a representable count can still exceed
		// what make can allocate; append grows past the cap as needed.
		if c > 1<<20 {
			c = 1 << 20
		}
		out = make([]*engine.Result, 0, c)
	}
	for oc := range r.StreamFrom(ctx, src) {
		if oc.Err != nil {
			cancel(oc.Err)
			return nil, oc.Err
		}
		out = append(out, oc.Result)
	}
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	if c, ok := src.Count(); ok && int64(len(out)) != c {
		return nil, fmt.Errorf("runner: source run ended after %d of %d scenarios", len(out), c)
	}
	return out, nil
}
