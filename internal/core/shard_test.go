package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/engine"
)

// shardScenarios builds a deterministic scenario list for shard tests.
func shardScenarios(t *testing.T, n, horizon, count int) []Scenario {
	t.Helper()
	scenarios := streamScenarios(n, horizon, count)
	if len(scenarios) != count {
		t.Fatalf("built %d scenarios, want %d", len(scenarios), count)
	}
	return scenarios
}

// TestStrideBounds checks Stride's validation and the 1-way identity.
func TestStrideBounds(t *testing.T) {
	src := FromScenarios(nil)
	if _, err := Stride(src, 0, 0); err == nil {
		t.Fatal("Stride with shardCount 0 did not error")
	}
	if _, err := Stride(src, -1, 3); err == nil {
		t.Fatal("Stride with negative shardIndex did not error")
	}
	if _, err := Stride(src, 3, 3); err == nil {
		t.Fatal("Stride with shardIndex == shardCount did not error")
	}
	got, err := Stride(src, 0, 1)
	if err != nil {
		t.Fatalf("Stride 0/1: %v", err)
	}
	if got != src {
		t.Fatal("Stride 0/1 did not return the source unchanged")
	}
}

// TestStripeSize pins the stripe-length arithmetic the merge's
// gap/overlap verification rests on.
func TestStripeSize(t *testing.T) {
	for total := int64(0); total <= 20; total++ {
		for k := 1; k <= 5; k++ {
			var sum int64
			for i := 0; i < k; i++ {
				sum += StripeSize(total, i, k)
			}
			if sum != total {
				t.Fatalf("stripes of total=%d k=%d sum to %d", total, k, sum)
			}
		}
	}
	if got := StripeSize(5, 2, 3); got != 1 {
		t.Fatalf("StripeSize(5, 2, 3) = %d, want 1", got)
	}
	if got := StripeSize(2, 2, 3); got != 0 {
		t.Fatalf("StripeSize(2, 2, 3) = %d, want 0", got)
	}
}

// runShardStream executes one stripe into a buffer.
func runShardStream(t *testing.T, runner *Runner, scenarios []Scenario, shard, shards int) (*ShardSummary, []byte) {
	t.Helper()
	var buf bytes.Buffer
	sum, err := runner.RunShard(context.Background(), FromScenarios(scenarios), shard, shards, &buf)
	if err != nil {
		t.Fatalf("RunShard %d/%d: %v", shard, shards, err)
	}
	return sum, buf.Bytes()
}

// TestShardMergeBitIdentical is the subsystem's core invariant: for
// K ∈ {1, 2, 3}, merging the K stripes' streams yields a stream
// byte-identical to the single-process (0/1) one — same records, same
// order, same digests, same header and footer.
func TestShardMergeBitIdentical(t *testing.T) {
	st := MustStack("fip", WithN(3), WithT(1))
	scenarios := shardScenarios(t, 3, st.Horizon(), 41)
	runner := NewRunner(st, WithParallelism(4), WithBufferReuse())

	single, singleStream := runShardStream(t, runner, scenarios, 0, 1)
	if single.Records != 41 {
		t.Fatalf("single-process shard ran %d records, want 41", single.Records)
	}

	for k := 1; k <= 3; k++ {
		streams := make([]io.Reader, k)
		for i := 0; i < k; i++ {
			_, raw := runShardStream(t, runner, scenarios, i, k)
			streams[i] = bytes.NewReader(raw)
		}
		var merged bytes.Buffer
		sum, err := MergeOutcomes(&merged, streams...)
		if err != nil {
			t.Fatalf("MergeOutcomes k=%d: %v", k, err)
		}
		if sum.Total != single.Records {
			t.Fatalf("k=%d merged %d records, want %d", k, sum.Total, single.Records)
		}
		if sum.Digest != single.Digest {
			t.Fatalf("k=%d merged digest %s, single-process digest %s", k, sum.Digest, single.Digest)
		}
		if !bytes.Equal(merged.Bytes(), singleStream) {
			t.Fatalf("k=%d merged stream differs from the single-process stream", k)
		}
	}
}

// TestShardStreamRoundTrip checks the reader hands back exactly what
// RunShard wrote, with verified digests and a sealed footer.
func TestShardStreamRoundTrip(t *testing.T) {
	st := MustStack("min", WithN(3), WithT(1))
	scenarios := shardScenarios(t, 3, st.Horizon(), 17)
	runner := NewRunner(st, WithParallelism(2))
	sum, raw := runShardStream(t, runner, scenarios, 1, 2)

	or, err := NewOutcomeReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewOutcomeReader: %v", err)
	}
	h := or.Header()
	if h.Shard != 1 || h.Shards != 2 || h.Stack != "min" || h.N != 3 || h.T != 1 {
		t.Fatalf("header = %+v", h)
	}
	if h.Count != 8 {
		t.Fatalf("header count = %d, want 8 (stripe 1 of 17)", h.Count)
	}
	var got int64
	for {
		rec, err := or.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rec.Ordinal != 1+2*got {
			t.Fatalf("record %d carries ordinal %d, want %d", got, rec.Ordinal, 1+2*got)
		}
		got++
	}
	if got != sum.Records {
		t.Fatalf("read %d records, summary says %d", got, sum.Records)
	}
	if or.Footer() == nil || or.Footer().Digest != sum.Digest {
		t.Fatalf("footer %+v, want digest %s", or.Footer(), sum.Digest)
	}
}

// TestMergeRejectsBadPartitions drives MergeOutcomes with every way a
// set of streams can fail to partition a sweep.
func TestMergeRejectsBadPartitions(t *testing.T) {
	st := MustStack("min", WithN(3), WithT(1))
	scenarios := shardScenarios(t, 3, st.Horizon(), 12)
	runner := NewRunner(st)
	_, s0 := runShardStream(t, runner, scenarios, 0, 3)
	_, s1 := runShardStream(t, runner, scenarios, 1, 3)
	_, s2 := runShardStream(t, runner, scenarios, 2, 3)

	cases := []struct {
		name    string
		streams [][]byte
		want    string
	}{
		{"missing shard", [][]byte{s0, s1}, "declares a 3-way split"},
		{"duplicate shard", [][]byte{s0, s1, s1}, "both claim shard"},
		{"no streams", nil, "zero outcome streams"},
	}
	for _, tc := range cases {
		readers := make([]io.Reader, len(tc.streams))
		for i, s := range tc.streams {
			readers[i] = bytes.NewReader(s)
		}
		_, err := MergeOutcomes(nil, readers...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	// A truncated stream (shard killed mid-run) has no footer.
	cut := s2[:len(s2)-40]
	_, err := MergeOutcomes(nil, bytes.NewReader(s0), bytes.NewReader(s1), bytes.NewReader(cut))
	if err == nil || !(strings.Contains(err.Error(), "truncated") || strings.Contains(err.Error(), "decoding")) {
		t.Fatalf("truncated stream: err = %v", err)
	}

	// A tampered record fails its digest check.
	tampered := bytes.Replace(s1, []byte(`"sent":`), []byte(`"sent":9`), 1)
	if bytes.Equal(tampered, s1) {
		t.Fatal("tamper did not change the stream")
	}
	_, err = MergeOutcomes(nil, bytes.NewReader(s0), bytes.NewReader(tampered), bytes.NewReader(s2))
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("tampered record: err = %v, want digest mismatch", err)
	}

	// Mismatched headers: a stream from a different sweep.
	other := MustStack("min", WithN(4), WithT(1))
	_, sOther := runShardStream(t, NewRunner(other), shardScenarios(t, 4, other.Horizon(), 12), 1, 3)
	_, err = MergeOutcomes(nil, bytes.NewReader(s0), bytes.NewReader(sOther), bytes.NewReader(s2))
	if err == nil || !strings.Contains(err.Error(), "shard 1 ran") {
		t.Fatalf("mismatched headers: err = %v", err)
	}
}

// TestMergeDetectsGapsAndOverlaps rebuilds stripe streams whose ordinals
// lie (a dropped record, a repeated record) and checks the merge's
// ordinal accounting catches both. The streams are re-written through
// RunShard on doctored scenario lists, so their digests and footers are
// internally consistent — only the partition is wrong.
func TestMergeDetectsGapsAndOverlaps(t *testing.T) {
	st := MustStack("min", WithN(3), WithT(1))
	scenarios := shardScenarios(t, 3, st.Horizon(), 12)
	runner := NewRunner(st)
	_, s0 := runShardStream(t, runner, scenarios, 0, 3)
	_, s2 := runShardStream(t, runner, scenarios, 2, 3)

	// Gap: stripe 1 built from a shortened sweep misses its tail ordinal;
	// the totals no longer reconcile.
	_, s1short := runShardStream(t, runner, scenarios[:9], 1, 3)
	if _, err := MergeOutcomes(nil, bytes.NewReader(s0), bytes.NewReader(s1short), bytes.NewReader(s2)); err == nil {
		t.Fatal("merge accepted a stripe with missing ordinals")
	}

	// Overlap: stripe 1 built from a longer sweep carries ordinals past
	// the other stripes' end.
	long := shardScenarios(t, 3, st.Horizon(), 24)
	_, s1long := runShardStream(t, runner, long, 1, 3)
	if _, err := MergeOutcomes(nil, bytes.NewReader(s0), bytes.NewReader(s1long), bytes.NewReader(s2)); err == nil {
		t.Fatal("merge accepted a stripe with extra ordinals")
	}
}

// TestRunShardFailFast checks a failing run aborts the shard with the
// run's error and leaves an unsealed (footer-less) stream behind.
func TestRunShardFailFast(t *testing.T) {
	st := MustStack("min", WithN(4), WithT(1))
	scenarios := shardScenarios(t, 4, st.Horizon(), 12)
	boom := errors.New("executor detonated")
	exec := &failingExecutor{inner: engine.Sequential{}, failAt: 6, err: boom}
	runner := NewRunner(st, WithExecutor(exec), WithParallelism(2))

	var buf bytes.Buffer
	_, err := runner.RunShard(context.Background(), FromScenarios(scenarios), 0, 1, &buf)
	if !errors.Is(err, boom) {
		t.Fatalf("RunShard error = %v, want %v", err, boom)
	}
	if _, err := MergeOutcomes(nil, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("merge accepted the aborted shard's unsealed stream")
	}
}

// TestMergedStreamIsReadable checks the merged stream is itself a valid
// 1-way outcome stream — merges compose.
func TestMergedStreamIsReadable(t *testing.T) {
	st := MustStack("min", WithN(3), WithT(1))
	scenarios := shardScenarios(t, 3, st.Horizon(), 10)
	runner := NewRunner(st)
	_, s0 := runShardStream(t, runner, scenarios, 0, 2)
	_, s1 := runShardStream(t, runner, scenarios, 1, 2)
	var merged bytes.Buffer
	if _, err := MergeOutcomes(&merged, bytes.NewReader(s0), bytes.NewReader(s1)); err != nil {
		t.Fatalf("merge: %v", err)
	}
	sum2, err := MergeOutcomes(nil, bytes.NewReader(merged.Bytes()))
	if err != nil {
		t.Fatalf("re-merge of merged stream: %v", err)
	}
	if sum2.Total != 10 {
		t.Fatalf("re-merge saw %d records, want 10", sum2.Total)
	}
}

// TestMergeDiagnosesTornStreams drives MergeOutcomes — and
// VerifyOutcomeStream, the fabric coordinator's upload check — with the
// torn streams a killed or corrupted worker can produce, and checks each
// failure is reported diagnosably: truncation mid-record, a cleanly
// missing footer, a footer that lies about its count or digest, and a
// duplicated stripe alongside a complete set.
func TestMergeDiagnosesTornStreams(t *testing.T) {
	st := MustStack("min", WithN(3), WithT(1))
	scenarios := shardScenarios(t, 3, st.Horizon(), 12)
	runner := NewRunner(st)
	_, s0 := runShardStream(t, runner, scenarios, 0, 3)
	_, s1 := runShardStream(t, runner, scenarios, 1, 3)
	_, s2 := runShardStream(t, runner, scenarios, 2, 3)

	rows := bytes.Split(bytes.TrimSuffix(s2, []byte("\n")), []byte("\n"))
	if len(rows) < 3 {
		t.Fatalf("stripe stream has %d lines; need header, records, footer", len(rows))
	}
	join := func(rs [][]byte) []byte {
		return append(bytes.Join(rs, []byte("\n")), '\n')
	}

	// A footer whose count (then digest) lies, re-serialized in place.
	var foot ShardFooter
	if err := json.Unmarshal(rows[len(rows)-1], &foot); err != nil {
		t.Fatalf("decoding footer: %v", err)
	}
	countLie, digestLie := foot, foot
	countLie.Records++
	digestLie.Digest = strings.Repeat("0", len(foot.Digest))
	reseal := func(f ShardFooter) []byte {
		line, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("re-marshaling footer: %v", err)
		}
		return join(append(append([][]byte{}, rows[:len(rows)-1]...), line))
	}

	cases := []struct {
		name   string
		stream []byte
		want   []string // any of these substrings diagnoses it
	}{
		{
			"truncated mid-record",
			append(join(rows[:1]), rows[1][:len(rows[1])/2]...),
			[]string{"decoding record", "truncated"},
		},
		{
			"missing footer",
			join(rows[:len(rows)-1]),
			[]string{"no footer"},
		},
		{
			"footer count lie",
			reseal(countLie),
			[]string{"footer claims"},
		},
		{
			"footer digest lie",
			reseal(digestLie),
			[]string{"does not match the record chain"},
		},
	}
	for _, tc := range cases {
		diagnosed := func(err error) bool {
			if err == nil {
				return false
			}
			for _, w := range tc.want {
				if strings.Contains(err.Error(), w) {
					return true
				}
			}
			return false
		}
		_, err := MergeOutcomes(nil, bytes.NewReader(s0), bytes.NewReader(s1), bytes.NewReader(tc.stream))
		if !diagnosed(err) {
			t.Errorf("%s: merge err = %v, want one of %q", tc.name, err, tc.want)
		}
		_, err = VerifyOutcomeStream(bytes.NewReader(tc.stream))
		if !diagnosed(err) {
			t.Errorf("%s: verify err = %v, want one of %q", tc.name, err, tc.want)
		}
	}

	// A duplicated stripe alongside the complete set is caught by the
	// stream-count accounting (four streams can't be a 3-way split);
	// a duplicate replacing a stripe is caught by the claim check.
	_, err := MergeOutcomes(nil, bytes.NewReader(s0), bytes.NewReader(s1),
		bytes.NewReader(s2), bytes.NewReader(s2))
	if err == nil || !strings.Contains(err.Error(), "declares a 3-way split") {
		t.Errorf("extra duplicated stripe: err = %v, want a stream-count diagnosis", err)
	}
	_, err = MergeOutcomes(nil, bytes.NewReader(s0), bytes.NewReader(s2), bytes.NewReader(s2))
	if err == nil || !strings.Contains(err.Error(), "claim shard") {
		t.Errorf("duplicated stripe: err = %v, want a both-claim-shard diagnosis", err)
	}
}

// TestWriteOutcomeStreamReseals checks WriteOutcomeStream produces a
// stream VerifyOutcomeStream accepts, with digests recomputed from the
// (possibly modified) records — the hook fabric tests use to craft
// valid-but-different stripes.
func TestWriteOutcomeStreamReseals(t *testing.T) {
	st := MustStack("min", WithN(3), WithT(1))
	scenarios := shardScenarios(t, 3, st.Horizon(), 9)
	runner := NewRunner(st)
	_, raw := runShardStream(t, runner, scenarios, 1, 3)

	or, err := NewOutcomeReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewOutcomeReader: %v", err)
	}
	var recs []OutcomeRecord
	for {
		rec, err := or.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		recs = append(recs, *rec)
	}

	// Unmodified records re-seal to the identical stream.
	var same bytes.Buffer
	sum, err := WriteOutcomeStream(&same, or.Header(), recs)
	if err != nil {
		t.Fatalf("WriteOutcomeStream: %v", err)
	}
	if !bytes.Equal(same.Bytes(), raw) {
		t.Fatal("re-sealed stream differs from the original")
	}
	if sum.Digest != or.Footer().Digest {
		t.Fatalf("re-sealed digest %s, original %s", sum.Digest, or.Footer().Digest)
	}

	// Modified records re-seal to a valid stream with a different digest.
	recs[0].Rounds[0]++
	var mod bytes.Buffer
	modSum, err := WriteOutcomeStream(&mod, or.Header(), recs)
	if err != nil {
		t.Fatalf("WriteOutcomeStream(modified): %v", err)
	}
	if modSum.Digest == sum.Digest {
		t.Fatal("modified records re-sealed to the same digest")
	}
	if _, err := VerifyOutcomeStream(bytes.NewReader(mod.Bytes())); err != nil {
		t.Fatalf("re-sealed modified stream fails verification: %v", err)
	}
}
