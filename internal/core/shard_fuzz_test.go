package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// fuzzStreamSeeds builds one intact outcome stream plus the torn
// variants TestMergeDiagnosesTornStreams pins — truncation mid-record,
// a missing footer, and footers lying about their count or digest — as
// the fuzz corpus.
func fuzzStreamSeeds(f *testing.F) [][]byte {
	st := MustStack("min", WithN(3), WithT(1))
	scenarios := streamScenarios(3, st.Horizon(), 8)
	runner := NewRunner(st)
	var buf bytes.Buffer
	if _, err := runner.RunShard(context.Background(), FromScenarios(scenarios), 0, 2, &buf); err != nil {
		f.Fatalf("seeding outcome stream: %v", err)
	}
	intact := buf.Bytes()

	rows := bytes.Split(bytes.TrimSuffix(intact, []byte("\n")), []byte("\n"))
	if len(rows) < 3 {
		f.Fatalf("seed stream has %d lines; need header, records, footer", len(rows))
	}
	join := func(rs [][]byte) []byte {
		return append(bytes.Join(rs, []byte("\n")), '\n')
	}
	var foot ShardFooter
	if err := json.Unmarshal(rows[len(rows)-1], &foot); err != nil {
		f.Fatalf("decoding seed footer: %v", err)
	}
	countLie, digestLie := foot, foot
	countLie.Records++
	digestLie.Digest = digestLie.Digest[1:] + "0"
	reseal := func(ft ShardFooter) []byte {
		line, err := json.Marshal(ft)
		if err != nil {
			f.Fatalf("re-marshaling seed footer: %v", err)
		}
		return join(append(append([][]byte{}, rows[:len(rows)-1]...), line))
	}

	return [][]byte{
		intact,
		join(rows[:len(rows)-1]), // cleanly missing footer
		append(join(rows[:1]), rows[1][:len(rows[1])/2]...), // truncated mid-record
		reseal(countLie),
		reseal(digestLie),
		[]byte("{}\n"),
		[]byte(`{"kind":"eba-outcomes","version":999}` + "\n"),
	}
}

// FuzzOutcomeReader feeds arbitrary bytes to the digest-verifying
// stream reader. Whatever the input, the reader must not panic, must
// report a footer exactly when it drains cleanly, and any stream it
// accepts must survive a parse -> reseal -> verify round trip with the
// same chained digest (the bit-identical merge contract).
func FuzzOutcomeReader(f *testing.F) {
	for _, seed := range fuzzStreamSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		or, err := NewOutcomeReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var recs []OutcomeRecord
		for {
			rec, err := or.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				if or.Footer() != nil {
					t.Fatalf("reader errored (%v) after reporting a footer", err)
				}
				return
			}
			if rec == nil {
				t.Fatal("Next returned a nil record without an error")
			}
			recs = append(recs, *rec)
			if len(recs) > len(data) {
				t.Fatalf("reader produced %d records from %d bytes", len(recs), len(data))
			}
		}
		foot := or.Footer()
		if foot == nil {
			t.Fatal("reader drained cleanly but reports no footer")
		}
		if foot.Records != int64(len(recs)) {
			t.Fatalf("footer claims %d records, reader surfaced %d", foot.Records, len(recs))
		}

		// An accepted stream re-seals to a stream the verifier accepts,
		// with the identical chained digest: digests recompute from
		// content, so acceptance pins the bytes, not trust in the file.
		var resealed bytes.Buffer
		sum, err := WriteOutcomeStream(&resealed, or.Header(), recs)
		if err != nil {
			t.Fatalf("re-sealing an accepted stream: %v", err)
		}
		if sum.Digest != foot.Digest {
			t.Fatalf("re-sealed digest %s, accepted stream's footer %s", sum.Digest, foot.Digest)
		}
		if _, err := VerifyOutcomeStream(bytes.NewReader(resealed.Bytes())); err != nil {
			t.Fatalf("verifier rejects the re-sealed stream: %v", err)
		}
	})
}
