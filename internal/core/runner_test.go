package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/runtime"
	"repro/internal/spec"
)

// randomScenarios builds a deterministic list of random SO(t) scenarios.
func randomScenarios(seed int64, n, tf, count int) []Scenario {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Scenario, count)
	for k := range out {
		pat := adversary.RandomSO(rng, n, tf, tf+2, 0.4)
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value(rng.Intn(2))
		}
		out[k] = Scenario{Pattern: pat, Inits: inits}
	}
	return out
}

// assertSameRun compares two results field by field (states via their
// canonical keys, i.e. byte-identical traces).
func assertSameRun(t *testing.T, label string, want, got *engine.Result) {
	t.Helper()
	if want.Stats != got.Stats {
		t.Fatalf("%s: stats differ: %+v vs %+v", label, want.Stats, got.Stats)
	}
	for m := range want.States {
		for i := range want.States[m] {
			if want.States[m][i].Key() != got.States[m][i].Key() {
				t.Fatalf("%s: state differs at time %d agent %d", label, m, i)
			}
		}
	}
	for m := range want.Actions {
		for i := range want.Actions[m] {
			if want.Actions[m][i] != got.Actions[m][i] {
				t.Fatalf("%s: action differs at time %d agent %d", label, m, i)
			}
		}
	}
	for i := range want.Decision {
		if want.Decision[i] != got.Decision[i] || want.DecisionRound[i] != got.DecisionRound[i] {
			t.Fatalf("%s: decision ledger differs for agent %d", label, i)
		}
	}
}

// TestRunBatchMatchesSequential is the acceptance check of the API
// redesign: a parallel batch with buffer reuse produces results identical
// to the plain sequential path, scenario by scenario, for every
// registered stack.
func TestRunBatchMatchesSequential(t *testing.T) {
	n, tf := 5, 2
	scenarios := randomScenarios(11, n, tf, 20)
	for _, name := range registry.StackNames() {
		st := MustStack(name, WithN(n), WithT(tf))
		parallel, err := NewRunner(st, WithParallelism(4), WithBufferReuse()).
			RunBatch(context.Background(), scenarios)
		if err != nil {
			t.Fatalf("%s: RunBatch: %v", name, err)
		}
		if len(parallel) != len(scenarios) {
			t.Fatalf("%s: RunBatch returned %d results for %d scenarios", name, len(parallel), len(scenarios))
		}
		for k, sc := range scenarios {
			want, err := st.Run(sc.Pattern, sc.Inits)
			if err != nil {
				t.Fatalf("%s: scenario %d: %v", name, k, err)
			}
			assertSameRun(t, name, want, parallel[k])
		}
	}
}

// TestRunBatchOrderPreservation gives every scenario a distinguishable
// initial vector and checks result k corresponds to scenario k even with
// more workers than scenarios finish in order.
func TestRunBatchOrderPreservation(t *testing.T) {
	n, tf := 5, 1
	scenarios := make([]Scenario, 32)
	for k := range scenarios {
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value((k >> i) & 1)
		}
		scenarios[k] = Scenario{Pattern: adversary.FailureFree(n, tf+2), Inits: inits}
	}
	st := MustStack("min", WithN(n), WithT(tf))
	results, err := NewRunner(st, WithParallelism(8)).RunBatch(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for k, res := range results {
		for i := range res.Inits {
			if res.Inits[i] != scenarios[k].Inits[i] {
				t.Fatalf("result %d carries inits of a different scenario", k)
			}
		}
	}
}

// TestStreamEmitsInOrder checks the streaming path re-sequences
// out-of-order worker completions.
func TestStreamEmitsInOrder(t *testing.T) {
	n, tf := 4, 1
	scenarios := randomScenarios(3, n, tf, 16)
	st := MustStack("basic", WithN(n), WithT(tf))
	next := 0
	for oc := range NewRunner(st, WithParallelism(4)).Stream(context.Background(), scenarios) {
		if oc.Err != nil {
			t.Fatalf("outcome %d: %v", oc.Index, oc.Err)
		}
		if oc.Index != next {
			t.Fatalf("stream emitted index %d, want %d", oc.Index, next)
		}
		next++
	}
	if next != len(scenarios) {
		t.Fatalf("stream emitted %d outcomes, want %d", next, len(scenarios))
	}
}

// TestRunBatchCancellation cancels mid-batch and checks the batch aborts
// with the context's error and the stream closes promptly.
func TestRunBatchCancellation(t *testing.T) {
	n, tf := 5, 2
	scenarios := randomScenarios(5, n, tf, 200)
	st := MustStack("fip", WithN(n), WithT(tf))

	// Pre-cancelled context: nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewRunner(st, WithParallelism(2)).RunBatch(ctx, scenarios); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBatch on cancelled context = %v, want context.Canceled", err)
	}

	// Cancellation mid-stream: the channel closes without emitting all
	// outcomes, and pending workers are released (the test would hang
	// otherwise).
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	for oc := range NewRunner(st, WithParallelism(2)).Stream(ctx, scenarios) {
		if oc.Err != nil {
			break
		}
		seen++
		if seen == 3 {
			cancel()
		}
	}
	if seen >= len(scenarios) {
		t.Fatalf("stream ran to completion (%d outcomes) despite cancellation", seen)
	}
}

// TestExecutorTraceEquivalence runs every registered stack through the
// Runner on both executors and requires byte-identical traces — the
// executor-level extension of internal/runtime's determinism test.
func TestExecutorTraceEquivalence(t *testing.T) {
	n, tf := 5, 2
	scenarios := randomScenarios(23, n, tf, 10)
	for _, name := range registry.StackNames() {
		st := MustStack(name, WithN(n), WithT(tf))
		seq, err := NewRunner(st, WithExecutor(engine.Sequential{}), WithParallelism(2), WithBufferReuse()).
			RunBatch(context.Background(), scenarios)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		conc, err := NewRunner(st, WithExecutor(runtime.Concurrent{}), WithParallelism(2)).
			RunBatch(context.Background(), scenarios)
		if err != nil {
			t.Fatalf("%s concurrent: %v", name, err)
		}
		for k := range scenarios {
			assertSameRun(t, name, seq[k], conc[k])
		}
	}
}

// TestSpecCheckFlagsNaive checks WithSpecCheck turns the introduction's
// counterexample run into a *SpecError carrying the violations.
func TestSpecCheckFlagsNaive(t *testing.T) {
	n, tf := 3, 1
	st := MustStack("naive", WithN(n), WithT(tf))
	// The introduction's run r′: agent 0 silent except one late message
	// to agent 2 in round 2.
	pat := model.NewPattern(n, st.Horizon())
	for m := 0; m < st.Horizon(); m++ {
		for j := 1; j < n; j++ {
			if m == 1 && j == 2 {
				continue
			}
			pat.Drop(m, 0, model.AgentID(j))
		}
	}
	sc := Scenario{Pattern: pat, Inits: []model.Value{model.Zero, model.One, model.One}}
	runner := NewRunner(st, WithSpecCheck(spec.Options{}))
	_, err := runner.Run(context.Background(), sc)
	var specErr *SpecError
	if !errors.As(err, &specErr) {
		t.Fatalf("Run = %v, want *SpecError", err)
	}
	if len(specErr.Violations) == 0 {
		t.Fatal("SpecError carries no violations")
	}
	// The min stack on the same adversary satisfies the spec.
	good := MustStack("min", WithN(n), WithT(tf))
	if _, err := NewRunner(good, WithSpecCheck(spec.Options{})).Run(context.Background(), sc); err != nil {
		t.Fatalf("min stack flagged: %v", err)
	}
}

// TestStackOptions covers defaults, WithHorizon, and validation.
func TestStackOptions(t *testing.T) {
	st, err := NewStack("basic")
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 5 || st.T != 2 || st.Horizon() != 4 {
		t.Errorf("defaults: n=%d t=%d horizon=%d, want 5/2/4", st.N, st.T, st.Horizon())
	}
	st, err = NewStack("min", WithN(4), WithT(1), WithHorizon(7))
	if err != nil {
		t.Fatal(err)
	}
	if st.Horizon() != 7 {
		t.Errorf("WithHorizon(7) ignored: horizon=%d", st.Horizon())
	}
	res, err := st.Run(adversary.FailureFree(4, 7), adversary.UniformInits(4, model.One))
	if err != nil {
		t.Fatal(err)
	}
	if res.Horizon != 7 {
		t.Errorf("run executed %d rounds, want 7", res.Horizon)
	}
	for _, bad := range [][]Option{
		{WithN(0)},
		{WithN(-3)},
		{WithT(-1)},
		{WithHorizon(-2)},
	} {
		if _, err := NewStack("min", bad...); err == nil {
			t.Errorf("NewStack with %d bad option(s) accepted", len(bad))
		}
	}
	if _, err := NewStack("bogus"); err == nil {
		t.Error("unknown stack name accepted")
	}
	if _, err := Compose("min", "popt"); err == nil {
		t.Error("incompatible composition accepted")
	}
}

// TestComposedStackNames checks canonical naming of compositions.
func TestComposedStackNames(t *testing.T) {
	st, err := Compose("fip", "pmin", WithN(4), WithT(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "fip+pmin" {
		t.Errorf("Compose(fip, pmin).Name = %q, want fip+pmin", st.Name)
	}
	st, err = Compose("basic", "pmin", WithN(4), WithT(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "basic+pmin" {
		t.Errorf("Compose(basic, pmin).Name = %q, want basic+pmin", st.Name)
	}
}

// TestRunnerErrorPropagation checks an execution error surfaces with the
// scenario index.
func TestRunnerErrorPropagation(t *testing.T) {
	st := MustStack("min", WithN(4), WithT(1))
	scenarios := []Scenario{
		{Pattern: adversary.FailureFree(4, 3), Inits: adversary.UniformInits(4, model.One)},
		{Pattern: adversary.FailureFree(4, 3), Inits: adversary.UniformInits(3, model.One)}, // wrong length
	}
	_, err := NewRunner(st, WithParallelism(2)).RunBatch(context.Background(), scenarios)
	if err == nil {
		t.Fatal("bad scenario accepted")
	}
}
