package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	rescache "repro/internal/cache"
	"repro/internal/core"
	"repro/internal/episteme"
)

// testJob is the suite's standard sweep: small enough that a stripe runs
// in milliseconds, striped finely enough that stealing has room to work.
func testJob(stripes int) JobSpec {
	return JobSpec{Kind: SweepJob, Stack: "min", N: 3, T: 1, Stripes: stripes}
}

// newTestCoordinator builds a coordinator over a fresh spool and serves
// its handler from an httptest server.
func newTestCoordinator(t *testing.T, job JobSpec, ttl time.Duration) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{
		Job:      job,
		SpoolDir: t.TempDir(),
		LeaseTTL: ttl,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

// singleSweepStream runs the whole job in-process as the single stripe
// of a 1-way split — the byte-for-byte reference the fabric must match.
func singleSweepStream(t *testing.T, job JobSpec) []byte {
	t.Helper()
	st, err := job.NewStack()
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	src, err := job.newSource(st)
	if err != nil {
		t.Fatalf("newSource: %v", err)
	}
	var buf bytes.Buffer
	if _, err := core.NewRunner(st, core.WithBufferReuse()).RunShard(context.Background(), src, 0, 1, &buf); err != nil {
		t.Fatalf("RunShard 0/1: %v", err)
	}
	return buf.Bytes()
}

// stripePayload runs one stripe of the job in-process, producing exactly
// the sealed upload a well-behaved worker would send.
func stripePayload(t *testing.T, job JobSpec, stripe int) []byte {
	t.Helper()
	st, err := job.NewStack()
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	src, err := job.newSource(st)
	if err != nil {
		t.Fatalf("newSource: %v", err)
	}
	var buf bytes.Buffer
	if _, err := core.NewRunner(st).RunShard(context.Background(), src, stripe, job.Stripes, &buf); err != nil {
		t.Fatalf("RunShard %d/%d: %v", stripe, job.Stripes, err)
	}
	return buf.Bytes()
}

// putStripe uploads a payload directly, returning the HTTP status.
func putStripe(t *testing.T, baseURL string, stripe int, worker string, payload []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/result/%d?worker=%s", baseURL, stripe, worker), bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("building PUT: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT /result/%d: %v", stripe, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// leaseStripe asks for a lease directly, returning the grant and status.
func leaseStripe(t *testing.T, baseURL, worker string) (LeaseGrant, int) {
	t.Helper()
	body, _ := json.Marshal(LeaseRequest{Worker: worker})
	resp, err := http.Post(baseURL+"/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /lease: %v", err)
	}
	defer resp.Body.Close()
	var grant LeaseGrant
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
			t.Fatalf("decoding grant: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return grant, resp.StatusCode
}

// runWorkers runs n fabric workers against the server and waits for all
// of them; any worker error fails the test.
func runWorkers(t *testing.T, ctx context.Context, url string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator:  url,
			ID:           fmt.Sprintf("w%d", i),
			PollInterval: 20 * time.Millisecond,
			BaseBackoff:  5 * time.Millisecond,
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			_, errs[i] = w.Run(ctx)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}

// --- lease table ----------------------------------------------------------

// TestLeaseTableExpiryStealDuplicateConflict drives the lease table with
// a fake clock through the full failure-handling repertoire: heartbeat
// renewal, TTL expiry, reassignment counted as a steal, duplicate
// resolution by digest, and the fatal conflicting-digest case.
func TestLeaseTableExpiryStealDuplicateConflict(t *testing.T) {
	now := time.Unix(1000, 0)
	tbl := newLeaseTable(3, 10*time.Second, func() time.Time { return now })

	s, ok := tbl.lease("w1")
	if !ok || s != 0 {
		t.Fatalf("first lease = %d, %v; want stripe 0", s, ok)
	}

	// Heartbeats extend the deadline: 8s in, a renewal buys 10 more.
	now = now.Add(8 * time.Second)
	if !tbl.heartbeat("w1", 0) {
		t.Fatal("heartbeat within TTL rejected")
	}
	now = now.Add(8 * time.Second)
	if n := tbl.expire(); n != 0 {
		t.Fatalf("expired %d leases 8s after a heartbeat with a 10s TTL", n)
	}

	// Silence past the TTL: the stripe is requeued and re-granted.
	now = now.Add(3 * time.Second)
	if s, ok := tbl.lease("w2"); !ok || s != 0 {
		t.Fatalf("post-expiry lease = %d, %v; want the requeued stripe 0", s, ok)
	}
	if tbl.heartbeat("w1", 0) {
		t.Fatal("the dead worker's heartbeat renewed a stolen lease")
	}

	// The thief completes the stripe: that's a steal.
	if first, err := tbl.complete(0, "d0", "w2"); err != nil || !first {
		t.Fatalf("complete(0) = %v, %v", first, err)
	}
	// The original worker's late upload with the same digest is a no-op.
	if first, err := tbl.complete(0, "d0", "w1"); err != nil || first {
		t.Fatalf("duplicate complete(0) = %v, %v; want discarded", first, err)
	}
	// A different digest for a done stripe is fatal.
	if _, err := tbl.complete(0, "d0-tampered", "w1"); !errors.Is(err, ErrConflict) || !errors.Is(err, ErrVerification) {
		t.Fatalf("conflicting complete(0) err = %v, want ErrConflict (and ErrVerification)", err)
	}

	// Rejection requeues a leased stripe.
	if s, ok := tbl.lease("w3"); !ok || s != 1 {
		t.Fatalf("lease = %d, %v; want stripe 1", s, ok)
	}
	tbl.reject(1)
	if s, ok := tbl.lease("w3"); !ok || s != 1 {
		t.Fatalf("post-reject lease = %d, %v; want stripe 1 again", s, ok)
	}

	if tbl.allDone() {
		t.Fatal("allDone with stripes outstanding")
	}
	tbl.complete(1, "d1", "w3")
	tbl.complete(2, "d2", "w3")
	if !tbl.allDone() {
		t.Fatal("not allDone with every stripe complete")
	}

	counts, counters := tbl.snapshot()
	if counts.Done != 3 || counts.Pending != 0 || counts.Leased != 0 {
		t.Fatalf("counts = %+v", counts)
	}
	if counters.Expirations != 1 || counters.Steals != 1 || counters.Duplicates != 1 || counters.Rejects != 1 {
		t.Fatalf("counters = %+v", counters)
	}
}

// --- loopback fabric ------------------------------------------------------

// TestFabricSweepStealsFromSilentWorker is the subsystem's acceptance
// test: a worker leases a stripe and goes silent (from the coordinator's
// side, indistinguishable from SIGKILL — silence IS the failure), the
// lease expires, a surviving worker steals the stripe, and the merged
// stream is byte-identical to a single-process run.
func TestFabricSweepStealsFromSilentWorker(t *testing.T) {
	job := testJob(8)
	c, srv := newTestCoordinator(t, job, 250*time.Millisecond)

	// The victim takes a lease and is never heard from again.
	grant, status := leaseStripe(t, srv.URL, "victim")
	if status != http.StatusOK {
		t.Fatalf("victim lease status = %d", status)
	}

	runErr := make(chan error, 1)
	go func() { runErr <- c.Run(context.Background()) }()
	runWorkers(t, context.Background(), srv.URL, 3)
	if err := <-runErr; err != nil {
		t.Fatalf("coordinator Run: %v", err)
	}

	st := c.Status()
	if st.Phase != PhaseComplete {
		t.Fatalf("phase = %s, want %s", st.Phase, PhaseComplete)
	}
	if st.Counters.Expirations < 1 {
		t.Fatalf("counters = %+v; the victim's lease never expired", st.Counters)
	}
	if st.Counters.Steals < 1 {
		t.Fatalf("counters = %+v; stripe %d was never stolen", st.Counters, grant.Stripe)
	}

	merged, err := os.ReadFile(c.MergedPath())
	if err != nil {
		t.Fatalf("reading merged stream: %v", err)
	}
	if want := singleSweepStream(t, job); !bytes.Equal(merged, want) {
		t.Fatal("fabric-merged stream differs from the single-process stream")
	}

	// The /merged endpoint serves the same bytes.
	resp, err := http.Get(srv.URL + "/merged")
	if err != nil {
		t.Fatalf("GET /merged: %v", err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(served, merged) {
		t.Fatalf("GET /merged: status %d, %d bytes; want the merged stream", resp.StatusCode, len(served))
	}
}

// TestFabricCheckJobVerdictsIdentical distributes the model checker and
// checks the coordinator's verdict file is byte-identical to a
// single-process check of the same stack.
func TestFabricCheckJobVerdictsIdentical(t *testing.T) {
	job := JobSpec{Kind: CheckJob, Stack: "min", N: 3, T: 1, Stripes: 4}
	c, srv := newTestCoordinator(t, job, 2*time.Second)

	runErr := make(chan error, 1)
	go func() { runErr <- c.Run(context.Background()) }()
	runWorkers(t, context.Background(), srv.URL, 2)
	if err := <-runErr; err != nil {
		t.Fatalf("coordinator Run: %v", err)
	}

	got, err := os.ReadFile(c.MergedPath())
	if err != nil {
		t.Fatalf("reading verdicts: %v", err)
	}

	// The single-process reference: one 1-way shard index, merged, same
	// verdict writer, same options as the coordinator.
	ctx := context.Background()
	st, err := job.NewStack()
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	idx, err := episteme.BuildShardIndex(ctx, episteme.ContextFor(st), st.Action, 0, 1)
	if err != nil {
		t.Fatalf("BuildShardIndex 0/1: %v", err)
	}
	idx.Stack = job.Stack
	sys, err := episteme.MergeSystems(ctx, []*episteme.ShardIndex{idx})
	if err != nil {
		t.Fatalf("MergeSystems: %v", err)
	}
	var want bytes.Buffer
	if err := WriteVerdicts(ctx, &want, sys, job.Stack, VerdictOptions{Safety: true, Optimality: true}); err != nil {
		t.Fatalf("single-process verdicts: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("fabric verdicts differ from single-process:\n got: %q\nwant: %q", got, want.Bytes())
	}
}

// TestCoordinatorRestartResumes kills a coordinator (by building a fresh
// one over the same spool) after two verified stripes landed and a third
// was left torn on disk, and checks the successor trusts the intact
// stripes, sets the torn one aside, and finishes with only the missing
// work — to the same bytes as a single-process run.
func TestCoordinatorRestartResumes(t *testing.T) {
	job := testJob(4)
	spool := t.TempDir()

	first, err := NewCoordinator(CoordinatorConfig{Job: job, SpoolDir: spool, LeaseTTL: time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv1 := httptest.NewServer(first.Handler())
	if got := putStripe(t, srv1.URL, 0, "w0", stripePayload(t, job, 0)); got != http.StatusOK {
		t.Fatalf("uploading stripe 0: status %d", got)
	}
	if got := putStripe(t, srv1.URL, 1, "w0", stripePayload(t, job, 1)); got != http.StatusOK {
		t.Fatalf("uploading stripe 1: status %d", got)
	}
	srv1.Close()

	// A torn stripe file, as a crash mid-write would leave (the real
	// coordinator writes through temp+rename, so this is the defense in
	// depth for disks that lie).
	p2 := stripePayload(t, job, 2)
	torn := filepath.Join(spool, "stripe-0002.jsonl")
	if err := os.WriteFile(torn, p2[:len(p2)/2], 0o644); err != nil {
		t.Fatalf("writing torn stripe: %v", err)
	}

	second, err := NewCoordinator(CoordinatorConfig{Job: job, SpoolDir: spool, LeaseTTL: time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatalf("restarted NewCoordinator: %v", err)
	}
	if _, err := os.Stat(torn + ".rejected"); err != nil {
		t.Fatalf("torn stripe not set aside: %v", err)
	}
	counts, _ := second.table.snapshot()
	if counts.Done != 2 {
		t.Fatalf("recovered %d stripes, want 2", counts.Done)
	}

	srv2 := httptest.NewServer(second.Handler())
	defer srv2.Close()
	runErr := make(chan error, 1)
	go func() { runErr <- second.Run(context.Background()) }()
	runWorkers(t, context.Background(), srv2.URL, 1)
	if err := <-runErr; err != nil {
		t.Fatalf("restarted coordinator Run: %v", err)
	}
	merged, err := os.ReadFile(second.MergedPath())
	if err != nil {
		t.Fatalf("reading merged stream: %v", err)
	}
	if want := singleSweepStream(t, job); !bytes.Equal(merged, want) {
		t.Fatal("restart-resumed merge differs from the single-process stream")
	}
}

// TestDuplicateAndConflictingUploads pins the duplicate-resolution
// contract at the HTTP surface: a re-upload with the same digest is
// discarded with an acknowledgment, and a sealed VALID upload whose
// digest disagrees with the accepted one fails the whole job — loudly,
// as ErrConflict — because it means the sweep is non-deterministic
// somewhere, and no merge should paper over that.
func TestDuplicateAndConflictingUploads(t *testing.T) {
	job := testJob(2)
	c, srv := newTestCoordinator(t, job, time.Minute)

	p0 := stripePayload(t, job, 0)
	if got := putStripe(t, srv.URL, 0, "w-a", p0); got != http.StatusOK {
		t.Fatalf("first upload: status %d", got)
	}
	// Same bytes again: duplicate, acknowledged and discarded.
	if got := putStripe(t, srv.URL, 0, "w-b", p0); got != http.StatusOK {
		t.Fatalf("duplicate upload: status %d", got)
	}
	if st := c.Status(); st.Counters.Duplicates != 1 {
		t.Fatalf("counters = %+v, want one duplicate", st.Counters)
	}

	// A valid-but-different stream for stripe 0: same records re-sealed
	// after a mutation, digests recomputed, so it passes verification and
	// exercises the digest-conflict path, not the tamper path.
	or, err := core.NewOutcomeReader(bytes.NewReader(p0))
	if err != nil {
		t.Fatalf("NewOutcomeReader: %v", err)
	}
	var recs []core.OutcomeRecord
	for {
		rec, err := or.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		recs = append(recs, *rec)
	}
	recs[0].Rounds[0]++
	var conflicting bytes.Buffer
	if _, err := core.WriteOutcomeStream(&conflicting, or.Header(), recs); err != nil {
		t.Fatalf("WriteOutcomeStream: %v", err)
	}
	if got := putStripe(t, srv.URL, 0, "w-c", conflicting.Bytes()); got != http.StatusConflict {
		t.Fatalf("conflicting upload: status %d, want %d", got, http.StatusConflict)
	}

	// The job is failed: Run reports the conflict, new leases see 410.
	err = c.Run(context.Background())
	if !errors.Is(err, ErrConflict) || !errors.Is(err, ErrVerification) {
		t.Fatalf("Run after conflict = %v, want ErrConflict", err)
	}
	if _, status := leaseStripe(t, srv.URL, "late"); status != http.StatusGone {
		t.Fatalf("lease against a failed job: status %d, want %d", status, http.StatusGone)
	}
	// A worker that polls in now surfaces the failure as ErrVerification.
	w, err := NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "late-worker", Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	if _, werr := w.Run(context.Background()); !errors.Is(werr, ErrVerification) {
		t.Fatalf("late worker Run = %v, want ErrVerification", werr)
	}
}

// TestTamperedUploadRequeued checks a tampered (digest-broken) upload is
// rejected with 400 and the stripe goes back into circulation.
func TestTamperedUploadRequeued(t *testing.T) {
	job := testJob(2)
	c, srv := newTestCoordinator(t, job, time.Minute)

	p0 := stripePayload(t, job, 0)
	tampered := bytes.Replace(p0, []byte(`"sent":`), []byte(`"sent":9`), 1)
	if bytes.Equal(tampered, p0) {
		t.Fatal("tamper did not change the stream")
	}
	if got := putStripe(t, srv.URL, 0, "w-evil", tampered); got != http.StatusBadRequest {
		t.Fatalf("tampered upload: status %d, want %d", got, http.StatusBadRequest)
	}
	st := c.Status()
	if st.Counters.Rejects != 1 {
		t.Fatalf("counters = %+v, want one reject", st.Counters)
	}
	if st.Stripes.Done != 0 {
		t.Fatalf("stripes = %+v; a tampered upload completed a stripe", st.Stripes)
	}
	// The honest upload still lands.
	if got := putStripe(t, srv.URL, 0, "w-honest", p0); got != http.StatusOK {
		t.Fatalf("honest upload after tamper: status %d", got)
	}
}

// TestWorkerTransportExhaustion checks a worker facing a dead
// coordinator gives up after its bounded retries with ErrTransport —
// the exit-code-3 class.
func TestWorkerTransportExhaustion(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens here any more

	w, err := NewWorker(WorkerConfig{
		Coordinator: url,
		MaxRetries:  2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	if _, err := w.Run(context.Background()); !errors.Is(err, ErrTransport) {
		t.Fatalf("Run against a dead coordinator = %v, want ErrTransport", err)
	}
}

// TestWorkerRetriesTransientErrors fronts the coordinator with a flaky
// proxy that 500s the first few requests and checks the worker's backoff
// rides through them to a complete, byte-identical job.
func TestWorkerRetriesTransientErrors(t *testing.T) {
	job := testJob(2)
	c, _ := newTestCoordinator(t, job, 2*time.Second)

	var mu sync.Mutex
	failures := 3
	inner := c.Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		fail := failures > 0
		if fail {
			failures--
		}
		mu.Unlock()
		if fail {
			http.Error(w, "synthetic outage", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	runErr := make(chan error, 1)
	go func() { runErr <- c.Run(context.Background()) }()
	w, err := NewWorker(WorkerConfig{
		Coordinator: flaky.URL,
		ID:          "flaky-rider",
		MaxRetries:  8,
		BaseBackoff: time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	sum, err := w.Run(context.Background())
	if err != nil {
		t.Fatalf("worker Run through flaky proxy: %v", err)
	}
	if sum.Stripes != 2 {
		t.Fatalf("worker completed %d stripes, want 2", sum.Stripes)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("coordinator Run: %v", err)
	}
	merged, err := os.ReadFile(c.MergedPath())
	if err != nil {
		t.Fatalf("reading merged stream: %v", err)
	}
	if want := singleSweepStream(t, job); !bytes.Equal(merged, want) {
		t.Fatal("merged stream differs from the single-process stream")
	}
}

// TestWorkerDrain checks Drain ends an idle worker promptly (mid-poll,
// with the only stripe leased elsewhere) with a clean summary.
func TestWorkerDrain(t *testing.T) {
	job := testJob(1)
	_, srv := newTestCoordinator(t, job, time.Minute)
	if _, status := leaseStripe(t, srv.URL, "hog"); status != http.StatusOK {
		t.Fatalf("hog lease status = %d", status)
	}

	w, err := NewWorker(WorkerConfig{
		Coordinator:  srv.URL,
		ID:           "drainee",
		PollInterval: time.Hour, // only a Drain wake can end the poll sleep
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	done := make(chan struct{})
	var sum *WorkerSummary
	var runErr error
	go func() {
		defer close(done)
		sum, runErr = w.Run(context.Background())
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the poll sleep
	w.Drain()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drained worker did not return")
	}
	if runErr != nil {
		t.Fatalf("drained worker Run: %v", runErr)
	}
	if sum.Stripes != 0 {
		t.Fatalf("drained worker claims %d stripes", sum.Stripes)
	}
}

// TestJobSpecValidate pins the spec-level rejections.
func TestJobSpecValidate(t *testing.T) {
	bad := []JobSpec{
		{Kind: "weave", Stack: "min", N: 3, T: 1, Stripes: 2},
		{Kind: SweepJob, Stack: "", N: 3, T: 1, Stripes: 2},
		{Kind: SweepJob, Stack: "min", N: 3, T: 1, Stripes: 0},
		{Kind: SweepJob, Stack: "no-such-stack", N: 3, T: 1, Stripes: 2},
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid job", j)
		}
	}
	if err := testJob(4).Validate(); err != nil {
		t.Errorf("Validate(testJob) = %v", err)
	}
	if s := testJob(4).String(); !strings.Contains(s, "min") || !strings.Contains(s, "4") {
		t.Errorf("String() = %q", s)
	}
}

// --- result cache ---------------------------------------------------------

// newCacheCoordinator is newTestCoordinator with a hosted shared cache
// store mounted under /cache/.
func newCacheCoordinator(t *testing.T, job JobSpec, store rescache.Store) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{
		Job:        job,
		SpoolDir:   t.TempDir(),
		LeaseTTL:   2 * time.Second,
		Logf:       t.Logf,
		CacheStore: store,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

// runCachedWorkers runs n workers whose result cache is a client of the
// coordinator-hosted shared store.
func runCachedWorkers(t *testing.T, ctx context.Context, url, fingerprint string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator:  url,
			ID:           fmt.Sprintf("cw%d", i),
			PollInterval: 20 * time.Millisecond,
			BaseBackoff:  5 * time.Millisecond,
			Logf:         t.Logf,
			Cache:        rescache.NewClient(url + "/cache"),
			Fingerprint:  fingerprint,
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			_, errs[i] = w.Run(ctx)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("cached worker %d: %v", i, err)
		}
	}
}

// TestFabricSharedCache runs one sweep job twice against a single
// coordinator-hosted shared cache store: the first fleet fills it, the
// second answers from it, and both merged streams are byte-identical to
// the single-process reference. The hosted store's traffic shows up in
// the coordinator's status report.
func TestFabricSharedCache(t *testing.T) {
	job := testJob(4)
	want := singleSweepStream(t, job)
	store, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatalf("cache.Open: %v", err)
	}
	defer store.Close()

	var merged [2][]byte
	for round, label := range []string{"cold", "warm"} {
		c, srv := newCacheCoordinator(t, job, store)
		runErr := make(chan error, 1)
		go func() { runErr <- c.Run(context.Background()) }()
		runCachedWorkers(t, context.Background(), srv.URL, "fp", 2)
		if err := <-runErr; err != nil {
			t.Fatalf("%s coordinator Run: %v", label, err)
		}
		merged[round], err = os.ReadFile(c.MergedPath())
		if err != nil {
			t.Fatalf("reading %s merged stream: %v", label, err)
		}
		if !bytes.Equal(merged[round], want) {
			t.Fatalf("%s fabric-merged stream differs from the single-process stream", label)
		}
		rep := c.Status()
		if rep.Cache == nil {
			t.Fatalf("%s status reports no hosted cache", label)
		}
		if round == 0 && rep.Cache.Puts == 0 {
			t.Fatal("cold fleet stored nothing in the shared cache")
		}
		if round == 1 && rep.Cache.Hits == 0 {
			t.Fatal("warm fleet hit nothing in the shared cache")
		}
	}
	if !bytes.Equal(merged[0], merged[1]) {
		t.Fatal("cold and warm merged streams differ")
	}
	if st := store.Stats(); st.Hits == 0 || st.Puts == 0 {
		t.Fatalf("shared store stats = %+v; want both puts and hits", st)
	}
}

// TestFabricSharedCacheCheckJob runs the same warm/cold equivalence for
// a distributed model check: cached verdicts match the uncached fleet's.
func TestFabricSharedCacheCheckJob(t *testing.T) {
	job := JobSpec{Kind: CheckJob, Stack: "min", N: 3, T: 1, Stripes: 2}

	// Uncached reference fleet.
	ref, refSrv := newTestCoordinator(t, job, 2*time.Second)
	runErr := make(chan error, 1)
	go func() { runErr <- ref.Run(context.Background()) }()
	runWorkers(t, context.Background(), refSrv.URL, 2)
	if err := <-runErr; err != nil {
		t.Fatalf("reference coordinator Run: %v", err)
	}
	want, err := os.ReadFile(ref.MergedPath())
	if err != nil {
		t.Fatalf("reading reference verdicts: %v", err)
	}

	store, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatalf("cache.Open: %v", err)
	}
	defer store.Close()
	for _, label := range []string{"cold", "warm"} {
		c, srv := newCacheCoordinator(t, job, store)
		go func() { runErr <- c.Run(context.Background()) }()
		runCachedWorkers(t, context.Background(), srv.URL, "fp", 2)
		if err := <-runErr; err != nil {
			t.Fatalf("%s coordinator Run: %v", label, err)
		}
		got, err := os.ReadFile(c.MergedPath())
		if err != nil {
			t.Fatalf("reading %s verdicts: %v", label, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s cached fleet verdicts differ from the uncached fleet's", label)
		}
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Fatalf("shared store stats = %+v; warm check job hit nothing", st)
	}
}

// TestHeartbeatCarriesCacheReport pins the status plumbing: a heartbeat
// with cache counters lands in the worker's status row; one without
// leaves the last report standing.
func TestHeartbeatCarriesCacheReport(t *testing.T) {
	c, srv := newTestCoordinator(t, testJob(2), time.Minute)
	grant, status := leaseStripe(t, srv.URL, "wx")
	if status != http.StatusOK {
		t.Fatalf("lease status = %d", status)
	}

	beat := func(req HeartbeatRequest) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/heartbeat", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /heartbeat: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("heartbeat status = %d", resp.StatusCode)
		}
	}

	beat(HeartbeatRequest{Worker: "wx", Stripe: grant.Stripe,
		Cache: &CacheReport{Hits: 7, Misses: 3, Puts: 3, BytesServed: 700, BytesWritten: 300}})
	rep := c.Status()
	wr, ok := rep.Workers["wx"]
	if !ok || wr.Cache == nil {
		t.Fatalf("status = %+v; worker wx has no cache report", rep.Workers)
	}
	if wr.Cache.Hits != 7 || wr.Cache.Misses != 3 || wr.Cache.BytesServed != 700 {
		t.Fatalf("worker cache report = %+v", wr.Cache)
	}
	if rep.Cache != nil {
		t.Fatal("coordinator hosts no store but reports cache traffic")
	}
	if wr.CacheStale {
		t.Fatal("a report delivered by the latest heartbeat is flagged stale")
	}

	// A cache-less heartbeat must not erase the last report — it must
	// survive as last-known counters, flagged stale.
	beat(HeartbeatRequest{Worker: "wx", Stripe: grant.Stripe})
	wr = c.Status().Workers["wx"]
	if wr.Cache == nil || wr.Cache.Hits != 7 {
		t.Fatalf("cache report after plain heartbeat = %+v; want the last snapshot kept", wr.Cache)
	}
	if !wr.CacheStale {
		t.Fatal("last-known counters after a cacheless heartbeat are not flagged stale")
	}
}

// TestStatusAgesStaleCacheReport drives the staleness accounting with a
// fake clock: a worker that reports cache counters once and then
// heartbeats cacheless (a restart without its cache, say) keeps its
// last-known counters in /status, flagged stale and aged from the
// moment the report arrived.
func TestStatusAgesStaleCacheReport(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	c, err := NewCoordinator(CoordinatorConfig{
		Job:      testJob(2),
		SpoolDir: t.TempDir(),
		LeaseTTL: time.Hour,
		Logf:     t.Logf,
		now:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	grant, status := leaseStripe(t, srv.URL, "wr")
	if status != http.StatusOK {
		t.Fatalf("lease status = %d", status)
	}
	beat := func(req HeartbeatRequest) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/heartbeat", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /heartbeat: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("heartbeat status = %d", resp.StatusCode)
		}
	}

	beat(HeartbeatRequest{Worker: "wr", Stripe: grant.Stripe, Cache: &CacheReport{Hits: 5, Misses: 1}})
	wr := c.Status().Workers["wr"]
	if wr.Cache == nil || wr.CacheStale || wr.CacheAgeMillis != 0 {
		t.Fatalf("fresh report: cache=%+v stale=%v age=%dms; want a live zero-age snapshot",
			wr.Cache, wr.CacheStale, wr.CacheAgeMillis)
	}

	now = now.Add(4 * time.Second)
	beat(HeartbeatRequest{Worker: "wr", Stripe: grant.Stripe})
	wr = c.Status().Workers["wr"]
	if wr.Cache == nil || wr.Cache.Hits != 5 {
		t.Fatalf("cache report after cacheless heartbeat = %+v; want the counters preserved", wr.Cache)
	}
	if !wr.CacheStale || wr.CacheAgeMillis != 4000 {
		t.Fatalf("stale=%v age=%dms; want stale last-known counters aged 4000ms", wr.CacheStale, wr.CacheAgeMillis)
	}
}
