// The coordinator: one job, M stripes, any number of workers. It owns
// the lease table, verifies every upload before trusting it, spools
// verified stripes to disk (so a restarted coordinator resumes instead of
// rerunning), and runs the canonical merge when the last stripe lands.

package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	rescache "repro/internal/cache"
	"repro/internal/core"
	"repro/internal/episteme"
)

// CoordinatorConfig configures NewCoordinator.
type CoordinatorConfig struct {
	// Job is the one job this coordinator distributes.
	Job JobSpec
	// SpoolDir persists verified stripe uploads and the merged output. A
	// coordinator restarted over the same spool re-verifies the stripes
	// on disk and resumes with only the missing ones outstanding.
	SpoolDir string
	// LeaseTTL is how long a stripe lease survives without a heartbeat
	// before the stripe is requeued (default 10s). Slow and crashed
	// workers are treated identically: silence past the TTL is failure.
	LeaseTTL time.Duration
	// Parallelism bounds the merge/verdict worker pool (0 = one per CPU).
	Parallelism int
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// CacheStore, when set, is served under /cache/ as a shared result
	// cache for the fleet (workers point -cache-url at it); its traffic
	// shows up in StatusReport.Cache.
	CacheStore rescache.Store

	// now overrides the clock in tests.
	now func() time.Time
}

// Coordinator serves the fabric's coordinator side. Create one with
// NewCoordinator, mount Handler on an HTTP server, and call Run to drive
// lease expiry and the final merge.
type Coordinator struct {
	job     JobSpec
	horizon int // the stack's effective execution horizon
	spool   string
	ttl     time.Duration
	par     int
	logf    func(string, ...any)
	now     func() time.Time
	table   *leaseTable
	wake    chan struct{}
	cstore  rescache.Store

	mu            sync.Mutex
	phase         string
	failure       error
	workers       map[string]*workerStats
	mergedRecords int64
	mergedDigest  string
	verdictErr    error
}

type workerStats struct {
	stripes     int
	records     int64
	first, last time.Time
	cache       *CacheReport // last-known cache counters, nil if never reported
	cacheAt     time.Time    // when that report arrived (zero if never)
}

// NewCoordinator validates the job, prepares the spool directory, and
// recovers any verified stripes already on disk.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.Job.Validate(); err != nil {
		return nil, err
	}
	st, err := cfg.Job.NewStack()
	if err != nil {
		return nil, err
	}
	if cfg.SpoolDir == "" {
		return nil, fmt.Errorf("fabric: coordinator needs a spool directory")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: creating spool: %w", err)
	}
	c := &Coordinator{
		job:     cfg.Job,
		horizon: st.Horizon(),
		spool:   cfg.SpoolDir,
		ttl:     cfg.LeaseTTL,
		par:     cfg.Parallelism,
		logf:    cfg.Logf,
		now:     cfg.now,
		table:   newLeaseTable(cfg.Job.Stripes, cfg.LeaseTTL, cfg.now),
		wake:    make(chan struct{}, 1),
		cstore:  cfg.CacheStore,
		phase:   PhaseRunning,
		workers: make(map[string]*workerStats),
	}
	if err := c.recover(); err != nil {
		return nil, err
	}
	return c, nil
}

// stripePath is the spool location of a verified stripe.
func (c *Coordinator) stripePath(stripe int) string {
	ext := "jsonl"
	if c.job.Kind == CheckJob {
		ext = "json"
	}
	return filepath.Join(c.spool, fmt.Sprintf("stripe-%04d.%s", stripe, ext))
}

// MergedPath is the spool location of the merged output: the canonical
// outcome stream of a sweep job, the verdict lines of a check job. The
// file exists once Run has completed the merge.
func (c *Coordinator) MergedPath() string {
	if c.job.Kind == CheckJob {
		return filepath.Join(c.spool, "verdicts.txt")
	}
	return filepath.Join(c.spool, "merged.jsonl")
}

// recover re-verifies stripe files a previous coordinator left in the
// spool and marks the intact ones done. A torn file — the mark of a
// coordinator killed mid-rename or a corrupted disk — is set aside and
// its stripe rerun.
func (c *Coordinator) recover() error {
	recovered := 0
	for i := 0; i < c.job.Stripes; i++ {
		path := c.stripePath(i)
		f, err := os.Open(path)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("fabric: reading spooled stripe: %w", err)
		}
		digest, _, verr := c.verifyStripe(f, i)
		f.Close()
		if verr != nil {
			c.logf("fabric: spooled stripe %d failed re-verification (%v); set aside for rerun", i, verr)
			if err := os.Rename(path, path+".rejected"); err != nil {
				return fmt.Errorf("fabric: setting aside torn stripe: %w", err)
			}
			continue
		}
		c.table.markDone(i, digest)
		recovered++
	}
	if recovered > 0 {
		c.logf("fabric: recovered %d verified stripe(s) from %s", recovered, c.spool)
	}
	return nil
}

// verifyStripe checks one uploaded (or spooled) stripe end to end:
// format, record digests, sealed footer, and membership — the stream
// must describe exactly stripe `stripe` of this job. It returns the
// stripe's digest and record count.
func (c *Coordinator) verifyStripe(r io.Reader, stripe int) (digest string, records int64, err error) {
	if c.job.Kind == CheckJob {
		idx, err := episteme.ReadShardIndex(r)
		if err != nil {
			return "", 0, err
		}
		if err := idx.Validate(); err != nil {
			return "", 0, err
		}
		if idx.Shard != stripe || idx.Shards != c.job.Stripes {
			return "", 0, fmt.Errorf("index is stripe %d/%d, expected %d/%d", idx.Shard, idx.Shards, stripe, c.job.Stripes)
		}
		if idx.Stack != c.job.Stack || idx.N != c.job.N || idx.T != c.job.T || idx.Horizon != c.horizon {
			return "", 0, fmt.Errorf("index built %s(n=%d,t=%d,h=%d), job is %s(n=%d,t=%d,h=%d)",
				idx.Stack, idx.N, idx.T, idx.Horizon, c.job.Stack, c.job.N, c.job.T, c.horizon)
		}
		return idx.Digest(), int64(len(idx.Runs)), nil
	}
	sum, err := core.VerifyOutcomeStream(r)
	if err != nil {
		return "", 0, err
	}
	h := sum.Header
	if h.Shard != stripe || h.Shards != c.job.Stripes {
		return "", 0, fmt.Errorf("stream is stripe %d/%d, expected %d/%d", h.Shard, h.Shards, stripe, c.job.Stripes)
	}
	if h.Stack != c.job.Stack || h.N != c.job.N || h.T != c.job.T || h.Horizon != c.horizon {
		return "", 0, fmt.Errorf("stream ran %s(n=%d,t=%d,h=%d), job is %s(n=%d,t=%d,h=%d)",
			h.Stack, h.N, h.T, h.Horizon, c.job.Stack, c.job.N, c.job.T, c.horizon)
	}
	return sum.Digest, sum.Records, nil
}

// --- HTTP surface ---------------------------------------------------------

// Handler returns the coordinator's HTTP handler (the wire protocol in
// the package comment).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/job", c.handleJob)
	mux.HandleFunc("/lease", c.handleLease)
	mux.HandleFunc("/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/result/", c.handleResult)
	mux.HandleFunc("/status", c.handleStatus)
	mux.HandleFunc("/merged", c.handleMerged)
	if c.cstore != nil {
		mux.Handle("/cache/", http.StripPrefix("/cache", rescache.NewServer(c.cstore)))
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// gone answers a request against a finished (or failed) job.
func (c *Coordinator) gone(w http.ResponseWriter) {
	c.mu.Lock()
	done := JobDone{Phase: c.phase}
	if c.failure != nil {
		done.Error = c.failure.Error()
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusGone, done)
}

// accepting reports whether the job still hands out and accepts work.
func (c *Coordinator) accepting() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phase == PhaseRunning
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, c.job)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "lease request needs a worker id", http.StatusBadRequest)
		return
	}
	if !c.accepting() {
		c.gone(w)
		return
	}
	c.touchWorker(req.Worker)
	stripe, ok := c.table.lease(req.Worker)
	if !ok {
		// Nothing leasable right now: every remaining stripe is leased
		// out (or the last uploads are in flight). The worker backs off
		// and polls again — it may yet steal an expired stripe.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	c.logf("fabric: leased stripe %d/%d to %s", stripe, c.job.Stripes, req.Worker)
	writeJSON(w, http.StatusOK, LeaseGrant{Stripe: stripe, Stripes: c.job.Stripes, TTLMillis: c.ttl.Milliseconds()})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "heartbeat needs a worker id and stripe", http.StatusBadRequest)
		return
	}
	if !c.accepting() {
		c.gone(w)
		return
	}
	c.touchWorker(req.Worker)
	// A heartbeat without a CacheReport (a worker restarted without its
	// cache, or one that never ran one) must not clear the last-known
	// counters: Status keeps them and flags them stale instead, so the
	// fleet's cache history survives a cacheless restart.
	if req.Cache != nil {
		snap := *req.Cache
		c.mu.Lock()
		if ws := c.workers[req.Worker]; ws != nil {
			ws.cache = &snap
			ws.cacheAt = c.now()
		}
		c.mu.Unlock()
	}
	if !c.table.heartbeat(req.Worker, req.Stripe) {
		http.Error(w, "lease lost", http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut {
		http.Error(w, "PUT only", http.StatusMethodNotAllowed)
		return
	}
	stripe, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/result/"))
	if err != nil || stripe < 0 || stripe >= c.job.Stripes {
		http.Error(w, fmt.Sprintf("no such stripe %q", strings.TrimPrefix(r.URL.Path, "/result/")), http.StatusNotFound)
		return
	}
	if !c.accepting() {
		c.gone(w)
		return
	}
	worker := r.URL.Query().Get("worker")
	c.touchWorker(worker)

	// Spool the upload first, verify from disk, and only rename a fully
	// verified stripe into place: a coordinator killed at any point here
	// leaves either nothing or a torn temp file, never a trusted torn
	// stripe.
	tmp, err := os.CreateTemp(c.spool, "upload-*")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer os.Remove(tmp.Name())
	if _, err := io.Copy(tmp, r.Body); err != nil {
		tmp.Close()
		c.table.reject(stripe)
		c.logf("fabric: stripe %d upload from %s torn mid-transfer (%v); requeued", stripe, worker, err)
		http.Error(w, fmt.Sprintf("upload torn: %v", err), http.StatusBadRequest)
		return
	}
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		tmp.Close()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	digest, records, verr := c.verifyStripe(tmp, stripe)
	tmp.Close()
	if verr != nil {
		c.table.reject(stripe)
		c.logf("fabric: stripe %d upload from %s failed verification (%v); requeued", stripe, worker, verr)
		http.Error(w, fmt.Sprintf("verification failed: %v", verr), http.StatusBadRequest)
		return
	}

	first, cerr := c.table.complete(stripe, digest, worker)
	if cerr != nil {
		c.failJob(cerr)
		c.logf("fabric: FATAL: %v", cerr)
		http.Error(w, cerr.Error(), http.StatusConflict)
		return
	}
	if !first {
		c.logf("fabric: stripe %d re-uploaded by %s with matching digest; discarded", stripe, worker)
		writeJSON(w, http.StatusOK, ResultAck{Stripe: stripe, Duplicate: true, Records: records, Digest: digest})
		return
	}
	if err := os.Rename(tmp.Name(), c.stripePath(stripe)); err != nil {
		// The table says done but the spool write failed — surface it as
		// a job failure rather than merge from a missing file.
		c.failJob(fmt.Errorf("fabric: spooling stripe %d: %w", stripe, err))
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	c.creditWorker(worker, records)
	counts, _ := c.table.snapshot()
	c.logf("fabric: stripe %d accepted from %s (%d records, digest %s) — %d/%d done",
		stripe, worker, records, digest, counts.Done, counts.Total)
	if c.table.allDone() {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
	writeJSON(w, http.StatusOK, ResultAck{Stripe: stripe, Records: records, Digest: digest})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleMerged(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	c.mu.Lock()
	ready := c.phase == PhaseComplete
	c.mu.Unlock()
	if !ready {
		http.Error(w, "merge not complete", http.StatusNotFound)
		return
	}
	f, err := os.Open(c.MergedPath())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f)
}

// --- bookkeeping ----------------------------------------------------------

func (c *Coordinator) touchWorker(id string) {
	if id == "" {
		return
	}
	now := c.now()
	c.mu.Lock()
	ws := c.workers[id]
	if ws == nil {
		ws = &workerStats{first: now}
		c.workers[id] = ws
	}
	ws.last = now
	c.mu.Unlock()
}

func (c *Coordinator) creditWorker(id string, records int64) {
	if id == "" {
		return
	}
	c.mu.Lock()
	if ws := c.workers[id]; ws != nil {
		ws.stripes++
		ws.records += records
	}
	c.mu.Unlock()
}

func (c *Coordinator) failJob(err error) {
	c.mu.Lock()
	if c.phase != PhaseFailed {
		c.phase = PhaseFailed
		c.failure = err
	}
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Status reports the job's progress: stripe states, per-worker
// throughput, and the fabric's retry/steal counters.
func (c *Coordinator) Status() StatusReport {
	counts, counters := c.table.snapshot()
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := StatusReport{
		Job:           c.job,
		Phase:         c.phase,
		Stripes:       counts,
		Counters:      counters,
		MergedRecords: c.mergedRecords,
		MergedDigest:  c.mergedDigest,
	}
	if c.failure != nil {
		rep.Error = c.failure.Error()
	} else if c.verdictErr != nil {
		rep.Error = c.verdictErr.Error()
	}
	if len(c.workers) > 0 {
		rep.Workers = make(map[string]WorkerReport, len(c.workers))
		for id, ws := range c.workers {
			wr := WorkerReport{
				Stripes:    ws.stripes,
				Records:    ws.records,
				IdleMillis: now.Sub(ws.last).Milliseconds(),
			}
			if window := ws.last.Sub(ws.first); window > 0 && ws.records > 0 {
				wr.RecordsPerSecond = float64(ws.records) / window.Seconds()
			}
			if ws.cache != nil {
				snap := *ws.cache
				wr.Cache = &snap
				// Stale: the worker has been heard from since its last
				// cache report, so the counters are history, not a live
				// snapshot.
				wr.CacheStale = ws.last.After(ws.cacheAt)
				wr.CacheAgeMillis = now.Sub(ws.cacheAt).Milliseconds()
			}
			rep.Workers[id] = wr
		}
	}
	if c.cstore != nil {
		st := c.cstore.Stats()
		rep.Cache = &CacheReport{
			Hits:         st.Hits,
			Misses:       st.Misses,
			Puts:         st.Puts,
			BytesServed:  st.BytesServed,
			BytesWritten: st.BytesWritten,
		}
	}
	return rep
}

// --- the run loop and the merge -------------------------------------------

// Run drives the job: it expires stale leases on a ticker, waits for the
// last stripe, runs the canonical merge, and returns. A digest conflict
// or spool failure fails the job (ErrVerification); a check job whose
// merged verdicts fail returns that verification error with the job still
// complete (the verdict file names the violations). The HTTP handlers
// stay functional after Run returns — polling workers see 410 and drain.
func (c *Coordinator) Run(ctx context.Context) error {
	interval := c.ttl / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		c.mu.Lock()
		phase, failure := c.phase, c.failure
		c.mu.Unlock()
		if phase == PhaseFailed {
			return failure
		}
		if c.table.allDone() {
			break
		}
		select {
		case <-ctx.Done():
			err := context.Cause(ctx)
			c.failJob(fmt.Errorf("fabric: job aborted: %w", err))
			return err
		case <-c.wake:
		case <-ticker.C:
			if n := c.table.expire(); n > 0 {
				c.logf("fabric: %d lease(s) expired without a heartbeat; stripes requeued for stealing", n)
			}
		}
	}

	c.mu.Lock()
	c.phase = PhaseMerging
	c.mu.Unlock()
	c.logf("fabric: all %d stripes verified; merging", c.job.Stripes)
	if err := c.merge(ctx); err != nil {
		c.failJob(err)
		return err
	}
	c.mu.Lock()
	c.phase = PhaseComplete
	verdictErr := c.verdictErr
	records, digest := c.mergedRecords, c.mergedDigest
	c.mu.Unlock()
	if c.job.Kind == CheckJob {
		c.logf("fabric: job complete: %d runs checked (verdicts in %s)", records, c.MergedPath())
	} else {
		c.logf("fabric: job complete: %d records, digest %s (%s)", records, digest, c.MergedPath())
	}
	return verdictErr
}

// merge runs the canonical fan-in over the spooled stripes. The merged
// output is written through a temp file and renamed, so the spool never
// holds a torn merged file.
func (c *Coordinator) merge(ctx context.Context) error {
	tmp, err := os.CreateTemp(c.spool, "merged-*")
	if err != nil {
		return fmt.Errorf("fabric: creating merged output: %w", err)
	}
	defer os.Remove(tmp.Name())

	if c.job.Kind == CheckJob {
		shards := make([]*episteme.ShardIndex, c.job.Stripes)
		for i := range shards {
			f, err := os.Open(c.stripePath(i))
			if err != nil {
				tmp.Close()
				return fmt.Errorf("%w: opening spooled stripe: %v", ErrVerification, err)
			}
			idx, rerr := episteme.ReadShardIndex(f)
			f.Close()
			if rerr != nil {
				tmp.Close()
				return fmt.Errorf("%w: re-reading stripe %d: %v", ErrVerification, i, rerr)
			}
			shards[i] = idx
		}
		sys, err := episteme.MergeSystems(ctx, shards, episteme.WithParallelism(c.par))
		if err != nil {
			tmp.Close()
			return fmt.Errorf("%w: merging shard indexes: %v", ErrVerification, err)
		}
		verdictErr := WriteVerdicts(ctx, tmp, sys, c.job.Stack, VerdictOptions{Safety: true, Optimality: true})
		if verdictErr != nil && !errors.Is(verdictErr, ErrVerification) {
			tmp.Close()
			return verdictErr
		}
		if err := tmp.Close(); err != nil {
			return fmt.Errorf("fabric: writing verdicts: %w", err)
		}
		if err := os.Rename(tmp.Name(), c.MergedPath()); err != nil {
			return fmt.Errorf("fabric: publishing verdicts: %w", err)
		}
		c.mu.Lock()
		c.mergedRecords = int64(len(sys.Runs))
		c.verdictErr = verdictErr
		c.mu.Unlock()
		return nil
	}

	readers := make([]io.Reader, c.job.Stripes)
	files := make([]*os.File, c.job.Stripes)
	defer func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()
	for i := range readers {
		f, err := os.Open(c.stripePath(i))
		if err != nil {
			tmp.Close()
			return fmt.Errorf("%w: opening spooled stripe: %v", ErrVerification, err)
		}
		files[i], readers[i] = f, f
	}
	sum, err := core.MergeOutcomes(tmp, readers...)
	if err != nil {
		tmp.Close()
		return fmt.Errorf("%w: merging outcome streams: %v", ErrVerification, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fabric: writing merged stream: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.MergedPath()); err != nil {
		return fmt.Errorf("fabric: publishing merged stream: %w", err)
	}
	c.mu.Lock()
	c.mergedRecords, c.mergedDigest = sum.Total, sum.Digest
	c.mu.Unlock()
	return nil
}
