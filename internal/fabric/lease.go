// The lease table: the coordinator's failure detector and work queue in
// one structure. Every stripe is pending, leased, or done; a lease is a
// promise to heartbeat, and a worker that stops heartbeating — crashed,
// partitioned, or merely slow — is treated identically (the adaptive-
// omission stance: silence IS the failure), its stripe requeued for the
// next lease request. Completion is keyed on content, not on lease
// ownership: any sealed valid upload completes a stripe, the first one
// wins, and a second upload must match its digest or the job aborts.

package fabric

import (
	"fmt"
	"sync"
	"time"
)

type stripeState int8

const (
	stripePending stripeState = iota
	stripeLeased
	stripeDone
)

// leaseTable tracks the job's stripes. All methods are safe for
// concurrent use; time is injected so tests can drive expiry.
type leaseTable struct {
	ttl time.Duration
	now func() time.Time

	mu       sync.Mutex
	state    []stripeState
	holder   []string    // current lease holder (leased stripes)
	expired  []string    // last holder to lose a lease on the stripe
	deadline []time.Time // heartbeat deadline (leased stripes)
	digest   []string    // accepted digest (done stripes)
	done     int
	counters Counters
}

func newLeaseTable(stripes int, ttl time.Duration, now func() time.Time) *leaseTable {
	return &leaseTable{
		ttl:      ttl,
		now:      now,
		state:    make([]stripeState, stripes),
		holder:   make([]string, stripes),
		expired:  make([]string, stripes),
		deadline: make([]time.Time, stripes),
		digest:   make([]string, stripes),
	}
}

// expireLocked requeues every leased stripe whose heartbeat deadline has
// passed. Callers hold t.mu.
func (t *leaseTable) expireLocked() int {
	now := t.now()
	n := 0
	for i, s := range t.state {
		if s == stripeLeased && now.After(t.deadline[i]) {
			t.state[i] = stripePending
			t.expired[i] = t.holder[i]
			t.holder[i] = ""
			t.counters.Expirations++
			n++
		}
	}
	return n
}

// expire requeues timed-out leases and returns how many it reclaimed.
func (t *leaseTable) expire() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.expireLocked()
}

// lease grants the lowest pending stripe to the worker, expiring stale
// leases first so a dead worker's stripes circulate without waiting for
// the coordinator's ticker.
func (t *leaseTable) lease(worker string) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	for i, s := range t.state {
		if s != stripePending {
			continue
		}
		t.state[i] = stripeLeased
		t.holder[i] = worker
		t.deadline[i] = t.now().Add(t.ttl)
		t.counters.Leases++
		return i, true
	}
	return 0, false
}

// heartbeat renews the worker's lease on the stripe. It reports false
// when the lease is gone — expired and possibly re-granted — which tells
// the worker to abandon the stripe.
func (t *leaseTable) heartbeat(worker string, stripe int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if stripe < 0 || stripe >= len(t.state) {
		return false
	}
	if t.state[stripe] != stripeLeased || t.holder[stripe] != worker {
		return false
	}
	t.deadline[stripe] = t.now().Add(t.ttl)
	return true
}

// complete records a verified upload of the stripe. The first sealed
// valid upload wins regardless of who holds the lease (a stolen stripe's
// original runner may finish first — that's still the deterministic
// answer). A duplicate with the same digest is discarded as a no-op; a
// duplicate with a different digest is a fatal inconsistency.
func (t *leaseTable) complete(stripe int, digest, worker string) (first bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if stripe < 0 || stripe >= len(t.state) {
		return false, fmt.Errorf("fabric: stripe %d outside [0, %d)", stripe, len(t.state))
	}
	if t.state[stripe] == stripeDone {
		if t.digest[stripe] != digest {
			return false, fmt.Errorf("%w: stripe %d accepted digest %s, new sealed upload digests %s",
				ErrConflict, stripe, t.digest[stripe], digest)
		}
		t.counters.Duplicates++
		return false, nil
	}
	// A completion by someone other than the worker the stripe last
	// expired away from means the reassignment actually paid off.
	if t.expired[stripe] != "" && t.expired[stripe] != worker {
		t.counters.Steals++
	}
	t.state[stripe] = stripeDone
	t.holder[stripe] = ""
	t.digest[stripe] = digest
	t.done++
	return true, nil
}

// reject requeues a stripe whose upload failed verification. Torn or
// tampered uploads land here — exactly the failures lease reassignment
// exists for, so the stripe goes straight back into circulation.
func (t *leaseTable) reject(stripe int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if stripe < 0 || stripe >= len(t.state) || t.state[stripe] == stripeDone {
		return
	}
	t.state[stripe] = stripePending
	t.expired[stripe] = t.holder[stripe]
	t.holder[stripe] = ""
	t.counters.Rejects++
}

// markDone records a stripe recovered from disk (coordinator restart).
func (t *leaseTable) markDone(stripe int, digest string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[stripe] != stripeDone {
		t.state[stripe] = stripeDone
		t.digest[stripe] = digest
		t.done++
	}
}

// allDone reports whether every stripe has a verified result.
func (t *leaseTable) allDone() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done == len(t.state)
}

// snapshot returns the stripe counts and counters for the status report.
func (t *leaseTable) snapshot() (StripeCounts, Counters) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := StripeCounts{Total: len(t.state), Done: t.done}
	for _, s := range t.state {
		switch s {
		case stripePending:
			c.Pending++
		case stripeLeased:
			c.Leased++
		}
	}
	return c, t.counters
}
