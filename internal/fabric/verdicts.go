// Deterministic verdict output, shared by every fan-in: cmd/ebashard's
// -check -merge and the fabric coordinator's check-job merge write their
// verdict lines through this one function, so a fabric run's verdicts
// diff clean against a single-process run's.

package fabric

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/episteme"
	"repro/internal/registry"
)

// VerdictOptions tunes WriteVerdicts.
type VerdictOptions struct {
	// Safety also checks the Definition 6.2 safety condition.
	Safety bool
	// Optimality checks the Theorem 7.5 characterization (fip only).
	Optimality bool
	// MaxViolations caps the violations listed per check (0 = 5).
	MaxViolations int
}

// WriteVerdicts writes the deterministic verdict block — stack line, run
// count, then one verdict per enabled check, no timings — so sharded,
// fabric-merged, and single-process outputs compare byte for byte. The
// stack name is resolved against the registry for its knowledge-based
// program. Failed verdicts return an ErrVerification-wrapped error after
// the full block is written; the output itself names the violations.
func WriteVerdicts(ctx context.Context, w io.Writer, sys *episteme.System, stackName string, opts VerdictOptions) error {
	if stackName == "" {
		return fmt.Errorf("fabric: no stack name to resolve a knowledge-based program for")
	}
	var info registry.StackInfo
	for _, si := range registry.Stacks() {
		if si.Name == stackName {
			info = si
			break
		}
	}
	if info.Name == "" {
		return fmt.Errorf("fabric: unknown stack %q", stackName)
	}
	if info.Program == "" {
		return fmt.Errorf("fabric: stack %q declares no knowledge-based program to check against", stackName)
	}
	prog := episteme.P0
	if info.Program == "P1" {
		prog = episteme.P1
	}
	max := opts.MaxViolations
	if max <= 0 {
		max = 5
	}

	// A symmetry-quotiented system (shards built with -quotient) carries
	// one run per agent-permutation orbit; expand it back to the full
	// sweep before checking, so the verdict block — including the run
	// count — is byte-identical to an unquotiented run's.
	if sys.Quotiented() {
		stack, err := core.NewStack(stackName, core.WithN(sys.N), core.WithT(sys.T), core.WithHorizon(sys.Horizon))
		if err != nil {
			return fmt.Errorf("fabric: resolving stack for quotient expansion: %w", err)
		}
		sys, err = episteme.ExpandQuotient(ctx, sys, episteme.ContextFor(stack))
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "stack: %s (n=%d, t=%d, horizon=%d)\n", stackName, sys.N, sys.T, sys.Horizon)
	fmt.Fprintf(w, "runs: %d\n", len(sys.Runs))

	failed := false
	ms, err := sys.CheckImplements(ctx, prog, max)
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		fmt.Fprintf(w, "implements %v: OK\n", prog)
	} else {
		failed = true
		fmt.Fprintf(w, "implements %v: FAILED\n", prog)
		for _, m := range ms {
			fmt.Fprintf(w, "  %s\n", m)
		}
	}

	if opts.Safety {
		vs, err := sys.CheckSafety(ctx, max)
		if err != nil {
			return err
		}
		if len(vs) == 0 {
			fmt.Fprintf(w, "safety: OK\n")
		} else {
			fmt.Fprintf(w, "safety: violated\n")
			for _, v := range vs {
				fmt.Fprintf(w, "  %s\n", v)
			}
			// The fip stacks decide past the safety condition's horizon by
			// design; their safety line is informative, not a failure.
			if !strings.HasPrefix(stackName, "fip") {
				failed = true
			}
		}
	}

	if opts.Optimality && stackName == "fip" {
		vs, err := sys.CheckOptimalityFIP(ctx, -1, max)
		if err != nil {
			return err
		}
		if len(vs) == 0 {
			fmt.Fprintf(w, "optimality: OK\n")
		} else {
			failed = true
			fmt.Fprintf(w, "optimality: FAILED\n")
			for _, v := range vs {
				fmt.Fprintf(w, "  %s\n", v)
			}
		}
	}
	if failed {
		return fmt.Errorf("%w: verdicts failed", ErrVerification)
	}
	return nil
}
