// The worker client: pull a lease, run the stripe through the existing
// single-process paths (Runner.RunShard / BuildShardIndex), heartbeat
// while it runs, upload the sealed result, repeat. Transport failures
// retry with exponential backoff and jitter, bounded; a lost lease just
// abandons the stripe (someone else owns it now); SIGTERM-style draining
// finishes the stripe in hand and uploads it before exiting.

package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"

	rescache "repro/internal/cache"
	"repro/internal/core"
	"repro/internal/episteme"
	"repro/internal/spec"
)

// WorkerConfig configures NewWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID identifies this worker to the coordinator (default hostname-pid).
	ID string
	// Parallelism bounds the per-stripe worker pool (0 = one per CPU; it
	// never changes the stripe's bytes).
	Parallelism int
	// RequestTimeout bounds every HTTP request through its context
	// (default 30s) — the -timeout flag lands here.
	RequestTimeout time.Duration
	// MaxRetries bounds retries per request beyond the first attempt
	// (default 8); retries back off exponentially from BaseBackoff
	// (default 100ms) capped at MaxBackoff (default 5s), with jitter.
	MaxRetries  int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// PollInterval is the pause between lease polls when the coordinator
	// has nothing leasable (default 500ms, jittered).
	PollInterval time.Duration
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Cache, when set, is consulted before every run and fed every
	// execution (core.WithResultCache / episteme.WithCache): a warmed
	// worker answers repeat stripes without executing. Fingerprint is the
	// code identity folded into the cache keys (internal/cache.Fingerprint
	// in the CLIs). If the store also implements internal/cache's
	// Stats() (its Cache, Client, and Tiered all do), the worker reports
	// its counters in every heartbeat.
	Cache       core.ResultCache
	Fingerprint string
}

// Worker runs stripes for one coordinator until the job is done, the
// context is cancelled, or Drain is called.
type Worker struct {
	base       string
	id         string
	par        int
	reqTimeout time.Duration
	maxRetries int
	baseBack   time.Duration
	maxBack    time.Duration
	poll       time.Duration
	client     *http.Client
	logf       func(string, ...any)
	cache      core.ResultCache
	fprint     string

	drainOnce sync.Once
	drainCh   chan struct{}
}

// WorkerSummary reports a worker's completed session.
type WorkerSummary struct {
	// Stripes and Records count accepted uploads.
	Stripes int
	Records int64
	// LeasesLost counts stripes abandoned because the lease expired
	// mid-run (the coordinator gave them to someone else).
	LeasesLost int
	// Rejects counts uploads the coordinator refused as unverifiable.
	Rejects int
}

// Lease-loss and job-completion flow through run contexts as causes.
var (
	errLeaseLost = errors.New("fabric: lease lost")
	errJobDone   = errors.New("fabric: job finished")
)

// NewWorker validates the configuration and returns a Worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	u, err := url.Parse(cfg.Coordinator)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("fabric: coordinator URL %q is not absolute (want http://host:port)", cfg.Coordinator)
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{
		base:       strings.TrimRight(u.String(), "/"),
		id:         cfg.ID,
		par:        cfg.Parallelism,
		reqTimeout: cfg.RequestTimeout,
		maxRetries: cfg.MaxRetries,
		baseBack:   cfg.BaseBackoff,
		maxBack:    cfg.MaxBackoff,
		poll:       cfg.PollInterval,
		client:     cfg.Client,
		logf:       cfg.Logf,
		cache:      cfg.Cache,
		fprint:     cfg.Fingerprint,
		drainCh:    make(chan struct{}),
	}, nil
}

// cacheReport snapshots the worker's cache counters for a heartbeat,
// nil when the worker has no cache or the store reports no stats.
func (w *Worker) cacheReport() *CacheReport {
	statser, ok := w.cache.(interface{ Stats() rescache.Stats })
	if !ok {
		return nil
	}
	st := statser.Stats()
	return &CacheReport{
		Hits:         st.Hits,
		Misses:       st.Misses,
		Puts:         st.Puts,
		BytesServed:  st.BytesServed,
		BytesWritten: st.BytesWritten,
	}
}

// ID returns the worker's identity as the coordinator sees it.
func (w *Worker) ID() string { return w.id }

// Drain makes Run finish the stripe in hand (including its upload) and
// then return instead of leasing another — the graceful half of SIGTERM
// handling. Safe to call from any goroutine, any number of times.
func (w *Worker) Drain() { w.drainOnce.Do(func() { close(w.drainCh) }) }

func (w *Worker) drained() bool {
	select {
	case <-w.drainCh:
		return true
	default:
		return false
	}
}

// Run pulls and executes stripes until the coordinator reports the job
// done (nil error), the context is cancelled, Drain is called, or a
// failure is classified: ErrTransport after bounded retries, or
// ErrVerification when this worker's own runs fail (spec violation) or
// the job aborts on a digest conflict.
func (w *Worker) Run(ctx context.Context) (*WorkerSummary, error) {
	sum := &WorkerSummary{}
	var job JobSpec
	if status, errText, err := w.do(ctx, http.MethodGet, "/job", nil, &job); err != nil {
		return sum, err
	} else if status != http.StatusOK {
		return sum, fmt.Errorf("%w: GET /job: HTTP %d: %s", ErrTransport, status, errText)
	}
	if err := job.Validate(); err != nil {
		return sum, err
	}
	st, err := job.NewStack()
	if err != nil {
		return sum, err
	}
	var runner *core.Runner
	if job.Kind == SweepJob {
		opts := []core.RunnerOption{core.WithParallelism(w.par), core.WithBufferReuse()}
		if job.SpecCheck {
			opts = append(opts, core.WithSpecCheck(spec.Options{RoundBound: st.Horizon(), ValidityAllAgents: true}))
		}
		if w.cache != nil {
			opts = append(opts, core.WithResultCache(w.cache, w.fprint))
		}
		runner = core.NewRunner(st, opts...)
	}
	w.logf("fabric: %s: joined %s", w.id, job)

	consecutiveRejects := 0
	for {
		if w.drained() {
			w.logf("fabric: %s: drained after %d stripe(s)", w.id, sum.Stripes)
			return sum, nil
		}
		if ctx.Err() != nil {
			return sum, context.Cause(ctx)
		}
		grant, ok, err := w.lease(ctx)
		if errors.Is(err, errJobDone) {
			return sum, nil
		}
		if err != nil {
			return sum, err
		}
		if !ok {
			// Nothing leasable right now; poll again after a jittered
			// pause (drain wakes the sleep so a draining idle worker
			// exits promptly).
			if !w.sleep(ctx, w.jitter(w.poll), true) {
				return sum, context.Cause(ctx)
			}
			continue
		}

		payload, records, err := w.runStripe(ctx, job, st, runner, grant)
		switch {
		case err == nil:
		case errors.Is(err, errLeaseLost):
			sum.LeasesLost++
			w.logf("fabric: %s: lease on stripe %d lost mid-run; abandoning it", w.id, grant.Stripe)
			continue
		case errors.Is(err, errJobDone):
			return sum, nil
		case ctx.Err() != nil:
			return sum, context.Cause(ctx)
		default:
			// The stripe itself failed — an execution error or a
			// specification violation, not a network condition. Retrying
			// locally would reproduce it bit for bit.
			return sum, fmt.Errorf("%w: stripe %d: %v", ErrVerification, grant.Stripe, err)
		}

		status, errText, ack, err := w.upload(ctx, grant.Stripe, payload)
		switch {
		case err != nil:
			return sum, err
		case status == http.StatusOK:
			consecutiveRejects = 0
			sum.Stripes++
			sum.Records += records
			if ack.Duplicate {
				w.logf("fabric: %s: stripe %d was already complete (matching digest)", w.id, grant.Stripe)
			}
		case status == http.StatusBadRequest:
			sum.Rejects++
			consecutiveRejects++
			w.logf("fabric: %s: stripe %d rejected by coordinator: %s", w.id, grant.Stripe, errText)
			if consecutiveRejects >= 3 {
				return sum, fmt.Errorf("%w: %d consecutive uploads rejected (last: %s)", ErrVerification, consecutiveRejects, errText)
			}
		case status == http.StatusConflict:
			return sum, fmt.Errorf("%w: stripe %d: %s", ErrConflict, grant.Stripe, errText)
		case status == http.StatusGone:
			if err := w.finished(errText); !errors.Is(err, errJobDone) {
				return sum, err
			}
			return sum, nil
		default:
			return sum, fmt.Errorf("%w: PUT /result/%d: HTTP %d: %s", ErrTransport, grant.Stripe, status, errText)
		}
	}
}

// lease asks for a stripe: (grant, true) when one was granted, (_, false)
// when nothing is leasable right now. Job completion surfaces as
// (_, false, errJobDone-or-failure) via finished.
func (w *Worker) lease(ctx context.Context) (LeaseGrant, bool, error) {
	body, _ := json.Marshal(LeaseRequest{Worker: w.id})
	var grant LeaseGrant
	status, errText, err := w.doBody(ctx, http.MethodPost, "/lease", body, &grant)
	switch {
	case err != nil:
		return grant, false, err
	case status == http.StatusOK:
		return grant, true, nil
	case status == http.StatusNoContent:
		return grant, false, nil
	case status == http.StatusGone:
		return grant, false, w.finished(errText)
	default:
		return grant, false, fmt.Errorf("%w: POST /lease: HTTP %d: %s", ErrTransport, status, errText)
	}
}

// finished interprets a 410 body: a completed job returns errJobDone
// (which Run maps to a clean nil exit), a failed one propagates the
// coordinator's verdict as a verification failure.
func (w *Worker) finished(errText string) error {
	var done JobDone
	if json.Unmarshal([]byte(errText), &done) == nil && done.Phase == PhaseFailed {
		return fmt.Errorf("%w: job failed at the coordinator: %s", ErrVerification, done.Error)
	}
	w.logf("fabric: %s: job complete at the coordinator", w.id)
	return errJobDone
}

// runStripe executes the granted stripe to a sealed in-memory payload,
// heartbeating the lease while it runs.
func (w *Worker) runStripe(ctx context.Context, job JobSpec, st core.Stack, runner *core.Runner, grant LeaseGrant) ([]byte, int64, error) {
	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	hbDone := make(chan struct{})
	go w.heartbeatLoop(runCtx, cancel, grant, hbDone)
	defer func() { cancel(nil); <-hbDone }()

	var buf bytes.Buffer
	var records int64
	start := time.Now()
	if job.Kind == CheckJob {
		eopts := []episteme.Option{episteme.WithParallelism(w.par)}
		if w.cache != nil {
			eopts = append(eopts, episteme.WithCache(w.cache, w.fprint))
		}
		idx, err := episteme.BuildShardIndex(runCtx, episteme.ContextFor(st), st.Action,
			grant.Stripe, grant.Stripes, eopts...)
		if err != nil {
			return nil, 0, runCause(runCtx, err)
		}
		idx.Stack = job.Stack
		if err := episteme.WriteShardIndex(&buf, idx); err != nil {
			return nil, 0, err
		}
		records = int64(len(idx.Runs))
	} else {
		src, err := job.newSource(st)
		if err != nil {
			return nil, 0, err
		}
		s, err := runner.RunShard(runCtx, src, grant.Stripe, grant.Stripes, &buf)
		if err != nil {
			return nil, 0, runCause(runCtx, err)
		}
		records = s.Records
	}
	w.logf("fabric: %s: stripe %d/%d: %d records in %v",
		w.id, grant.Stripe, grant.Stripes, records, time.Since(start).Round(time.Millisecond))
	return buf.Bytes(), records, nil
}

// runCause maps a stripe failure onto the heartbeat loop's cancellation
// cause when that is what aborted the run.
func runCause(ctx context.Context, err error) error {
	if cause := context.Cause(ctx); errors.Is(cause, errLeaseLost) || errors.Is(cause, errJobDone) {
		return cause
	}
	return err
}

// heartbeatLoop renews the lease at a third of its TTL until the run
// context ends. A 409 means the lease is gone — the loop cancels the run
// so the worker stops burning CPU on a stripe someone else owns. A
// transport error is ignored: the next tick retries, and if the
// coordinator stays unreachable the lease simply expires — exactly the
// treatment a silent worker gets, applied symmetrically.
func (w *Worker) heartbeatLoop(ctx context.Context, cancel context.CancelCauseFunc, grant LeaseGrant, done chan<- struct{}) {
	defer close(done)
	interval := time.Duration(grant.TTLMillis) * time.Millisecond / 3
	if interval < 20*time.Millisecond {
		interval = 20 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		// Re-marshal every tick: the heartbeat carries the cache counters
		// as they stand, not as they stood when the stripe started.
		body, _ := json.Marshal(HeartbeatRequest{Worker: w.id, Stripe: grant.Stripe, Cache: w.cacheReport()})
		status, _, err := w.doOnce(ctx, http.MethodPost, "/heartbeat", body, nil)
		switch {
		case err != nil:
			w.logf("fabric: %s: heartbeat for stripe %d failed: %v", w.id, grant.Stripe, err)
		case status == http.StatusConflict:
			cancel(errLeaseLost)
			return
		case status == http.StatusGone:
			cancel(errJobDone)
			return
		}
	}
}

// upload PUTs the sealed stripe payload.
func (w *Worker) upload(ctx context.Context, stripe int, payload []byte) (int, string, ResultAck, error) {
	var ack ResultAck
	path := fmt.Sprintf("/result/%d?worker=%s", stripe, url.QueryEscape(w.id))
	status, errText, err := w.doBody(ctx, http.MethodPut, path, payload, &ack)
	return status, errText, ack, err
}

// do issues a bodyless request; doBody issues one with a body. Both
// retry transport errors and 5xx responses with exponential backoff and
// jitter, bounded by MaxRetries, and return ErrTransport when retries
// are exhausted. Non-5xx HTTP statuses are returned to the caller — they
// are protocol answers, not failures.
func (w *Worker) do(ctx context.Context, method, path string, body []byte, out any) (int, string, error) {
	return w.doBody(ctx, method, path, body, out)
}

func (w *Worker) doBody(ctx context.Context, method, path string, body []byte, out any) (int, string, error) {
	var lastErr error
	for attempt := 0; attempt <= w.maxRetries; attempt++ {
		if attempt > 0 {
			if !w.sleep(ctx, w.backoff(attempt-1), false) {
				return 0, "", context.Cause(ctx)
			}
		}
		status, errText, err := w.doOnce(ctx, method, path, body, out)
		if err == nil && status < 500 {
			return status, errText, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("HTTP %d: %s", status, errText)
		}
		if ctx.Err() != nil {
			return 0, "", context.Cause(ctx)
		}
		w.logf("fabric: %s: %s %s attempt %d/%d failed: %v", w.id, method, path, attempt+1, w.maxRetries+1, lastErr)
	}
	return 0, "", fmt.Errorf("%w: %s %s: retries exhausted: %v", ErrTransport, method, path, lastErr)
}

// doOnce issues one request under the per-request timeout. For non-2xx
// responses the body (truncated) is returned as errText; for 200 with a
// non-nil out, the JSON body is decoded into it.
func (w *Worker) doOnce(ctx context.Context, method, path string, body []byte, out any) (int, string, error) {
	rctx, cancel := context.WithTimeout(ctx, w.reqTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, w.base+path, rd)
	if err != nil {
		return 0, "", err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, "", fmt.Errorf("decoding %s %s response: %w", method, path, err)
		}
		return resp.StatusCode, "", nil
	}
	text, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
	return resp.StatusCode, strings.TrimSpace(string(text)), nil
}

// backoff returns the jittered exponential delay for retry n.
func (w *Worker) backoff(n int) time.Duration {
	d := w.baseBack << n
	if d <= 0 || d > w.maxBack {
		d = w.maxBack
	}
	return w.jitter(d)
}

// jitter spreads a delay uniformly over [d/2, d] so a fleet of workers
// retrying against one coordinator doesn't synchronize.
func (w *Worker) jitter(d time.Duration) time.Duration {
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// sleep waits for d, the context, or (when wakeOnDrain) a Drain call. It
// returns false when the context ended.
func (w *Worker) sleep(ctx context.Context, d time.Duration, wakeOnDrain bool) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	drain := w.drainCh
	if !wakeOnDrain {
		drain = nil
	}
	select {
	case <-ctx.Done():
		return false
	case <-drain:
		return true
	case <-t.C:
		return true
	}
}
