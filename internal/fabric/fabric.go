// Package fabric is the cross-machine sweep fabric: a pull-based
// coordinator/worker subsystem that distributes ShardSpec stripes over
// HTTP and re-merges their results with the shard-and-merge machinery of
// internal/core and internal/episteme.
//
// The design leans on the property PR 5 established: a sweep splits into
// M coordination-free stripes whose outcome streams and shard indexes are
// self-describing, digested, and sealed by a footer. The fabric never has
// to trust a worker — it verifies every uploaded stripe on receipt
// (record digests, stripe membership, sealed footer), so a crashed, slow,
// or corrupted worker is indistinguishable from an omission-faulty
// process in the source paper's sense, and is handled the same way: its
// lease expires and another worker steals the stripe. Duplicate
// completions resolve deterministically — the first sealed valid upload
// wins; two sealed valid uploads with different digests for one stripe
// mean the sweep itself is non-deterministic somewhere, and the job
// aborts loudly rather than merge an ambiguous result.
//
// The coordinator (cmd/ebacoord) holds a JobSpec and a lease table over
// M stripes (M ≫ worker count, so assignment is elastic load balancing);
// workers (ebashard -worker) pull leases, execute stripes through the
// existing Runner.RunShard / BuildShardIndex paths, heartbeat while they
// run, and upload sealed results with bounded retry, exponential backoff,
// and jitter. When every stripe lands, the coordinator runs the canonical
// merge — MergeOutcomes for sweeps, MergeSystems + WriteVerdicts for
// model checks — so the fabric's merged output is bit-identical to a
// single-process run: distributing a sweep can never change what it
// observes.
//
// Wire protocol (all JSON unless noted):
//
//	GET  /job            → JobSpec
//	POST /lease          LeaseRequest → 200 LeaseGrant | 204 (nothing
//	                     leasable right now) | 410 JobDone
//	POST /heartbeat      HeartbeatRequest → 200 | 409 (lease lost) | 410
//	PUT  /result/{i}     raw outcome stream or shard index → 200
//	                     ResultAck | 400 (verification failed; stripe
//	                     requeued) | 409 (digest conflict; job aborts) |
//	                     410
//	GET  /status         → StatusReport
//	GET  /merged         → merged stream / verdicts (404 until complete)
package fabric

import (
	"errors"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/source"
)

// Error classes. Every error the fabric returns wraps one of these, so
// command-line front-ends can map failures to distinct exit codes with
// errors.Is: a verification failure (torn or tampered stripe, digest
// conflict, failed verdicts) is a property of the data and retrying won't
// fix it; a transport failure (coordinator unreachable after bounded
// retries) is a property of the network and a rerun might.
var (
	// ErrVerification marks integrity failures: a stripe that fails its
	// digest/footer verification, conflicting duplicate uploads, or failed
	// protocol verdicts.
	ErrVerification = errors.New("fabric: verification failure")
	// ErrTransport marks exhausted-retry network failures.
	ErrTransport = errors.New("fabric: transport failure")
	// ErrConflict marks two sealed valid uploads of one stripe with
	// different digests — a fatal job-level inconsistency. It is a
	// verification failure (errors.Is(err, ErrVerification) holds).
	ErrConflict = fmt.Errorf("%w: conflicting digests for one stripe", ErrVerification)
)

// JobKind selects what the fabric distributes: a sweep's outcome streams
// or the model checker's shard indexes.
type JobKind string

const (
	// SweepJob distributes Runner.RunShard stripes and merges their
	// outcome streams with MergeOutcomes.
	SweepJob JobKind = "sweep"
	// CheckJob distributes BuildShardIndex stripes and merges their
	// indexes with MergeSystems, emitting deterministic verdict lines.
	CheckJob JobKind = "check"
)

// JobSpec is the one job a coordinator runs: which stack's exhaustive
// SO(t) enumeration to sweep (or check), split into how many stripes.
// Stripes should comfortably exceed the worker count — fine striding is
// what turns the fixed i/k split into elastic load balancing, and what
// bounds the work lost when a worker dies to one stripe.
type JobSpec struct {
	// Kind is SweepJob or CheckJob.
	Kind JobKind `json:"kind"`
	// Stack names the protocol stack (see the registry); N, T its size.
	Stack string `json:"stack"`
	N     int    `json:"n"`
	T     int    `json:"t"`
	// Horizon optionally overrides the stack's execution horizon
	// (0 = the stack default, t+2).
	Horizon int `json:"horizon,omitempty"`
	// Stripes is M, the stripe count of the deterministic M-way split.
	Stripes int `json:"stripes"`
	// SpecCheck makes sweep workers verify every run against the EBA
	// specification (a violation aborts the stripe).
	SpecCheck bool `json:"specCheck,omitempty"`
}

// Validate reports whether the spec names a runnable job.
func (j JobSpec) Validate() error {
	switch j.Kind {
	case SweepJob, CheckJob:
	default:
		return fmt.Errorf("fabric: job kind %q (want %q or %q)", j.Kind, SweepJob, CheckJob)
	}
	if j.Stack == "" {
		return fmt.Errorf("fabric: job names no stack")
	}
	if j.Stripes < 1 {
		return fmt.Errorf("fabric: job splits into %d stripes; need at least 1", j.Stripes)
	}
	if _, err := j.NewStack(); err != nil {
		return err
	}
	return nil
}

// NewStack constructs the job's protocol stack.
func (j JobSpec) NewStack() (core.Stack, error) {
	opts := []core.Option{core.WithN(j.N), core.WithT(j.T)}
	if j.Horizon > 0 {
		opts = append(opts, core.WithHorizon(j.Horizon))
	}
	return core.NewStack(j.Stack, opts...)
}

// newSource returns a fresh canonical enumeration of the job's sweep.
// Sources are single-consumer and consumed by a stripe run, so every
// stripe attempt constructs its own.
func (j JobSpec) newSource(st core.Stack) (core.Source, error) {
	pats, err := source.SO(st.N, st.T, st.Horizon(), adversary.Options{})
	if err != nil {
		return nil, err
	}
	return source.CrossInits(pats, st.N)
}

// String renders the job for logs: "sweep fip n=4 t=1 ×16 stripes".
func (j JobSpec) String() string {
	return fmt.Sprintf("%s %s n=%d t=%d ×%d stripes", j.Kind, j.Stack, j.N, j.T, j.Stripes)
}

// --- wire types -----------------------------------------------------------

// LeaseRequest asks the coordinator for a stripe to run.
type LeaseRequest struct {
	// Worker identifies the requesting worker; leases, heartbeats, and
	// throughput accounting key on it.
	Worker string `json:"worker"`
}

// LeaseGrant assigns a stripe: the worker runs stripe Stripe of Stripes
// and must heartbeat within the TTL or the stripe is reassigned.
type LeaseGrant struct {
	Stripe    int   `json:"stripe"`
	Stripes   int   `json:"stripes"`
	TTLMillis int64 `json:"ttlMillis"`
}

// CacheReport snapshots one side's result-cache traffic: a worker's
// local/tiered cache in heartbeats, the coordinator-hosted shared store
// in StatusReport.
type CacheReport struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Puts         int64 `json:"puts"`
	BytesServed  int64 `json:"bytesServed"`
	BytesWritten int64 `json:"bytesWritten"`
}

// HeartbeatRequest renews a lease mid-stripe. Cache, when the worker
// runs one, carries its current result-cache counters — heartbeats are
// re-marshaled every tick, so the coordinator's status always shows the
// latest snapshot.
type HeartbeatRequest struct {
	Worker string       `json:"worker"`
	Stripe int          `json:"stripe"`
	Cache  *CacheReport `json:"cache,omitempty"`
}

// ResultAck acknowledges an accepted stripe upload.
type ResultAck struct {
	Stripe int `json:"stripe"`
	// Duplicate reports the stripe was already complete with the same
	// digest (the upload was discarded; first sealed valid upload wins).
	Duplicate bool `json:"duplicate,omitempty"`
	// Records is the stripe's record count (runs, for a check job).
	Records int64 `json:"records"`
	// Digest is the stripe's accepted digest.
	Digest string `json:"digest"`
}

// JobDone is the body of a 410 response: the job no longer hands out
// work, either because it completed or because it failed.
type JobDone struct {
	Phase string `json:"phase"`
	Error string `json:"error,omitempty"`
}

// Coordinator phases, as reported by StatusReport.Phase and JobDone.
const (
	PhaseRunning  = "running"
	PhaseMerging  = "merging"
	PhaseComplete = "complete"
	PhaseFailed   = "failed"
)

// StripeCounts breaks the job's stripes down by state.
type StripeCounts struct {
	Total   int `json:"total"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
}

// Counters aggregates the fabric's failure-handling activity.
type Counters struct {
	// Leases counts granted leases (≥ Total when stripes were retried).
	Leases int64 `json:"leases"`
	// Expirations counts leases that stopped heartbeating and were
	// requeued; Steals counts requeued stripes later completed by a
	// different worker than the one that lost the lease.
	Expirations int64 `json:"expirations"`
	Steals      int64 `json:"steals"`
	// Rejects counts uploads that failed verification (torn, truncated,
	// or tampered stripes — requeued); Duplicates counts re-uploads of
	// already-complete stripes with matching digests (discarded).
	Rejects    int64 `json:"rejects"`
	Duplicates int64 `json:"duplicates"`
}

// WorkerReport is one worker's contribution, for the status endpoint.
type WorkerReport struct {
	// Stripes and Records count the worker's accepted uploads.
	Stripes int   `json:"stripes"`
	Records int64 `json:"records"`
	// RecordsPerSecond is Records over the worker's active window (first
	// contact to last), the per-worker throughput signal.
	RecordsPerSecond float64 `json:"recordsPerSecond"`
	// IdleMillis is the time since the worker was last heard from.
	IdleMillis int64 `json:"idleMillis"`
	// Cache is the worker's last-known result-cache counters (absent
	// when the worker never reported any). A worker that heartbeats
	// without a CacheReport — e.g. restarted without its cache — does
	// NOT clear them; CacheStale marks them as history instead.
	Cache *CacheReport `json:"cache,omitempty"`
	// CacheStale reports that the worker has been heard from since its
	// last cache report, so Cache is last-known history rather than a
	// live snapshot. CacheAgeMillis is the time since that report.
	CacheStale     bool  `json:"cacheStale,omitempty"`
	CacheAgeMillis int64 `json:"cacheAgeMillis,omitempty"`
}

// StatusReport is the coordinator's JSON status: machine-readable for the
// CI smoke, human-readable enough to eyeball a fleet.
type StatusReport struct {
	Job      JobSpec                 `json:"job"`
	Phase    string                  `json:"phase"`
	Stripes  StripeCounts            `json:"stripes"`
	Workers  map[string]WorkerReport `json:"workers,omitempty"`
	Counters Counters                `json:"counters"`
	// MergedRecords and MergedDigest describe the canonical merge once
	// Phase is "complete" (sweep jobs report the chained stream digest).
	MergedRecords int64  `json:"mergedRecords,omitempty"`
	MergedDigest  string `json:"mergedDigest,omitempty"`
	// Error carries the failure when Phase is "failed" (or the verdict
	// failure of a complete check job).
	Error string `json:"error,omitempty"`
	// Cache reports the coordinator-hosted shared cache store's traffic
	// (absent when the coordinator hosts none).
	Cache *CacheReport `json:"cache,omitempty"`
}
