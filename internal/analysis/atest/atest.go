// Package atest is a self-contained analysistest replacement: it runs
// a go/analysis analyzer over fixture packages laid out analysistest
// style (testdata/src/<importpath>/*.go) and checks the diagnostics
// against // want "regexp" comments in the fixtures.
//
// The container this repo builds in has no module proxy access, and
// the Go toolchain vendors go/analysis but not analysistest or
// go/packages — so atest loads fixtures with go/parser and go/types
// directly: fixture imports resolve against sibling fixture packages
// first and fall back to compiling the standard library from GOROOT
// source. Analyzer dependencies (Requires) are run transitively, in
// topological order, with their results threaded through ResultOf.
// Facts are not supported; the ebavet analyzers do not use them.
//
// A // want comment attaches to the line it appears on and holds one
// or more Go-quoted regular expressions, each of which must match a
// distinct diagnostic reported on that line:
//
//	badCall() // want `exact diagnostic fragment` "another"
//
// Diagnostics without a matching want, and wants without a matching
// diagnostic, fail the test with the file:line of the mismatch.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run applies a (and its Requires closure) to each fixture package in
// pkgPaths, resolving them under testdata/src, and checks diagnostics
// against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture package %s: %v", path, err)
		}
		diags := runAnalyzer(t, l.fset, a, pkg)
		check(t, l.fset, pkg, diags)
	}
}

// --- fixture loading ------------------------------------------------------

type loadedPkg struct {
	path  string
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	root    string
	fset    *token.FileSet
	pkgs    map[string]*loadedPkg
	stdlib  types.Importer
	loading map[string]bool
}

func newLoader(root string) *loader {
	l := &loader{
		root:    root,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*loadedPkg{},
		loading: map[string]bool{},
	}
	// "source" compiles stdlib dependencies from GOROOT source: no
	// export data or network is needed.
	l.stdlib = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// Import lets the loader serve as the types.Importer for fixture
// type-checking: fixture trees shadow the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.stdlib.Import(path)
}

func isDir(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("fixture import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &loadedPkg{path: path, pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// --- analyzer execution ---------------------------------------------------

// factStore is a minimal in-memory fact table shared by the analyzers
// of one package run. Facts exported by a dependency (ctrlflow's
// noReturn) are visible to importers in the same run; facts from other
// packages are simply absent, which every fact-using analyzer must
// treat conservatively anyway.
type factStore struct {
	object map[types.Object]map[reflect.Type]analysis.Fact
	pkg    map[*types.Package]map[reflect.Type]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		object: map[types.Object]map[reflect.Type]analysis.Fact{},
		pkg:    map[*types.Package]map[reflect.Type]analysis.Fact{},
	}
}

func copyFact(dst, src analysis.Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

// runAnalyzer runs a and its Requires closure over pkg, returning only
// a's own diagnostics.
func runAnalyzer(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, pkg *loadedPkg) []analysis.Diagnostic {
	t.Helper()
	results := map[*analysis.Analyzer]interface{}{}
	facts := newFactStore()
	var diags []analysis.Diagnostic

	var run func(an *analysis.Analyzer) interface{}
	run = func(an *analysis.Analyzer) interface{} {
		if r, ok := results[an]; ok {
			return r
		}
		deps := map[*analysis.Analyzer]interface{}{}
		for _, req := range an.Requires {
			deps[req] = run(req)
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       fset,
			Files:      pkg.files,
			Pkg:        pkg.pkg,
			TypesInfo:  pkg.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   deps,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if an == a {
					diags = append(diags, d)
				}
			},
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				if f, ok := facts.object[obj][reflect.TypeOf(fact)]; ok {
					copyFact(fact, f)
					return true
				}
				return false
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				if facts.object[obj] == nil {
					facts.object[obj] = map[reflect.Type]analysis.Fact{}
				}
				facts.object[obj][reflect.TypeOf(fact)] = fact
			},
			ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
				if f, ok := facts.pkg[p][reflect.TypeOf(fact)]; ok {
					copyFact(fact, f)
					return true
				}
				return false
			},
			ExportPackageFact: func(fact analysis.Fact) {
				if facts.pkg[pkg.pkg] == nil {
					facts.pkg[pkg.pkg] = map[reflect.Type]analysis.Fact{}
				}
				facts.pkg[pkg.pkg][reflect.TypeOf(fact)] = fact
			},
			AllObjectFacts: func() []analysis.ObjectFact {
				var out []analysis.ObjectFact
				for obj, m := range facts.object {
					for _, f := range m {
						out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
					}
				}
				return out
			},
			AllPackageFacts: func() []analysis.PackageFact {
				var out []analysis.PackageFact
				for p, m := range facts.pkg {
					for _, f := range m {
						out = append(out, analysis.PackageFact{Package: p, Fact: f})
					}
				}
				return out
			},
		}
		res, err := an.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s failed on %s: %v", an.Name, pkg.path, err)
		}
		results[an] = res
		return res
	}
	run(a)
	return diags
}

// --- want expectations ----------------------------------------------------

var wantRe = regexp.MustCompile("// want (.*)$")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func check(t *testing.T, fset *token.FileSet, pkg *loadedPkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted parses the payload of a want comment: a space-separated
// sequence of Go-quoted ("...") or backquoted (`...`) strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want payload at %q (expected quoted regexp)", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want regexp in %q", pos, s)
		}
		tok := s[:end+2]
		if quote == '"' {
			unq, err := strconv.Unquote(tok)
			if err != nil {
				t.Fatalf("%s: bad want string %q: %v", pos, tok, err)
			}
			out = append(out, unq)
		} else {
			out = append(out, tok[1:len(tok)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
