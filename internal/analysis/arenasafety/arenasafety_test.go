package arenasafety_test

import (
	"testing"

	"repro/internal/analysis/arenasafety"
	"repro/internal/analysis/atest"
)

func TestArenaSafety(t *testing.T) {
	atest.Run(t, "testdata", arenasafety.Analyzer, "fix/arenause")
}
