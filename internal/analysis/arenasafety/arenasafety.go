// Package arenasafety enforces the arena ownership contracts of the
// messaging hot path (see internal/graph/arena.go and engine.Buffers):
//
//  1. Pairing: graph.AcquireRef/AcquireRefNoCK must be paired with
//     Ref.Release, and BufferedExchange.AcquireScratch with
//     ReleaseScratch, within the acquiring function — unless the
//     acquired value escapes (is returned, stored into longer-lived
//     structure, or handed to another function), in which case
//     ownership moved and the pairing obligation moved with it.
//
//  2. Detach before retention: a value produced by an arena-backed
//     producer (Graph.CloneExtendedIn, Arena.New,
//     BufferedExchange.UpdateScratch, engine.StepInto) references
//     recyclable scratch memory. A function that retains such a value
//     beyond its own frame — a struct-field store, a map store, a
//     channel send, a package-variable store — must freeze it first
//     with Detach/DetachState/DetachAll. Handing the value back to the
//     caller (return, or writing through a caller-provided slice
//     parameter) is not retention: the obligation transfers.
//
// Both checks are flow-insensitive and per-function: they ask "does a
// release/detach exist in this function at all", not "on every path" —
// cheap, zero false negatives for the deletion failure mode the
// contract-rot tests seed, and precise enough to run clean on the
// real tree.
//
// A reviewed exception is waived with //eba:arena-ok on the exact
// reported line; unused waivers are themselves diagnosed as stale.
package arenasafety

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/ebautil"
	"repro/internal/analysis/suppress"
)

// Analyzer is the arenasafety analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "arenasafety",
	Doc: "enforce arena acquire/release pairing and detach-before-retention " +
		"for arena-backed values (graph.AcquireRef/Release, " +
		"BufferedExchange.AcquireScratch/ReleaseScratch, Detach/DetachState/DetachAll; " +
		"suppress a reviewed line with //eba:arena-ok)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// reporter is the suppression-aware Reportf the checks go through.
type reporter struct {
	pass *analysis.Pass
	sup  *suppress.Set
}

func (r reporter) reportf(pos token.Pos, format string, args ...interface{}) {
	if r.sup.Suppressed(r.pass.Fset, pos) {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

// producerPkgs are the packages whose path suffix marks the arena
// layer itself: the detach-before-retention rule does not apply inside
// them, because producing and juggling attached values is their job —
// their contract surface is checked by the exchange conformance tests.
var producerPkgs = []string{"internal/graph", "internal/exchange", "internal/model"}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := reporter{pass: pass, sup: suppress.Collect(pass, "arena")}

	inProducerPkg := false
	for _, s := range producerPkgs {
		if ebautil.PathHasSuffix(pass.Pkg.Path(), s) {
			inProducerPkg = true
			break
		}
	}

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		checkPairing(rep, fd)
		if !inProducerPkg {
			checkDetach(rep, fd)
		}
	})
	rep.sup.ReportStale(pass)
	return nil, nil
}

// --- rule 1: acquire/release pairing --------------------------------------

func isAcquireRef(info *types.Info, call *ast.CallExpr) bool {
	return ebautil.IsPkgFunc(info, call, "internal/graph", "AcquireRef") ||
		ebautil.IsPkgFunc(info, call, "internal/graph", "AcquireRefNoCK")
}

func isAcquireScratch(info *types.Info, call *ast.CallExpr) bool {
	return ebautil.IsMethod(info, call, "AcquireScratch", "internal/model", "internal/exchange", "internal/engine")
}

func isReleaseRef(info *types.Info, call *ast.CallExpr) bool {
	return ebautil.IsMethod(info, call, "Release", "internal/graph")
}

func isReleaseScratch(info *types.Info, call *ast.CallExpr) bool {
	return ebautil.IsMethod(info, call, "ReleaseScratch", "internal/model", "internal/exchange", "internal/engine")
}

// acquireSite is one acquire call and the variable (if any) its result
// was bound to.
type acquireSite struct {
	call *ast.CallExpr
	name string // AcquireRef / AcquireRefNoCK / AcquireScratch
	v    *types.Var
}

func checkPairing(rep reporter, fd *ast.FuncDecl) {
	info := rep.pass.TypesInfo
	var acquires []acquireSite
	releasedVars := map[*types.Var]bool{}
	releaseAny := false // releases whose operand we could not resolve

	// First pass: find acquires and their bindings, and releases.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && (isAcquireRef(info, call) || isAcquireScratch(info, call)) {
					if len(n.Lhs) == 1 {
						if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok {
							if id.Name == "_" {
								acquires = append(acquires, acquireSite{call: call, name: ebautil.FuncObj(info, call).Name()})
							} else {
								acquires = append(acquires, acquireSite{call: call, name: ebautil.FuncObj(info, call).Name(), v: ebautil.UsedVar(info, id)})
							}
							return true
						}
						// Bound straight into a field, index, or deref:
						// ownership moved into the structure. The holder
						// releases it later (engine.Buffers does).
					}
					return true
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 {
				if call, ok := ast.Unparen(n.Values[0]).(*ast.CallExpr); ok && (isAcquireRef(info, call) || isAcquireScratch(info, call)) {
					var v *types.Var
					if len(n.Names) == 1 && n.Names[0].Name != "_" {
						v, _ = info.Defs[n.Names[0]].(*types.Var)
					}
					acquires = append(acquires, acquireSite{call: call, name: ebautil.FuncObj(info, call).Name(), v: v})
					return true
				}
			}
		case *ast.CallExpr:
			switch {
			case isReleaseRef(info, n):
				if v := ebautil.UsedVar(info, ebautil.ReceiverExpr(n)); v != nil {
					releasedVars[v] = true
				} else {
					releaseAny = true
				}
			case isReleaseScratch(info, n):
				if len(n.Args) == 1 {
					if v := ebautil.UsedVar(info, n.Args[0]); v != nil {
						releasedVars[v] = true
					} else {
						releaseAny = true
					}
				} else {
					releaseAny = true
				}
			case isAcquireRef(info, n) || isAcquireScratch(info, n):
				// An acquire whose result is consumed inline:
				// AcquireRef(...).Release() chains count as released via
				// the receiver walk below; a bare statement leaks.
				if !partOfBinding(fd.Body, n) {
					if !chainedRelease(info, fd.Body, n) {
						rep.reportf(n.Pos(), "result of %s is neither bound nor released: the pooled value leaks",
							ebautil.FuncObj(info, n).Name())
					}
				}
			}
		}
		return true
	})

	for _, a := range acquires {
		if a.v == nil || a.v.Name() == "_" {
			rep.reportf(a.call.Pos(), "result of %s is discarded: the pooled value leaks", a.name)
			continue
		}
		if releasedVars[a.v] || releaseAny {
			continue
		}
		if escapes(info, fd.Body, a.v, a.call) {
			continue // ownership handed off; the pairing obligation moved
		}
		rep.reportf(a.call.Pos(), "%s is acquired into %q but neither released nor handed off in %s: pair it with %s",
			a.name, a.v.Name(), fd.Name.Name, releaseName(a.name))
	}
}

func releaseName(acquire string) string {
	if acquire == "AcquireScratch" {
		return "ReleaseScratch"
	}
	return "Release"
}

// partOfBinding reports whether call is the RHS of an assignment or
// value spec (those are handled by the binding walk).
func partOfBinding(body *ast.BlockStmt, call *ast.CallExpr) bool {
	bound := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if ast.Unparen(r) == call {
					bound = true
				}
			}
		case *ast.ValueSpec:
			for _, r := range n.Values {
				if ast.Unparen(r) == call {
					bound = true
				}
			}
		}
		return !bound
	})
	return bound
}

// chainedRelease reports whether call appears as the receiver of a
// direct Release call: graph.AcquireRef(t, g).Release().
func chainedRelease(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr) bool {
	chained := false
	ast.Inspect(body, func(n ast.Node) bool {
		outer, ok := n.(*ast.CallExpr)
		if !ok || !isReleaseRef(info, outer) {
			return true
		}
		if sel, ok := ast.Unparen(outer.Fun).(*ast.SelectorExpr); ok && ast.Unparen(sel.X) == call {
			chained = true
		}
		return !chained
	})
	return chained
}

// escapes reports whether v is handed beyond the function's pairing
// obligation: returned, passed to a call (other than the matched
// releases, which were collected already), stored into anything that
// is not a plain local variable, sent on a channel, or captured in a
// composite literal. Flow-insensitive: any such use anywhere counts.
func escapes(info *types.Info, body *ast.BlockStmt, v *types.Var, acquire *ast.CallExpr) bool {
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if esc {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if ebautil.MentionsValue(info, r, v) {
					esc = true
				}
			}
		case *ast.CallExpr:
			if n == acquire || isReleaseRef(info, n) || isReleaseScratch(info, n) {
				return true
			}
			for _, a := range n.Args {
				if ebautil.MentionsValue(info, a, v) {
					esc = true
				}
			}
			// Method calls on v (r.OwnerAction()) are plain uses, not
			// escapes: the receiver does not retain the analyzer.
		case *ast.SendStmt:
			if ebautil.MentionsValue(info, n.Value, v) {
				esc = true
			}
		case *ast.CompositeLit:
			if ebautil.MentionsValue(info, n, v) {
				esc = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && ast.Unparen(n.Rhs[i]) == ast.Unparen(acquire) {
					continue // the binding itself
				}
				// v stored anywhere but a fresh local: field, index,
				// dereference, or another variable (alias — give up and
				// treat as handed off).
				if _, plain := ast.Unparen(lhs).(*ast.Ident); !plain {
					if ebautil.MentionsValue(info, lhs, v) {
						esc = true
						continue
					}
				}
				if i < len(n.Rhs) && ebautil.MentionsValue(info, n.Rhs[i], v) {
					esc = true
				} else if len(n.Rhs) == 1 && len(n.Lhs) > 1 && ebautil.MentionsValue(info, n.Rhs[0], v) {
					esc = true
				}
			}
		}
		return !esc
	})
	return esc
}

// --- rule 2: detach before retention --------------------------------------

func isProducer(info *types.Info, call *ast.CallExpr) bool {
	return ebautil.IsMethod(info, call, "CloneExtendedIn", "internal/graph") ||
		ebautil.IsMethod(info, call, "New", "internal/graph") ||
		ebautil.IsMethod(info, call, "UpdateScratch", "internal/model", "internal/exchange") ||
		ebautil.IsPkgFunc(info, call, "internal/engine", "StepInto")
}

func isDetachCall(info *types.Info, call *ast.CallExpr) bool {
	return ebautil.IsMethod(info, call, "Detach", "internal/graph") ||
		ebautil.IsMethod(info, call, "DetachState", "internal/model", "internal/exchange") ||
		ebautil.IsPkgFunc(info, call, "internal/model", "DetachAll")
}

func checkDetach(rep reporter, fd *ast.FuncDecl) {
	info := rep.pass.TypesInfo

	// Collect producer-bound variables and whether any detach happens.
	vars := map[*types.Var]*ast.CallExpr{}
	detaches := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && isProducer(info, call) {
					if v := ebautil.UsedVar(info, n.Lhs[0]); v != nil {
						vars[v] = call
					}
				}
			}
		case *ast.CallExpr:
			if isDetachCall(info, n) {
				detaches = true
			}
		}
		return true
	})
	if detaches {
		// Flow-insensitive forgiveness: the function knows about the
		// contract; deleting its Detach* call re-arms every report below.
		return
	}

	report := func(pos ast.Node, v *types.Var, how string) {
		rep.reportf(pos.Pos(), "arena-backed value %q (from %s) %s without Detach/DetachState/DetachAll: it references scratch memory the next run recycles",
			v.Name(), producerName(info, vars[v]), how)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[min(i, len(n.Rhs)-1)]
				v := retainedVar(info, vars, rhs)
				if v == nil {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					report(n, v, "is stored into a struct field")
				case *ast.IndexExpr:
					if t := info.TypeOf(l.X); t != nil {
						switch t.Underlying().(type) {
						case *types.Map:
							report(n, v, "is interned into a map")
						}
						// Writes through slices are caller-provided
						// hand-off surfaces (engine.StepInto's next):
						// the obligation transfers with the slice.
					}
				case *ast.Ident:
					if vv, ok := info.Uses[l].(*types.Var); ok && vv.Pkg() != nil && vv.Parent() == vv.Pkg().Scope() {
						report(n, v, "is stored into a package variable")
					}
				}
			}
		case *ast.SendStmt:
			for v := range vars {
				if ebautil.Mentions(info, n.Value, v) {
					report(n, v, "is sent on a channel")
				}
			}
		}
		return true
	})
}

func retainedVar(info *types.Info, vars map[*types.Var]*ast.CallExpr, rhs ast.Expr) *types.Var {
	for v := range vars {
		if ebautil.Mentions(info, rhs, v) {
			return v
		}
	}
	return nil
}

func producerName(info *types.Info, call *ast.CallExpr) string {
	if call == nil {
		return "an arena producer"
	}
	if fn := ebautil.FuncObj(info, call); fn != nil {
		return fmt.Sprintf("%s", fn.Name())
	}
	return "an arena producer"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
