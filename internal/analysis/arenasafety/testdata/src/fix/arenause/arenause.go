package arenause

import (
	"fix/internal/graph"
	"fix/internal/model"
)

type holder struct {
	ext *graph.Ext
	st  *model.State
}

var global *graph.Ext

// --- rule 1: acquire/release pairing --------------------------------------

func leakRef(g *graph.Graph) {
	r := graph.AcquireRef(g) // want `AcquireRef is acquired into "r" but neither released nor handed off in leakRef: pair it with Release`
	_ = r.OwnerAction()
}

func discardRef(g *graph.Graph) {
	_ = graph.AcquireRefNoCK(g) // want `result of AcquireRefNoCK is discarded: the pooled value leaks`
}

func bareAcquire(g *graph.Graph) {
	graph.AcquireRef(g) // want `result of AcquireRef is neither bound nor released: the pooled value leaks`
}

func leakScratch(x *model.Exchange) {
	s := x.AcquireScratch() // want `AcquireScratch is acquired into "s" but neither released nor handed off in leakScratch: pair it with ReleaseScratch`
	_ = s.Len()
}

func pairedRef(g *graph.Graph) int {
	r := graph.AcquireRef(g)
	defer r.Release()
	return r.OwnerAction()
}

func chainedRef(g *graph.Graph) {
	graph.AcquireRefNoCK(g).Release()
}

func handedOff(g *graph.Graph) *graph.Ref {
	r := graph.AcquireRef(g)
	return r
}

func pairedScratch(x *model.Exchange) {
	s := x.AcquireScratch()
	x.ReleaseScratch(s)
}

func suppressedLeak(g *graph.Graph) {
	r := graph.AcquireRef(g) //eba:arena-ok: the test harness tears the pool down wholesale
	_ = r.OwnerAction()
}

func stalePairing(g *graph.Graph) {
	r := graph.AcquireRef(g)
	r.Release() //eba:arena-ok // want `stale //eba:arena-ok suppression: no diagnostic on this line to suppress`
}

// --- rule 2: detach before retention --------------------------------------

func retainField(h *holder, g *graph.Graph, a *graph.Arena) {
	e := g.CloneExtendedIn(a)
	h.ext = e // want `arena-backed value "e" \(from CloneExtendedIn\) is stored into a struct field without Detach/DetachState/DetachAll`
}

func internMap(g *graph.Graph, a *graph.Arena, m map[string]*graph.Ext) {
	e := g.CloneExtendedIn(a)
	m["k"] = e // want `arena-backed value "e" \(from CloneExtendedIn\) is interned into a map without Detach/DetachState/DetachAll`
}

func stashGlobal(a *graph.Arena) {
	e := a.New()
	global = e // want `arena-backed value "e" \(from New\) is stored into a package variable without Detach/DetachState/DetachAll`
}

func sendState(x *model.Exchange, ch chan *model.State) {
	s := x.UpdateScratch()
	ch <- s // want `arena-backed value "s" \(from UpdateScratch\) is sent on a channel without Detach/DetachState/DetachAll`
}

func retainDetached(h *holder, g *graph.Graph, a *graph.Arena) {
	e := g.CloneExtendedIn(a)
	h.ext = e.Detach()
}

func retainDetachedState(h *holder, x *model.Exchange) {
	s := x.UpdateScratch()
	h.st = s.DetachState()
}

func handBack(g *graph.Graph, a *graph.Arena, out []*graph.Ext) {
	e := g.CloneExtendedIn(a)
	out[0] = e
}

func suppressedRetain(h *holder, g *graph.Graph, a *graph.Arena) {
	e := g.CloneExtendedIn(a)
	h.ext = e //eba:arena-ok: h is recycled in the same epoch as the arena
}
