// Package graph is a fixture stub matched by the arenasafety analyzer
// through its (package-path suffix, name) pairs; only the signatures
// matter.
package graph

type Graph struct{}

type Ref struct{}

type Ext struct{}

type Arena struct{}

func AcquireRef(g *Graph) *Ref { return &Ref{} }

func AcquireRefNoCK(g *Graph) *Ref { return &Ref{} }

func (r *Ref) Release() {}

func (r *Ref) OwnerAction() int { return 0 }

func (g *Graph) CloneExtendedIn(a *Arena) *Ext { return &Ext{} }

func (a *Arena) New() *Ext { return &Ext{} }

func (e *Ext) Detach() *Ext { return e }
