// Package model is a fixture stub for the scratch-buffer half of the
// arenasafety contract surface.
package model

type Exchange struct{}

type State struct{}

func (x *Exchange) AcquireScratch() *State { return &State{} }

func (x *Exchange) ReleaseScratch(s *State) {}

func (x *Exchange) UpdateScratch() *State { return &State{} }

func (s *State) DetachState() *State { return s }

func (s *State) Len() int { return 0 }

func DetachAll(ss []*State) {}
