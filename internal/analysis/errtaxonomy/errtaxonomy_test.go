package errtaxonomy_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/errtaxonomy"
)

func TestErrTaxonomy(t *testing.T) {
	atest.Run(t, "testdata", errtaxonomy.Analyzer, "fix/taxo", "fix/cmd/ebafix")
}
