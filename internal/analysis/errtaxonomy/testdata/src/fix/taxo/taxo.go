package taxo

import (
	"errors"
	"fmt"

	"fix/errs"
)

func compareEq(err error) bool {
	return err == errs.ErrVerification // want `comparing an error against sentinel ErrVerification with == breaks once the sentinel is wrapped: use errors.Is`
}

func compareNeq(err error) bool {
	return err != errs.ErrTransport // want `comparing an error against sentinel ErrTransport with != breaks once the sentinel is wrapped: use errors.Is`
}

func viaSwitch(err error) int {
	switch err {
	case errs.ErrVerification: // want `switching on an error value compares sentinel ErrVerification with ==`
		return 2
	default:
		return 1
	}
}

func wrapWrong(err error) error {
	return fmt.Errorf("check failed: %v", errs.ErrVerification) // want `sentinel ErrVerification is formatted with %v, which drops its errors.Is identity`
}

func compareIs(err error) bool {
	return errors.Is(err, errs.ErrVerification)
}

func wrapRight() error {
	return fmt.Errorf("check failed: %w", errs.ErrTransport)
}

func nilCheck(err error) bool {
	return err == nil
}

func suppressedCompare(err error) bool {
	return err == errs.ErrTransport //eba:errtaxonomy-ok: identity check against this exact instance is intended
}

func staleWaiver(err error) bool {
	return errors.Is(err, errs.ErrVerification) //eba:errtaxonomy-ok // want `stale //eba:errtaxonomy-ok suppression: no diagnostic on this line to suppress`
}
