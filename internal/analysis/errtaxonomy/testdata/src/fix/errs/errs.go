// Package errs is the fixture's stand-in for the repo's error
// taxonomy: package-level Err* sentinels.
package errs

import "errors"

var (
	ErrVerification = errors.New("verification failed")
	ErrTransport    = errors.New("transport failed")
)
