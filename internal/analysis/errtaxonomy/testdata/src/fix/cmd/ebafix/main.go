package main

import (
	"errors"
	"fmt"
	"os"

	"fix/errs"
)

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if errors.Is(err, errs.ErrVerification) {
		return 2
	}
	if fmt.Sprint(err) == "transport torn down" {
		return 3 // want `exit code 3 is returned without an errors.Is sentinel guard`
	}
	return 1
}

func main() {
	os.Exit(exitCode(errors.New("boom")))
}
