// Package errtaxonomy protects the fabric's error taxonomy and the
// documented exit-code mapping built on it (ErrVerification -> 2,
// ErrTransport -> 3). Three rules:
//
//  1. Sentinel comparisons use errors.Is: comparing an error against a
//     repo-declared sentinel (a package-level Err* variable) with ==
//     or != , or switching on an error value with sentinel case
//     clauses, breaks the moment anyone wraps the sentinel — which the
//     taxonomy requires them to do.
//
//  2. Wrapping keeps identity: an fmt.Errorf call that passes a repo
//     sentinel must consume it with %w. Formatting a sentinel with %v
//     or %s produces an error that merely *reads* like the taxonomy
//     while errors.Is no longer matches it — the exact silent rot the
//     exit codes cannot survive.
//
//  3. The exit-code mapper is guarded: in a main package, a function
//     named exitCode must guard every non-{0,1} literal return with an
//     errors.Is test against a named sentinel, so codes 2 and 3 cannot
//     drift away from the taxonomy without the analyzer noticing.
//
// A reviewed exception is waived with //eba:errtaxonomy-ok on the
// exact reported line; unused waivers are themselves diagnosed as
// stale.
package errtaxonomy

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/ebautil"
	"repro/internal/analysis/suppress"
)

// Analyzer is the errtaxonomy analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc: "require errors.Is for sentinel comparisons, %w when wrapping " +
		"ErrVerification/ErrTransport-style sentinels with fmt.Errorf, and " +
		"errors.Is guards in main-package exitCode mappers " +
		"(suppress a reviewed line with //eba:errtaxonomy-ok)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// reporter is the suppression-aware Reportf the checks go through.
type reporter struct {
	pass *analysis.Pass
	sup  *suppress.Set
}

func (r reporter) reportf(pos token.Pos, format string, args ...interface{}) {
	if r.sup.Suppressed(r.pass.Fset, pos) {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	rep := reporter{pass: pass, sup: suppress.Collect(pass, "errtaxonomy")}

	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil), (*ast.SwitchStmt)(nil), (*ast.CallExpr)(nil), (*ast.FuncDecl)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkComparison(rep, n)
		case *ast.SwitchStmt:
			checkSwitch(rep, n)
		case *ast.CallExpr:
			checkErrorf(rep, n)
		case *ast.FuncDecl:
			checkExitCode(rep, n)
		}
	})
	rep.sup.ReportStale(pass)
	return nil, nil
}

// sentinelVar returns the package-level error sentinel e names, or nil.
// A sentinel is a package-level variable of error type whose name
// starts with "Err" or is "EOF" — which covers the repo's taxonomy
// (ErrVerification, ErrTransport, ErrConflict) and the stdlib
// sentinels (io.EOF, os.ErrNotExist) alike: errors.Is is strictly more
// robust than == for every one of them, since any layer in between may
// start wrapping.
func sentinelVar(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") && v.Name() != "EOF" {
		return nil
	}
	if !types.Implements(v.Type(), errorIface) && !types.Implements(types.NewPointer(v.Type()), errorIface) {
		return nil
	}
	return v
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && types.Implements(t, errorIface)
}

func checkComparison(rep reporter, be *ast.BinaryExpr) {
	pass := rep.pass
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	var sentinel *types.Var
	if v := sentinelVar(pass.TypesInfo, be.X); v != nil && isErrorType(pass.TypesInfo, be.Y) {
		sentinel = v
	} else if v := sentinelVar(pass.TypesInfo, be.Y); v != nil && isErrorType(pass.TypesInfo, be.X) {
		sentinel = v
	}
	if sentinel == nil {
		return
	}
	rep.reportf(be.Pos(), "comparing an error against sentinel %s with %s breaks once the sentinel is wrapped: use errors.Is",
		sentinel.Name(), be.Op)
}

func checkSwitch(rep reporter, sw *ast.SwitchStmt) {
	pass := rep.pass
	if sw.Tag == nil || !isErrorType(pass.TypesInfo, sw.Tag) {
		return
	}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if v := sentinelVar(pass.TypesInfo, e); v != nil {
				rep.reportf(e.Pos(), "switching on an error value compares sentinel %s with ==, which breaks once the sentinel is wrapped: use switch { case errors.Is(err, %s): ... }",
					v.Name(), v.Name())
			}
		}
	}
}

// checkErrorf enforces %w for sentinel arguments of fmt.Errorf.
func checkErrorf(rep reporter, call *ast.CallExpr) {
	pass := rep.pass
	fn := ebautil.FuncObj(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Errorf" || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format := constant.StringVal(constant.MakeFromLiteral(lit.Value, lit.Kind, 0))
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		v := sentinelVar(pass.TypesInfo, arg)
		if v == nil || i >= len(verbs) {
			continue
		}
		if verbs[i] != 'w' {
			rep.reportf(arg.Pos(), "sentinel %s is formatted with %%%c, which drops its errors.Is identity from the resulting error: wrap it with %%w",
				v.Name(), verbs[i])
		}
	}
}

// formatVerbs extracts the verb letter of each argument-consuming verb
// in a Printf-style format string (flags, width, and precision are
// skipped; %% consumes nothing). Indexed verbs (%[1]v) are not used in
// this repo and are ignored.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.IndexByte("+-# 0123456789.*[]", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}

// checkExitCode verifies the exit-code mapping convention: in a main
// package, every `return <literal>` other than 0 or 1 inside a
// function named exitCode must sit under a case or if whose condition
// calls errors.Is with a named sentinel.
func checkExitCode(rep reporter, fd *ast.FuncDecl) {
	pass := rep.pass
	if pass.Pkg.Name() != "main" || fd.Name.Name != "exitCode" || fd.Body == nil {
		return
	}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		lit, ok := ast.Unparen(ret.Results[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.INT || lit.Value == "0" || lit.Value == "1" {
			return true
		}
		if !guardedByErrorsIs(pass.TypesInfo, stack) {
			rep.reportf(ret.Pos(), "exit code %s is returned without an errors.Is sentinel guard: the documented exit-code mapping rots silently — guard it with errors.Is(err, Err...)", lit.Value)
		}
		return true
	})
}

// guardedByErrorsIs walks the ancestor chain of a return statement
// looking for a case clause or if statement whose condition contains
// errors.Is(..., <sentinel named Err*>).
func guardedByErrorsIs(info *types.Info, stack []ast.Node) bool {
	hasGuard := func(cond ast.Node) bool {
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := ebautil.FuncObj(info, call)
			if fn == nil || fn.Name() != "Is" || fn.Pkg() == nil || fn.Pkg().Path() != "errors" {
				return true
			}
			for _, a := range call.Args {
				name := ""
				switch x := ast.Unparen(a).(type) {
				case *ast.Ident:
					name = x.Name
				case *ast.SelectorExpr:
					name = x.Sel.Name
				}
				if strings.HasPrefix(name, "Err") {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.CaseClause:
			for _, e := range p.List {
				if hasGuard(e) {
					return true
				}
			}
		case *ast.IfStmt:
			if hasGuard(p.Cond) {
				return true
			}
		}
	}
	return false
}
