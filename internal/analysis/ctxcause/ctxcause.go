// Package ctxcause enforces the cancellation-cause contract of the
// streaming runner and the fabric: the packages that establish
// cancellation with context.WithCancelCause promise their callers a
// meaningful cause — a scenario's first error, a lost lease, a
// verification failure — never a bare context.Canceled.
//
// In any package that calls context.WithCancelCause, two rules:
//
//  1. ctx.Err() must not escape as a value. Using ctx.Err() to test
//     doneness (comparison against nil, directly or through a local
//     variable that is only nil-compared) is fine; returning it,
//     passing it to a call, wrapping it, or storing it loses the cause
//     that WithCancelCause was set up to carry — use
//     context.Cause(ctx) instead.
//
//  2. Every CancelCauseFunc must be used on all control-flow paths
//     from its definition to the function's return (the lostcancel
//     discipline, applied to the cause-carrying variant): an unused
//     path leaks the context and silently drops the cause. Assigning
//     the cancel function to the blank identifier is reported
//     outright.
//
// A reviewed exception is waived with //eba:ctxcause-ok on the exact
// reported line; unused waivers are themselves diagnosed as stale.
package ctxcause

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"repro/internal/analysis/ebautil"
	"repro/internal/analysis/suppress"
)

// Analyzer is the ctxcause analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcause",
	Doc: "in packages establishing context.WithCancelCause: require context.Cause(ctx) " +
		"over escaping ctx.Err() values, and require every CancelCauseFunc to be used " +
		"on all paths (suppress a reviewed line with //eba:ctxcause-ok)",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

// reporter is the suppression-aware Reportf the checks go through.
type reporter struct {
	pass *analysis.Pass
	sup  *suppress.Set
}

func (r reporter) reportf(pos token.Pos, format string, args ...interface{}) {
	if r.sup.Suppressed(r.pass.Fset, pos) {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// The rules bind only where the package itself establishes
	// cause-carrying cancellation.
	establishes := false
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		if isWithCancelCause(pass.TypesInfo, n.(*ast.CallExpr)) {
			establishes = true
		}
	})
	if !establishes {
		return nil, nil
	}
	rep := reporter{pass: pass, sup: suppress.Collect(pass, "ctxcause")}

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		checkErrEscapes(rep, n)
		checkCancelAllPaths(rep, n)
	})
	rep.sup.ReportStale(pass)
	return nil, nil
}

func isWithCancelCause(info *types.Info, call *ast.CallExpr) bool {
	fn := ebautil.FuncObj(info, call)
	return fn != nil && fn.Name() == "WithCancelCause" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// isCtxErrCall reports whether e is a call of the Err method on a
// context.Context value.
func isCtxErrCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Err" {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && ebautil.IsContextType(t)
}

// --- rule 1: ctx.Err() must not escape as a value -------------------------

func checkErrEscapes(rep reporter, fn ast.Node) {
	info := rep.pass.TypesInfo
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return
	}

	// Walk with parents so each ctx.Err() call is judged by its use.
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if _, isLit := n.(*ast.FuncLit); isLit && len(stack) > 1 {
			return false // nested functions get their own visit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isCtxErrCall(info, call) {
			return true
		}
		judgeErrUse(rep, info, body, stack, call)
		return true
	})
}

func judgeErrUse(rep reporter, info *types.Info, body *ast.BlockStmt, stack []ast.Node, call *ast.CallExpr) {
	// Find the nearest relevant ancestor, skipping parens.
	var parent ast.Node
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		parent = stack[i]
		break
	}
	switch p := parent.(type) {
	case *ast.BinaryExpr:
		// Only comparison against nil is a doneness test.
		other := p.X
		if ast.Unparen(p.X) == ast.Unparen(call) {
			other = p.Y
		}
		if (p.Op.String() == "==" || p.Op.String() == "!=") && ebautil.IsNil(info, other) {
			return
		}
	case *ast.ExprStmt:
		return // value discarded
	case *ast.AssignStmt:
		// err := ctx.Err() — fine as long as err itself is only
		// nil-compared; any value use of err escapes the bare error.
		if len(p.Lhs) == 1 && len(p.Rhs) == 1 && ast.Unparen(p.Rhs[0]) == ast.Unparen(call) {
			if id, ok := ast.Unparen(p.Lhs[0]).(*ast.Ident); ok {
				if id.Name == "_" {
					return
				}
				v, _ := info.Defs[id].(*types.Var)
				if v == nil {
					v, _ = info.Uses[id].(*types.Var)
				}
				if v != nil && !errVarEscapes(info, body, v, p) {
					return
				}
			}
		}
	}
	rep.reportf(call.Pos(), "ctx.Err() escapes as a value in a package that establishes context.WithCancelCause: it reports bare context.Canceled and loses the cause — use context.Cause(ctx)")
}

// errVarEscapes reports whether v (bound from ctx.Err() at def) is
// used as anything but a nil comparison.
func errVarEscapes(info *types.Info, body *ast.BlockStmt, v *types.Var, def ast.Node) bool {
	esc := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if esc {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != v {
			return true
		}
		// Judge this use by its parent.
		for i := len(stack) - 2; i >= 0; i-- {
			switch p := stack[i].(type) {
			case *ast.ParenExpr:
				continue
			case *ast.BinaryExpr:
				other := p.X
				if ast.Unparen(p.X) == id {
					other = p.Y
				}
				if (p.Op.String() == "==" || p.Op.String() == "!=") && ebautil.IsNil(info, other) {
					return true
				}
			}
			break
		}
		esc = true
		return false
	})
	return esc
}

// --- rule 2: CancelCauseFunc used on all paths ----------------------------
//
// This is the lostcancel algorithm (x/tools/go/analysis/passes/lostcancel)
// specialized to context.WithCancelCause: find the statement defining the
// cancel variable, then search the control-flow graph for a path from
// that statement to a return that never mentions the variable.

func checkCancelAllPaths(rep reporter, node ast.Node) {
	pass := rep.pass
	info := pass.TypesInfo

	var funcScope *types.Scope
	switch v := node.(type) {
	case *ast.FuncLit:
		funcScope = info.Scopes[v.Type]
	case *ast.FuncDecl:
		funcScope = info.Scopes[v.Type]
	}
	if funcScope == nil {
		return
	}

	// Map each cancel variable to its defining statement.
	cancelVars := map[*types.Var]ast.Node{}
	var stack []ast.Node
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			if len(stack) > 0 {
				return false // nested functions get their own visit
			}
		case nil:
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isWithCancelCause(info, call) || len(stack) < 2 {
			return true
		}
		var id *ast.Ident
		var stmt ast.Node
		switch s := stack[len(stack)-2].(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == 2 {
				id, _ = s.Lhs[1].(*ast.Ident)
				stmt = s
			}
		case *ast.ValueSpec:
			if len(s.Names) == 2 {
				id = s.Names[1]
				stmt = s
			}
		}
		if id == nil {
			return true
		}
		if id.Name == "_" {
			rep.reportf(id.Pos(), "the CancelCauseFunc returned by context.WithCancelCause is discarded: the context leaks and no cause can ever be recorded")
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			if funcScope.Contains(v.Pos()) {
				cancelVars[v] = stmt
			}
		} else if v, ok := info.Defs[id].(*types.Var); ok {
			cancelVars[v] = stmt
		}
		return true
	})
	if len(cancelVars) == 0 {
		return
	}

	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	var g *cfg.CFG
	var sig *types.Signature
	switch node := node.(type) {
	case *ast.FuncDecl:
		sig, _ = info.Defs[node.Name].Type().(*types.Signature)
		if node.Name.Name == "main" && sig != nil && sig.Recv() == nil && pass.Pkg.Name() == "main" {
			return // returning from main.main terminates the process
		}
		g = cfgs.FuncDecl(node)
	case *ast.FuncLit:
		sig, _ = info.Types[node.Type].Type.(*types.Signature)
		g = cfgs.FuncLit(node)
	}
	if sig == nil || g == nil {
		return
	}

	for v, stmt := range cancelVars {
		if ret := lostPath(info, g, v, stmt, sig); ret != nil {
			rep.reportf(stmt.Pos(), "the CancelCauseFunc %q is not used on all paths: a return can be reached without cancelling, leaking the context and dropping its cause", v.Name())
		}
	}
}

// lostPath finds a CFG path from the statement defining v to a return
// that never mentions v, returning that return statement (possibly
// synthetic) or nil.
func lostPath(info *types.Info, g *cfg.CFG, v *types.Var, stmt ast.Node, sig *types.Signature) *ast.ReturnStmt {
	vIsNamedResult := false
	for i := 0; i < sig.Results().Len(); i++ {
		if sig.Results().At(i) == v {
			vIsNamedResult = true
		}
	}
	uses := func(nodes []ast.Node) bool {
		for _, n := range nodes {
			found := false
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if info.Uses[n] == v {
						found = true
					}
				case *ast.ReturnStmt:
					if n.Results == nil && vIsNamedResult {
						found = true
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
		return false
	}

	var defblock *cfg.Block
	var rest []ast.Node
outer:
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == stmt {
				defblock = b
				rest = b.Nodes[i+1:]
				break outer
			}
		}
	}
	if defblock == nil {
		return nil // defining statement not in the CFG (dead code)
	}
	if uses(rest) {
		return nil
	}
	if ret := defblock.Return(); ret != nil {
		return ret
	}

	memo := map[*cfg.Block]bool{}
	blockUses := func(b *cfg.Block) bool {
		r, ok := memo[b]
		if !ok {
			r = uses(b.Nodes)
			memo[b] = r
		}
		return r
	}
	seen := map[*cfg.Block]bool{}
	var search func(blocks []*cfg.Block) *ast.ReturnStmt
	search = func(blocks []*cfg.Block) *ast.ReturnStmt {
		for _, b := range blocks {
			if seen[b] {
				continue
			}
			seen[b] = true
			if blockUses(b) {
				continue
			}
			if ret := b.Return(); ret != nil {
				return ret
			}
			if ret := search(b.Succs); ret != nil {
				return ret
			}
		}
		return nil
	}
	return search(defblock.Succs)
}
