// Package ctxflow establishes context.WithCancelCause, which arms both
// ctxcause rules for the whole package.
package ctxflow

import (
	"context"
	"errors"
)

func escapesErr(ctx context.Context) error {
	ctx2, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	<-ctx2.Done()
	return ctx2.Err() // want `ctx.Err\(\) escapes as a value in a package that establishes context.WithCancelCause`
}

func escapesViaLocal(ctx context.Context) error {
	ctx2, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	err := ctx2.Err() // want `ctx.Err\(\) escapes as a value in a package that establishes context.WithCancelCause`
	if err != nil {
		return err
	}
	return nil
}

func lostCancel(ctx context.Context, fail bool) error {
	ctx2, cancel := context.WithCancelCause(ctx) // want `the CancelCauseFunc "cancel" is not used on all paths`
	if fail {
		cancel(errors.New("failed"))
		return errors.New("failed")
	}
	_ = ctx2
	return nil
}

func discardCancel(ctx context.Context) context.Context {
	ctx2, _ := context.WithCancelCause(ctx) // want `the CancelCauseFunc returned by context.WithCancelCause is discarded`
	return ctx2
}

func doneTest(ctx context.Context) bool {
	ctx2, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	return ctx2.Err() != nil
}

func causeReturn(ctx context.Context) error {
	ctx2, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	<-ctx2.Done()
	return context.Cause(ctx2)
}

func localNilCheck(ctx context.Context) string {
	ctx2, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	err := ctx2.Err()
	if err != nil {
		return "done"
	}
	return "live"
}

func suppressedEscape(ctx context.Context) error {
	ctx2, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	<-ctx2.Done()
	return ctx2.Err() //eba:ctxcause-ok: this API documents bare context.Canceled
}

func staleWaiver(ctx context.Context) error {
	ctx2, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	<-ctx2.Done()
	return context.Cause(ctx2) //eba:ctxcause-ok // want `stale //eba:ctxcause-ok suppression: no diagnostic on this line to suppress`
}
