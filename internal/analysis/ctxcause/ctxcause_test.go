package ctxcause_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/ctxcause"
)

func TestCtxCause(t *testing.T) {
	atest.Run(t, "testdata", ctxcause.Analyzer, "fix/ctxflow")
}
