// Package ebautil holds the object-matching helpers shared by the
// ebavet analyzers. The analyzers identify the repo's contract-carrying
// functions by (package-path suffix, name) pairs so the same matchers
// work against the real tree (import paths rooted at "repro") and
// against analyzertest fixtures (import paths rooted wherever the
// fixture tree mounts them).
package ebautil

import (
	"go/ast"
	"go/types"
	"strings"
)

// PathHasSuffix reports whether the import path is suffix, or ends with
// "/"+suffix. Matching whole path segments keeps "internal/graph" from
// matching "internal/subgraph".
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// FuncObj resolves the *types.Func a call expression invokes, through
// parenthesization and method selections. It returns nil for calls to
// function-typed variables, conversions, and builtins.
func FuncObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.Fn(...).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// name declared in a package whose path ends in pkgSuffix.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgSuffix, name string) bool {
	fn := FuncObj(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return PathHasSuffix(fn.Pkg().Path(), pkgSuffix)
}

// IsMethod reports whether call invokes a method named name declared in
// a package whose path ends in one of pkgSuffixes (interface methods
// resolve to their declaring interface's package).
func IsMethod(info *types.Info, call *ast.CallExpr, name string, pkgSuffixes ...string) bool {
	fn := FuncObj(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	for _, s := range pkgSuffixes {
		if PathHasSuffix(fn.Pkg().Path(), s) {
			return true
		}
	}
	return false
}

// ReceiverExpr returns the receiver expression of a method call
// (the "x" of x.M(...)), or nil.
func ReceiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return ast.Unparen(sel.X)
	}
	return nil
}

// UsedVar resolves an expression to the *types.Var it names, or nil.
func UsedVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	return v
}

// IsNil reports whether e is the predeclared nil.
func IsNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// Mentions reports whether v is referenced anywhere under n.
func Mentions(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// MentionsValue reports whether v is used under n as a value — i.e.
// anywhere except as the receiver of a method call (r.M(...) uses r's
// methods, it does not pass r along).
func MentionsValue(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != v {
			return true
		}
		// Receiver position: [... CallExpr SelectorExpr Ident] with the
		// selector as the call's Fun and the ident as the selector's X.
		if len(stack) >= 3 {
			if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.X == id {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
					return true
				}
			}
		}
		found = true
		return false
	})
	return found
}
