package suite

import (
	"strings"
	"testing"
)

func TestAnalyzersHaveContracts(t *testing.T) {
	for _, a := range Analyzers() {
		if _, ok := Contracts[a.Name]; !ok {
			t.Errorf("analyzer %s has no one-line contract in Contracts", a.Name)
		}
	}
	if len(Contracts) != len(Analyzers()) {
		t.Errorf("Contracts has %d entries, Analyzers has %d", len(Contracts), len(Analyzers()))
	}
}

func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("Select(nil) = %d analyzers, err %v; want %d, nil", len(all), err, len(Analyzers()))
	}

	some, err := Select([]string{"determinism"})
	if err != nil {
		t.Fatalf("Select(determinism): %v", err)
	}
	for _, a := range some {
		if a.Name == "determinism" {
			t.Errorf("disabled analyzer %s still selected", a.Name)
		}
	}
	if len(some) != len(all)-1 {
		t.Errorf("Select dropped %d analyzers, want 1", len(all)-len(some))
	}

	if _, err := Select([]string{"nosuchanalyzer"}); err == nil {
		t.Error("Select with an unknown name should error")
	}
	if _, err := Select(Names()); err == nil {
		t.Error("Select disabling every analyzer should error")
	}
}

func TestListMentionsEveryAnalyzer(t *testing.T) {
	var sb strings.Builder
	List(&sb)
	out := sb.String()
	for _, name := range Names() {
		if !strings.Contains(out, name) {
			t.Errorf("List output missing %s:\n%s", name, out)
		}
	}
}
