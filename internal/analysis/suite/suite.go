// Package suite catalogues the ebavet analyzers: the machine-checked
// form of the repo's hardest-won conventions. Each analyzer enforces
// one contract that is otherwise guarded only by tests that catch
// violations probabilistically (-race, the CI shard-equivalence
// smokes); see the package docs of the individual analyzers for the
// precise rules and README's "Static analysis" section for the
// workflow.
package suite

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/arenasafety"
	"repro/internal/analysis/ctxcause"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/errtaxonomy"
)

// Contracts maps each analyzer name to the one-line contract it
// enforces, as printed by `ebavet -list`.
var Contracts = map[string]string{
	"arenasafety": "acquired arena values are released or handed off; arena-backed values are detached before retention",
	"determinism": "no map-iteration order or ambient time/rand reaches the digest-to-merge pipeline (//eba:nondeterministic-ok to waive a line)",
	"ctxcause":    "packages establishing WithCancelCause surface context.Cause, never a bare ctx.Err(), and cancel on all paths",
	"errtaxonomy": "sentinel errors are wrapped with %w and matched with errors.Is; exit-code mappers keep their errors.Is guards",
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		arenasafety.Analyzer,
		ctxcause.Analyzer,
		determinism.Analyzer,
		errtaxonomy.Analyzer,
	}
}

// Select returns the suite minus the named analyzers. Unknown names
// are an error, so a typo cannot silently disable nothing.
func Select(disabled []string) ([]*analysis.Analyzer, error) {
	drop := map[string]bool{}
	for _, d := range disabled {
		d = strings.TrimSpace(d)
		if d == "" {
			continue
		}
		if _, ok := Contracts[d]; !ok {
			return nil, fmt.Errorf("ebavet: unknown analyzer %q (have: %s)", d, strings.Join(Names(), ", "))
		}
		drop[d] = true
	}
	var out []*analysis.Analyzer
	for _, a := range Analyzers() {
		if !drop[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ebavet: -disable removed every analyzer")
	}
	return out, nil
}

// Names returns the analyzer names in sorted order.
func Names() []string {
	names := make([]string, 0, len(Contracts))
	for n := range Contracts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// List writes the analyzer catalog — name and one-line contract — to w.
func List(w io.Writer) {
	for _, a := range Analyzers() {
		fmt.Fprintf(w, "%-12s %s\n", a.Name, Contracts[a.Name])
	}
}
